// Kill-anywhere crash-injection harness (ISSUE 10).
//
// Drives the crash-safe publication protocol (core/retune.cpp
// promote_artefacts + recover_store) and the self-healing shared-memory
// region (core/shm_store.cpp) through every armed crash window: for each
// `promote-crash-*` / `shm-crash-*` failpoint the harness forks a child,
// arms the failpoint inside it, and lets crash_if() SIGKILL the child at
// that exact phase boundary — no cooperative shutdown, no destructors, the
// same stop a power cut or OOM kill delivers. The parent then proves the
// recovery invariants while a concurrently forked READER process hammers
// the store and the region the whole time:
//
//   - the store always loads (mirror files are never torn),
//   - VERSION never rewinds (monotonic across every crash + recovery),
//   - recover_store() lands on exactly the version the crash point implies
//     (before the retained copy is durable: the old version; after: the new),
//   - a region whose publisher was killed mid-swap heals back to the
//     previous complete payload within one read_shm_region call,
//   - every decision served meanwhile is well-formed (threads in range).
//
// Usage:
//   crash_harness --dir STORE --shm REGION [--iterations N]
//
// STORE must contain a valid model.json + config.json pair (e.g. a copy of
// tests/artifacts/tiny); REGION is created. Exit 0 = every invariant held;
// exit 1 = a violated invariant (message on stderr). The reader is a forked
// process, not a thread, so the fork-heavy parent stays single-threaded.
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/status.h"
#include "core/adsala.h"
#include "core/retune.h"
#include "core/shm_store.h"

namespace {

using adsala::ErrorCode;
using namespace adsala::core;

/// The concurrent reader's pid, once forked. fatal() must reap it: an
/// orphaned reader inherits the harness's stdout/stderr pipes and would keep
/// the calling test runner blocked on them long after the harness died.
pid_t g_reader = -1;

[[noreturn]] void fatal(const std::string& msg) {
  std::fprintf(stderr, "crash_harness: FAIL: %s\n", msg.c_str());
  if (g_reader > 0) {
    ::kill(g_reader, SIGKILL);
    ::waitpid(g_reader, nullptr, 0);
  }
  std::exit(1);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fatal("cannot read " + path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void sleep_ms(int ms) {
  timespec ts{ms / 1000, static_cast<long>(ms % 1000) * 1000000};
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

// ------------------------------------------------------------------ reader

/// Runs in a forked process: loops load + attach + query until `stop_file`
/// appears, exiting 1 the instant any invariant breaks. kUnavailable from
/// the region is a legal transient (a publisher is live mid-swap); every
/// other failure class means a torn artefact was served.
[[noreturn]] void reader_loop(const std::string& dir, const std::string& shm,
                              const std::string& stop_file) {
  std::uint64_t last_version = 0;
  while (!std::filesystem::exists(stop_file)) {
    const std::uint64_t v = artefact_version(dir);
    if (v < last_version) {
      std::fprintf(stderr, "reader: VERSION rewound %llu -> %llu\n",
                   static_cast<unsigned long long>(last_version),
                   static_cast<unsigned long long>(v));
      ::_exit(1);
    }
    last_version = v;

    auto loaded =
        AdsalaGemm::try_load(dir + "/model.json", dir + "/config.json");
    if (!loaded.ok()) {
      std::fprintf(stderr, "reader: store unloadable: %s\n",
                   loaded.error().message.c_str());
      ::_exit(1);
    }
    const int p = loaded.value().select_threads(256, 256, 256);
    if (p < 1 || p > loaded.value().max_threads()) {
      std::fprintf(stderr, "reader: torn decision from files: %d\n", p);
      ::_exit(1);
    }

    auto attached = AdsalaGemm::try_attach(shm);
    if (attached.ok()) {
      const int q = attached.value().select_threads(256, 256, 256);
      if (q < 1 || q > attached.value().max_threads()) {
        std::fprintf(stderr, "reader: torn decision from region: %d\n", q);
        ::_exit(1);
      }
    } else if (attached.error().code != ErrorCode::kUnavailable) {
      std::fprintf(stderr, "reader: region served a non-transient error: %s\n",
                   attached.error().message.c_str());
      ::_exit(1);
    }
    sleep_ms(1);
  }
  ::_exit(0);
}

// --------------------------------------------------------- child machinery

/// Forks a child that arms `fp` and runs `work` — which must hit crash_if()
/// and die by SIGKILL. A child that survives to return is itself an error
/// (the failpoint never fired), reported via exit code 86.
template <typename Fn>
void run_killed_child(const char* fp, Fn work) {
  const pid_t pid = ::fork();
  if (pid < 0) fatal("fork failed");
  if (pid == 0) {
    adsala::failpoint::arm(fp);
    work();
    ::_exit(86);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) fatal("waitpid failed");
  if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
    fatal(std::string("failpoint ") + fp +
          " did not SIGKILL the child (status " + std::to_string(status) +
          ")");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir, shm;
  int iterations = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--shm" && i + 1 < argc) {
      shm = argv[++i];
    } else if (arg == "--iterations" && i + 1 < argc) {
      iterations = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: crash_harness --dir STORE --shm REGION "
                   "[--iterations N]\n");
      return 2;
    }
  }
  if (dir.empty() || shm.empty()) {
    std::fprintf(stderr, "crash_harness: --dir and --shm are required\n");
    return 2;
  }

  const std::string base_model = slurp(dir + "/model.json");
  const std::string base_config = slurp(dir + "/config.json");

  // Baseline: a fully promoted version and a healthily published region, so
  // every crash below has a durable previous state to recover toward.
  std::uint64_t version = artefact_version(dir) + 1;
  std::string cur_model = base_model, cur_config = base_config;
  {
    const adsala::Error err =
        promote_artefacts(dir, cur_model, cur_config, version);
    if (!err.ok()) fatal("baseline promote: " + err.message);
  }
  {
    const adsala::Error err = publish_shm_region(shm, cur_model, cur_config);
    if (!err.ok()) fatal("baseline publish: " + err.message);
  }

  // Concurrent reader: forked before anything else runs in this process so
  // the fork never duplicates a multithreaded parent.
  const std::string stop_file = dir + "/reader.stop";
  std::filesystem::remove(stop_file);
  const pid_t reader = ::fork();
  if (reader < 0) fatal("fork(reader) failed");
  if (reader == 0) reader_loop(dir, shm, stop_file);
  g_reader = reader;

  // Crash points before the retained copy is durable recover to the OLD
  // version; every later one rolls forward to the NEW version.
  struct PromotePoint {
    const char* fp;
    bool committed;
  };
  const PromotePoint promote_points[] = {
      {"promote-crash-after-stage", false},
      {"promote-crash-mid-retain", false},
      {"promote-crash-after-retain", true},
      {"promote-crash-mid-promote", true},
      {"promote-crash-after-promote", true},
      {"promote-crash-after-version", true},
  };
  const char* shm_points[] = {"shm-crash-mid-publish",
                              "shm-crash-before-commit"};

  int variant = 0;
  for (int iter = 0; iter < iterations; ++iter) {
    for (const PromotePoint& point : promote_points) {
      // A fresh byte variant per crash (appended newlines keep the JSON
      // valid) so "which content won" is distinguishable after recovery.
      const std::string new_model =
          base_model + std::string(static_cast<std::size_t>(++variant), '\n');
      const std::string new_config =
          base_config + std::string(static_cast<std::size_t>(variant), '\n');
      const std::uint64_t next = version + 1;

      run_killed_child(point.fp, [&] {
        (void)promote_artefacts(dir, new_model, new_config, next);
      });

      auto rec = recover_store(dir);
      if (!rec.ok()) {
        fatal(std::string(point.fp) + ": recover_store: " +
              rec.error().message);
      }
      const std::uint64_t want = point.committed ? next : version;
      if (rec.value().version != want) {
        fatal(std::string(point.fp) + ": recovered to version " +
              std::to_string(rec.value().version) + ", want " +
              std::to_string(want));
      }
      const std::string& want_model =
          point.committed ? new_model : cur_model;
      if (slurp(dir + "/model.json") != want_model ||
          slurp(dir + "/config.json") !=
              (point.committed ? new_config : cur_config)) {
        fatal(std::string(point.fp) +
              ": mirror bytes are not the recovered version's bytes");
      }
      if (point.committed) {
        version = next;
        cur_model = new_model;
        cur_config = new_config;
      }
    }

    for (const char* fp : shm_points) {
      auto before = read_shm_region(shm);
      if (!before.ok()) fatal(std::string(fp) + ": pre-crash region read");
      const std::string new_model =
          base_model + std::string(static_cast<std::size_t>(++variant), '\n');
      const std::string new_config =
          base_config + std::string(static_cast<std::size_t>(variant), '\n');

      run_killed_child(fp, [&] {
        (void)publish_shm_region(shm, new_model, new_config);
      });

      // One read must come back healed: dead writer detected, previous
      // payload reinstated, generation even again.
      auto after = read_shm_region(shm);
      if (!after.ok()) {
        fatal(std::string(fp) + ": region did not heal: " +
              after.error().message);
      }
      if (after.value().model_json != before.value().model_json ||
          after.value().config_json != before.value().config_json) {
        fatal(std::string(fp) +
              ": healed region does not serve the previous payload");
      }
      if (after.value().generation % 2 != 0 ||
          after.value().generation < before.value().generation) {
        fatal(std::string(fp) + ": healed generation is not a later even");
      }

      // The region must accept a healthy publish after healing. The
      // concurrent reader may have probed the same dead writer and can hold
      // the region flock for the microseconds its own heal takes — retry
      // through that window; only a persistent refusal is a failure.
      adsala::Error republished;
      for (int tries = 0; tries < 1000; ++tries) {
        republished = publish_shm_region(shm, new_model, new_config);
        if (republished.ok() ||
            republished.code != ErrorCode::kUnavailable) {
          break;
        }
        sleep_ms(1);
      }
      if (!republished.ok()) {
        fatal(std::string(fp) + ": post-heal publish: " + republished.message);
      }
      auto fresh = read_shm_region(shm);
      if (!fresh.ok() || fresh.value().model_json != new_model) {
        fatal(std::string(fp) + ": post-heal publish not served");
      }
    }
  }

  // Stop the reader and adopt its verdict.
  {
    std::ofstream stop(stop_file);
  }
  int status = 0;
  if (::waitpid(reader, &status, 0) != reader) fatal("waitpid(reader)");
  std::filesystem::remove(stop_file);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    fatal("concurrent reader saw an invariant violation");
  }

  std::printf(
      "crash_harness: OK — %d iteration(s), %zu promote + %zu shm crash "
      "points, final version %llu\n",
      iterations, std::size(promote_points), std::size(shm_points),
      static_cast<unsigned long long>(version));
  return 0;
}
