// bench_diff — compares two directories of BENCH_*.json results (see
// bench/bench_util.h for the envelope format) and flags metric regressions
// beyond a relative threshold, so the perf trajectory across PRs is a CI
// check instead of a manual scrape.
//
//   bench_diff [--threshold FRAC] BASELINE_DIR CANDIDATE_DIR
//   bench_diff --self-test
//
// Rows are matched within each bench file by their identity fields (strings,
// bools, and numeric fields that are not measurements: n, k, threads, ...).
// Numeric fields whose names look like measurements are compared:
//   lower-is-better: *time*, *seconds*, *runtime*, *_s, *_us, *_ms, *rmse*
//   higher-is-better: *gflops*, *speedup*
// A candidate value worse than baseline by more than --threshold (default
// 0.10 = 10%) is a regression; any regression makes the exit status 1.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"

namespace fs = std::filesystem;
using adsala::Json;
using adsala::JsonObject;

namespace {

bool name_contains(const std::string& name, const char* needle) {
  return name.find(needle) != std::string::npos;
}

bool name_ends_with(const std::string& name, const char* suffix) {
  const std::size_t len = std::strlen(suffix);
  return name.size() >= len &&
         name.compare(name.size() - len, len, suffix) == 0;
}

enum class MetricKind { kNotMetric, kLowerBetter, kHigherBetter };

/// Classifies a row field by name: identity field, or a measurement and in
/// which direction "better" points.
MetricKind classify(const std::string& name) {
  if (name_contains(name, "gflops") || name_contains(name, "speedup")) {
    return MetricKind::kHigherBetter;
  }
  if (name_contains(name, "time") || name_contains(name, "seconds") ||
      name_contains(name, "runtime") || name_contains(name, "rmse") ||
      name_ends_with(name, "_s") || name_ends_with(name, "_us") ||
      name_ends_with(name, "_ms")) {
    return MetricKind::kLowerBetter;
  }
  return MetricKind::kNotMetric;
}

/// Identity key of a row: every non-metric field, serialised name=value.
/// JsonObject is an ordered map, so the key is deterministic.
std::string row_key(const JsonObject& row) {
  std::string key;
  for (const auto& [name, value] : row) {
    if (value.is_number() && classify(name) != MetricKind::kNotMetric) {
      continue;
    }
    key += name;
    key += '=';
    key += value.dump();
    key += ';';
  }
  return key;
}

struct Finding {
  std::string file;
  std::string key;
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  double rel_change = 0.0;  ///< signed, in the metric's raw direction
  bool regression = false;
};

/// Compares the rows of one bench file pair.
std::vector<Finding> diff_rows(const std::string& file,
                               const std::vector<Json>& base_rows,
                               const std::vector<Json>& cand_rows,
                               double threshold) {
  // Group candidate rows by identity key; rows sharing a key match in order.
  std::map<std::string, std::vector<const JsonObject*>> cand_by_key;
  for (const auto& row : cand_rows) {
    cand_by_key[row_key(row.as_object())].push_back(&row.as_object());
  }
  std::map<std::string, std::size_t> cursor;

  std::vector<Finding> findings;
  for (const auto& row : base_rows) {
    const JsonObject& base = row.as_object();
    const std::string key = row_key(base);
    auto it = cand_by_key.find(key);
    if (it == cand_by_key.end()) continue;  // row vanished: not a regression
    const std::size_t at = cursor[key]++;
    if (at >= it->second.size()) continue;
    const JsonObject& cand = *it->second[at];

    for (const auto& [name, value] : base) {
      const MetricKind kind = classify(name);
      if (kind == MetricKind::kNotMetric || !value.is_number()) continue;
      const auto cit = cand.find(name);
      if (cit == cand.end() || !cit->second.is_number()) continue;
      const double a = value.as_number();
      const double b = cit->second.as_number();
      if (!(std::fabs(a) > 0.0)) continue;  // avoid 0-division; also NaN
      Finding f;
      f.file = file;
      f.key = key;
      f.metric = name;
      f.baseline = a;
      f.candidate = b;
      f.rel_change = (b - a) / std::fabs(a);
      f.regression = kind == MetricKind::kLowerBetter
                         ? f.rel_change > threshold
                         : f.rel_change < -threshold;
      findings.push_back(std::move(f));
    }
  }
  return findings;
}

/// Why this baseline file must not be compared against, or "" when it is
/// fit. Two provenance gates (bench/bench_util.h stamps both, and the
/// google-benchmark binaries stamp equivalents into their "context"):
///   - a debug build type — a debug-built bench measures the optimiser, so
///     every ratio against it is noise;
///   - a 1-minute load average at or above the CPU count — the host was
///     busy while the baseline was captured.
/// Unstamped files (pre-stamp baselines, hand-made fixtures) pass: the gate
/// refuses bad provenance, not missing provenance.
std::string baseline_unfit_reason(const Json& doc) {
  const Json* ctx =
      doc.contains("context") && doc.at("context").is_object()
          ? &doc.at("context")
          : nullptr;
  // Our own "build_type" stamp describes the code under measurement and is
  // authoritative when present. google-benchmark's "library_build_type"
  // describes how libbenchmark itself was compiled — a debug system package
  // would falsely taint a Release run — so it is consulted only as a
  // fallback for pre-stamp files, where it still catches the original
  // debug-built committed baseline.
  bool has_own_stamp = false;
  for (const Json* scope : {&doc, ctx}) {
    if (scope == nullptr) continue;
    if (scope->contains("build_type") && scope->at("build_type").is_string()) {
      has_own_stamp = true;
      if (name_contains(scope->at("build_type").as_string(), "debug")) {
        return "build_type is \"" + scope->at("build_type").as_string() +
               "\" (debug builds measure the optimiser, not the code)";
      }
    }
  }
  if (!has_own_stamp) {
    for (const Json* scope : {&doc, ctx}) {
      if (scope == nullptr) continue;
      if (scope->contains("library_build_type") &&
          scope->at("library_build_type").is_string() &&
          name_contains(scope->at("library_build_type").as_string(),
                        "debug")) {
        return "library_build_type is \"" +
               scope->at("library_build_type").as_string() +
               "\" (debug builds measure the optimiser, not the code)";
      }
    }
  }

  double load = -1.0;
  double cpus = -1.0;
  if (doc.contains("load_avg") && doc.at("load_avg").is_number()) {
    load = doc.at("load_avg").as_number();
  }
  if (doc.contains("num_cpus") && doc.at("num_cpus").is_number()) {
    cpus = doc.at("num_cpus").as_number();
  }
  if (ctx != nullptr) {
    // google-benchmark context: load_avg is an array [1, 5, 15 min],
    // num_cpus a number, and our AddCustomContext value is a string.
    if (ctx->contains("load_avg") && ctx->at("load_avg").is_array() &&
        !ctx->at("load_avg").as_array().empty() &&
        ctx->at("load_avg").as_array().front().is_number()) {
      load = ctx->at("load_avg").as_array().front().as_number();
    }
    if (ctx->contains("load_avg_1min") &&
        ctx->at("load_avg_1min").is_string()) {
      load = std::strtod(ctx->at("load_avg_1min").as_string().c_str(),
                         nullptr);
    }
    if (ctx->contains("num_cpus") && ctx->at("num_cpus").is_number()) {
      cpus = ctx->at("num_cpus").as_number();
    }
  }
  if (load >= 0.0 && cpus > 0.0 && load >= cpus) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "1-min load average %.2f on %.0f CPUs at capture time "
                  "(baseline host was busy)",
                  load, cpus);
    return buf;
  }
  return "";
}

std::map<std::string, fs::path> bench_files(const fs::path& dir) {
  std::map<std::string, fs::path> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name_ends_with(name, ".json")) {
      out[name] = entry.path();
    }
  }
  return out;
}

int run_diff(const std::string& dir_a, const std::string& dir_b,
             double threshold) {
  if (!fs::is_directory(dir_a) || !fs::is_directory(dir_b)) {
    std::fprintf(stderr, "bench_diff: both arguments must be directories\n");
    return 2;
  }
  const auto base_files = bench_files(dir_a);
  const auto cand_files = bench_files(dir_b);

  std::size_t n_compared = 0, n_regressions = 0, n_improvements = 0;
  for (const auto& [name, base_path] : base_files) {
    const auto it = cand_files.find(name);
    if (it == cand_files.end()) {
      std::printf("  [missing] %s only in %s\n", name.c_str(), dir_a.c_str());
      continue;
    }
    const Json base = adsala::read_json_file(base_path.string());
    const Json cand = adsala::read_json_file(it->second.string());
    const std::string unfit = baseline_unfit_reason(base);
    if (!unfit.empty()) {
      std::fprintf(stderr,
                   "bench_diff: refusing baseline %s: %s.\n"
                   "Regenerate the baseline from a Release build on an idle "
                   "host (see bench/baseline/README.md).\n",
                   base_path.string().c_str(), unfit.c_str());
      return 2;
    }
    if (!base.contains("rows") || !cand.contains("rows")) continue;
    const auto findings = diff_rows(name, base.at("rows").as_array(),
                                    cand.at("rows").as_array(), threshold);
    for (const auto& f : findings) {
      ++n_compared;
      const MetricKind kind = classify(f.metric);
      const bool improved = kind == MetricKind::kLowerBetter
                                ? f.rel_change < -threshold
                                : f.rel_change > threshold;
      n_improvements += improved;
      if (f.regression) {
        ++n_regressions;
        std::printf("  [regression] %s %s%s: %.4g -> %.4g (%+.1f%%)\n",
                    f.file.c_str(), f.key.c_str(), f.metric.c_str(),
                    f.baseline, f.candidate, 100.0 * f.rel_change);
      }
    }
  }
  for (const auto& [name, path] : cand_files) {
    if (base_files.find(name) == base_files.end()) {
      std::printf("  [new] %s only in %s\n", name.c_str(), dir_b.c_str());
    }
  }
  std::printf(
      "bench_diff: %zu metric pairs compared, %zu regressions, "
      "%zu improvements (threshold %.0f%%)\n",
      n_compared, n_regressions, n_improvements, 100.0 * threshold);
  return n_regressions > 0 ? 1 : 0;
}

// ------------------------------------------------------------- self-test --

int fail(const char* what) {
  std::fprintf(stderr, "bench_diff --self-test: FAIL: %s\n", what);
  return 1;
}

Json make_row(long n, int threads, double runtime, double gflops) {
  JsonObject row;
  row["n"] = Json(n);
  row["threads"] = Json(threads);
  row["runtime_s"] = Json(runtime);
  row["gflops"] = Json(gflops);
  return Json(std::move(row));
}

int self_test() {
  // Direction logic.
  if (classify("runtime_s") != MetricKind::kLowerBetter) {
    return fail("runtime_s must be lower-better");
  }
  if (classify("eval_time_us") != MetricKind::kLowerBetter) {
    return fail("eval_time_us must be lower-better");
  }
  if (classify("gflops") != MetricKind::kHigherBetter) {
    return fail("gflops must be higher-better");
  }
  if (classify("mean_speedup") != MetricKind::kHigherBetter) {
    return fail("mean_speedup must be higher-better");
  }
  if (classify("threads") != MetricKind::kNotMetric) {
    return fail("threads must be an identity field");
  }
  if (classify("n") != MetricKind::kNotMetric) {
    return fail("n must be an identity field");
  }

  // Identity keys ignore metric fields but keep shape fields.
  const Json r1 = make_row(512, 8, 0.5, 100.0);
  const Json r2 = make_row(512, 8, 0.9, 80.0);
  const Json r3 = make_row(1024, 8, 0.5, 100.0);
  if (row_key(r1.as_object()) != row_key(r2.as_object())) {
    return fail("rows differing only in metrics must share a key");
  }
  if (row_key(r1.as_object()) == row_key(r3.as_object())) {
    return fail("rows with different shapes must not share a key");
  }

  // A 80% runtime slowdown + gflops drop beyond 10% is two regressions; the
  // matching row with improvements is none.
  const std::vector<Json> base = {r1, r3};
  const std::vector<Json> cand = {r2, make_row(1024, 8, 0.45, 111.0)};
  const auto findings = diff_rows("BENCH_x.json", base, cand, 0.10);
  std::size_t regressions = 0;
  for (const auto& f : findings) regressions += f.regression;
  if (regressions != 2) return fail("expected exactly 2 regressions");

  // Within-threshold noise is not a regression.
  const auto quiet =
      diff_rows("BENCH_x.json", {r1}, {make_row(512, 8, 0.52, 98.0)}, 0.10);
  for (const auto& f : quiet) {
    if (f.regression) return fail("4% noise must not flag at 10% threshold");
  }

  // Baseline provenance gate: debug builds and busy hosts are refused,
  // clean and unstamped envelopes pass.
  {
    JsonObject doc;
    doc["bench"] = Json(std::string("x"));
    if (!baseline_unfit_reason(Json(doc)).empty()) {
      return fail("unstamped baseline must pass the provenance gate");
    }
    doc["build_type"] = Json(std::string("release"));
    doc["load_avg"] = Json(0.3);
    doc["num_cpus"] = Json(8.0);
    if (!baseline_unfit_reason(Json(doc)).empty()) {
      return fail("release/idle baseline must pass the provenance gate");
    }
    doc["build_type"] = Json(std::string("debug"));
    if (baseline_unfit_reason(Json(doc)).empty()) {
      return fail("debug baseline must be refused");
    }
    doc["build_type"] = Json(std::string("release"));
    doc["load_avg"] = Json(11.0);
    if (baseline_unfit_reason(Json(doc)).empty()) {
      return fail("high-load baseline must be refused");
    }
  }
  {
    // google-benchmark format: provenance lives under "context".
    JsonObject ctx;
    ctx["library_build_type"] = Json(std::string("debug"));
    JsonObject doc;
    doc["context"] = Json(std::move(ctx));
    if (baseline_unfit_reason(Json(doc)).empty()) {
      return fail("gbench debug context must be refused");
    }
    // Our explicit stamp outranks gbench's: a debug-built libbenchmark
    // package must not taint a Release run of the code under measurement.
    JsonObject ctx1b;
    ctx1b["library_build_type"] = Json(std::string("debug"));
    ctx1b["build_type"] = Json(std::string("release"));
    JsonObject doc1b;
    doc1b["context"] = Json(std::move(ctx1b));
    if (!baseline_unfit_reason(Json(doc1b)).empty()) {
      return fail(
          "explicit release stamp must outrank debug library_build_type");
    }
    JsonObject ctx2;
    ctx2["library_build_type"] = Json(std::string("release"));
    adsala::JsonArray load;
    load.emplace_back(Json(5.2));
    ctx2["load_avg"] = Json(std::move(load));
    ctx2["num_cpus"] = Json(1.0);
    JsonObject doc2;
    doc2["context"] = Json(std::move(ctx2));
    if (baseline_unfit_reason(Json(doc2)).empty()) {
      return fail("gbench high-load context must be refused");
    }
  }

  std::printf("bench_diff --self-test: ok\n");
  return 0;
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  bench_diff [--threshold FRAC] BASELINE_DIR CANDIDATE_DIR\n"
               "  bench_diff --self-test\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.10;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") return self_test();
    if (arg == "--threshold") {
      if (i + 1 >= argc) usage();
      char* end = nullptr;
      threshold = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || threshold <= 0.0) {
        std::fprintf(stderr,
                     "bench_diff: --threshold expects a positive fraction "
                     "(e.g. 0.10), got '%s'\n",
                     argv[i]);
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.size() != 2) usage();
  try {
    return run_diff(dirs[0], dirs[1], threshold);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }
}
