// adsala — command-line interface to the ADSALA workflow.
//
//   adsala install   --platform <native|setonix|gadi|tiny> [--samples N]
//                    [--out DIR] [--cap-mb MB] [--no-tune]
//                    [--ops <name>,...]
//   adsala predict   --dir DIR | --shm PATH [--fallback] [--shape MxKxN ...]
//                    [--<op> NxK|NxM ...]
//   adsala inspect   --dir DIR
//   adsala time      --platform <...> --shape MxKxN [--threads P]
//   adsala publish   --dir DIR --shm PATH
//   adsala serve     --dir DIR | --shm PATH [--fallback] --socket PATH
//                    [--max-requests N] [--reattach] [--io-timeout-ms N]
//   adsala query     --socket PATH --shape MxKxN | --<op> XxY
//                    [--send-malformed] [--io-timeout-ms N] [--retry]
//                    [--wedge-ms N]
//   adsala sample    --dir DIR | --shm PATH --platform <...> --telemetry PATH
//                    [--samples N] [--ops <name>,...]
//   adsala retune    --dir DIR --telemetry PATH [--force] [--threshold X]
//                    [--window N] [--min-groups N] [--models <name>,...]
//                    [--no-tune] [--shm PATH]
//   adsala rollback  --dir DIR --to VERSION [--shm PATH]
//   adsala versions  --dir DIR
//
// `install` runs the full installation workflow and writes model.json /
// config.json / timings.csv; `--ops` takes any comma list of registered
// operations (one sub-campaign per operation over the same domain).
// `predict` loads those artefacts and prints the selected thread count per
// query; every registered 2-D family automatically gets a `--<name> XxY`
// flag (coordinates from its registry row), so a newly registered op is
// predictable with zero CLI edits. `inspect` summarises the artefacts.
// `time` measures one GEMM on the chosen backend at a given thread count
// (or sweeps the default grid when --threads is omitted).
//
// Tuning-as-a-service verbs (docs/OPERATIONS.md):
// `publish` validates a directory's artefacts and copies them into a
// shared-memory region (core/shm_store.h) that any number of processes can
// serve from (`predict --shm`, `serve --shm`). `serve` runs the resident
// daemon on a Unix-domain socket; `query` is its client (and `--send-
// malformed` deliberately sends a wrong-version frame so CI can check the
// protocol-error path end to end). `serve --shm --reattach` keeps watching
// the region between connections and hot-swaps in any new generation a
// retune republished.
//
// Crash-safety plumbing (ISSUE 10, docs/OPERATIONS.md "Crash recovery
// runbook"): `serve` refuses to steal a live daemon's socket (exit 9),
// drains gracefully on SIGTERM/SIGINT, and bounds each connection's recv/
// send with --io-timeout-ms (default 2000; <= 0 disables). `query --retry`
// answers through the resilient client — bounded retry with full-jitter
// backoff, circuit breaker, in-process fallback from --dir/--shm — so it
// always prints a thread count; knobs via ADSALA_RETRY_ATTEMPTS,
// ADSALA_RETRY_BACKOFF_MS, ADSALA_BREAKER_THRESHOLD, ADSALA_BREAKER_OPEN_MS.
// `query --wedge-ms N` is the test-only misbehaving client: it connects,
// sends 4 bytes of a frame, sleeps N ms, and exits — proving a wedged
// client costs the daemon one timeout, not the service. Loading from a
// --dir store first runs recover_store() best-effort, so a crashed
// promote's debris never blocks serving.
//
// Continual-retuning verbs (docs/OPERATIONS.md "Continual retuning"):
// `sample` drives measured traffic through a serving runtime with the
// telemetry sampler recording every call (1-in-1 sampling) — the loop's
// traffic generator for CI and offline campaigns. `retune` runs the drift
// detector over a telemetry log and, when it fires (or --force), retrains
// through the reuse-timings path, write-then-verifies, bumps the artefact
// version and optionally republishes to --shm. `rollback --to V`
// republishes retained version V as a new current version; `versions`
// lists the store.
//
// Exit codes follow the error taxonomy (common/status.h, exit_code_for):
//   0 success        2 usage error            3 artefact file missing
//   4 artefact undecodable                    5 artefact fails validation
//   6 out of memory  7 temporarily unavailable (shm mid-swap, daemon down)
//   8 protocol error (malformed daemon frame)
//   9 precondition failed (rollback target not retained, telemetry too thin)
//   1 any other internal error
// Artefact problems print one line to stderr: "error (<code>): <message>".
// `predict --fallback` never fails on artefact problems — it serves from
// the degraded heuristic instead and reports the serving mode.
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "adsala_daemon.h"
#include "blas/op.h"
#include "common/status.h"
#include "core/adsala.h"
#include "core/install.h"
#include "core/op_registry.h"
#include "core/resilient_client.h"
#include "core/retune.h"
#include "core/shm_store.h"
#include "preprocess/features.h"

using namespace adsala;

namespace {

struct Args {
  std::string command;
  std::string platform = "native";
  std::string dir = "adsala_artifacts";
  std::size_t samples = 150;
  std::size_t cap_mb = 100;
  bool tune = true;
  bool fallback = false;  ///< predict/serve: degrade instead of failing
  int threads = 0;
  std::string shm;                 ///< shared-memory region path
  std::string socket;              ///< daemon Unix-domain socket path
  long max_requests = -1;          ///< serve: exit after N answers (< 0: run)
  bool send_malformed = false;     ///< query: send a wrong-version frame
  std::vector<std::string> models; ///< install/retune: candidate zoo override
  std::string telemetry;           ///< sample/retune: telemetry log path
  bool force = false;              ///< retune: retrain even without drift
  double threshold = 0.10;         ///< retune: drift mean-regret threshold
  std::size_t window = 4096;       ///< retune: drift window (records)
  std::size_t min_groups = 8;      ///< retune: min shape groups per op
  std::uint64_t to_version = 0;    ///< rollback: retained version to republish
  bool reattach = false;           ///< serve: hot-swap new shm generations in
  int io_timeout_ms = 2000;        ///< serve/query: per-connection deadline
  bool retry = false;              ///< query: resilient client (retry/breaker)
  int wedge_ms = 0;                ///< query: misbehaving-client test mode
  std::vector<blas::OpKind> ops = {blas::OpKind::kGemm};
  /// Predict queries in parse order; shapes carry the op's stored
  /// equivalent-GEMM convention (canonicalised by the registry).
  std::vector<std::pair<blas::OpKind, simarch::GemmShape>> queries;
};

/// "--syrk NxK"-style flag synopsis for every registered 2-D family.
std::string family_flag_usage() {
  std::string out;
  for (const auto& traits : core::op_registry()) {
    if (traits.family_dims != 2) continue;
    out += std::string(" [--") + blas::op_name(traits.op) + " ";
    out += static_cast<char>(std::toupper(traits.coord_names[0][0]));
    out += 'x';
    out += static_cast<char>(std::toupper(traits.coord_names[1][0]));
    out += " ...]";
  }
  return out;
}

/// Comma list of every registered operation name ("gemm,syrk,...").
std::string op_name_list() {
  std::string out;
  for (const auto op : blas::all_ops()) {
    if (!out.empty()) out += ',';
    out += blas::op_name(op);
  }
  return out;
}

[[noreturn]] void usage(const char* why = nullptr) {
  if (why != nullptr) std::fprintf(stderr, "error: %s\n\n", why);
  std::fprintf(stderr,
               "usage:\n"
               "  adsala install --platform <native|setonix|gadi|tiny> "
               "[--samples N] [--out DIR] [--cap-mb MB] [--no-tune] "
               "[--ops %s]\n"
               "  adsala predict --dir DIR [--fallback] "
               "[--shape MxKxN ...]%s\n"
               "  adsala inspect --dir DIR\n"
               "  adsala time    --platform <...> --shape MxKxN "
               "[--threads P]\n"
               "  adsala publish --dir DIR --shm PATH\n"
               "  adsala serve   --dir DIR | --shm PATH [--fallback] "
               "--socket PATH [--max-requests N] [--reattach] "
               "[--io-timeout-ms N]\n"
               "  adsala query   --socket PATH --shape MxKxN | --<op> XxY "
               "[--send-malformed] [--io-timeout-ms N] [--retry] "
               "[--wedge-ms N]\n"
               "  adsala sample  --dir DIR | --shm PATH --platform <...> "
               "--telemetry PATH [--samples N] [--ops ...]\n"
               "  adsala retune  --dir DIR --telemetry PATH [--force] "
               "[--threshold X] [--window N] [--min-groups N] "
               "[--models ...] [--no-tune] [--shm PATH]\n"
               "  adsala rollback --dir DIR --to VERSION [--shm PATH]\n"
               "  adsala versions --dir DIR\n",
               op_name_list().c_str(), family_flag_usage().c_str());
  std::exit(2);
}

simarch::GemmShape parse_shape(const std::string& text) {
  simarch::GemmShape shape;
  shape.elem_bytes = 4;
  if (std::sscanf(text.c_str(), "%ldx%ldx%ld", &shape.m, &shape.k,
                  &shape.n) != 3 ||
      shape.m < 1 || shape.k < 1 || shape.n < 1) {
    usage("--shape expects MxKxN with positive integers");
  }
  return shape;
}

Args parse(int argc, char** argv) {
  if (argc < 2) usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--platform") {
      args.platform = value();
    } else if (flag == "--dir" || flag == "--out") {
      args.dir = value();
    } else if (flag == "--samples") {
      args.samples = std::stoul(value());
    } else if (flag == "--cap-mb") {
      args.cap_mb = std::stoul(value());
    } else if (flag == "--no-tune") {
      args.tune = false;
    } else if (flag == "--fallback") {
      args.fallback = true;
    } else if (flag == "--threads") {
      args.threads = std::stoi(value());
    } else if (flag == "--shm") {
      args.shm = value();
    } else if (flag == "--socket") {
      args.socket = value();
    } else if (flag == "--max-requests") {
      args.max_requests = std::stol(value());
    } else if (flag == "--send-malformed") {
      args.send_malformed = true;
    } else if (flag == "--telemetry") {
      args.telemetry = value();
    } else if (flag == "--force") {
      args.force = true;
    } else if (flag == "--threshold") {
      args.threshold = std::stod(value());
    } else if (flag == "--window") {
      args.window = std::stoul(value());
    } else if (flag == "--min-groups") {
      args.min_groups = std::stoul(value());
    } else if (flag == "--to") {
      args.to_version = std::stoull(value());
    } else if (flag == "--reattach") {
      args.reattach = true;
    } else if (flag == "--io-timeout-ms") {
      args.io_timeout_ms = std::stoi(value());
    } else if (flag == "--retry") {
      args.retry = true;
    } else if (flag == "--wedge-ms") {
      args.wedge_ms = std::stoi(value());
    } else if (flag == "--models") {
      // Candidate zoo override for install (comma list, e.g.
      // "decision_tree"): committed CI artefacts pin a compact model so the
      // repository does not carry a megabyte ensemble.
      std::string list = value();
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        args.models.push_back(list.substr(
            start,
            comma == std::string::npos ? std::string::npos : comma - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (flag == "--shape") {
      args.queries.emplace_back(blas::OpKind::kGemm, parse_shape(value()));
    } else if (flag.rfind("--", 0) == 0 && blas::parse_op(flag.substr(2)) &&
               core::op_traits(*blas::parse_op(flag.substr(2))).family_dims ==
                   2) {
      // Every registered 2-D family gets its own predict flag; the registry
      // canonicalises the (x, y) family coordinates into the stored
      // equivalent-GEMM shape.
      const blas::OpKind op = *blas::parse_op(flag.substr(2));
      long x = 0, y = 0;
      if (std::sscanf(value().c_str(), "%ldx%ld", &x, &y) != 2 || x < 1 ||
          y < 1) {
        usage((flag + " expects XxY with positive integers").c_str());
      }
      args.queries.emplace_back(op, core::op_traits(op).to_shape(x, y, 0, 4));
    } else if (flag == "--ops") {
      args.ops.clear();
      std::string list = value();
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string token =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        const auto op = blas::parse_op(token);
        if (!op) {
          usage(("--ops expects a comma list of " + op_name_list()).c_str());
        }
        args.ops.push_back(*op);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else {
      usage(("unknown flag " + flag).c_str());
    }
  }
  return args;
}

std::unique_ptr<core::GemmExecutor> make_backend(const std::string& name) {
  if (name == "native") return std::make_unique<core::NativeExecutor>();
  simarch::CpuTopology topo;
  if (name == "setonix") {
    topo = simarch::setonix_topology();
  } else if (name == "gadi") {
    topo = simarch::gadi_topology();
  } else if (name == "tiny") {
    topo = simarch::tiny_topology();
  } else {
    usage("unknown platform");
  }
  return std::make_unique<core::SimulatedExecutor>(
      simarch::MachineModel(topo, 42));
}

int cmd_install(const Args& args) {
  auto executor = make_backend(args.platform);
  core::InstallOptions options;
  options.gather.n_samples = args.samples;
  options.gather.ops = args.ops;
  options.gather.domain.memory_cap_bytes = args.cap_mb * 1024ull * 1024;
  if (args.platform == "native") {
    options.gather.iterations = 3;
    options.gather.domain.dim_max =
        std::min<long>(options.gather.domain.dim_max, 2000);
  }
  options.train.tune = args.tune;
  options.train.candidates = args.models;
  options.output_dir = args.dir;
  std::filesystem::create_directories(args.dir);

  std::string op_list;
  for (const auto op : args.ops) {
    if (!op_list.empty()) op_list += ',';
    op_list += blas::op_name(op);
  }
  std::printf(
      "installing on '%s' (%zu shapes per op, ops=%s, cap %zu MB, "
      "tune=%s)...\n",
      args.platform.c_str(), args.samples, op_list.c_str(), args.cap_mb,
      args.tune ? "yes" : "no");
  const auto report = core::install(*executor, options);
  std::printf("gather %.1fs, train %.1fs\n", report.gather_seconds,
              report.train_seconds);
  std::printf("%-18s %10s %10s %10s %10s\n", "model", "norm RMSE",
              "eval (us)", "est mean", "est agg");
  for (const auto& r : report.trained.reports) {
    std::printf("%-18s %10.3f %10.1f %10.2f %10.2f\n", r.model_name.c_str(),
                r.test_rmse_norm, r.eval_time_us, r.est_mean_speedup,
                r.est_agg_speedup);
  }
  std::printf("selected: %s\nartefacts: %s, %s\n",
              report.trained.selected.c_str(), report.model_path.c_str(),
              report.config_path.c_str());
  return 0;
}

/// One stderr line per artefact failure, in the documented format.
void report_error(const Error& err) {
  std::fprintf(stderr, "error (%s): %s\n", error_code_name(err.code),
               err.message.c_str());
}

/// Builds the serving runtime per the flags: --shm attaches to a shared
/// region, --dir loads files, and --fallback turns ANY artefact problem
/// into the degraded heuristic (reported to stderr) instead of a failure.
/// On error (without --fallback) reports it and returns nullptr with
/// *exit_code set.
std::unique_ptr<core::AdsalaGemm> load_runtime(const Args& args,
                                               int* exit_code) {
  if (args.shm.empty()) {
    // Best-effort crash recovery before loading from a directory store: a
    // promote SIGKILL-ed mid-flight may have left a torn mirror that the
    // retained versions can repair. Failures are non-fatal here — try_load
    // below produces the authoritative error.
    if (auto recovered = core::recover_store(args.dir);
        recovered.ok() && recovered.value().repaired) {
      std::fprintf(stderr,
                   "note: recovered artefact store %s to version %llu\n",
                   args.dir.c_str(),
                   static_cast<unsigned long long>(recovered.value().version));
    }
  }
  auto loaded = !args.shm.empty()
                    ? core::AdsalaGemm::try_attach(args.shm)
                    : core::AdsalaGemm::try_load(args.dir + "/model.json",
                                                 args.dir + "/config.json");
  if (loaded.ok()) {
    return std::make_unique<core::AdsalaGemm>(std::move(loaded).value());
  }
  if (args.fallback) {
    report_error(loaded.error());
    return std::make_unique<core::AdsalaGemm>(
        core::AdsalaGemm::heuristic_fallback());
  }
  report_error(loaded.error());
  *exit_code = exit_code_for(loaded.error().code);
  return nullptr;
}

int cmd_predict(const Args& args) {
  if (args.queries.empty()) {
    usage("predict needs at least one --shape or family flag");
  }
  int exit_code = 0;
  auto runtime = load_runtime(args, &exit_code);
  if (runtime == nullptr) return exit_code;
  std::printf("platform %s, model %s, max threads %d, op-aware %s\n",
              runtime->platform().c_str(), runtime->model_name().c_str(),
              runtime->max_threads(), runtime->op_aware() ? "yes" : "no");
  for (const auto& [op, shape] : args.queries) {
    const auto& traits = core::op_traits(op);
    long coords[3] = {0, 0, 0};
    traits.from_shape(shape, &coords[0], &coords[1], &coords[2]);
    const int p = runtime->select_threads(op, coords[0], coords[1], coords[2]);
    // Which rung of the serving ladder answered for this op: first-class
    // model, equivalent-GEMM proxy, or the artefact-less heuristic.
    const core::ServingMode mode = runtime->serving_mode(op);
    const char* marker = "";
    if (mode == core::ServingMode::kGemmProxy) {
      marker = " (gemm-proxy fallback)";
    } else if (mode == core::ServingMode::kHeuristicFallback) {
      marker = " (heuristic fallback)";
    }
    std::printf("%s", blas::op_name(op));
    for (int d = 0; d < traits.family_dims; ++d) {
      std::printf(" %s=%ld", traits.coord_names[d], coords[d]);
    }
    std::printf(" -> %d threads%s\n", p, marker);
  }
  return 0;
}

int cmd_inspect(const Args& args) {
  // Decode through the non-throwing reader so a missing directory exits 3
  // and a torn write exits 4, each with a path-qualified stderr line.
  auto config_result = try_read_json_file(args.dir + "/config.json");
  if (!config_result.ok()) {
    report_error(config_result.error());
    return exit_code_for(config_result.error().code);
  }
  auto model_result = try_read_json_file(args.dir + "/model.json");
  if (!model_result.ok()) {
    report_error(model_result.error());
    return exit_code_for(model_result.error().code);
  }
  const Json config = std::move(config_result).value();
  const Json model = std::move(model_result).value();
  std::printf("platform    : %s\n", config.at("platform").as_string().c_str());
  std::printf("max threads : %d\n", config.at("max_threads").as_int());
  std::printf("model       : %s\n", model.at("model").as_string().c_str());
  std::printf("thread grid :");
  for (const auto& v : config.at("thread_grid").as_array()) {
    std::printf(" %d", v.as_int());
  }
  std::printf("\n");
  const Json& pipe = config.at("pipeline");
  std::printf("pipeline    : yeo_johnson=%s standardize=%s lof=%s "
              "corr_filter=%s log_label=%s\n",
              pipe.at("yeo_johnson").as_bool() ? "on" : "off",
              pipe.at("standardize").as_bool() ? "on" : "off",
              pipe.at("lof").as_bool() ? "on" : "off",
              pipe.at("corr_filter").as_bool() ? "on" : "off",
              pipe.at("log_label").as_bool() ? "on" : "off");
  bool op_aware = false;
  for (const auto& name : pipe.at("feature_names").as_array()) {
    if (name.as_string() == "op_syrk") op_aware = true;
  }
  std::printf("features    : %zu kept of %zu (%s schema)\n",
              pipe.at("keep").as_array().size(),
              pipe.at("feature_names").as_array().size(),
              op_aware ? "op-aware" : "PR-1 base");
  return 0;
}

int cmd_time(const Args& args) {
  std::vector<simarch::GemmShape> shapes;
  for (const auto& [op, shape] : args.queries) {
    if (op == blas::OpKind::kGemm) shapes.push_back(shape);
  }
  if (shapes.empty()) usage("time needs --shape");
  auto executor = make_backend(args.platform);
  for (const auto& shape : shapes) {
    if (args.threads > 0) {
      const double t = executor->measure(shape, args.threads);
      std::printf("%ldx%ldx%ld @ %d threads: %.1f us (%.1f GFLOPS)\n",
                  shape.m, shape.k, shape.n, args.threads, 1e6 * t,
                  shape.flops() / t / 1e9);
    } else {
      std::printf("%ldx%ldx%ld thread sweep on %s:\n", shape.m, shape.k,
                  shape.n, args.platform.c_str());
      for (int p : core::default_thread_grid(executor->max_threads())) {
        const double t = executor->measure(shape, p);
        std::printf("  p=%3d  %12.1f us  %8.1f GFLOPS\n", p, 1e6 * t,
                    shape.flops() / t / 1e9);
      }
    }
  }
  return 0;
}

int cmd_publish(const Args& args) {
  if (args.shm.empty()) usage("publish needs --shm PATH");
  const std::string model_path = args.dir + "/model.json";
  const std::string config_path = args.dir + "/config.json";
  // Validate before publishing: a region must never carry bytes the serving
  // ladder would reject (attachers would all degrade at once).
  auto loaded = core::AdsalaGemm::try_load(model_path, config_path);
  if (!loaded.ok()) {
    report_error(loaded.error());
    return exit_code_for(loaded.error().code);
  }
  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const Error err = core::publish_shm_region(args.shm, slurp(model_path),
                                             slurp(config_path));
  if (!err.ok()) {
    report_error(err);
    return exit_code_for(err.code);
  }
  std::printf("published %s -> %s (platform %s, model %s)\n",
              args.dir.c_str(), args.shm.c_str(),
              loaded.value().platform().c_str(),
              loaded.value().model_name().c_str());
  return 0;
}

int cmd_serve(const Args& args) {
  if (args.socket.empty()) usage("serve needs --socket PATH");
  if (args.reattach && args.shm.empty()) {
    usage("serve --reattach needs --shm PATH (the region to watch)");
  }
  int exit_code = 0;
  auto runtime = load_runtime(args, &exit_code);
  if (runtime == nullptr) return exit_code;
  std::printf("serving platform %s, model %s (mode %s) on %s%s\n",
              runtime->platform().c_str(), runtime->model_name().c_str(),
              core::serving_mode_name(runtime->serving_mode()),
              args.socket.c_str(),
              args.reattach ? " (reattach on new shm generations)" : "");
  std::fflush(stdout);
  daemon::ServeOptions options;
  options.socket_path = args.socket;
  options.max_requests = args.max_requests;
  options.io_timeout_ms = args.io_timeout_ms;
  if (args.reattach) options.reattach_shm = args.shm;
  const Error err = daemon::serve(*runtime, options);
  if (!err.ok()) {
    report_error(err);
    return exit_code_for(err.code);
  }
  return 0;
}

/// Traffic generator for the retuning loop: measures sampled shapes on the
/// chosen backend across the serving grid, recording every measurement into
/// the telemetry log through the runtime's own sampler (1-in-1 sampling, so
/// the log carries exactly what was measured).
int cmd_sample(const Args& args) {
  if (args.telemetry.empty()) usage("sample needs --telemetry PATH");
  int exit_code = 0;
  auto runtime = load_runtime(args, &exit_code);
  if (runtime == nullptr) return exit_code;

  auto opened = core::TelemetryLog::open(args.telemetry);
  if (!opened.ok()) {
    report_error(opened.error());
    return exit_code_for(opened.error().code);
  }
  auto log =
      std::make_shared<core::TelemetryLog>(std::move(opened).value());
  runtime->enable_sampling(log, 1);

  auto executor = make_backend(args.platform);
  sampling::DomainConfig domain;
  domain.memory_cap_bytes = args.cap_mb * 1024ull * 1024;
  for (const auto op : args.ops) {
    const auto& traits = core::op_traits(op);
    auto sampler = traits.make_sampler(domain);
    for (const auto& shape : sampler->sample(args.samples)) {
      long x = 0, y = 0, z = 0;
      traits.from_shape(shape, &x, &y, &z);
      for (int p : runtime->thread_grid()) {
        const double seconds = executor->measure_op(op, shape, p, 3);
        runtime->record_sample(op, x, y, z, shape.elem_bytes, p,
                               static_cast<std::uint64_t>(seconds * 1e9));
      }
    }
  }
  if (const Error err = log->flush(); !err.ok()) {
    report_error(err);
    return exit_code_for(err.code);
  }
  std::printf("sampled %llu records into %s (%llu dropped)\n",
              static_cast<unsigned long long>(runtime->samples_recorded()),
              args.telemetry.c_str(),
              static_cast<unsigned long long>(runtime->samples_dropped()));
  return runtime->samples_dropped() == 0 ? 0 : 1;
}

int cmd_retune(const Args& args) {
  if (args.telemetry.empty()) usage("retune needs --telemetry PATH");
  core::RetuneOptions options;
  options.telemetry_path = args.telemetry;
  options.artefact_dir = args.dir;
  options.drift.threshold = args.threshold;
  options.drift.window = args.window;
  options.drift.min_groups = args.min_groups;
  options.force = args.force;
  options.train.tune = args.tune;
  options.train.candidates = args.models;
  options.publish_shm = args.shm;

  auto result = core::retune(options);
  if (!result.ok()) {
    report_error(result.error());
    return exit_code_for(result.error().code);
  }
  const core::RetuneReport& report = result.value();
  std::printf("telemetry: %zu records (%zu in drift window)\n",
              report.telemetry_records, report.drift.window_records);
  for (const auto& stats : report.drift.per_op) {
    std::printf("  %-6s %4zu records %3zu groups  mean regret %6.2f%%  "
                "max %6.2f%%%s\n",
                blas::op_name(stats.op), stats.records, stats.groups,
                100.0 * stats.mean_regret, 100.0 * stats.max_regret,
                stats.fired ? "  DRIFT" : "");
  }
  if (!report.retrained) {
    std::printf("no drift above threshold %.0f%%; artefacts unchanged "
                "(version %llu)\n",
                100.0 * args.threshold,
                static_cast<unsigned long long>(report.previous_version));
    return 0;
  }
  std::printf("retrained (model %s): version %llu -> %llu%s\n",
              report.selected_model.c_str(),
              static_cast<unsigned long long>(report.previous_version),
              static_cast<unsigned long long>(report.new_version),
              args.shm.empty() ? "" : ", republished to shm");
  return 0;
}

int cmd_rollback(const Args& args) {
  if (args.to_version == 0) usage("rollback needs --to VERSION");
  auto result =
      core::rollback(args.dir, args.to_version, args.shm, nullptr);
  if (!result.ok()) {
    report_error(result.error());
    return exit_code_for(result.error().code);
  }
  std::printf("rolled back to retained version %llu, now current as "
              "version %llu%s\n",
              static_cast<unsigned long long>(args.to_version),
              static_cast<unsigned long long>(result.value()),
              args.shm.empty() ? "" : ", republished to shm");
  return 0;
}

int cmd_versions(const Args& args) {
  const std::uint64_t current = core::artefact_version(args.dir);
  if (current == 0) {
    std::printf("%s: unversioned (no VERSION file yet)\n", args.dir.c_str());
    return 0;
  }
  std::printf("current: %llu\nretained:",
              static_cast<unsigned long long>(current));
  for (const std::uint64_t v : core::retained_artefact_versions(args.dir)) {
    std::printf(" %llu", static_cast<unsigned long long>(v));
  }
  std::printf("\n");
  return 0;
}

/// Test-only misbehaving client: connect, send a few bytes of a frame,
/// hold the connection while sleeping, exit. Exercises the daemon's
/// per-connection io deadline (a wedged client must cost one timeout, not
/// the whole service).
int run_wedge_client(const std::string& socket_path, int wedge_ms) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) usage("socket path too long");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return 1;
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    const Error err{ErrorCode::kUnavailable,
                    socket_path + ": wedge client cannot connect"};
    report_error(err);
    return exit_code_for(err.code);
  }
  const std::uint8_t partial[4] = {daemon::kProtocolVersion, 0, 4, 0};
  (void)::send(fd, partial, sizeof(partial), MSG_NOSIGNAL);
  std::printf("wedged on %s for %d ms (4 of %zu frame bytes sent)\n",
              socket_path.c_str(), wedge_ms, daemon::kRequestBytes);
  std::fflush(stdout);
  timespec ts{wedge_ms / 1000, static_cast<long>(wedge_ms % 1000) * 1000000};
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
  ::close(fd);
  return 0;
}

int cmd_query(const Args& args) {
  if (args.socket.empty()) usage("query needs --socket PATH");
  if (args.wedge_ms > 0) return run_wedge_client(args.socket, args.wedge_ms);
  if (args.queries.size() != 1) {
    usage("query needs exactly one --shape or family flag");
  }
  const auto& [op, shape] = args.queries.front();
  const auto& traits = core::op_traits(op);
  long coords[3] = {0, 0, 0};
  traits.from_shape(shape, &coords[0], &coords[1], &coords[2]);

  if (args.retry) {
    // Resilient path: bounded retry + breaker + in-process fallback. The
    // answer always arrives; the exit code only reflects semantic errors.
    core::ResilientClient::Options options;
    if (const char* env = std::getenv("ADSALA_RETRY_ATTEMPTS")) {
      options.max_attempts = std::atoi(env);
    }
    if (const char* env = std::getenv("ADSALA_RETRY_BACKOFF_MS")) {
      options.base_backoff_ms = std::atoi(env);
    }
    if (const char* env = std::getenv("ADSALA_BREAKER_THRESHOLD")) {
      options.breaker_threshold = std::atoi(env);
    }
    if (const char* env = std::getenv("ADSALA_BREAKER_OPEN_MS")) {
      options.breaker_open_ms = std::atoi(env);
    }
    options.fallback_loader = [&args]() {
      if (!args.shm.empty()) {
        if (auto attached = core::AdsalaGemm::try_attach(args.shm);
            attached.ok()) {
          return std::move(attached).value();
        }
        return core::AdsalaGemm::heuristic_fallback();
      }
      return core::AdsalaGemm::load_or_fallback(args.dir + "/model.json",
                                                args.dir + "/config.json");
    };
    core::ResilientClient client(
        [&args](const core::ServeQuery& q)
            -> Expected<core::ServeAnswer> {
          daemon::Request req;
          req.op_code = static_cast<std::uint8_t>(blas::op_code(q.op));
          req.elem_bytes = static_cast<std::uint8_t>(q.elem_bytes);
          req.x = q.x;
          req.y = q.y;
          req.z = q.z;
          auto ans = daemon::query(args.socket, req, args.io_timeout_ms);
          if (!ans.ok()) return ans.error();
          if (ans.value().status != ErrorCode::kOk) {
            return Error{ans.value().status, "daemon rejected the request"};
          }
          core::ServeAnswer out;
          out.threads = static_cast<int>(ans.value().threads);
          out.mode = ans.value().mode;
          return out;
        },
        std::move(options));

    core::ServeQuery q;
    q.op = op;
    q.x = coords[0];
    q.y = coords[1];
    q.z = coords[2];
    auto answer = client.query(q);
    if (!answer.ok()) {
      report_error(answer.error());
      return exit_code_for(answer.error().code);
    }
    std::printf("%s", blas::op_name(op));
    for (int d = 0; d < traits.family_dims; ++d) {
      std::printf(" %s=%ld", traits.coord_names[d], coords[d]);
    }
    std::printf(" -> %d threads (mode %s%s)\n", answer.value().threads,
                core::serving_mode_name(
                    static_cast<core::ServingMode>(answer.value().mode)),
                answer.value().from_fallback ? ", local fallback" : "");
    return 0;
  }

  daemon::Request req;
  req.op_code = static_cast<std::uint8_t>(blas::op_code(op));
  req.elem_bytes = 4;
  req.x = coords[0];
  req.y = coords[1];
  req.z = coords[2];
  if (args.send_malformed) {
    // Deliberately violate the protocol (wrong version byte) so CI can
    // drive the daemon's protocol-error path over a real socket.
    req.version = 0x7F;
  }

  auto answer = daemon::query(args.socket, req, args.io_timeout_ms);
  if (!answer.ok()) {
    report_error(answer.error());
    return exit_code_for(answer.error().code);
  }
  const daemon::Ack& ack = answer.value();
  if (ack.status != ErrorCode::kOk) {
    const Error err{ack.status, "daemon rejected the request"};
    report_error(err);
    return exit_code_for(err.code);
  }
  std::printf("%s", blas::op_name(op));
  for (int d = 0; d < traits.family_dims; ++d) {
    std::printf(" %s=%ld", traits.coord_names[d], coords[d]);
  }
  std::printf(" -> %u threads (mode %s)\n", ack.threads,
              core::serving_mode_name(
                  static_cast<core::ServingMode>(ack.mode)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "install") return cmd_install(args);
    if (args.command == "predict") return cmd_predict(args);
    if (args.command == "inspect") return cmd_inspect(args);
    if (args.command == "time") return cmd_time(args);
    if (args.command == "publish") return cmd_publish(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "query") return cmd_query(args);
    if (args.command == "sample") return cmd_sample(args);
    if (args.command == "retune") return cmd_retune(args);
    if (args.command == "rollback") return cmd_rollback(args);
    if (args.command == "versions") return cmd_versions(args);
  } catch (const std::bad_alloc&) {
    const Error err{ErrorCode::kResourceExhausted, "out of memory"};
    report_error(err);
    return exit_code_for(err.code);
  } catch (const std::out_of_range& e) {
    // A decodable artefact missing an expected field (Json::at).
    const Error err{ErrorCode::kValidationError, e.what()};
    report_error(err);
    return exit_code_for(err.code);
  } catch (const std::exception& e) {
    const Error err{ErrorCode::kInternal, e.what()};
    report_error(err);
    return exit_code_for(err.code);
  }
  usage("unknown command");
}
