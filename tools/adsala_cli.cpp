// adsala — command-line interface to the ADSALA workflow.
//
//   adsala install   --platform <native|setonix|gadi|tiny> [--samples N]
//                    [--out DIR] [--cap-mb MB] [--no-tune]
//                    [--ops gemm,syrk,trsm,symm]
//   adsala predict   --dir DIR [--shape MxKxN ...] [--syrk NxK ...]
//                    [--trsm NxM ...] [--symm NxM ...]
//   adsala inspect   --dir DIR
//   adsala time      --platform <...> --shape MxKxN [--threads P]
//
// `install` runs the full installation workflow and writes model.json /
// config.json / timings.csv; `--ops gemm,syrk,trsm,symm` gathers an
// operation-aware campaign (one sub-campaign per operation over the same
// domain). `predict` loads those artefacts and prints the selected thread
// count per GEMM shape / SYRK (n, k) / TRSM (n, m) / SYMM (n, m) family
// member. `inspect` summarises the artefacts. `time`
// measures one GEMM on the chosen backend at a given thread count (or
// sweeps the default grid when --threads is omitted).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "blas/op.h"
#include "core/adsala.h"
#include "core/install.h"
#include "preprocess/features.h"

using namespace adsala;

namespace {

struct Args {
  std::string command;
  std::string platform = "native";
  std::string dir = "adsala_artifacts";
  std::size_t samples = 150;
  std::size_t cap_mb = 100;
  bool tune = true;
  int threads = 0;
  std::vector<blas::OpKind> ops = {blas::OpKind::kGemm};
  std::vector<simarch::GemmShape> shapes;
  std::vector<simarch::GemmShape> syrk_shapes;  ///< m == n convention
  std::vector<simarch::GemmShape> trsm_shapes;  ///< m == k convention
  std::vector<simarch::GemmShape> symm_shapes;  ///< m == k convention
};

[[noreturn]] void usage(const char* why = nullptr) {
  if (why != nullptr) std::fprintf(stderr, "error: %s\n\n", why);
  std::fprintf(stderr,
               "usage:\n"
               "  adsala install --platform <native|setonix|gadi|tiny> "
               "[--samples N] [--out DIR] [--cap-mb MB] [--no-tune] "
               "[--ops gemm,syrk,trsm,symm]\n"
               "  adsala predict --dir DIR [--shape MxKxN ...] "
               "[--syrk NxK ...] [--trsm NxM ...] [--symm NxM ...]\n"
               "  adsala inspect --dir DIR\n"
               "  adsala time    --platform <...> --shape MxKxN "
               "[--threads P]\n");
  std::exit(2);
}

simarch::GemmShape parse_shape(const std::string& text) {
  simarch::GemmShape shape;
  shape.elem_bytes = 4;
  if (std::sscanf(text.c_str(), "%ldx%ldx%ld", &shape.m, &shape.k,
                  &shape.n) != 3 ||
      shape.m < 1 || shape.k < 1 || shape.n < 1) {
    usage("--shape expects MxKxN with positive integers");
  }
  return shape;
}

Args parse(int argc, char** argv) {
  if (argc < 2) usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--platform") {
      args.platform = value();
    } else if (flag == "--dir" || flag == "--out") {
      args.dir = value();
    } else if (flag == "--samples") {
      args.samples = std::stoul(value());
    } else if (flag == "--cap-mb") {
      args.cap_mb = std::stoul(value());
    } else if (flag == "--no-tune") {
      args.tune = false;
    } else if (flag == "--threads") {
      args.threads = std::stoi(value());
    } else if (flag == "--shape") {
      args.shapes.push_back(parse_shape(value()));
    } else if (flag == "--syrk") {
      simarch::GemmShape shape;
      shape.elem_bytes = 4;
      if (std::sscanf(value().c_str(), "%ldx%ld", &shape.n, &shape.k) != 2 ||
          shape.n < 1 || shape.k < 1) {
        usage("--syrk expects NxK with positive integers");
      }
      shape.m = shape.n;
      args.syrk_shapes.push_back(shape);
    } else if (flag == "--trsm" || flag == "--symm") {
      // (n, m) families: n x n triangle / symmetric A, m RHS columns;
      // stored as the equivalent-GEMM (n, n, m) with m == k.
      simarch::GemmShape shape;
      shape.elem_bytes = 4;
      if (std::sscanf(value().c_str(), "%ldx%ld", &shape.m, &shape.n) != 2 ||
          shape.m < 1 || shape.n < 1) {
        usage((flag + " expects NxM with positive integers").c_str());
      }
      shape.k = shape.m;
      (flag == "--trsm" ? args.trsm_shapes : args.symm_shapes)
          .push_back(shape);
    } else if (flag == "--ops") {
      args.ops.clear();
      std::string list = value();
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string token =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        const auto op = blas::parse_op(token);
        if (!op) usage("--ops expects a comma list of gemm|syrk|trsm|symm");
        args.ops.push_back(*op);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else {
      usage(("unknown flag " + flag).c_str());
    }
  }
  return args;
}

std::unique_ptr<core::GemmExecutor> make_backend(const std::string& name) {
  if (name == "native") return std::make_unique<core::NativeExecutor>();
  simarch::CpuTopology topo;
  if (name == "setonix") {
    topo = simarch::setonix_topology();
  } else if (name == "gadi") {
    topo = simarch::gadi_topology();
  } else if (name == "tiny") {
    topo = simarch::tiny_topology();
  } else {
    usage("unknown platform");
  }
  return std::make_unique<core::SimulatedExecutor>(
      simarch::MachineModel(topo, 42));
}

int cmd_install(const Args& args) {
  auto executor = make_backend(args.platform);
  core::InstallOptions options;
  options.gather.n_samples = args.samples;
  options.gather.ops = args.ops;
  options.gather.domain.memory_cap_bytes = args.cap_mb * 1024ull * 1024;
  if (args.platform == "native") {
    options.gather.iterations = 3;
    options.gather.domain.dim_max =
        std::min<long>(options.gather.domain.dim_max, 2000);
  }
  options.train.tune = args.tune;
  options.output_dir = args.dir;
  std::filesystem::create_directories(args.dir);

  std::string op_list;
  for (const auto op : args.ops) {
    if (!op_list.empty()) op_list += ',';
    op_list += blas::op_name(op);
  }
  std::printf(
      "installing on '%s' (%zu shapes per op, ops=%s, cap %zu MB, "
      "tune=%s)...\n",
      args.platform.c_str(), args.samples, op_list.c_str(), args.cap_mb,
      args.tune ? "yes" : "no");
  const auto report = core::install(*executor, options);
  std::printf("gather %.1fs, train %.1fs\n", report.gather_seconds,
              report.train_seconds);
  std::printf("%-18s %10s %10s %10s %10s\n", "model", "norm RMSE",
              "eval (us)", "est mean", "est agg");
  for (const auto& r : report.trained.reports) {
    std::printf("%-18s %10.3f %10.1f %10.2f %10.2f\n", r.model_name.c_str(),
                r.test_rmse_norm, r.eval_time_us, r.est_mean_speedup,
                r.est_agg_speedup);
  }
  std::printf("selected: %s\nartefacts: %s, %s\n",
              report.trained.selected.c_str(), report.model_path.c_str(),
              report.config_path.c_str());
  return 0;
}

int cmd_predict(const Args& args) {
  if (args.shapes.empty() && args.syrk_shapes.empty() &&
      args.trsm_shapes.empty() && args.symm_shapes.empty()) {
    usage("predict needs at least one --shape, --syrk, --trsm or --symm");
  }
  core::AdsalaGemm runtime(args.dir + "/model.json",
                           args.dir + "/config.json");
  std::printf("platform %s, model %s, max threads %d, op-aware %s\n",
              runtime.platform().c_str(), runtime.model_name().c_str(),
              runtime.max_threads(), runtime.op_aware() ? "yes" : "no");
  for (const auto& s : args.shapes) {
    std::printf("gemm %ldx%ldx%ld -> %d threads\n", s.m, s.k, s.n,
                runtime.select_threads(s.m, s.k, s.n));
  }
  // The proxy marker is per schema tier: a PR-2-era 21-column artefact
  // serves SYRK first-class but still proxies TRSM/SYMM as GEMM rows.
  const std::size_t width = runtime.pipeline().n_input_features();
  const bool aware = runtime.op_aware();
  const char* syrk_fb =
      aware && width >= preprocess::kNumLegacyOpAwareFeatures
          ? ""
          : " (gemm-proxy fallback)";
  const char* tri_fb = aware && width >= preprocess::kNumOpAwareFeatures
                           ? ""
                           : " (gemm-proxy fallback)";
  for (const auto& s : args.syrk_shapes) {
    std::printf("syrk n=%ld k=%ld -> %d threads%s\n", s.n, s.k,
                runtime.select_threads_syrk(s.n, s.k), syrk_fb);
  }
  for (const auto& s : args.trsm_shapes) {
    std::printf("trsm n=%ld m=%ld -> %d threads%s\n", s.m, s.n,
                runtime.select_threads_trsm(s.m, s.n), tri_fb);
  }
  for (const auto& s : args.symm_shapes) {
    std::printf("symm n=%ld m=%ld -> %d threads%s\n", s.m, s.n,
                runtime.select_threads_symm(s.m, s.n), tri_fb);
  }
  return 0;
}

int cmd_inspect(const Args& args) {
  const Json config = read_json_file(args.dir + "/config.json");
  const Json model = read_json_file(args.dir + "/model.json");
  std::printf("platform    : %s\n", config.at("platform").as_string().c_str());
  std::printf("max threads : %d\n", config.at("max_threads").as_int());
  std::printf("model       : %s\n", model.at("model").as_string().c_str());
  std::printf("thread grid :");
  for (const auto& v : config.at("thread_grid").as_array()) {
    std::printf(" %d", v.as_int());
  }
  std::printf("\n");
  const Json& pipe = config.at("pipeline");
  std::printf("pipeline    : yeo_johnson=%s standardize=%s lof=%s "
              "corr_filter=%s log_label=%s\n",
              pipe.at("yeo_johnson").as_bool() ? "on" : "off",
              pipe.at("standardize").as_bool() ? "on" : "off",
              pipe.at("lof").as_bool() ? "on" : "off",
              pipe.at("corr_filter").as_bool() ? "on" : "off",
              pipe.at("log_label").as_bool() ? "on" : "off");
  bool op_aware = false;
  for (const auto& name : pipe.at("feature_names").as_array()) {
    if (name.as_string() == "op_syrk") op_aware = true;
  }
  std::printf("features    : %zu kept of %zu (%s schema)\n",
              pipe.at("keep").as_array().size(),
              pipe.at("feature_names").as_array().size(),
              op_aware ? "op-aware" : "PR-1 base");
  return 0;
}

int cmd_time(const Args& args) {
  if (args.shapes.empty()) usage("time needs --shape");
  auto executor = make_backend(args.platform);
  for (const auto& shape : args.shapes) {
    if (args.threads > 0) {
      const double t = executor->measure(shape, args.threads);
      std::printf("%ldx%ldx%ld @ %d threads: %.1f us (%.1f GFLOPS)\n",
                  shape.m, shape.k, shape.n, args.threads, 1e6 * t,
                  shape.flops() / t / 1e9);
    } else {
      std::printf("%ldx%ldx%ld thread sweep on %s:\n", shape.m, shape.k,
                  shape.n, args.platform.c_str());
      for (int p : core::default_thread_grid(executor->max_threads())) {
        const double t = executor->measure(shape, p);
        std::printf("  p=%3d  %12.1f us  %8.1f GFLOPS\n", p, 1e6 * t,
                    shape.flops() / t / 1e9);
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "install") return cmd_install(args);
    if (args.command == "predict") return cmd_predict(args);
    if (args.command == "inspect") return cmd_inspect(args);
    if (args.command == "time") return cmd_time(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage("unknown command");
}
