// Resident tuning daemon: `adsala_cli serve` answers shape -> threads
// queries over a Unix-domain socket, so short-lived processes (launchers,
// schedulers, scripting layers) get model-quality thread counts without
// paying artefact load + model setup per invocation.
//
// Wire protocol (version 1) — fixed layouts in the libips control-block
// style (SNIPPETS.md #1): every field at a compile-time offset, a version
// byte first, integers little-endian.
//
//   request (28 bytes)                    ack (8 bytes)
//   ------  -----------------            ------  ----------------------
//       0   protocol version (1)             0   protocol version (1)
//       1   op code (blas/op.h)              1   status (ErrorCode as u8)
//       2   element size in bytes            2   serving-mode rung
//       3   reserved (0)                         (0 model, 1 gemm_proxy,
//       4   x  (int64 LE)                        2 heuristic)
//      12   y  (int64 LE)                    3   reserved (0)
//      20   z  (int64 LE)                    4   threads (uint32 LE)
//
// (x, y, z) are the op's family coordinates exactly as select_threads takes
// them: GEMM (m, k, n); SYRK (n, k, -); TRSM/SYMM/TRMM (n, m, -).
//
// Error discipline: a malformed frame (short read, wrong version byte,
// unknown op code) is answered with an ack whose status is kProtocolError
// and the connection is closed — the daemon itself never exits on bad
// input. Semantically invalid values in a well-formed frame (element size
// other than 4/8, non-positive dimensions) ack kValidationError. The codec
// and the frame handler are pure functions so the test battery can fuzz
// them without sockets.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/adsala.h"

namespace adsala::daemon {

inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kRequestBytes = 28;
inline constexpr std::size_t kAckBytes = 8;

/// One decoded query. `op_code` is kept raw (not blas::OpKind) because an
/// unknown code must survive decoding long enough to be rejected.
struct Request {
  std::uint8_t version = kProtocolVersion;
  std::uint8_t op_code = 0;
  std::uint8_t elem_bytes = 4;
  std::int64_t x = 0;
  std::int64_t y = 0;
  std::int64_t z = 0;
};

/// One answer. `status` mirrors the error taxonomy (common/status.h); the
/// threads/mode fields are meaningful only when status == kOk.
struct Ack {
  std::uint8_t version = kProtocolVersion;
  ErrorCode status = ErrorCode::kOk;
  std::uint8_t mode = 2;  ///< serving rung: 0 model, 1 proxy, 2 heuristic
  std::uint32_t threads = 0;
};

/// Serialises a request into its 28-byte frame (buf must hold kRequestBytes).
void encode_request(const Request& req, std::uint8_t* buf);

/// Serialises an ack into its 8-byte frame (buf must hold kAckBytes).
void encode_ack(const Ack& ack, std::uint8_t* buf);

/// Decodes an ack frame. kProtocolError on short frames or a version
/// mismatch — garbled server answers must not be mistaken for decisions.
Expected<Ack> decode_ack(const std::uint8_t* buf, std::size_t len);

/// The daemon's whole brain, socket-free: validates one request frame and
/// answers it against the runtime. Never throws; every failure becomes an
/// ack status per the taxonomy (kProtocolError for frame damage,
/// kValidationError for bad values in a valid frame).
Ack handle_frame(const core::AdsalaGemm& runtime, const std::uint8_t* frame,
                 std::size_t len);

struct ServeOptions {
  std::string socket_path;
  /// Exit the accept loop after answering this many requests (< 0 = serve
  /// forever). CI smoke tests use a small positive count so the daemon
  /// terminates deterministically.
  long max_requests = -1;
  /// Optional external stop flag, polled between connections.
  const std::atomic<bool>* stop = nullptr;
  /// Per-connection I/O deadline (poll(2)-based, recv and send): a client
  /// that connects and then stalls — half a frame sent, or not draining its
  /// ack — costs the single-threaded accept loop at most this long before
  /// its connection is dropped and the next client is served. <= 0 disables
  /// the deadline (blocking I/O, pre-ISSUE-10 behaviour).
  int io_timeout_ms = 2000;
  /// Install SIGTERM/SIGINT handlers for graceful drain: the in-flight
  /// request finishes, a queued follow-up frame is refused with a
  /// kUnavailable ack, the socket file is unlinked, and serve() returns
  /// kOk. Off for in-process test servers that must not touch global
  /// process signal state.
  bool handle_signals = true;
  /// Continual-retuning integration: when non-empty, re-check this
  /// shared-memory region between client connections and — whenever its
  /// generation counter moved past what this daemon last served from —
  /// try_attach the new artefacts and hot-swap them into the runtime
  /// (AdsalaGemm::install; in-flight answers finish on the old snapshot).
  /// A region that is missing, torn, or caught mid-swap is skipped and
  /// retried at the next connection; the daemon never degrades what it is
  /// already serving because a *re*-attach failed.
  std::string reattach_shm;
};

/// Binds a Unix-domain socket at options.socket_path and serves queries
/// against `runtime` until max_requests is exhausted, *stop goes true, or a
/// drain signal (SIGTERM/SIGINT, see ServeOptions::handle_signals) arrives.
/// An existing socket file is probed before it is reclaimed: when a live
/// daemon still answers on it, serve() refuses with kPreconditionFailed
/// instead of silently stealing its traffic; only a dead socket (connect ->
/// ECONNREFUSED) is unlinked and rebound. Returns kOk on a clean exit
/// (including drain), kInternal on socket-layer failures (bind, listen).
/// Protocol errors and per-connection deadline expiries cost one client
/// connection each, never the daemon. Non-const runtime: the reattach_shm
/// option hot-swaps new generations in (queries stay lock-free).
Error serve(core::AdsalaGemm& runtime, const ServeOptions& options);

/// Client side: sends one request to a serving daemon and returns the
/// decoded ack. kNotFound when no socket exists at the path, kUnavailable
/// when nothing is accepting on it (or the daemon does not answer within
/// `io_timeout_ms`; <= 0 blocks forever), kProtocolError on a garbled
/// answer. Note the transport-level status is distinct from ack.status — a
/// healthy round-trip can still carry a non-kOk ack.
Expected<Ack> query(const std::string& socket_path, const Request& req,
                    int io_timeout_ms = 2000);

}  // namespace adsala::daemon
