#!/usr/bin/env python3
"""Markdown link checker for the repo docs.

Verifies that every relative link target in the given markdown files exists
on disk (files or directories), including `#anchor` fragments against the
target file's headings. External (http/https/mailto) links are not fetched.

Usage: tools/check_md_links.py README.md docs/*.md
Exit status: 0 when every link resolves, 1 otherwise.
"""
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#+\s+(.*)$", re.MULTILINE)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, drop punctuation, dash spaces."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    return {slugify(h) for h in HEADING_RE.findall(path.read_text())}


def check_file(md: Path) -> list[str]:
    errors = []
    for target in LINK_RE.findall(md.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        dest = (md.parent / path_part).resolve() if path_part else md.resolve()
        if not dest.exists():
            errors.append(f"{md}: broken link -> {target}")
            continue
        if fragment and dest.is_file() and dest.suffix == ".md":
            if fragment not in anchors_of(dest):
                errors.append(f"{md}: missing anchor -> {target}")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print("usage: check_md_links.py FILE.md [FILE.md ...]",
              file=sys.stderr)
        return 2
    errors = []
    checked = 0
    for arg in argv[1:]:
        md = Path(arg)
        if not md.is_file():
            errors.append(f"{md}: no such file")
            continue
        checked += 1
        errors.extend(check_file(md))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"check_md_links: {checked} files checked, {len(errors)} problems")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
