#include "adsala_daemon.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "blas/op.h"
#include "core/shm_store.h"

namespace adsala::daemon {

namespace {

void put_u32le(std::uint8_t* buf, std::uint32_t v) {
  buf[0] = static_cast<std::uint8_t>(v);
  buf[1] = static_cast<std::uint8_t>(v >> 8);
  buf[2] = static_cast<std::uint8_t>(v >> 16);
  buf[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_i64le(std::uint8_t* buf, std::int64_t v) {
  auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(u >> (8 * i));
}

std::uint32_t get_u32le(const std::uint8_t* buf) {
  return static_cast<std::uint32_t>(buf[0]) |
         (static_cast<std::uint32_t>(buf[1]) << 8) |
         (static_cast<std::uint32_t>(buf[2]) << 16) |
         (static_cast<std::uint32_t>(buf[3]) << 24);
}

std::int64_t get_i64le(const std::uint8_t* buf) {
  std::uint64_t u = 0;
  for (int i = 0; i < 8; ++i) u |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return static_cast<std::int64_t>(u);
}

long long now_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<long long>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

/// poll(2)s `fd` for `events` within what is left of the deadline. Returns
/// +1 ready, 0 deadline expired, -1 hard error. EINTR restarts the wait
/// with the remaining budget (a drain signal mid-poll is detected by the
/// caller at the next frame boundary). deadline_ms < 0 = no deadline.
int wait_ready(int fd, short events, long long deadline_ms) {
  for (;;) {
    int timeout = -1;
    if (deadline_ms >= 0) {
      const long long left = deadline_ms - now_ms();
      if (left <= 0) return 0;
      timeout = static_cast<int>(left);
    }
    pollfd pfd{fd, events, 0};
    const int n = ::poll(&pfd, 1, timeout);
    if (n > 0) return 1;
    if (n == 0) return 0;
    if (errno == EINTR) continue;
    return -1;
  }
}

/// Reads exactly `len` bytes; returns the count read (short on EOF, error,
/// or deadline expiry). deadline_ms is an absolute CLOCK_MONOTONIC time
/// (< 0 = block forever, pre-deadline behaviour).
std::size_t read_full(int fd, std::uint8_t* buf, std::size_t len,
                      long long deadline_ms = -1) {
  std::size_t got = 0;
  while (got < len) {
    if (wait_ready(fd, POLLIN, deadline_ms) <= 0) break;
    const ssize_t n = ::read(fd, buf + got, len - got);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    got += static_cast<std::size_t>(n);
  }
  return got;
}

bool write_full(int fd, const std::uint8_t* buf, std::size_t len,
                long long deadline_ms = -1) {
  std::size_t put = 0;
  while (put < len) {
    if (wait_ready(fd, POLLOUT, deadline_ms) <= 0) return false;
    const ssize_t n = ::send(fd, buf + put, len - put, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    put += static_cast<std::size_t>(n);
  }
  return true;
}

/// Absolute deadline `timeout_ms` from now; < 0 when deadlines are off.
long long deadline_after(int timeout_ms) {
  return timeout_ms > 0 ? now_ms() + timeout_ms : -1;
}

Ack protocol_error_ack() {
  Ack ack;
  ack.status = ErrorCode::kProtocolError;
  return ack;
}

}  // namespace

void encode_request(const Request& req, std::uint8_t* buf) {
  buf[0] = req.version;
  buf[1] = req.op_code;
  buf[2] = req.elem_bytes;
  buf[3] = 0;
  put_i64le(buf + 4, req.x);
  put_i64le(buf + 12, req.y);
  put_i64le(buf + 20, req.z);
}

void encode_ack(const Ack& ack, std::uint8_t* buf) {
  buf[0] = ack.version;
  buf[1] = static_cast<std::uint8_t>(ack.status);
  buf[2] = ack.mode;
  buf[3] = 0;
  put_u32le(buf + 4, ack.threads);
}

Expected<Ack> decode_ack(const std::uint8_t* buf, std::size_t len) {
  if (len < kAckBytes) {
    return Error{ErrorCode::kProtocolError,
                 "short ack frame: " + std::to_string(len) + " of " +
                     std::to_string(kAckBytes) + " bytes"};
  }
  if (buf[0] != kProtocolVersion) {
    return Error{ErrorCode::kProtocolError,
                 "ack protocol version " + std::to_string(buf[0]) +
                     " (expected " + std::to_string(kProtocolVersion) + ")"};
  }
  Ack ack;
  ack.version = buf[0];
  ack.status = static_cast<ErrorCode>(buf[1]);
  ack.mode = buf[2];
  ack.threads = get_u32le(buf + 4);
  return ack;
}

Ack handle_frame(const core::AdsalaGemm& runtime, const std::uint8_t* frame,
                 std::size_t len) {
  // Frame damage first: a truncated or version-mismatched request tells us
  // nothing reliable about what the client wanted.
  if (len < kRequestBytes) return protocol_error_ack();
  if (frame[0] != kProtocolVersion) return protocol_error_ack();
  const auto op = blas::op_from_code(frame[1]);
  if (!op.has_value()) return protocol_error_ack();

  const int elem = frame[2];
  const std::int64_t x = get_i64le(frame + 4);
  const std::int64_t y = get_i64le(frame + 12);
  const std::int64_t z = get_i64le(frame + 20);

  // A well-formed frame with unusable values is the client's semantic
  // mistake, not wire damage: distinct status so callers can tell.
  Ack ack;
  if ((elem != 4 && elem != 8) || x < 1 || y < 1 || z < 0 ||
      (*op == blas::OpKind::kGemm && z < 1)) {
    ack.status = ErrorCode::kValidationError;
    return ack;
  }

  const core::AdsalaGemm::Decision d =
      runtime.query(*op, x, y, z, elem);
  ack.status = ErrorCode::kOk;
  ack.mode = static_cast<std::uint8_t>(d.mode);
  ack.threads = static_cast<std::uint32_t>(d.threads);
  return ack;
}

namespace {

/// Graceful-drain flag, set by the SIGTERM/SIGINT handler. sig_atomic_t by
/// the book: the handler does nothing else.
volatile sig_atomic_t g_drain = 0;

void drain_handler(int) { g_drain = 1; }

/// RAII SIGTERM/SIGINT -> drain_handler installation. Deliberately without
/// SA_RESTART, so a signal mid-accept surfaces as EINTR and the loop can
/// check the flag instead of blocking in accept() forever.
class DrainSignals {
 public:
  explicit DrainSignals(bool install) : installed_(install) {
    if (!installed_) return;
    g_drain = 0;
    struct sigaction sa{};
    sa.sa_handler = drain_handler;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ::sigaction(SIGTERM, &sa, &old_term_);
    ::sigaction(SIGINT, &sa, &old_int_);
  }
  ~DrainSignals() {
    if (!installed_) return;
    ::sigaction(SIGTERM, &old_term_, nullptr);
    ::sigaction(SIGINT, &old_int_, nullptr);
  }
  bool draining() const { return installed_ && g_drain != 0; }

 private:
  bool installed_;
  struct sigaction old_term_{};
  struct sigaction old_int_{};
};

/// Bind-time liveness probe: does something still *answer* on the socket
/// file at `addr`? A connect that succeeds means a live daemon (refuse to
/// steal its traffic); ECONNREFUSED means a dead socket file (safe to
/// reclaim); ENOENT means nothing there at all.
enum class SocketProbe { kAbsent, kDead, kLive };

SocketProbe probe_socket(const sockaddr_un& addr) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return SocketProbe::kAbsent;  // bind will report the real error
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  const int saved = errno;
  ::close(fd);
  if (rc == 0) return SocketProbe::kLive;
  if (saved == ENOENT) return SocketProbe::kAbsent;
  return SocketProbe::kDead;  // ECONNREFUSED and friends: stale file
}

/// One reattach probe (see ServeOptions::reattach_shm): when the region's
/// generation moved past `last_generation`, attach + validate the new
/// artefacts and hot-swap them in. Every failure mode is a skip-and-retry,
/// never a degradation of what is already being served.
void maybe_reattach(core::AdsalaGemm& runtime, const std::string& shm_path,
                    std::uint64_t* last_generation) {
  auto region = core::read_shm_region(shm_path);
  if (!region.ok()) return;
  if (region.value().generation == *last_generation) return;
  auto attached = core::AdsalaGemm::try_attach(shm_path);
  if (!attached.ok()) return;  // torn or mid-swap: retry next connection
  const std::uint64_t version = runtime.install(attached.value().snapshot());
  *last_generation = region.value().generation;
  std::fprintf(stderr,
               "[serve] reattached %s (shm generation %llu) as snapshot "
               "version %llu\n",
               shm_path.c_str(),
               static_cast<unsigned long long>(*last_generation),
               static_cast<unsigned long long>(version));
}

}  // namespace

Error serve(core::AdsalaGemm& runtime, const ServeOptions& options) {
  sockaddr_un addr{};
  if (options.socket_path.size() >= sizeof(addr.sun_path)) {
    return Error{ErrorCode::kValidationError,
                 options.socket_path + ": socket path too long"};
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    return Error{ErrorCode::kInternal,
                 std::string("socket: ") + std::strerror(errno)};
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  // Reclaim the socket path only when nothing answers on it: a second
  // daemon started against a *live* daemon's socket must refuse loudly,
  // not silently steal its traffic.
  switch (probe_socket(addr)) {
    case SocketProbe::kLive: {
      ::close(listener);
      return Error{ErrorCode::kPreconditionFailed,
                   options.socket_path +
                       ": a live daemon is already serving on this socket"};
    }
    case SocketProbe::kDead:
      ::unlink(options.socket_path.c_str());
      break;
    case SocketProbe::kAbsent:
      break;
  }
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Error err{ErrorCode::kInternal, options.socket_path + ": bind: " +
                                              std::strerror(errno)};
    ::close(listener);
    return err;
  }
  if (::listen(listener, 16) != 0) {
    const Error err{ErrorCode::kInternal, options.socket_path +
                                              ": listen: " +
                                              std::strerror(errno)};
    ::close(listener);
    return err;
  }

  // Baseline the reattach generation against what is in the region right
  // now: the runtime was just loaded from these (or equivalent) bytes, and
  // re-installing them would only burn a snapshot version.
  std::uint64_t shm_generation = 0;
  if (!options.reattach_shm.empty()) {
    if (auto region = core::read_shm_region(options.reattach_shm);
        region.ok()) {
      shm_generation = region.value().generation;
    }
  }

  DrainSignals drain(options.handle_signals);
  long answered = 0;
  while (options.max_requests < 0 || answered < options.max_requests) {
    if (drain.draining()) break;
    if (options.stop != nullptr &&
        options.stop->load(std::memory_order_acquire)) {
      break;
    }
    if (!options.reattach_shm.empty()) {
      maybe_reattach(runtime, options.reattach_shm, &shm_generation);
    }
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      // EINTR is routine here: the drain handler (or any stray signal)
      // interrupts accept; loop back and let the flags decide.
      if (errno == EINTR) continue;
      const Error err{ErrorCode::kInternal, options.socket_path +
                                                ": accept: " +
                                                std::strerror(errno)};
      ::close(listener);
      return err;
    }
    // One connection can stream multiple requests; a malformed frame acks
    // kProtocolError and drops the connection (the stream framing is gone).
    // Each frame (recv + send) runs under its own io_timeout_ms deadline: a
    // wedged client costs one timeout, then the next caller is served.
    while (options.max_requests < 0 || answered < options.max_requests) {
      const long long deadline = deadline_after(options.io_timeout_ms);
      std::uint8_t frame[kRequestBytes];
      const std::size_t got = read_full(conn, frame, kRequestBytes, deadline);
      if (got == 0) break;  // clean client disconnect (or idle timeout)
      if (got < kRequestBytes && drain.draining()) {
        // Interrupted mid-frame by the drain signal with only a partial
        // frame on the wire: refuse rather than wait out the deadline.
        Ack refusal;
        refusal.status = ErrorCode::kUnavailable;
        std::uint8_t out[kAckBytes];
        encode_ack(refusal, out);
        write_full(conn, out, kAckBytes, deadline);
        break;
      }
      const Ack ack = handle_frame(runtime, frame, got);
      std::uint8_t out[kAckBytes];
      encode_ack(ack, out);
      const bool sent = write_full(conn, out, kAckBytes, deadline);
      ++answered;
      if (!sent || ack.status == ErrorCode::kProtocolError) break;
      if (drain.draining()) {
        // The in-flight request got its real answer; a follow-up frame
        // already queued on this connection gets an explicit refusal ack
        // (kUnavailable) so the client retries elsewhere instead of
        // misreading the close as a crash.
        if (wait_ready(conn, POLLIN, now_ms() + 1) > 0) {
          std::uint8_t next[kRequestBytes];
          if (read_full(conn, next, kRequestBytes, deadline_after(100)) ==
              kRequestBytes) {
            Ack refusal;
            refusal.status = ErrorCode::kUnavailable;
            encode_ack(refusal, out);
            write_full(conn, out, kAckBytes, deadline_after(100));
          }
        }
        break;
      }
    }
    ::close(conn);
  }
  ::close(listener);
  ::unlink(options.socket_path.c_str());
  return Error{};
}

Expected<Ack> query(const std::string& socket_path, const Request& req,
                    int io_timeout_ms) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Error{ErrorCode::kValidationError,
                 socket_path + ": socket path too long"};
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Error{ErrorCode::kInternal,
                 std::string("socket: ") + std::strerror(errno)};
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    if (saved == ENOENT) {
      return Error{ErrorCode::kNotFound,
                   socket_path + ": no daemon socket at this path"};
    }
    return Error{ErrorCode::kUnavailable,
                 socket_path + ": daemon not reachable: " +
                     std::strerror(saved)};
  }

  const long long deadline = deadline_after(io_timeout_ms);
  std::uint8_t frame[kRequestBytes];
  encode_request(req, frame);
  if (!write_full(fd, frame, kRequestBytes, deadline)) {
    const Error err{ErrorCode::kUnavailable,
                    socket_path + ": daemon hung up mid-request"};
    ::close(fd);
    return err;
  }
  std::uint8_t back[kAckBytes];
  const std::size_t got = read_full(fd, back, kAckBytes, deadline);
  ::close(fd);
  if (got < kAckBytes && deadline >= 0 && now_ms() >= deadline) {
    return Error{ErrorCode::kUnavailable,
                 socket_path + ": no answer within " +
                     std::to_string(io_timeout_ms) + "ms"};
  }
  return decode_ack(back, got);
}

}  // namespace adsala::daemon
