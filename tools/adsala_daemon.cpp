#include "adsala_daemon.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "blas/op.h"
#include "core/shm_store.h"

namespace adsala::daemon {

namespace {

void put_u32le(std::uint8_t* buf, std::uint32_t v) {
  buf[0] = static_cast<std::uint8_t>(v);
  buf[1] = static_cast<std::uint8_t>(v >> 8);
  buf[2] = static_cast<std::uint8_t>(v >> 16);
  buf[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_i64le(std::uint8_t* buf, std::int64_t v) {
  auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(u >> (8 * i));
}

std::uint32_t get_u32le(const std::uint8_t* buf) {
  return static_cast<std::uint32_t>(buf[0]) |
         (static_cast<std::uint32_t>(buf[1]) << 8) |
         (static_cast<std::uint32_t>(buf[2]) << 16) |
         (static_cast<std::uint32_t>(buf[3]) << 24);
}

std::int64_t get_i64le(const std::uint8_t* buf) {
  std::uint64_t u = 0;
  for (int i = 0; i < 8; ++i) u |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return static_cast<std::int64_t>(u);
}

/// Reads exactly `len` bytes; returns the count read (short on EOF/error).
std::size_t read_full(int fd, std::uint8_t* buf, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, buf + got, len - got);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    got += static_cast<std::size_t>(n);
  }
  return got;
}

bool write_full(int fd, const std::uint8_t* buf, std::size_t len) {
  std::size_t put = 0;
  while (put < len) {
    const ssize_t n = ::send(fd, buf + put, len - put, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    put += static_cast<std::size_t>(n);
  }
  return true;
}

Ack protocol_error_ack() {
  Ack ack;
  ack.status = ErrorCode::kProtocolError;
  return ack;
}

}  // namespace

void encode_request(const Request& req, std::uint8_t* buf) {
  buf[0] = req.version;
  buf[1] = req.op_code;
  buf[2] = req.elem_bytes;
  buf[3] = 0;
  put_i64le(buf + 4, req.x);
  put_i64le(buf + 12, req.y);
  put_i64le(buf + 20, req.z);
}

void encode_ack(const Ack& ack, std::uint8_t* buf) {
  buf[0] = ack.version;
  buf[1] = static_cast<std::uint8_t>(ack.status);
  buf[2] = ack.mode;
  buf[3] = 0;
  put_u32le(buf + 4, ack.threads);
}

Expected<Ack> decode_ack(const std::uint8_t* buf, std::size_t len) {
  if (len < kAckBytes) {
    return Error{ErrorCode::kProtocolError,
                 "short ack frame: " + std::to_string(len) + " of " +
                     std::to_string(kAckBytes) + " bytes"};
  }
  if (buf[0] != kProtocolVersion) {
    return Error{ErrorCode::kProtocolError,
                 "ack protocol version " + std::to_string(buf[0]) +
                     " (expected " + std::to_string(kProtocolVersion) + ")"};
  }
  Ack ack;
  ack.version = buf[0];
  ack.status = static_cast<ErrorCode>(buf[1]);
  ack.mode = buf[2];
  ack.threads = get_u32le(buf + 4);
  return ack;
}

Ack handle_frame(const core::AdsalaGemm& runtime, const std::uint8_t* frame,
                 std::size_t len) {
  // Frame damage first: a truncated or version-mismatched request tells us
  // nothing reliable about what the client wanted.
  if (len < kRequestBytes) return protocol_error_ack();
  if (frame[0] != kProtocolVersion) return protocol_error_ack();
  const auto op = blas::op_from_code(frame[1]);
  if (!op.has_value()) return protocol_error_ack();

  const int elem = frame[2];
  const std::int64_t x = get_i64le(frame + 4);
  const std::int64_t y = get_i64le(frame + 12);
  const std::int64_t z = get_i64le(frame + 20);

  // A well-formed frame with unusable values is the client's semantic
  // mistake, not wire damage: distinct status so callers can tell.
  Ack ack;
  if ((elem != 4 && elem != 8) || x < 1 || y < 1 || z < 0 ||
      (*op == blas::OpKind::kGemm && z < 1)) {
    ack.status = ErrorCode::kValidationError;
    return ack;
  }

  const core::AdsalaGemm::Decision d =
      runtime.query(*op, x, y, z, elem);
  ack.status = ErrorCode::kOk;
  ack.mode = static_cast<std::uint8_t>(d.mode);
  ack.threads = static_cast<std::uint32_t>(d.threads);
  return ack;
}

namespace {

/// One reattach probe (see ServeOptions::reattach_shm): when the region's
/// generation moved past `last_generation`, attach + validate the new
/// artefacts and hot-swap them in. Every failure mode is a skip-and-retry,
/// never a degradation of what is already being served.
void maybe_reattach(core::AdsalaGemm& runtime, const std::string& shm_path,
                    std::uint64_t* last_generation) {
  auto region = core::read_shm_region(shm_path);
  if (!region.ok()) return;
  if (region.value().generation == *last_generation) return;
  auto attached = core::AdsalaGemm::try_attach(shm_path);
  if (!attached.ok()) return;  // torn or mid-swap: retry next connection
  const std::uint64_t version = runtime.install(attached.value().snapshot());
  *last_generation = region.value().generation;
  std::fprintf(stderr,
               "[serve] reattached %s (shm generation %llu) as snapshot "
               "version %llu\n",
               shm_path.c_str(),
               static_cast<unsigned long long>(*last_generation),
               static_cast<unsigned long long>(version));
}

}  // namespace

Error serve(core::AdsalaGemm& runtime, const ServeOptions& options) {
  sockaddr_un addr{};
  if (options.socket_path.size() >= sizeof(addr.sun_path)) {
    return Error{ErrorCode::kValidationError,
                 options.socket_path + ": socket path too long"};
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    return Error{ErrorCode::kInternal,
                 std::string("socket: ") + std::strerror(errno)};
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(options.socket_path.c_str());  // replace a stale socket file
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Error err{ErrorCode::kInternal, options.socket_path + ": bind: " +
                                              std::strerror(errno)};
    ::close(listener);
    return err;
  }
  if (::listen(listener, 16) != 0) {
    const Error err{ErrorCode::kInternal, options.socket_path +
                                              ": listen: " +
                                              std::strerror(errno)};
    ::close(listener);
    return err;
  }

  // Baseline the reattach generation against what is in the region right
  // now: the runtime was just loaded from these (or equivalent) bytes, and
  // re-installing them would only burn a snapshot version.
  std::uint64_t shm_generation = 0;
  if (!options.reattach_shm.empty()) {
    if (auto region = core::read_shm_region(options.reattach_shm);
        region.ok()) {
      shm_generation = region.value().generation;
    }
  }

  long answered = 0;
  while (options.max_requests < 0 || answered < options.max_requests) {
    if (options.stop != nullptr &&
        options.stop->load(std::memory_order_acquire)) {
      break;
    }
    if (!options.reattach_shm.empty()) {
      maybe_reattach(runtime, options.reattach_shm, &shm_generation);
    }
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      const Error err{ErrorCode::kInternal, options.socket_path +
                                                ": accept: " +
                                                std::strerror(errno)};
      ::close(listener);
      return err;
    }
    // One connection can stream multiple requests; a malformed frame acks
    // kProtocolError and drops the connection (the stream framing is gone).
    while (options.max_requests < 0 || answered < options.max_requests) {
      std::uint8_t frame[kRequestBytes];
      const std::size_t got = read_full(conn, frame, kRequestBytes);
      if (got == 0) break;  // clean client disconnect
      const Ack ack = handle_frame(runtime, frame, got);
      std::uint8_t out[kAckBytes];
      encode_ack(ack, out);
      const bool sent = write_full(conn, out, kAckBytes);
      ++answered;
      if (!sent || ack.status == ErrorCode::kProtocolError) break;
    }
    ::close(conn);
  }
  ::close(listener);
  ::unlink(options.socket_path.c_str());
  return Error{};
}

Expected<Ack> query(const std::string& socket_path, const Request& req) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Error{ErrorCode::kValidationError,
                 socket_path + ": socket path too long"};
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Error{ErrorCode::kInternal,
                 std::string("socket: ") + std::strerror(errno)};
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    if (saved == ENOENT) {
      return Error{ErrorCode::kNotFound,
                   socket_path + ": no daemon socket at this path"};
    }
    return Error{ErrorCode::kUnavailable,
                 socket_path + ": daemon not reachable: " +
                     std::strerror(saved)};
  }

  std::uint8_t frame[kRequestBytes];
  encode_request(req, frame);
  if (!write_full(fd, frame, kRequestBytes)) {
    const Error err{ErrorCode::kUnavailable,
                    socket_path + ": daemon hung up mid-request"};
    ::close(fd);
    return err;
  }
  std::uint8_t back[kAckBytes];
  const std::size_t got = read_full(fd, back, kAckBytes);
  ::close(fd);
  return decode_ack(back, got);
}

}  // namespace adsala::daemon
