// Quickstart: install ADSALA on a small simulated machine, then use it as a
// drop-in GEMM whose thread count is chosen by the trained model.
//
//   $ ./quickstart
//
// The full workflow (sample shapes -> time them -> preprocess -> train ->
// select -> save artefacts -> load at runtime) runs in a few seconds.
#include <cstdio>
#include <filesystem>
#include <vector>

#include "core/adsala.h"
#include "core/install.h"

using namespace adsala;

int main() {
  // 1. Pick an execution backend. Here: the simulated 8-core test machine.
  //    (Use core::NativeExecutor for your real CPU — see native_autotune.)
  core::SimulatedExecutor executor(
      simarch::MachineModel(simarch::tiny_topology(), /*noise_seed=*/42));

  // 2. Install: benchmark the machine and train the thread-selection model.
  core::InstallOptions options;
  options.gather.n_samples = 120;  // timing campaign size
  options.gather.domain.memory_cap_bytes = 64ull * 1024 * 1024;
  options.gather.domain.dim_max = 6000;
  options.train.tune = false;  // default hyper-parameters: quickest path
  options.output_dir = "adsala_quickstart_artifacts";
  std::filesystem::create_directories(options.output_dir);

  std::printf("installing (gather + train)...\n");
  const auto report = core::install(executor, options);
  std::printf("  platform        : %s\n", report.trained.platform.c_str());
  std::printf("  selected model  : %s\n", report.trained.selected.c_str());
  std::printf("  est mean speedup: %.2fx\n",
              report.trained.selected_report().est_mean_speedup);
  std::printf("  artefacts       : %s, %s\n", report.model_path.c_str(),
              report.config_path.c_str());

  // 3. Load the artefacts at runtime (in a real application this is the only
  //    step; installation happened once per machine).
  core::AdsalaGemm gemm(report.model_path, report.config_path);

  // 4. Ask for thread counts, or just call sgemm and let it decide.
  for (long dim : {64L, 256L, 1024L, 4096L}) {
    std::printf("square GEMM %5ld^3 -> %2d threads\n", dim,
                gemm.select_threads(dim, dim, dim));
  }

  const int m = 128, k = 64, n = 96;
  std::vector<float> a(m * k, 1.0f), b(k * n, 2.0f), c(m * n, 0.0f);
  gemm.sgemm(m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(), n);
  std::printf("sgemm(%d,%d,%d) done; c[0] = %.0f (expect %d)\n", m, n, k,
              c[0], 2 * k);

  // Other BLAS-3 routines ride the same thread selection (paper future
  // work): a symmetric rank-k update on the lower triangle.
  std::vector<float> s(m * m, 0.0f);
  gemm.ssyrk(blas::Uplo::kLower, m, k, 1.0f, a.data(), k, 0.0f, s.data(), m);
  std::printf("ssyrk(n=%d,k=%d) done; diag[0] = %.0f (expect %d)\n", m, k,
              s[0], k);
  return 0;
}
