// DNN inference scenario: the paper's SS I motivation — convolution layers
// lowered to GEMM produce small and irregular shapes (e.g. ResNet's 64x3000
// operands) where the default "use every core" policy wastes most of the
// machine. This example runs a ResNet-like stack of lowered GEMMs on the
// simulated Gadi node and compares the default policy against ADSALA's
// per-layer thread selection, exercising the memoised repeat-call path the
// way a batched inference loop would.
#include <cstdio>
#include <string>
#include <vector>

#include "core/adsala.h"
#include "core/install.h"

using namespace adsala;

namespace {

struct Layer {
  const char* name;
  long m, k, n;  // im2col-lowered GEMM: filters x patch x spatial
};

// conv layers of a ResNet-ish forward pass, im2col-lowered (batch 1).
const Layer kLayers[] = {
    {"conv1   7x7x64 ", 64, 147, 12544},
    {"res2 1x1x64    ", 64, 64, 3136},
    {"res2 3x3x64    ", 64, 576, 3136},
    {"res3 1x1x128   ", 128, 128, 784},
    {"res3 3x3x128   ", 128, 1152, 784},
    {"res4 3x3x256   ", 256, 2304, 196},
    {"res5 3x3x512   ", 512, 4608, 49},
    {"fc   1000      ", 1000, 2048, 1},
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t train_samples = argc > 1 ? std::stoul(argv[1]) : 250;

  core::SimulatedExecutor executor(
      simarch::MachineModel(simarch::gadi_topology(), 42));

  std::printf("training ADSALA on the simulated Gadi node (%zu shapes)...\n",
              train_samples);
  core::GatherConfig gather;
  gather.n_samples = train_samples;
  gather.domain.memory_cap_bytes = 200ull * 1024 * 1024;
  gather.domain.dim_max = 16000;
  core::TrainOptions train;
  train.candidates = {"decision_tree", "xgboost"};
  train.tune = false;
  auto data = core::gather_timings(executor, gather);
  core::AdsalaGemm adsala(core::train_and_select(data, train));
  std::printf("selected model: %s\n\n", adsala.model_name().c_str());

  const int max_threads = executor.max_threads();
  double total_default = 0.0, total_ml = 0.0;
  std::printf("%-16s %14s %12s %12s %8s %7s\n", "layer", "GEMM (m,k,n)",
              "default(us)", "adsala(us)", "speedup", "thr");
  for (const auto& layer : kLayers) {
    const simarch::GemmShape shape{layer.m, layer.k, layer.n, 4};
    const int p = adsala.select_threads(layer.m, layer.k, layer.n);
    const double t_default = executor.measure(shape, max_threads);
    const double t_ml = executor.measure(shape, p);
    total_default += t_default;
    total_ml += t_ml;
    std::printf("%-16s %5ld,%5ld,%5ld %12.1f %12.1f %8.2f %7d\n", layer.name,
                layer.m, layer.k, layer.n, 1e6 * t_default, 1e6 * t_ml,
                t_default / t_ml, p);
  }
  std::printf("\nforward pass GEMM time: default %.2f ms -> adsala %.2f ms "
              "(%.2fx)\n",
              1e3 * total_default, 1e3 * total_ml,
              total_default / total_ml);

  // Batched inference: the same shapes repeat every batch; selection is
  // memoised so the model is not re-evaluated (paper SS III-C).
  std::printf("\nrunning 64 batches; repeated shapes hit the memoised "
              "selection path\n");
  for (int batch = 0; batch < 64; ++batch) {
    for (const auto& layer : kLayers) {
      (void)adsala.select_threads(layer.m, layer.k, layer.n);
    }
  }
  std::printf("done.\n");
  return 0;
}
