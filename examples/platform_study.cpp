// Platform study: train ADSALA on both simulated paper platforms (Setonix
// 2x64c Zen 3 and Gadi 2x24c Cascade Lake) and compare — optimal-thread
// histograms, selected models, and end-to-end speedups side by side. This is
// the "adapting to different HPC platforms" claim of the paper in one run.
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/adsala.h"
#include "core/install.h"

using namespace adsala;

namespace {

struct PlatformResult {
  std::string name;
  int max_threads = 0;
  std::string model;
  std::vector<double> optima;
  std::vector<double> speedups;
};

PlatformResult study(const simarch::CpuTopology& topo,
                     std::size_t n_samples) {
  PlatformResult result;
  result.name = topo.name;
  result.max_threads = topo.max_threads();

  core::SimulatedExecutor executor(simarch::MachineModel(topo, 42));
  core::GatherConfig gather;
  gather.n_samples = n_samples;
  gather.domain.memory_cap_bytes = 500ull * 1024 * 1024;
  gather.domain.dim_max = 74000;
  auto data = core::gather_timings(executor, gather);
  for (const auto& rec : data.records) {
    result.optima.push_back(rec.optimal_threads());
  }

  core::TrainOptions train;
  train.candidates = {"decision_tree", "xgboost", "lightgbm"};
  train.tune = false;
  core::AdsalaGemm adsala(core::train_and_select(data, train));
  result.model = adsala.model_name();

  sampling::DomainConfig fresh = gather.domain;
  fresh.seed = 4242;
  sampling::GemmDomainSampler sampler(fresh);
  for (const auto& shape : sampler.sample(80)) {
    const int p = adsala.select_threads(shape.m, shape.k, shape.n);
    result.speedups.push_back(executor.measure(shape, topo.max_threads()) /
                              executor.measure(shape, p));
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n_samples = argc > 1 ? std::stoul(argv[1]) : 250;

  std::printf("studying both paper platforms (%zu training shapes each)...\n",
              n_samples);
  const PlatformResult setonix = study(simarch::setonix_topology(), n_samples);
  const PlatformResult gadi = study(simarch::gadi_topology(), n_samples);

  for (const auto& r : {setonix, gadi}) {
    std::printf("\n=== %s (max %d threads) ===\n", r.name.c_str(),
                r.max_threads);
    std::printf("selected model: %s\n", r.model.c_str());
    std::printf("optimal-thread quartiles: p25=%.0f p50=%.0f p75=%.0f "
                "(max %d)\n",
                percentile(r.optima, 25), percentile(r.optima, 50),
                percentile(r.optima, 75), r.max_threads);
    const auto counts =
        histogram(r.optima, 0, static_cast<double>(r.max_threads), 8);
    for (std::size_t b = 0; b < counts.size(); ++b) {
      const int bar = static_cast<int>(counts[b]);
      std::printf("  [%3.0f-%3.0f) %.*s\n",
                  b * r.max_threads / 8.0, (b + 1) * r.max_threads / 8.0,
                  std::min(bar, 60), "############################"
                                     "################################");
    }
    std::printf("fresh-shape speedup vs max threads: median %.2fx, p75 "
                "%.2fx\n",
                percentile(r.speedups, 50), percentile(r.speedups, 75));
  }
  std::printf("\nBoth platforms learn their own thread-count surface from "
              "the same codebase — the 'architecture aware' part of "
              "ADSALA.\n");
  return 0;
}
