// Native autotune: the complete ADSALA workflow against the *real* host CPU
// using the library's own from-scratch blocked GEMM — no simulation. This is
// what "installing ADSALA on your machine" means for a downstream user.
//
//   $ ./native_autotune [n_samples]    (default 50; more = better model)
//
// Budget note: each sample is timed at every probed thread count, so the
// campaign takes roughly n_samples x |grid| x iterations GEMM calls.
#include <cstdio>
#include <filesystem>
#include <string>

#include "common/stats.h"
#include "common/timer.h"
#include "core/adsala.h"
#include "core/install.h"

using namespace adsala;

int main(int argc, char** argv) {
  const std::size_t n_samples = argc > 1 ? std::stoul(argv[1]) : 50;

  core::NativeExecutor executor;
  std::printf("host: %d hardware threads available\n",
              executor.max_threads());

  core::InstallOptions options;
  options.gather.n_samples = n_samples;
  options.gather.iterations = 3;
  options.gather.domain.memory_cap_bytes = 24ull * 1024 * 1024;
  options.gather.domain.dim_max = 1500;
  options.train.candidates = {"linear_regression", "decision_tree",
                              "xgboost", "lightgbm"};
  options.train.tune = false;
  options.output_dir = "adsala_native_artifacts";
  std::filesystem::create_directories(options.output_dir);

  std::printf("gathering timings for %zu shapes (this runs real GEMMs)...\n",
              n_samples);
  const auto report = core::install(executor, options);
  std::printf("gather: %.1fs, train: %.1fs\n", report.gather_seconds,
              report.train_seconds);

  std::printf("\nmodel comparison on this machine:\n");
  std::printf("%-18s %10s %10s %10s\n", "model", "norm RMSE", "eval (us)",
              "est mean");
  for (const auto& r : report.trained.reports) {
    std::printf("%-18s %10.2f %10.1f %10.2f\n", r.model_name.c_str(),
                r.test_rmse_norm, r.eval_time_us, r.est_mean_speedup);
  }
  std::printf("selected: %s\n", report.trained.selected.c_str());

  // Validate on fresh shapes with real GEMM runs.
  core::AdsalaGemm adsala(report.model_path, report.config_path);
  sampling::DomainConfig fresh = options.gather.domain;
  fresh.seed = 1337;
  sampling::GemmDomainSampler sampler(fresh);
  std::vector<double> speedups;
  for (const auto& shape : sampler.sample(15)) {
    const int p = adsala.select_threads(shape.m, shape.k, shape.n);
    const double t_ml = executor.measure(shape, p, 3);
    const double t_max = executor.measure(shape, executor.max_threads(), 3);
    speedups.push_back(t_max / t_ml);
  }
  std::printf("\nfresh-shape speedup vs always-max-threads: mean %.2fx, "
              "median %.2fx\n",
              mean(speedups), percentile(speedups, 50));
  std::printf("artefacts saved in %s/ — load them with "
              "core::AdsalaGemm(model, config)\n",
              options.output_dir.c_str());
  return 0;
}
