// Shared helpers for the experiment-reproduction benchmarks.
//
// Every bench binary regenerates one table or figure of the paper on the
// simulated Setonix / Gadi platforms. Training artefacts are cached under
// ./bench_artifacts/<platform>/ so that the first bench needing a trained
// model pays the installation cost and the rest just load it. Scale knobs:
//   ADSALA_BENCH_SAMPLES  training shapes per platform   (default 500)
//   ADSALA_BENCH_TEST     independent test shapes        (default 174, paper)
//   ADSALA_BENCH_MODEL    pin one registry model (skips the 8-model tuning
//                         + wall-clock-dependent selection, making the
//                         installed artefacts deterministic — what the CI
//                         baseline diff needs)
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "blas/kernels/dispatch.h"
#include "common/json.h"
#include "core/adsala.h"
#include "core/install.h"

namespace adsala::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<std::size_t>(std::atoll(v)) : fallback;
}

inline std::size_t train_samples() {
  return env_size("ADSALA_BENCH_SAMPLES", 500);
}
inline std::size_t test_samples() { return env_size("ADSALA_BENCH_TEST", 174); }

/// Applies the ADSALA_BENCH_MODEL pin (if set) to an install's training
/// options: one candidate, default hyper-parameters, no grid search —
/// training then depends only on the gathered (deterministic) data.
inline void apply_model_pin(core::InstallOptions& opts) {
  if (const char* model = std::getenv("ADSALA_BENCH_MODEL")) {
    if (*model != '\0') {
      opts.train.candidates = {model};
      opts.train.tune = false;
    }
  }
}

inline simarch::CpuTopology topology_for(const std::string& platform) {
  if (platform == "setonix") return simarch::setonix_topology();
  if (platform == "gadi") return simarch::gadi_topology();
  return simarch::tiny_topology();
}

inline core::SimulatedExecutor make_executor(const std::string& platform,
                                             bool smt = true) {
  simarch::ExecPolicy policy;
  policy.allow_smt = smt;
  return core::SimulatedExecutor(
      simarch::MachineModel(topology_for(platform), 42), policy);
}

/// 500 MB SGEMM domain (paper training domain); seed differs from the
/// independent test-set seed below.
inline sampling::DomainConfig train_domain() {
  sampling::DomainConfig d;
  d.memory_cap_bytes = 500ull * 1024 * 1024;
  d.dim_max = 74000;
  d.seed = 1234;
  return d;
}

/// Independent low-discrepancy test set (paper SS VI-C: 174 fresh samples).
inline std::vector<simarch::GemmShape> independent_test_shapes(
    std::size_t count, std::size_t cap_mb = 500) {
  sampling::DomainConfig d = train_domain();
  d.memory_cap_bytes = cap_mb * 1024ull * 1024;
  d.seed = 98765;  // disjoint scrambling from the training campaign
  sampling::GemmDomainSampler sampler(d);
  return sampler.sample(count);
}

inline core::GatherConfig bench_gather_config() {
  core::GatherConfig cfg;
  cfg.n_samples = train_samples();
  cfg.iterations = 10;
  cfg.domain = train_domain();
  return cfg;
}

/// Loads the cached trained runtime for a platform, installing (gather +
/// tune + select) on first use. smt=false trains a separate artefact set.
inline core::AdsalaGemm trained_runtime(const std::string& platform,
                                        bool smt = true) {
  const std::string dir = "bench_artifacts/" + platform + (smt ? "" : "-noht");
  const std::string model_path = dir + "/model.json";
  const std::string config_path = dir + "/config.json";
  if (std::filesystem::exists(model_path) &&
      std::filesystem::exists(config_path)) {
    return core::AdsalaGemm(model_path, config_path);
  }
  std::filesystem::create_directories(dir);
  std::fprintf(stderr,
               "[bench] no cached model for %s%s: running installation "
               "(%zu shapes)...\n",
               platform.c_str(), smt ? "" : " (no HT)", train_samples());
  auto executor = make_executor(platform, smt);
  core::InstallOptions opts;
  opts.gather = bench_gather_config();
  opts.output_dir = dir;
  apply_model_pin(opts);
  const auto report = core::install(executor, opts);
  std::fprintf(stderr,
               "[bench] installed %s: selected=%s gather=%.1fs train=%.1fs\n",
               platform.c_str(), report.trained.selected.c_str(),
               report.gather_seconds, report.train_seconds);
  return core::AdsalaGemm(model_path, config_path);
}

/// Loads (or installs) the *operation-aware* artefact set for a platform:
/// one model trained on a campaign covering every registered operation over
/// the shared Halton domain. Cached under bench_artifacts/<platform>-op<N>
/// (N = registry size, so a grown registry never reuses a stale cache),
/// separately from the GEMM-only artefacts.
inline core::AdsalaGemm op_aware_runtime(const std::string& platform) {
  const std::string dir = "bench_artifacts/" + platform + "-op" +
                          std::to_string(blas::kNumOps);
  const std::string model_path = dir + "/model.json";
  const std::string config_path = dir + "/config.json";
  if (std::filesystem::exists(model_path) &&
      std::filesystem::exists(config_path)) {
    return core::AdsalaGemm(model_path, config_path);
  }
  std::filesystem::create_directories(dir);
  std::fprintf(stderr,
               "[bench] no cached op-aware model for %s: installing "
               "(%zu shapes per op, %zu ops)...\n",
               platform.c_str(), train_samples(), blas::kNumOps);
  auto executor = make_executor(platform);
  core::InstallOptions opts;
  opts.gather = bench_gather_config();
  const auto ops = blas::all_ops();
  opts.gather.ops.assign(ops.begin(), ops.end());
  opts.output_dir = dir;
  apply_model_pin(opts);
  const auto report = core::install(executor, opts);
  std::fprintf(stderr, "[bench] installed %s-op%zu: selected=%s\n",
               platform.c_str(), blas::kNumOps,
               report.trained.selected.c_str());
  return core::AdsalaGemm(model_path, config_path);
}

/// The paper's speedup reference: "the runtime with the number of threads
/// set equal to the number of cores" (SS VI-C) — physical cores, not the SMT
/// thread maximum.
inline int baseline_threads(const core::SimulatedExecutor& executor) {
  return executor.model().topology().total_cores();
}

// ----------------------------------------------------------- JSON output --

/// Machine-readable result sink: every bench drops one BENCH_<name>.json
/// next to its stdout report so the perf trajectory across PRs can be
/// diffed/plotted without scraping tables. Rows are flat JSON objects; the
/// envelope records the bench name and the active kernel variant (the knob
/// this file's benches A/B). Written on destruction; set ADSALA_BENCH_JSON_DIR
/// to redirect, or ADSALA_BENCH_JSON=0 to disable.
/// "Fig. 11" -> "fig_11": filename-safe slug of a bench/figure title.
inline std::string json_slug(std::string_view title) {
  std::string out;
  for (const char ch : title) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

/// Build type the library was compiled as, for the envelope's provenance
/// stamp. A debug-built bench measures the optimiser, not the code — the
/// stamp lets tools/bench_diff refuse such baselines outright.
inline const char* build_type_stamp() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

/// 1-minute load average (-1 when the host cannot say). Captured at bench
/// START, before the run drives load toward one per busy core: the stamp
/// measures external busyness, not the bench's own footprint.
inline double load_avg_stamp() {
#if defined(__linux__) || defined(__APPLE__)
  double load[1] = {-1.0};
  if (getloadavg(load, 1) == 1) return load[0];
#endif
  return -1.0;
}

class BenchJson {
 public:
  explicit BenchJson(std::string name)
      : name_(json_slug(name)), load_avg_at_start_(load_avg_stamp()) {}

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  /// Extra envelope metadata (platform, sample counts, ...).
  void meta(const std::string& key, Json value) {
    meta_[key] = std::move(value);
  }

  /// Appends one result row.
  void add(JsonObject row) { rows_.emplace_back(std::move(row)); }

  ~BenchJson() {
    if (const char* flag = std::getenv("ADSALA_BENCH_JSON")) {
      if (std::string_view(flag) == "0") return;
    }
    try {
      Json doc;
      doc["bench"] = Json(name_);
      doc["kernel_variant"] =
          Json(blas::kernels::variant_name(blas::kernels::active_variant()));
      // Provenance: bench_diff refuses debug-built or high-load baselines.
      doc["build_type"] = Json(build_type_stamp());
      doc["load_avg"] = Json(load_avg_at_start_);
      doc["num_cpus"] =
          Json(static_cast<double>(std::thread::hardware_concurrency()));
      for (auto& [k, v] : meta_) doc[k] = std::move(v);
      JsonArray rows;
      for (auto& r : rows_) rows.emplace_back(std::move(r));
      doc["rows"] = Json(std::move(rows));
      std::string dir = ".";
      if (const char* env = std::getenv("ADSALA_BENCH_JSON_DIR")) dir = env;
      write_json_file(dir + "/BENCH_" + name_ + ".json", doc);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[bench] BENCH_%s.json not written: %s\n",
                   name_.c_str(), e.what());
    }
  }

 private:
  std::string name_;
  double load_avg_at_start_;
  JsonObject meta_;
  std::vector<Json> rows_;
};

// ------------------------------------------------------------ formatting --

inline void print_rule(std::size_t width = 78) {
  for (std::size_t i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

/// ASCII histogram: one line per bin with a proportional bar.
inline void print_histogram(const std::vector<std::size_t>& counts, double lo,
                            double hi, const std::string& axis_label) {
  std::size_t max_count = 1;
  for (std::size_t c : counts) max_count = std::max(max_count, c);
  const double width = (hi - lo) / static_cast<double>(counts.size());
  std::printf("%18s | count\n", axis_label.c_str());
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const int bar =
        static_cast<int>(50.0 * static_cast<double>(counts[b]) /
                         static_cast<double>(max_count));
    std::printf("%8.0f -%8.0f | %5zu %.*s\n", lo + b * width,
                lo + (b + 1) * width, counts[b], bar,
                "##################################################");
  }
}

}  // namespace adsala::bench
