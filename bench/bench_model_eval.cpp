// google-benchmark microbenchmarks of the runtime-critical model paths:
// predict_one for each model family and the full AdsalaGemm thread
// selection (the t_eval of the paper's speedup formula).
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "common/rng.h"
#include "ml/registry.h"
#include "preprocess/features.h"

namespace {

using namespace adsala;

/// Fits a small model of the given type on a synthetic runtime-like surface.
std::unique_ptr<ml::Regressor> fitted_model(const std::string& name) {
  ml::Dataset data(preprocess::feature_names());
  Rng rng(1);
  for (int i = 0; i < 600; ++i) {
    const double m = rng.uniform(1, 4000), k = rng.uniform(1, 4000);
    const double n = rng.uniform(1, 4000), t = rng.range(1, 96);
    const auto f = preprocess::make_features(m, k, n, t);
    data.add_row(f, std::log(m * k * n / t + 40.0 * t));
  }
  auto model = ml::make_model(name, {{"n_estimators", 150}});
  model->fit(data);
  return model;
}

void BM_PredictOne(benchmark::State& state, const std::string& name) {
  const auto model = fitted_model(name);
  const auto x = preprocess::make_features(300, 2000, 150, 48);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->predict_one(x));
  }
}

void BM_SelectThreads(benchmark::State& state) {
  auto runtime = bench::trained_runtime("gadi");
  Rng rng(2);
  for (auto _ : state) {
    // Fresh shape each iteration to defeat the memoised-last-query path.
    const long m = rng.range(1, 4000);
    benchmark::DoNotOptimize(runtime.select_threads(m, 512, 512));
  }
}

void BM_SelectThreadsCached(benchmark::State& state) {
  auto runtime = bench::trained_runtime("gadi");
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.select_threads(640, 512, 512));
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_PredictOne, linear, std::string("linear_regression"));
BENCHMARK_CAPTURE(BM_PredictOne, tree, std::string("decision_tree"));
BENCHMARK_CAPTURE(BM_PredictOne, forest, std::string("random_forest"))
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_PredictOne, xgboost, std::string("xgboost"))
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_PredictOne, lightgbm, std::string("lightgbm"))
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_PredictOne, knn, std::string("knn"))
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SelectThreads)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SelectThreadsCached);

BENCHMARK_MAIN();
