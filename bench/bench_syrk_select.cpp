// SYRK thread-count selection: selected-vs-max-threads speedup over an
// independent syrk-family test set, served by one model trained with the
// four-operation gather (GEMM + SYRK + TRSM + SYMM campaigns on the same
// Halton domain).
//
// For every test (n, k) the bench compares the measured SYRK runtime at the
// model-selected thread count against the runtime at the platform maximum
// (the paper's "as many threads as cores" default), and also reports how
// often the op-aware answer differs from the GEMM-proxy heuristic the
// runtime falls back to for pre-op-aware artefacts. Results land in
// BENCH_syrk_select.json.
#include "op_select_common.h"

int main() { return adsala::bench::run_op_select_bench(adsala::blas::OpKind::kSyrk); }
