// SYRK thread-count selection: selected-vs-max-threads speedup over an
// independent syrk-family test set, served by a model trained with the
// operation-aware gather (GEMM + SYRK campaigns on the same Halton domain).
//
// For every test (n, k) the bench compares the measured SYRK runtime at the
// model-selected thread count against the runtime at the platform maximum
// (the paper's "as many threads as cores" default), and also reports how
// often the op-aware answer differs from the GEMM-proxy heuristic the
// runtime falls back to for PR-1-era artefacts. Results land in
// BENCH_syrk_select.json.
#include <cmath>

#include "bench_util.h"
#include "sampling/domain.h"

using namespace adsala;

namespace {

/// Installs (or loads) the op-aware artefact set for a platform; cached
/// separately from the GEMM-only bench artefacts.
core::AdsalaGemm op_aware_runtime(const std::string& platform) {
  const std::string dir = "bench_artifacts/" + platform + "-op";
  const std::string model_path = dir + "/model.json";
  const std::string config_path = dir + "/config.json";
  if (std::filesystem::exists(model_path) &&
      std::filesystem::exists(config_path)) {
    return core::AdsalaGemm(model_path, config_path);
  }
  std::filesystem::create_directories(dir);
  std::fprintf(stderr,
               "[bench] no cached op-aware model for %s: installing "
               "(%zu shapes per op)...\n",
               platform.c_str(), bench::train_samples());
  auto executor = bench::make_executor(platform);
  core::InstallOptions opts;
  opts.gather = bench::bench_gather_config();
  opts.gather.ops = {blas::OpKind::kGemm, blas::OpKind::kSyrk};
  opts.output_dir = dir;
  const auto report = core::install(executor, opts);
  std::fprintf(stderr, "[bench] installed %s-op: selected=%s\n",
               platform.c_str(), report.trained.selected.c_str());
  return core::AdsalaGemm(model_path, config_path);
}

void run_platform(const std::string& platform, bench::BenchJson& json) {
  auto runtime = op_aware_runtime(platform);
  auto executor = bench::make_executor(platform);
  const int max_threads = executor.max_threads();

  sampling::DomainConfig domain = bench::train_domain();
  domain.seed = 98765;  // disjoint scrambling from the training campaign
  const auto shapes =
      sampling::SyrkDomainSampler(domain).sample(bench::test_samples());

  double sum_ratio = 0.0, sum_sel = 0.0, sum_max = 0.0;
  int n_diff_from_proxy = 0;
  for (const auto& shape : shapes) {
    const int p = runtime.select_threads_syrk(shape.n, shape.k);
    const int p_proxy = runtime.select_threads(shape.n, shape.k, shape.n);
    n_diff_from_proxy += (p != p_proxy);
    const double t_sel =
        executor.measure_op(blas::OpKind::kSyrk, shape, p);
    const double t_max =
        executor.measure_op(blas::OpKind::kSyrk, shape, max_threads);
    sum_ratio += t_max / t_sel;
    sum_sel += t_sel;
    sum_max += t_max;

    JsonObject row;
    row["platform"] = Json(platform);
    row["n"] = Json(shape.n);
    row["k"] = Json(shape.k);
    row["selected_threads"] = Json(p);
    row["proxy_threads"] = Json(p_proxy);
    row["t_selected_s"] = Json(t_sel);
    row["t_max_threads_s"] = Json(t_max);
    row["speedup"] = Json(t_max / t_sel);
    json.add(std::move(row));
  }

  const auto n = static_cast<double>(shapes.size());
  const double mean_speedup = sum_ratio / n;
  const double agg_speedup = sum_max / sum_sel;
  std::printf("%-10s | op_aware=%s | %4zu syrk shapes | mean speedup %5.2f | "
              "aggregate %5.2f | differs from proxy %3.0f%%\n",
              platform.c_str(), runtime.op_aware() ? "yes" : "no",
              shapes.size(), mean_speedup, agg_speedup,
              100.0 * n_diff_from_proxy / n);

  JsonObject summary;
  summary["platform"] = Json(platform);
  summary["summary"] = Json(true);
  summary["mean_speedup"] = Json(mean_speedup);
  summary["aggregate_speedup"] = Json(agg_speedup);
  summary["proxy_divergence_frac"] = Json(n_diff_from_proxy / n);
  json.add(std::move(summary));
}

}  // namespace

int main() {
  bench::print_header(
      "SYRK select | selected vs max-threads speedup (op-aware model)");
  bench::BenchJson json("syrk_select");
  json.meta("train_samples_per_op", Json(bench::train_samples()));
  json.meta("test_samples", Json(bench::test_samples()));
  run_platform("setonix", json);
  run_platform("gadi", json);
  std::printf("\nspeedup = t(max threads) / t(selected); > 1 means the "
              "op-aware selection beats the all-cores default\n");
  return 0;
}
