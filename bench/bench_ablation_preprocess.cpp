// Ablation (DESIGN.md SS6): contribution of each preprocessing stage to the
// XGBoost model quality on the Setonix dataset. Variants: full pipeline, no
// Yeo-Johnson, no LOF, no correlation filter, raw (linear) label instead of
// log label, and nothing at all.
#include "bench_util.h"

using namespace adsala;

namespace {

void run_variant(const core::GatherData& gathered, const std::string& label,
                 preprocess::PipelineConfig cfg) {
  core::TrainOptions opts;
  opts.candidates = {"xgboost"};
  opts.tune = false;
  opts.pipeline = cfg;
  const auto out = core::train_and_select(gathered, opts);
  const auto& r = out.reports[0];
  std::printf("%-22s %10.3f %10.2f %10.2f\n", label.c_str(),
              r.test_rmse_norm, r.ideal_mean_speedup, r.est_mean_speedup);
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation | preprocessing stages (XGBoost, Setonix dataset)");

  auto executor = bench::make_executor("setonix");
  core::GatherConfig gcfg = bench::bench_gather_config();
  gcfg.n_samples = std::min<std::size_t>(bench::train_samples(), 400);
  std::fprintf(stderr, "[bench] gathering %zu shapes...\n", gcfg.n_samples);
  const auto gathered = core::gather_timings(executor, gcfg);

  std::printf("%-22s %10s %10s %10s\n", "variant", "norm RMSE", "ideal mean",
              "est mean");
  bench::print_rule();

  preprocess::PipelineConfig full;
  run_variant(gathered, "full pipeline", full);

  preprocess::PipelineConfig no_yj = full;
  no_yj.yeo_johnson = false;
  run_variant(gathered, "no yeo-johnson", no_yj);

  preprocess::PipelineConfig no_lof = full;
  no_lof.lof = false;
  run_variant(gathered, "no LOF", no_lof);

  preprocess::PipelineConfig no_corr = full;
  no_corr.corr_filter = false;
  run_variant(gathered, "no corr filter", no_corr);

  preprocess::PipelineConfig raw_label = full;
  raw_label.log_label = false;
  run_variant(gathered, "raw (linear) label", raw_label);

  preprocess::PipelineConfig nothing;
  nothing.yeo_johnson = false;
  nothing.standardize = false;
  nothing.lof = false;
  nothing.corr_filter = false;
  nothing.log_label = false;
  run_variant(gathered, "no preprocessing", nothing);

  std::printf("\n[expectation] the log-label transform matters most for the "
              "runtime regression (labels span ~5 orders of magnitude); "
              "trees are scale-invariant so YJ/standardise matter less for "
              "XGBoost than for the linear family\n");
  return 0;
}
