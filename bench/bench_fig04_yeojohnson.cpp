// Figure 4: feature distributions before and after the Yeo-Johnson
// transformation (Setonix <= 500 MB dataset). The paper shows heavily
// right-skewed raw features remapped to near-Gaussian. We report per-feature
// skewness before/after plus the fitted lambda.
#include "bench_util.h"
#include "common/stats.h"
#include "preprocess/features.h"
#include "preprocess/yeo_johnson.h"

using namespace adsala;

int main() {
  bench::print_header(
      "Fig. 4 | feature skewness before/after Yeo-Johnson (Setonix, 500 MB)");

  auto executor = bench::make_executor("setonix");
  core::GatherConfig cfg = bench::bench_gather_config();
  cfg.n_samples = std::min<std::size_t>(bench::train_samples(), 300);
  const auto gathered = core::gather_timings(executor, cfg);
  const auto raw = gathered.to_dataset();

  std::printf("%-18s %10s %12s %11s\n", "feature", "lambda", "skew before",
              "skew after");
  bench::print_rule();
  for (std::size_t j = 0; j < raw.n_features(); ++j) {
    const auto col = raw.column(j);
    preprocess::YeoJohnsonTransformer yj;
    yj.fit(col);
    const auto transformed = yj.transform(col);
    std::printf("%-18s %10.3f %12.2f %11.2f\n",
                raw.feature_names()[j].c_str(), yj.lambda(), skewness(col),
                skewness(transformed));
  }
  std::printf("\n[paper] raw features heavily right-skewed; transformed "
              "distributions near-Gaussian (|skew| << 1)\n");
  return 0;
}
