// Figure 10: heatmap of the ADSALA speedup with respect to the matrix
// dimensions on Setonix (10a) and Gadi (10b), over the independent test
// set. Cells on the sqrt-scale (m, n) / (m, k) / (k, n) projections show
// the mean speedup. Paper findings: shapes with large n accelerate most;
// very little of the domain decelerates.
#include <cmath>

#include "bench_util.h"

using namespace adsala;

namespace {

constexpr int kBuckets = 5;

int bucket_of(long dim, long dim_max) {
  const double r = std::sqrt(static_cast<double>(dim)) /
                   std::sqrt(static_cast<double>(dim_max));
  return std::min(static_cast<int>(r * kBuckets), kBuckets - 1);
}

void run_platform(const std::string& platform) {
  auto runtime = bench::trained_runtime(platform);
  auto executor = bench::make_executor(platform);
  const auto shapes = bench::independent_test_shapes(bench::test_samples());
  const long dim_max = bench::train_domain().dim_max;
  const int reference_threads = bench::baseline_threads(executor);

  std::vector<double> speedup(shapes.size());
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const int p = runtime.select_threads(shapes[i].m, shapes[i].k,
                                         shapes[i].n);
    speedup[i] = executor.measure(shapes[i], reference_threads) /
                 executor.measure(shapes[i], p);
  }

  const char* proj_names[3] = {"m x k", "m x n", "k x n"};
  for (int proj = 0; proj < 3; ++proj) {
    struct Cell {
      double sum = 0;
      int n = 0;
    };
    std::vector<Cell> cells(kBuckets * kBuckets);
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      long a = 0, b = 0;
      if (proj == 0) {
        a = shapes[i].m;
        b = shapes[i].k;
      } else if (proj == 1) {
        a = shapes[i].m;
        b = shapes[i].n;
      } else {
        a = shapes[i].k;
        b = shapes[i].n;
      }
      Cell& cell =
          cells[bucket_of(a, dim_max) * kBuckets + bucket_of(b, dim_max)];
      cell.sum += speedup[i];
      ++cell.n;
    }
    std::printf("\n%s | %s | mean speedup per sqrt-scale cell\n",
                platform.c_str(), proj_names[proj]);
    for (int r = kBuckets - 1; r >= 0; --r) {
      std::printf("  row%-2d |", r);
      for (int c = 0; c < kBuckets; ++c) {
        const Cell& cell = cells[r * kBuckets + c];
        if (cell.n == 0) {
          std::printf("     . ");
        } else {
          std::printf(" %5.2f ", cell.sum / cell.n);
        }
      }
      std::printf("\n");
    }
  }
  int decelerated = 0;
  for (double s : speedup) decelerated += (s < 1.0);
  std::printf("\n%s: decelerated fraction %.0f%%\n", platform.c_str(),
              100.0 * decelerated / static_cast<double>(speedup.size()));
}

}  // namespace

int main() {
  bench::print_header("Fig. 10 | speedup heatmaps vs matrix dimensions");
  run_platform("setonix");
  run_platform("gadi");
  std::printf("\n[paper] most cells accelerate (red); isolated cells "
              "decelerate slightly\n");
  return 0;
}
