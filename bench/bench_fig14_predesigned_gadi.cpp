// Figure 14: GFLOPS comparisons on Gadi with predesigned matrices.
#include "predesigned_common.h"

int main() {
  adsala::bench::run_predesigned("gadi", "Fig. 14", "MKL");
  return 0;
}
