// Figure 13: GFLOPS comparisons on Setonix with predesigned matrices.
#include "predesigned_common.h"

int main() {
  adsala::bench::run_predesigned("setonix", "Fig. 13", "BLIS");
  return 0;
}
