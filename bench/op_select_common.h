// Shared driver for the per-operation thread-selection benches: ONE
// data-driven harness — the per-op binaries (bench_<op>_select) are the same
// bench/op_select_main.cpp compiled with a different op name, and every
// family hook (test-set sampler, selection entry point, row labels) comes
// from the op's registry row, so a newly registered op gets its select bench
// by adding its name to the CMake list.
//
// For one operation family the driver samples an independent test set from
// the family's domain, asks the all-op op-aware runtime (bench_util.h) for
// the thread count per shape, and compares the measured runtime at that
// count against the platform-maximum default — the paper's speedup
// criterion, per operation. It also counts how often the op-aware answer
// differs from the GEMM-proxy heuristic older artefacts fall back to.
// Results land in BENCH_<op>_select.json.
#pragma once

#include "bench_util.h"
#include "core/op_registry.h"

namespace adsala::bench {

/// Independent test shapes for one operation family (seed disjoint from the
/// training campaign's).
inline std::vector<simarch::GemmShape> op_test_shapes(blas::OpKind op,
                                                      std::size_t count) {
  sampling::DomainConfig domain = train_domain();
  domain.seed = 98765;  // disjoint scrambling from the training campaign
  return core::op_traits(op).make_sampler(domain)->sample(count);
}

/// Family selection through the generic runtime entry point.
inline int select_threads_for(core::AdsalaGemm& runtime, blas::OpKind op,
                              const simarch::GemmShape& shape) {
  long coords[3] = {0, 0, 0};
  core::op_traits(op).from_shape(shape, &coords[0], &coords[1], &coords[2]);
  return runtime.select_threads(op, coords[0], coords[1], coords[2]);
}

inline void run_op_select_platform(const std::string& platform,
                                   blas::OpKind op, BenchJson& json) {
  auto runtime = op_aware_runtime(platform);
  auto executor = make_executor(platform);
  const int max_threads = executor.max_threads();

  const auto shapes = op_test_shapes(op, test_samples());
  if (shapes.empty()) {
    std::printf("%-10s | no test shapes (ADSALA_BENCH_TEST=0?); skipping\n",
                platform.c_str());
    return;
  }

  double sum_ratio = 0.0, sum_sel = 0.0, sum_max = 0.0;
  int n_diff_from_proxy = 0;
  for (const auto& shape : shapes) {
    const int p = select_threads_for(runtime, op, shape);
    const int p_proxy = runtime.select_threads(shape.m, shape.k, shape.n);
    n_diff_from_proxy += (p != p_proxy);
    const double t_sel = executor.measure_op(op, shape, p);
    const double t_max = executor.measure_op(op, shape, max_threads);
    sum_ratio += t_max / t_sel;
    sum_sel += t_sel;
    sum_max += t_max;

    JsonObject row;
    row["platform"] = Json(platform);
    // Family coordinates under the registry's labels (e.g. (n, k) for SYRK,
    // (n, m) for the triangular families).
    const auto& traits = core::op_traits(op);
    long coords[3] = {0, 0, 0};
    traits.from_shape(shape, &coords[0], &coords[1], &coords[2]);
    for (int d = 0; d < traits.family_dims; ++d) {
      row[traits.coord_names[d]] = Json(coords[d]);
    }
    row["selected_threads"] = Json(p);
    row["proxy_threads"] = Json(p_proxy);
    row["t_selected_s"] = Json(t_sel);
    row["t_max_threads_s"] = Json(t_max);
    row["speedup"] = Json(t_max / t_sel);
    json.add(std::move(row));
  }

  const auto n = static_cast<double>(shapes.size());
  const double mean_speedup = sum_ratio / n;
  const double agg_speedup = sum_max / sum_sel;
  std::printf("%-10s | op_aware=%s | %4zu %s shapes | mean speedup %5.2f | "
              "aggregate %5.2f | differs from proxy %3.0f%%\n",
              platform.c_str(), runtime.op_aware() ? "yes" : "no",
              shapes.size(), blas::op_name(op), mean_speedup, agg_speedup,
              100.0 * n_diff_from_proxy / n);

  JsonObject summary;
  summary["platform"] = Json(platform);
  summary["summary"] = Json(true);
  summary["mean_speedup"] = Json(mean_speedup);
  summary["aggregate_speedup"] = Json(agg_speedup);
  summary["proxy_divergence_frac"] = Json(n_diff_from_proxy / n);
  json.add(std::move(summary));
}

/// Complete main body of one select bench.
inline int run_op_select_bench(blas::OpKind op) {
  const std::string name = blas::op_name(op);
  bench::print_header(name +
                      " select | selected vs max-threads speedup "
                      "(one op-aware model over every registered op)");
  bench::BenchJson json(name + "_select");
  json.meta("train_samples_per_op", Json(bench::train_samples()));
  json.meta("test_samples", Json(bench::test_samples()));
  run_op_select_platform("setonix", op, json);
  run_op_select_platform("gadi", op, json);
  std::printf("\nspeedup = t(max threads) / t(selected); > 1 means the "
              "op-aware selection beats the all-cores default\n");
  return 0;
}

}  // namespace adsala::bench
