// Table III: model performance and estimated speedups on Setonix.
#include "model_table_common.h"

int main() {
  adsala::bench::run_model_table("setonix", "Table III");
  return 0;
}
