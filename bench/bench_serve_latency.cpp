// Serving-path latency proof for the snapshot refactor (ISSUE 7), the
// serve-time telemetry sampler (ISSUE 8), and the resilient client
// (ISSUE 10).
//
// Five in-process regimes over one trained runtime:
//   repeat  : the same shape every call      -> memo hit        (was: hit)
//   gated   : repeat + the sampling gate with sampling OFF -> memo hit +
//             one thread-local countdown decrement per call
//   sampled : the same gated loop with 1-in-1024 sampling ON; 1 call in
//             1024 also pays the (buffered) log append
//   pingpong: two shapes alternating         -> memo hit        (was: MISS —
//             the old single-entry memo thrashed on any alternation)
//   stream  : a fresh shape every call       -> memo miss, full model argmin
//
// Three daemon-transport regimes against a real in-process serve() loop on
// a Unix socket:
//   raw_daemon_query       : daemon::query per call (connect + frame + ack)
//   resilient_daemon_query : the same round-trip through ResilientClient's
//                            happy path — the retry/breaker wrapper's
//                            overhead on a healthy daemon
//   resilient_breaker_open : the daemon unreachable and the circuit open —
//                            every answer served by the in-process fallback
//                            runtime (the price of degraded-but-answering)
//
// The acceptance bars are that `repeat` stays in the same ballpark as the
// old memoised path (tens of nanoseconds: one atomic pointer load + one
// atomic word probe), `pingpong` matches `repeat` instead of `stream`,
// `sampled` regresses `gated` by < 5% — the cost of turning sampling on
// through the identical gate-compiled-in loop, the sampler's overhead
// budget (ISSUE 8 acceptance), recorded in the BENCH json as
// sampling_overhead_pct — and `resilient_daemon_query` stays in the same
// ballpark as `raw_daemon_query` (resilient_overhead_pct): the socket
// round-trip, not the wrapper, must dominate (the wrapper's own work is a
// branch and a counter; the delta is mostly run-to-run socket noise).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "adsala_daemon.h"
#include "bench_util.h"
#include "core/adsala.h"
#include "core/executor.h"
#include "core/gather.h"
#include "core/resilient_client.h"
#include "core/telemetry_log.h"
#include "core/trainer.h"

using namespace adsala;

namespace {

core::AdsalaGemm make_runtime() {
  core::SimulatedExecutor ex(
      simarch::MachineModel(simarch::tiny_topology(), 42));
  core::GatherConfig cfg;
  cfg.n_samples = 40;
  cfg.iterations = 3;
  cfg.domain.memory_cap_bytes = 64ull * 1024 * 1024;
  cfg.domain.dim_max = 8000;
  cfg.domain.seed = 7;
  core::TrainOptions opts;
  opts.candidates = {"decision_tree"};
  opts.tune = false;
  return core::AdsalaGemm(
      core::train_and_select(core::gather_timings(ex, cfg), opts));
}

template <typename Fn>
double ns_per_call(Fn&& fn, long iters) {
  // Best-of-3: at single-digit-ns per call, one scheduler hiccup mid-pass
  // skews a mean by more than the sampler overhead we are trying to
  // resolve; noise only ever adds time, so the min is the estimator.
  // The first pass doubles as warm-up (populates the memo), so steady-state
  // regimes measure steady state.
  long sink = 0;
  double best = 0.0;
  for (int pass = 0; pass < 3; ++pass) {
    const auto t0 = std::chrono::steady_clock::now();
    for (long i = 0; i < iters; ++i) sink += fn(i);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(iters);
    if (pass == 0 || ns < best) best = ns;
  }
  if (sink == 42) std::printf("");  // keep the loop observable
  return best;
}

}  // namespace

int main() {
  core::AdsalaGemm runtime = make_runtime();

  const double repeat = ns_per_call(
      [&](long) { return runtime.select_threads(512, 512, 512); }, 2000000);

  // The sampled regime drives a real log file exactly as a production
  // caller would: gate every call, wall-time + append only the 1-in-1024
  // that the gate picks (the measured-ns value is a placeholder — the point
  // is the gate + amortised append cost, not the GEMM underneath).
  //
  // The overhead comparison runs ONE lambda — select + gate + conditional
  // record — twice, with sampling off and then on. The BLAS execution
  // wrappers compile the gate in unconditionally, so "what does enabling
  // sampling cost" is off-vs-on through identical machine code; comparing
  // against the gate-free `repeat` loop instead would mostly measure the
  // extra call and branch in the loop body, not the sampler.
  auto gated = [&](long) {
    const int p = runtime.select_threads(512, 512, 512);
    if (runtime.sample_tick()) {
      runtime.record_sample(blas::OpKind::kGemm, 512, 512, 512, 4, p, 100);
    }
    return p;
  };
  const double repeat_gated = ns_per_call(gated, 2000000);

  const std::string log_path = "bench_serve_latency_telemetry.bin";
  std::filesystem::remove(log_path);
  double repeat_sampled = 0.0;
  {
    auto log = core::TelemetryLog::open(log_path);
    if (!log.ok()) {
      std::fprintf(stderr, "telemetry log open failed: %s\n",
                   log.error().message.c_str());
      return 1;
    }
    runtime.enable_sampling(
        std::make_shared<core::TelemetryLog>(std::move(log).value()), 1024);
    repeat_sampled = ns_per_call(gated, 2000000);
    runtime.disable_sampling();
  }
  std::filesystem::remove(log_path);

  const double pingpong = ns_per_call(
      [&](long i) {
        return (i & 1) ? runtime.select_threads(512, 512, 512)
                       : runtime.select_threads(384, 384, 384);
      },
      2000000);

  const double stream = ns_per_call(
      [&](long i) {
        const long m = 1 + (i * 7) % 4096;
        const long k = 1 + (i * 13) % 4096;
        const long n = 1 + (i * 29) % 4096;
        return runtime.select_threads(m, k, n);
      },
      50000);

  const double overhead_pct =
      (repeat_sampled - repeat_gated) / repeat_gated * 100.0;

  // ---- daemon transport regimes (ISSUE 10) --------------------------------
  const std::string socket_path = "/tmp/adsala_bench_serve.sock";
  std::filesystem::remove(socket_path);
  std::atomic<bool> stop{false};
  daemon::ServeOptions sopts;
  sopts.socket_path = socket_path;
  sopts.handle_signals = false;  // in-process server: leave signals alone
  sopts.stop = &stop;
  std::thread server([&] { (void)daemon::serve(runtime, sopts); });
  for (int i = 0; i < 500 && !std::filesystem::exists(socket_path); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  daemon::Request req;
  req.op_code = static_cast<std::uint8_t>(blas::OpKind::kGemm);
  req.elem_bytes = 4;
  req.x = req.y = req.z = 512;
  const double raw_daemon = ns_per_call(
      [&](long) {
        auto ack = daemon::query(socket_path, req, 2000);
        return ack.ok() ? static_cast<long>(ack.value().threads) : -1L;
      },
      2000);

  auto transport =
      [&](const core::ServeQuery& q) -> Expected<core::ServeAnswer> {
    daemon::Request r;
    r.op_code = static_cast<std::uint8_t>(q.op);
    r.elem_bytes = static_cast<std::uint8_t>(q.elem_bytes);
    r.x = q.x;
    r.y = q.y;
    r.z = q.z;
    auto ack = daemon::query(socket_path, r, 2000);
    if (!ack.ok()) return ack.error();
    if (ack.value().status != ErrorCode::kOk) {
      return Error{ack.value().status, "daemon rejected the request"};
    }
    core::ServeAnswer a;
    a.threads = static_cast<int>(ack.value().threads);
    a.mode = ack.value().mode;
    return a;
  };
  core::ServeQuery sq;
  sq.x = sq.y = sq.z = 512;
  core::ResilientClient resilient(transport, {});
  const double resilient_daemon = ns_per_call(
      [&](long) {
        auto a = resilient.query(sq);
        return a.ok() ? static_cast<long>(a.value().threads) : -1L;
      },
      2000);

  // Breaker-open regime: the transport refuses instantly, the first query
  // trips the (threshold 1) breaker, and every timed call after warm-up is
  // pure in-process fallback serving under an open circuit.
  core::ResilientClient::Options broken_opts;
  broken_opts.max_attempts = 1;
  broken_opts.breaker_threshold = 1;
  broken_opts.breaker_open_ms = 3600 * 1000;
  core::ResilientClient broken(
      [](const core::ServeQuery&) -> Expected<core::ServeAnswer> {
        return Error{ErrorCode::kUnavailable, "daemon down"};
      },
      broken_opts);
  const double breaker_open = ns_per_call(
      [&](long) {
        auto a = broken.query(sq);
        return a.ok() ? static_cast<long>(a.value().threads) : -1L;
      },
      200000);

  stop.store(true, std::memory_order_release);
  (void)daemon::query(socket_path, req, 500);  // wake the accept loop
  server.join();
  std::filesystem::remove(socket_path);

  const double resilient_overhead_pct =
      (resilient_daemon - raw_daemon) / raw_daemon * 100.0;

  std::printf("serve latency (ns/query), model=%s platform=%s\n",
              runtime.model_name().c_str(), runtime.platform().c_str());
  std::printf("  %-28s %10.1f\n", "repeat (memo hit)", repeat);
  std::printf("  %-28s %10.1f\n", "repeat + gate (sampling off)", repeat_gated);
  std::printf("  %-28s %10.1f\n", "repeat + 1/1024 sampling", repeat_sampled);
  std::printf("  %-28s %10.1f\n", "pingpong (memo hit, 2 keys)", pingpong);
  std::printf("  %-28s %10.1f\n", "stream (memo miss, argmin)", stream);
  std::printf("  %-28s %10.1f\n", "raw daemon query", raw_daemon);
  std::printf("  %-28s %10.1f\n", "resilient daemon query", resilient_daemon);
  std::printf("  %-28s %10.1f\n", "resilient, breaker open", breaker_open);
  std::printf("  hit/miss ratio: %.1fx\n", stream / repeat);
  std::printf("  sampling overhead: %+.2f%% (budget < 5%%)\n", overhead_pct);
  std::printf("  resilient-client overhead on healthy daemon: %+.2f%%\n",
              resilient_overhead_pct);

  bench::BenchJson json("serve_latency");
  json.meta("platform", Json(runtime.platform()));
  json.meta("model", Json(runtime.model_name()));
  json.meta("sampling_period", Json(1024));
  json.meta("sampling_overhead_pct", Json(overhead_pct));
  json.meta("resilient_overhead_pct", Json(resilient_overhead_pct));
  auto row = [&](const char* regime, double ns) {
    JsonObject r;
    r["regime"] = Json(regime);
    r["ns_per_call"] = Json(ns);
    json.add(std::move(r));
  };
  row("repeat", repeat);
  row("repeat_gated", repeat_gated);
  row("repeat_sampled", repeat_sampled);
  row("pingpong", pingpong);
  row("stream", stream);
  row("raw_daemon_query", raw_daemon);
  row("resilient_daemon_query", resilient_daemon);
  row("resilient_breaker_open", breaker_open);
  return 0;
}
