// Serving-path latency proof for the snapshot refactor (ISSUE 7).
//
// Three regimes over one trained runtime:
//   repeat : the same shape every call       -> memo hit        (was: hit)
//   pingpong: two shapes alternating         -> memo hit        (was: MISS —
//             the old single-entry memo thrashed on any alternation)
//   stream : a fresh shape every call        -> memo miss, full model argmin
//
// The acceptance bar is that `repeat` stays in the same ballpark as the old
// memoised path (tens of nanoseconds: one atomic pointer load + one atomic
// word probe), and `pingpong` now matches `repeat` instead of `stream`.
#include <chrono>
#include <cstdio>

#include "core/adsala.h"
#include "core/executor.h"
#include "core/gather.h"
#include "core/trainer.h"

using namespace adsala;

namespace {

core::AdsalaGemm make_runtime() {
  core::SimulatedExecutor ex(
      simarch::MachineModel(simarch::tiny_topology(), 42));
  core::GatherConfig cfg;
  cfg.n_samples = 40;
  cfg.iterations = 3;
  cfg.domain.memory_cap_bytes = 64ull * 1024 * 1024;
  cfg.domain.dim_max = 8000;
  cfg.domain.seed = 7;
  core::TrainOptions opts;
  opts.candidates = {"decision_tree"};
  opts.tune = false;
  return core::AdsalaGemm(
      core::train_and_select(core::gather_timings(ex, cfg), opts));
}

template <typename Fn>
double ns_per_call(Fn&& fn, long iters) {
  // Warm-up pass populates the memo so steady-state regimes measure
  // steady state.
  long sink = 0;
  for (long i = 0; i < iters / 10 + 1; ++i) sink += fn(i);
  const auto t0 = std::chrono::steady_clock::now();
  for (long i = 0; i < iters; ++i) sink += fn(i);
  const auto t1 = std::chrono::steady_clock::now();
  if (sink == 42) std::printf("");  // keep the loop observable
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

}  // namespace

int main() {
  core::AdsalaGemm runtime = make_runtime();

  const double repeat = ns_per_call(
      [&](long) { return runtime.select_threads(512, 512, 512); }, 2000000);

  const double pingpong = ns_per_call(
      [&](long i) {
        return (i & 1) ? runtime.select_threads(512, 512, 512)
                       : runtime.select_threads(384, 384, 384);
      },
      2000000);

  const double stream = ns_per_call(
      [&](long i) {
        const long m = 1 + (i * 7) % 4096;
        const long k = 1 + (i * 13) % 4096;
        const long n = 1 + (i * 29) % 4096;
        return runtime.select_threads(m, k, n);
      },
      50000);

  std::printf("serve latency (ns/query), model=%s platform=%s\n",
              runtime.model_name().c_str(), runtime.platform().c_str());
  std::printf("  %-28s %10.1f\n", "repeat (memo hit)", repeat);
  std::printf("  %-28s %10.1f\n", "pingpong (memo hit, 2 keys)", pingpong);
  std::printf("  %-28s %10.1f\n", "stream (memo miss, argmin)", stream);
  std::printf("  hit/miss ratio: %.1fx\n", stream / repeat);
  return 0;
}
