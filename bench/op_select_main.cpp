// The ONE main behind every per-operation thread-selection bench. CMake
// compiles this file once per benched family with ADSALA_OP_SELECT_NAME set
// ("syrk" -> bench_syrk_select, ...), so adding a select bench for a newly
// registered operation is one name in the CMakeLists loop — the harness
// (op_select_common.h) pulls the sampler, selection entry point, and row
// labels from the op's registry row.
//
// Per family, the bench compares the measured runtime at the model-selected
// thread count against the platform maximum (the paper's "as many threads as
// cores" default) over an independent test set, and reports how often the
// op-aware answer differs from the GEMM-proxy heuristic older artefacts fall
// back to. Results land in BENCH_<op>_select.json.
#include <cstdio>

#include "op_select_common.h"

#ifndef ADSALA_OP_SELECT_NAME
#error "compile with -DADSALA_OP_SELECT_NAME=\"<registered op name>\""
#endif

int main() {
  const auto op = adsala::blas::parse_op(ADSALA_OP_SELECT_NAME);
  if (!op) {
    std::fprintf(stderr, "unregistered operation: %s\n",
                 ADSALA_OP_SELECT_NAME);
    return 2;
  }
  return adsala::bench::run_op_select_bench(*op);
}
