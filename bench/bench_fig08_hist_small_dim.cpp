// Figure 8: histogram of the optimal thread count restricted to GEMMs with
// at least one of m, k, n smaller than 1,000 (Setonix, <= 500 MB). Paper
// finding: for these shapes the optimum is typically below half of the 256
// available threads.
#include <algorithm>

#include "bench_util.h"
#include "common/stats.h"

using namespace adsala;

int main() {
  bench::print_header(
      "Fig. 8 | optimal threads, min(m,k,n) < 1000, Setonix, <= 500 MB");

  auto executor = bench::make_executor("setonix");
  sampling::DomainConfig domain = bench::train_domain();
  domain.seed = 888;
  sampling::GemmDomainSampler sampler(domain);

  std::vector<double> optima;
  const auto grid = core::default_thread_grid(executor.max_threads());
  std::size_t examined = 0;
  while (optima.size() < bench::train_samples() && examined < 20000) {
    const auto shapes = sampler.sample(64);
    for (const auto& shape : shapes) {
      ++examined;
      if (std::min({shape.m, shape.k, shape.n}) >= 1000) continue;
      double best_t = 0.0;
      int best_p = 1;
      for (int p : grid) {
        const double t = executor.measure(shape, p);
        if (best_t == 0.0 || t < best_t) {
          best_t = t;
          best_p = p;
        }
      }
      optima.push_back(best_p);
      if (optima.size() >= bench::train_samples()) break;
    }
  }

  const auto counts = histogram(optima, 0, 256, 16);
  bench::print_histogram(counts, 0, 256, "threads");
  std::size_t below_half = 0;
  for (double p : optima) below_half += (p < 128.0);
  std::printf("\nsamples=%zu  median=%.0f  below half max: %.0f%%\n",
              optima.size(), percentile(optima, 50),
              100.0 * static_cast<double>(below_half) /
                  static_cast<double>(optima.size()));
  std::printf("[paper] optima for small-dimension GEMMs tend below 128 "
              "threads\n");
  return 0;
}
