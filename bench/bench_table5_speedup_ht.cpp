// Table V: ADSALA speedup statistics with hyper-threading enabled.
#include "speedup_table_common.h"

int main() {
  adsala::bench::run_speedup_table(true, "Table V");
  return 0;
}
