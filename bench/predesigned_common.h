// Shared driver for Figures 13 (Setonix) and 14 (Gadi): GFLOPS sweeps over
// predesigned matrix families — square-ish sweeps with one small fixed
// dimension, and skinny sweeps with two small fixed dimensions. Small values
// are {32, 64, 128, 256}; swept values are 128..4096 (powers of two), as in
// the paper.
#pragma once

#include "bench_util.h"

namespace adsala::bench {

inline void run_predesigned(const std::string& platform,
                            const std::string& fig_name,
                            const std::string& baseline_name) {
  print_header(fig_name + " | predesigned GEMM sweeps, " + platform + " (" +
               baseline_name + " vs " + baseline_name + "+ML)");

  auto runtime = trained_runtime(platform);
  auto executor = make_executor(platform);
  const int reference_threads = baseline_threads(executor);

  const std::vector<long> sweep = {128, 256, 512, 1024, 2048, 4096};
  const std::vector<long> small = {32, 64, 128, 256};

  // family id: which dimensions are swept together / held small.
  struct Family {
    const char* label;       // printf pattern
    int fixed_count;         // 1 or 2 fixed small dims
    // maps (fixed, swept) -> (m, k, n)
    simarch::GemmShape (*make)(long fixed, long swept);
  };
  const Family families[] = {
      {"n,k swept (m=%ld)", 1,
       [](long f, long s) { return simarch::GemmShape{f, s, s, 4}; }},
      {"m,n swept (k=%ld)", 1,
       [](long f, long s) { return simarch::GemmShape{s, f, s, 4}; }},
      {"m,k swept (n=%ld)", 1,
       [](long f, long s) { return simarch::GemmShape{s, s, f, 4}; }},
      {"m swept (k,n=%ld)", 2,
       [](long f, long s) { return simarch::GemmShape{s, f, f, 4}; }},
      {"k swept (m,n=%ld)", 2,
       [](long f, long s) { return simarch::GemmShape{f, s, f, 4}; }},
      {"n swept (m,k=%ld)", 2,
       [](long f, long s) { return simarch::GemmShape{f, f, s, 4}; }},
  };

  BenchJson json(fig_name);
  json.meta("platform", Json(platform));
  json.meta("baseline", Json(baseline_name));

  for (const auto& fam : families) {
    for (long f : small) {
      char title[64];
      std::snprintf(title, sizeof title, fam.label, f);
      std::printf("\n%-22s %10s %14s %14s %9s %7s\n", title, "sweep",
                  "base (GF)", "ML (GF)", "speedup", "ML thr");
      for (long s : sweep) {
        const auto shape = fam.make(f, s);
        const int p = runtime.select_threads(shape.m, shape.k, shape.n);
        const double t_ml = executor.measure(shape, p);
        const double t_base = executor.measure(shape, reference_threads);
        std::printf("%-22s %10ld %14.1f %14.1f %9.2f %7d\n", "", s,
                    shape.flops() / t_base / 1e9, shape.flops() / t_ml / 1e9,
                    t_base / t_ml, p);
        JsonObject row;
        row["family"] = Json(std::string(title));
        row["swept"] = Json(s);
        row["m"] = Json(shape.m);
        row["k"] = Json(shape.k);
        row["n"] = Json(shape.n);
        row["gflops_baseline"] = Json(shape.flops() / t_base / 1e9);
        row["gflops_ml"] = Json(shape.flops() / t_ml / 1e9);
        row["speedup"] = Json(t_base / t_ml);
        row["ml_threads"] = Json(p);
        json.add(std::move(row));
      }
    }
  }
  std::printf("\n[paper] one-small-dim families gain moderately and grow "
              "with the swept size; two-small-dim families show the largest "
              "gains (up to 30-80x on Gadi's pathological cases)\n");
}

}  // namespace adsala::bench
