// Figure 12: GFLOPS vs memory footprint on Gadi (MKL baseline).
#include "gflops_common.h"

int main() {
  adsala::bench::run_gflops_figure("gadi", "Fig. 12", "MKL");
  return 0;
}
