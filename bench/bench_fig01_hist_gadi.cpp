// Figure 1: histogram of the optimal thread count for SGEMM with aggregate
// memory <= 100 MB on Gadi (2x Cascade Lake, 48 physical cores / 96 threads,
// MKL). Paper finding: the distribution is broad and the bulk of the mass
// sits far below the maximum thread count.
#include "bench_util.h"
#include "common/stats.h"

using namespace adsala;

int main() {
  bench::print_header(
      "Fig. 1 | optimal thread count histogram, Gadi, SGEMM <= 100 MB");

  auto executor = bench::make_executor("gadi");
  sampling::DomainConfig domain = bench::train_domain();
  domain.memory_cap_bytes = 100ull * 1024 * 1024;
  domain.seed = 555;
  sampling::GemmDomainSampler sampler(domain);
  const auto shapes = sampler.sample(bench::train_samples());

  std::vector<double> optima;
  optima.reserve(shapes.size());
  const auto grid = core::default_thread_grid(executor.max_threads());
  for (const auto& shape : shapes) {
    double best_t = 0.0;
    int best_p = 1;
    for (int p : grid) {
      const double t = executor.measure(shape, p);
      if (best_t == 0.0 || t < best_t) {
        best_t = t;
        best_p = p;
      }
    }
    optima.push_back(best_p);
  }

  const auto counts = histogram(optima, 0, 96, 16);
  bench::print_histogram(counts, 0, 96, "threads");

  const double med = percentile(optima, 50);
  std::printf("\nsamples=%zu  median optimal=%.0f  mean optimal=%.1f  "
              "max threads=96\n",
              optima.size(), med, mean(optima));
  std::size_t below_half = 0;
  for (double p : optima) below_half += (p < 48.0);
  std::printf("fraction with optimum below half the maximum: %.0f%%\n",
              100.0 * static_cast<double>(below_half) /
                  static_cast<double>(optima.size()));
  std::printf("[paper] bulk of optima well below 48; long tail to 96\n");
  return 0;
}
