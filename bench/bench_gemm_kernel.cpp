// google-benchmark microbenchmarks of the from-scratch BLAS substrate:
// GFLOPS of the blocked GEMM across shapes and thread counts on the host.
#include <benchmark/benchmark.h>

#include "blas/gemm.h"
#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace {

using adsala::AlignedBuffer;
using adsala::Rng;

template <typename T>
void fill_random(AlignedBuffer<T>& buf, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
}

void BM_SgemmSquare(benchmark::State& state) {
  const auto dim = static_cast<int>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  AlignedBuffer<float> a(static_cast<std::size_t>(dim) * dim);
  AlignedBuffer<float> b(static_cast<std::size_t>(dim) * dim);
  AlignedBuffer<float> c(static_cast<std::size_t>(dim) * dim);
  fill_random(a, 1);
  fill_random(b, 2);
  for (auto _ : state) {
    adsala::blas::sgemm(adsala::blas::Trans::kNo, adsala::blas::Trans::kNo,
                        dim, dim, dim, 1.0f, a.data(), dim, b.data(), dim,
                        0.0f, c.data(), dim, threads);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * dim * dim * dim * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_SgemmSkinny(benchmark::State& state) {
  // The paper's motivating shape family: m small, k/n large (e.g. ResNet's
  // 64 x 3000 operands).
  const int m = 64;
  const auto kn = static_cast<int>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  AlignedBuffer<float> a(static_cast<std::size_t>(m) * kn);
  AlignedBuffer<float> b(static_cast<std::size_t>(kn) * kn);
  AlignedBuffer<float> c(static_cast<std::size_t>(m) * kn);
  fill_random(a, 3);
  fill_random(b, 4);
  for (auto _ : state) {
    adsala::blas::sgemm(adsala::blas::Trans::kNo, adsala::blas::Trans::kNo,
                        m, kn, kn, 1.0f, a.data(), kn, b.data(), kn, 0.0f,
                        c.data(), kn, threads);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * m * kn * kn * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_DgemmSquare(benchmark::State& state) {
  const auto dim = static_cast<int>(state.range(0));
  AlignedBuffer<double> a(static_cast<std::size_t>(dim) * dim);
  AlignedBuffer<double> b(static_cast<std::size_t>(dim) * dim);
  AlignedBuffer<double> c(static_cast<std::size_t>(dim) * dim);
  fill_random(a, 5);
  fill_random(b, 6);
  for (auto _ : state) {
    adsala::blas::dgemm(adsala::blas::Trans::kNo, adsala::blas::Trans::kNo,
                        dim, dim, dim, 1.0, a.data(), dim, b.data(), dim, 0.0,
                        c.data(), dim, 0);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * dim * dim * dim * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_SgemmSquare)
    ->ArgsProduct({{128, 512, 1024}, {1, 4, 0 /* all */}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SgemmSkinny)
    ->ArgsProduct({{512, 2048}, {1, 4, 0}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DgemmSquare)->Arg(512)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
