// google-benchmark microbenchmarks of the from-scratch BLAS substrate:
// GFLOPS of the blocked GEMM across shapes, thread counts, and dispatched
// micro-kernel variants (generic / avx2 / avx512, whichever the host
// supports), so a single run A/Bs the KernelSet implementations. Before
// timing anything, every variant is verified element-wise against
// reference_gemm; a mismatch fails the binary. Results are additionally
// written to BENCH_gemm_kernel.json via google-benchmark's JSON reporter;
// on an AVX-512 host that file also carries BM_KernelTierRatio1024's
// GFLOPS_avx2 / GFLOPS_avx512 / ratio counters (the avx512-vs-avx2 headline
// number at 1024^3 fp32) and BM_SgemmSmallRepeat tracks the repeated-
// small-GEMM regime the PackArena + spin-wait fork/join changes target.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "blas/gemm.h"
#include "blas/kernels/dispatch.h"
#include "blas/pack_pipeline.h"
#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace {

using adsala::AlignedBuffer;
using adsala::Rng;
namespace blas = adsala::blas;
namespace kernels = adsala::blas::kernels;

template <typename T>
void fill_random(AlignedBuffer<T>& buf, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
}

blas::GemmTuning tuning_for(kernels::Variant v) {
  blas::GemmTuning tuning;
  tuning.variant = v;
  return tuning;
}

void BM_SgemmSquare(benchmark::State& state, kernels::Variant variant) {
  const auto dim = static_cast<int>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  AlignedBuffer<float> a(static_cast<std::size_t>(dim) * dim);
  AlignedBuffer<float> b(static_cast<std::size_t>(dim) * dim);
  AlignedBuffer<float> c(static_cast<std::size_t>(dim) * dim);
  fill_random(a, 1);
  fill_random(b, 2);
  const auto tuning = tuning_for(variant);
  for (auto _ : state) {
    blas::gemm<float>(blas::Trans::kNo, blas::Trans::kNo, dim, dim, dim, 1.0f,
                      a.data(), dim, b.data(), dim, 0.0f, c.data(), dim,
                      threads, tuning);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * dim * dim * dim * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_SgemmSkinny(benchmark::State& state, kernels::Variant variant) {
  // The paper's motivating shape family: m small, k/n large (e.g. ResNet's
  // 64 x 3000 operands).
  const int m = 64;
  const auto kn = static_cast<int>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  AlignedBuffer<float> a(static_cast<std::size_t>(m) * kn);
  AlignedBuffer<float> b(static_cast<std::size_t>(kn) * kn);
  AlignedBuffer<float> c(static_cast<std::size_t>(m) * kn);
  fill_random(a, 3);
  fill_random(b, 4);
  const auto tuning = tuning_for(variant);
  for (auto _ : state) {
    blas::gemm<float>(blas::Trans::kNo, blas::Trans::kNo, m, kn, kn, 1.0f,
                      a.data(), kn, b.data(), kn, 0.0f, c.data(), kn, threads,
                      tuning);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * m * kn * kn * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_SgemmSmallRepeat(benchmark::State& state, kernels::Variant variant) {
  // The hot regime of the thread-count selector: the same small GEMM called
  // back to back (256^3 here). Per-call packing allocations and fork/join
  // wakeups are a constant tax on every rep, which is exactly what the
  // PackArena slabs and the pool's spin-then-sleep waits remove.
  const int dim = 256;
  AlignedBuffer<float> a(static_cast<std::size_t>(dim) * dim);
  AlignedBuffer<float> b(static_cast<std::size_t>(dim) * dim);
  AlignedBuffer<float> c(static_cast<std::size_t>(dim) * dim);
  fill_random(a, 7);
  fill_random(b, 8);
  const auto tuning = tuning_for(variant);
  for (auto _ : state) {
    blas::gemm<float>(blas::Trans::kNo, blas::Trans::kNo, dim, dim, dim, 1.0f,
                      a.data(), dim, b.data(), dim, 0.0f, c.data(), dim, 0,
                      tuning);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * dim * dim * dim * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

/// Best-of-N per-call seconds for one variant at dim^3 fp32, max threads.
double best_seconds(kernels::Variant variant, int dim, int reps,
                    const AlignedBuffer<float>& a,
                    const AlignedBuffer<float>& b, AlignedBuffer<float>& c) {
  const auto tuning = tuning_for(variant);
  double best = 1e30;
  for (int r = 0; r < reps + 1; ++r) {  // first call warms pool + arena
    const auto t0 = std::chrono::steady_clock::now();
    blas::gemm<float>(blas::Trans::kNo, blas::Trans::kNo, dim, dim, dim, 1.0f,
                      a.data(), dim, b.data(), dim, 0.0f, c.data(), dim, 0,
                      tuning);
    const auto t1 = std::chrono::steady_clock::now();
    if (r > 0) {
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
  }
  return best;
}

void BM_KernelTierRatio1024(benchmark::State& state) {
  // The headline satellite number: avx512 vs avx2 at 1024^3 fp32, recorded
  // into BENCH_gemm_kernel.json as counters so the perf trajectory keeps
  // the ratio, not just the two absolute rates.
  const int dim = 1024;
  AlignedBuffer<float> a(static_cast<std::size_t>(dim) * dim);
  AlignedBuffer<float> b(static_cast<std::size_t>(dim) * dim);
  AlignedBuffer<float> c(static_cast<std::size_t>(dim) * dim);
  fill_random(a, 9);
  fill_random(b, 10);
  const double flops = 2.0 * dim * dim * dim;
  double avx2 = 0.0, avx512 = 0.0;
  for (auto _ : state) {
    avx2 = flops / best_seconds(kernels::Variant::kAvx2, dim, 3, a, b, c) /
           1e9;
    avx512 =
        flops / best_seconds(kernels::Variant::kAvx512, dim, 3, a, b, c) /
        1e9;
  }
  state.counters["GFLOPS_avx2"] = avx2;
  state.counters["GFLOPS_avx512"] = avx512;
  state.counters["ratio"] = avx512 / avx2;
}

void BM_PackComputeOverlap(benchmark::State& state, bool ragged) {
  // The pack-pipeline regime: mid sizes where B-pack time is a real
  // fraction of runtime. `ragged` offsets m off the MC grid (dim + 13) so
  // the tail tiles exist and the steal counters must move; square keeps the
  // canonical dims. Counters come from the process-wide PipelineStats:
  // pack_fraction is packing's share of the measured pack+compute wall time
  // (overlap drives it toward the pack/compute bandwidth ratio instead of
  // the serial-schedule sum), steals/tiles/panels are schedule-shape
  // counts. Timing is enabled only for this bench, so the other regimes
  // never pay the two clock reads per tile.
  const auto dim = static_cast<int>(state.range(0));
  const int m = ragged ? dim + 13 : dim;
  AlignedBuffer<float> a(static_cast<std::size_t>(m) * dim);
  AlignedBuffer<float> b(static_cast<std::size_t>(dim) * dim);
  AlignedBuffer<float> c(static_cast<std::size_t>(m) * dim);
  fill_random(a, 13);
  fill_random(b, 14);
  const auto tuning = tuning_for(kernels::Variant::kAuto);
  auto& stats = blas::detail::pipeline_stats();
  stats.timing_enabled.store(true, std::memory_order_relaxed);
  stats.reset();
  for (auto _ : state) {
    blas::gemm<float>(blas::Trans::kNo, blas::Trans::kNo, m, dim, dim, 1.0f,
                      a.data(), dim, b.data(), dim, 0.0f, c.data(), dim, 0,
                      tuning);
    benchmark::DoNotOptimize(c.data());
  }
  stats.timing_enabled.store(false, std::memory_order_relaxed);
  const auto pack_ns =
      static_cast<double>(stats.pack_ns.load(std::memory_order_relaxed));
  const auto compute_ns =
      static_cast<double>(stats.compute_ns.load(std::memory_order_relaxed));
  state.counters["pack_fraction"] =
      pack_ns / std::max(1.0, pack_ns + compute_ns);
  state.counters["steals"] =
      static_cast<double>(stats.steals.load(std::memory_order_relaxed));
  state.counters["tiles"] =
      static_cast<double>(stats.tiles.load(std::memory_order_relaxed));
  state.counters["panels"] =
      static_cast<double>(stats.panels.load(std::memory_order_relaxed));
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * m * dim * dim * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_DgemmSquare(benchmark::State& state, kernels::Variant variant) {
  const auto dim = static_cast<int>(state.range(0));
  AlignedBuffer<double> a(static_cast<std::size_t>(dim) * dim);
  AlignedBuffer<double> b(static_cast<std::size_t>(dim) * dim);
  AlignedBuffer<double> c(static_cast<std::size_t>(dim) * dim);
  fill_random(a, 5);
  fill_random(b, 6);
  const auto tuning = tuning_for(variant);
  for (auto _ : state) {
    blas::gemm<double>(blas::Trans::kNo, blas::Trans::kNo, dim, dim, dim, 1.0,
                       a.data(), dim, b.data(), dim, 0.0, c.data(), dim, 0,
                       tuning);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * dim * dim * dim * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

/// Element-wise check of one variant against the naive reference at a size
/// where plain 1e-4 / 1e-10 absolute tolerances are meaningful for the
/// accumulation length (k = 256).
template <typename T>
bool verify_variant(kernels::Variant variant, double tol) {
  const int dim = 256;
  AlignedBuffer<T> a(static_cast<std::size_t>(dim) * dim);
  AlignedBuffer<T> b(static_cast<std::size_t>(dim) * dim);
  AlignedBuffer<T> c(static_cast<std::size_t>(dim) * dim);
  AlignedBuffer<T> c_ref(static_cast<std::size_t>(dim) * dim);
  fill_random(a, 11);
  fill_random(b, 12);
  blas::gemm<T>(blas::Trans::kNo, blas::Trans::kNo, dim, dim, dim, T(1),
                a.data(), dim, b.data(), dim, T(0), c.data(), dim, 0,
                tuning_for(variant));
  blas::reference_gemm<T>(blas::Trans::kNo, blas::Trans::kNo, dim, dim, dim,
                          T(1), a.data(), dim, b.data(), dim, T(0),
                          c_ref.data(), dim);
  double max_err = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    const double err = std::abs(static_cast<double>(c[i]) -
                                static_cast<double>(c_ref[i]));
    if (err > max_err) max_err = err;
  }
  const bool ok = max_err <= tol;
  std::fprintf(stderr, "[verify] %-7s %s  m=n=k=%d  max|err|=%.3e  (tol %g) %s\n",
               kernels::variant_name(variant),
               sizeof(T) == 4 ? "fp32" : "fp64", dim, max_err, tol,
               ok ? "OK" : "FAIL");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  // Provenance context, mirroring BenchJson's envelope stamps: bench_diff
  // refuses debug-built or high-load baselines (tools/bench_diff.cpp).
#ifdef NDEBUG
  benchmark::AddCustomContext("build_type", "release");
#else
  benchmark::AddCustomContext("build_type", "debug");
#endif
  {
    double load[1] = {-1.0};
    if (getloadavg(load, 1) != 1) load[0] = -1.0;
    benchmark::AddCustomContext("load_avg_1min", std::to_string(load[0]));
  }

  bool ok = true;
  for (const auto variant : kernels::supported_variants()) {
    ok &= verify_variant<float>(variant, 1e-4);
    ok &= verify_variant<double>(variant, 1e-10);
  }
  if (!ok) {
    std::fprintf(stderr, "[verify] kernel variant mismatch; not benching\n");
    return 1;
  }

  for (const auto variant : kernels::supported_variants()) {
    const std::string suffix = kernels::variant_name(variant);
    benchmark::RegisterBenchmark(("BM_SgemmSquare/" + suffix).c_str(),
                                 BM_SgemmSquare, variant)
        ->ArgsProduct({{128, 512, 1024}, {1, 4, 0 /* all */}})
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(("BM_SgemmSkinny/" + suffix).c_str(),
                                 BM_SgemmSkinny, variant)
        ->ArgsProduct({{512, 2048}, {1, 4, 0}})
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(("BM_DgemmSquare/" + suffix).c_str(),
                                 BM_DgemmSquare, variant)
        ->Arg(512)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(("BM_SgemmSmallRepeat/" + suffix).c_str(),
                                 BM_SgemmSmallRepeat, variant)
        ->Unit(benchmark::kMicrosecond)
        ->MinTime(0.5);
  }
  if (kernels::cpu_supports_avx512()) {
    benchmark::RegisterBenchmark("BM_KernelTierRatio1024",
                                 BM_KernelTierRatio1024)
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
  }
  // Pack-pipeline regimes (active variant, max threads): square and ragged
  // (m = dim + 13, off the MC grid) at the tuner's mid sizes.
  benchmark::RegisterBenchmark("BM_PackComputeOverlap/square",
                               BM_PackComputeOverlap, false)
      ->Arg(512)->Arg(1024)->Arg(2048)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("BM_PackComputeOverlap/ragged",
                               BM_PackComputeOverlap, true)
      ->Arg(512)->Arg(1024)->Arg(2048)
      ->Unit(benchmark::kMicrosecond);

  // Console output for humans plus BENCH_gemm_kernel.json for the perf
  // trajectory (same convention as the BenchJson figure benches). An
  // explicit --benchmark_out on the command line wins.
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out=")) {
      has_out = true;
    }
  }
  if (!has_out) {
    std::string json_dir = ".";
    if (const char* env = std::getenv("ADSALA_BENCH_JSON_DIR")) json_dir = env;
    out_flag = "--benchmark_out=" + json_dir + "/BENCH_gemm_kernel.json";
    args.push_back(out_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
