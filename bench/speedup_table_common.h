// Shared driver for Tables V (hyper-threading on) and VI (off): end-to-end
// ADSALA speedup statistics over the 174-sample independent low-discrepancy
// test set, in the 0-500 MB and 0-100 MB footprint ranges, on both
// platforms. Speedups include the runtime model-evaluation overhead, as in
// the paper.
#pragma once

#include <cmath>

#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"

namespace adsala::bench {

struct SpeedupColumn {
  std::string label;
  std::vector<double> speedups;
};

inline SpeedupColumn measure_speedups(const std::string& platform, bool smt,
                                      std::size_t cap_mb) {
  auto runtime = trained_runtime(platform, smt);
  auto executor = make_executor(platform, smt);
  const auto shapes = independent_test_shapes(test_samples(), cap_mb);
  const int reference_threads = bench::baseline_threads(executor);

  SpeedupColumn col;
  col.label = platform + (smt ? "" : "-noht") + " 0-" +
              std::to_string(cap_mb) + "MB";
  for (const auto& shape : shapes) {
    WallTimer eval_timer;
    const int p = runtime.select_threads(shape.m, shape.k, shape.n);
    const double t_eval = eval_timer.seconds();
    const double t_adsala = executor.measure(shape, p) + t_eval;
    const double t_orig = executor.measure(shape, reference_threads);
    col.speedups.push_back(t_orig / t_adsala);
  }
  return col;
}

inline void print_speedup_table(const std::vector<SpeedupColumn>& cols) {
  std::printf("%-18s", "statistic");
  for (const auto& c : cols) std::printf(" %18s", c.label.c_str());
  std::printf("\n");
  print_rule();
  auto row = [&](const char* name, auto fn) {
    std::printf("%-18s", name);
    for (const auto& c : cols) std::printf(" %18.2f", fn(c.speedups));
    std::printf("\n");
  };
  using V = const std::vector<double>&;
  row("mean", [](V v) { return mean(v); });
  row("stddev", [](V v) { return stddev(v); });
  row("min", [](V v) { return min_of(v); });
  row("p25", [](V v) { return percentile(v, 25); });
  row("p50", [](V v) { return percentile(v, 50); });
  row("p75", [](V v) { return percentile(v, 75); });
  row("max", [](V v) { return max_of(v); });
}

inline void run_speedup_table(bool smt, const std::string& table_name) {
  print_header(table_name + " | ADSALA speedup statistics, hyper-threading " +
               (smt ? "ON" : "OFF"));
  std::vector<SpeedupColumn> cols;
  for (const std::string platform : {"setonix", "gadi"}) {
    for (std::size_t cap : {500u, 100u}) {
      cols.push_back(measure_speedups(platform, smt, cap));
    }
  }
  print_speedup_table(cols);

  BenchJson json(table_name);
  json.meta("smt", Json(smt));
  for (const auto& c : cols) {
    JsonObject row;
    row["column"] = Json(c.label);
    row["mean"] = Json(mean(c.speedups));
    row["stddev"] = Json(stddev(c.speedups));
    row["min"] = Json(min_of(c.speedups));
    row["p25"] = Json(percentile(c.speedups, 25));
    row["p50"] = Json(percentile(c.speedups, 50));
    row["p75"] = Json(percentile(c.speedups, 75));
    row["max"] = Json(max_of(c.speedups));
    json.add(std::move(row));
  }
  std::printf("\n[paper, HT on ] mean: setonix 1.32 (0-500) / 1.41 (0-100); "
              "gadi 1.07 / 1.26\n");
  std::printf("[paper, HT off] mean: setonix 1.24 / 1.55; gadi 1.02 / "
              "1.34\n");
}

}  // namespace adsala::bench
