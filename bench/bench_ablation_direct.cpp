// Ablation (DESIGN.md SS6): the paper regresses *runtime* and argmins over
// thread counts (SS IV-A). The alternative is to predict the optimal thread
// count *directly* from (m, k, n) — one model evaluation instead of |grid|,
// but the model must commit to a single answer with no notion of how flat
// the optimum is. This bench trains both on the same gathered data
// (simulated Gadi) and compares achieved speedup and evaluation cost.
#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"
#include "preprocess/features.h"

using namespace adsala;

namespace {

/// Shape-only features for the direct model (no n_threads terms).
std::vector<double> shape_features(const simarch::GemmShape& s) {
  const double m = static_cast<double>(s.m);
  const double k = static_cast<double>(s.k);
  const double n = static_cast<double>(s.n);
  return {m, k, n, m * k, m * n, k * n, m * k * n, m * k + k * n + m * n};
}

int snap_to_grid(double p, const std::vector<int>& grid) {
  int best = grid.front();
  double best_d = 1e300;
  for (int g : grid) {
    const double d = std::fabs(static_cast<double>(g) - p);
    if (d < best_d) {
      best_d = d;
      best = g;
    }
  }
  return best;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation | runtime regression + argmin (paper) vs direct "
      "thread-count prediction, Gadi");

  auto executor = bench::make_executor("gadi");
  core::GatherConfig gcfg = bench::bench_gather_config();
  gcfg.n_samples = std::min<std::size_t>(bench::train_samples(), 400);
  std::fprintf(stderr, "[bench] gathering %zu shapes...\n", gcfg.n_samples);
  const auto gathered = core::gather_timings(executor, gcfg);

  core::GatherData train, test;
  gathered.split(0.3, 2023, &train, &test);

  // --- paper approach: runtime regression + argmin -------------------------
  core::TrainOptions opts;
  opts.candidates = {"xgboost"};
  opts.tune = false;
  const auto paper = core::train_and_select(train, opts);

  // --- direct approach: log2(optimal threads) from shape-only features -----
  ml::Dataset direct_train({"m", "k", "n", "mk", "mn", "kn", "mkn", "areas"});
  for (const auto& rec : train.records) {
    direct_train.add_row(shape_features(rec.shape),
                         std::log2(double(rec.optimal_threads())));
  }
  auto direct_model = ml::make_model("xgboost");
  direct_model->fit(direct_train);

  // --- evaluate both on the held-out shapes --------------------------------
  const int max_threads = gathered.max_threads;
  std::vector<double> paper_speedups, direct_speedups;
  double paper_eval_us = 0.0, direct_eval_us = 0.0;
  for (const auto& rec : test.records) {
    {
      WallTimer t;
      const auto idx = core::predict_best_grid_index(
          *paper.model, paper.pipeline, rec.shape, rec.threads);
      paper_eval_us += t.micros();
      paper_speedups.push_back(rec.max_thread_runtime() / rec.runtime[idx]);
    }
    {
      WallTimer t;
      const double log_p = direct_model->predict_one(shape_features(rec.shape));
      const int p = snap_to_grid(std::exp2(log_p), rec.threads);
      direct_eval_us += t.micros();
      const auto it =
          std::find(rec.threads.begin(), rec.threads.end(), p);
      const auto idx =
          static_cast<std::size_t>(it - rec.threads.begin());
      direct_speedups.push_back(rec.max_thread_runtime() / rec.runtime[idx]);
    }
  }
  const auto n = static_cast<double>(test.records.size());
  (void)max_threads;

  std::printf("%-32s %12s %12s %12s\n", "approach", "mean speedup",
              "p50 speedup", "eval (us)");
  bench::print_rule();
  std::printf("%-32s %12.2f %12.2f %12.2f\n",
              "runtime regression + argmin", mean(paper_speedups),
              percentile(paper_speedups, 50), paper_eval_us / n);
  std::printf("%-32s %12.2f %12.2f %12.2f\n", "direct thread prediction",
              mean(direct_speedups), percentile(direct_speedups, 50),
              direct_eval_us / n);
  std::printf("\n[expectation] direct prediction evaluates ~|grid|x faster "
              "but gives up speedup where the runtime curve is sharp; the "
              "paper's argmin formulation is the safer default\n");
  return 0;
}
