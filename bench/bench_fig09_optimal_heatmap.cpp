// Figure 9: heatmap of the optimal thread count over (m, k), (m, n), (k, n)
// projections for Setonix (9a) and Gadi (9b). We bucket each pair of
// dimensions on the paper's square-root axis scale and print the mean
// optimal thread count per cell. Paper findings: larger/squarer shapes pull
// the optimum toward (half of) the maximum; shapes with any small dimension
// keep it low; Gadi has more mass near its maximum than Setonix.
#include <cmath>

#include "bench_util.h"

using namespace adsala;

namespace {

constexpr int kBuckets = 6;

int bucket_of(long dim, long dim_max) {
  const double r = std::sqrt(static_cast<double>(dim)) /
                   std::sqrt(static_cast<double>(dim_max));
  const int b = static_cast<int>(r * kBuckets);
  return std::min(b, kBuckets - 1);
}

struct Cell {
  double sum = 0.0;
  int count = 0;
};

void run_platform(const std::string& platform) {
  auto executor = bench::make_executor(platform);
  sampling::DomainConfig domain = bench::train_domain();
  domain.seed = 999;
  sampling::GemmDomainSampler sampler(domain);
  const auto shapes = sampler.sample(bench::train_samples());
  const auto grid = core::default_thread_grid(executor.max_threads());

  std::vector<int> optima(shapes.size());
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    double best_t = 0.0;
    for (int p : grid) {
      const double t = executor.measure(shapes[i], p);
      if (best_t == 0.0 || t < best_t) {
        best_t = t;
        optima[i] = p;
      }
    }
  }

  const char* proj_names[3] = {"m x k", "m x n", "k x n"};
  for (int proj = 0; proj < 3; ++proj) {
    std::vector<Cell> cells(kBuckets * kBuckets);
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      long a = 0, b = 0;
      if (proj == 0) {
        a = shapes[i].m;
        b = shapes[i].k;
      } else if (proj == 1) {
        a = shapes[i].m;
        b = shapes[i].n;
      } else {
        a = shapes[i].k;
        b = shapes[i].n;
      }
      Cell& cell = cells[bucket_of(a, domain.dim_max) * kBuckets +
                         bucket_of(b, domain.dim_max)];
      cell.sum += optima[i];
      ++cell.count;
    }
    std::printf("\n%s | %s | mean optimal threads per sqrt-scale cell "
                "(. = no sample)\n",
                platform.c_str(), proj_names[proj]);
    for (int r = kBuckets - 1; r >= 0; --r) {
      std::printf("  row%-2d |", r);
      for (int c = 0; c < kBuckets; ++c) {
        const Cell& cell = cells[r * kBuckets + c];
        if (cell.count == 0) {
          std::printf("    . ");
        } else {
          std::printf(" %4.0f ", cell.sum / cell.count);
        }
      }
      std::printf("\n");
    }
  }
}

}  // namespace

int main() {
  bench::print_header("Fig. 9 | optimal thread count heatmaps");
  run_platform("setonix");
  run_platform("gadi");
  std::printf("\n[paper] optimum grows toward the big-square corner; small "
              "dims keep it low; Gadi saturates closer to its max\n");
  return 0;
}
