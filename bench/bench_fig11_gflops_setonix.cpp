// Figure 11: GFLOPS vs memory footprint on Setonix (BLIS baseline).
#include "gflops_common.h"

int main() {
  adsala::bench::run_gflops_figure("setonix", "Fig. 11", "BLIS");
  return 0;
}
