// SYMM thread-count selection: selected-vs-max-threads speedup over an
// independent symm-family test set (A symmetric n x n, B/C n x m), served
// by one model trained with the four-operation gather.
//
// SYMM does the same FLOPs as its equivalent GEMM but pays extra packing
// for the symmetric expansion, so its optimum drifts from the proxy answer
// on copy-bound shapes. Results land in BENCH_symm_select.json.
#include "op_select_common.h"

int main() { return adsala::bench::run_op_select_bench(adsala::blas::OpKind::kSymm); }
