// Shared driver for Tables III (Setonix) and IV (Gadi): trains and tunes the
// full candidate zoo, then prints the paper's columns — normalised test
// RMSE, ideal speedups, model evaluation time, estimated speedups.
#pragma once

#include "bench_util.h"

namespace adsala::bench {

inline void run_model_table(const std::string& platform,
                            const std::string& table_name) {
  print_header(table_name + " | model performance and estimated speedups, " +
               platform);

  auto executor = make_executor(platform);
  core::GatherConfig gcfg = bench_gather_config();
  std::fprintf(stderr, "[bench] gathering %zu shapes on %s...\n",
               gcfg.n_samples, platform.c_str());
  const auto gathered = core::gather_timings(executor, gcfg);

  core::TrainOptions topts;  // paper candidates, tuned with 5-fold CV
  std::fprintf(stderr, "[bench] tuning 8 candidate models...\n");
  const auto out = core::train_and_select(gathered, topts);

  BenchJson json(table_name);
  json.meta("platform", Json(platform));
  json.meta("selected", Json(out.selected));

  std::printf("%-18s %10s %10s %9s %10s %10s %9s\n", "model", "norm RMSE",
              "ideal mean", "ideal agg", "eval (us)", "est mean", "est agg");
  print_rule();
  for (const auto& r : out.reports) {
    std::printf("%-18s %10.2f %10.2f %9.2f %10.2f %10.2f %9.2f\n",
                r.model_name.c_str(), r.test_rmse_norm, r.ideal_mean_speedup,
                r.ideal_agg_speedup, r.eval_time_us, r.est_mean_speedup,
                r.est_agg_speedup);
    JsonObject row;
    row["model"] = Json(r.model_name);
    row["test_rmse_norm"] = Json(r.test_rmse_norm);
    row["ideal_mean_speedup"] = Json(r.ideal_mean_speedup);
    row["ideal_agg_speedup"] = Json(r.ideal_agg_speedup);
    row["eval_time_us"] = Json(r.eval_time_us);
    row["est_mean_speedup"] = Json(r.est_mean_speedup);
    row["est_agg_speedup"] = Json(r.est_agg_speedup);
    json.add(std::move(row));
  }
  std::printf("\nselected model: %s\n", out.selected.c_str());
  std::printf("[paper] tree boosters get the lowest RMSE; XGBoost combines "
              "low RMSE with fast evaluation and wins; random forest's "
              "accuracy is destroyed by its evaluation cost; linear models "
              "evaluate fast but predict poorly\n");
}

}  // namespace adsala::bench
