// Extra (not in paper): end-to-end validation on the *real* host CPU using
// the from-scratch blocked GEMM instead of the simulator. Runs a small
// installation campaign, then reports the achieved speedup of ML-selected
// thread counts vs always-max-threads on fresh shapes. This demonstrates the
// whole ADSALA pipeline against physical hardware.
#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"

using namespace adsala;

int main() {
  bench::print_header(
      "Native host | ADSALA on the real CPU with the built-in BLAS");

  core::NativeExecutor executor;
  std::printf("host threads available: %d\n", executor.max_threads());

  core::GatherConfig gcfg;
  gcfg.n_samples = bench::env_size("ADSALA_BENCH_NATIVE_SAMPLES", 60);
  gcfg.iterations = 3;
  gcfg.domain.memory_cap_bytes = 24ull * 1024 * 1024;  // keep it laptop-fast
  gcfg.domain.dim_max = 1600;
  gcfg.domain.seed = 31;

  std::fprintf(stderr, "[bench] timing %zu shapes on the host...\n",
               gcfg.n_samples);
  const auto gathered = core::gather_timings(executor, gcfg);

  core::TrainOptions topts;
  topts.candidates = {"linear_regression", "decision_tree", "xgboost",
                      "lightgbm"};
  topts.tune = false;  // keep the native bench quick
  auto trained = core::train_and_select(gathered, topts);
  std::printf("selected model: %s\n", trained.selected.c_str());
  core::AdsalaGemm runtime(std::move(trained));

  // Fresh shapes, disjoint seed.
  sampling::DomainConfig test_domain = gcfg.domain;
  test_domain.seed = 77;
  sampling::GemmDomainSampler sampler(test_domain);
  const auto shapes = sampler.sample(30);

  std::vector<double> speedups;
  for (const auto& shape : shapes) {
    WallTimer eval_timer;
    const int p = runtime.select_threads(shape.m, shape.k, shape.n);
    const double t_eval = eval_timer.seconds();
    const double t_ml = executor.measure(shape, p, 3) + t_eval;
    const double t_max = executor.measure(shape, executor.max_threads(), 3);
    speedups.push_back(t_max / t_ml);
  }
  std::printf("\nspeedup over always-max-threads on %zu fresh shapes:\n",
              speedups.size());
  std::printf("  mean %.2f   median %.2f   p25 %.2f   p75 %.2f   min %.2f   "
              "max %.2f\n",
              mean(speedups), percentile(speedups, 50),
              percentile(speedups, 25), percentile(speedups, 75),
              min_of(speedups), max_of(speedups));
  std::printf("\n[expectation] mean >= 1: thread selection should not lose "
              "to the max-thread default on small/medium GEMMs\n");
  return 0;
}
