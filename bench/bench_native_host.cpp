// Extra (not in paper): end-to-end validation on the *real* host CPU using
// the from-scratch BLAS substrate instead of the simulator — the whole
// install() workflow (gather -> preprocess -> train -> select -> artefact
// files) against physical hardware in one command. The artefacts land in
// ./native_artifacts (model.json / config.json / timings.csv), so a real
// host is trained end-to-end by just running this binary, and re-trainable
// without re-timing via InstallOptions::reuse_timings_csv. The bench then
// reports the achieved speedup of ML-selected thread counts vs
// always-max-threads on fresh shapes, per gathered operation.
//
// Knobs: ADSALA_BENCH_NATIVE_SAMPLES (shapes per op, default 60),
// ADSALA_BENCH_NATIVE_OPS (comma list of registered ops, default gemm),
// ADSALA_BENCH_NATIVE_DIR (artefact directory, default native_artifacts),
// ADSALA_BENCH_MODEL (pin one registry model, as in bench_util.h).
#include <filesystem>
#include <string>

#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"
#include "core/op_registry.h"

using namespace adsala;

namespace {

std::vector<blas::OpKind> native_ops() {
  std::vector<blas::OpKind> ops = {blas::OpKind::kGemm};
  const char* env = std::getenv("ADSALA_BENCH_NATIVE_OPS");
  if (env == nullptr || *env == '\0') return ops;
  ops.clear();
  std::string list = env;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string token =
        list.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (const auto op = blas::parse_op(token)) {
      ops.push_back(*op);
    } else {
      std::fprintf(stderr, "[bench] ignoring unregistered op '%s'\n",
                   token.c_str());
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (ops.empty()) ops.push_back(blas::OpKind::kGemm);
  return ops;
}

}  // namespace

int main() {
  bench::print_header(
      "Native host | ADSALA on the real CPU with the built-in BLAS");

  core::NativeExecutor executor;
  std::printf("host threads available: %d\n", executor.max_threads());

  std::string dir = "native_artifacts";
  if (const char* env = std::getenv("ADSALA_BENCH_NATIVE_DIR")) dir = env;
  std::filesystem::create_directories(dir);

  core::InstallOptions opts;
  opts.gather.n_samples = bench::env_size("ADSALA_BENCH_NATIVE_SAMPLES", 60);
  opts.gather.iterations = 3;
  opts.gather.domain.memory_cap_bytes = 24ull * 1024 * 1024;  // laptop-fast
  opts.gather.domain.dim_max = 1600;
  opts.gather.domain.seed = 31;
  opts.gather.ops = native_ops();
  opts.train.candidates = {"linear_regression", "decision_tree", "xgboost",
                           "lightgbm"};
  opts.train.tune = false;  // keep the native bench quick
  opts.output_dir = dir;
  bench::apply_model_pin(opts);

  std::fprintf(stderr, "[bench] installing on the host (%zu shapes/op)...\n",
               opts.gather.n_samples);
  const auto report = core::install(executor, opts);
  std::printf("selected model: %s (gather %.1fs, train %.1fs)\n",
              report.trained.selected.c_str(), report.gather_seconds,
              report.train_seconds);
  std::printf("artefacts: %s, %s\n", report.model_path.c_str(),
              report.config_path.c_str());

  // Serve from the artefacts just written — proving the full file
  // round-trip, exactly what a downstream user loads.
  core::AdsalaGemm runtime(report.model_path, report.config_path);

  bench::BenchJson json("native_host");
  json.meta("samples_per_op", Json(opts.gather.n_samples));
  json.meta("model", Json(runtime.model_name()));

  for (const blas::OpKind op : opts.gather.ops) {
    // Fresh shapes from the op's registry sampler, disjoint seed.
    sampling::DomainConfig test_domain = opts.gather.domain;
    test_domain.seed = 77;
    const auto shapes =
        core::op_traits(op).make_sampler(test_domain)->sample(30);

    std::vector<double> speedups;
    for (const auto& shape : shapes) {
      long coords[3] = {0, 0, 0};
      core::op_traits(op).from_shape(shape, &coords[0], &coords[1],
                                     &coords[2]);
      WallTimer eval_timer;
      const int p = runtime.select_threads(op, coords[0], coords[1],
                                           coords[2]);
      const double t_eval = eval_timer.seconds();
      const double t_ml = executor.measure_op(op, shape, p, 3) + t_eval;
      const double t_max =
          executor.measure_op(op, shape, executor.max_threads(), 3);
      speedups.push_back(t_max / t_ml);
    }
    std::printf(
        "\n%s speedup over always-max-threads on %zu fresh shapes:\n"
        "  mean %.2f   median %.2f   p25 %.2f   p75 %.2f   min %.2f   "
        "max %.2f\n",
        blas::op_name(op), speedups.size(), mean(speedups),
        percentile(speedups, 50), percentile(speedups, 25),
        percentile(speedups, 75), min_of(speedups), max_of(speedups));

    JsonObject row;
    row["op"] = Json(blas::op_name(op));
    row["mean_speedup"] = Json(mean(speedups));
    row["median_speedup"] = Json(percentile(speedups, 50));
    row["min_speedup"] = Json(min_of(speedups));
    row["max_speedup"] = Json(max_of(speedups));
    json.add(std::move(row));
  }

  std::printf("\n[expectation] mean >= 1: thread selection should not lose "
              "to the max-thread default on small/medium shapes\n");
  return 0;
}
