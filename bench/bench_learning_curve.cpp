// Learning curve (paper SS VI-A): the authors built train/validation learning
// curves to decide that 1763 samples suffice for the <=500 MB domain ("more
// training data did not lead to a significant increase in the validation
// performance"). This bench regenerates that curve on the simulated Setonix
// platform: validation RMSE and achieved speedup as a function of the number
// of gathered shapes.
#include "bench_util.h"
#include "common/stats.h"

using namespace adsala;

int main() {
  bench::print_header(
      "Learning curve | validation RMSE & speedup vs training-set size, "
      "Setonix");

  auto executor = bench::make_executor("setonix");
  core::GatherConfig gcfg = bench::bench_gather_config();
  gcfg.n_samples = bench::train_samples();
  std::fprintf(stderr, "[bench] gathering %zu shapes...\n", gcfg.n_samples);
  const auto full = core::gather_timings(executor, gcfg);

  // Hold out a fixed validation set once; train on growing prefixes.
  core::GatherData pool, holdout;
  full.split(0.25, 7, &pool, &holdout);

  std::printf("%10s %12s %12s %12s\n", "shapes", "norm RMSE", "ideal mean",
              "ideal agg");
  bench::print_rule();
  for (double frac : {0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const auto n =
        std::max<std::size_t>(10, static_cast<std::size_t>(
                                      frac * double(pool.records.size())));
    core::GatherData subset{pool.platform, pool.max_threads, pool.thread_grid,
                            {pool.records.begin(),
                             pool.records.begin() + long(n)}};
    core::TrainOptions opts;
    opts.candidates = {"xgboost"};
    opts.tune = false;
    opts.test_fraction = 0.29;  // internal split still happens
    const auto out = core::train_and_select(subset, opts);

    // Evaluate on the common holdout.
    double sum_ratio = 0.0, sum_orig = 0.0, sum_ml = 0.0;
    for (const auto& rec : holdout.records) {
      const auto idx = core::predict_best_grid_index(
          *out.model, out.pipeline, rec.shape, rec.threads);
      sum_ratio += rec.max_thread_runtime() / rec.runtime[idx];
      sum_orig += rec.max_thread_runtime();
      sum_ml += rec.runtime[idx];
    }
    std::printf("%10zu %12.3f %12.2f %12.2f\n", n,
                out.reports[0].test_rmse_norm,
                sum_ratio / double(holdout.records.size()),
                sum_orig / sum_ml);
  }
  std::printf("\n[paper] the validation curve flattens well before the full "
              "campaign size — most of the speedup is available from a "
              "fraction of the 1763-sample budget\n");
  return 0;
}
