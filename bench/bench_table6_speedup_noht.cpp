// Table VI: ADSALA speedup statistics with hyper-threading disabled.
#include "speedup_table_common.h"

int main() {
  adsala::bench::run_speedup_table(false, "Table VI");
  return 0;
}
