// Ablation (DESIGN.md SS6): Group 1 (serial terms) features alone vs the
// full Table II feature set (Group 1 + per-thread Group 2 terms), for a
// linear model and for XGBoost. The Group 2 terms carry the explicit
// thread-count interaction (m*k*n/t etc.) that a linear model cannot
// synthesise on its own; trees can approximate it from splits on n_threads
// but benefit from the precomputed ratios too.
#include "bench_util.h"
#include "preprocess/features.h"

using namespace adsala;

namespace {

void run_variant(const core::GatherData& gathered, const std::string& model,
                 const std::vector<std::size_t>& whitelist,
                 const char* label) {
  core::TrainOptions opts;
  opts.candidates = {model};
  opts.tune = false;
  opts.pipeline.feature_whitelist = whitelist;
  const auto out = core::train_and_select(gathered, opts);
  const auto& r = out.reports[0];
  std::printf("%-20s %-18s %10.3f %10.2f %10.2f\n", label, model.c_str(),
              r.test_rmse_norm, r.ideal_mean_speedup, r.est_mean_speedup);
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation | feature groups (Table II Group 1 vs Group 1+2, Setonix)");

  auto executor = bench::make_executor("setonix");
  core::GatherConfig gcfg = bench::bench_gather_config();
  gcfg.n_samples = std::min<std::size_t>(bench::train_samples(), 400);
  std::fprintf(stderr, "[bench] gathering %zu shapes...\n", gcfg.n_samples);
  const auto gathered = core::gather_timings(executor, gcfg);

  std::printf("%-20s %-18s %10s %10s %10s\n", "features", "model",
              "norm RMSE", "ideal mean", "est mean");
  bench::print_rule();
  const auto group1 = preprocess::group1_indices();
  for (const std::string model : {"linear_regression", "xgboost"}) {
    run_variant(gathered, model, group1, "group 1 only");
    run_variant(gathered, model, {}, "group 1 + 2 (all)");
  }
  std::printf("\n[expectation] adding the Group 2 per-thread ratios lowers "
              "RMSE, most dramatically for the linear model\n");
  return 0;
}
