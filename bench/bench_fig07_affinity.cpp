// Figure 7: core-based vs thread-based OpenMP affinity. Mean GEMM runtime
// over a <=500 MB sample as a function of the thread count, on Setonix
// (left) and Gadi (right). Paper finding: core-based wins below ~half the
// maximum thread count and the two converge at full subscription.
#include "bench_util.h"
#include "common/stats.h"

using namespace adsala;

namespace {

void run_platform(const std::string& platform) {
  const auto topo = bench::topology_for(platform);
  simarch::MachineModel model(topo, 42);
  sampling::DomainConfig domain = bench::train_domain();
  domain.seed = 777;
  sampling::GemmDomainSampler sampler(domain);
  const auto shapes = sampler.sample(120);

  std::printf("\n%s (max %d threads)\n", platform.c_str(),
              topo.max_threads());
  std::printf("%8s %16s %16s %8s\n", "threads", "core-based (us)",
              "thread-based (us)", "ratio");
  for (int p : core::default_thread_grid(topo.max_threads())) {
    double sum_core = 0.0, sum_thread = 0.0;
    for (const auto& s : shapes) {
      simarch::ExecPolicy pc{.nthreads = p,
                             .affinity = simarch::Affinity::kCores};
      simarch::ExecPolicy pt{.nthreads = p,
                             .affinity = simarch::Affinity::kThreads};
      sum_core += model.measure_gemm(s, pc);
      sum_thread += model.measure_gemm(s, pt);
    }
    std::printf("%8d %16.1f %16.1f %8.2f\n", p,
                1e6 * sum_core / static_cast<double>(shapes.size()),
                1e6 * sum_thread / static_cast<double>(shapes.size()),
                sum_thread / sum_core);
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 7 | thread affinity comparison (mean GEMM runtime vs threads)");
  run_platform("setonix");
  run_platform("gadi");
  std::printf("\n[paper] core-based affinity faster for p below ~half max; "
              "policies converge at max threads\n");
  return 0;
}
