// Table IV: model performance and estimated speedups on Gadi.
#include "model_table_common.h"

int main() {
  adsala::bench::run_model_table("gadi", "Table IV");
  return 0;
}
