// Shared driver for Figures 11 (Setonix/BLIS) and 12 (Gadi/MKL): GFLOPS of
// the baseline (max threads) vs ADSALA (ML-selected threads), bucketed by
// aggregate GEMM memory footprint (0-100 .. 400-500 MB).
#pragma once

#include "bench_util.h"

namespace adsala::bench {

inline void run_gflops_figure(const std::string& platform,
                              const std::string& fig_name,
                              const std::string& baseline_name) {
  print_header(fig_name + " | GFLOPS vs memory footprint, " + platform +
               " (" + baseline_name + ")");

  auto runtime = trained_runtime(platform);
  auto executor = make_executor(platform);
  const auto shapes = independent_test_shapes(test_samples());
  const int reference_threads = baseline_threads(executor);

  BenchJson json(fig_name);
  json.meta("platform", Json(platform));
  json.meta("baseline", Json(baseline_name));
  json.meta("samples", Json(shapes.size()));

  constexpr int kBucketMb = 100;
  struct Bucket {
    double flops_base = 0.0, time_base = 0.0;
    double flops_ml = 0.0, time_ml = 0.0;
    int n = 0;
  };
  std::vector<Bucket> buckets(5);
  for (const auto& shape : shapes) {
    const auto b = std::min<std::size_t>(
        static_cast<std::size_t>(shape.bytes() / (kBucketMb * 1024.0 * 1024.0)),
        buckets.size() - 1);
    const int p = runtime.select_threads(shape.m, shape.k, shape.n);
    const double t_ml = executor.measure(shape, p);
    const double t_base = executor.measure(shape, reference_threads);
    buckets[b].flops_base += shape.flops();
    buckets[b].time_base += t_base;
    buckets[b].flops_ml += shape.flops();
    buckets[b].time_ml += t_ml;
    ++buckets[b].n;
  }

  std::printf("%-12s %8s %20s %20s %8s\n", "size (MB)", "samples",
              (baseline_name + " max-thr").c_str(),
              (baseline_name + " + ML").c_str(), "ratio");
  print_rule();
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b].n == 0) continue;
    const double g_base = buckets[b].flops_base / buckets[b].time_base / 1e9;
    const double g_ml = buckets[b].flops_ml / buckets[b].time_ml / 1e9;
    std::printf("%4zu-%-7zu %8d %17.1f GF %17.1f GF %8.2f\n", b * kBucketMb,
                (b + 1) * kBucketMb, buckets[b].n, g_base, g_ml,
                g_ml / g_base);
    JsonObject row;
    row["bucket_mb_lo"] = Json(b * kBucketMb);
    row["bucket_mb_hi"] = Json((b + 1) * kBucketMb);
    row["samples"] = Json(buckets[b].n);
    row["gflops_baseline"] = Json(g_base);
    row["gflops_ml"] = Json(g_ml);
    row["ratio"] = Json(g_ml / g_base);
    json.add(std::move(row));
  }
  std::printf("\n[paper] ML-selected threads lift GFLOPS in every bucket; "
              "largest relative gain in the 0-100 MB range\n");
}

}  // namespace adsala::bench
