// TRSM thread-count selection: selected-vs-max-threads speedup over an
// independent trsm-family test set (A n x n triangular, m right-hand-side
// columns), served by one model trained with the four-operation gather.
//
// TRSM is where op awareness earns its keep: the diagonal-solve dependency
// chain runs at single-thread rate and the trailing updates touch only the
// triangle, so the optimum sits well below the equivalent GEMM's — the
// GEMM-proxy heuristic systematically over-threads. Results land in
// BENCH_trsm_select.json.
#include "op_select_common.h"

int main() { return adsala::bench::run_op_select_bench(adsala::blas::OpKind::kTrsm); }
