// Table VII: profiler-style time breakdown of two GEMM cases on Gadi —
// (64, 2048, 64) and (64, 64, 4096) — at 96 threads (no ML) vs the
// ML-selected thread count. The simulator returns the same three wall-time
// components the paper isolates with VTune: thread sync, kernel calls, data
// copy. Times are per 1000 calls, like the paper's profiling runs.
#include "bench_util.h"

using namespace adsala;

int main() {
  bench::print_header(
      "Table VII | time breakdown on Gadi, 96 threads vs ML selection");

  auto runtime = bench::trained_runtime("gadi");
  simarch::MachineModel model(simarch::gadi_topology(), 42);

  const simarch::GemmShape cases[] = {{64, 2048, 64, 4}, {64, 64, 4096, 4}};
  constexpr double kCalls = 1000.0;

  std::printf("%-14s %8s %10s %10s %10s %10s\n", "m,k,n", "threads",
              "total (s)", "sync (s)", "kernel (s)", "copy (s)");
  bench::print_rule();
  for (const auto& shape : cases) {
    const int p_ml = runtime.select_threads(shape.m, shape.k, shape.n);
    for (const int p : {96, p_ml}) {
      const auto bd = model.time_gemm(shape, {.nthreads = p});
      std::printf("%ld,%ld,%ld%s %8d %10.3f %10.3f %10.3f %10.3f\n", shape.m,
                  shape.k, shape.n, p == 96 ? " no ML " : " with ML",
                  p, kCalls * bd.total(), kCalls * bd.sync_s,
                  kCalls * bd.kernel_s, kCalls * bd.copy_s);
    }
    std::printf("\n");
  }
  std::printf("[paper] 64,2048,64: 167.7s total at 96 thr (163.3s copy) vs "
              "1.07s at 14 thr; 64,64,4096: 18.3s at 96 thr vs 0.89s at 1 "
              "thr with zero sync/copy\n");
  return 0;
}
