// Retrain-and-hot-swap from serve-time telemetry — the closing arc of the
// continual-retuning loop (docs/OPERATIONS.md "Continual retuning").
//
//   sampler (core/adsala.h) -> telemetry log (core/telemetry_log.h)
//     -> drift detector (core/drift.h)
//     -> retune(): telemetry -> timing rows -> install() with
//        reuse_timings_csv -> write-then-verify -> version bump
//        -> shm republish / live hot-swap
//     -> rollback(): re-publish any retained prior version
//
// The artefact directory becomes a tiny versioned store:
//
//   DIR/model.json, DIR/config.json   the currently served artefacts
//   DIR/VERSION                       current version (one decimal integer)
//   DIR/versions/<v>/model.json,...   retained copy of every version
//
// Versions are monotonic and never reused: a rollback does not rewind the
// counter, it *republishes old content as a new version* — so "which bytes
// is every attacher on" stays a single monotonically answerable question,
// mirroring AdsalaGemm's in-process snapshot versioning. A pre-existing
// unversioned directory is adopted in place: its current artefacts become
// version 1 on the first retune()/rollback() touch.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/drift.h"
#include "core/gather.h"
#include "core/telemetry_log.h"
#include "core/trainer.h"

namespace adsala::core {

class AdsalaGemm;

/// Folds telemetry records into gathering-campaign form: records with the
/// same (op, shape, elem, kernel) become one GatherRecord curve (first-
/// appearance order, threads ascending, minimum measured time per thread
/// count), and the returned thread_grid is the first curve's thread list —
/// deliberately the same convention as GatherData::load_csv, so this data
/// and its CSV round-trip train identically. The caller stamps `platform` —
/// telemetry does not carry it. This is what makes the existing
/// reuse_timings_csv machinery retrain straight from production traffic.
GatherData telemetry_to_gather_data(std::span<const TelemetryRecord> records);

/// Current version of a versioned artefact directory: the DIR/VERSION
/// integer, or 0 when the directory is not (yet) versioned.
std::uint64_t artefact_version(const std::string& dir);

/// Versions retained under DIR/versions/, ascending.
std::vector<std::uint64_t> retained_artefact_versions(const std::string& dir);

struct RetuneOptions {
  std::string telemetry_path;
  std::string artefact_dir;
  DriftOptions drift;
  /// Retrain even when the drift detector did not fire.
  bool force = false;
  /// Minimum telemetry records before retuning is even considered
  /// (kPreconditionFailed below it). The trainer separately requires >= 10
  /// distinct shape curves.
  std::size_t min_records = 10;
  TrainOptions train;
  /// Forwarded to install(): republish the verified artefacts into this shm
  /// region (empty = none) / hot-swap them into this live runtime (null =
  /// none).
  std::string publish_shm;
  AdsalaGemm* publish_to = nullptr;
};

struct RetuneReport {
  DriftReport drift;
  bool retrained = false;
  std::uint64_t previous_version = 0;
  std::uint64_t new_version = 0;  ///< == previous_version when !retrained
  std::string selected_model;
  std::size_t telemetry_records = 0;  ///< records read from the log
};

/// The full retune step. Loads + validates the directory's current
/// artefacts, reads the telemetry log, runs the drift detector, and — when
/// it fired (or `force`) — retrains through install()'s reuse_timings_csv
/// path (platform preserved from the current config), write-then-verifies,
/// retains the old version, bumps DIR/VERSION and publishes. Failure
/// classes: artefact/log problems pass through (kNotFound/kParseError/
/// kValidationError), too little telemetry is kPreconditionFailed, a
/// retrain that produces unservable artefacts is kInternal (and the
/// previous artefacts stay current — publication is post-verify only).
Expected<RetuneReport> retune(const RetuneOptions& options);

/// Re-publishes retained version `version` as the new current version
/// (monotonic bump, see the file comment). kPreconditionFailed when the
/// version is not retained; the retained copy is re-validated through
/// try_load before anything is overwritten. Optional shm republish and live
/// hot-swap as in retune(). Returns the new current version.
Expected<std::uint64_t> rollback(const std::string& dir,
                                 std::uint64_t version,
                                 const std::string& publish_shm = "",
                                 AdsalaGemm* publish_to = nullptr);

}  // namespace adsala::core
