// Retrain-and-hot-swap from serve-time telemetry — the closing arc of the
// continual-retuning loop (docs/OPERATIONS.md "Continual retuning").
//
//   sampler (core/adsala.h) -> telemetry log (core/telemetry_log.h)
//     -> drift detector (core/drift.h)
//     -> retune(): telemetry -> timing rows -> install() with
//        reuse_timings_csv -> write-then-verify -> version bump
//        -> shm republish / live hot-swap
//     -> rollback(): re-publish any retained prior version
//
// The artefact directory becomes a tiny versioned store:
//
//   DIR/model.json, DIR/config.json   the currently served artefacts
//   DIR/VERSION                       current version (one decimal integer)
//   DIR/versions/<v>/model.json,...   retained copy of every version
//
// Versions are monotonic and never reused: a rollback does not rewind the
// counter, it *republishes old content as a new version* — so "which bytes
// is every attacher on" stays a single monotonically answerable question,
// mirroring AdsalaGemm's in-process snapshot versioning. A pre-existing
// unversioned directory is adopted in place: its current artefacts become
// version 1 on the first retune()/rollback() touch.
//
// Publication is crash-safe (ISSUE 10): promote_artefacts() lands a new
// version by (1) building versions/<v> behind a same-directory tmp name and
// renaming it into place (fsynced — the retained copy is durable before
// anything else moves), (2) atomically replacing the current mirror files
// via write-temp/fsync/rename, and (3) updating VERSION last by the same
// protocol. A SIGKILL between any two steps leaves a state recover_store()
// resolves forward: temp debris is garbage-collected, incomplete retained
// versions are dropped, and the store adopts the highest *fully promoted*
// version — VERSION never rewinds. `promote-crash-*` failpoints
// (common/failpoint.h) SIGKILL the process at each phase boundary so the
// crash harness can prove every window.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/drift.h"
#include "core/gather.h"
#include "core/telemetry_log.h"
#include "core/trainer.h"

namespace adsala::core {

class AdsalaGemm;

/// Folds telemetry records into gathering-campaign form: records with the
/// same (op, shape, elem, kernel) become one GatherRecord curve (first-
/// appearance order, threads ascending, minimum measured time per thread
/// count), and the returned thread_grid is the first curve's thread list —
/// deliberately the same convention as GatherData::load_csv, so this data
/// and its CSV round-trip train identically. The caller stamps `platform` —
/// telemetry does not carry it. This is what makes the existing
/// reuse_timings_csv machinery retrain straight from production traffic.
GatherData telemetry_to_gather_data(std::span<const TelemetryRecord> records);

/// Current version of a versioned artefact directory: the DIR/VERSION
/// integer, or 0 when the directory is not (yet) versioned.
std::uint64_t artefact_version(const std::string& dir);

/// Versions retained under DIR/versions/, ascending. Only *complete*
/// retained copies count (both model.json and config.json present); tmp
/// staging names are skipped.
std::vector<std::uint64_t> retained_artefact_versions(const std::string& dir);

/// Crash-safe promotion of a verified artefact pair as version `version`:
/// durable retained copy first (tmp dir + rename + dir fsync), then the
/// current-mirror files (atomic_write_file each), then VERSION — so a crash
/// at any instruction leaves either the old store or a state recover_store()
/// rolls forward to `version`. The caller is responsible for having
/// validated the bytes (retune/rollback run them through try_load first).
Error promote_artefacts(const std::string& dir, const std::string& model_json,
                        const std::string& config_json,
                        std::uint64_t version);

/// What recover_store() found and did.
struct RecoveryReport {
  std::uint64_t version = 0;       ///< current version after recovery
  bool repaired = false;           ///< mirror/VERSION/retention was rewritten
  std::size_t debris_removed = 0;  ///< tmp files/dirs + staging/ GC-ed
};

/// Resolves a store that may have been torn by a crashed promote: removes
/// `*.tmp.<pid>` debris, orphaned staging/, and incomplete retained
/// versions; then adopts the highest fully-promoted version — repairing the
/// current mirror from versions/<v> and rewriting VERSION when they lag.
/// VERSION only ever moves forward. An unversioned directory is a no-op
/// (version 0 reported); kNotFound when `dir` is not a directory;
/// kValidationError when VERSION names a version that exists nowhere (not
/// retained, mirror missing) — a state no crash of ours produces.
/// retune() and rollback() run this on entry; the CLI runs it best-effort
/// before loading from a --dir store.
Expected<RecoveryReport> recover_store(const std::string& dir);

struct RetuneOptions {
  std::string telemetry_path;
  std::string artefact_dir;
  DriftOptions drift;
  /// Retrain even when the drift detector did not fire.
  bool force = false;
  /// Minimum telemetry records before retuning is even considered
  /// (kPreconditionFailed below it). The trainer separately requires >= 10
  /// distinct shape curves.
  std::size_t min_records = 10;
  TrainOptions train;
  /// Forwarded to install(): republish the verified artefacts into this shm
  /// region (empty = none) / hot-swap them into this live runtime (null =
  /// none).
  std::string publish_shm;
  AdsalaGemm* publish_to = nullptr;
};

struct RetuneReport {
  DriftReport drift;
  bool retrained = false;
  std::uint64_t previous_version = 0;
  std::uint64_t new_version = 0;  ///< == previous_version when !retrained
  std::string selected_model;
  std::size_t telemetry_records = 0;  ///< records read from the log
};

/// The full retune step. Loads + validates the directory's current
/// artefacts, reads the telemetry log, runs the drift detector, and — when
/// it fired (or `force`) — retrains through install()'s reuse_timings_csv
/// path (platform preserved from the current config), write-then-verifies,
/// retains the old version, bumps DIR/VERSION and publishes. Failure
/// classes: artefact/log problems pass through (kNotFound/kParseError/
/// kValidationError), too little telemetry is kPreconditionFailed, a
/// retrain that produces unservable artefacts is kInternal (and the
/// previous artefacts stay current — publication is post-verify only).
Expected<RetuneReport> retune(const RetuneOptions& options);

/// Re-publishes retained version `version` as the new current version
/// (monotonic bump, see the file comment). kPreconditionFailed when the
/// version is not retained; the retained copy is re-validated through
/// try_load before anything is overwritten. Optional shm republish and live
/// hot-swap as in retune(). Returns the new current version.
Expected<std::uint64_t> rollback(const std::string& dir,
                                 std::uint64_t version,
                                 const std::string& publish_shm = "",
                                 AdsalaGemm* publish_to = nullptr);

}  // namespace adsala::core
