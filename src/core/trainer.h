// Installation-time model training and speedup-based selection
// (paper Fig. 2 "Model training part" + SS IV-D selection strategy).
//
// For every candidate model: tune hyper-parameters with stratified k-fold
// grid search on the (preprocessed) training rows, evaluate on held-out test
// shapes, and estimate the speedup
//     s = t_original / (t_ADSALA + t_eval)
// where t_original is the measured runtime at max threads, t_ADSALA the
// measured runtime at the model's argmin thread count, and t_eval the
// measured wall time of one full thread-grid model evaluation. The model
// with the best estimated mean speedup is selected — this is what produces
// the paper's Tables III and IV row-by-row.
#pragma once

#include <memory>
#include <optional>

#include "core/gather.h"
#include "ml/registry.h"
#include "preprocess/pipeline.h"

namespace adsala::core {

/// One row of Table III/IV.
struct ModelReport {
  std::string model_name;
  ml::Params best_params;
  double cv_rmse = 0.0;            ///< tuning objective (transformed label)
  double test_rmse_norm = 0.0;     ///< normalised RMSE on test rows
  double ideal_mean_speedup = 0.0;
  double ideal_agg_speedup = 0.0;
  double eval_time_us = 0.0;       ///< one full thread-grid argmin evaluation
  double est_mean_speedup = 0.0;
  double est_agg_speedup = 0.0;
};

struct TrainOptions {
  std::vector<std::string> candidates;  ///< empty -> the paper's 8 models
  preprocess::PipelineConfig pipeline;
  double test_fraction = 0.30;  ///< paper SS VI-A
  std::size_t cv_folds = 5;
  std::uint64_t seed = 2023;
  bool tune = true;  ///< false: skip grid search, use default params
};

struct TrainOutput {
  std::vector<ModelReport> reports;       ///< one per candidate, input order
  std::string selected;                   ///< name of the winner
  std::unique_ptr<ml::Regressor> model;   ///< fitted winner
  preprocess::Pipeline pipeline;          ///< fitted preprocessing
  std::vector<int> thread_grid;
  int max_threads = 0;
  std::string platform;

  const ModelReport& selected_report() const;
};

/// The paper's candidate zoo for Tables III/IV (8 models, kNN excluded from
/// the tables but available via TrainOptions::candidates).
std::vector<std::string> paper_candidates();

TrainOutput train_and_select(const GatherData& gathered,
                             const TrainOptions& options);

/// Predicts the best thread count for one shape with a fitted model +
/// pipeline over a thread grid (the runtime argmin loop, shared with
/// AdsalaGemm). Returns the grid index of the argmin.
///
/// The raw feature row is built to match the pipeline's fitted input width
/// (preprocess::make_query_features): a current 23-column pipeline gets the
/// full op / kernel one-hot block from `op` and `variant` (kAuto resolves to
/// the active dispatch); a PR-2-era 21-column pipeline sees gemm/syrk
/// one-hots only, with TRSM/SYMM proxied as GEMM; a PR-1-era 17-column
/// pipeline ignores the one-hots entirely — every non-GEMM query then
/// degrades to the GEMM-proxy heuristic, since its shape already carries the
/// equivalent-GEMM dimensions.
std::size_t predict_best_grid_index(
    const ml::Regressor& model, const preprocess::Pipeline& pipeline,
    const simarch::GemmShape& shape, std::span<const int> thread_grid,
    blas::OpKind op = blas::OpKind::kGemm,
    blas::kernels::Variant variant = blas::kernels::Variant::kAuto);

}  // namespace adsala::core
