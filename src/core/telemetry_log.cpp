#include "core/telemetry_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/failpoint.h"

namespace adsala::core {

namespace {

void put_u32(std::uint8_t* buf, std::uint32_t v) {
  buf[0] = static_cast<std::uint8_t>(v);
  buf[1] = static_cast<std::uint8_t>(v >> 8);
  buf[2] = static_cast<std::uint8_t>(v >> 16);
  buf[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64(std::uint8_t* buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint32_t get_u32(const std::uint8_t* buf) {
  return static_cast<std::uint32_t>(buf[0]) |
         static_cast<std::uint32_t>(buf[1]) << 8 |
         static_cast<std::uint32_t>(buf[2]) << 16 |
         static_cast<std::uint32_t>(buf[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* buf) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  }
  return v;
}

/// FNV-1a 64 over the checksummed prefix of a record frame.
std::uint64_t checksum(const std::uint8_t* buf, std::size_t len) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= buf[i];
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::size_t kChecksumOffset = 40;

/// Scan result over a log's bytes: the decodable records, plus how many
/// bytes of valid prefix precede the (possibly empty) torn tail.
struct Scan {
  std::vector<TelemetryRecord> records;
  std::size_t valid_bytes = 0;
};

/// Applies the shared tail/corruption contract to raw file content.
Expected<Scan> scan_log(const std::vector<std::uint8_t>& bytes,
                        const std::string& path) {
  Scan scan;
  std::size_t offset = 0;
  while (offset + kTelemetryRecordBytes <= bytes.size()) {
    TelemetryRecord rec;
    if (!decode_telemetry_record(bytes.data() + offset, &rec)) {
      if (offset + kTelemetryRecordBytes == bytes.size()) {
        // A full-size but undecodable final record: a crash can land here
        // (all 48 bytes issued, only some persisted) — torn tail.
        return scan;
      }
      return Error{ErrorCode::kParseError,
                   path + ": telemetry record " +
                       std::to_string(scan.records.size()) +
                       " fails its checksum with valid data after it "
                       "(mid-file corruption, not a torn tail)"};
    }
    scan.records.push_back(rec);
    offset += kTelemetryRecordBytes;
    scan.valid_bytes = offset;
  }
  // Trailing bytes shorter than one record are always a torn tail.
  return scan;
}

Expected<std::vector<std::uint8_t>> slurp_bytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Error{ErrorCode::kNotFound,
                 path + ": " + std::strerror(errno)};
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const int read_errno = errno;
  ::close(fd);
  if (n < 0) {
    return Error{ErrorCode::kNotFound,
                 path + ": read: " + std::strerror(read_errno)};
  }
  return bytes;
}

}  // namespace

void encode_telemetry_record(const TelemetryRecord& rec, std::uint8_t* buf) {
  buf[0] = kTelemetryMagic;
  buf[1] = static_cast<std::uint8_t>(blas::op_code(rec.op));
  buf[2] = static_cast<std::uint8_t>(rec.elem_bytes);
  buf[3] = static_cast<std::uint8_t>(rec.kernel);
  put_u32(buf + 4, static_cast<std::uint32_t>(rec.threads));
  put_u32(buf + 8, static_cast<std::uint32_t>(rec.m));
  put_u32(buf + 12, static_cast<std::uint32_t>(rec.k));
  put_u32(buf + 16, static_cast<std::uint32_t>(rec.n));
  put_u32(buf + 20, 0);
  put_u64(buf + 24, rec.measured_ns);
  put_u64(buf + 32, rec.model_version);
  put_u64(buf + kChecksumOffset, checksum(buf, kChecksumOffset));
}

bool decode_telemetry_record(const std::uint8_t* buf, TelemetryRecord* out) {
  if (buf[0] != kTelemetryMagic) return false;
  if (get_u64(buf + kChecksumOffset) != checksum(buf, kChecksumOffset)) {
    return false;
  }
  const auto op = blas::op_from_code(buf[1]);
  if (!op) return false;
  out->op = *op;
  out->elem_bytes = buf[2];
  out->kernel = static_cast<blas::kernels::Variant>(buf[3]);
  out->threads = static_cast<int>(get_u32(buf + 4));
  out->m = static_cast<long>(get_u32(buf + 8));
  out->k = static_cast<long>(get_u32(buf + 12));
  out->n = static_cast<long>(get_u32(buf + 16));
  out->measured_ns = get_u64(buf + 24);
  out->model_version = get_u64(buf + 32);
  return true;
}

Expected<TelemetryLog> TelemetryLog::open(const std::string& path) {
  // Heal first: scan whatever is on disk and cut a torn tail off, so every
  // append lands on a record boundary. Creation races are benign — O_CREAT
  // below is atomic and a fresh file scans as zero records.
  struct stat st {};
  if (::stat(path.c_str(), &st) == 0 && st.st_size > 0) {
    auto bytes = slurp_bytes(path);
    if (!bytes.ok()) return bytes.error();
    auto scan = scan_log(bytes.value(), path);
    if (!scan.ok()) return scan.error();
    if (scan.value().valid_bytes != bytes.value().size()) {
      if (::truncate(path.c_str(),
                     static_cast<off_t>(scan.value().valid_bytes)) != 0) {
        return Error{ErrorCode::kInternal,
                     path + ": truncate torn tail: " + std::strerror(errno)};
      }
    }
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) {
    return Error{ErrorCode::kNotFound,
                 path + ": " + std::strerror(errno)};
  }
  return TelemetryLog(path, fd);
}

TelemetryLog::TelemetryLog(TelemetryLog&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      wedged_(other.wedged_),
      appended_(other.appended_),
      buffer_(std::move(other.buffer_)) {}

TelemetryLog& TelemetryLog::operator=(TelemetryLog&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      (void)flush();
      ::close(fd_);
    }
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    wedged_ = other.wedged_;
    appended_ = other.appended_;
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

TelemetryLog::~TelemetryLog() {
  if (fd_ >= 0) {
    (void)flush();
    ::close(fd_);
  }
}

Error TelemetryLog::append(const TelemetryRecord& rec) {
  std::uint8_t frame[kTelemetryRecordBytes];
  encode_telemetry_record(rec, frame);

  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0 || wedged_) {
    return Error{ErrorCode::kInternal,
                 path_ + ": telemetry log handle is wedged after a torn "
                         "write; reopen to heal"};
  }
  buffer_.insert(buffer_.end(), frame, frame + sizeof frame);
  ++appended_;
  if (buffer_.size() >= kTelemetryFlushRecords * kTelemetryRecordBytes) {
    return flush_locked();
  }
  return Error{};
}

Error TelemetryLog::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return flush_locked();
}

Error TelemetryLog::flush_locked() {
  if (buffer_.empty()) return Error{};
  if (fd_ < 0 || wedged_) {
    return Error{ErrorCode::kInternal,
                 path_ + ": telemetry log handle is wedged after a torn "
                         "write; reopen to heal"};
  }
  std::size_t len = buffer_.size();
  if (failpoint::triggered("telemetry-torn-tail")) {
    // Simulated crash mid-write: persist only a prefix of the first record.
    // The handle wedges (below) because writing after a torn record would
    // turn a healable tail into mid-file corruption.
    len = 17;
  }
  const ssize_t written = ::write(fd_, buffer_.data(), len);
  if (written != static_cast<ssize_t>(buffer_.size())) {
    wedged_ = true;
    return Error{ErrorCode::kInternal,
                 path_ + ": telemetry flush wrote " +
                     std::to_string(written < 0 ? 0 : written) + "/" +
                     std::to_string(buffer_.size()) + " bytes"};
  }
  buffer_.clear();
  return Error{};
}

Expected<std::vector<TelemetryRecord>> read_telemetry_log(
    const std::string& path) {
  auto bytes = slurp_bytes(path);
  if (!bytes.ok()) return bytes.error();
  auto scan = scan_log(bytes.value(), path);
  if (!scan.ok()) return scan.error();
  return std::move(scan).value().records;
}

}  // namespace adsala::core
