// Immutable serving state — one generation of the tuning-as-a-service
// query path.
//
// A ServingSnapshot freezes everything a select_threads query needs (model,
// fitted pipeline, thread grid, fallback machine model, memo cache) into one
// object that is never mutated after publication. AdsalaGemm publishes the
// current generation through a single std::atomic pointer, so the hot path
// is one acquire load plus the snapshot's own lock-free memo probe — no
// mutex anywhere. A retrain hot-swaps a *new* snapshot in (version bump);
// in-flight queries keep reading the old one, which stays alive for the
// runtime's lifetime (generations are retained by the publisher, so readers
// need no hazard pointers and no reference-count traffic per query).
//
// The memo cache lives inside the snapshot: a fixed-capacity direct-mapped
// table whose entries pack the full (op, m, k, n, elem) key AND the answer
// into one 64-bit word, so a single relaxed/acquire load can never observe
// a torn key/value pairing. Capacity is a compile-time constant — the cache
// cannot grow under adversarial shape streams — and a fresh snapshot starts
// empty (clear-on-swap), so a stale generation's decisions never leak into
// the next model's answers.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "blas/op.h"
#include "ml/model.h"
#include "preprocess/pipeline.h"
#include "simarch/machine_model.h"

namespace adsala::core {

/// How a select_threads answer was produced — the fail-safe serving ladder
/// (docs/OPERATIONS.md, "Failure modes and degraded serving"):
///   kModelServed        the trained model answered for this op first-class
///   kGemmProxy          the model answered, but through the equivalent-GEMM
///                       proxy (op postdates the artefact's schema)
///   kHeuristicFallback  no usable artefacts; a built-in analytic occupancy
///                       rule (simarch::MachineModel literals) answered
enum class ServingMode { kModelServed, kGemmProxy, kHeuristicFallback };

/// Stable name for logs/CLI: "model", "gemm_proxy", "heuristic".
const char* serving_mode_name(ServingMode mode);

/// Bounded lock-free decision memo (paper SS III-C generalised from "the
/// last decision" to a small direct-mapped cache). One entry is one atomic
/// 64-bit word holding key and answer together:
///
///   bit 63      valid (so a zeroed slot can never match)
///   bits 62..60 op code (blas/op.h, 3 bits)
///   bits 59..58 element-size code (1 = 4 bytes, 2 = 8 bytes)
///   bits 57..42 m   (16 bits)
///   bits 41..26 k   (16 bits)
///   bits 25..10 n   (16 bits)
///   bits  9..0  selected thread count (10 bits)
///
/// Queries outside the packable range (a dimension above 65535, a thread
/// count above 1023, an exotic element size) simply bypass the cache and
/// recompute — the cache is an accelerator, never a correctness dependency.
class MemoCache {
 public:
  static constexpr std::size_t kSlots = 256;
  static constexpr std::uint64_t kThreadsMask = 0x3FFu;

  MemoCache() {
    for (auto& slot : slots_) slot.store(0, std::memory_order_relaxed);
  }

  /// Packs a query key (threads bits zero). Returns 0 when unpackable.
  static std::uint64_t pack_key(blas::OpKind op, long m, long k, long n,
                                int elem_bytes);

  /// True on hit; *threads receives the cached decision.
  bool lookup(std::uint64_t key, int* threads) const {
    const std::uint64_t entry =
        slots_[slot_of(key)].load(std::memory_order_acquire);
    if ((entry & ~kThreadsMask) != key) return false;
    *threads = static_cast<int>(entry & kThreadsMask);
    return true;
  }

  /// Publishes a decision (no-op when the thread count is unpackable).
  void insert(std::uint64_t key, int threads) const {
    const auto t = static_cast<std::uint64_t>(threads);
    if (t == 0 || t > kThreadsMask) return;
    slots_[slot_of(key)].store(key | t, std::memory_order_release);
  }

 private:
  static std::size_t slot_of(std::uint64_t key) {
    // splitmix64 finaliser — cheap, well-distributed over the packed bits.
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ull;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebull;
    key ^= key >> 31;
    return static_cast<std::size_t>(key) % kSlots;
  }

  /// mutable: the cache is the one part of a snapshot that changes after
  /// publication, and it does so only through single-word atomics.
  mutable std::array<std::atomic<std::uint64_t>, kSlots> slots_;
};

static_assert(sizeof(MemoCache) == MemoCache::kSlots * sizeof(std::uint64_t),
              "memo footprint is pinned: kSlots words, nothing else");

/// One immutable generation of serving state. Everything is set before
/// publication and never written again (the memo's atomics excepted).
struct ServingSnapshot {
  std::uint64_t version = 0;  ///< monotonically bumped per install()

  /// Trained model; null exactly in heuristic-fallback mode. Shared so a
  /// hot-swap that only re-stamps metadata does not deep-copy the model.
  std::shared_ptr<const ml::Regressor> model;
  preprocess::Pipeline pipeline;
  /// Analytic stand-in; non-null exactly in heuristic mode.
  std::shared_ptr<const simarch::MachineModel> fallback_model;
  std::vector<int> thread_grid;
  int max_threads = 0;
  std::string platform;
  std::string model_name;

  MemoCache memo;

  /// The serving ladder rung this snapshot answers `op` from.
  ServingMode mode_for(blas::OpKind op) const;

  /// True when an op_* one-hot column survived preprocessing into the
  /// model input (see AdsalaGemm::op_aware).
  bool op_aware() const;

  /// Memoised thread selection against this generation. Lock-free: at most
  /// two atomic word operations around a const model evaluation.
  int select_threads(blas::OpKind op, long m, long k, long n,
                     int elem_bytes) const;
};

}  // namespace adsala::core
