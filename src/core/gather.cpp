#include "core/gather.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>

#include "blas/kernels/dispatch.h"
#include "common/csv.h"
#include "core/op_registry.h"
#include "ml/splits.h"
#include "preprocess/features.h"

namespace adsala::core {

int GatherRecord::optimal_threads() const {
  const auto it = std::min_element(runtime.begin(), runtime.end());
  return threads[static_cast<std::size_t>(it - runtime.begin())];
}

double GatherRecord::optimal_runtime() const {
  return *std::min_element(runtime.begin(), runtime.end());
}

double GatherRecord::max_thread_runtime() const { return runtime.back(); }

ml::Dataset GatherData::to_dataset() const {
  ml::Dataset data(preprocess::op_aware_feature_names());
  for (const auto& rec : records) {
    for (std::size_t t = 0; t < rec.threads.size(); ++t) {
      const auto feats = preprocess::make_op_aware_features(
          static_cast<double>(rec.shape.m), static_cast<double>(rec.shape.k),
          static_cast<double>(rec.shape.n),
          static_cast<double>(rec.threads[t]), rec.op, rec.variant);
      data.add_row(feats, rec.runtime[t]);
    }
  }
  return data;
}

void GatherData::split(double test_fraction, std::uint64_t seed,
                       GatherData* train, GatherData* test) const {
  std::vector<double> strata_key;
  strata_key.reserve(records.size());
  for (const auto& rec : records) {
    strata_key.push_back(std::log(std::max(rec.optimal_runtime(), 1e-300)));
  }
  const auto idx = ml::train_test_split(strata_key, test_fraction, seed);
  *train = GatherData{platform, max_threads, thread_grid, {}};
  *test = GatherData{platform, max_threads, thread_grid, {}};
  for (std::size_t i : idx.train) train->records.push_back(records[i]);
  for (std::size_t i : idx.test) test->records.push_back(records[i]);
}

void GatherData::save_csv(const std::string& path) const {
  CsvTable table;
  table.header = {"m",       "k",       "n",  "elem_bytes",
                  "threads", "runtime", "op", "variant"};
  for (const auto& rec : records) {
    for (std::size_t t = 0; t < rec.threads.size(); ++t) {
      table.rows.push_back({static_cast<double>(rec.shape.m),
                            static_cast<double>(rec.shape.k),
                            static_cast<double>(rec.shape.n),
                            static_cast<double>(rec.shape.elem_bytes),
                            static_cast<double>(rec.threads[t]),
                            rec.runtime[t],
                            static_cast<double>(blas::op_code(rec.op)),
                            static_cast<double>(rec.variant)});
    }
  }
  write_csv(path, table);
}

GatherData GatherData::load_csv(const std::string& path) {
  const CsvTable table = read_csv(path);
  // Column lookup by header name so the PR-1-era six-column files (no
  // op/variant) keep loading; absent columns default to generic-kernel GEMM.
  const bool has_op =
      std::find(table.header.begin(), table.header.end(), "op") !=
      table.header.end();
  const bool has_variant =
      std::find(table.header.begin(), table.header.end(), "variant") !=
      table.header.end();
  const std::size_t op_col = has_op ? table.col_index("op") : 0;
  const std::size_t variant_col =
      has_variant ? table.col_index("variant") : 0;

  GatherData out;
  GatherRecord current;
  bool have_current = false;
  for (const auto& row : table.rows) {
    simarch::GemmShape shape{static_cast<long>(row[0]),
                             static_cast<long>(row[1]),
                             static_cast<long>(row[2]),
                             static_cast<int>(row[3])};
    blas::OpKind op = blas::OpKind::kGemm;
    if (has_op) {
      const auto parsed = blas::op_from_code(static_cast<int>(row[op_col]));
      if (!parsed) {
        throw std::runtime_error("GatherData::load_csv: unknown op code");
      }
      op = *parsed;
    }
    auto variant = blas::kernels::Variant::kGeneric;
    if (has_variant) {
      const int code = static_cast<int>(row[variant_col]);
      // Records must carry a concrete variant; kAuto (0) or unknown codes
      // mean the file is corrupt or from an incompatible future version.
      if (code != static_cast<int>(blas::kernels::Variant::kGeneric) &&
          code != static_cast<int>(blas::kernels::Variant::kAvx2) &&
          code != static_cast<int>(blas::kernels::Variant::kAvx512)) {
        throw std::runtime_error(
            "GatherData::load_csv: unknown kernel-variant code");
      }
      variant = static_cast<blas::kernels::Variant>(code);
    }
    if (!have_current || shape.m != current.shape.m ||
        shape.k != current.shape.k || shape.n != current.shape.n ||
        shape.elem_bytes != current.shape.elem_bytes || op != current.op) {
      if (have_current) out.records.push_back(std::move(current));
      current = GatherRecord{};
      current.shape = shape;
      current.op = op;
      current.variant = variant;
      have_current = true;
    }
    current.threads.push_back(static_cast<int>(row[4]));
    current.runtime.push_back(row[5]);
  }
  if (have_current) out.records.push_back(std::move(current));
  if (!out.records.empty()) {
    out.thread_grid = out.records.front().threads;
    out.max_threads = out.thread_grid.back();
  }
  return out;
}

namespace {

/// Restores the pre-campaign kernel dispatch when a variant A/B campaign
/// ends (or throws). active_variant() is always concrete, so re-pinning it
/// is behaviourally identical to whatever selection produced it.
class VariantRestorer {
 public:
  VariantRestorer() : previous_(blas::kernels::active_variant()) {}
  ~VariantRestorer() { blas::kernels::set_variant(previous_); }

 private:
  blas::kernels::Variant previous_;
};

}  // namespace

GatherData gather_timings(GemmExecutor& executor, const GatherConfig& config) {
  GatherData out;
  out.platform = executor.name();
  out.max_threads = executor.max_threads();
  out.thread_grid = config.thread_grid.empty()
                        ? default_thread_grid(out.max_threads)
                        : config.thread_grid;
  if (out.thread_grid.empty()) {
    throw std::invalid_argument("gather_timings: empty thread grid");
  }
  if (config.ops.empty()) {
    throw std::invalid_argument("gather_timings: no operations configured");
  }
  // Fail fast on a bad variant list: a campaign can take hours on a native
  // executor, and set_variant throwing mid-campaign would discard every
  // curve already timed.
  const auto supported = blas::kernels::supported_variants();
  for (const auto v : config.variants) {
    if (v == blas::kernels::Variant::kAuto) {
      throw std::invalid_argument(
          "gather_timings: variants must be concrete (resolve kAuto via "
          "active_variant() first)");
    }
    if (std::find(supported.begin(), supported.end(), v) == supported.end()) {
      throw std::invalid_argument(
          std::string("gather_timings: kernel variant '") +
          blas::kernels::variant_name(v) + "' is not supported on this host");
    }
  }

  // Variant sub-campaigns: each configured variant is pinned while its
  // curves are timed, so every (op, shape) gets one curve per variant and
  // the kernel_* one-hot columns become informative. Without the knob the
  // records simply tag what the dispatched kernel resolves to in this
  // process (a concrete variant, never kAuto — simulated platforms do not
  // run the kernels, but the tag keeps the dataset schema uniform).
  const std::vector<blas::kernels::Variant> variants =
      config.variants.empty() ? std::vector<blas::kernels::Variant>{
                                    blas::kernels::active_variant()}
                              : config.variants;
  const bool pin_variants = !config.variants.empty();
  std::optional<VariantRestorer> restore;
  if (pin_variants) restore.emplace();

  out.records.reserve(config.n_samples * config.ops.size() * variants.size());
  for (const blas::OpKind op : config.ops) {
    // The sampler comes from the op's registry row (stored-shape conventions
    // in docs/OPERATIONS.md); one draw per op — variant sub-campaigns re-time
    // the same shapes so the kernel columns are the only thing that moves.
    const auto shapes =
        op_traits(op).make_sampler(config.domain)->sample(config.n_samples);
    for (const blas::kernels::Variant variant : variants) {
      if (pin_variants) blas::kernels::set_variant(variant);
      for (const auto& shape : shapes) {
        GatherRecord rec;
        rec.shape = shape;
        rec.op = op;
        rec.variant = variant;
        rec.threads = out.thread_grid;
        rec.runtime.reserve(rec.threads.size());
        // One program execution per thread count, exactly as the paper
        // isolates them to avoid thread-pool resize interference (SS III-B).
        for (int p : rec.threads) {
          rec.runtime.push_back(
              executor.measure_op(op, shape, p, config.iterations));
        }
        out.records.push_back(std::move(rec));
      }
    }
  }
  return out;
}

}  // namespace adsala::core
