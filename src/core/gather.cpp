#include "core/gather.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "blas/kernels/dispatch.h"
#include "common/csv.h"
#include "ml/splits.h"
#include "preprocess/features.h"

namespace adsala::core {

int GatherRecord::optimal_threads() const {
  const auto it = std::min_element(runtime.begin(), runtime.end());
  return threads[static_cast<std::size_t>(it - runtime.begin())];
}

double GatherRecord::optimal_runtime() const {
  return *std::min_element(runtime.begin(), runtime.end());
}

double GatherRecord::max_thread_runtime() const { return runtime.back(); }

ml::Dataset GatherData::to_dataset() const {
  ml::Dataset data(preprocess::op_aware_feature_names());
  for (const auto& rec : records) {
    for (std::size_t t = 0; t < rec.threads.size(); ++t) {
      const auto feats = preprocess::make_op_aware_features(
          static_cast<double>(rec.shape.m), static_cast<double>(rec.shape.k),
          static_cast<double>(rec.shape.n),
          static_cast<double>(rec.threads[t]), rec.op, rec.variant);
      data.add_row(feats, rec.runtime[t]);
    }
  }
  return data;
}

void GatherData::split(double test_fraction, std::uint64_t seed,
                       GatherData* train, GatherData* test) const {
  std::vector<double> strata_key;
  strata_key.reserve(records.size());
  for (const auto& rec : records) {
    strata_key.push_back(std::log(std::max(rec.optimal_runtime(), 1e-300)));
  }
  const auto idx = ml::train_test_split(strata_key, test_fraction, seed);
  *train = GatherData{platform, max_threads, thread_grid, {}};
  *test = GatherData{platform, max_threads, thread_grid, {}};
  for (std::size_t i : idx.train) train->records.push_back(records[i]);
  for (std::size_t i : idx.test) test->records.push_back(records[i]);
}

void GatherData::save_csv(const std::string& path) const {
  CsvTable table;
  table.header = {"m",       "k",       "n",  "elem_bytes",
                  "threads", "runtime", "op", "variant"};
  for (const auto& rec : records) {
    for (std::size_t t = 0; t < rec.threads.size(); ++t) {
      table.rows.push_back({static_cast<double>(rec.shape.m),
                            static_cast<double>(rec.shape.k),
                            static_cast<double>(rec.shape.n),
                            static_cast<double>(rec.shape.elem_bytes),
                            static_cast<double>(rec.threads[t]),
                            rec.runtime[t],
                            static_cast<double>(blas::op_code(rec.op)),
                            static_cast<double>(rec.variant)});
    }
  }
  write_csv(path, table);
}

GatherData GatherData::load_csv(const std::string& path) {
  const CsvTable table = read_csv(path);
  // Column lookup by header name so the PR-1-era six-column files (no
  // op/variant) keep loading; absent columns default to generic-kernel GEMM.
  const bool has_op =
      std::find(table.header.begin(), table.header.end(), "op") !=
      table.header.end();
  const bool has_variant =
      std::find(table.header.begin(), table.header.end(), "variant") !=
      table.header.end();
  const std::size_t op_col = has_op ? table.col_index("op") : 0;
  const std::size_t variant_col =
      has_variant ? table.col_index("variant") : 0;

  GatherData out;
  GatherRecord current;
  bool have_current = false;
  for (const auto& row : table.rows) {
    simarch::GemmShape shape{static_cast<long>(row[0]),
                             static_cast<long>(row[1]),
                             static_cast<long>(row[2]),
                             static_cast<int>(row[3])};
    blas::OpKind op = blas::OpKind::kGemm;
    if (has_op) {
      const auto parsed = blas::op_from_code(static_cast<int>(row[op_col]));
      if (!parsed) {
        throw std::runtime_error("GatherData::load_csv: unknown op code");
      }
      op = *parsed;
    }
    auto variant = blas::kernels::Variant::kGeneric;
    if (has_variant) {
      const int code = static_cast<int>(row[variant_col]);
      // Records must carry a concrete variant; kAuto (0) or unknown codes
      // mean the file is corrupt or from an incompatible future version.
      if (code != static_cast<int>(blas::kernels::Variant::kGeneric) &&
          code != static_cast<int>(blas::kernels::Variant::kAvx2)) {
        throw std::runtime_error(
            "GatherData::load_csv: unknown kernel-variant code");
      }
      variant = static_cast<blas::kernels::Variant>(code);
    }
    if (!have_current || shape.m != current.shape.m ||
        shape.k != current.shape.k || shape.n != current.shape.n ||
        shape.elem_bytes != current.shape.elem_bytes || op != current.op) {
      if (have_current) out.records.push_back(std::move(current));
      current = GatherRecord{};
      current.shape = shape;
      current.op = op;
      current.variant = variant;
      have_current = true;
    }
    current.threads.push_back(static_cast<int>(row[4]));
    current.runtime.push_back(row[5]);
  }
  if (have_current) out.records.push_back(std::move(current));
  if (!out.records.empty()) {
    out.thread_grid = out.records.front().threads;
    out.max_threads = out.thread_grid.back();
  }
  return out;
}

namespace {

/// One domain sampler per operation family (stored-shape conventions in
/// docs/OPERATIONS.md); a new op plugs in here and nowhere else in gather.
std::vector<simarch::GemmShape> sample_shapes(
    blas::OpKind op, const sampling::DomainConfig& domain, std::size_t count) {
  switch (op) {
    case blas::OpKind::kSyrk:
      return sampling::SyrkDomainSampler(domain).sample(count);
    case blas::OpKind::kTrsm:
      return sampling::TrsmDomainSampler(domain).sample(count);
    case blas::OpKind::kSymm:
      return sampling::SymmDomainSampler(domain).sample(count);
    case blas::OpKind::kGemm:
      break;
  }
  return sampling::GemmDomainSampler(domain).sample(count);
}

}  // namespace

GatherData gather_timings(GemmExecutor& executor, const GatherConfig& config) {
  GatherData out;
  out.platform = executor.name();
  out.max_threads = executor.max_threads();
  out.thread_grid = config.thread_grid.empty()
                        ? default_thread_grid(out.max_threads)
                        : config.thread_grid;
  if (out.thread_grid.empty()) {
    throw std::invalid_argument("gather_timings: empty thread grid");
  }
  if (config.ops.empty()) {
    throw std::invalid_argument("gather_timings: no operations configured");
  }

  // The variant tag of every record: what the dispatched kernel resolves to
  // in this process (a concrete variant, never kAuto). Simulated platforms
  // do not run the kernels, but the tag keeps the dataset schema uniform.
  const blas::kernels::Variant variant = blas::kernels::active_variant();

  out.records.reserve(config.n_samples * config.ops.size());
  for (const blas::OpKind op : config.ops) {
    const auto shapes = sample_shapes(op, config.domain, config.n_samples);
    for (const auto& shape : shapes) {
      GatherRecord rec;
      rec.shape = shape;
      rec.op = op;
      rec.variant = variant;
      rec.threads = out.thread_grid;
      rec.runtime.reserve(rec.threads.size());
      // One program execution per thread count, exactly as the paper
      // isolates them to avoid thread-pool resize interference (SS III-B).
      for (int p : rec.threads) {
        rec.runtime.push_back(
            executor.measure_op(op, shape, p, config.iterations));
      }
      out.records.push_back(std::move(rec));
    }
  }
  return out;
}

}  // namespace adsala::core
