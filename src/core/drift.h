// Model-drift detection over serve-time telemetry (continual-retuning
// loop, docs/OPERATIONS.md "Continual retuning").
//
// The question a retuning loop has to answer before spending a retrain is
// "is the live model still choosing well on the traffic it actually sees?".
// detect_drift replays recent telemetry records through the live snapshot's
// predictions and measures *relative regret*: group the window's records by
// exact query (op, m, k, n, elem), and for every group that contains a
// measurement at the model's currently chosen thread count,
//
//   regret = t_measured(chosen threads) / min over group t_measured  -  1
//
// i.e. how much slower the model's choice ran than the best thread count the
// traffic itself demonstrated. Groups with no measurement at the chosen
// count are skipped (regret is unmeasurable off-policy — the sampler's
// job is to occasionally cover the grid so groups complete). Repeated
// measurements of one (query, threads) pair keep the minimum, which makes
// the statistic robust to one-off timing noise.
//
// The detector fires per op when the mean regret over measurable groups
// exceeds `threshold` with at least `min_groups` groups of evidence; the
// report also carries the max regret and raw counts so operators can tell
// "everything is 12% off" from "one shape fell off a cliff". Deterministic:
// same records + same snapshot -> same report, bit for bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "blas/op.h"
#include "core/snapshot.h"
#include "core/telemetry_log.h"

namespace adsala::core {

struct DriftOptions {
  /// Fire when mean relative regret exceeds this (0.10 = the model's
  /// choices run >10% slower than the traffic-demonstrated best).
  double threshold = 0.10;
  /// Minimum measurable groups per op before that op may fire — below this
  /// the evidence is too thin to spend a retrain on.
  std::size_t min_groups = 8;
  /// Only the most recent `window` records are considered (0 = all). Keeps
  /// the verdict about *current* traffic on a long-lived log.
  std::size_t window = 4096;
};

/// Per-op drift statistics over the window.
struct OpDriftStats {
  blas::OpKind op = blas::OpKind::kGemm;
  std::size_t records = 0;      ///< windowed records for this op
  std::size_t groups = 0;       ///< groups where regret was measurable
  double mean_regret = 0.0;     ///< over measurable groups
  double max_regret = 0.0;
  bool fired = false;
};

struct DriftReport {
  std::vector<OpDriftStats> per_op;  ///< ops present in the window, code order
  std::size_t window_records = 0;    ///< records actually considered
  bool fired = false;                ///< any per-op fired
};

/// Replays `records` (windowed per options) through `snapshot`'s
/// predictions. Pure function of its inputs; safe concurrently with serving
/// (the snapshot is only read, via its lock-free query path).
DriftReport detect_drift(std::span<const TelemetryRecord> records,
                         const ServingSnapshot& snapshot,
                         const DriftOptions& options = {});

}  // namespace adsala::core
