// Client-side resilience for the tuning daemon (ISSUE 10): bounded retry
// with full-jitter exponential backoff, a small circuit breaker, and
// automatic degradation to in-process serving — so a caller asking "how
// many threads?" ALWAYS gets an answer, whatever the daemon is doing.
//
//   query() -> transport (daemon round-trip)
//     | transient failure (kUnavailable / kNotFound / kProtocolError /
//     |  kInternal): retry, sleeping U(0, min(cap, base * 2^attempt)) ms —
//     |  full jitter, so a thundering herd of retrying clients spreads out
//     |  instead of re-synchronising on the daemon's recovery instant
//     | semantic failure (kValidationError): returned as-is, retrying a
//     |  malformed question cannot help
//     | N *consecutive* transport failures: circuit opens for open_ms —
//     |  queries skip the socket entirely and serve from the in-process
//     |  fallback runtime (load_or_fallback over the artefact store, or the
//     |  built-in heuristic), then the circuit half-opens and one probe
//     |  query decides whether it closes
//
// The transport is injected as a std::function rather than hard-wired to
// tools/adsala_daemon.h, for layering (core cannot link the daemon
// library) and for tests (a scripted transport drives every breaker state
// without a socket). adsala_cli wires daemon::query in as the transport.
//
// Not thread-safe: one ResilientClient per thread (the CLI's usage), or
// external synchronisation.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <random>

#include "blas/op.h"
#include "common/status.h"
#include "core/adsala.h"

namespace adsala::core {

/// One thread-count question, daemon-shaped: (x, y, z) are the op's family
/// coordinates exactly as AdsalaGemm::select_threads takes them.
struct ServeQuery {
  blas::OpKind op = blas::OpKind::kGemm;
  long x = 0;
  long y = 0;
  long z = 0;
  int elem_bytes = 4;
};

/// One answer. `mode` is the serving rung (0 model, 1 gemm-proxy,
/// 2 heuristic — the daemon ack encoding); `from_fallback` says the answer
/// came from the in-process runtime, not the daemon.
struct ServeAnswer {
  int threads = 0;
  int mode = 2;
  bool from_fallback = false;
};

class ResilientClient {
 public:
  /// One daemon round-trip. A transport error is the *transport's* verdict
  /// (connect refused, deadline, garbled ack, or a non-kOk ack status
  /// mapped through); a ServeAnswer is a served decision.
  using Transport = std::function<Expected<ServeAnswer>(const ServeQuery&)>;

  struct Options {
    /// Transport attempts per query() before giving up on the daemon
    /// (>= 1; the first try counts).
    int max_attempts = 3;
    /// Backoff cap schedule: sleep U(0, min(max_backoff_ms,
    /// base_backoff_ms << attempt)) between attempts.
    int base_backoff_ms = 10;
    int max_backoff_ms = 250;
    /// Consecutive transport failures (across queries) that open the
    /// circuit, and how long it stays open.
    int breaker_threshold = 3;
    int breaker_open_ms = 1000;
    /// Deterministic jitter for tests; 0 picks a nondeterministic seed.
    std::uint64_t rng_seed = 0;
    /// Builds the fallback runtime on first use (typically load_or_fallback
    /// over the artefact store). Unset = AdsalaGemm::heuristic_fallback().
    std::function<AdsalaGemm()> fallback_loader;
    /// Injectable time source (monotonic ms) and sleeper, so the breaker
    /// and backoff are unit-testable without wall-clock waits. Unset =
    /// CLOCK_MONOTONIC and nanosleep.
    std::function<long long()> clock_ms;
    std::function<void(int)> sleep_ms;
  };

  struct Stats {
    std::uint64_t transport_queries = 0;  ///< transport invocations
    std::uint64_t retries = 0;            ///< sleeps between attempts
    std::uint64_t breaker_opens = 0;      ///< closed/half-open -> open edges
    std::uint64_t fallback_serves = 0;    ///< answers from the local runtime
  };

  ResilientClient(Transport transport, Options options);

  /// The resilient ask. Returns a served answer — from the daemon when it
  /// cooperates within the retry budget, from the in-process fallback
  /// runtime otherwise. The only error returns are non-retriable transport
  /// verdicts (kValidationError: the question itself is malformed).
  Expected<ServeAnswer> query(const ServeQuery& q);

  /// True while queries bypass the transport (open circuit, timer not yet
  /// expired).
  bool circuit_open() const;

  const Stats& stats() const { return stats_; }

 private:
  ServeAnswer serve_fallback(const ServeQuery& q);
  int backoff_ms(int attempt);
  long long now_ms() const;

  Transport transport_;
  Options options_;
  Stats stats_;
  std::mt19937_64 rng_;
  std::optional<AdsalaGemm> fallback_;
  int consecutive_failures_ = 0;
  long long open_until_ms_ = 0;
  bool open_ = false;
};

}  // namespace adsala::core
