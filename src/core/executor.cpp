#include "core/executor.h"

#include <algorithm>

#include "blas/gemm.h"
#include "blas/syrk.h"
#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace adsala::core {

NativeExecutor::NativeExecutor(int max_threads)
    : max_threads_(max_threads > 0
                       ? max_threads
                       : static_cast<int>(ThreadPool::global().max_threads())) {}

namespace {

template <typename T>
double measure_typed(const simarch::GemmShape& shape, int nthreads,
                     int iterations) {
  const auto m = static_cast<int>(shape.m);
  const auto k = static_cast<int>(shape.k);
  const auto n = static_cast<int>(shape.n);
  AlignedBuffer<T> a(static_cast<std::size_t>(m) * k);
  AlignedBuffer<T> b(static_cast<std::size_t>(k) * n);
  AlignedBuffer<T> c(static_cast<std::size_t>(m) * n);
  Rng rng(0x5eedu + static_cast<std::uint64_t>(m * 131 + k * 17 + n));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = T(0);

  // Warm-up: pulls operands into cache state comparable across runs and
  // wakes the pool threads.
  blas::gemm<T>(blas::Trans::kNo, blas::Trans::kNo, m, n, k, T(1), a.data(),
                k, b.data(), n, T(0), c.data(), n, nthreads);

  WallTimer timer;
  for (int it = 0; it < iterations; ++it) {
    blas::gemm<T>(blas::Trans::kNo, blas::Trans::kNo, m, n, k, T(1), a.data(),
                  k, b.data(), n, T(0), c.data(), n, nthreads);
  }
  return timer.seconds() / std::max(iterations, 1);
}

template <typename T>
double measure_syrk_typed(const simarch::GemmShape& shape, int nthreads,
                          int iterations) {
  const auto n = static_cast<int>(shape.n);
  const auto k = static_cast<int>(shape.k);
  AlignedBuffer<T> a(static_cast<std::size_t>(n) * k);
  AlignedBuffer<T> c(static_cast<std::size_t>(n) * n);
  Rng rng(0x5eedu + static_cast<std::uint64_t>(n * 131 + k * 17));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = T(0);

  // Warm-up, mirroring the GEMM protocol (paper SS V-B.3).
  blas::syrk<T>(blas::Uplo::kLower, blas::Trans::kNo, n, k, T(1), a.data(), k,
                T(0), c.data(), n, nthreads);

  WallTimer timer;
  for (int it = 0; it < iterations; ++it) {
    blas::syrk<T>(blas::Uplo::kLower, blas::Trans::kNo, n, k, T(1), a.data(),
                  k, T(0), c.data(), n, nthreads);
  }
  return timer.seconds() / std::max(iterations, 1);
}

}  // namespace

double NativeExecutor::measure(const simarch::GemmShape& shape, int nthreads,
                               int iterations) {
  nthreads = std::clamp(nthreads, 1, max_threads_);
  if (shape.elem_bytes == 8) {
    return measure_typed<double>(shape, nthreads, iterations);
  }
  return measure_typed<float>(shape, nthreads, iterations);
}

double NativeExecutor::measure_op(blas::OpKind op,
                                  const simarch::GemmShape& shape,
                                  int nthreads, int iterations) {
  if (op != blas::OpKind::kSyrk) return measure(shape, nthreads, iterations);
  nthreads = std::clamp(nthreads, 1, max_threads_);
  if (shape.elem_bytes == 8) {
    return measure_syrk_typed<double>(shape, nthreads, iterations);
  }
  return measure_syrk_typed<float>(shape, nthreads, iterations);
}

std::vector<int> default_thread_grid(int max_threads) {
  static constexpr int kLadder[] = {1,  2,  3,  4,   6,   8,   12,  16,
                                    20, 24, 32, 40,  48,  64,  80,  96,
                                    128, 160, 192, 224, 256};
  std::vector<int> grid;
  for (int p : kLadder) {
    if (p < max_threads) grid.push_back(p);
  }
  grid.push_back(max_threads);
  return grid;
}

}  // namespace adsala::core
