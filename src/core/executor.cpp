#include "core/executor.h"

#include <algorithm>

#include "blas/gemm.h"
#include "blas/symm.h"
#include "blas/syrk.h"
#include "blas/trsm.h"
#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace adsala::core {

NativeExecutor::NativeExecutor(int max_threads)
    : max_threads_(max_threads > 0
                       ? max_threads
                       : static_cast<int>(ThreadPool::global().max_threads())) {}

namespace {

template <typename T>
double measure_typed(const simarch::GemmShape& shape, int nthreads,
                     int iterations) {
  const auto m = static_cast<int>(shape.m);
  const auto k = static_cast<int>(shape.k);
  const auto n = static_cast<int>(shape.n);
  AlignedBuffer<T> a(static_cast<std::size_t>(m) * k);
  AlignedBuffer<T> b(static_cast<std::size_t>(k) * n);
  AlignedBuffer<T> c(static_cast<std::size_t>(m) * n);
  Rng rng(0x5eedu + static_cast<std::uint64_t>(m * 131 + k * 17 + n));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = T(0);

  // Warm-up: pulls operands into cache state comparable across runs and
  // wakes the pool threads.
  blas::gemm<T>(blas::Trans::kNo, blas::Trans::kNo, m, n, k, T(1), a.data(),
                k, b.data(), n, T(0), c.data(), n, nthreads);

  WallTimer timer;
  for (int it = 0; it < iterations; ++it) {
    blas::gemm<T>(blas::Trans::kNo, blas::Trans::kNo, m, n, k, T(1), a.data(),
                  k, b.data(), n, T(0), c.data(), n, nthreads);
  }
  return timer.seconds() / std::max(iterations, 1);
}

template <typename T>
double measure_syrk_typed(const simarch::GemmShape& shape, int nthreads,
                          int iterations) {
  const auto n = static_cast<int>(shape.n);
  const auto k = static_cast<int>(shape.k);
  AlignedBuffer<T> a(static_cast<std::size_t>(n) * k);
  AlignedBuffer<T> c(static_cast<std::size_t>(n) * n);
  Rng rng(0x5eedu + static_cast<std::uint64_t>(n * 131 + k * 17));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = T(0);

  // Warm-up, mirroring the GEMM protocol (paper SS V-B.3).
  blas::syrk<T>(blas::Uplo::kLower, blas::Trans::kNo, n, k, T(1), a.data(), k,
                T(0), c.data(), n, nthreads);

  WallTimer timer;
  for (int it = 0; it < iterations; ++it) {
    blas::syrk<T>(blas::Uplo::kLower, blas::Trans::kNo, n, k, T(1), a.data(),
                  k, T(0), c.data(), n, nthreads);
  }
  return timer.seconds() / std::max(iterations, 1);
}

template <typename T>
double measure_trsm_typed(const simarch::GemmShape& shape, int nthreads,
                          int iterations) {
  const auto n = static_cast<int>(shape.m);  // triangle dimension (m == k)
  const auto r = static_cast<int>(shape.n);  // right-hand-side columns
  AlignedBuffer<T> a(static_cast<std::size_t>(n) * n);
  AlignedBuffer<T> b(static_cast<std::size_t>(n) * r);
  Rng rng(0x5eedu + static_cast<std::uint64_t>(n * 131 + r * 17));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  // Diagonally dominant triangle: repeated in-place solves stay bounded
  // (||inv(A)|| < 1), so the timed iterations never drift into inf/denormal
  // territory.
  for (int i = 0; i < n; ++i) a[static_cast<std::size_t>(i) * n + i] = T(n + 1);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }

  // Warm-up, mirroring the GEMM protocol (paper SS V-B.3).
  blas::trsm<T>(blas::Uplo::kLower, blas::Trans::kNo, blas::Diag::kNonUnit, n,
                r, T(1), a.data(), n, b.data(), r, nthreads);

  WallTimer timer;
  for (int it = 0; it < iterations; ++it) {
    blas::trsm<T>(blas::Uplo::kLower, blas::Trans::kNo, blas::Diag::kNonUnit,
                  n, r, T(1), a.data(), n, b.data(), r, nthreads);
  }
  return timer.seconds() / std::max(iterations, 1);
}

template <typename T>
double measure_symm_typed(const simarch::GemmShape& shape, int nthreads,
                          int iterations) {
  const auto n = static_cast<int>(shape.m);  // symmetric dimension (m == k)
  const auto r = static_cast<int>(shape.n);  // B/C columns
  AlignedBuffer<T> a(static_cast<std::size_t>(n) * n);
  AlignedBuffer<T> b(static_cast<std::size_t>(n) * r);
  AlignedBuffer<T> c(static_cast<std::size_t>(n) * r);
  Rng rng(0x5eedu + static_cast<std::uint64_t>(n * 131 + r * 17));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = T(0);

  blas::symm<T>(blas::Uplo::kLower, n, r, T(1), a.data(), n, b.data(), r,
                T(0), c.data(), r, nthreads);

  WallTimer timer;
  for (int it = 0; it < iterations; ++it) {
    blas::symm<T>(blas::Uplo::kLower, n, r, T(1), a.data(), n, b.data(), r,
                  T(0), c.data(), r, nthreads);
  }
  return timer.seconds() / std::max(iterations, 1);
}

}  // namespace

double NativeExecutor::measure(const simarch::GemmShape& shape, int nthreads,
                               int iterations) {
  nthreads = std::clamp(nthreads, 1, max_threads_);
  if (shape.elem_bytes == 8) {
    return measure_typed<double>(shape, nthreads, iterations);
  }
  return measure_typed<float>(shape, nthreads, iterations);
}

double NativeExecutor::measure_op(blas::OpKind op,
                                  const simarch::GemmShape& shape,
                                  int nthreads, int iterations) {
  nthreads = std::clamp(nthreads, 1, max_threads_);
  const bool f64 = shape.elem_bytes == 8;
  switch (op) {
    case blas::OpKind::kSyrk:
      return f64 ? measure_syrk_typed<double>(shape, nthreads, iterations)
                 : measure_syrk_typed<float>(shape, nthreads, iterations);
    case blas::OpKind::kTrsm:
      return f64 ? measure_trsm_typed<double>(shape, nthreads, iterations)
                 : measure_trsm_typed<float>(shape, nthreads, iterations);
    case blas::OpKind::kSymm:
      return f64 ? measure_symm_typed<double>(shape, nthreads, iterations)
                 : measure_symm_typed<float>(shape, nthreads, iterations);
    case blas::OpKind::kGemm:
      break;
  }
  return measure(shape, nthreads, iterations);
}

std::vector<int> default_thread_grid(int max_threads) {
  static constexpr int kLadder[] = {1,  2,  3,  4,   6,   8,   12,  16,
                                    20, 24, 32, 40,  48,  64,  80,  96,
                                    128, 160, 192, 224, 256};
  std::vector<int> grid;
  for (int p : kLadder) {
    if (p < max_threads) grid.push_back(p);
  }
  grid.push_back(max_threads);
  return grid;
}

}  // namespace adsala::core
