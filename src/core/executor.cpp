#include "core/executor.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "core/op_registry.h"

namespace adsala::core {

double SimulatedExecutor::measure_op(blas::OpKind op,
                                     const simarch::GemmShape& shape,
                                     int nthreads, int iterations) {
  simarch::ExecPolicy policy = base_policy_;
  policy.nthreads = nthreads;
  return model_.measure_op(shape, policy, op_traits(op).cost, iterations);
}

NativeExecutor::NativeExecutor(int max_threads)
    : max_threads_(max_threads > 0
                       ? max_threads
                       : static_cast<int>(ThreadPool::global().max_threads())) {}

double NativeExecutor::measure(const simarch::GemmShape& shape, int nthreads,
                               int iterations) {
  return measure_op(blas::OpKind::kGemm, shape, nthreads, iterations);
}

double NativeExecutor::measure_op(blas::OpKind op,
                                  const simarch::GemmShape& shape,
                                  int nthreads, int iterations) {
  nthreads = std::clamp(nthreads, 1, max_threads_);
  return op_traits(op).measure_native(shape, nthreads, iterations);
}

std::vector<int> default_thread_grid(int max_threads) {
  static constexpr int kLadder[] = {1,  2,  3,  4,   6,   8,   12,  16,
                                    20, 24, 32, 40,  48,  64,  80,  96,
                                    128, 160, 192, 224, 256};
  std::vector<int> grid;
  for (int p : kLadder) {
    if (p < max_threads) grid.push_back(p);
  }
  grid.push_back(max_threads);
  return grid;
}

}  // namespace adsala::core
