// One-call installation workflow (paper Fig. 2, end to end).
//
// install() runs: domain sampling -> timing gathering -> preprocessing ->
// per-model tuning -> speedup-based selection, then writes the two runtime
// artefacts (model file + config file) into a directory and returns the full
// report. This is the function a downstream user calls once per machine.
#pragma once

#include <string>

#include "core/trainer.h"

namespace adsala::core {

struct InstallOptions {
  GatherConfig gather;
  TrainOptions train;
  std::string output_dir = ".";  ///< receives model.json + config.json
  bool save_raw_csv = true;      ///< also dump gathered timings (timings.csv)
  /// When non-empty, skip the timing campaign and train from this previously
  /// saved timings.csv instead. This is how an expensive native-host gather
  /// (e.g. bench_native_host's) is re-trained without re-timing: one
  /// install() call turns an existing CSV into fresh runtime artefacts.
  std::string reuse_timings_csv;
  /// When non-empty, also publish the write-then-verified artefact bytes
  /// into a shared-memory region at this path (core/shm_store.h), so every
  /// process attached via AdsalaGemm::try_attach picks the new model up on
  /// its next attach. Publication happens only *after* verification passes:
  /// a region never carries bytes the serving ladder would reject.
  std::string publish_shm;
  /// When non-null, hot-swap the verified artefacts into this live runtime
  /// (AdsalaGemm::install, version bump; in-flight queries finish on the old
  /// generation). This is the continual-retuning hook: the same object keeps
  /// serving while a retrain lands.
  class AdsalaGemm* publish_to = nullptr;
};

struct InstallReport {
  TrainOutput trained;
  GatherData gathered;
  std::string model_path;
  std::string config_path;
  double gather_seconds = 0.0;  ///< wall time of the gathering phase
  double train_seconds = 0.0;   ///< wall time of tuning + selection
};

InstallReport install(GemmExecutor& executor, const InstallOptions& options);

}  // namespace adsala::core
