// ADSALA runtime library (paper Fig. 3).
//
// AdsalaGemm wraps the installation-produced artefacts — trained model +
// preprocessing/config — in a C++ class. At each GEMM call it evaluates the
// model for every candidate thread count, picks the argmin, and runs the
// GEMM with that many threads. The last (m, k, n) -> threads decision is
// memoised, so loops over a fixed GEMM shape pay the model cost once
// (SS III-C: "the software will read and apply the predictions from the
// responsible class attributes without re-evaluation").
#pragma once

#include <memory>
#include <string>

#include "blas/gemm.h"
#include "blas/syrk.h"
#include "core/trainer.h"

namespace adsala::core {

class AdsalaGemm {
 public:
  /// Builds directly from a finished training run.
  explicit AdsalaGemm(TrainOutput trained);

  /// Loads the two installation artefacts (paper Fig. 2 outputs).
  AdsalaGemm(const std::string& model_path, const std::string& config_path);

  AdsalaGemm(AdsalaGemm&&) = default;
  AdsalaGemm& operator=(AdsalaGemm&&) = default;

  /// Predicted-optimal thread count for a shape (memoises the last query).
  int select_threads(long m, long k, long n, int elem_bytes = 4);

  /// Thread selection + the from-scratch BLAS, i.e. the paper's drop-in
  /// sgemm replacement for native runs. Row-major, C = alpha*A*B + beta*C.
  void sgemm(int m, int n, int k, float alpha, const float* a, int lda,
             const float* b, int ldb, float beta, float* c, int ldc);
  void dgemm(int m, int n, int k, double alpha, const double* a, int lda,
             const double* b, int ldb, double beta, double* c, int ldc);

  /// Thread-selected symmetric rank-k update (paper future work: "extend
  /// ... to other BLAS operations"). The model trained on GEMM timings is
  /// queried with the equivalent-work shape (n, k, n); SYRK does half the
  /// FLOPs of that GEMM with the same parallel structure, so the argmin
  /// transfers.
  void ssyrk(blas::Uplo uplo, int n, int k, float alpha, const float* a,
             int lda, float beta, float* c, int ldc);

  const std::string& platform() const { return platform_; }
  int max_threads() const { return max_threads_; }
  const std::vector<int>& thread_grid() const { return thread_grid_; }
  const ml::Regressor& model() const { return *model_; }
  const preprocess::Pipeline& pipeline() const { return pipeline_; }
  const std::string& model_name() const { return model_name_; }

  /// Saves the two artefacts (model file + config file).
  void save(const std::string& model_path,
            const std::string& config_path) const;

 private:
  std::unique_ptr<ml::Regressor> model_;
  preprocess::Pipeline pipeline_;
  std::vector<int> thread_grid_;
  int max_threads_ = 0;
  std::string platform_;
  std::string model_name_;

  // Memoised last decision (paper SS III-C).
  long last_m_ = -1, last_k_ = -1, last_n_ = -1;
  int last_elem_ = 0;
  int last_threads_ = 0;
};

}  // namespace adsala::core
