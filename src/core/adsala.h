// ADSALA runtime library (paper Fig. 3).
//
// AdsalaGemm wraps the installation-produced artefacts — trained model +
// preprocessing/config — in a C++ class. At each BLAS call it evaluates the
// model for every candidate thread count, picks the argmin, and runs the
// call with that many threads. The last (op, shape) -> threads decision is
// memoised, so loops over a fixed shape pay the model cost once
// (SS III-C: "the software will read and apply the predictions from the
// responsible class attributes without re-evaluation").
//
// Queries are built against the feature schema the installed pipeline was
// fitted with (the single source of truth is preprocess/features.h): the
// fitted input width says how many op one-hot columns the artefact carries,
// and any operation registered *after* the artefact was trained — or every
// operation, for a PR-1-era 17-column artefact — transparently degrades to
// the GEMM-proxy heuristic: the model is queried with the equivalent-work
// shape (SYRK: (n, k, n); TRSM/SYMM/TRMM: (n, n, m)), whose parallel
// structure transfers approximately.
//
// Fail-safe serving: try_load validates artefacts without throwing, and
// load_or_fallback degrades to a built-in analytic occupancy heuristic when
// they are missing or corrupt, so a drop-in sgemm replacement can promise
// "never crashes on a bad install". serving_mode() reports which rung of
// the ladder (model -> GEMM proxy -> heuristic) answered.
#pragma once

#include <memory>
#include <string>

#include "blas/gemm.h"
#include "blas/op.h"
#include "blas/symm.h"
#include "blas/syrk.h"
#include "blas/trsm.h"
#include "common/status.h"
#include "core/trainer.h"

namespace adsala::core {

/// How a select_threads answer was produced — the fail-safe serving ladder
/// (docs/OPERATIONS.md, "Failure modes and degraded serving"):
///   kModelServed        the trained model answered for this op first-class
///   kGemmProxy          the model answered, but through the equivalent-GEMM
///                       proxy (op postdates the artefact's schema)
///   kHeuristicFallback  no usable artefacts; a built-in analytic occupancy
///                       rule (simarch::MachineModel literals) answered
enum class ServingMode { kModelServed, kGemmProxy, kHeuristicFallback };

/// Stable name for logs/CLI: "model", "gemm_proxy", "heuristic".
const char* serving_mode_name(ServingMode mode);

class AdsalaGemm {
 public:
  /// Builds directly from a finished training run.
  explicit AdsalaGemm(TrainOutput trained);

  /// Loads the two installation artefacts (paper Fig. 2 outputs); throws
  /// std::runtime_error with the try_load error message on any failure.
  AdsalaGemm(const std::string& model_path, const std::string& config_path);

  /// Non-throwing artefact loading with full validation: missing files map
  /// to kNotFound, undecodable ones to kParseError (path-qualified), and
  /// decodable-but-unusable ones to kValidationError — unknown format
  /// stamp, unknown model name, unknown pipeline schema width, empty or
  /// non-positive or unsorted thread_grid, non-positive max_threads,
  /// non-finite model weights. Construction only happens after every check
  /// passes, so a failed load leaves no half-initialised runtime behind.
  static Expected<AdsalaGemm> try_load(const std::string& model_path,
                                       const std::string& config_path);

  /// The fail-safe entry point for serving: try_load, and on ANY failure a
  /// degraded runtime whose serving_mode() is kHeuristicFallback (the
  /// analytic occupancy rule below). Never throws for artefact problems;
  /// `why` (optional) receives the load error, kOk on success.
  static AdsalaGemm load_or_fallback(const std::string& model_path,
                                     const std::string& config_path,
                                     Error* why = nullptr);

  /// A model-less runtime answering every query from the analytic
  /// occupancy heuristic. `max_threads` <= 0 means hardware concurrency.
  static AdsalaGemm heuristic_fallback(int max_threads = 0);

  AdsalaGemm(AdsalaGemm&&) = default;
  AdsalaGemm& operator=(AdsalaGemm&&) = default;

  /// The serving ladder rung answers for `op` currently come from. Depends
  /// on the op because one artefact can serve GEMM first-class while
  /// proxying a family that postdates its schema.
  ServingMode serving_mode(blas::OpKind op = blas::OpKind::kGemm) const;

  /// Predicted-optimal thread count for any registered operation, queried
  /// by its family coordinates (docs/OPERATIONS.md): GEMM takes (m, k, n),
  /// the 2-D families (x, y) with z ignored. The op's registry row
  /// canonicalises the coordinates into the stored equivalent-GEMM shape,
  /// so a newly registered operation is served without touching this class.
  /// With an op-aware model this selects from the op's own training rows;
  /// older artefacts degrade to the GEMM proxy of the equivalent shape.
  /// The last decision is memoised; the memo key includes the operation and
  /// element size, so mixed op / sgemm-dgemm call streams never reuse a
  /// stale decision.
  int select_threads(blas::OpKind op, long x, long y, long z = 0,
                     int elem_bytes = 4);

  /// Predicted-optimal thread count for a GEMM shape.
  int select_threads(long m, long k, long n, int elem_bytes = 4);

  /// Compat wrappers over the generic entry point, one per pre-registry
  /// family: SYRK (n, k); left-side TRSM (A n x n triangular, m right-hand
  /// -side columns); left-side SYMM (A symmetric n x n, B/C n x m).
  int select_threads_syrk(long n, long k, int elem_bytes = 4);
  int select_threads_trsm(long n, long m, int elem_bytes = 4);
  int select_threads_symm(long n, long m, int elem_bytes = 4);

  /// Thread selection + the from-scratch BLAS, i.e. the paper's drop-in
  /// sgemm replacement for native runs. Row-major, C = alpha*A*B + beta*C.
  void sgemm(int m, int n, int k, float alpha, const float* a, int lda,
             const float* b, int ldb, float beta, float* c, int ldc);
  void dgemm(int m, int n, int k, double alpha, const double* a, int lda,
             const double* b, int ldb, double beta, double* c, int ldc);

  /// Thread-selected symmetric rank-k update (paper future work: "extend
  /// ... to other BLAS operations"), C <- alpha*A*A^T + beta*C with A n x k.
  void ssyrk(blas::Uplo uplo, int n, int k, float alpha, const float* a,
             int lda, float beta, float* c, int ldc);
  void dsyrk(blas::Uplo uplo, int n, int k, double alpha, const double* a,
             int lda, double beta, double* c, int ldc);

  /// Thread-selected left-side triangular solve, B <- alpha*inv(op(A))*B
  /// with A n x n triangular and B n x m.
  void strsm(blas::Uplo uplo, blas::Trans trans, blas::Diag diag, int n,
             int m, float alpha, const float* a, int lda, float* b, int ldb);
  void dtrsm(blas::Uplo uplo, blas::Trans trans, blas::Diag diag, int n,
             int m, double alpha, const double* a, int lda, double* b,
             int ldb);

  /// Thread-selected left-side symmetric multiply, C <- alpha*A*B + beta*C
  /// with A symmetric n x n (stored triangle `uplo`) and B/C n x m.
  void ssymm(blas::Uplo uplo, int n, int m, float alpha, const float* a,
             int lda, const float* b, int ldb, float beta, float* c, int ldc);
  void dsymm(blas::Uplo uplo, int n, int m, double alpha, const double* a,
             int lda, const double* b, int ldb, double beta, double* c,
             int ldc);

  /// True when the installed model can actually differentiate operations:
  /// an op_* one-hot column survived preprocessing into the model input.
  /// False for PR-1-era artefacts *and* for GEMM-only campaigns gathered
  /// with the op-aware schema (their constant op columns are dropped at fit
  /// time, so SYRK queries reduce to the GEMM proxy).
  bool op_aware() const;

  const std::string& platform() const { return platform_; }
  int max_threads() const { return max_threads_; }
  const std::vector<int>& thread_grid() const { return thread_grid_; }
  /// Only valid when serving_mode() != kHeuristicFallback.
  const ml::Regressor& model() const { return *model_; }
  const preprocess::Pipeline& pipeline() const { return pipeline_; }
  const std::string& model_name() const { return model_name_; }

  /// Saves the two artefacts (model file + config file), stamped with the
  /// format markers try_load validates ("adsala/model/v1",
  /// "adsala/config/v1"). Requires a model (not the heuristic fallback).
  void save(const std::string& model_path,
            const std::string& config_path) const;

 private:
  AdsalaGemm() = default;  // used by try_load / heuristic_fallback

  int select_threads_impl(blas::OpKind op, long m, long k, long n,
                          int elem_bytes);
  /// Analytic occupancy argmin over thread_grid_ (heuristic mode only).
  int heuristic_threads(blas::OpKind op, const simarch::GemmShape& shape);

  std::unique_ptr<ml::Regressor> model_;
  preprocess::Pipeline pipeline_;
  /// Analytic stand-in model; non-null exactly in heuristic mode.
  std::unique_ptr<simarch::MachineModel> fallback_model_;
  std::vector<int> thread_grid_;
  int max_threads_ = 0;
  std::string platform_;
  std::string model_name_;

  // Memoised last decision (paper SS III-C).
  blas::OpKind last_op_ = blas::OpKind::kGemm;
  long last_m_ = -1, last_k_ = -1, last_n_ = -1;
  int last_elem_ = 0;
  int last_threads_ = 0;
};

}  // namespace adsala::core
