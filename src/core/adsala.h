// ADSALA runtime library (paper Fig. 3).
//
// AdsalaGemm wraps the installation-produced artefacts — trained model +
// preprocessing/config — in a C++ class. At each BLAS call it evaluates the
// model for every candidate thread count, picks the argmin, and runs the
// call with that many threads. Recent (op, shape) -> threads decisions are
// memoised, so loops over fixed shapes pay the model cost once
// (SS III-C: "the software will read and apply the predictions from the
// responsible class attributes without re-evaluation").
//
// Serving is snapshot-based (core/snapshot.h): all loaded state lives in an
// immutable ServingSnapshot published through one atomic pointer, so
// select_threads takes no mutex and is safe to call from any number of
// threads. install() hot-swaps a new generation in (version bump); queries
// already in flight finish on the old snapshot, which stays alive for the
// runtime's lifetime. This is the serve side of the tuning-as-a-service
// design — the same runtime object backs the `adsala_cli serve` daemon and
// any in-process caller concurrently.
//
// Queries are built against the feature schema the installed pipeline was
// fitted with (the single source of truth is preprocess/features.h): the
// fitted input width says how many op one-hot columns the artefact carries,
// and any operation registered *after* the artefact was trained — or every
// operation, for a PR-1-era 17-column artefact — transparently degrades to
// the GEMM-proxy heuristic: the model is queried with the equivalent-work
// shape (SYRK: (n, k, n); TRSM/SYMM/TRMM: (n, n, m)), whose parallel
// structure transfers approximately.
//
// Fail-safe serving: try_load validates artefacts without throwing,
// try_attach applies the same ladder to a shared-memory region
// (core/shm_store.h), and load_or_fallback degrades to a built-in analytic
// occupancy heuristic when artefacts are missing or corrupt, so a drop-in
// sgemm replacement can promise "never crashes on a bad install".
// serving_mode() reports which rung of the ladder (model -> GEMM proxy ->
// heuristic) answered.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "blas/gemm.h"
#include "blas/op.h"
#include "blas/symm.h"
#include "blas/syrk.h"
#include "blas/trsm.h"
#include "common/status.h"
#include "core/snapshot.h"
#include "core/telemetry_log.h"
#include "core/trainer.h"

namespace adsala::core {

/// How often a thread with sampling OFF re-reads the sampler pointer from
/// its gate slow path (see sample_tick): enabling sampling becomes visible
/// to a hot thread within this many of its calls. Small enough to react in
/// microseconds at serve rates, large enough that the off path stays one
/// thread-local decrement per call.
inline constexpr std::uint64_t kSamplerOffRecheckCalls = 1024;

/// One generation of serve-time sampler state (continual-retuning loop).
/// Published through an atomic pointer and retained like snapshots, so
/// enable/disable is safe under concurrent queries. The gate's per-call
/// path is a thread-local countdown decrement and a branch — no division,
/// no lock, no shared-cacheline RMW, not even a sampler-pointer load (a
/// per-call fetch_add on a shared counter, or two dependent loads, cost
/// more than the whole ~4 ns memo-hit path; the global tick counter is
/// instead bumped by a whole period at once on the 1-in-N firing ticks,
/// so it stays accurate while the per-call cost amortises to ~nothing).
struct TelemetrySampler {
  std::shared_ptr<TelemetryLog> log;
  /// 1-in-N sampling with N rounded UP to a power of two, stored as N-1.
  std::uint64_t mask = 1023;
  /// Approximate gated-call count: bumped by mask+1 per firing tick.
  mutable std::atomic<std::uint64_t> ticks{0};
  mutable std::atomic<std::uint64_t> recorded{0};
  /// Samples lost to log append failures. Telemetry must never break
  /// serving, so a failed append drops the sample and counts it here.
  mutable std::atomic<std::uint64_t> dropped{0};
};

class AdsalaGemm {
 public:
  /// One answer with the generation that produced it, so callers (the
  /// daemon, the concurrency tests) can report a rung that is guaranteed
  /// consistent with the thread count — both come from one snapshot read.
  struct Decision {
    int threads = 0;
    ServingMode mode = ServingMode::kHeuristicFallback;
    std::uint64_t version = 0;
  };

  /// Builds directly from a finished training run.
  explicit AdsalaGemm(TrainOutput trained);

  /// Loads the two installation artefacts (paper Fig. 2 outputs); throws
  /// std::runtime_error with the try_load error message on any failure.
  AdsalaGemm(const std::string& model_path, const std::string& config_path);

  /// Non-throwing artefact loading with full validation: missing files map
  /// to kNotFound, undecodable ones to kParseError (path-qualified), and
  /// decodable-but-unusable ones to kValidationError — unknown format
  /// stamp, unknown model name, unknown pipeline schema width, empty or
  /// non-positive or unsorted thread_grid, non-positive max_threads,
  /// non-finite model weights. Construction only happens after every check
  /// passes, so a failed load leaves no half-initialised runtime behind.
  static Expected<AdsalaGemm> try_load(const std::string& model_path,
                                       const std::string& config_path);

  /// Attaches to a published shared-memory artefact region
  /// (core/shm_store.h): copies one stable generation of payloads out under
  /// the region's seqlock, then runs them through the exact same validation
  /// ladder as try_load. Adds the region failure classes on top: kNotFound
  /// (no region), kValidationError (bad magic / stamp), kParseError (torn
  /// region or payload), kUnavailable (generation counter mid-swap).
  static Expected<AdsalaGemm> try_attach(const std::string& shm_path);

  /// The fail-safe entry point for serving: try_load, and on ANY failure a
  /// degraded runtime whose serving_mode() is kHeuristicFallback (the
  /// analytic occupancy rule below). Never throws for artefact problems;
  /// `why` (optional) receives the load error, kOk on success.
  static AdsalaGemm load_or_fallback(const std::string& model_path,
                                     const std::string& config_path,
                                     Error* why = nullptr);

  /// A model-less runtime answering every query from the analytic
  /// occupancy heuristic. `max_threads` <= 0 means hardware concurrency.
  static AdsalaGemm heuristic_fallback(int max_threads = 0);

  /// Moves are setup-time operations: not safe concurrently with queries.
  AdsalaGemm(AdsalaGemm&& other) noexcept;
  AdsalaGemm& operator=(AdsalaGemm&& other) noexcept;

  // ---------------------------------------------------------- hot swapping

  /// Publishes a freshly trained generation: builds an immutable snapshot
  /// (version = current + 1, empty memo) and swaps the atomic pointer.
  /// In-flight queries finish on the old snapshot; every new query sees the
  /// new one. Returns the new version. This is the hook the continual-
  /// retuning loop uses (install() publishes through it).
  std::uint64_t install(TrainOutput trained);

  /// Same, from an existing snapshot's state (model shared, memo fresh,
  /// version re-stamped). Cheap: no model deep-copy.
  std::uint64_t install(std::shared_ptr<const ServingSnapshot> source);

  /// The currently published generation (shared ownership — safe to hold
  /// across swaps; it just goes stale).
  std::shared_ptr<const ServingSnapshot> snapshot() const;

  /// Version of the currently published generation (1 at construction).
  std::uint64_t snapshot_version() const { return active()->version; }

  /// Versions of every retained generation, ascending (the last one is the
  /// active version). Grows by one per install() until evict_below trims it.
  std::vector<std::uint64_t> retained_versions() const;

  /// A retained generation by version (nullptr when evicted or never
  /// published). Handing this to install() re-publishes it — the in-process
  /// rollback path.
  std::shared_ptr<const ServingSnapshot> snapshot_at(
      std::uint64_t version) const;

  /// Bounds the retain-forever growth: drops every retained generation with
  /// version < `version`, never the active one. Returns how many were
  /// dropped. Snapshots pinned via snapshot()/snapshot_at stay alive through
  /// their shared_ptr. Raw-pointer readers (select_threads in flight) only
  /// touch the snapshot that was active when their call started, so the
  /// caller must let queries begun before the last install() drain before
  /// evicting the generations that install replaced (a grace period, or
  /// evicting only versions at least one swap old — which `version <=
  /// previous install()'s return value` guarantees).
  std::size_t evict_below(std::uint64_t version);

  // ------------------------------------------------- serve-time telemetry

  /// Turns on 1-in-`one_in_n` sampling of the BLAS execution wrappers
  /// (sgemm/dgemm/...): a sampled call is wall-timed and appended to `log`
  /// with the snapshot version that chose its thread count. `one_in_n` is
  /// rounded up to a power of two so the sampling gate stays division-free.
  /// Swapping the sampler is safe under concurrent queries (old state is
  /// retained like snapshots).
  void enable_sampling(std::shared_ptr<TelemetryLog> log,
                       std::uint32_t one_in_n = 1024);
  void disable_sampling();
  bool sampling_enabled() const {
    return sampler_.load(std::memory_order_acquire) != nullptr;
  }

  /// The sampling gate, exposed for the latency bench and for callers that
  /// time their own BLAS substitute: true on the 1-in-N ticks that should
  /// be measured and recorded. The non-firing path is one thread-local
  /// decrement and a branch — it does not even read the sampler pointer
  /// (two dependent loads per call were measurable against the ~4 ns
  /// memo-hit latency; the < 5% budget leaves room for neither). The
  /// sampler is consulted only when the countdown expires: when sampling
  /// is off the slow path re-arms a recheck interval, so enabling takes
  /// effect within kSamplerOffRecheckCalls calls per thread rather than
  /// instantly. Each thread samples 1-in-N of its own traffic; the
  /// countdown is shared across runtimes on a thread (sampling stays
  /// probabilistic, and exact in the one-runtime-per-process norm).
  bool sample_tick() const {
    thread_local std::uint64_t countdown = 1;
    if (--countdown != 0) return false;
    return sample_tick_slow(countdown);
  }

  /// Appends one sampled measurement, stamped with the current snapshot
  /// version and the active micro-kernel variant. (x, y, z) are the op's
  /// family coordinates exactly as select_threads takes them. Never throws;
  /// append failures drop the sample (see TelemetrySampler::dropped).
  void record_sample(blas::OpKind op, long x, long y, long z, int elem_bytes,
                     int threads, std::uint64_t measured_ns) const;

  /// Counters of the current sampler generation (0 when sampling is off).
  std::uint64_t samples_recorded() const;
  std::uint64_t samples_dropped() const;

  // -------------------------------------------------------------- querying

  /// The serving ladder rung answers for `op` currently come from. Depends
  /// on the op because one artefact can serve GEMM first-class while
  /// proxying a family that postdates its schema.
  ServingMode serving_mode(blas::OpKind op = blas::OpKind::kGemm) const;

  /// Predicted-optimal thread count for any registered operation, queried
  /// by its family coordinates (docs/OPERATIONS.md): GEMM takes (m, k, n),
  /// the 2-D families (x, y) with z ignored. The op's registry row
  /// canonicalises the coordinates into the stored equivalent-GEMM shape,
  /// so a newly registered operation is served without touching this class.
  /// With an op-aware model this selects from the op's own training rows;
  /// older artefacts degrade to the GEMM proxy of the equivalent shape.
  /// Decisions are memoised in the snapshot's bounded cache; the memo key
  /// includes the operation and element size, so mixed op / sgemm-dgemm
  /// call streams never reuse a stale decision. Lock-free and thread-safe.
  int select_threads(blas::OpKind op, long x, long y, long z = 0,
                     int elem_bytes = 4) const;

  /// Predicted-optimal thread count for a GEMM shape.
  int select_threads(long m, long k, long n, int elem_bytes = 4) const;

  /// select_threads plus the rung and generation that answered, read from
  /// ONE snapshot — a concurrent hot-swap can never pair an old answer with
  /// a new rung.
  Decision query(blas::OpKind op, long x, long y, long z = 0,
                 int elem_bytes = 4) const;

  /// Compat wrappers over the generic entry point, one per pre-registry
  /// family: SYRK (n, k); left-side TRSM (A n x n triangular, m right-hand
  /// -side columns); left-side SYMM (A symmetric n x n, B/C n x m).
  int select_threads_syrk(long n, long k, int elem_bytes = 4) const;
  int select_threads_trsm(long n, long m, int elem_bytes = 4) const;
  int select_threads_symm(long n, long m, int elem_bytes = 4) const;

  /// Thread selection + the from-scratch BLAS, i.e. the paper's drop-in
  /// sgemm replacement for native runs. Row-major, C = alpha*A*B + beta*C.
  void sgemm(int m, int n, int k, float alpha, const float* a, int lda,
             const float* b, int ldb, float beta, float* c, int ldc);
  void dgemm(int m, int n, int k, double alpha, const double* a, int lda,
             const double* b, int ldb, double beta, double* c, int ldc);

  /// Thread-selected symmetric rank-k update (paper future work: "extend
  /// ... to other BLAS operations"), C <- alpha*A*A^T + beta*C with A n x k.
  void ssyrk(blas::Uplo uplo, int n, int k, float alpha, const float* a,
             int lda, float beta, float* c, int ldc);
  void dsyrk(blas::Uplo uplo, int n, int k, double alpha, const double* a,
             int lda, double beta, double* c, int ldc);

  /// Thread-selected left-side triangular solve, B <- alpha*inv(op(A))*B
  /// with A n x n triangular and B n x m.
  void strsm(blas::Uplo uplo, blas::Trans trans, blas::Diag diag, int n,
             int m, float alpha, const float* a, int lda, float* b, int ldb);
  void dtrsm(blas::Uplo uplo, blas::Trans trans, blas::Diag diag, int n,
             int m, double alpha, const double* a, int lda, double* b,
             int ldb);

  /// Thread-selected left-side symmetric multiply, C <- alpha*A*B + beta*C
  /// with A symmetric n x n (stored triangle `uplo`) and B/C n x m.
  void ssymm(blas::Uplo uplo, int n, int m, float alpha, const float* a,
             int lda, const float* b, int ldb, float beta, float* c, int ldc);
  void dsymm(blas::Uplo uplo, int n, int m, double alpha, const double* a,
             int lda, const double* b, int ldb, double beta, double* c,
             int ldc);

  /// True when the installed model can actually differentiate operations:
  /// an op_* one-hot column survived preprocessing into the model input.
  /// False for PR-1-era artefacts *and* for GEMM-only campaigns gathered
  /// with the op-aware schema (their constant op columns are dropped at fit
  /// time, so SYRK queries reduce to the GEMM proxy).
  bool op_aware() const { return active()->op_aware(); }

  // References below point into the *current* snapshot. They stay valid for
  // the runtime's lifetime (generations are retained), but go stale across
  // an install() — re-read after a hot-swap.
  const std::string& platform() const { return active()->platform; }
  int max_threads() const { return active()->max_threads; }
  const std::vector<int>& thread_grid() const {
    return active()->thread_grid;
  }
  /// Only valid when serving_mode() != kHeuristicFallback.
  const ml::Regressor& model() const { return *active()->model; }
  const preprocess::Pipeline& pipeline() const { return active()->pipeline; }
  const std::string& model_name() const { return active()->model_name; }

  /// Saves the two artefacts (model file + config file), stamped with the
  /// format markers try_load validates ("adsala/model/v1",
  /// "adsala/config/v1"). Requires a model (not the heuristic fallback).
  void save(const std::string& model_path,
            const std::string& config_path) const;

 private:
  AdsalaGemm() = default;  // factories publish a snapshot before returning
  explicit AdsalaGemm(std::shared_ptr<const ServingSnapshot> first);

  /// Swaps `next` in as the new generation (writer path; mutex only here).
  std::uint64_t publish(std::shared_ptr<ServingSnapshot> next);

  const ServingSnapshot* active() const {
    return active_.load(std::memory_order_acquire);
  }

  /// Hot path: one acquire load of a raw pointer — no mutex, no shared_ptr
  /// control-block traffic (libstdc++'s atomic<shared_ptr> takes a pool
  /// mutex, which would put a lock right back under select_threads).
  std::atomic<const ServingSnapshot*> active_{nullptr};

  /// Writer side. `generations_` retains every snapshot ever published so
  /// readers racing a swap can never touch freed memory (hazard-free by
  /// retention); its footprint is bounded by the number of install() calls,
  /// which are rare retrain events by design — and evict_below() lets a
  /// long-lived retuning loop trim generations it has proven quiescent.
  mutable std::mutex install_mu_;
  std::vector<std::shared_ptr<const ServingSnapshot>> generations_;

  /// Countdown-expired half of sample_tick: reads the sampler, re-arms
  /// `countdown` (the period when sampling is on, a recheck interval when
  /// off), and accounts a whole period of ticks at once on firing.
  bool sample_tick_slow(std::uint64_t& countdown) const;

  /// Sampler state mirrors the snapshot discipline: one atomic pointer on
  /// the read side, retained generations on the write side.
  std::atomic<const TelemetrySampler*> sampler_{nullptr};
  std::vector<std::shared_ptr<const TelemetrySampler>> samplers_;
};

}  // namespace adsala::core
