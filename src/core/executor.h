// GEMM execution backends for the installation-time timing harness.
//
// The whole ADSALA pipeline is written against this interface so the same
// installation + runtime workflow runs on (a) the real host CPU with the
// from-scratch BLAS substrate, or (b) the simulated Setonix/Gadi paper
// platforms. measure() returns the mean wall time of `iterations` runs of
// one GEMM at a fixed thread count — the paper's timing protocol (SS V-B.3).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "blas/op.h"
#include "simarch/machine_model.h"

namespace adsala::core {

class GemmExecutor {
 public:
  virtual ~GemmExecutor() = default;

  virtual std::string name() const = 0;
  virtual int max_threads() const = 0;

  /// Mean seconds per GEMM call over `iterations` timed runs.
  virtual double measure(const simarch::GemmShape& shape, int nthreads,
                         int iterations = 10) = 0;

  /// Operation-aware measurement for the op-aware gathering campaign.
  /// Non-GEMM shapes use the equivalent-GEMM conventions of
  /// docs/OPERATIONS.md (SYRK: m == n, A n x k; TRSM / SYMM: m == k ==
  /// triangle/symmetric n, shape.n = right-hand-side columns). The default
  /// falls back to the GEMM proxy — backends that can actually run or model
  /// an operation override this.
  virtual double measure_op(blas::OpKind op, const simarch::GemmShape& shape,
                            int nthreads, int iterations = 10) {
    (void)op;
    return measure(shape, nthreads, iterations);
  }
};

/// Backend over the analytical machine model (paper-scale platforms).
class SimulatedExecutor : public GemmExecutor {
 public:
  SimulatedExecutor(simarch::MachineModel model,
                    simarch::ExecPolicy base_policy = {})
      : model_(std::move(model)), base_policy_(base_policy) {}

  std::string name() const override {
    return model_.topology().name + (base_policy_.allow_smt ? "" : "-noht");
  }
  int max_threads() const override {
    return model_.topology().max_threads(base_policy_.allow_smt);
  }
  double measure(const simarch::GemmShape& shape, int nthreads,
                 int iterations = 10) override {
    simarch::ExecPolicy policy = base_policy_;
    policy.nthreads = nthreads;
    return model_.measure_gemm(shape, policy, iterations);
  }
  /// Times the operation through its registry cost model
  /// (core/op_registry.cpp), so a newly registered op is simulated without
  /// touching this class.
  double measure_op(blas::OpKind op, const simarch::GemmShape& shape,
                    int nthreads, int iterations = 10) override;

  const simarch::MachineModel& model() const { return model_; }
  const simarch::ExecPolicy& base_policy() const { return base_policy_; }

 private:
  simarch::MachineModel model_;
  simarch::ExecPolicy base_policy_;
};

/// Backend running the from-scratch blocked GEMM on the host CPU.
/// Operands are 64-byte aligned and filled with pseudo-random values; one
/// warm-up call precedes the timed iterations (paper SS V-B.3).
class NativeExecutor : public GemmExecutor {
 public:
  explicit NativeExecutor(int max_threads = 0);

  std::string name() const override { return "native"; }
  int max_threads() const override { return max_threads_; }
  double measure(const simarch::GemmShape& shape, int nthreads,
                 int iterations = 10) override;
  /// Runs the op's registry-provided native timing closure (the real
  /// substrate routine, lower triangle / no transpose for the triangular
  /// families); a newly registered op is timed without touching this class.
  double measure_op(blas::OpKind op, const simarch::GemmShape& shape,
                    int nthreads, int iterations = 10) override;

 private:
  int max_threads_;
};

/// Thread counts worth probing on a platform: dense at the bottom (where
/// small-GEMM optima live), geometric above, always including max.
std::vector<int> default_thread_grid(int max_threads);

}  // namespace adsala::core
