// Append-only, crash-tolerant serve-time telemetry log — the data feed of
// the continual-retuning loop (docs/OPERATIONS.md, "Continual retuning").
//
// The serve-time sampler (AdsalaGemm::record_sample) appends one fixed-size
// record per sampled BLAS call; `adsala_cli retune` reads the log back,
// replays it through the live model (core/drift.h) and retrains from it
// (core/retune.h). The format is deliberately dumb so a crashed writer can
// never poison the loop:
//
//   record (48 bytes, little-endian, every field at a fixed offset)
//   ------  ---------------------------------------------------------
//       0   magic (0xA7 — a zeroed page never scans as a record)
//       1   op code (blas/op.h)
//       2   element size in bytes (4 or 8)
//       3   micro-kernel variant code (blas::kernels::Variant)
//       4   threads the call ran with          (uint32)
//       8   m  — stored equivalent-GEMM shape  (uint32)
//      12   k                                  (uint32)
//      16   n                                  (uint32)
//      20   reserved (0)                       (uint32)
//      24   measured wall time in nanoseconds  (uint64)
//      32   model snapshot version that chose `threads` (uint64)
//      40   FNV-1a 64 checksum of bytes [0, 40)         (uint64)
//
// Crash tolerance contract:
//   - append() buffers whole encoded records; flush() — called explicitly,
//     at the batch threshold (kTelemetryFlushRecords), or on destruction —
//     issues ONE write(2) of the record-aligned buffer on an O_APPEND
//     descriptor. A crash therefore leaves at most one partial record, and
//     only at the tail (a torn multi-record write persists a prefix: whole
//     records, then at most one partial one). Buffered-but-unflushed
//     records are lost in a crash — acceptable for sampling telemetry, and
//     the price of keeping the serve-path overhead amortised to ~nothing.
//   - open() scans the existing file and TRUNCATES a torn tail (a trailing
//     partial record, or a trailing full-size record whose checksum fails)
//     before appending — the log self-heals across crashes.
//   - A bad record *followed by more bytes* is not a torn tail but real
//     corruption (bit rot, concurrent unsynchronised writers): open() and
//     read_telemetry_log() refuse with kParseError rather than resyncing,
//     because a resync heuristic could silently fabricate records.
//
// The `telemetry-torn-tail` failpoint (common/failpoint.h) makes one
// flush() write only a prefix of its buffer and wedge the handle,
// simulating a crash mid-write so tests can drive the self-heal path.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "blas/kernels/kernel_set.h"
#include "blas/op.h"
#include "common/status.h"

namespace adsala::core {

inline constexpr std::size_t kTelemetryRecordBytes = 48;
inline constexpr std::uint8_t kTelemetryMagic = 0xA7;
/// append() auto-flushes after this many buffered records (6 KiB).
inline constexpr std::size_t kTelemetryFlushRecords = 128;

/// One sampled BLAS call. Shapes are stored in the op's equivalent-GEMM
/// convention (docs/OPERATIONS.md), exactly as GatherRecord stores them, so
/// telemetry converts losslessly into training rows.
struct TelemetryRecord {
  blas::OpKind op = blas::OpKind::kGemm;
  int elem_bytes = 4;
  blas::kernels::Variant kernel = blas::kernels::Variant::kGeneric;
  int threads = 0;
  long m = 0;
  long k = 0;
  long n = 0;
  std::uint64_t measured_ns = 0;
  std::uint64_t model_version = 0;
};

/// Serialises one record into its 48-byte frame (buf must hold
/// kTelemetryRecordBytes); computes and stores the checksum.
void encode_telemetry_record(const TelemetryRecord& rec, std::uint8_t* buf);

/// Decodes one 48-byte frame. False when the magic or checksum does not
/// match (the frame is torn or corrupt); *out is untouched then.
bool decode_telemetry_record(const std::uint8_t* buf, TelemetryRecord* out);

/// Append handle over one log file. Thread-safe: concurrent append() calls
/// from any number of threads interleave whole records under one mutex.
/// Move-only.
class TelemetryLog {
 public:
  /// Opens (creating if needed) for appending. Scans existing content:
  /// a torn tail is truncated away (see the file-format contract above);
  /// unreadable files map to kNotFound, mid-file corruption to kParseError.
  static Expected<TelemetryLog> open(const std::string& path);

  TelemetryLog(TelemetryLog&& other) noexcept;
  TelemetryLog& operator=(TelemetryLog&& other) noexcept;
  ~TelemetryLog();  ///< best-effort flush of buffered records

  /// Buffers one encoded record, auto-flushing at kTelemetryFlushRecords.
  /// kInternal when the handle is wedged or an auto-flush fails.
  Error append(const TelemetryRecord& rec);

  /// Writes every buffered record (one write(2), O_APPEND). kInternal on a
  /// short or failed write — the handle is then wedged (every later append
  /// and flush refuses) because the file may end in a torn record that only
  /// a fresh open() is allowed to heal.
  Error flush();

  const std::string& path() const { return path_; }

  /// Records accepted by append() through this handle (buffered + flushed).
  std::uint64_t appended() const { return appended_; }

 private:
  TelemetryLog(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  Error flush_locked();

  std::string path_;
  int fd_ = -1;
  bool wedged_ = false;
  std::uint64_t appended_ = 0;
  std::vector<std::uint8_t> buffer_;
  std::mutex mu_;
};

/// Reads every record of a log. The same tail/corruption contract as
/// TelemetryLog::open — a torn tail is silently dropped, mid-file
/// corruption is kParseError (record index in the message), a missing file
/// is kNotFound. An empty or tail-only file reads as zero records.
Expected<std::vector<TelemetryRecord>> read_telemetry_log(
    const std::string& path);

}  // namespace adsala::core
