// Installation-time data gathering (paper Fig. 2, "Data gathering part").
//
// Samples shapes from the memory-capped domain with a scrambled Halton
// sequence, times each shape at every thread count of a probe grid, and
// keeps the full per-shape runtime curves. Since the operation-aware gather
// (PR 2) a campaign can cover several level-3 operations; each op's domain
// sampler and measure path come from its registry row (core/op_registry.h),
// with shapes stored as equivalent-GEMM conventions (docs/OPERATIONS.md).
// Every record is tagged with the operation and the micro-kernel variant
// active while it was timed, and a campaign can A/B kernel variants
// (GatherConfig::variants) so the kernel_* feature columns carry signal.
//
// The curves serve two purposes: rows (shape x thread-count -> runtime)
// become the ML training set — flattened by to_dataset() into the op-aware
// feature schema defined in preprocess/features.h — and the per-shape
// argmin/max-thread runtimes are the ground truth for speedup estimation and
// for the optimal-thread-count histogram/heatmap figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "blas/kernels/kernel_set.h"
#include "blas/op.h"
#include "core/executor.h"
#include "ml/dataset.h"
#include "sampling/domain.h"

namespace adsala::core {

/// Full runtime curve of one shape over the probe thread grid.
struct GatherRecord {
  simarch::GemmShape shape;  ///< SYRK records carry the m == n convention
  blas::OpKind op = blas::OpKind::kGemm;
  /// Micro-kernel variant active when the curve was timed (a concrete
  /// variant, never kAuto); becomes the kernel_* one-hot columns.
  blas::kernels::Variant variant = blas::kernels::Variant::kGeneric;
  std::vector<int> threads;
  std::vector<double> runtime;  ///< seconds, same order as `threads`

  int optimal_threads() const;    ///< grid thread count with min runtime
  double optimal_runtime() const;
  double max_thread_runtime() const;  ///< runtime at the last (max) grid entry
};

struct GatherConfig {
  std::size_t n_samples = 400;  ///< shapes per operation
  int iterations = 10;
  std::vector<int> thread_grid;  ///< empty -> default_thread_grid(max)
  sampling::DomainConfig domain;
  /// Operations to cover, each over the same domain config. The default
  /// keeps the PR-1 behaviour (GEMM only); append any registered op (or
  /// blas::all_ops()) for an op-aware campaign.
  std::vector<blas::OpKind> ops = {blas::OpKind::kGemm};
  /// Kernel variants to A/B within the campaign: each operation's shapes are
  /// timed once per listed variant (set_variant() around the sub-campaign,
  /// previous dispatch restored afterwards), which makes the kernel_* one-hot
  /// columns informative instead of constant. Entries must be concrete
  /// (resolve kAuto first) and host-supported. Empty -> the active variant
  /// only, without touching the dispatch state.
  std::vector<blas::kernels::Variant> variants;
};

struct GatherData {
  std::string platform;
  int max_threads = 0;
  std::vector<int> thread_grid;
  std::vector<GatherRecord> records;

  /// Flattens to the op-aware feature dataset (see preprocess/features.h for
  /// the column list): one row per (record, threads) pair; SYRK rows compute
  /// the numeric features from the equivalent-GEMM shape (n, k, n).
  ml::Dataset to_dataset() const;

  /// Train/test split *by shape* (no leakage of a shape's curve across the
  /// split), stratified on log optimal runtime.
  void split(double test_fraction, std::uint64_t seed, GatherData* train,
             GatherData* test) const;

  /// CSV columns: m, k, n, elem_bytes, threads, runtime, op, variant (the
  /// last two as the integer codes from blas/op.h and kernels::Variant).
  /// load_csv also accepts the PR-1-era six-column layout, tagging every
  /// row as a generic-kernel GEMM.
  void save_csv(const std::string& path) const;
  static GatherData load_csv(const std::string& path);
};

/// Runs the gathering campaign on the given executor, one sub-campaign per
/// configured operation.
GatherData gather_timings(GemmExecutor& executor, const GatherConfig& config);

}  // namespace adsala::core
