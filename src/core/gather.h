// Installation-time data gathering (paper Fig. 2, "Data gathering part").
//
// Samples GEMM shapes from the memory-capped domain with a scrambled Halton
// sequence, times each shape at every thread count of a probe grid, and
// keeps the full per-shape runtime curves. The curves serve two purposes:
// rows (shape x thread-count -> runtime) become the ML training set, and the
// per-shape argmin/max-thread runtimes are the ground truth for speedup
// estimation and for the optimal-thread-count histogram/heatmap figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/executor.h"
#include "ml/dataset.h"
#include "sampling/domain.h"

namespace adsala::core {

/// Full runtime curve of one GEMM shape over the probe thread grid.
struct GatherRecord {
  simarch::GemmShape shape;
  std::vector<int> threads;
  std::vector<double> runtime;  ///< seconds, same order as `threads`

  int optimal_threads() const;    ///< grid thread count with min runtime
  double optimal_runtime() const;
  double max_thread_runtime() const;  ///< runtime at the last (max) grid entry
};

struct GatherConfig {
  std::size_t n_samples = 400;
  int iterations = 10;
  std::vector<int> thread_grid;  ///< empty -> default_thread_grid(max)
  sampling::DomainConfig domain;
};

struct GatherData {
  std::string platform;
  int max_threads = 0;
  std::vector<int> thread_grid;
  std::vector<GatherRecord> records;

  /// Flattens to the Table-II feature dataset: one row per (shape, threads).
  ml::Dataset to_dataset() const;

  /// Train/test split *by shape* (no leakage of a shape's curve across the
  /// split), stratified on log optimal runtime.
  void split(double test_fraction, std::uint64_t seed, GatherData* train,
             GatherData* test) const;

  void save_csv(const std::string& path) const;
  static GatherData load_csv(const std::string& path);
};

/// Runs the gathering campaign on the given executor.
GatherData gather_timings(GemmExecutor& executor, const GatherConfig& config);

}  // namespace adsala::core
