#include "core/resilient_client.h"

#include <time.h>

#include <algorithm>
#include <cerrno>

namespace adsala::core {

namespace {

bool retriable(ErrorCode code) {
  // Transport-shaped failures: the daemon may be mid-restart, mid-drain,
  // mid-publish, or the answer got garbled — all worth another try. A
  // validation error is the question's fault and retrying cannot help.
  switch (code) {
    case ErrorCode::kUnavailable:
    case ErrorCode::kNotFound:
    case ErrorCode::kProtocolError:
    case ErrorCode::kInternal:
      return true;
    default:
      return false;
  }
}

long long monotonic_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<long long>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

void nanosleep_ms(int ms) {
  if (ms <= 0) return;
  timespec ts{ms / 1000, static_cast<long>(ms % 1000) * 1000000};
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

}  // namespace

ResilientClient::ResilientClient(Transport transport, Options options)
    : transport_(std::move(transport)),
      options_(std::move(options)),
      rng_(options_.rng_seed != 0 ? options_.rng_seed
                                  : std::random_device{}()) {
  options_.max_attempts = std::max(1, options_.max_attempts);
  options_.breaker_threshold = std::max(1, options_.breaker_threshold);
}

long long ResilientClient::now_ms() const {
  return options_.clock_ms ? options_.clock_ms() : monotonic_ms();
}

int ResilientClient::backoff_ms(int attempt) {
  // Full jitter (AWS-style): U(0, cap) rather than cap +- epsilon, so a
  // fleet of clients knocked over by the same daemon outage does not come
  // back as one synchronised stampede.
  long long cap = options_.base_backoff_ms;
  for (int i = 0; i < attempt && cap < options_.max_backoff_ms; ++i) cap *= 2;
  cap = std::min<long long>(cap, options_.max_backoff_ms);
  if (cap <= 0) return 0;
  return static_cast<int>(
      std::uniform_int_distribution<long long>(0, cap)(rng_));
}

ServeAnswer ResilientClient::serve_fallback(const ServeQuery& q) {
  if (!fallback_.has_value()) {
    fallback_.emplace(options_.fallback_loader
                          ? options_.fallback_loader()
                          : AdsalaGemm::heuristic_fallback());
  }
  const AdsalaGemm::Decision d =
      fallback_->query(q.op, q.x, q.y, q.z, q.elem_bytes);
  ++stats_.fallback_serves;
  ServeAnswer out;
  out.threads = d.threads;
  out.mode = static_cast<int>(d.mode);
  out.from_fallback = true;
  return out;
}

bool ResilientClient::circuit_open() const {
  return open_ && now_ms() < open_until_ms_;
}

Expected<ServeAnswer> ResilientClient::query(const ServeQuery& q) {
  if (open_) {
    if (now_ms() < open_until_ms_) return serve_fallback(q);
    // Half-open: the timer expired; fall through and let one real
    // transport attempt decide whether the circuit closes or re-opens.
    open_ = false;
  }

  Error last{ErrorCode::kUnavailable, "no transport attempt made"};
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    ++stats_.transport_queries;
    auto answer = transport_(q);
    if (answer.ok()) {
      consecutive_failures_ = 0;
      return std::move(answer).value();
    }
    last = answer.error();
    if (!retriable(last.code)) return last;

    ++consecutive_failures_;
    if (consecutive_failures_ >= options_.breaker_threshold) {
      open_ = true;
      open_until_ms_ = now_ms() + options_.breaker_open_ms;
      ++stats_.breaker_opens;
      return serve_fallback(q);
    }
    if (attempt + 1 < options_.max_attempts) {
      ++stats_.retries;
      const int ms = backoff_ms(attempt);
      if (options_.sleep_ms) {
        options_.sleep_ms(ms);
      } else {
        nanosleep_ms(ms);
      }
    }
  }
  // Retry budget exhausted without tripping the breaker: still answer.
  return serve_fallback(q);
}

}  // namespace adsala::core
