// The operation registry — one pluggable row per served level-3 operation.
//
// blas/op.h names the family (enum, stable code, spelling); this registry
// carries everything the pipeline needs to *run* an operation, so no layer
// switches on OpKind any more:
//   - shape canonicalisation between the op's family coordinates and the
//     stored equivalent-GEMM shape (docs/OPERATIONS.md conventions),
//   - the memory-capped domain sampler for gathering campaigns,
//   - the analytic cost model the simulated platforms time it with,
//   - the native timing closure that runs the real substrate routine.
//
// Adding an operation is one blas/op.h table row, one OpTraits row in
// op_registry.cpp, and the substrate kernel file itself; the sampler
// factory (gather), both measure paths (executors), the runtime selection
// API (AdsalaGemm::select_threads(op, ...)), CLI flags, and the select-bench
// family all pick the new row up without edits. TRMM landed exactly this
// way — see docs/OPERATIONS.md for the worked recipe.
#pragma once

#include <memory>
#include <span>

#include "blas/op.h"
#include "sampling/domain.h"
#include "simarch/machine_model.h"

namespace adsala::core {

/// Pluggable description of one operation. Function members are plain
/// pointers so rows are constexpr-constructible literals.
struct OpTraits {
  blas::OpKind op = blas::OpKind::kGemm;

  /// Family arity: 3 for the full (m, k, n) GEMM domain, 2 for the derived
  /// families.
  int family_dims = 3;

  /// Family coordinate labels, family_dims entries (e.g. {"n", "k"} for
  /// SYRK); drives CLI flag usage text and bench row labels.
  const char* coord_names[3] = {nullptr, nullptr, nullptr};

  /// Canonicalises family coordinates into the stored equivalent-GEMM shape
  /// (2-D families ignore z).
  simarch::GemmShape (*to_shape)(long x, long y, long z,
                                 int elem_bytes) = nullptr;

  /// Recovers the family coordinates from a stored shape (inverse of
  /// to_shape; unused outputs are left untouched for 2-D families).
  void (*from_shape)(const simarch::GemmShape& shape, long* x, long* y,
                     long* z) = nullptr;

  /// Domain sampler factory over the shared campaign config.
  std::unique_ptr<sampling::DomainSampler> (*make_sampler)(
      const sampling::DomainConfig& config) = nullptr;

  /// Analytic deviation from the GEMM cost model
  /// (simarch::MachineModel::time_op / measure_op).
  simarch::OpCostModel cost;

  /// Mean seconds per call of the real substrate routine on the host
  /// (fp32/fp64 selected by shape.elem_bytes; warm-up + `iterations` timed
  /// runs, the paper's SS V-B.3 protocol).
  double (*measure_native)(const simarch::GemmShape& shape, int nthreads,
                           int iterations) = nullptr;
};

/// The traits row of one registered operation. Every blas/op.h table row has
/// exactly one (enforced by static_asserts in op_registry.cpp).
const OpTraits& op_traits(blas::OpKind op);

/// Every traits row, in blas/op.h table (== code) order.
std::span<const OpTraits> op_registry();

}  // namespace adsala::core
