#include "core/drift.h"

#include <algorithm>
#include <map>
#include <tuple>

namespace adsala::core {

namespace {

/// One exact serving query: every record with this key got (or would get)
/// the same answer from the snapshot.
using GroupKey = std::tuple<int /*op code*/, long, long, long, int /*elem*/>;

struct Group {
  blas::OpKind op = blas::OpKind::kGemm;
  long m = 0, k = 0, n = 0;
  int elem_bytes = 4;
  /// threads -> best (minimum) measured nanoseconds at that count.
  std::map<int, std::uint64_t> best_ns;
};

}  // namespace

DriftReport detect_drift(std::span<const TelemetryRecord> records,
                         const ServingSnapshot& snapshot,
                         const DriftOptions& options) {
  DriftReport report;
  if (options.window > 0 && records.size() > options.window) {
    records = records.subspan(records.size() - options.window);
  }
  report.window_records = records.size();

  std::map<GroupKey, Group> groups;
  std::map<int, std::size_t> records_per_op;  // op code -> windowed records
  for (const TelemetryRecord& rec : records) {
    if (rec.measured_ns == 0 || rec.threads <= 0) continue;  // unusable
    ++records_per_op[blas::op_code(rec.op)];
    Group& g = groups[GroupKey{blas::op_code(rec.op), rec.m, rec.k, rec.n,
                               rec.elem_bytes}];
    g.op = rec.op;
    g.m = rec.m;
    g.k = rec.k;
    g.n = rec.n;
    g.elem_bytes = rec.elem_bytes;
    auto [it, inserted] = g.best_ns.emplace(rec.threads, rec.measured_ns);
    if (!inserted) it->second = std::min(it->second, rec.measured_ns);
  }

  // Accumulate per-op regret over the measurable groups.
  std::map<int, OpDriftStats> per_op;
  for (auto& [code, count] : records_per_op) {
    OpDriftStats stats;
    stats.op = *blas::op_from_code(code);
    stats.records = count;
    per_op[code] = stats;
  }
  for (const auto& [key, g] : groups) {
    (void)key;
    const int chosen =
        snapshot.select_threads(g.op, g.m, g.k, g.n, g.elem_bytes);
    const auto at_chosen = g.best_ns.find(chosen);
    if (at_chosen == g.best_ns.end()) continue;  // off-policy group
    std::uint64_t best = at_chosen->second;
    for (const auto& [threads, ns] : g.best_ns) {
      (void)threads;
      best = std::min(best, ns);
    }
    if (best == 0) continue;
    const double regret = static_cast<double>(at_chosen->second) /
                              static_cast<double>(best) -
                          1.0;
    OpDriftStats& stats = per_op[blas::op_code(g.op)];
    ++stats.groups;
    stats.mean_regret += regret;  // sum for now; divided below
    stats.max_regret = std::max(stats.max_regret, regret);
  }

  for (auto& [code, stats] : per_op) {
    (void)code;
    if (stats.groups > 0) {
      stats.mean_regret /= static_cast<double>(stats.groups);
    }
    stats.fired = stats.groups >= options.min_groups &&
                  stats.mean_regret > options.threshold;
    report.fired = report.fired || stats.fired;
    report.per_op.push_back(stats);
  }
  return report;
}

}  // namespace adsala::core
