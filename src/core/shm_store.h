// Versioned shared-memory artefact store.
//
// One host, N serving processes, one trained model: the installation
// artefacts (model.json + config.json payloads, byte-for-byte) are published
// into a single mmap-able region that every process attaches read-only.
// Mapped from a tmpfs path (/dev/shm/...) the payload exists once in
// physical memory no matter how many processes serve from it; any regular
// file path works too (tests use /tmp scratch).
//
// The region's format discipline follows the fixed-offset, versioned-magic
// control-block style of the Cai900205 libips exemplar (SNIPPETS.md #1):
// every field lives at a compile-time offset, the magic word carries the
// format version in its low byte, and a seqlock-style generation counter
// makes torn publishes detectable instead of silently served.
//
//   offset  field          contents
//   ------  -------------  -------------------------------------------
//       0   magic          0xAD5A1A00 | format version (1)
//       4   header_bytes   64 (lets future versions grow the header)
//       8   generation     seqlock: odd = publish in progress; a reader
//                          must see the same even value before and after
//                          copying the payload
//      16   model_offset   byte offset of the model.json payload
//      24   model_bytes    its length
//      32   config_offset  byte offset of the config.json payload
//      40   config_bytes   its length
//      48   total_bytes    whole-region length (bounds check anchor)
//      56   reserved       0
//      64   payload...
//
// publish_shm_region is the only writer (generation odd -> payload ->
// generation even, release-ordered); read_shm_region copies the payloads
// out under the generation check and retries a bounded number of times, so
// attachers never serve from a half-swapped region. Validation of the
// payload *content* is not done here — AdsalaGemm::try_attach feeds the
// copied bytes through the exact same ladder try_load applies to files.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace adsala::core {

inline constexpr std::uint32_t kShmFormatVersion = 1;
inline constexpr std::uint32_t kShmMagic = 0xAD5A1A00u | kShmFormatVersion;
inline constexpr std::uint32_t kShmHeaderBytes = 64;

/// The fixed-offset region header. POD on purpose: it is the wire format.
struct ShmHeader {
  std::uint32_t magic;
  std::uint32_t header_bytes;
  std::uint64_t generation;
  std::uint64_t model_offset;
  std::uint64_t model_bytes;
  std::uint64_t config_offset;
  std::uint64_t config_bytes;
  std::uint64_t total_bytes;
  std::uint64_t reserved;
};
static_assert(sizeof(ShmHeader) == kShmHeaderBytes,
              "header layout is a wire format — do not let it drift");
static_assert(offsetof(ShmHeader, generation) == 8 &&
                  offsetof(ShmHeader, model_offset) == 16 &&
                  offsetof(ShmHeader, total_bytes) == 48,
              "field offsets are part of the format");

/// A stable copy of one generation's payloads.
struct ShmArtefacts {
  std::string model_json;
  std::string config_json;
  std::uint64_t generation = 0;
};

/// Publishes an artefact pair into the region at `path` (created or
/// overwritten in place under the seqlock protocol). Returns kOk, or a
/// path-qualified I/O failure.
Error publish_shm_region(const std::string& path,
                         const std::string& model_json,
                         const std::string& config_json);

/// Attaches to the region and copies one *stable* generation of payloads
/// out. Failure taxonomy: kNotFound (no region), kParseError (too small /
/// payload bounds beyond the mapping — a torn create), kValidationError
/// (wrong magic: not an ADSALA region or an incompatible format version),
/// kUnavailable (generation counter caught mid-swap past the retry budget).
Expected<ShmArtefacts> read_shm_region(const std::string& path);

}  // namespace adsala::core
