// Versioned shared-memory artefact store.
//
// One host, N serving processes, one trained model: the installation
// artefacts (model.json + config.json payloads, byte-for-byte) are published
// into a single mmap-able region that every process attaches read-only.
// Mapped from a tmpfs path (/dev/shm/...) the payload exists once in
// physical memory no matter how many processes serve from it; any regular
// file path works too (tests use /tmp scratch).
//
// The region's format discipline follows the fixed-offset, versioned-magic
// control-block style of the Cai900205 libips exemplar (SNIPPETS.md #1):
// every field lives at a compile-time offset, the magic word carries the
// format version in its low byte, and a seqlock-style generation counter
// makes torn publishes detectable instead of silently served.
//
// Format v2 (this header) adds *writer-liveness repair*: v1's seqlock told a
// reader that a publish was in progress, but a publisher that died mid-swap
// left the generation odd forever — "retry later" never succeeded. v2 stamps
// the publisher's identity (pid + /proc start-time nonce, which together
// survive pid reuse) and keeps descriptors for the *previous* complete
// payload, written before the generation ever goes odd. A reader that
// exhausts its retry budget probes the writer: if the pid is dead (or the
// nonce says the pid was recycled), the odd generation is a tombstone and
// the region is healed by rolling the descriptors back to the previous
// payload and the generation forward to the next even value. New payloads
// are written into whichever byte range the previous payload does NOT
// occupy (low slot at offset 128, or after the active extent), so healing
// always finds its bytes intact.
//
//   offset  field              contents
//   ------  -----------------  -------------------------------------------
//       0   magic              0xAD5A1A00 | format version (2)
//       4   header_bytes       128 (lets future versions grow the header)
//       8   generation         seqlock: odd = publish in progress; a reader
//                              must see the same even value before and
//                              after copying the payload
//      16   model_offset       byte offset of the model.json payload
//      24   model_bytes        its length
//      32   config_offset      byte offset of the config.json payload
//      40   config_bytes       its length
//      48   total_bytes        whole-region length (bounds check anchor)
//      56   writer_pid         pid of the publisher that last took the
//                              generation odd
//      64   writer_nonce       that pid's /proc/<pid>/stat starttime at
//                              publish time (0 when unreadable)
//      72   prev_model_offset  descriptors of the last *complete* payload,
//      80   prev_model_bytes   written while the generation was still even
//      88   prev_config_offset — the heal target
//      96   prev_config_bytes
//     104   prev_generation    the even generation those bytes served under
//                              (0 = no previous payload; first publish)
//     112   reserved           0
//     120   reserved2          0
//     128   payload...
//
// publish_shm_region is the only writer (flock-serialised; generation odd ->
// payload into the free slot -> descriptors -> generation even, all
// release-ordered); read_shm_region copies the payloads out under the
// generation check and retries a bounded number of times, then falls into
// the liveness probe + heal path above. Validation of the payload *content*
// is not done here — AdsalaGemm::try_attach feeds the copied bytes through
// the exact same ladder try_load applies to files.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include <sys/types.h>

#include "common/status.h"

namespace adsala::core {

inline constexpr std::uint32_t kShmFormatVersion = 2;
inline constexpr std::uint32_t kShmMagic = 0xAD5A1A00u | kShmFormatVersion;
inline constexpr std::uint32_t kShmHeaderBytes = 128;

/// The fixed-offset region header. POD on purpose: it is the wire format.
struct ShmHeader {
  std::uint32_t magic;
  std::uint32_t header_bytes;
  std::uint64_t generation;
  std::uint64_t model_offset;
  std::uint64_t model_bytes;
  std::uint64_t config_offset;
  std::uint64_t config_bytes;
  std::uint64_t total_bytes;
  std::uint64_t writer_pid;
  std::uint64_t writer_nonce;
  std::uint64_t prev_model_offset;
  std::uint64_t prev_model_bytes;
  std::uint64_t prev_config_offset;
  std::uint64_t prev_config_bytes;
  std::uint64_t prev_generation;
  std::uint64_t reserved;
  std::uint64_t reserved2;
};
static_assert(sizeof(ShmHeader) == kShmHeaderBytes,
              "header layout is a wire format — do not let it drift");
static_assert(offsetof(ShmHeader, generation) == 8 &&
                  offsetof(ShmHeader, model_offset) == 16 &&
                  offsetof(ShmHeader, total_bytes) == 48 &&
                  offsetof(ShmHeader, writer_pid) == 56 &&
                  offsetof(ShmHeader, writer_nonce) == 64 &&
                  offsetof(ShmHeader, prev_model_offset) == 72 &&
                  offsetof(ShmHeader, prev_generation) == 104,
              "field offsets are part of the format");

/// A stable copy of one generation's payloads.
struct ShmArtefacts {
  std::string model_json;
  std::string config_json;
  std::uint64_t generation = 0;
};

/// Publishes an artefact pair into the region at `path` (created or updated
/// in place under the seqlock protocol; writers are serialised by an
/// exclusive flock on the region file, which the kernel releases even if
/// the holder is SIGKILL-ed). Returns kOk, kUnavailable when another
/// publisher holds the lock, or a path-qualified I/O failure.
Error publish_shm_region(const std::string& path,
                         const std::string& model_json,
                         const std::string& config_json);

/// Attaches to the region and copies one *stable* generation of payloads
/// out. When the retry budget is exhausted on an odd generation, probes the
/// stamped writer's liveness and — if the writer is dead — heals the region
/// to the previous complete payload and retries once. Failure taxonomy:
/// kNotFound (no region), kParseError (too small / payload bounds beyond
/// the mapping — a torn create), kValidationError (wrong magic: not an
/// ADSALA region or an incompatible format version), kUnavailable (live
/// publisher mid-swap past the retry budget, or a dead writer's region with
/// no previous payload to heal to).
Expected<ShmArtefacts> read_shm_region(const std::string& path);

/// Rolls a dead writer's region back to the previous complete payload:
/// under an exclusive flock, re-verifies that the generation is still odd
/// and the previous-payload descriptors are valid, then republishes them as
/// the active descriptors and bumps the generation to the next even value.
/// Returns kOk after healing, kOk also when the region turned out healthy
/// (a publisher finished first), kUnavailable when the lock is held or
/// there is no previous payload (crash during first publish), and the usual
/// I/O taxonomy otherwise. Exposed for the crash harness; read_shm_region
/// calls it automatically after a failed liveness probe.
Error heal_shm_region(const std::string& path);

/// The start-time nonce for `pid` (/proc/<pid>/stat field 22). 0 when the
/// stat file is unreadable. Together with the pid this identifies one
/// process incarnation — a recycled pid gets a different nonce.
std::uint64_t process_start_nonce(pid_t pid);

/// True when the (pid, nonce) stamp plausibly names a live process: the pid
/// exists and its current start nonce matches the stamp (or either side's
/// nonce is unreadable, in which case liveness is assumed — healing a live
/// publisher is worse than waiting out a dead one).
bool writer_alive(pid_t pid, std::uint64_t nonce);

}  // namespace adsala::core
