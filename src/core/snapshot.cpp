#include "core/snapshot.h"

#include "core/op_registry.h"
#include "core/trainer.h"
#include "preprocess/features.h"

namespace adsala::core {

const char* serving_mode_name(ServingMode mode) {
  switch (mode) {
    case ServingMode::kModelServed: return "model";
    case ServingMode::kGemmProxy: return "gemm_proxy";
    case ServingMode::kHeuristicFallback: return "heuristic";
  }
  return "heuristic";
}

std::uint64_t MemoCache::pack_key(blas::OpKind op, long m, long k, long n,
                                  int elem_bytes) {
  const std::uint64_t elem_code =
      elem_bytes == 4 ? 1u : (elem_bytes == 8 ? 2u : 0u);
  if (elem_code == 0) return 0;
  if (m < 0 || m > 0xFFFF || k < 0 || k > 0xFFFF || n < 0 || n > 0xFFFF) {
    return 0;
  }
  const auto code = static_cast<std::uint64_t>(blas::op_code(op));
  if (code > 0x7) return 0;
  return (1ull << 63) | (code << 60) | (elem_code << 58) |
         (static_cast<std::uint64_t>(m) << 42) |
         (static_cast<std::uint64_t>(k) << 26) |
         (static_cast<std::uint64_t>(n) << 10);
}

ServingMode ServingSnapshot::mode_for(blas::OpKind op) const {
  if (model == nullptr) return ServingMode::kHeuristicFallback;
  if (op == blas::OpKind::kGemm) return ServingMode::kModelServed;
  if (op_aware() && preprocess::op_served_first_class(
                        op, pipeline.n_input_features())) {
    return ServingMode::kModelServed;
  }
  return ServingMode::kGemmProxy;
}

bool ServingSnapshot::op_aware() const {
  // An op indicator must have *survived* preprocessing: a GEMM-only campaign
  // gathered with the op-aware schema drops the constant op_* columns at fit
  // time and therefore answers family queries exactly like the proxy.
  if (model == nullptr) return false;
  const auto& names = pipeline.input_feature_names();
  for (std::size_t j : pipeline.kept_features()) {
    if (names[j].rfind("op_", 0) == 0) return true;
  }
  return false;
}

namespace {

/// Deterministic analytic argmin over the grid, through the op's registry
/// cost model on the equivalent-GEMM shape (heuristic mode only) — the same
/// literals the simulated platforms are timed with, so the occupancy rule
/// inherits their qualitative behaviour (skinny shapes cap out early, big
/// cubes take the machine).
int heuristic_threads(const ServingSnapshot& snap, blas::OpKind op,
                      const simarch::GemmShape& shape) {
  const simarch::OpCostModel& cost = op_traits(op).cost;
  simarch::ExecPolicy policy;
  int best = snap.thread_grid.front();
  double best_time = 0.0;
  for (std::size_t i = 0; i < snap.thread_grid.size(); ++i) {
    policy.nthreads = snap.thread_grid[i];
    const double t =
        snap.fallback_model->time_op(shape, policy, cost).total();
    if (i == 0 || t < best_time) {
      best_time = t;
      best = snap.thread_grid[i];
    }
  }
  return best;
}

}  // namespace

int ServingSnapshot::select_threads(blas::OpKind op, long m, long k, long n,
                                    int elem_bytes) const {
  const std::uint64_t key = MemoCache::pack_key(op, m, k, n, elem_bytes);
  int threads = 0;
  if (key != 0 && memo.lookup(key, &threads)) return threads;

  const simarch::GemmShape shape{m, k, n, elem_bytes};
  if (model != nullptr) {
    const std::size_t best =
        predict_best_grid_index(*model, pipeline, shape, thread_grid, op);
    threads = thread_grid[best];
  } else {
    threads = heuristic_threads(*this, op, shape);  // degraded serving mode
  }
  if (key != 0) memo.insert(key, threads);
  return threads;
}

}  // namespace adsala::core
