#include "core/install.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/atomic_file.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/adsala.h"
#include "core/shm_store.h"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

namespace adsala::core {

InstallReport install(GemmExecutor& executor, const InstallOptions& options) {
  InstallReport report;

  WallTimer gather_timer;
  if (!options.reuse_timings_csv.empty()) {
    report.gathered = GatherData::load_csv(options.reuse_timings_csv);
    // The CSV carries no platform banner; stamp the executor's so the
    // artefacts stay self-describing.
    if (report.gathered.platform.empty()) {
      report.gathered.platform = executor.name();
    }
  } else {
    report.gathered = gather_timings(executor, options.gather);
  }
  report.gather_seconds = gather_timer.seconds();

  WallTimer train_timer;
  report.trained = train_and_select(report.gathered, options.train);
  report.train_seconds = train_timer.seconds();

  report.model_path = options.output_dir + "/model.json";
  report.config_path = options.output_dir + "/config.json";
  if (options.save_raw_csv) {
    report.gathered.save_csv(options.output_dir + "/timings.csv");
  }

  // Persist via a temporary runtime object so save format and load format
  // cannot drift apart.
  TrainOutput copy;
  copy.selected = report.trained.selected;
  copy.thread_grid = report.trained.thread_grid;
  copy.max_threads = report.trained.max_threads;
  copy.platform = report.trained.platform;
  copy.pipeline = report.trained.pipeline;
  // Reconstruct the fitted model through its own serialisation round-trip.
  copy.model = ml::load_model(report.trained.model->save());
  AdsalaGemm runtime(std::move(copy));

  // Save behind tmp names and verify *those*, so the real paths are only
  // ever touched by an atomic rename of already-validated bytes: a SIGKILL
  // at any instruction leaves the previous artefacts (or nothing) at the
  // real paths, never a torn pair. The `.tmp.<pid>` names match the
  // recover_store() debris pattern, so a crash's leftovers get GC-ed.
  const std::string pid_tag = ".tmp." + std::to_string(::getpid());
  const std::string tmp_model = report.model_path + pid_tag;
  const std::string tmp_config = report.config_path + pid_tag;
  runtime.save(tmp_model, tmp_config);

  // Write-then-verify: run the freshly written pair through the serving
  // layer's full validation ladder before declaring the install done. A
  // failure here is an installer bug (or a dying disk), and catching it now
  // — with the taxonomy's path-qualified message — beats every future
  // process booting into heuristic fallback.
  auto verify = AdsalaGemm::try_load(tmp_model, tmp_config);
  if (!verify.ok()) {
    ::unlink(tmp_model.c_str());
    ::unlink(tmp_config.c_str());
    throw std::runtime_error(
        "install: written artefacts fail validation (" +
        std::string(error_code_name(verify.error().code)) +
        "): " + verify.error().message);
  }
  const std::pair<const std::string*, const std::string*> renames[] = {
      {&tmp_model, &report.model_path}, {&tmp_config, &report.config_path}};
  for (const auto& [tmp, final_path] : renames) {
    if (Error err = fsync_path(*tmp); !err.ok()) {
      throw std::runtime_error("install: " + err.message);
    }
    if (std::rename(tmp->c_str(), final_path->c_str()) != 0) {
      throw std::runtime_error("install: cannot rename " + *tmp + " into " +
                               *final_path);
    }
  }
  if (Error err = fsync_dir(options.output_dir); !err.ok()) {
    throw std::runtime_error("install: " + err.message);
  }

  // Publication happens only past this point: a shm region or a live
  // runtime never receives bytes the validation ladder would reject.
  if (!options.publish_shm.empty()) {
    const Error err =
        publish_shm_region(options.publish_shm, slurp(report.model_path),
                           slurp(report.config_path));
    if (!err.ok()) {
      throw std::runtime_error("install: shm publish failed: " + err.message);
    }
  }
  if (options.publish_to != nullptr) {
    options.publish_to->install(verify.value().snapshot());
  }

  return report;
}

}  // namespace adsala::core
