#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "blas/kernels/dispatch.h"
#include "common/timer.h"
#include "ml/metrics.h"
#include "preprocess/features.h"

namespace adsala::core {

const ModelReport& TrainOutput::selected_report() const {
  for (const auto& r : reports) {
    if (r.model_name == selected) return r;
  }
  throw std::logic_error("TrainOutput: no report for selected model");
}

std::vector<std::string> paper_candidates() {
  return {"linear_regression", "elastic_net", "bayesian_ridge",
          "decision_tree",     "random_forest", "adaboost",
          "xgboost",           "lightgbm"};
}

std::size_t predict_best_grid_index(const ml::Regressor& model,
                                    const preprocess::Pipeline& pipeline,
                                    const simarch::GemmShape& shape,
                                    std::span<const int> thread_grid,
                                    blas::OpKind op,
                                    blas::kernels::Variant variant) {
  // The fitted input width decides the raw-row layout (current 25-column
  // schema, the 24/23/21-column legacy tiers, or the PR-1 numeric-only 17);
  // the schema tiers live in preprocess::make_query_features.
  const std::size_t width = pipeline.n_input_features();
  if (width > preprocess::kNumFeatures &&
      variant == blas::kernels::Variant::kAuto) {
    variant = blas::kernels::active_variant();
  }
  std::size_t best = 0;
  double best_pred = 0.0;
  for (std::size_t t = 0; t < thread_grid.size(); ++t) {
    const double m = static_cast<double>(shape.m);
    const double k = static_cast<double>(shape.k);
    const double n = static_cast<double>(shape.n);
    const double p = static_cast<double>(thread_grid[t]);
    const auto x = pipeline.transform_row(
        preprocess::make_query_features(m, k, n, p, op, variant, width));
    const double pred = model.predict_one(x);
    if (t == 0 || pred < best_pred) {
      best_pred = pred;
      best = t;
    }
  }
  return best;
}

namespace {

/// Transforms a GatherData's flattened rows through a *fitted* pipeline
/// (feature stages + label transform; no row removal — test data keeps every
/// row).
ml::Dataset transform_rows(const preprocess::Pipeline& pipeline,
                           const ml::Dataset& raw) {
  std::vector<std::string> names;
  for (std::size_t j : pipeline.kept_features()) {
    names.push_back(raw.feature_names()[j]);
  }
  ml::Dataset out(std::move(names));
  for (std::size_t i = 0; i < raw.size(); ++i) {
    out.add_row(pipeline.transform_row(raw.row(i)),
                pipeline.transform_label(raw.label(i)));
  }
  return out;
}

struct SpeedupStats {
  double mean = 0.0;
  double aggregate = 0.0;
};

/// Speedups over the test shapes given a fitted model; eval_overhead_s is
/// added to the ADSALA runtime (0 for the "ideal" columns).
SpeedupStats speedups(const ml::Regressor& model,
                      const preprocess::Pipeline& pipeline,
                      const GatherData& test, double eval_overhead_s) {
  SpeedupStats out;
  double sum_ratio = 0.0, sum_orig = 0.0, sum_adsala = 0.0;
  for (const auto& rec : test.records) {
    const std::size_t best = predict_best_grid_index(
        model, pipeline, rec.shape, rec.threads, rec.op, rec.variant);
    const double t_adsala = rec.runtime[best] + eval_overhead_s;
    const double t_orig = rec.max_thread_runtime();
    sum_ratio += t_orig / t_adsala;
    sum_orig += t_orig;
    sum_adsala += t_adsala;
  }
  const auto n = static_cast<double>(test.records.size());
  out.mean = n > 0 ? sum_ratio / n : 0.0;
  out.aggregate = sum_adsala > 0 ? sum_orig / sum_adsala : 0.0;
  return out;
}

/// Mean wall time of one full thread-grid argmin evaluation.
double measure_eval_time_s(const ml::Regressor& model,
                           const preprocess::Pipeline& pipeline,
                           const GatherData& test, int repeats = 50) {
  if (test.records.empty()) return 0.0;
  // Rotate over a few shapes so branchy models do not get a single hot path.
  const std::size_t n_probe = std::min<std::size_t>(8, test.records.size());
  WallTimer timer;
  for (int r = 0; r < repeats; ++r) {
    const auto& rec = test.records[static_cast<std::size_t>(r) % n_probe];
    // The argmin result is intentionally unused; volatile blocks DCE.
    volatile std::size_t sink = predict_best_grid_index(
        model, pipeline, rec.shape, rec.threads, rec.op, rec.variant);
    (void)sink;
  }
  return timer.seconds() / repeats;
}

}  // namespace

TrainOutput train_and_select(const GatherData& gathered,
                             const TrainOptions& options) {
  if (gathered.records.size() < 10) {
    throw std::invalid_argument(
        "train_and_select: too few gathered shapes (" +
        std::to_string(gathered.records.size()) + ", need >= 10)");
  }
  // Reloaded timing files (install --reuse) can carry a damaged grid; the
  // same invariants try_load enforces on artefacts hold for training input,
  // and checking here fails the install instead of baking the damage into
  // an artefact that every later load rejects.
  if (gathered.thread_grid.empty()) {
    throw std::invalid_argument("train_and_select: empty thread grid");
  }
  for (std::size_t i = 0; i < gathered.thread_grid.size(); ++i) {
    if (gathered.thread_grid[i] < 1 ||
        (i > 0 && gathered.thread_grid[i] <= gathered.thread_grid[i - 1])) {
      throw std::invalid_argument(
          "train_and_select: thread grid must be positive and strictly "
          "increasing");
    }
  }
  TrainOutput out;
  out.thread_grid = gathered.thread_grid;
  out.max_threads = gathered.max_threads;
  out.platform = gathered.platform;

  GatherData train, test;
  gathered.split(options.test_fraction, options.seed, &train, &test);

  // Fit the preprocessing on the training rows only. The op-aware gather
  // emits the one-hot op / kernel columns (preprocess/features.h); mark them
  // categorical unless the caller configured its own set.
  preprocess::PipelineConfig pipeline_cfg = options.pipeline;
  const ml::Dataset train_raw = train.to_dataset();
  if (pipeline_cfg.categorical.empty() &&
      train_raw.n_features() == preprocess::kNumOpAwareFeatures) {
    pipeline_cfg.categorical = preprocess::categorical_indices();
  }
  out.pipeline = preprocess::Pipeline(pipeline_cfg);
  const ml::Dataset train_set = out.pipeline.fit_transform(train_raw);
  const ml::Dataset test_set = transform_rows(out.pipeline, test.to_dataset());

  const auto candidates =
      options.candidates.empty() ? paper_candidates() : options.candidates;

  double best_score = -1.0;
  std::unique_ptr<ml::Regressor> best_model;

  for (const auto& name : candidates) {
    ModelReport report;
    report.model_name = name;

    std::unique_ptr<ml::Regressor> fitted;
    if (options.tune) {
      auto proto = ml::make_model(name);
      auto gs = ml::grid_search_cv(*proto, train_set, ml::default_grid(name),
                                   options.cv_folds, options.seed);
      report.best_params = gs.best_params;
      report.cv_rmse = gs.best_rmse;
      fitted = std::move(gs.best_model);
    } else {
      fitted = ml::make_model(name);
      fitted->fit(train_set);
      report.best_params = fitted->get_params();
    }

    const auto pred = fitted->predict(test_set);
    report.test_rmse_norm = ml::normalized_rmse(test_set.labels(), pred);

    const SpeedupStats ideal = speedups(*fitted, out.pipeline, test, 0.0);
    report.ideal_mean_speedup = ideal.mean;
    report.ideal_agg_speedup = ideal.aggregate;

    const double eval_s = measure_eval_time_s(*fitted, out.pipeline, test);
    report.eval_time_us = eval_s * 1e6;

    const SpeedupStats est = speedups(*fitted, out.pipeline, test, eval_s);
    report.est_mean_speedup = est.mean;
    report.est_agg_speedup = est.aggregate;

    // Selection criterion: estimated *aggregate* speedup (total original
    // wall time / total ADSALA wall time), tie-broken by the mean. The paper
    // averages per-GEMM speedups; with our simulator's heavier pathological
    // tail the mean is dominated by a handful of extreme shapes, and the
    // aggregate is the robust version of the same criterion.
    const double score = report.est_agg_speedup + 1e-6 * report.est_mean_speedup;
    if (score > best_score) {
      best_score = score;
      out.selected = name;
      best_model = std::move(fitted);
    }
    out.reports.push_back(std::move(report));
  }

  out.model = std::move(best_model);
  return out;
}

}  // namespace adsala::core
