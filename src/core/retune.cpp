#include "core/retune.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "common/atomic_file.h"
#include "common/failpoint.h"
#include "core/adsala.h"
#include "core/install.h"
#include "core/shm_store.h"

namespace adsala::core {

namespace fs = std::filesystem;

namespace {

std::string version_path(const std::string& dir) { return dir + "/VERSION"; }

std::string retained_dir(const std::string& dir, std::uint64_t v) {
  return dir + "/versions/" + std::to_string(v);
}

Error write_version(const std::string& dir, std::uint64_t v) {
  return atomic_write_file(version_path(dir), std::to_string(v) + "\n");
}

bool retained_complete(const std::string& dir, std::uint64_t v) {
  return fs::exists(retained_dir(dir, v) + "/model.json") &&
         fs::exists(retained_dir(dir, v) + "/config.json");
}

/// Copies the current artefact pair into versions/<v>/ (overwrite).
Error retain_current(const std::string& dir, std::uint64_t v) {
  std::error_code ec;
  fs::create_directories(retained_dir(dir, v), ec);
  if (ec) {
    return Error{ErrorCode::kInternal,
                 retained_dir(dir, v) + ": " + ec.message()};
  }
  for (const char* name : {"model.json", "config.json"}) {
    fs::copy_file(dir + "/" + name, retained_dir(dir, v) + "/" + name,
                  fs::copy_options::overwrite_existing, ec);
    if (ec) {
      return Error{ErrorCode::kInternal,
                   dir + "/" + name + " -> versions/" + std::to_string(v) +
                       ": " + ec.message()};
    }
  }
  return Error{};
}

/// Adopts an unversioned directory: its current artefacts become version 1
/// (or the highest already-retained version, if versions/ predates VERSION).
/// Returns the current version.
Expected<std::uint64_t> ensure_versioned(const std::string& dir) {
  std::uint64_t v = artefact_version(dir);
  if (v != 0) return v;
  const auto retained = retained_artefact_versions(dir);
  v = retained.empty() ? 1 : retained.back();
  if (Error err = write_version(dir, v); !err.ok()) return err;
  if (!fs::exists(retained_dir(dir, v) + "/model.json")) {
    if (Error err = retain_current(dir, v); !err.ok()) return err;
  }
  return v;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Executor stand-in for the reuse_timings_csv install path: carries the
/// preserved platform name (the only thing install() asks of it when the
/// timing campaign is skipped) and refuses to measure.
class PlatformStubExecutor : public GemmExecutor {
 public:
  PlatformStubExecutor(std::string platform, int max_threads)
      : platform_(std::move(platform)), max_threads_(max_threads) {}

  std::string name() const override { return platform_; }
  int max_threads() const override { return max_threads_; }
  double measure(const simarch::GemmShape&, int, int) override {
    throw std::logic_error(
        "retune: the platform stub executor cannot measure (telemetry "
        "already carries the timings)");
  }

 private:
  std::string platform_;
  int max_threads_ = 0;
};

}  // namespace

GatherData telemetry_to_gather_data(std::span<const TelemetryRecord> records) {
  // (op code, m, k, n, elem, kernel code) -> curve under construction.
  using Key = std::tuple<int, long, long, long, int, int>;
  std::vector<Key> order;  // first-appearance order
  std::map<Key, std::map<int, std::uint64_t>> curves;  // threads -> min ns

  for (const TelemetryRecord& rec : records) {
    if (rec.measured_ns == 0 || rec.threads <= 0) continue;
    const Key key{blas::op_code(rec.op), rec.m,
                  rec.k,                 rec.n,
                  rec.elem_bytes,        static_cast<int>(rec.kernel)};
    auto [it, inserted] = curves.emplace(key, std::map<int, std::uint64_t>{});
    if (inserted) order.push_back(key);
    auto [at, fresh] = it->second.emplace(rec.threads, rec.measured_ns);
    if (!fresh) at->second = std::min(at->second, rec.measured_ns);
  }

  GatherData out;
  for (const Key& key : order) {
    GatherRecord rec;
    rec.op = *blas::op_from_code(std::get<0>(key));
    rec.shape = simarch::GemmShape{std::get<1>(key), std::get<2>(key),
                                   std::get<3>(key),
                                   static_cast<int>(std::get<4>(key))};
    rec.variant = static_cast<blas::kernels::Variant>(std::get<5>(key));
    for (const auto& [threads, ns] : curves[key]) {
      rec.threads.push_back(threads);
      rec.runtime.push_back(static_cast<double>(ns) * 1e-9);
    }
    out.records.push_back(std::move(rec));
  }
  // Mirror GatherData::load_csv's convention (first curve defines the grid)
  // so the in-memory data and its CSV round-trip train identically.
  if (!out.records.empty()) {
    out.thread_grid = out.records.front().threads;
    out.max_threads = out.thread_grid.back();
  }
  return out;
}

std::uint64_t artefact_version(const std::string& dir) {
  std::ifstream in(version_path(dir));
  std::uint64_t v = 0;
  if (in >> v) return v;
  return 0;
}

std::vector<std::uint64_t> retained_artefact_versions(const std::string& dir) {
  std::vector<std::uint64_t> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir + "/versions", ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.empty() ||
        name.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const std::uint64_t v = std::stoull(name);
    if (retained_complete(dir, v)) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Error promote_artefacts(const std::string& dir, const std::string& model_json,
                        const std::string& config_json,
                        std::uint64_t version) {
  failpoint::crash_if("promote-crash-after-stage");
  std::error_code ec;
  const std::string versions = dir + "/versions";
  fs::create_directories(versions, ec);
  if (ec) return Error{ErrorCode::kInternal, versions + ": " + ec.message()};

  // Phase 1 — durable retained copy. Built behind a same-directory tmp
  // name, fsynced, then renamed in: versions/<v> is either absent or
  // complete, never half-written.
  const std::string tmp = versions + "/" + std::to_string(version) + ".tmp." +
                          std::to_string(::getpid());
  fs::remove_all(tmp, ec);
  ec.clear();
  fs::create_directories(tmp, ec);
  if (ec) return Error{ErrorCode::kInternal, tmp + ": " + ec.message()};
  const std::pair<const char*, const std::string*> files[] = {
      {"model.json", &model_json}, {"config.json", &config_json}};
  for (const auto& [name, bytes] : files) {
    const std::string path = tmp + "/" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes->data(), static_cast<std::streamsize>(bytes->size()));
    out.close();
    if (!out) {
      return Error{ErrorCode::kInternal, path + ": cannot write staged copy"};
    }
    if (Error err = fsync_path(path); !err.ok()) return err;
  }
  if (Error err = fsync_dir(tmp); !err.ok()) return err;
  failpoint::crash_if("promote-crash-mid-retain");

  const std::string dst = retained_dir(dir, version);
  fs::remove_all(dst, ec);
  if (std::rename(tmp.c_str(), dst.c_str()) != 0) {
    return Error{ErrorCode::kInternal,
                 tmp + " -> " + dst + ": cannot rename retained copy in"};
  }
  if (Error err = fsync_dir(versions); !err.ok()) return err;
  failpoint::crash_if("promote-crash-after-retain");

  // Phase 2 — current mirror, one atomic replace per file. A crash between
  // the two leaves a torn mirror, but versions/<v> is already complete, so
  // recover_store() repairs the mirror from it and rolls VERSION forward.
  if (Error err = atomic_write_file(dir + "/model.json", model_json);
      !err.ok()) {
    return err;
  }
  failpoint::crash_if("promote-crash-mid-promote");
  if (Error err = atomic_write_file(dir + "/config.json", config_json);
      !err.ok()) {
    return err;
  }
  failpoint::crash_if("promote-crash-after-promote");

  // Phase 3 — VERSION last: the commit record.
  if (Error err = write_version(dir, version); !err.ok()) return err;
  failpoint::crash_if("promote-crash-after-version");
  return Error{};
}

Expected<RecoveryReport> recover_store(const std::string& dir) {
  RecoveryReport report;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Error{ErrorCode::kNotFound, dir + ": not a directory"};
  }

  // Garbage-collect crash debris: atomic_write_file temp names at the top
  // level, tmp/incomplete dirs under versions/, and an orphaned staging/
  // (retune rebuilds it from scratch every run).
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (is_tmp_debris_name(name)) {
      std::error_code rm;
      fs::remove_all(entry.path(), rm);
      if (!rm) ++report.debris_removed;
    }
  }
  if (fs::exists(dir + "/staging")) {
    std::error_code rm;
    fs::remove_all(dir + "/staging", rm);
    if (!rm) ++report.debris_removed;
  }
  const std::string versions = dir + "/versions";
  ec.clear();
  for (const auto& entry : fs::directory_iterator(versions, ec)) {
    const std::string name = entry.path().filename().string();
    const bool tmp_name = name.find(".tmp.") != std::string::npos;
    const bool numeric =
        !name.empty() &&
        name.find_first_not_of("0123456789") == std::string::npos;
    const bool incomplete =
        numeric && !retained_complete(dir, std::stoull(name));
    if (tmp_name || incomplete || (!numeric && !tmp_name)) {
      std::error_code rm;
      fs::remove_all(entry.path(), rm);
      if (!rm) ++report.debris_removed;
    }
  }

  const std::uint64_t recorded = artefact_version(dir);
  const auto retained = retained_artefact_versions(dir);
  const std::uint64_t highest = retained.empty() ? 0 : retained.back();
  if (recorded == 0 && highest == 0) return report;  // unversioned store

  if (highest > recorded) {
    // A promote completed its retained copy but crashed before (or during)
    // the mirror/VERSION writes: roll forward. The retained copy is the
    // durable truth; the mirror is rebuilt from it atomically.
    const std::string src = retained_dir(dir, highest);
    for (const char* name : {"model.json", "config.json"}) {
      if (Error err = atomic_write_file(dir + "/" + std::string(name),
                                        slurp(src + "/" + name));
          !err.ok()) {
        return err;
      }
    }
    if (Error err = write_version(dir, highest); !err.ok()) return err;
    report.repaired = true;
    report.version = highest;
    return report;
  }

  if (highest == recorded) {
    // Defensive: VERSION and retention agree, but verify the mirror really
    // carries those bytes (repairs any torn mirror outside our own crash
    // windows — a half-finished manual copy, say).
    const std::string src = retained_dir(dir, recorded);
    bool mismatch = false;
    for (const char* name : {"model.json", "config.json"}) {
      if (slurp(dir + "/" + std::string(name)) !=
          slurp(src + "/" + std::string(name))) {
        mismatch = true;
      }
    }
    if (mismatch) {
      for (const char* name : {"model.json", "config.json"}) {
        if (Error err = atomic_write_file(dir + "/" + std::string(name),
                                          slurp(src + "/" + name));
            !err.ok()) {
          return err;
        }
      }
      report.repaired = true;
    }
    report.version = recorded;
    return report;
  }

  // VERSION ahead of every retained copy. No crash of promote_artefacts
  // produces this (retention lands before VERSION moves); repair the
  // retention from the mirror when possible.
  if (fs::exists(dir + "/model.json") && fs::exists(dir + "/config.json")) {
    if (Error err = promote_artefacts(dir, slurp(dir + "/model.json"),
                                      slurp(dir + "/config.json"), recorded);
        !err.ok()) {
      return err;
    }
    report.repaired = true;
    report.version = recorded;
    return report;
  }
  return Error{ErrorCode::kValidationError,
               dir + ": VERSION names " + std::to_string(recorded) +
                   " but no retained copy or current mirror carries it"};
}

Expected<RetuneReport> retune(const RetuneOptions& options) {
  const std::string& dir = options.artefact_dir;
  // Resolve any crash debris from a previous torn promote before loading:
  // the mirror may be the thing that needs repairing.
  if (auto recovered = recover_store(dir);
      !recovered.ok() && recovered.error().code != ErrorCode::kNotFound) {
    return recovered.error();
  }
  auto current =
      AdsalaGemm::try_load(dir + "/model.json", dir + "/config.json");
  if (!current.ok()) return current.error();

  auto records = read_telemetry_log(options.telemetry_path);
  if (!records.ok()) return records.error();

  RetuneReport report;
  report.telemetry_records = records.value().size();
  report.previous_version = artefact_version(dir);
  report.new_version = report.previous_version;
  if (records.value().size() < options.min_records) {
    return Error{ErrorCode::kPreconditionFailed,
                 options.telemetry_path + ": " +
                     std::to_string(records.value().size()) +
                     " telemetry records, need at least " +
                     std::to_string(options.min_records) + " to retune"};
  }

  const auto snapshot = current.value().snapshot();
  report.drift =
      detect_drift(records.value(), *snapshot, options.drift);
  if (!report.drift.fired && !options.force) {
    return report;  // healthy model: nothing to do, by design
  }

  // Train on the same record window the detector judged, so "what fired"
  // and "what we retrain on" are the same traffic.
  std::span<const TelemetryRecord> window(records.value());
  if (options.drift.window > 0 && window.size() > options.drift.window) {
    window = window.subspan(window.size() - options.drift.window);
  }
  GatherData data = telemetry_to_gather_data(window);
  data.platform = current.value().platform();
  if (data.records.size() < 10) {
    return Error{ErrorCode::kPreconditionFailed,
                 options.telemetry_path + ": telemetry covers only " +
                     std::to_string(data.records.size()) +
                     " distinct shape curves; the trainer needs >= 10"};
  }

  auto prev = ensure_versioned(dir);
  if (!prev.ok()) return prev.error();
  report.previous_version = prev.value();
  if (Error err = retain_current(dir, prev.value()); !err.ok()) return err;

  // Stage the retrain next to the store: install() writes and verifies
  // there, so the *current* artefacts are replaced only by bytes the full
  // serving ladder has already accepted.
  const std::string staging = dir + "/staging";
  std::error_code ec;
  fs::create_directories(staging, ec);
  if (ec) return Error{ErrorCode::kInternal, staging + ": " + ec.message()};
  const std::string csv = staging + "/retune_timings.csv";
  data.save_csv(csv);

  PlatformStubExecutor stub(current.value().platform(),
                            current.value().max_threads());
  InstallOptions io;
  io.reuse_timings_csv = csv;
  io.train = options.train;
  io.output_dir = staging;
  io.save_raw_csv = false;
  io.publish_shm = options.publish_shm;
  io.publish_to = options.publish_to;
  try {
    const InstallReport ir = install(stub, io);
    report.selected_model = ir.trained.selected;
  } catch (const std::exception& e) {
    return Error{ErrorCode::kInternal, std::string("retune: ") + e.what()};
  }

  // Verified: promote the staged pair crash-safely (durable retained copy
  // -> atomic mirror replace -> VERSION last; see promote_artefacts).
  report.new_version = prev.value() + 1;
  if (Error err =
          promote_artefacts(dir, slurp(staging + "/model.json"),
                            slurp(staging + "/config.json"),
                            report.new_version);
      !err.ok()) {
    return err;
  }
  fs::remove_all(staging, ec);  // hygiene; recover_store would GC it anyway
  report.retrained = true;
  return report;
}

Expected<std::uint64_t> rollback(const std::string& dir,
                                 std::uint64_t version,
                                 const std::string& publish_shm,
                                 AdsalaGemm* publish_to) {
  if (auto recovered = recover_store(dir);
      !recovered.ok() && recovered.error().code != ErrorCode::kNotFound) {
    return recovered.error();
  }
  const std::string src = retained_dir(dir, version);
  if (!fs::exists(src + "/model.json") || !fs::exists(src + "/config.json")) {
    return Error{ErrorCode::kPreconditionFailed,
                 dir + ": version " + std::to_string(version) +
                     " is not retained under versions/"};
  }
  // Re-validate the retained copy before touching anything: a bit-rotted
  // retained version must fail loudly, not get republished.
  auto validated =
      AdsalaGemm::try_load(src + "/model.json", src + "/config.json");
  if (!validated.ok()) return validated.error();

  auto cur = ensure_versioned(dir);
  if (!cur.ok()) return cur.error();

  const std::uint64_t next = cur.value() + 1;
  if (Error err = promote_artefacts(dir, slurp(src + "/model.json"),
                                    slurp(src + "/config.json"), next);
      !err.ok()) {
    return err;
  }

  if (!publish_shm.empty()) {
    const Error err = publish_shm_region(publish_shm,
                                         slurp(dir + "/model.json"),
                                         slurp(dir + "/config.json"));
    if (!err.ok()) return err;
  }
  if (publish_to != nullptr) {
    publish_to->install(validated.value().snapshot());
  }
  return next;
}

}  // namespace adsala::core
