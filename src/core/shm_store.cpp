#include "core/shm_store.h"

#include <fcntl.h>
#include <sched.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/failpoint.h"

namespace adsala::core {

namespace {

Error io_error(const std::string& path, const std::string& what) {
  return Error{ErrorCode::kInternal,
               path + ": " + what + ": " + std::strerror(errno)};
}

/// Cross-process atomic view of the mapped generation counter.
std::atomic_ref<std::uint64_t> generation_ref(ShmHeader* header) {
  return std::atomic_ref<std::uint64_t>(header->generation);
}

struct Mapping {
  void* addr = MAP_FAILED;
  std::size_t bytes = 0;
  ~Mapping() {
    if (addr != MAP_FAILED) ::munmap(addr, bytes);
  }
};

struct LockedFd {
  int fd = -1;
  ~LockedFd() {
    if (fd >= 0) ::close(fd);  // close releases the flock
  }
};

/// One payload extent: [offset, offset + model_bytes + config_bytes) with
/// config packed directly after model.
struct Extent {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  bool valid() const { return end > begin; }
};

Extent active_extent(const ShmHeader& h) {
  Extent e;
  if (h.model_bytes + h.config_bytes == 0) return e;
  e.begin = std::min(h.model_offset, h.config_offset);
  e.end = std::max(h.model_offset + h.model_bytes,
                   h.config_offset + h.config_bytes);
  return e;
}

bool descriptors_sane(std::uint64_t model_off, std::uint64_t model_len,
                      std::uint64_t config_off, std::uint64_t config_len,
                      std::uint64_t mapped_bytes) {
  return model_off >= kShmHeaderBytes && config_off >= kShmHeaderBytes &&
         model_off + model_len <= mapped_bytes &&
         config_off + config_len <= mapped_bytes;
}

}  // namespace

std::uint64_t process_start_nonce(pid_t pid) {
  char path[64];
  std::snprintf(path, sizeof(path), "/proc/%d/stat", static_cast<int>(pid));
  FILE* f = std::fopen(path, "r");
  if (f == nullptr) return 0;
  char buf[4096];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) return 0;
  buf[n] = '\0';
  // Field 2 (comm) may contain spaces and parens; everything after the LAST
  // ')' is whitespace-separated, starting at field 3 (state). starttime is
  // field 22, i.e. the 20th token after the ')'.
  const char* p = std::strrchr(buf, ')');
  if (p == nullptr) return 0;
  ++p;
  unsigned long long value = 0;
  int field = 2;
  while (*p != '\0' && field < 22) {
    while (*p == ' ') ++p;
    const char* start = p;
    while (*p != '\0' && *p != ' ') ++p;
    ++field;
    if (field == 22) {
      value = std::strtoull(start, nullptr, 10);
      break;
    }
  }
  return static_cast<std::uint64_t>(value);
}

bool writer_alive(pid_t pid, std::uint64_t nonce) {
  if (pid <= 0) return false;
  if (::kill(pid, 0) != 0 && errno == ESRCH) return false;
  if (nonce == 0) return true;  // stamp unreadable at publish time: assume live
  const std::uint64_t current = process_start_nonce(pid);
  if (current == 0) return true;  // cannot read /proc now: assume live
  return current == nonce;        // mismatch = pid recycled, writer dead
}

Error publish_shm_region(const std::string& path,
                         const std::string& model_json,
                         const std::string& config_json) {
  LockedFd region;
  region.fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (region.fd < 0) return io_error(path, "cannot open shm region");
  // Writers (publishers and healers) are serialised by an exclusive flock
  // that the kernel drops even on SIGKILL; readers never take it.
  if (::flock(region.fd, LOCK_EX | LOCK_NB) != 0) {
    return Error{ErrorCode::kUnavailable,
                 path + ": another publisher holds the region lock"};
  }

  // Read the previous header (if any) so the generation stays monotonic and
  // the live payload's extent can be avoided. A predecessor that crashed
  // mid-publish (odd generation) left its *previous*-payload descriptors as
  // the only trustworthy ones.
  ShmHeader old{};
  bool have_old = false;
  std::uint64_t old_total = 0;
  struct stat st{};
  if (::fstat(region.fd, &st) == 0 &&
      st.st_size >= static_cast<off_t>(kShmHeaderBytes)) {
    if (::pread(region.fd, &old, sizeof(old), 0) == sizeof(old) &&
        old.magic == kShmMagic) {
      have_old = true;
      old_total = static_cast<std::uint64_t>(st.st_size);
    }
  }

  std::uint64_t prev_generation = 0;
  Extent keep;  // the payload bytes that must survive this publish
  std::uint64_t keep_model_off = 0, keep_model_len = 0;
  std::uint64_t keep_config_off = 0, keep_config_len = 0;
  std::uint64_t base_generation = 0;
  if (have_old) {
    base_generation = old.generation;
    if ((old.generation & 1) == 0) {
      // Healthy region: the active payload becomes the heal target.
      keep = active_extent(old);
      keep_model_off = old.model_offset;
      keep_model_len = old.model_bytes;
      keep_config_off = old.config_offset;
      keep_config_len = old.config_bytes;
      prev_generation = old.generation;
    } else if (old.prev_generation != 0 && (old.prev_generation & 1) == 0) {
      // Crashed predecessor: its active descriptors may be torn; adopt the
      // previous complete payload instead.
      ShmHeader prev_view = old;
      prev_view.model_offset = old.prev_model_offset;
      prev_view.model_bytes = old.prev_model_bytes;
      prev_view.config_offset = old.prev_config_offset;
      prev_view.config_bytes = old.prev_config_bytes;
      keep = active_extent(prev_view);
      keep_model_off = old.prev_model_offset;
      keep_model_len = old.prev_model_bytes;
      keep_config_off = old.prev_config_offset;
      keep_config_len = old.prev_config_bytes;
      prev_generation = old.prev_generation;
    }
    // else: first publish crashed — nothing to keep, fresh start.
  }

  // Slot choice: the new payload goes wherever the kept payload is not.
  const std::uint64_t payload = model_json.size() + config_json.size();
  std::uint64_t slot = kShmHeaderBytes;
  if (keep.valid() && slot + payload > keep.begin) slot = keep.end;
  const std::uint64_t model_offset = slot;
  const std::uint64_t config_offset = model_offset + model_json.size();
  const std::uint64_t total =
      std::max(old_total, config_offset + config_json.size());

  if (::ftruncate(region.fd, static_cast<off_t>(total)) != 0) {
    return io_error(path, "cannot size shm region");
  }
  Mapping map;
  map.bytes = total;
  map.addr =
      ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, region.fd, 0);
  if (map.addr == MAP_FAILED) return io_error(path, "cannot map shm region");

  auto* header = static_cast<ShmHeader*>(map.addr);
  auto* bytes = static_cast<std::uint8_t*>(map.addr);

  // Phase 1 (generation still even): identity stamp and heal target. A
  // crash anywhere in here leaves the active descriptors untouched and the
  // generation even — the region stays fully serveable.
  header->magic = kShmMagic;
  header->header_bytes = kShmHeaderBytes;
  header->writer_pid = static_cast<std::uint64_t>(::getpid());
  header->writer_nonce = process_start_nonce(::getpid());
  header->prev_model_offset = keep_model_off;
  header->prev_model_bytes = keep_model_len;
  header->prev_config_offset = keep_config_off;
  header->prev_config_bytes = keep_config_len;
  header->prev_generation = prev_generation;
  header->reserved = 0;
  header->reserved2 = 0;

  // Phase 2: seqlock publish. Generation goes odd, the payload lands in the
  // free slot, the descriptors flip to it, generation goes even. Readers
  // double-check the counter, so the worst a concurrent attach can observe
  // is "retry"; a crash in here is healed from the prev_* fields.
  const std::uint64_t busy = base_generation | 1;
  generation_ref(header).store(busy, std::memory_order_release);
  failpoint::crash_if("shm-crash-mid-publish");

  std::memcpy(bytes + model_offset, model_json.data(), model_json.size());
  std::memcpy(bytes + config_offset, config_json.data(), config_json.size());
  header->model_offset = model_offset;
  header->model_bytes = model_json.size();
  header->config_offset = config_offset;
  header->config_bytes = config_json.size();
  header->total_bytes = total;
  failpoint::crash_if("shm-crash-before-commit");

  generation_ref(header).store(busy + 1, std::memory_order_release);
  return Error{};
}

Error heal_shm_region(const std::string& path) {
  LockedFd region;
  region.fd = ::open(path.c_str(), O_RDWR);
  if (region.fd < 0) {
    return Error{ErrorCode::kNotFound, path + ": no shm region to heal"};
  }
  if (::flock(region.fd, LOCK_EX | LOCK_NB) != 0) {
    return Error{ErrorCode::kUnavailable,
                 path + ": region lock held (publisher or healer active)"};
  }
  struct stat st{};
  if (::fstat(region.fd, &st) != 0) {
    return io_error(path, "cannot stat shm region");
  }
  const auto mapped_bytes = static_cast<std::size_t>(st.st_size);
  if (mapped_bytes < kShmHeaderBytes) {
    return Error{ErrorCode::kParseError,
                 path + ": region smaller than its header (torn create?)"};
  }
  Mapping map;
  map.bytes = mapped_bytes;
  map.addr = ::mmap(nullptr, mapped_bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                    region.fd, 0);
  if (map.addr == MAP_FAILED) return io_error(path, "cannot map shm region");

  auto* header = static_cast<ShmHeader*>(map.addr);
  if (header->magic != kShmMagic) {
    return Error{ErrorCode::kValidationError,
                 path + ": bad shm magic (not an ADSALA region, or an "
                        "incompatible format version)"};
  }
  // Re-verify under the lock: a publisher may have finished (or a rival
  // healer run) between the caller's probe and our lock acquisition.
  const std::uint64_t g = generation_ref(header).load(std::memory_order_acquire);
  if ((g & 1) == 0) return Error{};  // healthy after all — nothing to do
  if (header->prev_generation == 0 || (header->prev_generation & 1) != 0 ||
      !descriptors_sane(header->prev_model_offset, header->prev_model_bytes,
                        header->prev_config_offset, header->prev_config_bytes,
                        mapped_bytes)) {
    return Error{ErrorCode::kUnavailable,
                 path + ": writer died during the first publish; no previous "
                        "payload to heal to"};
  }
  // Roll the descriptors back to the last complete payload and the
  // generation forward to the next even value. The crashed publisher wrote
  // its new bytes into the *other* slot, so these bytes are intact.
  header->model_offset = header->prev_model_offset;
  header->model_bytes = header->prev_model_bytes;
  header->config_offset = header->prev_config_offset;
  header->config_bytes = header->prev_config_bytes;
  header->writer_pid = 0;
  header->writer_nonce = 0;
  generation_ref(header).store(g + 1, std::memory_order_release);
  return Error{};
}

namespace {

Expected<ShmArtefacts> read_shm_region_impl(const std::string& path,
                                            bool allow_heal) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Error{ErrorCode::kNotFound, path + ": no shm region"};
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Error err = io_error(path, "cannot stat shm region");
    ::close(fd);
    return err;
  }
  const auto mapped_bytes = static_cast<std::size_t>(st.st_size);
  if (mapped_bytes < kShmHeaderBytes) {
    ::close(fd);
    return Error{ErrorCode::kParseError,
                 path + ": region smaller than its header (torn create?)"};
  }
  Mapping map;
  map.bytes = mapped_bytes;
  map.addr = ::mmap(nullptr, mapped_bytes, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map.addr == MAP_FAILED) return io_error(path, "cannot map shm region");

  auto* header = static_cast<ShmHeader*>(map.addr);
  // The magic (and the format version in its low byte) never changes after
  // creation, so it is checked outside the generation loop.
  if (header->magic != kShmMagic) {
    return Error{ErrorCode::kValidationError,
                 path + ": bad shm magic (not an ADSALA region, or an "
                        "incompatible format version)"};
  }

  const auto* bytes = static_cast<const std::uint8_t*>(map.addr);
  // atomic_ref wants a mutable lvalue even for pure loads; the mapping is
  // PROT_READ, and only load() is ever called through this view.
  auto generation = generation_ref(header);

  // The outer rounds absorb benign races with OTHER processes repairing the
  // region under our feet: a rival reader can heal a dead writer's region
  // (flipping the counter even) or hold the writer flock for the
  // microseconds its heal takes, exactly while this reader's seqlock budget
  // runs out. One more round then reads the healthy region; without it this
  // reader would report a transient error for a region that is fine.
  for (int round = 0; round < 4; ++round) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::uint64_t g1 = generation.load(std::memory_order_acquire);
      if (failpoint::triggered("shm-mid-swap")) g1 |= 1;  // forced mid-swap
      if (g1 & 1) {
        ::sched_yield();
        continue;
      }
      const std::uint64_t model_off = header->model_offset;
      const std::uint64_t model_len = header->model_bytes;
      const std::uint64_t config_off = header->config_offset;
      const std::uint64_t config_len = header->config_bytes;
      if (!descriptors_sane(model_off, model_len, config_off, config_len,
                            mapped_bytes)) {
        return Error{ErrorCode::kParseError,
                     path + ": payload bounds fall outside the region"};
      }
      ShmArtefacts out;
      out.model_json.assign(reinterpret_cast<const char*>(bytes + model_off),
                            model_len);
      out.config_json.assign(reinterpret_cast<const char*>(bytes + config_off),
                             config_len);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (generation.load(std::memory_order_acquire) != g1) continue;  // torn
      out.generation = g1;
      return out;
    }

    // Retry budget exhausted. Re-load the raw counter: when it is actually
    // even, either the odd observations were injected (shm-mid-swap
    // failpoint) — the classic "caught mid-swap" report stands and there is
    // nothing to heal — or the region just turned healthy (a publisher
    // committed, or a rival healer repaired it) and the next round reads it.
    const std::uint64_t raw = generation.load(std::memory_order_acquire);
    if ((raw & 1) == 0) {
      if (failpoint::triggered("shm-mid-swap")) break;
      continue;
    }
    if (!allow_heal) break;

    // Genuinely stuck odd: probe the stamped writer. A live publisher gets
    // the benefit of the doubt (kUnavailable, retry later); a dead one left
    // a tombstone — heal and re-read.
    const auto pid = static_cast<pid_t>(header->writer_pid);
    const std::uint64_t nonce = header->writer_nonce;
    if (writer_alive(pid, nonce)) {
      return Error{ErrorCode::kUnavailable,
                   path + ": publisher pid " + std::to_string(pid) +
                       " is mid-publish; retry later"};
    }
    const Error healed = heal_shm_region(path);
    if (healed.ok()) continue;  // healed (by us or a rival) — re-read
    if (healed.code == ErrorCode::kUnavailable &&
        header->prev_generation != 0 &&
        (header->prev_generation & 1) == 0) {
      // The tombstone is healable, so the kUnavailable can only mean the
      // flock is held by a rival healer (or a fresh publisher) that leaves
      // the region healthy behind it. Give it a beat and re-read.
      timespec pause{0, 1000000};  // 1 ms
      ::nanosleep(&pause, nullptr);
      continue;
    }
    return healed;  // unhealable (first-publish crash) or a real I/O error
  }
  return Error{ErrorCode::kUnavailable,
               path + ": generation counter caught mid-swap (publisher "
                      "active or crashed mid-publish); retry later"};
}

}  // namespace

Expected<ShmArtefacts> read_shm_region(const std::string& path) {
  return read_shm_region_impl(path, /*allow_heal=*/true);
}

}  // namespace adsala::core
