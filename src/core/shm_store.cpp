#include "core/shm_store.h"

#include <fcntl.h>
#include <sched.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace adsala::core {

namespace {

Error io_error(const std::string& path, const std::string& what) {
  return Error{ErrorCode::kInternal,
               path + ": " + what + ": " + std::strerror(errno)};
}

/// Cross-process atomic view of the mapped generation counter.
std::atomic_ref<std::uint64_t> generation_ref(ShmHeader* header) {
  return std::atomic_ref<std::uint64_t>(header->generation);
}

struct Mapping {
  void* addr = MAP_FAILED;
  std::size_t bytes = 0;
  ~Mapping() {
    if (addr != MAP_FAILED) ::munmap(addr, bytes);
  }
};

}  // namespace

Error publish_shm_region(const std::string& path,
                         const std::string& model_json,
                         const std::string& config_json) {
  const std::uint64_t model_offset = kShmHeaderBytes;
  const std::uint64_t config_offset = model_offset + model_json.size();
  const std::uint64_t total = config_offset + config_json.size();

  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return io_error(path, "cannot open shm region");

  // Read the previous generation (if any) before growing the file, so the
  // counter stays monotonic across publishes into a live region.
  std::uint64_t prev_generation = 0;
  struct stat st{};
  if (::fstat(fd, &st) == 0 &&
      st.st_size >= static_cast<off_t>(kShmHeaderBytes)) {
    ShmHeader old{};
    if (::pread(fd, &old, sizeof(old), 0) == sizeof(old) &&
        old.magic == kShmMagic) {
      prev_generation = old.generation;
    }
  }

  if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
    const Error err = io_error(path, "cannot size shm region");
    ::close(fd);
    return err;
  }
  Mapping map;
  map.bytes = total;
  map.addr = ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map.addr == MAP_FAILED) return io_error(path, "cannot map shm region");

  auto* header = static_cast<ShmHeader*>(map.addr);
  auto* bytes = static_cast<std::uint8_t*>(map.addr);

  // Seqlock publish: generation goes odd, the payload and the rest of the
  // header land, generation goes even. Readers double-check the counter, so
  // the worst a concurrent attach can observe is "retry".
  const std::uint64_t busy = (prev_generation | 1);
  generation_ref(header).store(busy, std::memory_order_release);

  header->magic = kShmMagic;
  header->header_bytes = kShmHeaderBytes;
  header->model_offset = model_offset;
  header->model_bytes = model_json.size();
  header->config_offset = config_offset;
  header->config_bytes = config_json.size();
  header->total_bytes = total;
  header->reserved = 0;
  std::memcpy(bytes + model_offset, model_json.data(), model_json.size());
  std::memcpy(bytes + config_offset, config_json.data(), config_json.size());

  generation_ref(header).store(busy + 1, std::memory_order_release);
  return Error{};
}

Expected<ShmArtefacts> read_shm_region(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Error{ErrorCode::kNotFound, path + ": no shm region"};
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Error err = io_error(path, "cannot stat shm region");
    ::close(fd);
    return err;
  }
  const auto mapped_bytes = static_cast<std::size_t>(st.st_size);
  if (mapped_bytes < kShmHeaderBytes) {
    ::close(fd);
    return Error{ErrorCode::kParseError,
                 path + ": region smaller than its header (torn create?)"};
  }
  Mapping map;
  map.bytes = mapped_bytes;
  map.addr = ::mmap(nullptr, mapped_bytes, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map.addr == MAP_FAILED) return io_error(path, "cannot map shm region");

  auto* header = static_cast<ShmHeader*>(map.addr);
  // The magic (and the format version in its low byte) never changes after
  // creation, so it is checked outside the generation loop.
  if (header->magic != kShmMagic) {
    return Error{ErrorCode::kValidationError,
                 path + ": bad shm magic (not an ADSALA region, or an "
                        "incompatible format version)"};
  }

  const auto* bytes = static_cast<const std::uint8_t*>(map.addr);
  // atomic_ref wants a mutable lvalue even for pure loads; the mapping is
  // PROT_READ, and only load() is ever called through this view.
  auto generation = generation_ref(header);

  for (int attempt = 0; attempt < 64; ++attempt) {
    std::uint64_t g1 = generation.load(std::memory_order_acquire);
    if (failpoint::triggered("shm-mid-swap")) g1 |= 1;  // forced mid-swap
    if (g1 & 1) {
      ::sched_yield();
      continue;
    }
    const std::uint64_t model_off = header->model_offset;
    const std::uint64_t model_len = header->model_bytes;
    const std::uint64_t config_off = header->config_offset;
    const std::uint64_t config_len = header->config_bytes;
    if (model_off < kShmHeaderBytes || config_off < kShmHeaderBytes ||
        model_off + model_len > mapped_bytes ||
        config_off + config_len > mapped_bytes) {
      return Error{ErrorCode::kParseError,
                   path + ": payload bounds fall outside the region"};
    }
    ShmArtefacts out;
    out.model_json.assign(reinterpret_cast<const char*>(bytes + model_off),
                          model_len);
    out.config_json.assign(reinterpret_cast<const char*>(bytes + config_off),
                           config_len);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (generation.load(std::memory_order_acquire) != g1) continue;  // torn
    out.generation = g1;
    return out;
  }
  return Error{ErrorCode::kUnavailable,
               path + ": generation counter caught mid-swap (publisher "
                      "active or crashed mid-publish); retry later"};
}

}  // namespace adsala::core
