#include "core/adsala.h"

#include "common/json.h"
#include "core/op_registry.h"

namespace adsala::core {

AdsalaGemm::AdsalaGemm(TrainOutput trained)
    : model_(std::move(trained.model)),
      pipeline_(std::move(trained.pipeline)),
      thread_grid_(std::move(trained.thread_grid)),
      max_threads_(trained.max_threads),
      platform_(std::move(trained.platform)),
      model_name_(std::move(trained.selected)) {}

AdsalaGemm::AdsalaGemm(const std::string& model_path,
                       const std::string& config_path) {
  const Json model_blob = read_json_file(model_path);
  model_ = ml::load_model(model_blob);
  model_name_ = model_blob.at("model").as_string();

  const Json config = read_json_file(config_path);
  pipeline_.load(config.at("pipeline"));
  platform_ = config.at("platform").as_string();
  max_threads_ = config.at("max_threads").as_int();
  thread_grid_.clear();
  for (const auto& v : config.at("thread_grid").as_array()) {
    thread_grid_.push_back(v.as_int());
  }
}

void AdsalaGemm::save(const std::string& model_path,
                      const std::string& config_path) const {
  write_json_file(model_path, model_->save());
  Json config;
  config["platform"] = Json(platform_);
  config["max_threads"] = Json(max_threads_);
  JsonArray grid;
  for (int p : thread_grid_) grid.emplace_back(p);
  config["thread_grid"] = Json(std::move(grid));
  config["pipeline"] = pipeline_.save();
  config["model_name"] = Json(model_name_);
  write_json_file(config_path, config);
}

bool AdsalaGemm::op_aware() const {
  // An op indicator must have *survived* preprocessing: a GEMM-only campaign
  // gathered with the op-aware schema drops the constant op_* columns at
  // fit time and therefore answers family queries exactly like the proxy.
  const auto& names = pipeline_.input_feature_names();
  for (std::size_t j : pipeline_.kept_features()) {
    if (names[j].rfind("op_", 0) == 0) return true;
  }
  return false;
}

int AdsalaGemm::select_threads_impl(blas::OpKind op, long m, long k, long n,
                                    int elem_bytes) {
  if (op == last_op_ && m == last_m_ && k == last_k_ && n == last_n_ &&
      elem_bytes == last_elem_) {
    return last_threads_;  // repeated-query fast path
  }
  simarch::GemmShape shape{m, k, n, elem_bytes};
  const std::size_t best =
      predict_best_grid_index(*model_, pipeline_, shape, thread_grid_, op);
  last_op_ = op;
  last_m_ = m;
  last_k_ = k;
  last_n_ = n;
  last_elem_ = elem_bytes;
  last_threads_ = thread_grid_[best];
  return last_threads_;
}

int AdsalaGemm::select_threads(blas::OpKind op, long x, long y, long z,
                               int elem_bytes) {
  // The registry canonicalises the family coordinates into the stored
  // equivalent-GEMM shape, which serves every schema tier: an op-aware
  // pipeline differentiates via the op_* one-hots, an older one sees the
  // plain GEMM-proxy query of the same shape.
  const simarch::GemmShape shape = op_traits(op).to_shape(x, y, z, elem_bytes);
  return select_threads_impl(op, shape.m, shape.k, shape.n, elem_bytes);
}

int AdsalaGemm::select_threads(long m, long k, long n, int elem_bytes) {
  return select_threads_impl(blas::OpKind::kGemm, m, k, n, elem_bytes);
}

int AdsalaGemm::select_threads_syrk(long n, long k, int elem_bytes) {
  return select_threads(blas::OpKind::kSyrk, n, k, 0, elem_bytes);
}

int AdsalaGemm::select_threads_trsm(long n, long m, int elem_bytes) {
  return select_threads(blas::OpKind::kTrsm, n, m, 0, elem_bytes);
}

int AdsalaGemm::select_threads_symm(long n, long m, int elem_bytes) {
  return select_threads(blas::OpKind::kSymm, n, m, 0, elem_bytes);
}

void AdsalaGemm::sgemm(int m, int n, int k, float alpha, const float* a,
                       int lda, const float* b, int ldb, float beta, float* c,
                       int ldc) {
  const int p = select_threads(m, k, n, 4);
  blas::sgemm(blas::Trans::kNo, blas::Trans::kNo, m, n, k, alpha, a, lda, b,
              ldb, beta, c, ldc, p);
}

void AdsalaGemm::dgemm(int m, int n, int k, double alpha, const double* a,
                       int lda, const double* b, int ldb, double beta,
                       double* c, int ldc) {
  const int p = select_threads(m, k, n, 8);
  blas::dgemm(blas::Trans::kNo, blas::Trans::kNo, m, n, k, alpha, a, lda, b,
              ldb, beta, c, ldc, p);
}

void AdsalaGemm::ssyrk(blas::Uplo uplo, int n, int k, float alpha,
                       const float* a, int lda, float beta, float* c,
                       int ldc) {
  const int p = select_threads_syrk(n, k, 4);
  blas::ssyrk(uplo, blas::Trans::kNo, n, k, alpha, a, lda, beta, c, ldc, p);
}

void AdsalaGemm::dsyrk(blas::Uplo uplo, int n, int k, double alpha,
                       const double* a, int lda, double beta, double* c,
                       int ldc) {
  const int p = select_threads_syrk(n, k, 8);
  blas::dsyrk(uplo, blas::Trans::kNo, n, k, alpha, a, lda, beta, c, ldc, p);
}

void AdsalaGemm::strsm(blas::Uplo uplo, blas::Trans trans, blas::Diag diag,
                       int n, int m, float alpha, const float* a, int lda,
                       float* b, int ldb) {
  const int p = select_threads_trsm(n, m, 4);
  blas::strsm(uplo, trans, diag, n, m, alpha, a, lda, b, ldb, p);
}

void AdsalaGemm::dtrsm(blas::Uplo uplo, blas::Trans trans, blas::Diag diag,
                       int n, int m, double alpha, const double* a, int lda,
                       double* b, int ldb) {
  const int p = select_threads_trsm(n, m, 8);
  blas::dtrsm(uplo, trans, diag, n, m, alpha, a, lda, b, ldb, p);
}

void AdsalaGemm::ssymm(blas::Uplo uplo, int n, int m, float alpha,
                       const float* a, int lda, const float* b, int ldb,
                       float beta, float* c, int ldc) {
  const int p = select_threads_symm(n, m, 4);
  blas::ssymm(uplo, n, m, alpha, a, lda, b, ldb, beta, c, ldc, p);
}

void AdsalaGemm::dsymm(blas::Uplo uplo, int n, int m, double alpha,
                       const double* a, int lda, const double* b, int ldb,
                       double beta, double* c, int ldc) {
  const int p = select_threads_symm(n, m, 8);
  blas::dsymm(uplo, n, m, alpha, a, lda, b, ldb, beta, c, ldc, p);
}

}  // namespace adsala::core
