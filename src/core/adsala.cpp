#include "core/adsala.h"

#include <cmath>
#include <stdexcept>
#include <thread>

#include "common/failpoint.h"
#include "common/json.h"
#include "core/executor.h"
#include "core/op_registry.h"
#include "preprocess/features.h"

namespace adsala::core {

namespace {

/// Format stamps written by save() and validated by try_load(). Absent
/// stamps are accepted (every artefact before this PR lacks them — the
/// schema-width tiers disambiguate those); a *wrong* stamp means the file
/// is from an incompatible future version and must be rejected rather than
/// half-decoded.
constexpr const char* kModelFormat = "adsala/model/v1";
constexpr const char* kConfigFormat = "adsala/config/v1";

Error validation_error(const std::string& path, const std::string& what) {
  return Error{ErrorCode::kValidationError, path + ": " + what};
}

/// Rejects any non-finite number in an artefact blob. A NaN model weight
/// serialises as JSON null (the writer has no NaN literal), so null is
/// rejected too — model blobs contain no legitimate nulls.
bool all_finite(const Json& blob) {
  if (blob.is_null()) return false;
  if (blob.is_number()) return std::isfinite(blob.as_number());
  if (blob.is_array()) {
    for (const auto& v : blob.as_array()) {
      if (!all_finite(v)) return false;
    }
    return true;
  }
  if (blob.is_object()) {
    for (const auto& [key, value] : blob.as_object()) {
      (void)key;
      if (!all_finite(value)) return false;
    }
    return true;
  }
  return true;  // bools / strings carry no numeric payload
}

/// Failpoint hook: smuggles a NaN into the blob's first numeric array leaf
/// (a corrupt weight the validation walk must catch). Returns true when a
/// leaf was found.
bool inject_nan(Json& blob) {
  if (blob.is_array()) {
    for (auto& v : blob.as_array()) {
      if (v.is_number()) {
        v = Json(std::nan(""));
        return true;
      }
      if (inject_nan(v)) return true;
    }
    return false;
  }
  if (blob.is_object()) {
    for (auto& [key, value] : blob.as_object()) {
      (void)key;
      if (inject_nan(value)) return true;
    }
  }
  return false;
}

/// True when `width` is one of the known fitted-schema widths: the PR-1
/// numeric-only 17, or an op-aware tier between the PR-2 floor (21) and the
/// current full schema. Anything else is an artefact from an incompatible
/// build and must not be served (make_query_features would build garbage
/// rows for it).
bool known_schema_width(std::size_t width) {
  return width == preprocess::kNumFeatures ||
         (width >= preprocess::kNumLegacyOpAwareFeatures &&
          width <= preprocess::kNumOpAwareFeatures);
}

}  // namespace

const char* serving_mode_name(ServingMode mode) {
  switch (mode) {
    case ServingMode::kModelServed: return "model";
    case ServingMode::kGemmProxy: return "gemm_proxy";
    case ServingMode::kHeuristicFallback: return "heuristic";
  }
  return "heuristic";
}

AdsalaGemm::AdsalaGemm(TrainOutput trained)
    : model_(std::move(trained.model)),
      pipeline_(std::move(trained.pipeline)),
      thread_grid_(std::move(trained.thread_grid)),
      max_threads_(trained.max_threads),
      platform_(std::move(trained.platform)),
      model_name_(std::move(trained.selected)) {}

AdsalaGemm::AdsalaGemm(const std::string& model_path,
                       const std::string& config_path) {
  auto loaded = try_load(model_path, config_path);
  if (!loaded.ok()) throw std::runtime_error(loaded.error().message);
  *this = std::move(loaded).value();
}

Expected<AdsalaGemm> AdsalaGemm::try_load(const std::string& model_path,
                                          const std::string& config_path) {
  // --- decode both files (kNotFound / kParseError, path-qualified) -------
  auto model_blob = try_read_json_file(model_path);
  if (!model_blob.ok()) return model_blob.error();
  auto config = try_read_json_file(config_path);
  if (!config.ok()) return config.error();

  if (failpoint::triggered("model-nan-weight")) {
    inject_nan(model_blob.value());
  }

  // --- config validation (kValidationError) ------------------------------
  const Json& cfg = config.value();
  if (!cfg.is_object()) {
    return validation_error(config_path, "config root is not an object");
  }
  if (cfg.contains("format") &&
      (!cfg.at("format").is_string() ||
       cfg.at("format").as_string() != kConfigFormat)) {
    return validation_error(config_path, "unknown config format stamp");
  }
  for (const char* key : {"platform", "max_threads", "thread_grid",
                          "pipeline"}) {
    if (!cfg.contains(key)) {
      return validation_error(config_path,
                              std::string("missing field '") + key + "'");
    }
  }
  if (!cfg.at("platform").is_string() ||
      !cfg.at("max_threads").is_number() ||
      !cfg.at("thread_grid").is_array() || !cfg.at("pipeline").is_object()) {
    return validation_error(config_path, "field with wrong type");
  }
  const int max_threads = cfg.at("max_threads").as_int();
  if (max_threads < 1) {
    return validation_error(config_path, "max_threads must be positive");
  }
  const auto& grid_json = cfg.at("thread_grid").as_array();
  if (grid_json.empty()) {
    return validation_error(config_path, "thread_grid is empty");
  }
  std::vector<int> thread_grid;
  thread_grid.reserve(grid_json.size());
  for (const auto& v : grid_json) {
    if (!v.is_number() || !std::isfinite(v.as_number()) ||
        v.as_number() != std::floor(v.as_number())) {
      return validation_error(config_path,
                              "thread_grid entry is not an integer");
    }
    const int p = v.as_int();
    if (p < 1) {
      return validation_error(config_path,
                              "thread_grid entry must be positive");
    }
    if (!thread_grid.empty() && p <= thread_grid.back()) {
      return validation_error(config_path,
                              "thread_grid must be strictly increasing");
    }
    thread_grid.push_back(p);
  }
  if (thread_grid.back() > max_threads) {
    return validation_error(config_path,
                            "thread_grid exceeds max_threads");
  }

  preprocess::Pipeline pipeline;
  try {
    pipeline.load(cfg.at("pipeline"));
  } catch (const std::exception&) {
    return validation_error(config_path, "malformed pipeline section");
  }
  if (!known_schema_width(pipeline.n_input_features())) {
    return validation_error(
        config_path,
        "unknown pipeline schema width " +
            std::to_string(pipeline.n_input_features()) +
            " (known: 17, 21.." +
            std::to_string(preprocess::kNumOpAwareFeatures) + ")");
  }

  // --- model validation (kValidationError) --------------------------------
  const Json& blob = model_blob.value();
  if (!blob.is_object() || !blob.contains("model") ||
      !blob.at("model").is_string()) {
    return validation_error(model_path, "missing 'model' name field");
  }
  if (blob.contains("format") &&
      (!blob.at("format").is_string() ||
       blob.at("format").as_string() != kModelFormat)) {
    return validation_error(model_path, "unknown model format stamp");
  }
  if (!all_finite(blob)) {
    return validation_error(
        model_path, "non-finite model weight (NaN serialises as null)");
  }
  std::unique_ptr<ml::Regressor> model;
  try {
    model = ml::load_model(blob);
  } catch (const std::exception& e) {
    return validation_error(model_path, e.what());
  }

  // --- all checks passed: construct ---------------------------------------
  AdsalaGemm runtime;
  runtime.model_ = std::move(model);
  runtime.model_name_ = blob.at("model").as_string();
  runtime.pipeline_ = std::move(pipeline);
  runtime.platform_ = cfg.at("platform").as_string();
  runtime.max_threads_ = max_threads;
  runtime.thread_grid_ = std::move(thread_grid);
  return runtime;
}

AdsalaGemm AdsalaGemm::load_or_fallback(const std::string& model_path,
                                        const std::string& config_path,
                                        Error* why) {
  auto loaded = try_load(model_path, config_path);
  if (loaded.ok()) {
    if (why != nullptr) *why = Error{};
    return std::move(loaded).value();
  }
  if (why != nullptr) *why = loaded.error();
  return heuristic_fallback();
}

AdsalaGemm AdsalaGemm::heuristic_fallback(int max_threads) {
  const int hw = max_threads > 0
                     ? max_threads
                     : static_cast<int>(
                           std::max(1u, std::thread::hardware_concurrency()));
  // A host-shaped single-socket topology over the default cost literals:
  // the analytic model then reproduces the qualitative occupancy rule
  // (memory-bound small shapes want few threads, compute-bound large ones
  // want the machine) without any trained artefact.
  simarch::CpuTopology topo;
  topo.name = "heuristic";
  topo.sockets = 1;
  topo.numa_per_socket = 1;
  topo.smt_per_core = hw >= 2 ? 2 : 1;
  topo.cores_per_socket = std::max(1, hw / topo.smt_per_core);

  AdsalaGemm runtime;
  runtime.fallback_model_ = std::make_unique<simarch::MachineModel>(topo);
  runtime.max_threads_ = hw;
  runtime.thread_grid_ = default_thread_grid(hw);
  runtime.platform_ = "heuristic-fallback";
  runtime.model_name_ = "heuristic";
  return runtime;
}

ServingMode AdsalaGemm::serving_mode(blas::OpKind op) const {
  if (model_ == nullptr) return ServingMode::kHeuristicFallback;
  if (op == blas::OpKind::kGemm) return ServingMode::kModelServed;
  if (op_aware() && preprocess::op_served_first_class(
                        op, pipeline_.n_input_features())) {
    return ServingMode::kModelServed;
  }
  return ServingMode::kGemmProxy;
}

void AdsalaGemm::save(const std::string& model_path,
                      const std::string& config_path) const {
  if (model_ == nullptr) {
    throw std::logic_error(
        "AdsalaGemm::save: heuristic fallback has no artefacts to save");
  }
  Json model_blob = model_->save();
  model_blob["format"] = Json(kModelFormat);
  write_json_file(model_path, model_blob);
  Json config;
  config["format"] = Json(kConfigFormat);
  config["platform"] = Json(platform_);
  config["max_threads"] = Json(max_threads_);
  JsonArray grid;
  for (int p : thread_grid_) grid.emplace_back(p);
  config["thread_grid"] = Json(std::move(grid));
  config["pipeline"] = pipeline_.save();
  config["model_name"] = Json(model_name_);
  write_json_file(config_path, config);
}

bool AdsalaGemm::op_aware() const {
  // An op indicator must have *survived* preprocessing: a GEMM-only campaign
  // gathered with the op-aware schema drops the constant op_* columns at
  // fit time and therefore answers family queries exactly like the proxy.
  if (model_ == nullptr) return false;
  const auto& names = pipeline_.input_feature_names();
  for (std::size_t j : pipeline_.kept_features()) {
    if (names[j].rfind("op_", 0) == 0) return true;
  }
  return false;
}

int AdsalaGemm::heuristic_threads(blas::OpKind op,
                                  const simarch::GemmShape& shape) {
  // Deterministic analytic argmin over the grid, through the op's registry
  // cost model on the equivalent-GEMM shape — the same literals the
  // simulated platforms are timed with, so the occupancy rule inherits
  // their qualitative behaviour (skinny shapes cap out early, big cubes
  // take the machine).
  const simarch::OpCostModel& cost = op_traits(op).cost;
  simarch::ExecPolicy policy;
  int best = thread_grid_.front();
  double best_time = 0.0;
  for (std::size_t i = 0; i < thread_grid_.size(); ++i) {
    policy.nthreads = thread_grid_[i];
    const double t = fallback_model_->time_op(shape, policy, cost).total();
    if (i == 0 || t < best_time) {
      best_time = t;
      best = thread_grid_[i];
    }
  }
  return best;
}

int AdsalaGemm::select_threads_impl(blas::OpKind op, long m, long k, long n,
                                    int elem_bytes) {
  if (op == last_op_ && m == last_m_ && k == last_k_ && n == last_n_ &&
      elem_bytes == last_elem_) {
    return last_threads_;  // repeated-query fast path
  }
  simarch::GemmShape shape{m, k, n, elem_bytes};
  int threads = 0;
  if (model_ != nullptr) {
    const std::size_t best =
        predict_best_grid_index(*model_, pipeline_, shape, thread_grid_, op);
    threads = thread_grid_[best];
  } else {
    threads = heuristic_threads(op, shape);  // degraded serving mode
  }
  last_op_ = op;
  last_m_ = m;
  last_k_ = k;
  last_n_ = n;
  last_elem_ = elem_bytes;
  last_threads_ = threads;
  return last_threads_;
}

int AdsalaGemm::select_threads(blas::OpKind op, long x, long y, long z,
                               int elem_bytes) {
  // The registry canonicalises the family coordinates into the stored
  // equivalent-GEMM shape, which serves every schema tier: an op-aware
  // pipeline differentiates via the op_* one-hots, an older one sees the
  // plain GEMM-proxy query of the same shape, and the heuristic fallback
  // applies its occupancy rule to the same equivalent-GEMM work.
  const simarch::GemmShape shape = op_traits(op).to_shape(x, y, z, elem_bytes);
  return select_threads_impl(op, shape.m, shape.k, shape.n, elem_bytes);
}

int AdsalaGemm::select_threads(long m, long k, long n, int elem_bytes) {
  return select_threads_impl(blas::OpKind::kGemm, m, k, n, elem_bytes);
}

int AdsalaGemm::select_threads_syrk(long n, long k, int elem_bytes) {
  return select_threads(blas::OpKind::kSyrk, n, k, 0, elem_bytes);
}

int AdsalaGemm::select_threads_trsm(long n, long m, int elem_bytes) {
  return select_threads(blas::OpKind::kTrsm, n, m, 0, elem_bytes);
}

int AdsalaGemm::select_threads_symm(long n, long m, int elem_bytes) {
  return select_threads(blas::OpKind::kSymm, n, m, 0, elem_bytes);
}

void AdsalaGemm::sgemm(int m, int n, int k, float alpha, const float* a,
                       int lda, const float* b, int ldb, float beta, float* c,
                       int ldc) {
  const int p = select_threads(m, k, n, 4);
  blas::sgemm(blas::Trans::kNo, blas::Trans::kNo, m, n, k, alpha, a, lda, b,
              ldb, beta, c, ldc, p);
}

void AdsalaGemm::dgemm(int m, int n, int k, double alpha, const double* a,
                       int lda, const double* b, int ldb, double beta,
                       double* c, int ldc) {
  const int p = select_threads(m, k, n, 8);
  blas::dgemm(blas::Trans::kNo, blas::Trans::kNo, m, n, k, alpha, a, lda, b,
              ldb, beta, c, ldc, p);
}

void AdsalaGemm::ssyrk(blas::Uplo uplo, int n, int k, float alpha,
                       const float* a, int lda, float beta, float* c,
                       int ldc) {
  const int p = select_threads_syrk(n, k, 4);
  blas::ssyrk(uplo, blas::Trans::kNo, n, k, alpha, a, lda, beta, c, ldc, p);
}

void AdsalaGemm::dsyrk(blas::Uplo uplo, int n, int k, double alpha,
                       const double* a, int lda, double beta, double* c,
                       int ldc) {
  const int p = select_threads_syrk(n, k, 8);
  blas::dsyrk(uplo, blas::Trans::kNo, n, k, alpha, a, lda, beta, c, ldc, p);
}

void AdsalaGemm::strsm(blas::Uplo uplo, blas::Trans trans, blas::Diag diag,
                       int n, int m, float alpha, const float* a, int lda,
                       float* b, int ldb) {
  const int p = select_threads_trsm(n, m, 4);
  blas::strsm(uplo, trans, diag, n, m, alpha, a, lda, b, ldb, p);
}

void AdsalaGemm::dtrsm(blas::Uplo uplo, blas::Trans trans, blas::Diag diag,
                       int n, int m, double alpha, const double* a, int lda,
                       double* b, int ldb) {
  const int p = select_threads_trsm(n, m, 8);
  blas::dtrsm(uplo, trans, diag, n, m, alpha, a, lda, b, ldb, p);
}

void AdsalaGemm::ssymm(blas::Uplo uplo, int n, int m, float alpha,
                       const float* a, int lda, const float* b, int ldb,
                       float beta, float* c, int ldc) {
  const int p = select_threads_symm(n, m, 4);
  blas::ssymm(uplo, n, m, alpha, a, lda, b, ldb, beta, c, ldc, p);
}

void AdsalaGemm::dsymm(blas::Uplo uplo, int n, int m, double alpha,
                       const double* a, int lda, const double* b, int ldb,
                       double beta, double* c, int ldc) {
  const int p = select_threads_symm(n, m, 8);
  blas::dsymm(uplo, n, m, alpha, a, lda, b, ldb, beta, c, ldc, p);
}

}  // namespace adsala::core
