#include "core/adsala.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>

#include "blas/kernels/dispatch.h"
#include "common/failpoint.h"
#include "common/json.h"
#include "core/executor.h"
#include "core/op_registry.h"
#include "core/shm_store.h"
#include "preprocess/features.h"

namespace adsala::core {

namespace {

/// Format stamps written by save() and validated by try_load(). Absent
/// stamps are accepted (every artefact before this PR lacks them — the
/// schema-width tiers disambiguate those); a *wrong* stamp means the file
/// is from an incompatible future version and must be rejected rather than
/// half-decoded.
constexpr const char* kModelFormat = "adsala/model/v1";
constexpr const char* kConfigFormat = "adsala/config/v1";

Error validation_error(const std::string& path, const std::string& what) {
  return Error{ErrorCode::kValidationError, path + ": " + what};
}

/// Rejects any non-finite number in an artefact blob. A NaN model weight
/// serialises as JSON null (the writer has no NaN literal), so null is
/// rejected too — model blobs contain no legitimate nulls.
bool all_finite(const Json& blob) {
  if (blob.is_null()) return false;
  if (blob.is_number()) return std::isfinite(blob.as_number());
  if (blob.is_array()) {
    for (const auto& v : blob.as_array()) {
      if (!all_finite(v)) return false;
    }
    return true;
  }
  if (blob.is_object()) {
    for (const auto& [key, value] : blob.as_object()) {
      (void)key;
      if (!all_finite(value)) return false;
    }
    return true;
  }
  return true;  // bools / strings carry no numeric payload
}

/// Failpoint hook: smuggles a NaN into the blob's first numeric array leaf
/// (a corrupt weight the validation walk must catch). Returns true when a
/// leaf was found.
bool inject_nan(Json& blob) {
  if (blob.is_array()) {
    for (auto& v : blob.as_array()) {
      if (v.is_number()) {
        v = Json(std::nan(""));
        return true;
      }
      if (inject_nan(v)) return true;
    }
    return false;
  }
  if (blob.is_object()) {
    for (auto& [key, value] : blob.as_object()) {
      (void)key;
      if (inject_nan(value)) return true;
    }
  }
  return false;
}

/// True when `width` is one of the known fitted-schema widths: the PR-1
/// numeric-only 17, or an op-aware tier between the PR-2 floor (21) and the
/// current full schema. Anything else is an artefact from an incompatible
/// build and must not be served (make_query_features would build garbage
/// rows for it).
bool known_schema_width(std::size_t width) {
  return width == preprocess::kNumFeatures ||
         (width >= preprocess::kNumLegacyOpAwareFeatures &&
          width <= preprocess::kNumOpAwareFeatures);
}

/// The shared validation ladder: decoded blobs in, a ready-to-publish
/// snapshot out. try_load feeds it file contents, try_attach feeds it the
/// payloads copied out of a shared-memory region; `model_label` /
/// `config_label` qualify the error messages with wherever the bytes came
/// from (a path, or "<shm>/model.json").
Expected<std::shared_ptr<ServingSnapshot>> try_load_blobs(
    Json model_blob, const Json& cfg, const std::string& model_label,
    const std::string& config_label) {
  if (failpoint::triggered("model-nan-weight")) {
    inject_nan(model_blob);
  }

  // --- config validation (kValidationError) ------------------------------
  if (!cfg.is_object()) {
    return validation_error(config_label, "config root is not an object");
  }
  if (cfg.contains("format") &&
      (!cfg.at("format").is_string() ||
       cfg.at("format").as_string() != kConfigFormat)) {
    return validation_error(config_label, "unknown config format stamp");
  }
  for (const char* key : {"platform", "max_threads", "thread_grid",
                          "pipeline"}) {
    if (!cfg.contains(key)) {
      return validation_error(config_label,
                              std::string("missing field '") + key + "'");
    }
  }
  if (!cfg.at("platform").is_string() ||
      !cfg.at("max_threads").is_number() ||
      !cfg.at("thread_grid").is_array() || !cfg.at("pipeline").is_object()) {
    return validation_error(config_label, "field with wrong type");
  }
  const int max_threads = cfg.at("max_threads").as_int();
  if (max_threads < 1) {
    return validation_error(config_label, "max_threads must be positive");
  }
  const auto& grid_json = cfg.at("thread_grid").as_array();
  if (grid_json.empty()) {
    return validation_error(config_label, "thread_grid is empty");
  }
  std::vector<int> thread_grid;
  thread_grid.reserve(grid_json.size());
  for (const auto& v : grid_json) {
    if (!v.is_number() || !std::isfinite(v.as_number()) ||
        v.as_number() != std::floor(v.as_number())) {
      return validation_error(config_label,
                              "thread_grid entry is not an integer");
    }
    const int p = v.as_int();
    if (p < 1) {
      return validation_error(config_label,
                              "thread_grid entry must be positive");
    }
    if (!thread_grid.empty() && p <= thread_grid.back()) {
      return validation_error(config_label,
                              "thread_grid must be strictly increasing");
    }
    thread_grid.push_back(p);
  }
  if (thread_grid.back() > max_threads) {
    return validation_error(config_label,
                            "thread_grid exceeds max_threads");
  }

  preprocess::Pipeline pipeline;
  try {
    pipeline.load(cfg.at("pipeline"));
  } catch (const std::exception&) {
    return validation_error(config_label, "malformed pipeline section");
  }
  if (!known_schema_width(pipeline.n_input_features())) {
    return validation_error(
        config_label,
        "unknown pipeline schema width " +
            std::to_string(pipeline.n_input_features()) +
            " (known: 17, 21.." +
            std::to_string(preprocess::kNumOpAwareFeatures) + ")");
  }

  // --- model validation (kValidationError) --------------------------------
  if (!model_blob.is_object() || !model_blob.contains("model") ||
      !model_blob.at("model").is_string()) {
    return validation_error(model_label, "missing 'model' name field");
  }
  if (model_blob.contains("format") &&
      (!model_blob.at("format").is_string() ||
       model_blob.at("format").as_string() != kModelFormat)) {
    return validation_error(model_label, "unknown model format stamp");
  }
  if (!all_finite(model_blob)) {
    return validation_error(
        model_label, "non-finite model weight (NaN serialises as null)");
  }
  std::unique_ptr<ml::Regressor> model;
  try {
    model = ml::load_model(model_blob);
  } catch (const std::exception& e) {
    return validation_error(model_label, e.what());
  }

  // --- all checks passed: freeze a snapshot -------------------------------
  auto snap = std::make_shared<ServingSnapshot>();
  snap->version = 1;
  snap->model = std::shared_ptr<const ml::Regressor>(std::move(model));
  snap->model_name = model_blob.at("model").as_string();
  snap->pipeline = std::move(pipeline);
  snap->platform = cfg.at("platform").as_string();
  snap->max_threads = max_threads;
  snap->thread_grid = std::move(thread_grid);
  return snap;
}

/// Freezes a finished training run into a publishable snapshot.
std::shared_ptr<ServingSnapshot> snapshot_from(TrainOutput trained) {
  auto snap = std::make_shared<ServingSnapshot>();
  snap->version = 1;
  snap->model =
      std::shared_ptr<const ml::Regressor>(std::move(trained.model));
  snap->pipeline = std::move(trained.pipeline);
  snap->thread_grid = std::move(trained.thread_grid);
  snap->max_threads = trained.max_threads;
  snap->platform = std::move(trained.platform);
  snap->model_name = std::move(trained.selected);
  return snap;
}

}  // namespace

AdsalaGemm::AdsalaGemm(std::shared_ptr<const ServingSnapshot> first) {
  generations_.push_back(std::move(first));
  active_.store(generations_.back().get(), std::memory_order_release);
}

AdsalaGemm::AdsalaGemm(TrainOutput trained)
    : AdsalaGemm(snapshot_from(std::move(trained))) {}

AdsalaGemm::AdsalaGemm(const std::string& model_path,
                       const std::string& config_path) {
  auto loaded = try_load(model_path, config_path);
  if (!loaded.ok()) throw std::runtime_error(loaded.error().message);
  *this = std::move(loaded).value();
}

AdsalaGemm::AdsalaGemm(AdsalaGemm&& other) noexcept
    : generations_(std::move(other.generations_)),
      samplers_(std::move(other.samplers_)) {
  active_.store(other.active_.load(std::memory_order_acquire),
                std::memory_order_release);
  other.active_.store(nullptr, std::memory_order_release);
  sampler_.store(other.sampler_.load(std::memory_order_acquire),
                 std::memory_order_release);
  other.sampler_.store(nullptr, std::memory_order_release);
}

AdsalaGemm& AdsalaGemm::operator=(AdsalaGemm&& other) noexcept {
  if (this != &other) {
    generations_ = std::move(other.generations_);
    samplers_ = std::move(other.samplers_);
    active_.store(other.active_.load(std::memory_order_acquire),
                  std::memory_order_release);
    other.active_.store(nullptr, std::memory_order_release);
    sampler_.store(other.sampler_.load(std::memory_order_acquire),
                   std::memory_order_release);
    other.sampler_.store(nullptr, std::memory_order_release);
  }
  return *this;
}

Expected<AdsalaGemm> AdsalaGemm::try_load(const std::string& model_path,
                                          const std::string& config_path) {
  // Decode both files (kNotFound / kParseError, path-qualified), then run
  // the shared validation ladder.
  auto model_blob = try_read_json_file(model_path);
  if (!model_blob.ok()) return model_blob.error();
  auto config = try_read_json_file(config_path);
  if (!config.ok()) return config.error();

  auto snap = try_load_blobs(std::move(model_blob).value(), config.value(),
                             model_path, config_path);
  if (!snap.ok()) return snap.error();
  return AdsalaGemm(std::move(snap).value());
}

Expected<AdsalaGemm> AdsalaGemm::try_attach(const std::string& shm_path) {
  auto artefacts = read_shm_region(shm_path);
  if (!artefacts.ok()) return artefacts.error();

  // The region carries raw bytes; decode failures here mean a torn or
  // corrupted payload (the seqlock makes that unlikely but a crashed
  // publisher can leave one behind).
  Json model_blob;
  Json config;
  try {
    model_blob = Json::parse(artefacts.value().model_json);
  } catch (const std::exception& e) {
    return Error{ErrorCode::kParseError,
                 shm_path + "/model: " + e.what()};
  }
  try {
    config = Json::parse(artefacts.value().config_json);
  } catch (const std::exception& e) {
    return Error{ErrorCode::kParseError,
                 shm_path + "/config: " + e.what()};
  }

  auto snap = try_load_blobs(std::move(model_blob), config,
                             shm_path + "/model", shm_path + "/config");
  if (!snap.ok()) return snap.error();
  return AdsalaGemm(std::move(snap).value());
}

AdsalaGemm AdsalaGemm::load_or_fallback(const std::string& model_path,
                                        const std::string& config_path,
                                        Error* why) {
  auto loaded = try_load(model_path, config_path);
  if (loaded.ok()) {
    if (why != nullptr) *why = Error{};
    return std::move(loaded).value();
  }
  if (why != nullptr) *why = loaded.error();
  return heuristic_fallback();
}

AdsalaGemm AdsalaGemm::heuristic_fallback(int max_threads) {
  const int hw = max_threads > 0
                     ? max_threads
                     : static_cast<int>(
                           std::max(1u, std::thread::hardware_concurrency()));
  // A host-shaped single-socket topology over the default cost literals:
  // the analytic model then reproduces the qualitative occupancy rule
  // (memory-bound small shapes want few threads, compute-bound large ones
  // want the machine) without any trained artefact.
  simarch::CpuTopology topo;
  topo.name = "heuristic";
  topo.sockets = 1;
  topo.numa_per_socket = 1;
  topo.smt_per_core = hw >= 2 ? 2 : 1;
  topo.cores_per_socket = std::max(1, hw / topo.smt_per_core);

  auto snap = std::make_shared<ServingSnapshot>();
  snap->version = 1;
  snap->fallback_model = std::make_shared<simarch::MachineModel>(topo);
  snap->max_threads = hw;
  snap->thread_grid = default_thread_grid(hw);
  snap->platform = "heuristic-fallback";
  snap->model_name = "heuristic";
  return AdsalaGemm(std::move(snap));
}

std::uint64_t AdsalaGemm::publish(std::shared_ptr<ServingSnapshot> next) {
  std::lock_guard<std::mutex> lock(install_mu_);
  next->version = generations_.back()->version + 1;
  generations_.push_back(std::move(next));
  active_.store(generations_.back().get(), std::memory_order_release);
  return generations_.back()->version;
}

std::uint64_t AdsalaGemm::install(TrainOutput trained) {
  return publish(snapshot_from(std::move(trained)));
}

std::uint64_t AdsalaGemm::install(
    std::shared_ptr<const ServingSnapshot> source) {
  // Clone the metadata, share the (immutable) model and fallback, start a
  // fresh memo: stale decisions from the previous generation must never
  // answer queries against the new one.
  auto next = std::make_shared<ServingSnapshot>();
  next->model = source->model;
  next->pipeline = source->pipeline;
  next->fallback_model = source->fallback_model;
  next->thread_grid = source->thread_grid;
  next->max_threads = source->max_threads;
  next->platform = source->platform;
  next->model_name = source->model_name;
  return publish(std::move(next));
}

std::shared_ptr<const ServingSnapshot> AdsalaGemm::snapshot() const {
  std::lock_guard<std::mutex> lock(install_mu_);
  return generations_.back();
}

std::vector<std::uint64_t> AdsalaGemm::retained_versions() const {
  std::lock_guard<std::mutex> lock(install_mu_);
  std::vector<std::uint64_t> out;
  out.reserve(generations_.size());
  for (const auto& gen : generations_) out.push_back(gen->version);
  return out;
}

std::shared_ptr<const ServingSnapshot> AdsalaGemm::snapshot_at(
    std::uint64_t version) const {
  std::lock_guard<std::mutex> lock(install_mu_);
  for (const auto& gen : generations_) {
    if (gen->version == version) return gen;
  }
  return nullptr;
}

std::size_t AdsalaGemm::evict_below(std::uint64_t version) {
  std::lock_guard<std::mutex> lock(install_mu_);
  const ServingSnapshot* current = active_.load(std::memory_order_acquire);
  const std::size_t before = generations_.size();
  generations_.erase(
      std::remove_if(generations_.begin(), generations_.end(),
                     [&](const std::shared_ptr<const ServingSnapshot>& gen) {
                       return gen->version < version && gen.get() != current;
                     }),
      generations_.end());
  return before - generations_.size();
}

void AdsalaGemm::enable_sampling(std::shared_ptr<TelemetryLog> log,
                                 std::uint32_t one_in_n) {
  auto next = std::make_shared<TelemetrySampler>();
  next->log = std::move(log);
  std::uint64_t period = 1;
  while (period < std::max<std::uint32_t>(one_in_n, 1)) period <<= 1;
  next->mask = period - 1;
  std::lock_guard<std::mutex> lock(install_mu_);
  samplers_.push_back(std::move(next));
  sampler_.store(samplers_.back().get(), std::memory_order_release);
}

void AdsalaGemm::disable_sampling() {
  std::lock_guard<std::mutex> lock(install_mu_);
  sampler_.store(nullptr, std::memory_order_release);
}

bool AdsalaGemm::sample_tick_slow(std::uint64_t& countdown) const {
  const TelemetrySampler* s = sampler_.load(std::memory_order_acquire);
  if (s == nullptr) {
    countdown = kSamplerOffRecheckCalls;
    return false;
  }
  countdown = s->mask + 1;
  s->ticks.fetch_add(s->mask + 1, std::memory_order_relaxed);
  return true;
}

void AdsalaGemm::record_sample(blas::OpKind op, long x, long y, long z,
                               int elem_bytes, int threads,
                               std::uint64_t measured_ns) const {
  const TelemetrySampler* s = sampler_.load(std::memory_order_acquire);
  if (s == nullptr || s->log == nullptr) return;
  const simarch::GemmShape shape = op_traits(op).to_shape(x, y, z, elem_bytes);
  TelemetryRecord rec;
  rec.op = op;
  rec.elem_bytes = elem_bytes;
  rec.kernel = blas::kernels::active_variant();
  rec.threads = threads;
  rec.m = shape.m;
  rec.k = shape.k;
  rec.n = shape.n;
  rec.measured_ns = measured_ns;
  rec.model_version = active()->version;
  if (s->log->append(rec).ok()) {
    s->recorded.fetch_add(1, std::memory_order_relaxed);
  } else {
    s->dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint64_t AdsalaGemm::samples_recorded() const {
  const TelemetrySampler* s = sampler_.load(std::memory_order_acquire);
  return s != nullptr ? s->recorded.load(std::memory_order_relaxed) : 0;
}

std::uint64_t AdsalaGemm::samples_dropped() const {
  const TelemetrySampler* s = sampler_.load(std::memory_order_acquire);
  return s != nullptr ? s->dropped.load(std::memory_order_relaxed) : 0;
}

ServingMode AdsalaGemm::serving_mode(blas::OpKind op) const {
  return active()->mode_for(op);
}

void AdsalaGemm::save(const std::string& model_path,
                      const std::string& config_path) const {
  const ServingSnapshot* snap = active();
  if (snap->model == nullptr) {
    throw std::logic_error(
        "AdsalaGemm::save: heuristic fallback has no artefacts to save");
  }
  Json model_blob = snap->model->save();
  model_blob["format"] = Json(kModelFormat);
  write_json_file(model_path, model_blob);
  Json config;
  config["format"] = Json(kConfigFormat);
  config["platform"] = Json(snap->platform);
  config["max_threads"] = Json(snap->max_threads);
  JsonArray grid;
  for (int p : snap->thread_grid) grid.emplace_back(p);
  config["thread_grid"] = Json(std::move(grid));
  config["pipeline"] = snap->pipeline.save();
  config["model_name"] = Json(snap->model_name);
  write_json_file(config_path, config);
}

int AdsalaGemm::select_threads(blas::OpKind op, long x, long y, long z,
                               int elem_bytes) const {
  // The registry canonicalises the family coordinates into the stored
  // equivalent-GEMM shape, which serves every schema tier: an op-aware
  // pipeline differentiates via the op_* one-hots, an older one sees the
  // plain GEMM-proxy query of the same shape, and the heuristic fallback
  // applies its occupancy rule to the same equivalent-GEMM work.
  const simarch::GemmShape shape = op_traits(op).to_shape(x, y, z, elem_bytes);
  return active()->select_threads(op, shape.m, shape.k, shape.n, elem_bytes);
}

int AdsalaGemm::select_threads(long m, long k, long n, int elem_bytes) const {
  return active()->select_threads(blas::OpKind::kGemm, m, k, n, elem_bytes);
}

AdsalaGemm::Decision AdsalaGemm::query(blas::OpKind op, long x, long y,
                                       long z, int elem_bytes) const {
  // One snapshot read for the whole answer: threads, rung and version are
  // guaranteed mutually consistent even while install() races this call.
  const ServingSnapshot* snap = active();
  const simarch::GemmShape shape = op_traits(op).to_shape(x, y, z, elem_bytes);
  Decision d;
  d.threads = snap->select_threads(op, shape.m, shape.k, shape.n, elem_bytes);
  d.mode = snap->mode_for(op);
  d.version = snap->version;
  return d;
}

int AdsalaGemm::select_threads_syrk(long n, long k, int elem_bytes) const {
  return select_threads(blas::OpKind::kSyrk, n, k, 0, elem_bytes);
}

int AdsalaGemm::select_threads_trsm(long n, long m, int elem_bytes) const {
  return select_threads(blas::OpKind::kTrsm, n, m, 0, elem_bytes);
}

int AdsalaGemm::select_threads_symm(long n, long m, int elem_bytes) const {
  return select_threads(blas::OpKind::kSymm, n, m, 0, elem_bytes);
}

namespace {

/// Shared sampling shim for the BLAS execution wrappers: when this call
/// lands on a 1-in-N sampling tick, wall-time it and append the telemetry
/// record; otherwise run it untouched. The unsampled path adds exactly the
/// sample_tick() gate on top of PR 7's decision cost.
template <typename Fn>
void run_sampled(const AdsalaGemm& runtime, blas::OpKind op, long x, long y,
                 long z, int elem_bytes, int threads, Fn&& call) {
  if (!runtime.sample_tick()) {
    call();
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  call();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  runtime.record_sample(
      op, x, y, z, elem_bytes, threads,
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));
}

}  // namespace

void AdsalaGemm::sgemm(int m, int n, int k, float alpha, const float* a,
                       int lda, const float* b, int ldb, float beta, float* c,
                       int ldc) {
  const int p = select_threads(m, k, n, 4);
  run_sampled(*this, blas::OpKind::kGemm, m, k, n, 4, p, [&] {
    blas::sgemm(blas::Trans::kNo, blas::Trans::kNo, m, n, k, alpha, a, lda, b,
                ldb, beta, c, ldc, p);
  });
}

void AdsalaGemm::dgemm(int m, int n, int k, double alpha, const double* a,
                       int lda, const double* b, int ldb, double beta,
                       double* c, int ldc) {
  const int p = select_threads(m, k, n, 8);
  run_sampled(*this, blas::OpKind::kGemm, m, k, n, 8, p, [&] {
    blas::dgemm(blas::Trans::kNo, blas::Trans::kNo, m, n, k, alpha, a, lda, b,
                ldb, beta, c, ldc, p);
  });
}

void AdsalaGemm::ssyrk(blas::Uplo uplo, int n, int k, float alpha,
                       const float* a, int lda, float beta, float* c,
                       int ldc) {
  const int p = select_threads_syrk(n, k, 4);
  run_sampled(*this, blas::OpKind::kSyrk, n, k, 0, 4, p, [&] {
    blas::ssyrk(uplo, blas::Trans::kNo, n, k, alpha, a, lda, beta, c, ldc, p);
  });
}

void AdsalaGemm::dsyrk(blas::Uplo uplo, int n, int k, double alpha,
                       const double* a, int lda, double beta, double* c,
                       int ldc) {
  const int p = select_threads_syrk(n, k, 8);
  run_sampled(*this, blas::OpKind::kSyrk, n, k, 0, 8, p, [&] {
    blas::dsyrk(uplo, blas::Trans::kNo, n, k, alpha, a, lda, beta, c, ldc, p);
  });
}

void AdsalaGemm::strsm(blas::Uplo uplo, blas::Trans trans, blas::Diag diag,
                       int n, int m, float alpha, const float* a, int lda,
                       float* b, int ldb) {
  const int p = select_threads_trsm(n, m, 4);
  run_sampled(*this, blas::OpKind::kTrsm, n, m, 0, 4, p, [&] {
    blas::strsm(uplo, trans, diag, n, m, alpha, a, lda, b, ldb, p);
  });
}

void AdsalaGemm::dtrsm(blas::Uplo uplo, blas::Trans trans, blas::Diag diag,
                       int n, int m, double alpha, const double* a, int lda,
                       double* b, int ldb) {
  const int p = select_threads_trsm(n, m, 8);
  run_sampled(*this, blas::OpKind::kTrsm, n, m, 0, 8, p, [&] {
    blas::dtrsm(uplo, trans, diag, n, m, alpha, a, lda, b, ldb, p);
  });
}

void AdsalaGemm::ssymm(blas::Uplo uplo, int n, int m, float alpha,
                       const float* a, int lda, const float* b, int ldb,
                       float beta, float* c, int ldc) {
  const int p = select_threads_symm(n, m, 4);
  run_sampled(*this, blas::OpKind::kSymm, n, m, 0, 4, p, [&] {
    blas::ssymm(uplo, n, m, alpha, a, lda, b, ldb, beta, c, ldc, p);
  });
}

void AdsalaGemm::dsymm(blas::Uplo uplo, int n, int m, double alpha,
                       const double* a, int lda, const double* b, int ldb,
                       double beta, double* c, int ldc) {
  const int p = select_threads_symm(n, m, 8);
  run_sampled(*this, blas::OpKind::kSymm, n, m, 0, 8, p, [&] {
    blas::dsymm(uplo, n, m, alpha, a, lda, b, ldb, beta, c, ldc, p);
  });
}

}  // namespace adsala::core
