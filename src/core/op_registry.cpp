// The one translation unit that knows every operation end to end. Each
// kOpTraits row bundles: shape canonicalisation, domain sampler, analytic
// cost model, and the native timing closure. This file (plus the blas/op.h
// name table and the op's own kernel file) is the complete footprint of an
// operation — every other layer iterates or looks up the registry.
#include "core/op_registry.h"

#include <algorithm>
#include <stdexcept>

#include "blas/gemm.h"
#include "blas/symm.h"
#include "blas/syrk.h"
#include "blas/trmm.h"
#include "blas/trsm.h"
#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "common/timer.h"

namespace adsala::core {

namespace {

// ------------------------------------------------- shape canonicalisation --
// Stored-shape conventions of docs/OPERATIONS.md: the redundant dimension is
// the family marker (m == n: syrk family; m == k: triangular/symmetric).

simarch::GemmShape gemm_to_shape(long m, long k, long n, int elem_bytes) {
  return {m, k, n, elem_bytes};
}
void gemm_from_shape(const simarch::GemmShape& s, long* m, long* k, long* n) {
  *m = s.m;
  *k = s.k;
  *n = s.n;
}

simarch::GemmShape syrk_to_shape(long n, long k, long, int elem_bytes) {
  return {n, k, n, elem_bytes};
}
void syrk_from_shape(const simarch::GemmShape& s, long* n, long* k, long*) {
  *n = s.n;
  *k = s.k;
}

simarch::GemmShape tri_to_shape(long n, long m, long, int elem_bytes) {
  return {n, n, m, elem_bytes};
}
void tri_from_shape(const simarch::GemmShape& s, long* n, long* m, long*) {
  *n = s.m;
  *m = s.n;
}

// ---------------------------------------------------------------- domains --
// The built-in families alias the named samplers (sampling/domain.h) so the
// registry and direct construction share one rotation stream per op; TRMM,
// landed after the samplers were generalised, carries its spec right here.

std::unique_ptr<sampling::DomainSampler> make_gemm_sampler(
    const sampling::DomainConfig& config) {
  return std::make_unique<sampling::GemmDomainSampler>(config);
}
std::unique_ptr<sampling::DomainSampler> make_syrk_sampler(
    const sampling::DomainConfig& config) {
  return std::make_unique<sampling::SyrkDomainSampler>(config);
}
std::unique_ptr<sampling::DomainSampler> make_trsm_sampler(
    const sampling::DomainConfig& config) {
  return std::make_unique<sampling::TrsmDomainSampler>(config);
}
std::unique_ptr<sampling::DomainSampler> make_symm_sampler(
    const sampling::DomainConfig& config) {
  return std::make_unique<sampling::SymmDomainSampler>(config);
}

/// TRMM footprint: A triangle (n x n) + B (n x m) + the in-place product's
/// dense B workspace (n x m).
double trmm_footprint(const simarch::GemmShape& s) {
  return static_cast<double>(s.elem_bytes) *
         (static_cast<double>(s.m) * s.m +
          2.0 * static_cast<double>(s.m) * s.n);
}

std::unique_ptr<sampling::DomainSampler> make_trmm_sampler(
    const sampling::DomainConfig& config) {
  return std::make_unique<sampling::Family2DSampler>(
      sampling::Family2DSpec{"TrmmDomainSampler", 0x3e8d5b71ull,
                             /*m_equals_n=*/false, &trmm_footprint},
      config);
}

// ---------------------------------------------------- native measurement --
// Operands are 64-byte aligned and filled with pseudo-random values; one
// warm-up call precedes the timed iterations (paper SS V-B.3).

template <typename T>
double measure_gemm_typed(const simarch::GemmShape& shape, int nthreads,
                          int iterations) {
  const auto m = static_cast<int>(shape.m);
  const auto k = static_cast<int>(shape.k);
  const auto n = static_cast<int>(shape.n);
  AlignedBuffer<T> a(static_cast<std::size_t>(m) * k);
  AlignedBuffer<T> b(static_cast<std::size_t>(k) * n);
  AlignedBuffer<T> c(static_cast<std::size_t>(m) * n);
  Rng rng(0x5eedu + static_cast<std::uint64_t>(m * 131 + k * 17 + n));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = T(0);

  // Warm-up: pulls operands into cache state comparable across runs and
  // wakes the pool threads.
  blas::gemm<T>(blas::Trans::kNo, blas::Trans::kNo, m, n, k, T(1), a.data(),
                k, b.data(), n, T(0), c.data(), n, nthreads);

  WallTimer timer;
  for (int it = 0; it < iterations; ++it) {
    blas::gemm<T>(blas::Trans::kNo, blas::Trans::kNo, m, n, k, T(1), a.data(),
                  k, b.data(), n, T(0), c.data(), n, nthreads);
  }
  return timer.seconds() / std::max(iterations, 1);
}

template <typename T>
double measure_syrk_typed(const simarch::GemmShape& shape, int nthreads,
                          int iterations) {
  const auto n = static_cast<int>(shape.n);
  const auto k = static_cast<int>(shape.k);
  AlignedBuffer<T> a(static_cast<std::size_t>(n) * k);
  AlignedBuffer<T> c(static_cast<std::size_t>(n) * n);
  Rng rng(0x5eedu + static_cast<std::uint64_t>(n * 131 + k * 17));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = T(0);

  blas::syrk<T>(blas::Uplo::kLower, blas::Trans::kNo, n, k, T(1), a.data(), k,
                T(0), c.data(), n, nthreads);

  WallTimer timer;
  for (int it = 0; it < iterations; ++it) {
    blas::syrk<T>(blas::Uplo::kLower, blas::Trans::kNo, n, k, T(1), a.data(),
                  k, T(0), c.data(), n, nthreads);
  }
  return timer.seconds() / std::max(iterations, 1);
}

template <typename T>
double measure_trsm_typed(const simarch::GemmShape& shape, int nthreads,
                          int iterations) {
  const auto n = static_cast<int>(shape.m);  // triangle dimension (m == k)
  const auto r = static_cast<int>(shape.n);  // right-hand-side columns
  AlignedBuffer<T> a(static_cast<std::size_t>(n) * n);
  AlignedBuffer<T> b(static_cast<std::size_t>(n) * r);
  Rng rng(0x5eedu + static_cast<std::uint64_t>(n * 131 + r * 17));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  // Diagonally dominant triangle: repeated in-place solves stay bounded
  // (||inv(A)|| < 1), so the timed iterations never drift into inf/denormal
  // territory.
  for (int i = 0; i < n; ++i) a[static_cast<std::size_t>(i) * n + i] = T(n + 1);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }

  blas::trsm<T>(blas::Uplo::kLower, blas::Trans::kNo, blas::Diag::kNonUnit, n,
                r, T(1), a.data(), n, b.data(), r, nthreads);

  WallTimer timer;
  for (int it = 0; it < iterations; ++it) {
    blas::trsm<T>(blas::Uplo::kLower, blas::Trans::kNo, blas::Diag::kNonUnit,
                  n, r, T(1), a.data(), n, b.data(), r, nthreads);
  }
  return timer.seconds() / std::max(iterations, 1);
}

template <typename T>
double measure_symm_typed(const simarch::GemmShape& shape, int nthreads,
                          int iterations) {
  const auto n = static_cast<int>(shape.m);  // symmetric dimension (m == k)
  const auto r = static_cast<int>(shape.n);  // B/C columns
  AlignedBuffer<T> a(static_cast<std::size_t>(n) * n);
  AlignedBuffer<T> b(static_cast<std::size_t>(n) * r);
  AlignedBuffer<T> c(static_cast<std::size_t>(n) * r);
  Rng rng(0x5eedu + static_cast<std::uint64_t>(n * 131 + r * 17));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = T(0);

  blas::symm<T>(blas::Uplo::kLower, n, r, T(1), a.data(), n, b.data(), r,
                T(0), c.data(), r, nthreads);

  WallTimer timer;
  for (int it = 0; it < iterations; ++it) {
    blas::symm<T>(blas::Uplo::kLower, n, r, T(1), a.data(), n, b.data(), r,
                  T(0), c.data(), r, nthreads);
  }
  return timer.seconds() / std::max(iterations, 1);
}

template <typename T>
double measure_trmm_typed(const simarch::GemmShape& shape, int nthreads,
                          int iterations) {
  const auto n = static_cast<int>(shape.m);  // triangle dimension (m == k)
  const auto r = static_cast<int>(shape.n);  // B columns
  AlignedBuffer<T> a(static_cast<std::size_t>(n) * n);
  AlignedBuffer<T> b(static_cast<std::size_t>(n) * r);
  Rng rng(0x5eedu + static_cast<std::uint64_t>(n * 131 + r * 17));
  // Contraction (||A|| < 1): repeated in-place products decay gently instead
  // of overflowing, so the timed iterations stay in normal-number range.
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<T>(rng.uniform(-1.0, 1.0) * 0.5 / n);
  }
  for (int i = 0; i < n; ++i) a[static_cast<std::size_t>(i) * n + i] = T(0.9);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }

  blas::trmm<T>(blas::Uplo::kLower, blas::Trans::kNo, blas::Diag::kNonUnit, n,
                r, T(1), a.data(), n, b.data(), r, nthreads);

  WallTimer timer;
  for (int it = 0; it < iterations; ++it) {
    blas::trmm<T>(blas::Uplo::kLower, blas::Trans::kNo, blas::Diag::kNonUnit,
                  n, r, T(1), a.data(), n, b.data(), r, nthreads);
  }
  return timer.seconds() / std::max(iterations, 1);
}

/// fp32/fp64 split shared by every native closure.
template <double (*F32)(const simarch::GemmShape&, int, int),
          double (*F64)(const simarch::GemmShape&, int, int)>
double by_elem(const simarch::GemmShape& shape, int nthreads, int iterations) {
  return shape.elem_bytes == 8 ? F64(shape, nthreads, iterations)
                               : F32(shape, nthreads, iterations);
}

// ---------------------------------------------------------------- the table --

constexpr std::uint64_t kTrmmNoiseSalt = 0x54524d4dull;  // "TRMM"

constexpr OpTraits kOpTraits[] = {
    {
        .op = blas::OpKind::kGemm,
        .family_dims = 3,
        .coord_names = {"m", "k", "n"},
        .to_shape = &gemm_to_shape,
        .from_shape = &gemm_from_shape,
        .make_sampler = &make_gemm_sampler,
        .cost = simarch::kGemmCostModel,
        .measure_native =
            &by_elem<&measure_gemm_typed<float>, &measure_gemm_typed<double>>,
    },
    {
        .op = blas::OpKind::kSyrk,
        .family_dims = 2,
        .coord_names = {"n", "k", nullptr},
        .to_shape = &syrk_to_shape,
        .from_shape = &syrk_from_shape,
        .make_sampler = &make_syrk_sampler,
        .cost = simarch::kSyrkCostModel,
        .measure_native =
            &by_elem<&measure_syrk_typed<float>, &measure_syrk_typed<double>>,
    },
    {
        .op = blas::OpKind::kTrsm,
        .family_dims = 2,
        .coord_names = {"n", "m", nullptr},
        .to_shape = &tri_to_shape,
        .from_shape = &tri_from_shape,
        .make_sampler = &make_trsm_sampler,
        .cost = simarch::kTrsmCostModel,
        .measure_native =
            &by_elem<&measure_trsm_typed<float>, &measure_trsm_typed<double>>,
    },
    {
        .op = blas::OpKind::kSymm,
        .family_dims = 2,
        .coord_names = {"n", "m", nullptr},
        .to_shape = &tri_to_shape,
        .from_shape = &tri_from_shape,
        .make_sampler = &make_symm_sampler,
        .cost = simarch::kSymmCostModel,
        .measure_native =
            &by_elem<&measure_symm_typed<float>, &measure_symm_typed<double>>,
    },
    {
        // TRMM — the registry's proof row: triangle-fraction kernel work
        // like SYRK/TRSM, plus a packing surcharge for the dense B pre-copy
        // the in-place product needs (between GEMM's 1.0 and SYMM's 1.3).
        .op = blas::OpKind::kTrmm,
        .family_dims = 2,
        .coord_names = {"n", "m", nullptr},
        .to_shape = &tri_to_shape,
        .from_shape = &tri_from_shape,
        .make_sampler = &make_trmm_sampler,
        .cost = {.triangle_kernel = true,
                 .copy_mult = 1.2,
                 .noise_salt = kTrmmNoiseSalt},
        .measure_native =
            &by_elem<&measure_trmm_typed<float>, &measure_trmm_typed<double>>,
    },
};

/// Registry completeness, checked at compile time: one traits row per
/// blas/op.h table row, in code order.
static_assert(std::size(kOpTraits) == blas::kNumOps,
              "every blas/op.h row needs an OpTraits row");
static_assert([] {
  for (std::size_t i = 0; i < blas::kNumOps; ++i) {
    if (kOpTraits[i].op != blas::detail::kOpTable[i].op) return false;
  }
  return true;
}(), "OpTraits rows must follow blas/op.h table (code) order");

}  // namespace

const OpTraits& op_traits(blas::OpKind op) {
  const int code = blas::op_code(op);
  if (code < 0 || static_cast<std::size_t>(code) >= std::size(kOpTraits)) {
    throw std::logic_error("op_traits: unregistered operation");
  }
  return kOpTraits[code];
}

std::span<const OpTraits> op_registry() { return kOpTraits; }

}  // namespace adsala::core
