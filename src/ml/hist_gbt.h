// LightGBM-style gradient boosting: histogram bins + leaf-wise growth.
//
// Features are quantised once into <=max_bins quantile bins; per-leaf
// histograms of (G, H) make each split scan O(bins) instead of O(n log n),
// and leaves are grown best-first (leaf-wise) up to num_leaves — the two
// signature LightGBM design choices (Ke et al. 2017). Objective and gain are
// the same second-order form as the XGBoost module.
#pragma once

#include <cstdint>

#include "ml/model.h"
#include "ml/tree.h"

namespace adsala::ml {

class LightGbmRegressor : public Regressor {
 public:
  explicit LightGbmRegressor(Params params = {}) { set_params(params); }

  void fit(const Dataset& data) override;
  double predict_one(std::span<const double> x) const override;
  std::string name() const override { return "lightgbm"; }

  Params get_params() const override {
    return {{"n_estimators", static_cast<double>(n_estimators_)},
            {"num_leaves", static_cast<double>(num_leaves_)},
            {"learning_rate", learning_rate_},
            {"reg_lambda", reg_lambda_},
            {"min_child_samples", static_cast<double>(min_child_samples_)},
            {"max_bins", static_cast<double>(max_bins_)},
            {"seed", static_cast<double>(seed_)}};
  }
  void set_params(const Params& params) override {
    n_estimators_ = static_cast<int>(param_or(params, "n_estimators", 200));
    num_leaves_ = static_cast<int>(param_or(params, "num_leaves", 31));
    learning_rate_ = param_or(params, "learning_rate", 0.1);
    reg_lambda_ = param_or(params, "reg_lambda", 1.0);
    min_child_samples_ =
        static_cast<int>(param_or(params, "min_child_samples", 5));
    max_bins_ = static_cast<int>(param_or(params, "max_bins", 64));
    seed_ = static_cast<std::uint64_t>(param_or(params, "seed", 19));
  }

  Json save() const override;
  void load(const Json& blob) override;
  std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<LightGbmRegressor>(get_params());
  }

  std::size_t n_trees() const { return trees_.size(); }

 private:
  int n_estimators_ = 200;
  int num_leaves_ = 31;
  double learning_rate_ = 0.1;
  double reg_lambda_ = 1.0;
  int min_child_samples_ = 5;
  int max_bins_ = 64;
  std::uint64_t seed_ = 19;

  double base_score_ = 0.0;
  std::vector<std::vector<TreeNode>> trees_;  ///< thresholds in value space
};

}  // namespace adsala::ml
