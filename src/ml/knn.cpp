#include "ml/knn.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

namespace adsala::ml {

void KnnRegressor::fit(const Dataset& data) {
  check_fit_input(data);
  d_ = data.n_features();
  x_ = data.flat();
  y_ = data.labels();
}

double KnnRegressor::predict_one(std::span<const double> x) const {
  if (y_.empty()) return 0.0;
  const std::size_t n = y_.size();
  const auto k = std::min<std::size_t>(static_cast<std::size_t>(k_), n);

  // Partial selection of the k smallest squared distances. Rows are
  // independent, so the distance pass fans out over the pool for large
  // training sets (nested calls degrade to serial inside other regions).
  std::vector<std::pair<double, std::size_t>> dist(n);
  const auto distance_to = [&](std::size_t i) {
    double s = 0.0;
    const double* row = &x_[i * d_];
    for (std::size_t j = 0; j < d_ && j < x.size(); ++j) {
      const double diff = row[j] - x[j];
      s += diff * diff;
    }
    dist[i] = {s, i};
  };
  constexpr std::size_t kParallelWork = 1 << 14;  // flops below this: serial
  if (n * d_ >= kParallelWork) {
    ThreadPool& pool = ThreadPool::global();
    pool.parallel_for(pool.max_threads(), 0, n, distance_to);
  } else {
    for (std::size_t i = 0; i < n; ++i) distance_to(i);
  }
  std::nth_element(dist.begin(),
                   dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   dist.end());

  if (!distance_weighted_) {
    double sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) sum += y_[dist[i].second];
    return sum / static_cast<double>(k);
  }
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (std::sqrt(dist[i].first) + 1e-12);
    num += w * y_[dist[i].second];
    den += w;
  }
  return num / den;
}

Json KnnRegressor::save() const {
  Json out;
  out["model"] = Json(name());
  JsonObject pj;
  for (const auto& [k, v] : get_params()) pj[k] = Json(v);
  out["params"] = Json(std::move(pj));
  out["d"] = Json(d_);
  out["x"] = Json::from_doubles(x_);
  out["y"] = Json::from_doubles(y_);
  return out;
}

void KnnRegressor::load(const Json& blob) {
  Params p;
  for (const auto& [k, v] : blob.at("params").as_object()) {
    p[k] = v.as_number();
  }
  set_params(p);
  d_ = static_cast<std::size_t>(blob.at("d").as_number());
  x_ = blob.at("x").to_doubles();
  y_ = blob.at("y").to_doubles();
}

}  // namespace adsala::ml
