// CART regression tree with sample weights.
//
// Exact greedy splitting on sorted feature values, weighted-variance
// criterion. Sample-weight support is what lets AdaBoost.R2 and the random
// forest reuse this one implementation; feature subsampling (max_features)
// serves the forest. Non-parametric and robust to the skewed feature
// distributions of the GEMM dataset (paper Table I).
#pragma once

#include <cstdint>

#include "ml/model.h"

namespace adsala::ml {

/// Flat node record; leaves have feature == -1 and carry `value`.
struct TreeNode {
  int feature = -1;
  double threshold = 0.0;
  double value = 0.0;
  int left = -1;
  int right = -1;

  bool is_leaf() const { return feature < 0; }
};

class DecisionTree : public Regressor {
 public:
  explicit DecisionTree(Params params = {}) { set_params(params); }

  void fit(const Dataset& data) override;

  /// Weighted fit; weights must be non-negative, one per row.
  void fit_weighted(const Dataset& data, std::span<const double> weights);

  double predict_one(std::span<const double> x) const override;
  std::string name() const override { return "decision_tree"; }

  Params get_params() const override {
    return {{"max_depth", static_cast<double>(max_depth_)},
            {"min_samples_split", static_cast<double>(min_samples_split_)},
            {"min_samples_leaf", static_cast<double>(min_samples_leaf_)},
            {"max_features", max_features_},
            {"seed", static_cast<double>(seed_)}};
  }
  void set_params(const Params& params) override {
    max_depth_ = static_cast<int>(param_or(params, "max_depth", 12));
    min_samples_split_ =
        static_cast<int>(param_or(params, "min_samples_split", 2));
    min_samples_leaf_ =
        static_cast<int>(param_or(params, "min_samples_leaf", 1));
    max_features_ = param_or(params, "max_features", 1.0);
    seed_ = static_cast<std::uint64_t>(param_or(params, "seed", 7));
  }

  Json save() const override;
  void load(const Json& blob) override;
  std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<DecisionTree>(get_params());
  }

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  std::size_t depth() const;  ///< actual depth of the fitted tree

 private:
  int max_depth_ = 12;
  int min_samples_split_ = 2;
  int min_samples_leaf_ = 1;
  double max_features_ = 1.0;  ///< fraction of features tried per split
  std::uint64_t seed_ = 7;
  std::vector<TreeNode> nodes_;
};

}  // namespace adsala::ml
