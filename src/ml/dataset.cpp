#include "ml/dataset.h"

#include <stdexcept>

namespace adsala::ml {

void Dataset::add_row(std::span<const double> x, double y) {
  if (x.size() != n_features()) {
    throw std::invalid_argument("Dataset::add_row: feature count mismatch");
  }
  x_.insert(x_.end(), x.begin(), x.end());
  y_.push_back(y);
}

std::vector<double> Dataset::column(std::size_t j) const {
  if (j >= n_features()) {
    throw std::out_of_range("Dataset::column: index out of range");
  }
  std::vector<double> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(row(i)[j]);
  return out;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(feature_names_);
  for (std::size_t idx : indices) {
    if (idx >= size()) throw std::out_of_range("Dataset::subset: bad index");
    out.add_row(row(idx), y_[idx]);
  }
  return out;
}

Dataset Dataset::select_features(std::span<const std::size_t> keep) const {
  std::vector<std::string> names;
  names.reserve(keep.size());
  for (std::size_t j : keep) {
    if (j >= n_features()) {
      throw std::out_of_range("Dataset::select_features: bad index");
    }
    names.push_back(feature_names_[j]);
  }
  Dataset out(std::move(names));
  std::vector<double> buf(keep.size());
  for (std::size_t i = 0; i < size(); ++i) {
    const auto r = row(i);
    for (std::size_t jj = 0; jj < keep.size(); ++jj) buf[jj] = r[keep[jj]];
    out.add_row(buf, y_[i]);
  }
  return out;
}

}  // namespace adsala::ml
