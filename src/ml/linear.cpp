#include "ml/linear.h"

#include <algorithm>
#include <cmath>

#include "ml/linalg.h"

namespace adsala::ml {

namespace {

/// Centres features and label; returns per-column means (label mean last).
/// Linear fits solve in centred space so the intercept falls out exactly.
struct Centred {
  std::vector<double> x;        // centred features, row-major
  std::vector<double> y;        // centred labels
  std::vector<double> x_mean;   // per-feature mean
  double y_mean = 0.0;
};

Centred centre(const Dataset& data) {
  const std::size_t n = data.size();
  const std::size_t d = data.n_features();
  Centred c;
  c.x.assign(n * d, 0.0);
  c.y.assign(n, 0.0);
  c.x_mean.assign(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < d; ++j) c.x_mean[j] += row[j];
    c.y_mean += data.label(i);
  }
  for (std::size_t j = 0; j < d; ++j) c.x_mean[j] /= static_cast<double>(n);
  c.y_mean /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < d; ++j) c.x[i * d + j] = row[j] - c.x_mean[j];
    c.y[i] = data.label(i) - c.y_mean;
  }
  return c;
}

/// Gram matrix X^T X (d x d) and moment vector X^T y from centred data.
void gram(const Centred& c, std::size_t n, std::size_t d,
          std::vector<double>& xtx, std::vector<double>& xty) {
  xtx.assign(d * d, 0.0);
  xty.assign(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = &c.x[i * d];
    for (std::size_t a = 0; a < d; ++a) {
      xty[a] += row[a] * c.y[i];
      for (std::size_t b = a; b < d; ++b) xtx[a * d + b] += row[a] * row[b];
    }
  }
  for (std::size_t a = 0; a < d; ++a) {
    for (std::size_t b = 0; b < a; ++b) xtx[a * d + b] = xtx[b * d + a];
  }
}

double dot_coef(std::span<const double> x, const std::vector<double>& coef,
                double intercept) {
  double acc = intercept;
  const std::size_t d = std::min(x.size(), coef.size());
  for (std::size_t j = 0; j < d; ++j) acc += coef[j] * x[j];
  return acc;
}

Json linear_state(const std::vector<double>& coef, double intercept,
                  const std::string& model_name, const Params& params) {
  Json out;
  out["model"] = Json(model_name);
  out["coef"] = Json::from_doubles(coef);
  out["intercept"] = Json(intercept);
  JsonObject pj;
  for (const auto& [k, v] : params) pj[k] = Json(v);
  out["params"] = Json(std::move(pj));
  return out;
}

Params params_from_json(const Json& blob) {
  Params p;
  if (blob.contains("params")) {
    for (const auto& [k, v] : blob.at("params").as_object()) {
      p[k] = v.as_number();
    }
  }
  return p;
}

}  // namespace

// ---------------------------------------------------------------- Linear --

void LinearRegression::fit(const Dataset& data) {
  check_fit_input(data);
  const std::size_t n = data.size();
  const std::size_t d = data.n_features();
  const Centred c = centre(data);
  std::vector<double> xtx, xty;
  gram(c, n, d, xtx, xty);
  for (std::size_t j = 0; j < d; ++j) {
    xtx[j * d + j] += alpha_ + 1e-10;  // ridge + stabilising jitter
  }
  coef_ = solve_spd(std::move(xtx), d, std::move(xty));
  intercept_ = c.y_mean;
  for (std::size_t j = 0; j < d; ++j) intercept_ -= coef_[j] * c.x_mean[j];
}

double LinearRegression::predict_one(std::span<const double> x) const {
  return dot_coef(x, coef_, intercept_);
}

Json LinearRegression::save() const {
  return linear_state(coef_, intercept_, name(), get_params());
}

void LinearRegression::load(const Json& blob) {
  set_params(params_from_json(blob));
  coef_ = blob.at("coef").to_doubles();
  intercept_ = blob.at("intercept").as_number();
}

// ------------------------------------------------------------ ElasticNet --

void ElasticNet::fit(const Dataset& data) {
  check_fit_input(data);
  const std::size_t n = data.size();
  const std::size_t d = data.n_features();
  const Centred c = centre(data);

  // Coordinate descent on: 1/(2n)||y - Xw||^2 + a*l1*|w| + a*(1-l1)/2*||w||^2.
  const double l1 = alpha_ * l1_ratio_ * static_cast<double>(n);
  const double l2 = alpha_ * (1.0 - l1_ratio_) * static_cast<double>(n);

  std::vector<double> col_sq(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      col_sq[j] += c.x[i * d + j] * c.x[i * d + j];
    }
  }

  coef_.assign(d, 0.0);
  std::vector<double> residual = c.y;  // y - Xw with w = 0

  for (int iter = 0; iter < max_iter_; ++iter) {
    double max_delta = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      if (col_sq[j] == 0.0) continue;
      // rho = x_j . (residual + x_j * w_j)
      double rho = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        rho += c.x[i * d + j] * residual[i];
      }
      rho += col_sq[j] * coef_[j];
      const double soft =
          std::copysign(std::max(std::fabs(rho) - l1, 0.0), rho);
      const double w_new = soft / (col_sq[j] + l2);
      const double delta = w_new - coef_[j];
      if (delta != 0.0) {
        for (std::size_t i = 0; i < n; ++i) {
          residual[i] -= delta * c.x[i * d + j];
        }
        coef_[j] = w_new;
        max_delta = std::max(max_delta, std::fabs(delta));
      }
    }
    if (max_delta < tol_) break;
  }

  intercept_ = c.y_mean;
  for (std::size_t j = 0; j < d; ++j) intercept_ -= coef_[j] * c.x_mean[j];
}

double ElasticNet::predict_one(std::span<const double> x) const {
  return dot_coef(x, coef_, intercept_);
}

Json ElasticNet::save() const {
  return linear_state(coef_, intercept_, name(), get_params());
}

void ElasticNet::load(const Json& blob) {
  set_params(params_from_json(blob));
  coef_ = blob.at("coef").to_doubles();
  intercept_ = blob.at("intercept").as_number();
}

// --------------------------------------------------------- BayesianRidge --

void BayesianRidge::fit(const Dataset& data) {
  check_fit_input(data);
  const std::size_t n = data.size();
  const std::size_t d = data.n_features();
  const Centred c = centre(data);
  std::vector<double> xtx, xty;
  gram(c, n, d, xtx, xty);

  // Initialise noise precision from label variance (sklearn convention).
  double y_var = 0.0;
  for (double v : c.y) y_var += v * v;
  y_var /= std::max<double>(static_cast<double>(n), 1.0);
  alpha_precision_ = y_var > 0.0 ? 1.0 / y_var : 1.0;
  lambda_precision_ = 1.0;

  coef_.assign(d, 0.0);
  double prev_rss = -1.0;

  for (int iter = 0; iter < max_iter_; ++iter) {
    // Posterior mean: (lambda I + alpha XtX) w = alpha Xty.
    std::vector<double> a(d * d);
    for (std::size_t idx = 0; idx < d * d; ++idx) {
      a[idx] = alpha_precision_ * xtx[idx];
    }
    for (std::size_t j = 0; j < d; ++j) a[j * d + j] += lambda_precision_;

    std::vector<double> rhs(d);
    for (std::size_t j = 0; j < d; ++j) rhs[j] = alpha_precision_ * xty[j];
    // Keep the factor to compute trace(Sigma) for the gamma update.
    std::vector<double> factor = a;
    double jitter = 1e-12;
    while (!cholesky_factor(factor, d)) {
      factor = a;
      for (std::size_t j = 0; j < d; ++j) factor[j * d + j] += jitter;
      jitter *= 100.0;
    }
    coef_ = rhs;
    cholesky_solve_inplace(factor, d, coef_);

    // trace(Sigma) via d unit-vector solves (d is small).
    double trace_sigma = 0.0;
    std::vector<double> e(d);
    for (std::size_t j = 0; j < d; ++j) {
      std::fill(e.begin(), e.end(), 0.0);
      e[j] = 1.0;
      cholesky_solve_inplace(factor, d, e);
      trace_sigma += e[j];
    }

    // Effective number of well-determined parameters.
    const double gamma =
        static_cast<double>(d) - lambda_precision_ * trace_sigma;

    double rss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double pred = 0.0;
      for (std::size_t j = 0; j < d; ++j) pred += c.x[i * d + j] * coef_[j];
      const double r = c.y[i] - pred;
      rss += r * r;
    }
    double coef_sq = 0.0;
    for (double w : coef_) coef_sq += w * w;

    lambda_precision_ = (gamma + 1e-12) / (coef_sq + 1e-12);
    alpha_precision_ =
        (static_cast<double>(n) - gamma + 1e-12) / (rss + 1e-12);

    if (prev_rss >= 0.0 && std::fabs(prev_rss - rss) < tol_ * (1.0 + rss)) {
      break;
    }
    prev_rss = rss;
  }

  intercept_ = c.y_mean;
  for (std::size_t j = 0; j < d; ++j) intercept_ -= coef_[j] * c.x_mean[j];
}

double BayesianRidge::predict_one(std::span<const double> x) const {
  return dot_coef(x, coef_, intercept_);
}

Json BayesianRidge::save() const {
  Json out = linear_state(coef_, intercept_, name(), get_params());
  out["alpha_precision"] = Json(alpha_precision_);
  out["lambda_precision"] = Json(lambda_precision_);
  return out;
}

void BayesianRidge::load(const Json& blob) {
  set_params(params_from_json(blob));
  coef_ = blob.at("coef").to_doubles();
  intercept_ = blob.at("intercept").as_number();
  if (blob.contains("alpha_precision")) {
    alpha_precision_ = blob.at("alpha_precision").as_number();
    lambda_precision_ = blob.at("lambda_precision").as_number();
  }
}

}  // namespace adsala::ml
