// Hyper-parameter tuning: exhaustive grid search with k-fold CV.
//
// The paper tunes every candidate's hyper-parameters with cross-validation
// folds (not leave-one-out, for cost; SS IV-C) before the speedup-based model
// selection. Grids are {param -> candidate values}; the cartesian product is
// evaluated and the combination with the lowest mean validation RMSE wins.
#pragma once

#include <map>

#include "ml/model.h"

namespace adsala::ml {

using ParamGrid = std::map<std::string, std::vector<double>>;

struct GridSearchResult {
  Params best_params;
  double best_rmse = 0.0;                 ///< mean CV RMSE of the winner
  std::vector<Params> all_params;         ///< every combination evaluated
  std::vector<double> all_rmse;           ///< its mean CV RMSE
  std::unique_ptr<Regressor> best_model;  ///< refit on the full dataset
};

/// Enumerate the cartesian product of a grid (empty grid -> one empty Params).
std::vector<Params> expand_grid(const ParamGrid& grid);

/// Runs the full grid with `n_folds` stratified CV folds; the winning
/// parameters are refit on all of `data`. Folds are trained in parallel on
/// the process thread pool.
GridSearchResult grid_search_cv(const Regressor& prototype,
                                const Dataset& data, const ParamGrid& grid,
                                std::size_t n_folds = 5,
                                std::uint64_t seed = 99);

}  // namespace adsala::ml
