// Tabular regression dataset: flat row-major feature storage + labels.
//
// The ADSALA training set is ~10^3-10^4 rows x 10-20 features (paper SS II-B),
// so a contiguous flat array with span row views is both the simplest and
// the fastest representation for every model in this library.
//
// The container is schema-agnostic: columns are identified only by the name
// list passed at construction. The canonical ADSALA column lists (17-column
// Table II base schema and the 23-column op-aware schema with the one-hot
// op_* / kernel_* columns) are defined once in preprocess/features.h;
// GatherData::to_dataset emits them in that order.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace adsala::ml {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names)
      : feature_names_(std::move(feature_names)) {}

  std::size_t size() const { return y_.size(); }
  std::size_t n_features() const { return feature_names_.size(); }
  bool empty() const { return y_.empty(); }

  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  /// Appends one labelled row; x.size() must equal n_features().
  void add_row(std::span<const double> x, double y);

  std::span<const double> row(std::size_t i) const {
    return {x_.data() + i * n_features(), n_features()};
  }
  std::span<double> mutable_row(std::size_t i) {
    return {x_.data() + i * n_features(), n_features()};
  }

  double label(std::size_t i) const { return y_[i]; }
  double& mutable_label(std::size_t i) { return y_[i]; }
  const std::vector<double>& labels() const { return y_; }

  /// Copy of feature column j.
  std::vector<double> column(std::size_t j) const;

  /// New dataset containing rows[idx[0]], rows[idx[1]], ...
  Dataset subset(std::span<const std::size_t> indices) const;

  /// New dataset keeping only the given feature columns (in that order).
  Dataset select_features(std::span<const std::size_t> keep) const;

  /// Flat feature storage (row-major), exposed for linear-algebra paths.
  const std::vector<double>& flat() const { return x_; }

 private:
  std::vector<std::string> feature_names_;
  std::vector<double> x_;  // row-major, size() * n_features()
  std::vector<double> y_;
};

}  // namespace adsala::ml
