// Linear model family: OLS/Ridge, ElasticNet, Bayesian Ridge.
//
// These are the paper's Table I "Linear Models" candidates: fast to evaluate
// (a dot product), cheap to train, but limited on the non-linear
// (m, k, n, p) -> runtime mapping — exactly the trade-off Tables III/IV show.
#pragma once

#include "ml/model.h"

namespace adsala::ml {

/// Ordinary least squares with optional L2 penalty (alpha = 0 -> pure OLS
/// via normal equations; a tiny jitter keeps rank-deficient fits solvable).
class LinearRegression : public Regressor {
 public:
  explicit LinearRegression(Params params = {}) { set_params(params); }

  void fit(const Dataset& data) override;
  double predict_one(std::span<const double> x) const override;
  std::string name() const override { return "linear_regression"; }
  Params get_params() const override { return {{"alpha", alpha_}}; }
  void set_params(const Params& params) override {
    alpha_ = param_or(params, "alpha", 0.0);
  }
  Json save() const override;
  void load(const Json& blob) override;
  std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<LinearRegression>(get_params());
  }

  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

 protected:
  double alpha_ = 0.0;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

/// ElasticNet: L1+L2-penalised least squares via cyclic coordinate descent
/// (Friedman et al. pathwise form). l1_ratio = 1 is the Lasso, 0 is Ridge.
class ElasticNet : public Regressor {
 public:
  explicit ElasticNet(Params params = {}) { set_params(params); }

  void fit(const Dataset& data) override;
  double predict_one(std::span<const double> x) const override;
  std::string name() const override { return "elastic_net"; }
  Params get_params() const override {
    return {{"alpha", alpha_},
            {"l1_ratio", l1_ratio_},
            {"max_iter", static_cast<double>(max_iter_)},
            {"tol", tol_}};
  }
  void set_params(const Params& params) override {
    alpha_ = param_or(params, "alpha", 1.0);
    l1_ratio_ = param_or(params, "l1_ratio", 0.5);
    max_iter_ = static_cast<int>(param_or(params, "max_iter", 1000));
    tol_ = param_or(params, "tol", 1e-6);
  }
  Json save() const override;
  void load(const Json& blob) override;
  std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<ElasticNet>(get_params());
  }

  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

 private:
  double alpha_ = 1.0;
  double l1_ratio_ = 0.5;
  int max_iter_ = 1000;
  double tol_ = 1e-6;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

/// Bayesian ridge regression with evidence-maximisation hyper-parameter
/// updates (MacKay / sklearn's BayesianRidge): the noise precision alpha and
/// weight precision lambda are re-estimated each iteration.
class BayesianRidge : public Regressor {
 public:
  explicit BayesianRidge(Params params = {}) { set_params(params); }

  void fit(const Dataset& data) override;
  double predict_one(std::span<const double> x) const override;
  std::string name() const override { return "bayesian_ridge"; }
  Params get_params() const override {
    return {{"max_iter", static_cast<double>(max_iter_)}, {"tol", tol_}};
  }
  void set_params(const Params& params) override {
    max_iter_ = static_cast<int>(param_or(params, "max_iter", 300));
    tol_ = param_or(params, "tol", 1e-4);
  }
  Json save() const override;
  void load(const Json& blob) override;
  std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<BayesianRidge>(get_params());
  }

  double noise_precision() const { return alpha_precision_; }
  double weight_precision() const { return lambda_precision_; }

 private:
  int max_iter_ = 300;
  double tol_ = 1e-4;
  std::vector<double> coef_;
  double intercept_ = 0.0;
  double alpha_precision_ = 1.0;
  double lambda_precision_ = 1.0;
};

}  // namespace adsala::ml
