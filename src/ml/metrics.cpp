#include "ml/metrics.h"

#include <cmath>
#include <stdexcept>

#include "common/stats.h"

namespace adsala::ml {

namespace {
void check(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("metrics: size mismatch or empty input");
  }
}
}  // namespace

double mse(std::span<const double> truth, std::span<const double> pred) {
  check(truth, pred);
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - pred[i];
    s += d * d;
  }
  return s / static_cast<double>(truth.size());
}

double rmse(std::span<const double> truth, std::span<const double> pred) {
  return std::sqrt(mse(truth, pred));
}

double mae(std::span<const double> truth, std::span<const double> pred) {
  check(truth, pred);
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    s += std::fabs(truth[i] - pred[i]);
  }
  return s / static_cast<double>(truth.size());
}

double r2_score(std::span<const double> truth, std::span<const double> pred) {
  check(truth, pred);
  const double var = adsala::variance(truth);
  if (var == 0.0) return 0.0;
  return 1.0 - mse(truth, pred) / var;
}

double normalized_rmse(std::span<const double> truth,
                       std::span<const double> pred) {
  check(truth, pred);
  const double sd = adsala::stddev(truth);
  if (sd == 0.0) return 0.0;
  return rmse(truth, pred) / sd;
}

}  // namespace adsala::ml
