// XGBoost-style gradient-boosted trees (exact greedy splits).
//
// Second-order boosting for squared error (Chen & Guestrin 2016): each round
// fits a regression tree to the gradient/hessian statistics with the
// regularised gain
//   0.5 * (GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda)) - gamma
// and leaf weight -G/(H+lambda), shrunk by the learning rate. Row and column
// subsampling are supported. This is the model the paper ultimately selects
// on both platforms (Tables III/IV).
#pragma once

#include <cstdint>

#include "ml/model.h"
#include "ml/tree.h"  // reuses the flat TreeNode record

namespace adsala::ml {

class XgbRegressor : public Regressor {
 public:
  explicit XgbRegressor(Params params = {}) { set_params(params); }

  void fit(const Dataset& data) override;
  double predict_one(std::span<const double> x) const override;
  std::string name() const override { return "xgboost"; }

  Params get_params() const override {
    return {{"n_estimators", static_cast<double>(n_estimators_)},
            {"max_depth", static_cast<double>(max_depth_)},
            {"learning_rate", learning_rate_},
            {"reg_lambda", reg_lambda_},
            {"gamma", gamma_},
            {"min_child_weight", min_child_weight_},
            {"subsample", subsample_},
            {"colsample", colsample_},
            {"seed", static_cast<double>(seed_)}};
  }
  void set_params(const Params& params) override {
    n_estimators_ = static_cast<int>(param_or(params, "n_estimators", 200));
    max_depth_ = static_cast<int>(param_or(params, "max_depth", 6));
    learning_rate_ = param_or(params, "learning_rate", 0.1);
    reg_lambda_ = param_or(params, "reg_lambda", 1.0);
    gamma_ = param_or(params, "gamma", 0.0);
    min_child_weight_ = param_or(params, "min_child_weight", 1.0);
    subsample_ = param_or(params, "subsample", 1.0);
    colsample_ = param_or(params, "colsample", 1.0);
    seed_ = static_cast<std::uint64_t>(param_or(params, "seed", 17));
  }

  Json save() const override;
  void load(const Json& blob) override;
  std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<XgbRegressor>(get_params());
  }

  std::size_t n_trees() const { return trees_.size(); }
  double base_score() const { return base_score_; }

 private:
  int n_estimators_ = 200;
  int max_depth_ = 6;
  double learning_rate_ = 0.1;
  double reg_lambda_ = 1.0;
  double gamma_ = 0.0;
  double min_child_weight_ = 1.0;
  double subsample_ = 1.0;
  double colsample_ = 1.0;
  std::uint64_t seed_ = 17;

  double base_score_ = 0.0;
  std::vector<std::vector<TreeNode>> trees_;  ///< leaf values pre-shrunk
};

}  // namespace adsala::ml
