#include "ml/adaboost.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace adsala::ml {

void AdaBoostR2::fit(const Dataset& data) {
  check_fit_input(data);
  const std::size_t n = data.size();
  trees_.clear();
  beta_log_.clear();

  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  std::vector<double> errors(n);

  for (int round = 0; round < n_estimators_; ++round) {
    DecisionTree tree({{"max_depth", static_cast<double>(max_depth_)},
                       {"seed", static_cast<double>(seed_ + round)}});
    tree.fit_weighted(data, weights);

    double max_err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      errors[i] = std::fabs(tree.predict_one(data.row(i)) - data.label(i));
      max_err = std::max(max_err, errors[i]);
    }
    if (max_err == 0.0) {  // perfect member; keep it with a large weight
      trees_.push_back(std::move(tree));
      beta_log_.push_back(20.0);
      break;
    }

    double avg_loss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double li = errors[i] / max_err;
      if (loss_ == 1) li *= li;  // square loss variant
      avg_loss += weights[i] * li;
    }
    if (avg_loss >= 0.5) {
      // Drucker's stopping rule: a member worse than random would get a
      // negative weight; stop unless the ensemble is still empty.
      if (!trees_.empty()) break;
      trees_.push_back(std::move(tree));
      beta_log_.push_back(1e-3);
      break;
    }

    const double beta = avg_loss / (1.0 - avg_loss);
    const double weight_log = learning_rate_ * std::log(1.0 / beta);

    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double li = errors[i] / max_err;
      if (loss_ == 1) li *= li;
      weights[i] *= std::pow(beta, learning_rate_ * (1.0 - li));
      sum += weights[i];
    }
    if (sum <= 0.0) break;
    for (auto& w : weights) w /= sum;

    trees_.push_back(std::move(tree));
    beta_log_.push_back(weight_log);
  }
}

double AdaBoostR2::predict_one(std::span<const double> x) const {
  if (trees_.empty()) return 0.0;
  // Weighted median of member predictions (Drucker 1997, eq. at end of SS3).
  std::vector<std::pair<double, double>> pred;  // (prediction, weight)
  pred.reserve(trees_.size());
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    pred.emplace_back(trees_[t].predict_one(x), beta_log_[t]);
  }
  std::sort(pred.begin(), pred.end());
  double total = 0.0;
  for (const auto& [p, w] : pred) total += w;
  double acc = 0.0;
  for (const auto& [p, w] : pred) {
    acc += w;
    if (acc >= 0.5 * total) return p;
  }
  return pred.back().first;
}

Json AdaBoostR2::save() const {
  Json out;
  out["model"] = Json(name());
  JsonObject pj;
  for (const auto& [k, v] : get_params()) pj[k] = Json(v);
  out["params"] = Json(std::move(pj));
  JsonArray trees;
  for (const auto& tree : trees_) trees.push_back(tree.save());
  out["trees"] = Json(std::move(trees));
  out["beta_log"] = Json::from_doubles(beta_log_);
  return out;
}

void AdaBoostR2::load(const Json& blob) {
  Params p;
  for (const auto& [k, v] : blob.at("params").as_object()) {
    p[k] = v.as_number();
  }
  set_params(p);
  trees_.clear();
  for (const auto& tj : blob.at("trees").as_array()) {
    DecisionTree tree;
    tree.load(tj);
    trees_.push_back(std::move(tree));
  }
  beta_log_ = blob.at("beta_log").to_doubles();
}

}  // namespace adsala::ml
