// Small dense linear-algebra helpers for the linear model family.
//
// Feature counts here are 10-20 (Table II), so simple O(n^3) Cholesky on a
// flat row-major array is the right tool; no BLAS dependency is wanted in
// the ML layer (the BLAS substrate is the system under test, not a tool).
#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace adsala::ml {

/// In-place Cholesky factorisation A = L L^T of a row-major n x n SPD
/// matrix; lower triangle receives L. Returns false if A is not positive
/// definite (caller may add jitter and retry).
inline bool cholesky_factor(std::vector<double>& a, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (std::size_t p = 0; p < j; ++p) diag -= a[j * n + p] * a[j * n + p];
    if (diag <= 0.0 || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    a[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a[i * n + j];
      for (std::size_t p = 0; p < j; ++p) v -= a[i * n + p] * a[j * n + p];
      a[i * n + j] = v / ljj;
    }
  }
  return true;
}

/// Solves L L^T x = b given the factor from cholesky_factor; b is replaced
/// by the solution.
inline void cholesky_solve_inplace(const std::vector<double>& l,
                                   std::size_t n, std::vector<double>& b) {
  for (std::size_t i = 0; i < n; ++i) {  // forward: L y = b
    double v = b[i];
    for (std::size_t p = 0; p < i; ++p) v -= l[i * n + p] * b[p];
    b[i] = v / l[i * n + i];
  }
  for (std::size_t ii = n; ii-- > 0;) {  // backward: L^T x = y
    double v = b[ii];
    for (std::size_t p = ii + 1; p < n; ++p) v -= l[p * n + ii] * b[p];
    b[ii] = v / l[ii * n + ii];
  }
}

/// Solves the SPD system A x = b, adding exponentially growing diagonal
/// jitter if the factorisation fails. Throws after repeated failure.
inline std::vector<double> solve_spd(std::vector<double> a, std::size_t n,
                                     std::vector<double> b) {
  double jitter = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::vector<double> f = a;
    if (jitter > 0.0) {
      for (std::size_t i = 0; i < n; ++i) f[i * n + i] += jitter;
    }
    if (cholesky_factor(f, n)) {
      cholesky_solve_inplace(f, n, b);
      return b;
    }
    jitter = jitter == 0.0 ? 1e-10 : jitter * 100.0;
  }
  throw std::runtime_error("solve_spd: matrix is numerically indefinite");
}

}  // namespace adsala::ml
