// Regression quality metrics.
#pragma once

#include <span>

namespace adsala::ml {

double mse(std::span<const double> truth, std::span<const double> pred);
double rmse(std::span<const double> truth, std::span<const double> pred);
double mae(std::span<const double> truth, std::span<const double> pred);

/// Coefficient of determination; 1 = perfect, 0 = predicting the mean.
double r2_score(std::span<const double> truth, std::span<const double> pred);

/// RMSE divided by the truth's standard deviation — the paper's
/// "Normalised Test RMSE" column (1.0 ~ no better than the label mean).
double normalized_rmse(std::span<const double> truth,
                       std::span<const double> pred);

}  // namespace adsala::ml
