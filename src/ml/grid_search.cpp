#include "ml/grid_search.h"

#include <atomic>
#include <cmath>

#include "common/thread_pool.h"
#include "ml/metrics.h"
#include "ml/splits.h"

namespace adsala::ml {

std::vector<Params> expand_grid(const ParamGrid& grid) {
  std::vector<Params> combos = {Params{}};
  for (const auto& [key, values] : grid) {
    std::vector<Params> next;
    next.reserve(combos.size() * values.size());
    for (const auto& base : combos) {
      for (double v : values) {
        Params p = base;
        p[key] = v;
        next.push_back(std::move(p));
      }
    }
    combos = std::move(next);
  }
  return combos;
}

GridSearchResult grid_search_cv(const Regressor& prototype,
                                const Dataset& data, const ParamGrid& grid,
                                std::size_t n_folds, std::uint64_t seed) {
  GridSearchResult result;
  result.all_params = expand_grid(grid);
  result.all_rmse.assign(result.all_params.size(), 0.0);

  const auto folds = kfold(data.labels(), n_folds, seed);

  // Pre-materialise fold datasets once; they are shared read-only.
  std::vector<Dataset> fold_train, fold_test;
  fold_train.reserve(folds.size());
  fold_test.reserve(folds.size());
  for (const auto& f : folds) {
    fold_train.push_back(data.subset(f.train));
    fold_test.push_back(data.subset(f.test));
  }

  // One (combo, fold) task per cell; each clones its own model.
  const std::size_t n_cells = result.all_params.size() * folds.size();
  std::vector<double> cell_rmse(n_cells, 0.0);
  ThreadPool& pool = ThreadPool::global();
  pool.parallel_for(pool.max_threads(), 0, n_cells, [&](std::size_t cell) {
    const std::size_t combo = cell / folds.size();
    const std::size_t fold = cell % folds.size();
    auto model = prototype.clone();
    model->set_params(result.all_params[combo]);
    model->fit(fold_train[fold]);
    const auto pred = model->predict(fold_test[fold]);
    cell_rmse[cell] = rmse(fold_test[fold].labels(), pred);
  });

  std::size_t best = 0;
  for (std::size_t combo = 0; combo < result.all_params.size(); ++combo) {
    double sum = 0.0;
    for (std::size_t fold = 0; fold < folds.size(); ++fold) {
      sum += cell_rmse[combo * folds.size() + fold];
    }
    result.all_rmse[combo] = sum / static_cast<double>(folds.size());
    if (result.all_rmse[combo] < result.all_rmse[best]) best = combo;
  }

  result.best_params = result.all_params[best];
  result.best_rmse = result.all_rmse[best];
  result.best_model = prototype.clone();
  result.best_model->set_params(result.best_params);
  result.best_model->fit(data);
  return result;
}

}  // namespace adsala::ml
