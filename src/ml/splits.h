// Train/test and cross-validation index splitting.
//
// The paper uses stratified sampling for both the train-test split and the
// CV folds (SS IV-C): for regression this means binning the label into
// quantile strata and sampling each stratum proportionally, which keeps the
// heavily-skewed runtime distribution similar across subsets.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace adsala::ml {

struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Random (optionally stratified) train/test split. test_fraction in (0,1).
SplitIndices train_test_split(std::span<const double> labels,
                              double test_fraction, std::uint64_t seed,
                              bool stratify = true, std::size_t n_bins = 10);

/// k-fold cross validation; fold f is {train indices, validation indices}.
/// With stratify, folds are drawn per label-quantile stratum.
std::vector<SplitIndices> kfold(std::span<const double> labels,
                                std::size_t n_folds, std::uint64_t seed,
                                bool stratify = true, std::size_t n_bins = 10);

/// Assigns each label a stratum id in [0, n_bins) by label quantile.
std::vector<std::size_t> quantile_strata(std::span<const double> labels,
                                         std::size_t n_bins);

}  // namespace adsala::ml
