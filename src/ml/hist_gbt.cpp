#include "ml/hist_gbt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/thread_pool.h"

namespace adsala::ml {

namespace {

struct BinCell {
  double g = 0.0;
  double h = 0.0;
  std::size_t count = 0;
};

struct LeafState {
  int node_id = -1;
  std::vector<std::size_t> rows;
  double sum_g = 0.0;
  double sum_h = 0.0;
  int best_feature = -1;
  int best_bin = -1;
  double best_gain = 0.0;
};

double score(double g, double h, double reg_lambda) {
  return g * g / (h + reg_lambda);
}

double tree_predict(const std::vector<TreeNode>& nodes,
                    std::span<const double> x) {
  const TreeNode* node = &nodes[0];
  while (!node->is_leaf()) {
    const auto f = static_cast<std::size_t>(node->feature);
    node = x[f] <= node->threshold
               ? &nodes[static_cast<std::size_t>(node->left)]
               : &nodes[static_cast<std::size_t>(node->right)];
  }
  return node->value;
}

}  // namespace

void LightGbmRegressor::fit(const Dataset& data) {
  check_fit_input(data);
  const std::size_t n = data.size();
  const std::size_t d = data.n_features();
  trees_.clear();

  // ---- quantile binning (once per fit) ------------------------------------
  // edges[j] holds ascending bin upper edges; bin b covers
  // (edges[b-1], edges[b]]; the last bin is open above.
  // Features are independent (each owns its edges[j] and the bins column
  // j), so the sort + bin-assignment fans out over the pool.
  std::vector<std::vector<double>> edges(d);
  std::vector<std::uint16_t> bins(n * d);
  ThreadPool& pool = ThreadPool::global();
  pool.parallel_for(pool.max_threads(), 0, d, [&](std::size_t j) {
    std::vector<double> vals = data.column(j);
    std::sort(vals.begin(), vals.end());
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
    const auto n_bins =
        std::min<std::size_t>(static_cast<std::size_t>(max_bins_),
                              std::max<std::size_t>(vals.size(), 1));
    auto& e = edges[j];
    e.reserve(n_bins);
    for (std::size_t b = 0; b + 1 < n_bins; ++b) {
      const std::size_t idx = (b + 1) * vals.size() / n_bins;
      e.push_back(vals[std::min(idx, vals.size() - 1)]);
    }
    e.push_back(std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < n; ++i) {
      const double v = data.row(i)[j];
      const auto it = std::lower_bound(e.begin(), e.end(), v);
      bins[i * d + j] =
          static_cast<std::uint16_t>(std::distance(e.begin(), it));
    }
  });

  base_score_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) base_score_ += data.label(i);
  base_score_ /= static_cast<double>(n);

  std::vector<double> pred(n, base_score_);
  std::vector<double> g(n), h(n);

  const auto max_b = static_cast<std::size_t>(max_bins_);
  std::vector<BinCell> hist(d * max_b);

  auto find_best_split = [&](LeafState& leaf) {
    leaf.best_feature = -1;
    leaf.best_gain = 0.0;
    if (leaf.rows.size() < 2 * static_cast<std::size_t>(min_child_samples_)) {
      return;
    }
    // Histogram build: each feature owns the disjoint hist slice
    // [j*max_b, (j+1)*max_b), so the accumulation parallelises over
    // features. Small leaves keep the cache-friendlier row-major serial
    // walk instead of paying the fork/join.
    constexpr std::size_t kParallelCells = 1 << 14;
    if (leaf.rows.size() * d >= kParallelCells) {
      pool.parallel_for(pool.max_threads(), 0, d, [&](std::size_t j) {
        BinCell* col = hist.data() + j * max_b;
        std::fill(col, col + max_b, BinCell{});
        for (std::size_t r : leaf.rows) {
          BinCell& cell = col[bins[r * d + j]];
          cell.g += g[r];
          cell.h += h[r];
          ++cell.count;
        }
      });
    } else {
      std::fill(hist.begin(), hist.end(), BinCell{});
      for (std::size_t r : leaf.rows) {
        for (std::size_t j = 0; j < d; ++j) {
          BinCell& cell = hist[j * max_b + bins[r * d + j]];
          cell.g += g[r];
          cell.h += h[r];
          ++cell.count;
        }
      }
    }
    const double parent = score(leaf.sum_g, leaf.sum_h, reg_lambda_);
    for (std::size_t j = 0; j < d; ++j) {
      const std::size_t n_bins = edges[j].size();
      double gl = 0.0, hl = 0.0;
      std::size_t cl = 0;
      for (std::size_t b = 0; b + 1 < n_bins; ++b) {
        const BinCell& cell = hist[j * max_b + b];
        gl += cell.g;
        hl += cell.h;
        cl += cell.count;
        if (cl < static_cast<std::size_t>(min_child_samples_)) continue;
        const std::size_t cr = leaf.rows.size() - cl;
        if (cr < static_cast<std::size_t>(min_child_samples_)) break;
        const double gr = leaf.sum_g - gl;
        const double hr = leaf.sum_h - hl;
        const double gain =
            0.5 * (score(gl, hl, reg_lambda_) + score(gr, hr, reg_lambda_) -
                   parent);
        if (gain > leaf.best_gain) {
          leaf.best_gain = gain;
          leaf.best_feature = static_cast<int>(j);
          leaf.best_bin = static_cast<int>(b);
        }
      }
    }
  };

  for (int round = 0; round < n_estimators_; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      g[i] = pred[i] - data.label(i);
      h[i] = 1.0;
    }

    std::vector<TreeNode> nodes;
    nodes.emplace_back();
    std::vector<LeafState> leaves;

    LeafState root;
    root.node_id = 0;
    root.rows.resize(n);
    std::iota(root.rows.begin(), root.rows.end(), std::size_t{0});
    for (std::size_t i = 0; i < n; ++i) {
      root.sum_g += g[i];
      root.sum_h += h[i];
    }
    find_best_split(root);
    leaves.push_back(std::move(root));

    // Leaf-wise (best-first) growth: always split the leaf with max gain.
    while (static_cast<int>(leaves.size()) < num_leaves_) {
      std::size_t best = leaves.size();
      double best_gain = 0.0;
      for (std::size_t l = 0; l < leaves.size(); ++l) {
        if (leaves[l].best_feature >= 0 && leaves[l].best_gain > best_gain) {
          best_gain = leaves[l].best_gain;
          best = l;
        }
      }
      if (best == leaves.size()) break;  // no leaf has a positive-gain split

      LeafState leaf = std::move(leaves[best]);
      const auto j = static_cast<std::size_t>(leaf.best_feature);
      const auto split_bin = static_cast<std::uint16_t>(leaf.best_bin);

      LeafState left, right;
      for (std::size_t r : leaf.rows) {
        if (bins[r * d + j] <= split_bin) {
          left.rows.push_back(r);
          left.sum_g += g[r];
          left.sum_h += h[r];
        } else {
          right.rows.push_back(r);
          right.sum_g += g[r];
          right.sum_h += h[r];
        }
      }

      left.node_id = static_cast<int>(nodes.size());
      nodes.emplace_back();
      right.node_id = static_cast<int>(nodes.size());
      nodes.emplace_back();
      TreeNode& parent = nodes[static_cast<std::size_t>(leaf.node_id)];
      parent.feature = leaf.best_feature;
      parent.threshold = edges[j][static_cast<std::size_t>(leaf.best_bin)];
      parent.left = left.node_id;
      parent.right = right.node_id;

      find_best_split(left);
      find_best_split(right);
      leaves[best] = std::move(left);
      leaves.push_back(std::move(right));
    }

    for (const auto& leaf : leaves) {
      nodes[static_cast<std::size_t>(leaf.node_id)].value =
          learning_rate_ * (-leaf.sum_g / (leaf.sum_h + reg_lambda_));
    }

    for (std::size_t i = 0; i < n; ++i) {
      pred[i] += tree_predict(nodes, data.row(i));
    }
    trees_.push_back(std::move(nodes));
  }
}

double LightGbmRegressor::predict_one(std::span<const double> x) const {
  double acc = base_score_;
  for (const auto& tree : trees_) acc += tree_predict(tree, x);
  return acc;
}

Json LightGbmRegressor::save() const {
  Json out;
  out["model"] = Json(name());
  JsonObject pj;
  for (const auto& [k, v] : get_params()) pj[k] = Json(v);
  out["params"] = Json(std::move(pj));
  out["base_score"] = Json(base_score_);
  JsonArray trees;
  for (const auto& nodes : trees_) {
    JsonArray features, thresholds, values, lefts, rights;
    for (const auto& node : nodes) {
      features.emplace_back(node.feature);
      thresholds.emplace_back(node.threshold);
      values.emplace_back(node.value);
      lefts.emplace_back(node.left);
      rights.emplace_back(node.right);
    }
    Json tj;
    tj["feature"] = Json(std::move(features));
    tj["threshold"] = Json(std::move(thresholds));
    tj["value"] = Json(std::move(values));
    tj["left"] = Json(std::move(lefts));
    tj["right"] = Json(std::move(rights));
    trees.push_back(std::move(tj));
  }
  out["trees"] = Json(std::move(trees));
  return out;
}

void LightGbmRegressor::load(const Json& blob) {
  Params p;
  for (const auto& [k, v] : blob.at("params").as_object()) {
    p[k] = v.as_number();
  }
  set_params(p);
  base_score_ = blob.at("base_score").as_number();
  trees_.clear();
  for (const auto& tj : blob.at("trees").as_array()) {
    const auto& features = tj.at("feature").as_array();
    std::vector<TreeNode> nodes(features.size());
    for (std::size_t i = 0; i < features.size(); ++i) {
      nodes[i].feature = features[i].as_int();
      nodes[i].threshold = tj.at("threshold").as_array()[i].as_number();
      nodes[i].value = tj.at("value").as_array()[i].as_number();
      nodes[i].left = tj.at("left").as_array()[i].as_int();
      nodes[i].right = tj.at("right").as_array()[i].as_int();
    }
    trees_.push_back(std::move(nodes));
  }
}

}  // namespace adsala::ml
