// k-nearest-neighbours regressor (brute force, optional distance weighting).
//
// Included to reproduce the paper's observation that kNN reaches competitive
// RMSE but its O(n_train) evaluation makes it useless for runtime thread
// selection (SS VI-B: "their slow evaluation speed causes a drastic decrease
// in the estimated speedup"). Inputs are expected pre-standardised by the
// preprocessing pipeline (Euclidean metric).
#pragma once

#include "ml/model.h"

namespace adsala::ml {

class KnnRegressor : public Regressor {
 public:
  explicit KnnRegressor(Params params = {}) { set_params(params); }

  void fit(const Dataset& data) override;
  double predict_one(std::span<const double> x) const override;
  std::string name() const override { return "knn"; }

  Params get_params() const override {
    return {{"k", static_cast<double>(k_)},
            {"distance_weighted", distance_weighted_ ? 1.0 : 0.0}};
  }
  void set_params(const Params& params) override {
    k_ = static_cast<int>(param_or(params, "k", 5));
    distance_weighted_ = param_or(params, "distance_weighted", 0.0) != 0.0;
  }

  Json save() const override;
  void load(const Json& blob) override;
  std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<KnnRegressor>(get_params());
  }

 private:
  int k_ = 5;
  bool distance_weighted_ = false;
  std::size_t d_ = 0;
  std::vector<double> x_;  // row-major training features
  std::vector<double> y_;
};

}  // namespace adsala::ml
