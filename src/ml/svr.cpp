#include "ml/svr.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace adsala::ml {

void SvrRegressor::fit(const Dataset& data) {
  check_fit_input(data);
  const std::size_t n = data.size();
  const std::size_t d = data.n_features();

  // Centre the label so the bias starts near its optimum; features are
  // expected pre-standardised by the pipeline (as for kNN).
  double y_mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) y_mean += data.label(i);
  y_mean /= static_cast<double>(n);

  coef_.assign(d, 0.0);
  intercept_ = y_mean;

  // Pegasos-style schedule: eta_t = 1 / (lambda * t), lambda = 1 / (C * n).
  const double lambda = 1.0 / (c_ * static_cast<double>(n));
  std::vector<double> avg_coef(d, 0.0);
  double avg_intercept = 0.0;
  std::size_t avg_count = 0;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng(seed_);

  std::size_t t = 1;
  for (int epoch = 0; epoch < epochs_; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    for (std::size_t idx : order) {
      const auto x = data.row(idx);
      double pred = intercept_;
      for (std::size_t j = 0; j < d; ++j) pred += coef_[j] * x[j];
      const double residual = pred - data.label(idx);

      const double eta = 1.0 / (lambda * static_cast<double>(t));
      // L2 shrinkage on w (not on the bias).
      const double shrink = 1.0 - eta * lambda;
      for (std::size_t j = 0; j < d; ++j) coef_[j] *= shrink;
      if (std::fabs(residual) > epsilon_) {
        const double g = residual > 0.0 ? 1.0 : -1.0;
        const double step = eta / static_cast<double>(n);
        for (std::size_t j = 0; j < d; ++j) coef_[j] -= step * g * x[j];
        intercept_ -= step * g;
      }
      ++t;

      // Tail averaging over the last half of training stabilises SGD.
      if (epoch >= epochs_ / 2) {
        for (std::size_t j = 0; j < d; ++j) avg_coef[j] += coef_[j];
        avg_intercept += intercept_;
        ++avg_count;
      }
    }
  }
  if (avg_count > 0) {
    for (std::size_t j = 0; j < d; ++j) {
      coef_[j] = avg_coef[j] / static_cast<double>(avg_count);
    }
    intercept_ = avg_intercept / static_cast<double>(avg_count);
  }
}

double SvrRegressor::predict_one(std::span<const double> x) const {
  double acc = intercept_;
  const std::size_t d = std::min(x.size(), coef_.size());
  for (std::size_t j = 0; j < d; ++j) acc += coef_[j] * x[j];
  return acc;
}

Json SvrRegressor::save() const {
  Json out;
  out["model"] = Json(name());
  JsonObject pj;
  for (const auto& [k, v] : get_params()) pj[k] = Json(v);
  out["params"] = Json(std::move(pj));
  out["coef"] = Json::from_doubles(coef_);
  out["intercept"] = Json(intercept_);
  return out;
}

void SvrRegressor::load(const Json& blob) {
  Params p;
  for (const auto& [k, v] : blob.at("params").as_object()) {
    p[k] = v.as_number();
  }
  set_params(p);
  coef_ = blob.at("coef").to_doubles();
  intercept_ = blob.at("intercept").as_number();
}

}  // namespace adsala::ml
