#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stack>

#include "common/rng.h"

namespace adsala::ml {

namespace {

struct BuildItem {
  int node = -1;
  std::size_t begin = 0;  // range in the shared index array
  std::size_t end = 0;
  int depth = 0;
};

struct SplitResult {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;     // SSE reduction
  std::size_t n_left = 0;
};

}  // namespace

void DecisionTree::fit(const Dataset& data) {
  check_fit_input(data);
  const std::vector<double> w(data.size(), 1.0);
  fit_weighted(data, w);
}

void DecisionTree::fit_weighted(const Dataset& data,
                                std::span<const double> weights) {
  check_fit_input(data);
  if (weights.size() != data.size()) {
    throw std::invalid_argument("DecisionTree: weight count mismatch");
  }
  const std::size_t n = data.size();
  const std::size_t d = data.n_features();
  nodes_.clear();

  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), std::size_t{0});

  Rng rng(seed_);
  const auto n_try = static_cast<std::size_t>(
      std::clamp(max_features_, 1.0 / static_cast<double>(d), 1.0) *
          static_cast<double>(d) +
      0.999);
  std::vector<std::size_t> feature_ids(d);
  std::iota(feature_ids.begin(), feature_ids.end(), std::size_t{0});

  // Scratch reused across nodes.
  std::vector<std::pair<double, std::size_t>> sorted;  // (x_j, row index)
  sorted.reserve(n);

  auto weighted_mean = [&](std::size_t begin, std::size_t end) {
    double sw = 0.0, swy = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t r = indices[i];
      sw += weights[r];
      swy += weights[r] * data.label(r);
    }
    return sw > 0.0 ? swy / sw : 0.0;
  };

  auto best_split = [&](std::size_t begin, std::size_t end) -> SplitResult {
    SplitResult best;
    const std::size_t count = end - begin;

    double sw = 0.0, swy = 0.0, swy2 = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t r = indices[i];
      const double w = weights[r];
      const double y = data.label(r);
      sw += w;
      swy += w * y;
      swy2 += w * y * y;
    }
    if (sw <= 0.0) return best;
    const double parent_sse = swy2 - swy * swy / sw;
    if (parent_sse <= 1e-12) return best;  // already pure

    // Feature subsample (forest-style) drawn fresh per node.
    if (n_try < d) {
      for (std::size_t i = 0; i < n_try; ++i) {
        const auto j =
            i + static_cast<std::size_t>(rng.below(d - i));
        std::swap(feature_ids[i], feature_ids[j]);
      }
    }

    for (std::size_t t = 0; t < n_try; ++t) {
      const std::size_t j = feature_ids[t];
      sorted.clear();
      for (std::size_t i = begin; i < end; ++i) {
        sorted.emplace_back(data.row(indices[i])[j], indices[i]);
      }
      std::sort(sorted.begin(), sorted.end());
      if (sorted.front().first == sorted.back().first) continue;

      double lw = 0.0, lwy = 0.0, lwy2 = 0.0;
      for (std::size_t i = 0; i + 1 < count; ++i) {
        const std::size_t r = sorted[i].second;
        const double w = weights[r];
        const double y = data.label(r);
        lw += w;
        lwy += w * y;
        lwy2 += w * y * y;
        if (sorted[i].first == sorted[i + 1].first) continue;
        const std::size_t n_left = i + 1;
        if (n_left < static_cast<std::size_t>(min_samples_leaf_) ||
            count - n_left < static_cast<std::size_t>(min_samples_leaf_)) {
          continue;
        }
        const double rw = sw - lw;
        if (lw <= 0.0 || rw <= 0.0) continue;
        const double sse_left = lwy2 - lwy * lwy / lw;
        const double rwy = swy - lwy;
        const double rwy2 = swy2 - lwy2;
        const double sse_right = rwy2 - rwy * rwy / rw;
        const double gain = parent_sse - sse_left - sse_right;
        if (gain > best.gain) {
          best.feature = static_cast<int>(j);
          best.threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
          best.gain = gain;
          best.n_left = n_left;
        }
      }
    }
    return best;
  };

  nodes_.emplace_back();
  std::stack<BuildItem> todo;
  todo.push({0, 0, n, 0});

  while (!todo.empty()) {
    const BuildItem item = todo.top();
    todo.pop();
    TreeNode& node = nodes_[static_cast<std::size_t>(item.node)];
    node.value = weighted_mean(item.begin, item.end);

    const std::size_t count = item.end - item.begin;
    if (item.depth >= max_depth_ ||
        count < static_cast<std::size_t>(min_samples_split_)) {
      continue;
    }
    const SplitResult split = best_split(item.begin, item.end);
    if (split.feature < 0 || split.gain <= 0.0) continue;

    // Partition the shared index range in place.
    const auto mid_it = std::partition(
        indices.begin() + static_cast<std::ptrdiff_t>(item.begin),
        indices.begin() + static_cast<std::ptrdiff_t>(item.end),
        [&](std::size_t r) {
          return data.row(r)[static_cast<std::size_t>(split.feature)] <=
                 split.threshold;
        });
    const auto mid =
        static_cast<std::size_t>(mid_it - indices.begin());
    if (mid == item.begin || mid == item.end) continue;  // numeric ties

    const int left_id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    const int right_id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    // nodes_ may have reallocated; re-reference.
    TreeNode& parent = nodes_[static_cast<std::size_t>(item.node)];
    parent.feature = split.feature;
    parent.threshold = split.threshold;
    parent.left = left_id;
    parent.right = right_id;

    todo.push({left_id, item.begin, mid, item.depth + 1});
    todo.push({right_id, mid, item.end, item.depth + 1});
  }
}

double DecisionTree::predict_one(std::span<const double> x) const {
  if (nodes_.empty()) return 0.0;
  const TreeNode* node = &nodes_[0];
  while (!node->is_leaf()) {
    const auto f = static_cast<std::size_t>(node->feature);
    node = x[f] <= node->threshold
               ? &nodes_[static_cast<std::size_t>(node->left)]
               : &nodes_[static_cast<std::size_t>(node->right)];
  }
  return node->value;
}

std::size_t DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  std::size_t max_depth = 0;
  std::stack<std::pair<int, std::size_t>> todo;
  todo.push({0, 1});
  while (!todo.empty()) {
    const auto [id, depth] = todo.top();
    todo.pop();
    max_depth = std::max(max_depth, depth);
    const TreeNode& node = nodes_[static_cast<std::size_t>(id)];
    if (!node.is_leaf()) {
      todo.push({node.left, depth + 1});
      todo.push({node.right, depth + 1});
    }
  }
  return max_depth;
}

Json DecisionTree::save() const {
  Json out;
  out["model"] = Json(name());
  JsonObject pj;
  for (const auto& [k, v] : get_params()) pj[k] = Json(v);
  out["params"] = Json(std::move(pj));
  JsonArray features, thresholds, values, lefts, rights;
  for (const auto& node : nodes_) {
    features.emplace_back(node.feature);
    thresholds.emplace_back(node.threshold);
    values.emplace_back(node.value);
    lefts.emplace_back(node.left);
    rights.emplace_back(node.right);
  }
  out["feature"] = Json(std::move(features));
  out["threshold"] = Json(std::move(thresholds));
  out["value"] = Json(std::move(values));
  out["left"] = Json(std::move(lefts));
  out["right"] = Json(std::move(rights));
  return out;
}

void DecisionTree::load(const Json& blob) {
  Params p;
  for (const auto& [k, v] : blob.at("params").as_object()) {
    p[k] = v.as_number();
  }
  set_params(p);
  const auto& features = blob.at("feature").as_array();
  nodes_.assign(features.size(), TreeNode{});
  for (std::size_t i = 0; i < features.size(); ++i) {
    nodes_[i].feature = features[i].as_int();
    nodes_[i].threshold = blob.at("threshold").as_array()[i].as_number();
    nodes_[i].value = blob.at("value").as_array()[i].as_number();
    nodes_[i].left = blob.at("left").as_array()[i].as_int();
    nodes_[i].right = blob.at("right").as_array()[i].as_int();
  }
}

}  // namespace adsala::ml
