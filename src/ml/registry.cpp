#include "ml/registry.h"

#include <stdexcept>

#include "ml/adaboost.h"
#include "ml/forest.h"
#include "ml/gbt.h"
#include "ml/hist_gbt.h"
#include "ml/knn.h"
#include "ml/linear.h"
#include "ml/svr.h"
#include "ml/tree.h"

namespace adsala::ml {

std::unique_ptr<Regressor> make_model(const std::string& name,
                                      const Params& params) {
  if (name == "linear_regression") {
    return std::make_unique<LinearRegression>(params);
  }
  if (name == "elastic_net") return std::make_unique<ElasticNet>(params);
  if (name == "bayesian_ridge") return std::make_unique<BayesianRidge>(params);
  if (name == "decision_tree") return std::make_unique<DecisionTree>(params);
  if (name == "random_forest") return std::make_unique<RandomForest>(params);
  if (name == "adaboost") return std::make_unique<AdaBoostR2>(params);
  if (name == "xgboost") return std::make_unique<XgbRegressor>(params);
  if (name == "lightgbm") return std::make_unique<LightGbmRegressor>(params);
  if (name == "knn") return std::make_unique<KnnRegressor>(params);
  if (name == "svr") return std::make_unique<SvrRegressor>(params);
  throw std::invalid_argument("make_model: unknown model '" + name + "'");
}

std::vector<std::string> model_names() {
  return {"linear_regression", "elastic_net", "bayesian_ridge",
          "decision_tree",     "random_forest", "adaboost",
          "xgboost",           "lightgbm",      "knn",
          "svr"};
}

std::unique_ptr<Regressor> load_model(const Json& blob) {
  auto model = make_model(blob.at("model").as_string());
  model->load(blob);
  return model;
}

ParamGrid default_grid(const std::string& name) {
  if (name == "linear_regression") {
    return {{"alpha", {0.0, 0.1, 1.0}}};
  }
  if (name == "elastic_net") {
    return {{"alpha", {0.001, 0.01, 0.1}}, {"l1_ratio", {0.2, 0.5, 0.8}}};
  }
  if (name == "bayesian_ridge") {
    return {};  // evidence maximisation self-tunes
  }
  if (name == "decision_tree") {
    return {{"max_depth", {6, 10, 14}}, {"min_samples_leaf", {1, 4}}};
  }
  if (name == "random_forest") {
    return {{"n_estimators", {100}},
            {"max_depth", {12, 18}},
            {"max_features", {0.5, 0.8}}};
  }
  if (name == "adaboost") {
    return {{"n_estimators", {50}},
            {"max_depth", {4, 6}},
            {"learning_rate", {0.5, 1.0}}};
  }
  if (name == "xgboost") {
    return {{"n_estimators", {150}},
            {"max_depth", {4, 6}},
            {"learning_rate", {0.05, 0.1}},
            {"reg_lambda", {1.0}}};
  }
  if (name == "lightgbm") {
    return {{"n_estimators", {150}},
            {"num_leaves", {31, 63}},
            {"learning_rate", {0.05, 0.1}}};
  }
  if (name == "knn") {
    return {{"k", {3, 5, 9}}, {"distance_weighted", {0.0, 1.0}}};
  }
  if (name == "svr") {
    return {{"c", {0.1, 1.0, 10.0}}, {"epsilon", {0.05, 0.1}}};
  }
  throw std::invalid_argument("default_grid: unknown model '" + name + "'");
}

}  // namespace adsala::ml
