// Common interface for every regression model in the candidate zoo.
//
// The paper's model-selection loop (SS IV-D) needs three things from a model:
// fit on the preprocessed training set, predict fast at GEMM runtime, and
// serialise to the installation-produced model file. Hyper-parameters are a
// flat string->double map so GridSearchCV can sweep any model uniformly.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/json.h"
#include "ml/dataset.h"

namespace adsala::ml {

using Params = std::map<std::string, double>;

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on the dataset; replaces any previous fit. Throws
  /// std::invalid_argument on an empty dataset.
  virtual void fit(const Dataset& data) = 0;

  /// Predicts one row (feature order must match the training set).
  virtual double predict_one(std::span<const double> x) const = 0;

  /// Batch prediction; default loops over predict_one.
  virtual std::vector<double> predict(const Dataset& data) const;

  virtual std::string name() const = 0;

  virtual Params get_params() const = 0;
  /// Unknown keys are ignored so one grid can drive several models.
  virtual void set_params(const Params& params) = 0;

  /// Serialises the *fitted* state (plus hyper-parameters).
  virtual Json save() const = 0;
  virtual void load(const Json& blob) = 0;

  /// Fresh unfitted copy carrying the same hyper-parameters.
  virtual std::unique_ptr<Regressor> clone() const = 0;

 protected:
  static void check_fit_input(const Dataset& data);
  static double param_or(const Params& p, const std::string& key,
                         double fallback);
};

}  // namespace adsala::ml
