#include "ml/gbt.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stack>

#include "common/rng.h"

namespace adsala::ml {

namespace {

struct GradPair {
  double g = 0.0;
  double h = 0.0;
};

struct BuildItem {
  int node = -1;
  std::size_t begin = 0;
  std::size_t end = 0;
  int depth = 0;
};

double leaf_weight(double g, double h, double reg_lambda) {
  return -g / (h + reg_lambda);
}

double score(double g, double h, double reg_lambda) {
  return g * g / (h + reg_lambda);
}

double tree_predict(const std::vector<TreeNode>& nodes,
                    std::span<const double> x) {
  const TreeNode* node = &nodes[0];
  while (!node->is_leaf()) {
    const auto f = static_cast<std::size_t>(node->feature);
    node = x[f] <= node->threshold
               ? &nodes[static_cast<std::size_t>(node->left)]
               : &nodes[static_cast<std::size_t>(node->right)];
  }
  return node->value;
}

}  // namespace

void XgbRegressor::fit(const Dataset& data) {
  check_fit_input(data);
  const std::size_t n = data.size();
  const std::size_t d = data.n_features();
  trees_.clear();

  base_score_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) base_score_ += data.label(i);
  base_score_ /= static_cast<double>(n);

  std::vector<double> pred(n, base_score_);
  std::vector<GradPair> grad(n);
  Rng rng(seed_);

  std::vector<std::size_t> feature_ids(d);
  std::iota(feature_ids.begin(), feature_ids.end(), std::size_t{0});
  const auto n_cols = static_cast<std::size_t>(
      std::clamp(colsample_, 1.0 / static_cast<double>(d), 1.0) *
          static_cast<double>(d) +
      0.999);

  std::vector<std::pair<double, std::size_t>> sorted;
  sorted.reserve(n);

  for (int round = 0; round < n_estimators_; ++round) {
    // Squared-error gradients w.r.t. current prediction.
    for (std::size_t i = 0; i < n; ++i) {
      grad[i].g = pred[i] - data.label(i);
      grad[i].h = 1.0;
    }

    // Row subsample for this round.
    std::vector<std::size_t> rows;
    rows.reserve(n);
    if (subsample_ < 1.0) {
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.uniform() < subsample_) rows.push_back(i);
      }
      if (rows.size() < 2) {
        rows.resize(n);
        std::iota(rows.begin(), rows.end(), std::size_t{0});
      }
    } else {
      rows.resize(n);
      std::iota(rows.begin(), rows.end(), std::size_t{0});
    }

    // Column subsample for this round.
    if (n_cols < d) {
      for (std::size_t i = 0; i < n_cols; ++i) {
        const auto j = i + static_cast<std::size_t>(rng.below(d - i));
        std::swap(feature_ids[i], feature_ids[j]);
      }
    }

    std::vector<TreeNode> nodes;
    nodes.emplace_back();
    std::stack<BuildItem> todo;
    todo.push({0, 0, rows.size(), 0});

    while (!todo.empty()) {
      const BuildItem item = todo.top();
      todo.pop();

      double sum_g = 0.0, sum_h = 0.0;
      for (std::size_t i = item.begin; i < item.end; ++i) {
        sum_g += grad[rows[i]].g;
        sum_h += grad[rows[i]].h;
      }
      nodes[static_cast<std::size_t>(item.node)].value =
          learning_rate_ * leaf_weight(sum_g, sum_h, reg_lambda_);

      if (item.depth >= max_depth_ || item.end - item.begin < 2) continue;

      // Exact greedy split over the sampled feature set.
      int best_feature = -1;
      double best_threshold = 0.0;
      double best_gain = 0.0;
      const double parent_score = score(sum_g, sum_h, reg_lambda_);

      for (std::size_t t = 0; t < n_cols; ++t) {
        const std::size_t j = feature_ids[t];
        sorted.clear();
        for (std::size_t i = item.begin; i < item.end; ++i) {
          sorted.emplace_back(data.row(rows[i])[j], rows[i]);
        }
        std::sort(sorted.begin(), sorted.end());
        if (sorted.front().first == sorted.back().first) continue;

        double gl = 0.0, hl = 0.0;
        for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
          gl += grad[sorted[i].second].g;
          hl += grad[sorted[i].second].h;
          if (sorted[i].first == sorted[i + 1].first) continue;
          const double hr = sum_h - hl;
          if (hl < min_child_weight_ || hr < min_child_weight_) continue;
          const double gr = sum_g - gl;
          const double gain = 0.5 * (score(gl, hl, reg_lambda_) +
                                     score(gr, hr, reg_lambda_) -
                                     parent_score) -
                              gamma_;
          if (gain > best_gain) {
            best_gain = gain;
            best_feature = static_cast<int>(j);
            best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
          }
        }
      }

      if (best_feature < 0) continue;

      const auto mid_it = std::partition(
          rows.begin() + static_cast<std::ptrdiff_t>(item.begin),
          rows.begin() + static_cast<std::ptrdiff_t>(item.end),
          [&](std::size_t r) {
            return data.row(r)[static_cast<std::size_t>(best_feature)] <=
                   best_threshold;
          });
      const auto mid = static_cast<std::size_t>(mid_it - rows.begin());
      if (mid == item.begin || mid == item.end) continue;

      const int left_id = static_cast<int>(nodes.size());
      nodes.emplace_back();
      const int right_id = static_cast<int>(nodes.size());
      nodes.emplace_back();
      TreeNode& parent = nodes[static_cast<std::size_t>(item.node)];
      parent.feature = best_feature;
      parent.threshold = best_threshold;
      parent.left = left_id;
      parent.right = right_id;

      todo.push({left_id, item.begin, mid, item.depth + 1});
      todo.push({right_id, mid, item.end, item.depth + 1});
    }

    for (std::size_t i = 0; i < n; ++i) {
      pred[i] += tree_predict(nodes, data.row(i));
    }
    trees_.push_back(std::move(nodes));
  }
}

double XgbRegressor::predict_one(std::span<const double> x) const {
  double acc = base_score_;
  for (const auto& tree : trees_) acc += tree_predict(tree, x);
  return acc;
}

Json XgbRegressor::save() const {
  Json out;
  out["model"] = Json(name());
  JsonObject pj;
  for (const auto& [k, v] : get_params()) pj[k] = Json(v);
  out["params"] = Json(std::move(pj));
  out["base_score"] = Json(base_score_);
  JsonArray trees;
  for (const auto& nodes : trees_) {
    JsonArray features, thresholds, values, lefts, rights;
    for (const auto& node : nodes) {
      features.emplace_back(node.feature);
      thresholds.emplace_back(node.threshold);
      values.emplace_back(node.value);
      lefts.emplace_back(node.left);
      rights.emplace_back(node.right);
    }
    Json tj;
    tj["feature"] = Json(std::move(features));
    tj["threshold"] = Json(std::move(thresholds));
    tj["value"] = Json(std::move(values));
    tj["left"] = Json(std::move(lefts));
    tj["right"] = Json(std::move(rights));
    trees.push_back(std::move(tj));
  }
  out["trees"] = Json(std::move(trees));
  return out;
}

void XgbRegressor::load(const Json& blob) {
  Params p;
  for (const auto& [k, v] : blob.at("params").as_object()) {
    p[k] = v.as_number();
  }
  set_params(p);
  base_score_ = blob.at("base_score").as_number();
  trees_.clear();
  for (const auto& tj : blob.at("trees").as_array()) {
    const auto& features = tj.at("feature").as_array();
    std::vector<TreeNode> nodes(features.size());
    for (std::size_t i = 0; i < features.size(); ++i) {
      nodes[i].feature = features[i].as_int();
      nodes[i].threshold = tj.at("threshold").as_array()[i].as_number();
      nodes[i].value = tj.at("value").as_array()[i].as_number();
      nodes[i].left = tj.at("left").as_array()[i].as_int();
      nodes[i].right = tj.at("right").as_array()[i].as_int();
    }
    trees_.push_back(std::move(nodes));
  }
}

}  // namespace adsala::ml
