// Model factory: name -> fresh Regressor, plus polymorphic deserialisation.
//
// The runtime library only knows the model file's "model" tag (Fig. 3 loads
// whatever installation saved); this registry turns that tag back into a
// concrete model. It also enumerates the paper's candidate zoo with the
// per-model hyper-parameter grids used by the Tables III/IV experiment.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/grid_search.h"
#include "ml/model.h"

namespace adsala::ml {

/// Creates an unfitted model by registry name; throws on unknown names.
/// Known names: linear_regression, elastic_net, bayesian_ridge,
/// decision_tree, random_forest, adaboost, xgboost, lightgbm, knn.
std::unique_ptr<Regressor> make_model(const std::string& name,
                                      const Params& params = {});

/// All registered model names (the candidate zoo, paper Table I).
std::vector<std::string> model_names();

/// Restores a fitted model from its save() blob (dispatches on blob["model"]).
std::unique_ptr<Regressor> load_model(const Json& blob);

/// Default hyper-parameter grid per model for grid_search_cv; small grids
/// for the heavyweight models keep installation-time tuning tractable.
ParamGrid default_grid(const std::string& name);

}  // namespace adsala::ml
