#include "ml/splits.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/rng.h"

namespace adsala::ml {

std::vector<std::size_t> quantile_strata(std::span<const double> labels,
                                         std::size_t n_bins) {
  const std::size_t n = labels.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return labels[a] < labels[b]; });
  std::vector<std::size_t> strata(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    strata[order[rank]] = std::min(n_bins - 1, rank * n_bins / std::max<std::size_t>(n, 1));
  }
  return strata;
}

namespace {

/// Groups indices by stratum (single group when stratify is off), each group
/// shuffled with its own deterministic stream.
std::vector<std::vector<std::size_t>> make_groups(
    std::span<const double> labels, bool stratify, std::size_t n_bins,
    std::uint64_t seed) {
  const std::size_t n = labels.size();
  std::vector<std::vector<std::size_t>> groups;
  if (stratify && n >= 2 * n_bins) {
    const auto strata = quantile_strata(labels, n_bins);
    groups.assign(n_bins, {});
    for (std::size_t i = 0; i < n; ++i) groups[strata[i]].push_back(i);
  } else {
    groups.assign(1, std::vector<std::size_t>(n));
    std::iota(groups[0].begin(), groups[0].end(), std::size_t{0});
  }
  Rng rng(seed);
  for (auto& g : groups) std::shuffle(g.begin(), g.end(), rng);
  return groups;
}

}  // namespace

SplitIndices train_test_split(std::span<const double> labels,
                              double test_fraction, std::uint64_t seed,
                              bool stratify, std::size_t n_bins) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("train_test_split: fraction must be in (0,1)");
  }
  SplitIndices out;
  for (const auto& group : make_groups(labels, stratify, n_bins, seed)) {
    const auto n_test = static_cast<std::size_t>(
        static_cast<double>(group.size()) * test_fraction + 0.5);
    for (std::size_t i = 0; i < group.size(); ++i) {
      (i < n_test ? out.test : out.train).push_back(group[i]);
    }
  }
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.test.begin(), out.test.end());
  return out;
}

std::vector<SplitIndices> kfold(std::span<const double> labels,
                                std::size_t n_folds, std::uint64_t seed,
                                bool stratify, std::size_t n_bins) {
  if (n_folds < 2 || n_folds > labels.size()) {
    throw std::invalid_argument("kfold: need 2 <= n_folds <= n");
  }
  std::vector<std::vector<std::size_t>> fold_members(n_folds);
  for (const auto& group : make_groups(labels, stratify, n_bins, seed)) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      fold_members[i % n_folds].push_back(group[i]);
    }
  }
  std::vector<SplitIndices> out(n_folds);
  for (std::size_t f = 0; f < n_folds; ++f) {
    out[f].test = fold_members[f];
    for (std::size_t g = 0; g < n_folds; ++g) {
      if (g == f) continue;
      out[f].train.insert(out[f].train.end(), fold_members[g].begin(),
                          fold_members[g].end());
    }
    std::sort(out[f].train.begin(), out[f].train.end());
    std::sort(out[f].test.begin(), out[f].test.end());
  }
  return out;
}

}  // namespace adsala::ml
