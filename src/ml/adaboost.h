// AdaBoost.R2 (Drucker 1997): serial boosting of CART trees for regression.
//
// Each round re-weights samples by relative prediction error and the
// ensemble predicts with the *weighted median* of its members -- the detail
// that distinguishes R2 from naive averaging boosters.
#pragma once

#include "ml/tree.h"

namespace adsala::ml {

class AdaBoostR2 : public Regressor {
 public:
  explicit AdaBoostR2(Params params = {}) { set_params(params); }

  void fit(const Dataset& data) override;
  double predict_one(std::span<const double> x) const override;
  std::string name() const override { return "adaboost"; }

  Params get_params() const override {
    return {{"n_estimators", static_cast<double>(n_estimators_)},
            {"max_depth", static_cast<double>(max_depth_)},
            {"learning_rate", learning_rate_},
            {"loss", static_cast<double>(loss_)},
            {"seed", static_cast<double>(seed_)}};
  }
  void set_params(const Params& params) override {
    n_estimators_ = static_cast<int>(param_or(params, "n_estimators", 50));
    max_depth_ = static_cast<int>(param_or(params, "max_depth", 4));
    learning_rate_ = param_or(params, "learning_rate", 1.0);
    loss_ = static_cast<int>(param_or(params, "loss", 0));  // 0=linear,1=square
    seed_ = static_cast<std::uint64_t>(param_or(params, "seed", 13));
  }

  Json save() const override;
  void load(const Json& blob) override;
  std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<AdaBoostR2>(get_params());
  }

  std::size_t n_trees() const { return trees_.size(); }
  const std::vector<double>& estimator_weights() const { return beta_log_; }

 private:
  int n_estimators_ = 50;
  int max_depth_ = 4;
  double learning_rate_ = 1.0;
  int loss_ = 0;
  std::uint64_t seed_ = 13;
  std::vector<DecisionTree> trees_;
  std::vector<double> beta_log_;  ///< log(1/beta_t), the estimator weights
};

}  // namespace adsala::ml
