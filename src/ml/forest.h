// Random forest regressor: bagged CART trees with feature subsampling.
//
// Trees are trained in parallel on the process thread pool (Breiman-style
// independence makes this embarrassingly parallel). Evaluation averages all
// trees -- which is why the paper measures the forest as accurate but too
// slow to beat the GEMM it is trying to accelerate (Tables III/IV).
#pragma once

#include "ml/tree.h"

namespace adsala::ml {

class RandomForest : public Regressor {
 public:
  explicit RandomForest(Params params = {}) { set_params(params); }

  void fit(const Dataset& data) override;
  double predict_one(std::span<const double> x) const override;
  std::string name() const override { return "random_forest"; }

  Params get_params() const override {
    return {{"n_estimators", static_cast<double>(n_estimators_)},
            {"max_depth", static_cast<double>(max_depth_)},
            {"min_samples_leaf", static_cast<double>(min_samples_leaf_)},
            {"max_features", max_features_},
            {"seed", static_cast<double>(seed_)}};
  }
  void set_params(const Params& params) override {
    n_estimators_ = static_cast<int>(param_or(params, "n_estimators", 100));
    max_depth_ = static_cast<int>(param_or(params, "max_depth", 16));
    min_samples_leaf_ =
        static_cast<int>(param_or(params, "min_samples_leaf", 1));
    max_features_ = param_or(params, "max_features", 0.5);
    seed_ = static_cast<std::uint64_t>(param_or(params, "seed", 11));
  }

  Json save() const override;
  void load(const Json& blob) override;
  std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<RandomForest>(get_params());
  }

  std::size_t n_trees() const { return trees_.size(); }

 private:
  int n_estimators_ = 100;
  int max_depth_ = 16;
  int min_samples_leaf_ = 1;
  double max_features_ = 0.5;
  std::uint64_t seed_ = 11;
  std::vector<DecisionTree> trees_;
};

}  // namespace adsala::ml
