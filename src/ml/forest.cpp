#include "ml/forest.h"

#include "common/rng.h"
#include "common/thread_pool.h"

namespace adsala::ml {

void RandomForest::fit(const Dataset& data) {
  check_fit_input(data);
  const std::size_t n = data.size();
  trees_.assign(static_cast<std::size_t>(n_estimators_), DecisionTree{});

  // Bootstrap weights are drawn sequentially (deterministic order), the
  // expensive tree builds run on the pool.
  std::vector<std::vector<double>> weights(trees_.size());
  Rng rng(seed_);
  for (auto& w : weights) {
    w.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) w[rng.below(n)] += 1.0;
  }

  ThreadPool& pool = ThreadPool::global();
  pool.parallel_for(pool.max_threads(), 0, trees_.size(), [&](std::size_t t) {
    Params p = {{"max_depth", static_cast<double>(max_depth_)},
                {"min_samples_leaf", static_cast<double>(min_samples_leaf_)},
                {"max_features", max_features_},
                {"seed", static_cast<double>(seed_ + 1 + t)}};
    trees_[t].set_params(p);
    trees_[t].fit_weighted(data, weights[t]);
  });
}

double RandomForest::predict_one(std::span<const double> x) const {
  if (trees_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.predict_one(x);
  return sum / static_cast<double>(trees_.size());
}

Json RandomForest::save() const {
  Json out;
  out["model"] = Json(name());
  JsonObject pj;
  for (const auto& [k, v] : get_params()) pj[k] = Json(v);
  out["params"] = Json(std::move(pj));
  JsonArray trees;
  for (const auto& tree : trees_) trees.push_back(tree.save());
  out["trees"] = Json(std::move(trees));
  return out;
}

void RandomForest::load(const Json& blob) {
  Params p;
  for (const auto& [k, v] : blob.at("params").as_object()) {
    p[k] = v.as_number();
  }
  set_params(p);
  trees_.clear();
  for (const auto& tj : blob.at("trees").as_array()) {
    DecisionTree tree;
    tree.load(tj);
    trees_.push_back(std::move(tree));
  }
}

}  // namespace adsala::ml
