// Linear epsilon-insensitive Support Vector Regression.
//
// Completes the paper's Table I model inventory. The paper argues SVMs are
// unsuited to this dataset (low dimensionality, no benefit from the kernel
// trick at this scale) and excludes them from the tuned candidates; this
// implementation lets that claim be tested rather than assumed. Training is
// averaged stochastic subgradient descent on the primal objective
//   C * sum_i max(0, |w.x_i + b - y_i| - epsilon) + 0.5 ||w||^2.
#pragma once

#include "ml/model.h"

namespace adsala::ml {

class SvrRegressor : public Regressor {
 public:
  explicit SvrRegressor(Params params = {}) { set_params(params); }

  void fit(const Dataset& data) override;
  double predict_one(std::span<const double> x) const override;
  std::string name() const override { return "svr"; }

  Params get_params() const override {
    return {{"c", c_},
            {"epsilon", epsilon_},
            {"epochs", static_cast<double>(epochs_)},
            {"seed", static_cast<double>(seed_)}};
  }
  void set_params(const Params& params) override {
    c_ = param_or(params, "c", 1.0);
    epsilon_ = param_or(params, "epsilon", 0.1);
    epochs_ = static_cast<int>(param_or(params, "epochs", 60));
    seed_ = static_cast<std::uint64_t>(param_or(params, "seed", 23));
  }

  Json save() const override;
  void load(const Json& blob) override;
  std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<SvrRegressor>(get_params());
  }

  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

 private:
  double c_ = 1.0;
  double epsilon_ = 0.1;
  int epochs_ = 60;
  std::uint64_t seed_ = 23;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

}  // namespace adsala::ml
