#include "ml/model.h"

#include <stdexcept>

namespace adsala::ml {

std::vector<double> Regressor::predict(const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out.push_back(predict_one(data.row(i)));
  }
  return out;
}

void Regressor::check_fit_input(const Dataset& data) {
  if (data.empty() || data.n_features() == 0) {
    throw std::invalid_argument("Regressor::fit: empty dataset");
  }
}

double Regressor::param_or(const Params& p, const std::string& key,
                           double fallback) {
  const auto it = p.find(key);
  return it == p.end() ? fallback : it->second;
}

}  // namespace adsala::ml
