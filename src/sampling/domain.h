// Memory-capped GEMM / SYRK shape domain samplers.
//
// GemmDomainSampler maps scrambled-Halton points in [0,1)^3 to (m, k, n)
// triples whose aggregate operand footprint elem_bytes*(mk + kn + mn) stays
// under a cap (the paper's 100 MB / 500 MB domains). Coordinates use a
// square-root scale -- u^2 stretched over [1, dim_max] -- matching the
// paper's sqrt-scaled heatmap axes, so slim/skinny shapes are as well
// represented as square ones; points over the cap are rejected and the
// sequence advanced.
//
// SyrkDomainSampler is the two-dimensional sibling for the SYRK family
// (n, k): A is n x k, C is n x n, footprint elem_bytes*(nk + nn). It shares
// the cap, bounds, and sqrt scale of the GEMM domain so an operation-aware
// gathering campaign covers both operations over the same territory.
#pragma once

#include <cstdint>
#include <vector>

#include "sampling/halton.h"
#include "simarch/machine_model.h"

namespace adsala::sampling {

struct DomainConfig {
  std::size_t memory_cap_bytes = 500ull * 1024 * 1024;
  int elem_bytes = 4;
  long dim_max = 74000;  ///< per-dimension upper bound (paper heatmap extent)
  long dim_min = 1;
  std::vector<unsigned> bases = {2, 3, 4};  ///< paper SS IV-B choice for m,k,n
  std::uint64_t seed = 1234;
};

class GemmDomainSampler {
 public:
  explicit GemmDomainSampler(DomainConfig config);

  /// Draws `count` in-domain shapes (rejection sampling over the sequence).
  /// A per-dimension Cranley-Patterson rotation (seeded from the config) is
  /// applied on top of the scrambled sequence: digit scrambling with
  /// pi(0) = 0 cannot break the simultaneous-near-zero alignment of bases
  /// 2 and 4 at power-of-four indices, and without the rotation the sampler
  /// emits degenerate sliver shapes (m = n = 2) the paper's data does not
  /// contain.
  std::vector<simarch::GemmShape> sample(std::size_t count);

  /// Maps one [0,1)^3 point to a (possibly out-of-cap) shape; exposed for
  /// tests of the scale mapping.
  simarch::GemmShape map_point(const std::vector<double>& u) const;

  bool in_domain(const simarch::GemmShape& shape) const;

  const DomainConfig& config() const { return config_; }

 private:
  DomainConfig config_;
  ScrambledHalton sequence_;
  std::vector<double> rotation_;  ///< Cranley-Patterson shift per dimension
};

/// Samples the SYRK (n, k) family under the same DomainConfig. Uses the
/// first two Halton bases and a rotation stream decorrelated from the GEMM
/// sampler's, so a mixed campaign does not probe the same diagonal twice.
/// Returned shapes carry m == n (the equivalent-GEMM convention used
/// throughout the op-aware pipeline).
class SyrkDomainSampler {
 public:
  explicit SyrkDomainSampler(DomainConfig config);

  /// Draws `count` in-domain shapes (rejection sampling over the sequence).
  std::vector<simarch::GemmShape> sample(std::size_t count);

  /// Maps one [0,1)^2 point to a (possibly out-of-cap) shape with m == n.
  simarch::GemmShape map_point(const std::vector<double>& u) const;

  /// In-domain test on the SYRK footprint elem_bytes*(nk + nn).
  bool in_domain(const simarch::GemmShape& shape) const;

  const DomainConfig& config() const { return config_; }

 private:
  DomainConfig config_;
  ScrambledHalton sequence_;
  std::vector<double> rotation_;
};

}  // namespace adsala::sampling
