// Memory-capped shape domain samplers for the served operation family.
//
// GemmDomainSampler maps scrambled-Halton points in [0,1)^3 to (m, k, n)
// triples whose aggregate operand footprint elem_bytes*(mk + kn + mn) stays
// under a cap (the paper's 100 MB / 500 MB domains). Coordinates use a
// square-root scale -- u^2 stretched over [1, dim_max] -- matching the
// paper's sqrt-scaled heatmap axes, so slim/skinny shapes are as well
// represented as square ones; points over the cap are rejected and the
// sequence advanced.
//
// The 2-D family samplers cover the rest of the operation family, each under
// the same cap, bounds, and sqrt scale, so an operation-aware gathering
// campaign probes every operation over the same territory (stored-shape
// conventions in docs/OPERATIONS.md). They are all instances of ONE
// declarative Family2DSampler: a Family2DSpec gives the stored-shape marker
// (m == n or m == k), the operation's true memory footprint, and a rotation
// salt that decorrelates the sampler's Cranley-Patterson stream from every
// sibling. The op registry (core/op_registry.cpp) owns one spec per
// operation; the named samplers below are thin aliases kept for direct use:
//   SyrkDomainSampler  (n, k): A n x k, C n x n; stored with m == n;
//                      footprint elem_bytes*(nk + nn).
//   TrsmDomainSampler  (n, m): A n x n triangular, B n x m right-hand
//                      sides; stored with m == k == n; footprint
//                      elem_bytes*(nn + nm).
//   SymmDomainSampler  (n, m): A n x n symmetric, B and C n x m; stored
//                      with m == k == n; footprint elem_bytes*(nn + 2nm).
#pragma once

#include <cstdint>
#include <vector>

#include "sampling/halton.h"
#include "simarch/machine_model.h"

namespace adsala::sampling {

struct DomainConfig {
  std::size_t memory_cap_bytes = 500ull * 1024 * 1024;
  int elem_bytes = 4;
  long dim_max = 74000;  ///< per-dimension upper bound (paper heatmap extent)
  long dim_min = 1;
  std::vector<unsigned> bases = {2, 3, 4};  ///< paper SS IV-B choice for m,k,n
  std::uint64_t seed = 1234;
};

/// Common interface of every shape-domain sampler; the op registry hands
/// these out so gathering code never names a concrete sampler type.
class DomainSampler {
 public:
  virtual ~DomainSampler() = default;

  /// Draws `count` in-domain shapes (rejection sampling over the sequence).
  virtual std::vector<simarch::GemmShape> sample(std::size_t count) = 0;

  /// Maps one [0,1)^d point to a (possibly out-of-cap) shape; exposed for
  /// tests of the scale mapping.
  virtual simarch::GemmShape map_point(const std::vector<double>& u) const = 0;

  virtual bool in_domain(const simarch::GemmShape& shape) const = 0;

  virtual const DomainConfig& config() const = 0;
};

class GemmDomainSampler : public DomainSampler {
 public:
  explicit GemmDomainSampler(DomainConfig config);

  /// Draws `count` in-domain shapes (rejection sampling over the sequence).
  /// A per-dimension Cranley-Patterson rotation (seeded from the config) is
  /// applied on top of the scrambled sequence: digit scrambling with
  /// pi(0) = 0 cannot break the simultaneous-near-zero alignment of bases
  /// 2 and 4 at power-of-four indices, and without the rotation the sampler
  /// emits degenerate sliver shapes (m = n = 2) the paper's data does not
  /// contain.
  std::vector<simarch::GemmShape> sample(std::size_t count) override;

  simarch::GemmShape map_point(const std::vector<double>& u) const override;

  bool in_domain(const simarch::GemmShape& shape) const override;

  const DomainConfig& config() const override { return config_; }

 private:
  DomainConfig config_;
  ScrambledHalton sequence_;
  std::vector<double> rotation_;  ///< Cranley-Patterson shift per dimension
};

/// Declarative description of one 2-D operation family; the registry row of
/// each non-GEMM operation provides one.
struct Family2DSpec {
  const char* who = "Family2DSampler";  ///< error-message prefix
  /// Salt of the Cranley-Patterson rotation stream: a mixed campaign with
  /// one DomainConfig must never probe two operations on identical
  /// diagonals, so every family picks a fresh value.
  std::uint64_t rotation_salt = 0;
  /// Stored-shape marker: true for the SYRK convention (coords (n, k),
  /// stored as (n, k, n) with m == n), false for the triangular/symmetric
  /// convention (coords (n, m), stored as (n, n, m) with m == k).
  bool m_equals_n = false;
  /// The operation's true aggregate operand footprint in bytes, evaluated on
  /// the stored equivalent-GEMM shape.
  double (*footprint_bytes)(const simarch::GemmShape& shape) = nullptr;
};

/// One generic sampler serving every 2-D family: maps the first two Halton
/// bases through the sqrt scale, applies the spec's stored-shape convention,
/// and rejects on the spec's footprint.
class Family2DSampler : public DomainSampler {
 public:
  Family2DSampler(const Family2DSpec& spec, DomainConfig config);

  std::vector<simarch::GemmShape> sample(std::size_t count) override;

  /// Maps one [0,1)^2 point to a (possibly out-of-cap) shape carrying the
  /// family's marker convention.
  simarch::GemmShape map_point(const std::vector<double>& u) const override;

  /// In-domain test on the family's true footprint.
  bool in_domain(const simarch::GemmShape& shape) const override;

  const DomainConfig& config() const override { return config_; }

 private:
  Family2DSpec spec_;
  DomainConfig config_;
  ScrambledHalton sequence_;
  std::vector<double> rotation_;
};

/// Named aliases of the registered family specs (see the header comment for
/// conventions); kept so tests and direct users need not go through the
/// registry.
class SyrkDomainSampler : public Family2DSampler {
 public:
  explicit SyrkDomainSampler(DomainConfig config);
};

class TrsmDomainSampler : public Family2DSampler {
 public:
  explicit TrsmDomainSampler(DomainConfig config);
};

class SymmDomainSampler : public Family2DSampler {
 public:
  explicit SymmDomainSampler(DomainConfig config);
};

}  // namespace adsala::sampling
