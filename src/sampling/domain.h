// Memory-capped shape domain samplers for the served operation family.
//
// GemmDomainSampler maps scrambled-Halton points in [0,1)^3 to (m, k, n)
// triples whose aggregate operand footprint elem_bytes*(mk + kn + mn) stays
// under a cap (the paper's 100 MB / 500 MB domains). Coordinates use a
// square-root scale -- u^2 stretched over [1, dim_max] -- matching the
// paper's sqrt-scaled heatmap axes, so slim/skinny shapes are as well
// represented as square ones; points over the cap are rejected and the
// sequence advanced.
//
// The two-dimensional siblings cover the rest of the family, each under the
// same cap, bounds, and sqrt scale so an operation-aware gathering campaign
// probes every operation over the same territory (stored-shape conventions
// in docs/OPERATIONS.md):
//   SyrkDomainSampler  (n, k): A n x k, C n x n; stored with m == n;
//                      footprint elem_bytes*(nk + nn).
//   TrsmDomainSampler  (n, m): A n x n triangular, B n x m right-hand
//                      sides; stored with m == k == n; footprint
//                      elem_bytes*(nn + nm).
//   SymmDomainSampler  (n, m): A n x n symmetric, B and C n x m; stored
//                      with m == k == n; footprint elem_bytes*(nn + 2nm).
#pragma once

#include <cstdint>
#include <vector>

#include "sampling/halton.h"
#include "simarch/machine_model.h"

namespace adsala::sampling {

struct DomainConfig {
  std::size_t memory_cap_bytes = 500ull * 1024 * 1024;
  int elem_bytes = 4;
  long dim_max = 74000;  ///< per-dimension upper bound (paper heatmap extent)
  long dim_min = 1;
  std::vector<unsigned> bases = {2, 3, 4};  ///< paper SS IV-B choice for m,k,n
  std::uint64_t seed = 1234;
};

class GemmDomainSampler {
 public:
  explicit GemmDomainSampler(DomainConfig config);

  /// Draws `count` in-domain shapes (rejection sampling over the sequence).
  /// A per-dimension Cranley-Patterson rotation (seeded from the config) is
  /// applied on top of the scrambled sequence: digit scrambling with
  /// pi(0) = 0 cannot break the simultaneous-near-zero alignment of bases
  /// 2 and 4 at power-of-four indices, and without the rotation the sampler
  /// emits degenerate sliver shapes (m = n = 2) the paper's data does not
  /// contain.
  std::vector<simarch::GemmShape> sample(std::size_t count);

  /// Maps one [0,1)^3 point to a (possibly out-of-cap) shape; exposed for
  /// tests of the scale mapping.
  simarch::GemmShape map_point(const std::vector<double>& u) const;

  bool in_domain(const simarch::GemmShape& shape) const;

  const DomainConfig& config() const { return config_; }

 private:
  DomainConfig config_;
  ScrambledHalton sequence_;
  std::vector<double> rotation_;  ///< Cranley-Patterson shift per dimension
};

/// Samples the SYRK (n, k) family under the same DomainConfig. Uses the
/// first two Halton bases and a rotation stream decorrelated from the GEMM
/// sampler's, so a mixed campaign does not probe the same diagonal twice.
/// Returned shapes carry m == n (the equivalent-GEMM convention used
/// throughout the op-aware pipeline).
class SyrkDomainSampler {
 public:
  explicit SyrkDomainSampler(DomainConfig config);

  /// Draws `count` in-domain shapes (rejection sampling over the sequence).
  std::vector<simarch::GemmShape> sample(std::size_t count);

  /// Maps one [0,1)^2 point to a (possibly out-of-cap) shape with m == n.
  simarch::GemmShape map_point(const std::vector<double>& u) const;

  /// In-domain test on the SYRK footprint elem_bytes*(nk + nn).
  bool in_domain(const simarch::GemmShape& shape) const;

  const DomainConfig& config() const { return config_; }

 private:
  DomainConfig config_;
  ScrambledHalton sequence_;
  std::vector<double> rotation_;
};

/// Samples the TRSM (n, m) family: A is an n x n triangle, B carries m
/// right-hand-side columns. Returned shapes use the equivalent-GEMM
/// convention GemmShape{m = n_tri, k = n_tri, n = m_rhs} (m == k marks the
/// triangular families); rotation stream decorrelated from every sibling.
class TrsmDomainSampler {
 public:
  explicit TrsmDomainSampler(DomainConfig config);

  std::vector<simarch::GemmShape> sample(std::size_t count);

  /// Maps one [0,1)^2 point to a (possibly out-of-cap) shape with m == k.
  simarch::GemmShape map_point(const std::vector<double>& u) const;

  /// In-domain test on the TRSM footprint elem_bytes*(nn + nm).
  bool in_domain(const simarch::GemmShape& shape) const;

  const DomainConfig& config() const { return config_; }

 private:
  DomainConfig config_;
  ScrambledHalton sequence_;
  std::vector<double> rotation_;
};

/// Samples the SYMM (n, m) family: A is a symmetric n x n matrix, B and C
/// are n x m. Same stored-shape convention as TRSM (m == k); in-domain test
/// uses the SYMM footprint elem_bytes*(nn + 2nm).
class SymmDomainSampler {
 public:
  explicit SymmDomainSampler(DomainConfig config);

  std::vector<simarch::GemmShape> sample(std::size_t count);

  simarch::GemmShape map_point(const std::vector<double>& u) const;

  bool in_domain(const simarch::GemmShape& shape) const;

  const DomainConfig& config() const { return config_; }

 private:
  DomainConfig config_;
  ScrambledHalton sequence_;
  std::vector<double> rotation_;
};

}  // namespace adsala::sampling
