#include "sampling/halton.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"

namespace adsala::sampling {

double radical_inverse(std::uint64_t index, unsigned base) {
  if (base < 2) throw std::invalid_argument("radical_inverse: base < 2");
  double result = 0.0;
  double inv_base_pow = 1.0 / base;
  while (index > 0) {
    result += static_cast<double>(index % base) * inv_base_pow;
    index /= base;
    inv_base_pow /= base;
  }
  return result;
}

HaltonSequence::HaltonSequence(std::vector<unsigned> bases)
    : bases_(std::move(bases)) {
  for (unsigned b : bases_) {
    if (b < 2) throw std::invalid_argument("HaltonSequence: base < 2");
  }
}

std::vector<double> HaltonSequence::point(std::uint64_t index) const {
  std::vector<double> out(bases_.size());
  for (std::size_t d = 0; d < bases_.size(); ++d) {
    out[d] = radical_inverse(index, bases_[d]);
  }
  return out;
}

std::vector<double> HaltonSequence::next() { return point(cursor_++); }

ScrambledHalton::ScrambledHalton(std::vector<unsigned> bases,
                                 std::uint64_t seed)
    : bases_(std::move(bases)) {
  Rng rng(seed);
  perms_.reserve(bases_.size());
  for (unsigned b : bases_) {
    if (b < 2) throw std::invalid_argument("ScrambledHalton: base < 2");
    std::vector<unsigned> perm(b);
    for (unsigned d = 0; d < b; ++d) perm[d] = d;
    // Fisher-Yates over digits 1..b-1; pi(0) must stay 0 so that the
    // implicit infinite tail of zero digits contributes nothing.
    for (unsigned i = b - 1; i >= 2; --i) {
      const auto j = static_cast<unsigned>(rng.range(1, i));
      std::swap(perm[i], perm[j]);
    }
    perms_.push_back(std::move(perm));
  }
}

std::vector<double> ScrambledHalton::point(std::uint64_t index) const {
  std::vector<double> out(bases_.size());
  for (std::size_t d = 0; d < bases_.size(); ++d) {
    const unsigned base = bases_[d];
    const auto& perm = perms_[d];
    std::uint64_t i = index;
    double result = 0.0;
    double inv_base_pow = 1.0 / base;
    while (i > 0) {
      result += static_cast<double>(perm[i % base]) * inv_base_pow;
      i /= base;
      inv_base_pow /= base;
    }
    out[d] = result;
  }
  return out;
}

std::vector<double> ScrambledHalton::next() { return point(cursor_++); }

}  // namespace adsala::sampling
