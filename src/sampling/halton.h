// Halton and scrambled-Halton low-discrepancy sequences.
//
// The paper samples GEMM input shapes with a *scrambled* Halton sequence in
// bases 2, 3, 4 for (m, k, n) (SS IV-B): scrambling breaks the correlation
// between coordinates that plain Halton exhibits in higher/composite bases.
// Scrambling here is digit-permutation scrambling with pi(0) = 0 (so finite
// digit expansions stay finite), the classic Braaten-Weller construction.
#pragma once

#include <cstdint>
#include <vector>

namespace adsala::sampling {

/// Radical inverse of `index` in the given base: the core of Halton.
double radical_inverse(std::uint64_t index, unsigned base);

/// Plain multi-dimensional Halton sequence (deterministic, no scrambling).
class HaltonSequence {
 public:
  explicit HaltonSequence(std::vector<unsigned> bases);

  std::size_t dimensions() const { return bases_.size(); }

  /// i-th point of the sequence (0-based); each coordinate in [0, 1).
  std::vector<double> point(std::uint64_t index) const;

  /// Next point of the stream, starting at index 1 (index 0 is all-zeros,
  /// conventionally skipped).
  std::vector<double> next();

 private:
  std::vector<unsigned> bases_;
  std::uint64_t cursor_ = 1;
};

/// Digit-permutation scrambled Halton sequence. Each base gets an independent
/// random permutation of its digit alphabet with pi(0) = 0.
class ScrambledHalton {
 public:
  ScrambledHalton(std::vector<unsigned> bases, std::uint64_t seed);

  std::size_t dimensions() const { return bases_.size(); }
  std::vector<double> point(std::uint64_t index) const;
  std::vector<double> next();

  /// Exposed for tests: the permutation used for dimension d.
  const std::vector<unsigned>& permutation(std::size_t d) const {
    return perms_[d];
  }

 private:
  std::vector<unsigned> bases_;
  std::vector<std::vector<unsigned>> perms_;
  std::uint64_t cursor_ = 1;
};

}  // namespace adsala::sampling
