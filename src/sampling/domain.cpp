#include "sampling/domain.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/rng.h"

namespace adsala::sampling {

namespace {

/// sqrt-scale: uniform in sqrt(dim) space => denser coverage of the small
/// dimensions the paper's motivation targets.
long sqrt_scale(double x, long dim_min, long dim_max) {
  const double lo = std::sqrt(static_cast<double>(dim_min));
  const double hi = std::sqrt(static_cast<double>(dim_max));
  const double s = lo + x * (hi - lo);
  return std::max(dim_min, static_cast<long>(std::llround(s * s)));
}

void check_bounds(const DomainConfig& config, const char* who) {
  if (config.dim_min < 1 || config.dim_max < config.dim_min) {
    throw std::invalid_argument(std::string(who) + ": bad dimension bounds");
  }
}

/// Shared rejection-sampling loop: advance the rotated sequence until
/// `count` in-domain shapes are drawn. The sqrt-scaled cube contains many
/// over-cap points (large in every dimension); guard against a degenerate
/// config where nothing fits by capping the attempts.
template <typename MapFn, typename InDomainFn>
std::vector<simarch::GemmShape> sample_rejection(
    ScrambledHalton& sequence, const std::vector<double>& rotation,
    std::size_t count, const char* who, MapFn&& map_point,
    InDomainFn&& in_domain) {
  std::vector<simarch::GemmShape> out;
  out.reserve(count);
  std::size_t attempts = 0;
  const std::size_t max_attempts = count * 10000 + 100000;
  while (out.size() < count && attempts < max_attempts) {
    ++attempts;
    std::vector<double> u = sequence.next();
    for (std::size_t d = 0; d < u.size(); ++d) {
      u[d] += rotation[d];
      if (u[d] >= 1.0) u[d] -= 1.0;  // torus wrap (Cranley-Patterson)
    }
    const simarch::GemmShape shape = map_point(u);
    if (in_domain(shape)) out.push_back(shape);
  }
  if (out.size() < count) {
    throw std::runtime_error(
        std::string(who) +
        ": rejection sampling failed to fill the request; memory cap too "
        "tight for dim_max");
  }
  return out;
}

/// First two configured Halton bases (defaults 2, 3): shared by every 2-D
/// family sampler.
std::vector<unsigned> first_two_bases(const DomainConfig& config) {
  return {config.bases.size() > 0 ? config.bases[0] : 2u,
          config.bases.size() > 1 ? config.bases[1] : 3u};
}

/// Cranley-Patterson rotation stream; each sampler passes its own salt so a
/// mixed-op campaign with one DomainConfig never times two operations on
/// identical diagonals.
std::vector<double> make_rotation(std::uint64_t seed, std::uint64_t salt,
                                  std::size_t dims) {
  Rng rng(seed ^ salt);
  std::vector<double> rot(dims);
  for (auto& r : rot) r = rng.uniform();
  return rot;
}

double syrk_footprint(const simarch::GemmShape& s) {
  return static_cast<double>(s.elem_bytes) *
         (static_cast<double>(s.n) * s.k + static_cast<double>(s.n) * s.n);
}

double trsm_footprint(const simarch::GemmShape& s) {
  return static_cast<double>(s.elem_bytes) *
         (static_cast<double>(s.m) * s.m + static_cast<double>(s.m) * s.n);
}

double symm_footprint(const simarch::GemmShape& s) {
  return static_cast<double>(s.elem_bytes) *
         (static_cast<double>(s.m) * s.m +
          2.0 * static_cast<double>(s.m) * s.n);
}

}  // namespace

GemmDomainSampler::GemmDomainSampler(DomainConfig config)
    : config_(std::move(config)),
      sequence_(config_.bases, config_.seed) {
  if (config_.bases.size() != 3) {
    throw std::invalid_argument("GemmDomainSampler: need exactly 3 bases");
  }
  check_bounds(config_, "GemmDomainSampler");
  rotation_ = make_rotation(config_.seed, 0x0c5a9d21ull, config_.bases.size());
}

simarch::GemmShape GemmDomainSampler::map_point(
    const std::vector<double>& u) const {
  simarch::GemmShape shape;
  shape.m = sqrt_scale(u[0], config_.dim_min, config_.dim_max);
  shape.k = sqrt_scale(u[1], config_.dim_min, config_.dim_max);
  shape.n = sqrt_scale(u[2], config_.dim_min, config_.dim_max);
  shape.elem_bytes = config_.elem_bytes;
  return shape;
}

bool GemmDomainSampler::in_domain(const simarch::GemmShape& shape) const {
  return shape.bytes() <= static_cast<double>(config_.memory_cap_bytes) &&
         shape.m >= config_.dim_min && shape.m <= config_.dim_max &&
         shape.k >= config_.dim_min && shape.k <= config_.dim_max &&
         shape.n >= config_.dim_min && shape.n <= config_.dim_max;
}

std::vector<simarch::GemmShape> GemmDomainSampler::sample(std::size_t count) {
  return sample_rejection(
      sequence_, rotation_, count, "GemmDomainSampler",
      [this](const std::vector<double>& u) { return map_point(u); },
      [this](const simarch::GemmShape& s) { return in_domain(s); });
}

Family2DSampler::Family2DSampler(const Family2DSpec& spec, DomainConfig config)
    : spec_(spec),
      config_(std::move(config)),
      sequence_(first_two_bases(config_), config_.seed) {
  check_bounds(config_, spec_.who);
  rotation_ = make_rotation(config_.seed, spec_.rotation_salt, 2);
}

simarch::GemmShape Family2DSampler::map_point(
    const std::vector<double>& u) const {
  simarch::GemmShape shape;
  if (spec_.m_equals_n) {
    // SYRK convention: coords (n, k), stored (n, k, n).
    shape.n = sqrt_scale(u[0], config_.dim_min, config_.dim_max);
    shape.k = sqrt_scale(u[1], config_.dim_min, config_.dim_max);
    shape.m = shape.n;
  } else {
    // Triangular/symmetric convention: coords (n, m), stored (n, n, m).
    shape.m = sqrt_scale(u[0], config_.dim_min, config_.dim_max);
    shape.n = sqrt_scale(u[1], config_.dim_min, config_.dim_max);
    shape.k = shape.m;
  }
  shape.elem_bytes = config_.elem_bytes;
  return shape;
}

bool Family2DSampler::in_domain(const simarch::GemmShape& shape) const {
  // The two free family coordinates must respect the dimension bounds; the
  // derived third is equal to one of them by the marker convention.
  const long c0 = spec_.m_equals_n ? shape.n : shape.m;
  const long c1 = spec_.m_equals_n ? shape.k : shape.n;
  const bool marker =
      spec_.m_equals_n ? shape.m == shape.n : shape.m == shape.k;
  return marker &&
         spec_.footprint_bytes(shape) <=
             static_cast<double>(config_.memory_cap_bytes) &&
         c0 >= config_.dim_min && c0 <= config_.dim_max &&
         c1 >= config_.dim_min && c1 <= config_.dim_max;
}

std::vector<simarch::GemmShape> Family2DSampler::sample(std::size_t count) {
  return sample_rejection(
      sequence_, rotation_, count, spec_.who,
      [this](const std::vector<double>& u) { return map_point(u); },
      [this](const simarch::GemmShape& s) { return in_domain(s); });
}

SyrkDomainSampler::SyrkDomainSampler(DomainConfig config)
    : Family2DSampler(Family2DSpec{"SyrkDomainSampler", 0x5a9c0d17ull,
                                   /*m_equals_n=*/true, &syrk_footprint},
                      std::move(config)) {}

TrsmDomainSampler::TrsmDomainSampler(DomainConfig config)
    : Family2DSampler(Family2DSpec{"TrsmDomainSampler", 0x7c31e8a5ull,
                                   /*m_equals_n=*/false, &trsm_footprint},
                      std::move(config)) {}

SymmDomainSampler::SymmDomainSampler(DomainConfig config)
    : Family2DSampler(Family2DSpec{"SymmDomainSampler", 0x19f4b26dull,
                                   /*m_equals_n=*/false, &symm_footprint},
                      std::move(config)) {}

}  // namespace adsala::sampling
