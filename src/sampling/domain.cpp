#include "sampling/domain.h"

#include <cmath>
#include <stdexcept>

#include "common/rng.h"

namespace adsala::sampling {

GemmDomainSampler::GemmDomainSampler(DomainConfig config)
    : config_(std::move(config)),
      sequence_(config_.bases, config_.seed) {
  if (config_.bases.size() != 3) {
    throw std::invalid_argument("GemmDomainSampler: need exactly 3 bases");
  }
  if (config_.dim_min < 1 || config_.dim_max < config_.dim_min) {
    throw std::invalid_argument("GemmDomainSampler: bad dimension bounds");
  }
  Rng rng(config_.seed ^ 0x0c5a9d21ull);
  rotation_.resize(config_.bases.size());
  for (auto& r : rotation_) r = rng.uniform();
}

simarch::GemmShape GemmDomainSampler::map_point(
    const std::vector<double>& u) const {
  auto scale = [&](double x) {
    // sqrt-scale: uniform in sqrt(dim) space => denser coverage of the small
    // dimensions the paper's motivation targets.
    const double lo = std::sqrt(static_cast<double>(config_.dim_min));
    const double hi = std::sqrt(static_cast<double>(config_.dim_max));
    const double s = lo + x * (hi - lo);
    return static_cast<long>(std::llround(s * s));
  };
  simarch::GemmShape shape;
  shape.m = std::max(config_.dim_min, scale(u[0]));
  shape.k = std::max(config_.dim_min, scale(u[1]));
  shape.n = std::max(config_.dim_min, scale(u[2]));
  shape.elem_bytes = config_.elem_bytes;
  return shape;
}

bool GemmDomainSampler::in_domain(const simarch::GemmShape& shape) const {
  return shape.bytes() <= static_cast<double>(config_.memory_cap_bytes) &&
         shape.m >= config_.dim_min && shape.m <= config_.dim_max &&
         shape.k >= config_.dim_min && shape.k <= config_.dim_max &&
         shape.n >= config_.dim_min && shape.n <= config_.dim_max;
}

std::vector<simarch::GemmShape> GemmDomainSampler::sample(std::size_t count) {
  std::vector<simarch::GemmShape> out;
  out.reserve(count);
  // Rejection sampling: the sqrt-scaled cube contains many over-cap points
  // (large m AND large n AND large k); guard against a degenerate config
  // where nothing fits by capping the attempts.
  std::size_t attempts = 0;
  const std::size_t max_attempts = count * 10000 + 100000;
  while (out.size() < count && attempts < max_attempts) {
    ++attempts;
    std::vector<double> u = sequence_.next();
    for (std::size_t d = 0; d < u.size(); ++d) {
      u[d] += rotation_[d];
      if (u[d] >= 1.0) u[d] -= 1.0;  // torus wrap (Cranley-Patterson)
    }
    const simarch::GemmShape shape = map_point(u);
    if (in_domain(shape)) out.push_back(shape);
  }
  if (out.size() < count) {
    throw std::runtime_error(
        "GemmDomainSampler: rejection sampling failed to fill the request; "
        "memory cap too tight for dim_max");
  }
  return out;
}

}  // namespace adsala::sampling
