// Per-feature standardisation (zero mean, unit variance).
//
// Applied after Yeo-Johnson so every feature lands on a comparable scale —
// a precondition for both LOF (density in Euclidean space) and the distance-
// based models (paper SS IV-C).
#pragma once

#include <span>
#include <vector>

namespace adsala::preprocess {

class StandardScaler {
 public:
  void fit(std::span<const double> xs);

  void set_moments(double mean, double stddev) {
    mean_ = mean;
    stddev_ = stddev <= 0.0 ? 1.0 : stddev;
  }
  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

  double transform(double x) const { return (x - mean_) / stddev_; }
  double inverse(double z) const { return z * stddev_ + mean_; }

  std::vector<double> transform(std::span<const double> xs) const;

 private:
  double mean_ = 0.0;
  double stddev_ = 1.0;
};

}  // namespace adsala::preprocess
