// Local Outlier Factor (Breunig et al. 2000).
//
// Density-based outlier scoring: a point whose local reachability density is
// much lower than its neighbours' gets LOF >> 1. The paper applies LOF after
// standardisation (it needs comparable scales) to drop both global and local
// outliers from the gathered timing data (SS II-C, SS IV-C).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace adsala::preprocess {

/// LOF score per row. `rows` is row-major n x d. k is the neighbourhood
/// size (MinPts). Brute-force O(n^2 d) — fine for the ~10^3-row datasets.
std::vector<double> lof_scores(std::span<const double> rows, std::size_t n,
                               std::size_t d, std::size_t k = 20);

/// Indices of rows whose LOF score is <= threshold (the inliers).
std::vector<std::size_t> lof_inliers(std::span<const double> rows,
                                     std::size_t n, std::size_t d,
                                     std::size_t k = 20,
                                     double threshold = 1.5);

}  // namespace adsala::preprocess
