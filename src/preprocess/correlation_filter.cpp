#include "preprocess/correlation_filter.h"

#include <cmath>

#include "common/stats.h"

namespace adsala::preprocess {

std::vector<double> correlation_matrix(const ml::Dataset& data) {
  const std::size_t d = data.n_features();
  std::vector<std::vector<double>> cols(d);
  for (std::size_t j = 0; j < d; ++j) cols[j] = data.column(j);
  std::vector<double> corr(d * d, 1.0);
  for (std::size_t a = 0; a < d; ++a) {
    for (std::size_t b = a + 1; b < d; ++b) {
      const double r = adsala::pearson(cols[a], cols[b]);
      corr[a * d + b] = r;
      corr[b * d + a] = r;
    }
  }
  return corr;
}

std::vector<std::size_t> correlation_filter(const ml::Dataset& data,
                                            double threshold) {
  const std::size_t d = data.n_features();
  const auto corr = correlation_matrix(data);

  std::vector<bool> dropped(d, false);
  // Total absolute correlation of each feature against all others.
  auto total_corr = [&](std::size_t j) {
    double s = 0.0;
    for (std::size_t o = 0; o < d; ++o) {
      if (o != j && !dropped[o]) s += std::fabs(corr[j * d + o]);
    }
    return s;
  };

  // Greedy: repeatedly find the worst surviving correlated pair and drop the
  // member with the larger total correlation, until no pair exceeds the
  // threshold.
  while (true) {
    std::size_t best_a = d, best_b = d;
    double best_r = threshold;
    for (std::size_t a = 0; a < d; ++a) {
      if (dropped[a]) continue;
      for (std::size_t b = a + 1; b < d; ++b) {
        if (dropped[b]) continue;
        const double r = std::fabs(corr[a * d + b]);
        if (r > best_r) {
          best_r = r;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_a == d) break;
    dropped[total_corr(best_a) >= total_corr(best_b) ? best_a : best_b] = true;
  }

  std::vector<std::size_t> keep;
  for (std::size_t j = 0; j < d; ++j) {
    if (!dropped[j]) keep.push_back(j);
  }
  return keep;
}

}  // namespace adsala::preprocess
