// Correlated-feature removal.
//
// For every feature pair with |Pearson r| above the threshold (paper: 0.80),
// the member with the larger total absolute correlation against all other
// features is dropped (paper SS IV-C). Returns the indices of the surviving
// features, preserving order.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/dataset.h"

namespace adsala::preprocess {

std::vector<std::size_t> correlation_filter(const ml::Dataset& data,
                                            double threshold = 0.80);

/// Full symmetric correlation matrix (d x d, row-major), for diagnostics.
std::vector<double> correlation_matrix(const ml::Dataset& data);

}  // namespace adsala::preprocess
