#include "preprocess/features.h"

namespace adsala::preprocess {

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> names = {
      // Group 1: serial-runtime terms.
      "m", "k", "n", "n_threads", "m*k", "m*n", "k*n", "m*k*n",
      "m*k+k*n+m*n",
      // Group 2: parallel-runtime terms.
      "m/t", "k/t", "n/t", "m*k/t", "m*n/t", "k*n/t", "m*k*n/t",
      "(m*k+k*n+m*n)/t"};
  return names;
}

const std::vector<std::string>& op_aware_feature_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> all = feature_names();
    all.insert(all.end(),
               {"op_gemm", "op_syrk", "kernel_generic", "kernel_avx2"});
    return all;
  }();
  return names;
}

std::vector<std::size_t> group1_indices() {
  return {0, 1, 2, 3, 4, 5, 6, 7, 8};
}

std::vector<std::size_t> categorical_indices() {
  std::vector<std::size_t> idx;
  for (std::size_t j = kNumFeatures; j < kNumOpAwareFeatures; ++j) {
    idx.push_back(j);
  }
  return idx;
}

std::array<double, kNumFeatures> make_features(double m, double k, double n,
                                               double t) {
  const double mk = m * k;
  const double mn = m * n;
  const double kn = k * n;
  const double mkn = m * k * n;
  const double total = mk + kn + mn;
  return {m,      k,      n,      t,      mk,     mn,      kn,     mkn,
          total,  m / t,  k / t,  n / t,  mk / t, mn / t,  kn / t, mkn / t,
          total / t};
}

std::array<double, kNumOpAwareFeatures> make_op_aware_features(
    double m, double k, double n, double t, blas::OpKind op,
    blas::kernels::Variant variant) {
  const auto base = make_features(m, k, n, t);
  std::array<double, kNumOpAwareFeatures> out{};
  for (std::size_t j = 0; j < kNumFeatures; ++j) out[j] = base[j];
  out[kNumFeatures + 0] = op == blas::OpKind::kGemm ? 1.0 : 0.0;
  out[kNumFeatures + 1] = op == blas::OpKind::kSyrk ? 1.0 : 0.0;
  out[kNumFeatures + 2] =
      variant == blas::kernels::Variant::kGeneric ? 1.0 : 0.0;
  out[kNumFeatures + 3] = variant == blas::kernels::Variant::kAvx2 ? 1.0 : 0.0;
  return out;
}

}  // namespace adsala::preprocess
