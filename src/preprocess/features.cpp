#include "preprocess/features.h"

#include <algorithm>

namespace adsala::preprocess {

namespace {

// The op one-hot block is indexed by op code; the table codes must stay
// contiguous from 0 for that to hold.
static_assert([] {
  int code = 0;
  for (const auto op : blas::all_ops()) {
    if (blas::op_code(op) != code++) return false;
  }
  return true;
}());

/// Kernel-variant one-hot block appended after the op block. `n_cols` is 3
/// (current schema: generic, avx2, avx512) or 2 (legacy artefacts, which
/// predate the AVX-512 tier: an avx512 query is proxied as its nearest
/// tier, avx2, mirroring the GEMM proxy for unknown ops).
void set_kernel_onehots(blas::kernels::Variant variant, double* dst,
                        std::size_t n_cols) {
  using blas::kernels::Variant;
  dst[0] = variant == Variant::kGeneric ? 1.0 : 0.0;
  if (n_cols >= kNumKernelFeatures) {
    dst[1] = variant == Variant::kAvx2 ? 1.0 : 0.0;
    dst[2] = variant == Variant::kAvx512 ? 1.0 : 0.0;
  } else {
    dst[1] =
        variant == Variant::kAvx2 || variant == Variant::kAvx512 ? 1.0 : 0.0;
  }
}

}  // namespace

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> names = {
      // Group 1: serial-runtime terms.
      "m", "k", "n", "n_threads", "m*k", "m*n", "k*n", "m*k*n",
      "m*k+k*n+m*n",
      // Group 2: parallel-runtime terms.
      "m/t", "k/t", "n/t", "m*k/t", "m*n/t", "k*n/t", "m*k*n/t",
      "(m*k+k*n+m*n)/t"};
  return names;
}

const std::vector<std::string>& op_aware_feature_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> all = feature_names();
    for (const auto op : blas::all_ops()) {
      all.push_back(std::string("op_") + blas::op_name(op));
    }
    all.insert(all.end(), {"kernel_generic", "kernel_avx2", "kernel_avx512"});
    return all;
  }();
  return names;
}

std::vector<std::size_t> group1_indices() {
  return {0, 1, 2, 3, 4, 5, 6, 7, 8};
}

std::vector<std::size_t> categorical_indices() {
  std::vector<std::size_t> idx;
  for (std::size_t j = kNumFeatures; j < kNumOpAwareFeatures; ++j) {
    idx.push_back(j);
  }
  return idx;
}

std::array<double, kNumFeatures> make_features(double m, double k, double n,
                                               double t) {
  const double mk = m * k;
  const double mn = m * n;
  const double kn = k * n;
  const double mkn = m * k * n;
  const double total = mk + kn + mn;
  return {m,      k,      n,      t,      mk,     mn,      kn,     mkn,
          total,  m / t,  k / t,  n / t,  mk / t, mn / t,  kn / t, mkn / t,
          total / t};
}

std::array<double, kNumOpAwareFeatures> make_op_aware_features(
    double m, double k, double n, double t, blas::OpKind op,
    blas::kernels::Variant variant) {
  const auto base = make_features(m, k, n, t);
  std::array<double, kNumOpAwareFeatures> out{};
  for (std::size_t j = 0; j < kNumFeatures; ++j) out[j] = base[j];
  out[kNumFeatures + static_cast<std::size_t>(blas::op_code(op))] = 1.0;
  set_kernel_onehots(variant, out.data() + kNumFeatures + blas::kNumOps,
                     kNumKernelFeatures);
  return out;
}

namespace {

/// Width of the kernel one-hot block an artefact of this fitted width
/// carries: 3 from kFirstTripleKernelWidth (a frozen historical boundary —
/// see its definition for why it must not track the live schema constants)
/// upward, 2 for the closed legacy set {21, 23, 24}.
std::size_t kernel_cols_for_width(std::size_t pipeline_width) {
  return pipeline_width >= kFirstTripleKernelWidth ? kNumKernelFeatures
                                                   : kNumLegacyKernelFeatures;
}

}  // namespace

std::vector<double> make_query_features(double m, double k, double n,
                                        double t, blas::OpKind op,
                                        blas::kernels::Variant variant,
                                        std::size_t pipeline_width) {
  const auto base = make_features(m, k, n, t);
  std::vector<double> out(base.begin(), base.end());
  if (pipeline_width < kNumLegacyOpAwareFeatures) return out;
  // Every op-aware tier is 17 numeric + op one-hots + the kernel block (2
  // wide on legacy artefacts, 3 since the AVX-512 tier). Operations the
  // artefact's schema never saw are proxied as GEMM rows (their stored
  // shape already carries the equivalent-GEMM dimensions); a kernel variant
  // it never saw is proxied as the nearest tier it knows.
  const std::size_t n_kernel_cols = kernel_cols_for_width(pipeline_width);
  const std::size_t n_op_cols = std::min<std::size_t>(
      pipeline_width - kNumFeatures - n_kernel_cols, blas::kNumOps);
  const auto code = static_cast<std::size_t>(
      op_served_first_class(op, pipeline_width) ? blas::op_code(op)
                                                : blas::op_code(
                                                      blas::OpKind::kGemm));
  for (std::size_t j = 0; j < n_op_cols; ++j) {
    out.push_back(j == code ? 1.0 : 0.0);
  }
  double kernel[kNumKernelFeatures];
  set_kernel_onehots(variant, kernel, n_kernel_cols);
  out.insert(out.end(), kernel, kernel + n_kernel_cols);
  return out;
}

bool op_served_first_class(blas::OpKind op, std::size_t pipeline_width) {
  if (pipeline_width < kNumLegacyOpAwareFeatures) {
    return op == blas::OpKind::kGemm;
  }
  const std::size_t n_op_cols = std::min<std::size_t>(
      pipeline_width - kNumFeatures - kernel_cols_for_width(pipeline_width),
      blas::kNumOps);
  return static_cast<std::size_t>(blas::op_code(op)) < n_op_cols;
}

}  // namespace adsala::preprocess
