#include "preprocess/features.h"

namespace adsala::preprocess {

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> names = {
      // Group 1: serial-runtime terms.
      "m", "k", "n", "n_threads", "m*k", "m*n", "k*n", "m*k*n",
      "m*k+k*n+m*n",
      // Group 2: parallel-runtime terms.
      "m/t", "k/t", "n/t", "m*k/t", "m*n/t", "k*n/t", "m*k*n/t",
      "(m*k+k*n+m*n)/t"};
  return names;
}

std::vector<std::size_t> group1_indices() {
  return {0, 1, 2, 3, 4, 5, 6, 7, 8};
}

std::array<double, kNumFeatures> make_features(double m, double k, double n,
                                               double t) {
  const double mk = m * k;
  const double mn = m * n;
  const double kn = k * n;
  const double mkn = m * k * n;
  const double total = mk + kn + mn;
  return {m,      k,      n,      t,      mk,     mn,      kn,     mkn,
          total,  m / t,  k / t,  n / t,  mk / t, mn / t,  kn / t, mkn / t,
          total / t};
}

}  // namespace adsala::preprocess
