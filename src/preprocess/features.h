// Feature engineering — THE canonical definition of the ADSALA feature
// schema. Every other component (GatherData::to_dataset, the trainer, the
// runtime query path in AdsalaGemm) references this header instead of
// restating the column list.
//
// == Base schema (paper Table II, 17 columns) =================================
//
//   idx  name              idx  name
//   ---  ----------------  ---  ----------------
//    0   m                  9   m/t
//    1   k                 10   k/t
//    2   n                 11   n/t
//    3   n_threads         12   m*k/t
//    4   m*k               13   m*n/t
//    5   m*n               14   k*n/t
//    6   k*n               15   m*k*n/t
//    7   m*k*n             16   (m*k+k*n+m*n)/t
//    8   m*k+k*n+m*n
//
// Group 1 (0-8) carries the serial-runtime terms, Group 2 (9-16) the
// per-thread parallel terms; the order above is the canonical feature order
// for every dataset in the project.
//
// == Op-aware schema (17 + kNumOps + 2 columns) ===============================
//
// Since the operation-aware gather (PR 2), datasets append one-hot
// categorical columns after the 17 numeric ones — one column per registered
// operation (blas/op.h table order == op code order) plus one per kernel
// variant. With the current five-op registry:
//
//   17  op_gemm          1 when the row timed a GEMM call
//   18  op_syrk          1 when the row timed a SYRK call (m == n equivalent
//                        shape: features 0-16 are computed from (n, k, n))
//   19  op_trsm          1 when the row timed a TRSM call (m == k equivalent
//                        shape (n, n, rhs_cols))
//   20  op_symm          1 when the row timed a SYMM call (same m == k
//                        convention as TRSM)
//   21  op_trmm          1 when the row timed a TRMM call (same m == k
//                        convention as TRSM)
//   22  kernel_generic   1 when the portable micro-kernel produced the timing
//   23  kernel_avx2      1 when the AVX2+FMA micro-kernel produced it
//   24  kernel_avx512    1 when the AVX-512F micro-kernel produced it
//
// Registering an operation (one blas/op.h row) grows the schema by exactly
// one op_* column; nothing here is edited. Categorical columns are passed
// through the preprocessing pipeline untransformed (no Yeo-Johnson, no
// standardisation; see preprocess::PipelineConfig::categorical) and columns
// that are constant over the training rows are dropped at fit time — a
// GEMM-only campaign therefore reduces to the base behaviour, and a model
// trained without the op columns answers family queries through the
// GEMM-proxy shape exactly as before.
//
// == Backwards compatibility ==================================================
//
// Older artefacts keep loading because the pipeline persists its fitted
// input width (`feature_names` in config.json) and queries are built to
// match it via make_query_features. The kernel one-hot block was 2 wide
// (generic, avx2) until the AVX-512 tier landed and is 3 wide since; the
// width tiers disambiguate because every legacy width predates the 3-wide
// block. Any legacy width 21 <= w < 25 carries w - 19 op one-hot columns
// followed by the 2-wide kernel pair (an avx512-kernel query is proxied as
// its nearest tier, avx2, exactly as an op outside the artefact's op block
// is proxied as a GEMM row — the stored shape already carries the
// equivalent-GEMM dimensions). Concretely:
//   17 columns  PR-1-era base schema — numeric features only, every
//               operation served through the GEMM proxy;
//   21 columns  PR-2-era op-aware schema (gemm/syrk one-hots only) — the
//               triangular families are proxied as GEMM rows;
//   23 columns  PR-3-era four-op schema — TRMM proxied as GEMM;
//   24 columns  PR-4-era five-op schema with the 2-wide kernel block —
//               avx512 rows proxied as avx2;
//   25 columns  current schema: five ops + 3-wide kernel block.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "blas/kernels/kernel_set.h"
#include "blas/op.h"

namespace adsala::preprocess {

/// Number of numeric Table-II features (base schema).
inline constexpr std::size_t kNumFeatures = 17;

/// One-hot kernel-variant columns (generic, avx2, avx512).
inline constexpr std::size_t kNumKernelFeatures = 3;

/// Width of the kernel one-hot block before the AVX-512 tier (generic,
/// avx2); every artefact narrower than kFirstTripleKernelWidth carries this
/// block.
inline constexpr std::size_t kNumLegacyKernelFeatures = 2;

/// The first fitted width that carries the 3-wide kernel block: 17 numeric
/// + the 5 ops registered when the AVX-512 tier shipped + 3. FROZEN
/// HISTORICAL CONSTANT — it must NOT track kNumOps or kNumKernelFeatures:
/// the 2-wide-kernel artefact widths form the closed set {21, 23, 24}
/// (the legacy block era ended at five ops), so "width >= 25 means 3-wide
/// kernel block" stays true no matter how many ops are registered later.
/// Deriving it from live constants would mis-decode today's 25-column
/// artefacts as legacy the moment a sixth op grows the schema.
inline constexpr std::size_t kFirstTripleKernelWidth = 25;

/// One-hot categorical columns appended by the op-aware schema: one per
/// registered operation (blas/op.h) plus the kernel-variant block.
inline constexpr std::size_t kNumCategoricalFeatures =
    blas::kNumOps + kNumKernelFeatures;

/// Total width of the op-aware schema.
inline constexpr std::size_t kNumOpAwareFeatures =
    kNumFeatures + kNumCategoricalFeatures;

/// Width of the PR-2-era op-aware schema (gemm/syrk one-hots only) — the
/// narrowest op-aware tier; kept so the runtime can build width-matched
/// queries for old artefacts and recognise the op-aware floor.
inline constexpr std::size_t kNumLegacyOpAwareFeatures = 21;

/// Canonical base feature names, Group 1 then Group 2 (paper Table II).
const std::vector<std::string>& feature_names();

/// Canonical op-aware feature names: base schema + the four one-hot columns.
const std::vector<std::string>& op_aware_feature_names();

/// Index set of the Group 1 (serial) features, for the feature ablation.
std::vector<std::size_t> group1_indices();

/// Indices of the categorical one-hot columns in the op-aware schema
/// (17..20); feed these to PipelineConfig::categorical.
std::vector<std::size_t> categorical_indices();

/// Computes the 17 numeric features for one configuration.
std::array<double, kNumFeatures> make_features(double m, double k, double n,
                                               double n_threads);

/// Computes the full op-aware row: numeric features plus the op / kernel
/// one-hots. For non-GEMM operations pass the equivalent-GEMM shape (SYRK:
/// m == n; TRSM/SYMM: m == k). `variant` must be concrete (resolve kAuto via
/// blas::kernels::active_variant() first); kAuto leaves both kernel columns
/// zero.
std::array<double, kNumOpAwareFeatures> make_op_aware_features(
    double m, double k, double n, double n_threads, blas::OpKind op,
    blas::kernels::Variant variant);

/// Builds a query row matched to a fitted pipeline's input width (see the
/// backwards-compatibility table above): the current width gets the 3-wide
/// kernel block, legacy widths in [21, 25) get an op one-hot block of
/// pipeline_width - 19 columns (ops outside the block proxied as GEMM) plus
/// the 2-wide kernel pair (avx512 proxied as avx2), and anything narrower
/// gets the 17 numeric features. This is the single entry point the
/// prediction path uses, so a schema change is invisible to trainer /
/// runtime code.
std::vector<double> make_query_features(double m, double k, double n,
                                        double n_threads, blas::OpKind op,
                                        blas::kernels::Variant variant,
                                        std::size_t pipeline_width);

/// True when a pipeline of this fitted input width serves `op` from its own
/// one-hot column; false when the query degrades to the GEMM proxy (the op
/// postdates the artefact, or the artefact predates the op-aware schema).
bool op_served_first_class(blas::OpKind op, std::size_t pipeline_width);

}  // namespace adsala::preprocess
