// Table II feature engineering.
//
// Maps a raw (m, k, n, n_threads) GEMM configuration to the paper's 17
// candidate features: Group 1 carries the serial-runtime terms (matrix
// areas, FLOP volume), Group 2 the per-thread parallel terms. The order here
// is the canonical feature order for every dataset in the project.
#pragma once

#include <array>
#include <string>
#include <vector>

namespace adsala::preprocess {

inline constexpr std::size_t kNumFeatures = 17;

/// Canonical feature names, Group 1 then Group 2 (paper Table II).
const std::vector<std::string>& feature_names();

/// Index set of the Group 1 (serial) features, for the feature ablation.
std::vector<std::size_t> group1_indices();

/// Computes the 17 features for one configuration.
std::array<double, kNumFeatures> make_features(double m, double k, double n,
                                               double n_threads);

}  // namespace adsala::preprocess
