// Yeo-Johnson power transformation with MLE lambda estimation.
//
// Remaps a skewed feature distribution to near-Gaussian (paper SS II-C /
// Fig. 4). Unlike Box-Cox it accepts non-positive inputs. The per-feature
// lambda maximising the Gaussian log-likelihood of the transformed values is
// found by golden-section search (the likelihood in lambda is unimodal in
// practice on [-5, 5]).
#pragma once

#include <span>
#include <vector>

namespace adsala::preprocess {

/// Yeo-Johnson transform of a single value with parameter lambda.
double yeo_johnson(double x, double lambda);

/// Inverse transform (exact analytic inverse of yeo_johnson).
double yeo_johnson_inverse(double y, double lambda);

/// Gaussian log-likelihood of the transformed sample (the MLE objective),
/// including the Jacobian term.
double yeo_johnson_log_likelihood(std::span<const double> xs, double lambda);

/// MLE estimate of lambda by golden-section search on [lo, hi].
double estimate_lambda(std::span<const double> xs, double lo = -5.0,
                       double hi = 5.0, double tol = 1e-4);

/// Per-feature transformer for a whole column.
class YeoJohnsonTransformer {
 public:
  /// Estimates lambda from the sample.
  void fit(std::span<const double> xs) { lambda_ = estimate_lambda(xs); }

  void set_lambda(double lambda) { lambda_ = lambda; }
  double lambda() const { return lambda_; }

  double transform(double x) const { return yeo_johnson(x, lambda_); }
  double inverse(double y) const { return yeo_johnson_inverse(y, lambda_); }

  std::vector<double> transform(std::span<const double> xs) const;

 private:
  double lambda_ = 1.0;  // identity
};

}  // namespace adsala::preprocess
