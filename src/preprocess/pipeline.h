// End-to-end preprocessing pipeline (the paper's Fig. 2 "Data Preprocessing"
// box, reusable at runtime from the saved config file).
//
// fit_transform order follows SS IV-C exactly:
//   1. label transform (log-runtime; optional, see DESIGN.md SS6),
//   2. Yeo-Johnson per feature (MLE lambda),
//   3. standardisation,
//   4. LOF outlier-row removal (train-time only; needs standardised scales),
//   5. correlation filter (|r| > 0.80 -> drop the worse member).
// transform_row applies the fitted 2/3/5 steps to a raw runtime query.
//
// Columns listed in PipelineConfig::categorical (the one-hot op / kernel
// indicators of the op-aware schema, see preprocess/features.h) skip stages
// 2 and 3 — a 0/1 indicator must stay a 0/1 indicator — and are dropped
// outright when constant over the training rows (a single-op, single-kernel
// campaign carries no information in them). Non-constant categorical columns
// still pass through the correlation filter, which prunes redundant one-hot
// pairs (op_gemm vs op_syrk are perfectly anti-correlated).
#pragma once

#include <span>

#include "common/json.h"
#include "ml/dataset.h"

namespace adsala::preprocess {

struct PipelineConfig {
  bool yeo_johnson = true;
  bool standardize = true;
  bool lof = true;
  std::size_t lof_k = 20;
  double lof_threshold = 1.5;
  bool corr_filter = true;
  double corr_threshold = 0.80;
  bool log_label = true;  ///< train on log(t); argmin over threads unaffected
  /// Restrict the candidate feature set before the correlation filter
  /// (indices into the raw dataset); empty = all features. Used by the
  /// feature-group ablation study.
  std::vector<std::size_t> feature_whitelist;
  /// Raw-column indices treated as categorical one-hots: passed through
  /// untransformed (no Yeo-Johnson / standardisation) and dropped when
  /// constant over the training rows. See preprocess/features.h.
  std::vector<std::size_t> categorical;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config = {}) : cfg_(config) {}

  /// Fits every stage on `raw` and returns the fully transformed training
  /// set (possibly fewer rows after LOF, fewer columns after the filter).
  ml::Dataset fit_transform(const ml::Dataset& raw);

  /// Applies the fitted feature stages to one raw row (runtime hot path).
  std::vector<double> transform_row(std::span<const double> raw) const;

  double transform_label(double y) const;
  double inverse_label(double y) const;

  const PipelineConfig& config() const { return cfg_; }
  /// Width of the raw rows this pipeline was fitted on (17 for PR-1-era
  /// artefacts, 21 for PR-2-era op-aware ones, 23 for the current four-op
  /// schema); transform_row expects this many values. Zero before fit/load.
  std::size_t n_input_features() const { return names_.size(); }
  /// Names of the raw input columns at fit time (canonical schema order).
  const std::vector<std::string>& input_feature_names() const {
    return names_;
  }
  const std::vector<std::size_t>& kept_features() const { return keep_; }
  const std::vector<double>& lambdas() const { return lambdas_; }
  std::size_t rows_removed() const { return rows_removed_; }

  Json save() const;
  void load(const Json& blob);

 private:
  PipelineConfig cfg_;
  std::vector<std::string> names_;     // original feature names
  std::vector<double> lambdas_;        // per original feature (1.0 = identity)
  std::vector<double> means_, stds_;   // per original feature
  std::vector<std::size_t> keep_;      // surviving feature indices
  std::size_t rows_removed_ = 0;
};

}  // namespace adsala::preprocess
