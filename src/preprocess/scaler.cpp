#include "preprocess/scaler.h"

#include "common/stats.h"

namespace adsala::preprocess {

void StandardScaler::fit(std::span<const double> xs) {
  mean_ = adsala::mean(xs);
  const double sd = adsala::stddev(xs);
  stddev_ = sd <= 0.0 ? 1.0 : sd;
}

std::vector<double> StandardScaler::transform(
    std::span<const double> xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(transform(x));
  return out;
}

}  // namespace adsala::preprocess
