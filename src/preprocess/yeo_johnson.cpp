#include "preprocess/yeo_johnson.h"

#include <cmath>
#include <limits>

namespace adsala::preprocess {

double yeo_johnson(double x, double lambda) {
  if (x >= 0.0) {
    if (std::fabs(lambda) < 1e-12) return std::log1p(x);
    return (std::pow(x + 1.0, lambda) - 1.0) / lambda;
  }
  const double two_minus = 2.0 - lambda;
  if (std::fabs(two_minus) < 1e-12) return -std::log1p(-x);
  return -(std::pow(1.0 - x, two_minus) - 1.0) / two_minus;
}

double yeo_johnson_inverse(double y, double lambda) {
  if (y >= 0.0) {
    if (std::fabs(lambda) < 1e-12) return std::expm1(y);
    return std::pow(lambda * y + 1.0, 1.0 / lambda) - 1.0;
  }
  const double two_minus = 2.0 - lambda;
  if (std::fabs(two_minus) < 1e-12) return -std::expm1(-y);
  return 1.0 - std::pow(1.0 - two_minus * y, 1.0 / two_minus);
}

double yeo_johnson_log_likelihood(std::span<const double> xs, double lambda) {
  const auto n = static_cast<double>(xs.size());
  if (xs.empty()) return 0.0;
  double mean = 0.0;
  for (double x : xs) mean += yeo_johnson(x, lambda);
  mean /= n;
  double var = 0.0;
  double jacobian = 0.0;
  for (double x : xs) {
    const double t = yeo_johnson(x, lambda) - mean;
    var += t * t;
    // d/dx YJ(x; lambda) has log |.| = (lambda-1) * sign-adjusted log1p|x|.
    jacobian += (lambda - 1.0) * std::copysign(std::log1p(std::fabs(x)), x);
  }
  var /= n;
  if (var <= 0.0) var = std::numeric_limits<double>::min();
  return -0.5 * n * std::log(var) + jacobian;
}

double estimate_lambda(std::span<const double> xs, double lo, double hi,
                       double tol) {
  if (xs.empty()) return 1.0;
  // Golden-section maximisation of the profile log-likelihood.
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = yeo_johnson_log_likelihood(xs, c);
  double fd = yeo_johnson_log_likelihood(xs, d);
  while (b - a > tol) {
    if (fc > fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = yeo_johnson_log_likelihood(xs, c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = yeo_johnson_log_likelihood(xs, d);
    }
  }
  return 0.5 * (a + b);
}

std::vector<double> YeoJohnsonTransformer::transform(
    std::span<const double> xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(transform(x));
  return out;
}

}  // namespace adsala::preprocess
