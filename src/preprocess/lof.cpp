#include "preprocess/lof.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/thread_pool.h"

namespace adsala::preprocess {

namespace {

struct Neighbourhood {
  std::vector<std::size_t> ids;  // k nearest (may include ties beyond k)
  std::vector<double> dist;      // matching distances, ascending
  double k_distance = 0.0;
};

}  // namespace

std::vector<double> lof_scores(std::span<const double> rows, std::size_t n,
                               std::size_t d, std::size_t k) {
  if (rows.size() != n * d) {
    throw std::invalid_argument("lof_scores: row buffer size mismatch");
  }
  if (n < 2) return std::vector<double>(n, 1.0);
  k = std::clamp<std::size_t>(k, 1, n - 1);

  // Pairwise k-NN (brute force), parallel over query points.
  std::vector<Neighbourhood> nbr(n);
  adsala::ThreadPool& pool = adsala::ThreadPool::global();
  pool.parallel_for(pool.max_threads(), 0, n, [&](std::size_t i) {
    std::vector<std::pair<double, std::size_t>> dist;
    dist.reserve(n - 1);
    const double* xi = &rows[i * d];
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double* xj = &rows[j * d];
      double s = 0.0;
      for (std::size_t f = 0; f < d; ++f) {
        const double diff = xi[f] - xj[f];
        s += diff * diff;
      }
      dist.emplace_back(std::sqrt(s), j);
    }
    std::sort(dist.begin(), dist.end());
    const double k_dist = dist[k - 1].first;
    // The k-neighbourhood includes every point at distance <= k-distance
    // (ties), per the original definition.
    Neighbourhood& nb = nbr[i];
    nb.k_distance = k_dist;
    for (const auto& [dd, j] : dist) {
      if (dd > k_dist) break;
      nb.ids.push_back(j);
      nb.dist.push_back(dd);
    }
  });

  // Local reachability density.
  std::vector<double> lrd(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum_reach = 0.0;
    for (std::size_t t = 0; t < nbr[i].ids.size(); ++t) {
      const std::size_t j = nbr[i].ids[t];
      sum_reach += std::max(nbr[j].k_distance, nbr[i].dist[t]);
    }
    lrd[i] = sum_reach > 0.0
                 ? static_cast<double>(nbr[i].ids.size()) / sum_reach
                 : std::numeric_limits<double>::infinity();
  }

  std::vector<double> scores(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(lrd[i])) {
      scores[i] = 1.0;  // duplicate-dense point: clearly an inlier
      continue;
    }
    double sum_ratio = 0.0;
    for (std::size_t j : nbr[i].ids) {
      sum_ratio += std::isfinite(lrd[j]) ? lrd[j] / lrd[i] : 1e6;
    }
    scores[i] = sum_ratio / static_cast<double>(nbr[i].ids.size());
  }
  return scores;
}

std::vector<std::size_t> lof_inliers(std::span<const double> rows,
                                     std::size_t n, std::size_t d,
                                     std::size_t k, double threshold) {
  const auto scores = lof_scores(rows, n, d, k);
  std::vector<std::size_t> keep;
  keep.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (scores[i] <= threshold) keep.push_back(i);
  }
  return keep;
}

}  // namespace adsala::preprocess
