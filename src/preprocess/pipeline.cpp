#include "preprocess/pipeline.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "preprocess/correlation_filter.h"
#include "preprocess/lof.h"
#include "preprocess/scaler.h"
#include "preprocess/yeo_johnson.h"

namespace adsala::preprocess {

ml::Dataset Pipeline::fit_transform(const ml::Dataset& raw) {
  if (raw.empty()) throw std::invalid_argument("Pipeline: empty dataset");
  const std::size_t n = raw.size();
  const std::size_t d = raw.n_features();
  names_ = raw.feature_names();

  // Stage 2+3 state, fitted column-wise. Categorical columns keep the
  // identity parameters (lambda 1, mean 0, std 1), so transform_row treats
  // them uniformly.
  lambdas_.assign(d, 1.0);
  means_.assign(d, 0.0);
  stds_.assign(d, 1.0);

  std::vector<bool> is_categorical(d, false);
  for (std::size_t j : cfg_.categorical) {
    if (j >= d) {
      throw std::invalid_argument("Pipeline: categorical index out of range");
    }
    is_categorical[j] = true;
  }

  std::vector<double> transformed(n * d);
  std::vector<bool> is_constant(d, false);
  for (std::size_t j = 0; j < d; ++j) {
    std::vector<double> col = raw.column(j);
    if (!col.empty()) {
      const auto [lo, hi] = std::minmax_element(col.begin(), col.end());
      is_constant[j] = *lo == *hi;
    }
    if (!is_categorical[j]) {
      if (cfg_.yeo_johnson) {
        YeoJohnsonTransformer yj;
        yj.fit(col);
        lambdas_[j] = yj.lambda();
        for (auto& v : col) v = yj.transform(v);
      }
      if (cfg_.standardize) {
        StandardScaler sc;
        sc.fit(col);
        means_[j] = sc.mean();
        stds_[j] = sc.stddev();
        for (auto& v : col) v = sc.transform(v);
      }
    }
    for (std::size_t i = 0; i < n; ++i) transformed[i * d + j] = col[i];
  }

  // Stage 4: LOF row removal on the standardised matrix.
  std::vector<std::size_t> rows(n);
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  if (cfg_.lof && n > cfg_.lof_k + 1) {
    rows = lof_inliers(transformed, n, d, cfg_.lof_k, cfg_.lof_threshold);
  }
  rows_removed_ = n - rows.size();

  // Materialise the intermediate dataset to run the correlation filter on
  // exactly the surviving rows.
  ml::Dataset inter(names_);
  for (std::size_t i : rows) {
    inter.add_row({&transformed[i * d], d},
                  transform_label(raw.label(i)));
  }

  // Stage 5: feature whitelist (ablation hook), constant-categorical drop,
  // then correlation filter.
  std::vector<std::size_t> candidates;
  if (cfg_.feature_whitelist.empty()) {
    candidates.resize(d);
    std::iota(candidates.begin(), candidates.end(), std::size_t{0});
  } else {
    candidates = cfg_.feature_whitelist;
  }
  std::erase_if(candidates, [&](std::size_t j) {
    return is_categorical[j] && is_constant[j];
  });
  keep_ = candidates;
  if (cfg_.corr_filter) {
    const ml::Dataset restricted = inter.select_features(candidates);
    const auto kept_local = correlation_filter(restricted, cfg_.corr_threshold);
    keep_.clear();
    for (std::size_t local : kept_local) keep_.push_back(candidates[local]);
  }
  return inter.select_features(keep_);
}

std::vector<double> Pipeline::transform_row(
    std::span<const double> raw) const {
  std::vector<double> out;
  out.reserve(keep_.size());
  for (std::size_t j : keep_) {
    double v = raw[j];
    if (cfg_.yeo_johnson) v = yeo_johnson(v, lambdas_[j]);
    if (cfg_.standardize) v = (v - means_[j]) / stds_[j];
    out.push_back(v);
  }
  return out;
}

double Pipeline::transform_label(double y) const {
  return cfg_.log_label ? std::log(std::max(y, 1e-300)) : y;
}

double Pipeline::inverse_label(double y) const {
  return cfg_.log_label ? std::exp(y) : y;
}

Json Pipeline::save() const {
  Json out;
  out["yeo_johnson"] = Json(cfg_.yeo_johnson);
  out["standardize"] = Json(cfg_.standardize);
  out["lof"] = Json(cfg_.lof);
  out["lof_k"] = Json(cfg_.lof_k);
  out["lof_threshold"] = Json(cfg_.lof_threshold);
  out["corr_filter"] = Json(cfg_.corr_filter);
  out["corr_threshold"] = Json(cfg_.corr_threshold);
  out["log_label"] = Json(cfg_.log_label);
  JsonArray categorical;
  for (std::size_t j : cfg_.categorical) categorical.emplace_back(j);
  out["categorical"] = Json(std::move(categorical));
  JsonArray names;
  for (const auto& s : names_) names.emplace_back(s);
  out["feature_names"] = Json(std::move(names));
  out["lambdas"] = Json::from_doubles(lambdas_);
  out["means"] = Json::from_doubles(means_);
  out["stds"] = Json::from_doubles(stds_);
  JsonArray keep;
  for (std::size_t j : keep_) keep.emplace_back(j);
  out["keep"] = Json(std::move(keep));
  return out;
}

void Pipeline::load(const Json& blob) {
  cfg_.yeo_johnson = blob.at("yeo_johnson").as_bool();
  cfg_.standardize = blob.at("standardize").as_bool();
  cfg_.lof = blob.at("lof").as_bool();
  cfg_.lof_k = static_cast<std::size_t>(blob.at("lof_k").as_number());
  cfg_.lof_threshold = blob.at("lof_threshold").as_number();
  cfg_.corr_filter = blob.at("corr_filter").as_bool();
  cfg_.corr_threshold = blob.at("corr_threshold").as_number();
  cfg_.log_label = blob.at("log_label").as_bool();
  cfg_.categorical.clear();
  if (blob.contains("categorical")) {  // absent in PR-1-era config files
    for (const auto& v : blob.at("categorical").as_array()) {
      cfg_.categorical.push_back(static_cast<std::size_t>(v.as_number()));
    }
  }
  names_.clear();
  for (const auto& s : blob.at("feature_names").as_array()) {
    names_.push_back(s.as_string());
  }
  lambdas_ = blob.at("lambdas").to_doubles();
  means_ = blob.at("means").to_doubles();
  stds_ = blob.at("stds").to_doubles();
  keep_.clear();
  for (const auto& v : blob.at("keep").as_array()) {
    keep_.push_back(static_cast<std::size_t>(v.as_number()));
  }
}

}  // namespace adsala::preprocess
