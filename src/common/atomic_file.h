// Crash-safe file publication primitives (ISSUE 10).
//
// The artefact store's promotion protocol needs one guarantee from the
// filesystem layer: a published file is either the complete old bytes or the
// complete new bytes — never a prefix, never a mix — even if the writing
// process is SIGKILL-ed at any instruction. POSIX gives exactly one tool for
// that: `rename(2)` is atomic within a filesystem. Everything here is the
// standard write-to-temp -> fsync(file) -> rename -> fsync(directory)
// choreography:
//
//   * the temp name lives in the SAME directory as the target (rename must
//     not cross filesystems) and carries the writer's pid, so concurrent
//     writers never collide and crash debris is recognisable
//     (`<name>.tmp.<pid>` — recover_store() garbage-collects the pattern);
//   * fsync on the temp file orders the data before the rename (without it
//     a power failure could publish a name pointing at unwritten blocks —
//     for plain process kills the page cache makes this moot, but the store
//     promises the stronger contract);
//   * fsync on the parent directory makes the rename itself durable.
//
// Error discipline: every failure is a path-qualified taxonomy Error
// (kInternal + errno text); a failed publish leaves the target untouched
// (the temp file is unlinked on the way out).
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"

namespace adsala {

/// Atomically replaces (or creates) `path` with `bytes` via the temp ->
/// fsync -> rename -> fsync-dir protocol above. The target directory must
/// exist.
Error atomic_write_file(const std::string& path, std::string_view bytes);

/// fsyncs a directory so a just-completed rename/creation inside it is
/// durable. No-op errors (e.g. fsync unsupported on the fs) are reported,
/// not swallowed — callers on tmpfs may ignore them knowingly.
Error fsync_dir(const std::string& dir);

/// Opens and fsyncs an existing file (used to pin staged bytes down before
/// a rename publishes their name).
Error fsync_path(const std::string& path);

/// True when `name` matches the `*.tmp.<pid>` debris pattern this module's
/// crashed writers leave behind — the recovery scan's GC predicate.
bool is_tmp_debris_name(std::string_view name);

}  // namespace adsala
