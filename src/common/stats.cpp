#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace adsala {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = (q / 100.0) * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  const double mx = mean(xs.subspan(0, n));
  const double my = mean(ys.subspan(0, n));
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins) {
  std::vector<std::size_t> counts(bins, 0);
  if (bins == 0 || hi <= lo) return counts;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(idx)];
  }
  return counts;
}

double skewness(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double m2 = 0.0, m3 = 0.0;
  for (double x : xs) {
    const double d = x - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(xs.size());
  m3 /= static_cast<double>(xs.size());
  if (m2 <= 0.0) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

}  // namespace adsala
