// Process-wide packing-buffer arena: the zero-allocation hot path of the
// level-3 ops.
//
// Every blocked driver needs scratch for its packed A/B micro-panels (and
// TRMM a dense copy of B). Allocating that scratch per call puts an
// aligned_alloc + free on the hot path — a cost that dominates exactly the
// small/medium shapes where the ML layer's thread-count selection matters
// most (the paper's Table VII singles out data-copy overhead as a
// first-class cost). The arena replaces those per-call AlignedBuffers with
// grow-only slabs that live for the process: after the first call of a given
// shape, repeated calls perform zero heap allocations.
//
// Layout: one thread_local slab per OS thread for the packing scratch only
// that thread touches (A panels, and the barrier-free ops' private B
// panels), plus one shared slab per arena for buffers every participant of
// a parallel region reads (GEMM's cooperatively packed B block, TRMM's
// dense B copy). Keying the private slabs by OS thread — not by pool slot —
// makes them race-free by construction: any number of threads, from any
// number of ThreadPool instances or none, get private storage, exactly the
// safety envelope of the per-call buffers this arena replaced. Each slab is
// a separate 64-byte aligned allocation, so neighbouring threads never
// share a cache line.
//
// Concurrency contract: serial (single-thread) BLAS calls are safe from any
// number of threads concurrently. Parallel calls inherit the ThreadPool's
// own constraint (one region at a time); the shared slab is only (re)sized
// by the orchestrating thread before the region opens. An op must carve all
// of a thread's scratch out of ONE thread_slab() call (growing the slab
// invalidates its previous pointer) — padded_count() keeps multi-buffer
// carves 64-byte aligned.
//
// NUMA placement: slab growth places the new pages at grow time, under the
// `ADSALA_NUMA` policy (read once per process):
//   firsttouch (default) — the growing thread touches every page of the new
//     slab immediately, so the OS places them on ITS node. Thread slabs are
//     grown by their owning thread and the shared slab by the orchestrator,
//     which is exactly the reader set of each.
//   node:<k> — bind the new slab's pages to NUMA node k outright. Needs
//     libnuma (CMake option ADSALA_USE_NUMA); when the library is absent or
//     the bind fails, the arena warns once on stderr and degrades to
//     first-touch. Never fails a BLAS call.
//   off — neither touch nor bind; pages fault in wherever they are first
//     used (the pre-placement behaviour).
// arena_stats() surfaces the active policy and whether a bind has succeeded.
//
// Out-of-memory: a failed slab growth throws std::bad_alloc from grow().
// The level-3 drivers catch it at the carve sites (blas/level3_common.h)
// and degrade to a per-call AlignedBuffer — the same fallback the huge-TRMM
// copy cap already used — so a BLAS call survives arena exhaustion at the
// cost of one allocation. A throw that does escape into a parallel region
// is captured by the exception-safe ThreadPool and rethrown on the calling
// thread after the join (workers never std::terminate). The `arena-oom`
// failpoint (common/failpoint.h) makes grow() throw unconditionally, which
// is how tests/test_faults.cpp proves both layers.
#pragma once

#include <atomic>
#include <cstddef>

#include "common/aligned_buffer.h"

namespace adsala {

class PackArena {
 public:
  PackArena() = default;

  PackArena(const PackArena&) = delete;
  PackArena& operator=(const PackArena&) = delete;

  /// Process-wide arena; lazily constructed.
  static PackArena& global();

  /// At least `count` Ts of 64-byte-aligned storage private to the calling
  /// OS thread (the slab is shared across arena instances and lives until
  /// thread exit). Grow-only: the slab never shrinks, and a call that fits
  /// inside it is pointer arithmetic only.
  template <typename T>
  T* thread_slab(std::size_t count) {
    return reinterpret_cast<T*>(grow(thread_slab_storage(), count * sizeof(T)));
  }

  /// Same contract for this arena's shared slab. Call only from the
  /// orchestrating thread before a parallel region opens (all participants
  /// then read the returned pointer).
  template <typename T>
  T* shared_slab(std::size_t count) {
    return reinterpret_cast<T*>(grow(shared_, count * sizeof(T)));
  }

  /// Rounds an element count up so the next carve inside one slab stays
  /// 64-byte aligned.
  template <typename T>
  static constexpr std::size_t padded_count(std::size_t count) {
    const std::size_t per_line = kCacheLineBytes / sizeof(T);
    return (count + per_line - 1) / per_line * per_line;
  }

  /// Number of slab (re)allocations this arena instance has performed.
  /// Stable across two identical calls == the second call allocated nothing
  /// (the reuse property the tests pin down).
  std::size_t growth_count() const {
    return growths_.load(std::memory_order_relaxed);
  }

  /// Current size of this arena's shared slab plus the *calling thread's*
  /// private slab, in bytes (other threads' slabs are not visible). Only
  /// meaningful while no BLAS call is in flight.
  std::size_t footprint_bytes() const;

  /// Point-in-time placement and sizing snapshot.
  struct Stats {
    std::size_t growth_count = 0;   ///< slab (re)allocations, this arena
    std::size_t shared_bytes = 0;   ///< this arena's shared slab
    std::size_t thread_bytes = 0;   ///< the *calling thread's* private slab
    const char* numa_mode = "";     ///< resolved policy: firsttouch|node|off
    int numa_node = -1;             ///< requested node (node:<k> only)
    bool numa_available = false;    ///< compiled AND runtime libnuma support
    bool numa_bound = false;        ///< at least one slab bind succeeded
  };
  Stats arena_stats() const;

 private:
  struct alignas(kCacheLineBytes) Slab {
    AlignedBuffer<unsigned char> buf;
  };

  /// The calling thread's private slab (shared across arena instances).
  static Slab& thread_slab_storage();

  void* grow(Slab& slab, std::size_t bytes);

  Slab shared_;
  std::atomic<std::size_t> growths_{0};
};

}  // namespace adsala
