// Minimal JSON document model, parser, and writer.
//
// Used for the ADSALA config file and trained-model serialisation (Fig. 2 of
// the paper: "two files containing the configurations together with the
// production-ready ML model will be saved"). Supports the full JSON grammar
// except \u escapes beyond the BMP; numbers are stored as double except that
// the writer emits integral doubles without a fraction.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace adsala {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(long i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  int as_int() const { return static_cast<int>(std::get<double>(value_)); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  JsonArray& as_array() { return std::get<JsonArray>(value_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
  JsonObject& as_object() { return std::get<JsonObject>(value_); }

  /// Object member access; throws std::out_of_range when absent.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  Json& operator[](const std::string& key);  ///< creates object member

  /// Convenience: build an array from a vector of doubles (and back).
  static Json from_doubles(const std::vector<double>& xs);
  std::vector<double> to_doubles() const;

  std::string dump(int indent = 0) const;

  static Json parse(const std::string& text);  ///< throws on syntax error

 private:
  void dump_impl(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

/// File helpers; throw std::runtime_error on I/O failure.
void write_json_file(const std::string& path, const Json& value);

/// Reads and parses a JSON file; every failure message is path-qualified
/// ("<path>: json parse error at byte N: ..."), never just a byte offset.
/// Throws std::runtime_error; the serving path uses try_read_json_file.
Json read_json_file(const std::string& path);

/// Non-throwing sibling of read_json_file for the fail-safe serving layer:
/// kNotFound when the file cannot be opened, kParseError (path-qualified
/// message) when it cannot be decoded. Honours the `json-truncate`
/// failpoint (common/failpoint.h), which drops the second half of the
/// file's bytes to simulate a torn artefact write.
Expected<Json> try_read_json_file(const std::string& path);

}  // namespace adsala
