// Deterministic pseudo-random number generation.
//
// All stochastic components (timing noise, bagging, train/test splits) draw
// from this xoshiro256** generator so experiments are reproducible from a
// single seed. std::mt19937_64 is avoided on hot paths: xoshiro is ~3x faster
// and has a trivially copyable 32-byte state.
#pragma once

#include <cstdint>
#include <limits>

namespace adsala {

/// xoshiro256** by Blackman & Vigna (public domain reference implementation
/// re-expressed); passes BigCrush, period 2^256-1.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free approximation is fine here: the
    // modulo bias for n << 2^64 is negligible for simulation purposes, but we
    // still use the widening multiply to avoid the expensive %.
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (cached second value).
  double normal() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = __builtin_sqrt(-2.0 * __builtin_log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * __builtin_sin(theta);
    have_cached_ = true;
    return r * __builtin_cos(theta);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Log-normal multiplicative noise factor with the given sigma (of log).
  double lognormal_factor(double sigma) {
    return __builtin_exp(sigma * normal());
  }

  // UniformRandomBitGenerator interface so <algorithm> shuffles accept Rng.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace adsala
