#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "common/failpoint.h"

namespace adsala {

namespace {
// Set while a thread is executing inside a parallel region; nested region
// requests from pool workers (e.g. a model's parallel fit inside a parallel
// grid search) degrade to serial execution instead of deadlocking.
thread_local bool t_in_region = false;

/// One iteration of a busy-wait: a pause hint on x86 so the spinning
/// hyperthread cedes pipeline resources, a plain re-read elsewhere.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#endif
}

/// Bounded spin budget before a waiter parks on its condition variable.
/// ~4k pause iterations is on the order of 100 us of wall clock — enough to
/// bridge the gap between back-to-back GEMM regions (the repeated-small-GEMM
/// pattern the thread-count model is trained on), short enough that a
/// genuinely idle pool stops burning its cores almost immediately.
inline constexpr int kSpinIters = 1 << 12;
}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  // Worker i participates as tid i+1 (the caller is tid 0).
  const std::size_t tid = worker_index + 1;
  std::size_t seen_generation = 0;
  // Only workers that ran in the previous region spin for the next one: a
  // steady stream of p-thread regions keeps those p-1 workers on the fast
  // path, while the workers above p park immediately instead of burning a
  // spin budget per region on a job they will not join (their reactivation
  // latency is the condvar wake they always paid). True on entry so a
  // freshly spawned pool catches its first region cheaply.
  bool spin_for_next = true;
  while (true) {
    // Fork wait, spin-then-sleep: a bounded lock-free spin on the region
    // counter catches back-to-back regions without a futex round trip, then
    // the worker parks on cv_start_. The job fields are re-read under the
    // mutex afterwards — a worker that slept through several regions (it was
    // not a participant) must see a (generation, job) pair from one
    // consistent region, never a half-written setup.
    int spins = 0;
    while (generation_.load(std::memory_order_relaxed) == seen_generation &&
           !stop_.load(std::memory_order_relaxed)) {
      if (!spin_for_next || ++spins >= kSpinIters) {
        std::unique_lock lock(mutex_);
        cv_start_.wait(lock, [&] {
          return stop_.load(std::memory_order_relaxed) ||
                 generation_.load(std::memory_order_relaxed) !=
                     seen_generation;
        });
        break;
      }
      cpu_relax();
    }
    const std::function<void(std::size_t, std::size_t)>* job = nullptr;
    std::size_t nthreads = 0;
    {
      std::lock_guard lock(mutex_);
      if (stop_.load(std::memory_order_relaxed)) return;
      seen_generation = generation_.load(std::memory_order_relaxed);
      job = job_;
      nthreads = job_threads_;
    }
    spin_for_next = tid < nthreads;
    if (tid >= nthreads) {
      // Not a participant this region; it is already accounted for in
      // remaining_, so just skip.
      continue;
    }
    t_in_region = true;
    try {
      if (failpoint::triggered("worker-throw")) {
        throw std::runtime_error("failpoint worker-throw: injected worker "
                                 "exception (tid " + std::to_string(tid) +
                                 ")");
      }
      (*job)(tid, nthreads);
    } catch (...) {
      // Never let an exception escape the worker loop (that would be
      // std::terminate). First capture wins; the caller rethrows it after
      // the join, when every participant has left the region.
      std::lock_guard lock(mutex_);
      if (!region_exception_) region_exception_ = std::current_exception();
    }
    t_in_region = false;
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last worker out. The caller may already be parked on cv_done_;
      // taking the mutex orders this notify after its predicate check.
      std::lock_guard lock(mutex_);
      cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_region(
    std::size_t nthreads,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  nthreads = std::clamp<std::size_t>(nthreads, 1, max_threads());
  if (nthreads == 1 || t_in_region) {
    fn(0, 1);
    return;
  }
  t_in_region = true;
  {
    // Job fields and the generation bump are published together under the
    // mutex: spinners only key off the atomic counter and then take the lock
    // to read a consistent snapshot, sleepers are covered by the usual
    // cv predicate rules.
    std::lock_guard lock(mutex_);
    job_ = &fn;
    job_threads_ = nthreads;
    remaining_.store(nthreads - 1, std::memory_order_relaxed);
    region_exception_ = nullptr;
    generation_.fetch_add(1, std::memory_order_release);
  }
  cv_start_.notify_all();
  try {
    fn(0, nthreads);
  } catch (...) {
    // The caller's own throw must not skip the join: the workers still hold
    // references into fn's closure. Stash it in the shared first-wins slot
    // and fall through to the join below.
    std::lock_guard lock(mutex_);
    if (!region_exception_) region_exception_ = std::current_exception();
  }
  // Join wait, mirror image of the workers' fork wait: spin briefly for the
  // common case of similarly-loaded participants, then sleep.
  int spins = 0;
  while (remaining_.load(std::memory_order_acquire) != 0) {
    if (++spins >= kSpinIters) {
      std::unique_lock lock(mutex_);
      // Acquire: a spurious wakeup can observe the last worker's decrement
      // before that worker takes the mutex to notify, so the predicate load
      // itself must publish the workers' writes to the caller.
      cv_done_.wait(lock, [&] {
        return remaining_.load(std::memory_order_acquire) == 0;
      });
      break;
    }
    cpu_relax();
  }
  std::exception_ptr first;
  {
    std::lock_guard lock(mutex_);
    job_ = nullptr;
    first = region_exception_;
    region_exception_ = nullptr;
  }
  t_in_region = false;
  // Rethrown only now: every participant has left the region, the pool is
  // back to idle, and the caller's unwind cannot race worker cleanup.
  if (first) std::rethrow_exception(first);
}

void ThreadPool::parallel_for(std::size_t nthreads, std::size_t begin,
                              std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  nthreads = std::clamp<std::size_t>(nthreads, 1, max_threads());
  nthreads = std::min(nthreads, count);
  parallel_region(nthreads, [&](std::size_t tid, std::size_t p) {
    const std::size_t chunk = (count + p - 1) / p;
    const std::size_t lo = begin + tid * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

bool ThreadPool::in_region() { return t_in_region; }

namespace {
/// Pool sizing for the process-wide pool: ADSALA_THREADS when set and
/// parseable (clamped to [1, 256] — oversubscription is allowed so
/// concurrency tests can exercise the parallel paths on small hosts),
/// hardware concurrency otherwise.
std::size_t global_pool_threads() {
  if (const char* env = std::getenv("ADSALA_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(std::min<long>(parsed, 256));
    }
  }
  return std::max(1u, std::thread::hardware_concurrency());
}
}  // namespace

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(global_pool_threads() - 1);
  return pool;
}

}  // namespace adsala
