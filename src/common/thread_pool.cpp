#include "common/thread_pool.h"

#include <algorithm>

namespace adsala {

namespace {
// Set while a thread is executing inside a parallel region; nested region
// requests from pool workers (e.g. a model's parallel fit inside a parallel
// grid search) degrade to serial execution instead of deadlocking.
thread_local bool t_in_region = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  // Worker i participates as tid i+1 (the caller is tid 0).
  const std::size_t tid = worker_index + 1;
  std::size_t seen_generation = 0;
  while (true) {
    const std::function<void(std::size_t, std::size_t)>* job = nullptr;
    std::size_t nthreads = 0;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      if (tid >= job_threads_) {
        // Not a participant this region; it is already accounted for in
        // remaining_, so just skip.
        continue;
      }
      job = job_;
      nthreads = job_threads_;
    }
    t_in_region = true;
    (*job)(tid, nthreads);
    t_in_region = false;
    {
      std::lock_guard lock(mutex_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_region(
    std::size_t nthreads,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  nthreads = std::clamp<std::size_t>(nthreads, 1, max_threads());
  if (nthreads == 1 || t_in_region) {
    fn(0, 1);
    return;
  }
  t_in_region = true;
  {
    std::lock_guard lock(mutex_);
    job_ = &fn;
    job_threads_ = nthreads;
    remaining_ = nthreads - 1;
    ++generation_;
  }
  cv_start_.notify_all();
  fn(0, nthreads);
  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
    job_ = nullptr;
  }
  t_in_region = false;
}

void ThreadPool::parallel_for(std::size_t nthreads, std::size_t begin,
                              std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  nthreads = std::clamp<std::size_t>(nthreads, 1, max_threads());
  nthreads = std::min(nthreads, count);
  parallel_region(nthreads, [&](std::size_t tid, std::size_t p) {
    const std::size_t chunk = (count + p - 1) / p;
    const std::size_t lo = begin + tid * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()) -
                         1);
  return pool;
}

}  // namespace adsala
