#include "common/failpoint.h"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>

namespace adsala::failpoint {

namespace {

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::set<std::string, std::less<>>& registry() {
  static std::set<std::string, std::less<>> s;
  return s;
}

/// Armed-name count mirror of the registry: triggered() short-circuits on
/// it without taking the mutex, so an unarmed process pays one relaxed
/// load per site.
std::atomic<int>& armed_count() {
  static std::atomic<int> n{0};
  return n;
}

std::once_flag env_once;

}  // namespace

void arm(std::string_view name) {
  std::lock_guard lock(registry_mutex());
  if (registry().emplace(name).second) {
    armed_count().fetch_add(1, std::memory_order_relaxed);
  }
}

void disarm(std::string_view name) {
  std::lock_guard lock(registry_mutex());
  auto it = registry().find(name);
  if (it != registry().end()) {
    registry().erase(it);
    armed_count().fetch_sub(1, std::memory_order_relaxed);
  }
}

void disarm_all() {
  std::lock_guard lock(registry_mutex());
  armed_count().fetch_sub(static_cast<int>(registry().size()),
                          std::memory_order_relaxed);
  registry().clear();
}

void reload_from_env() {
  const char* env = std::getenv("ADSALA_FAILPOINT");
  if (env == nullptr) return;
  std::string_view list(env);
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    const std::string_view token = list.substr(0, comma);
    if (!token.empty()) arm(token);
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
}

bool triggered(std::string_view name) {
  std::call_once(env_once, reload_from_env);
  if (armed_count().load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard lock(registry_mutex());
  return registry().find(name) != registry().end();
}

void crash_if(std::string_view name) {
  if (!triggered(name)) return;
  ::kill(::getpid(), SIGKILL);
  // SIGKILL is not deliverable to a stopped tracee instantly in every
  // configuration; make sure control never returns to the caller.
  for (;;) ::pause();
}

}  // namespace adsala::failpoint
