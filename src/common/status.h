// Error taxonomy for the fail-safe serving layer.
//
// The serving contract (docs/OPERATIONS.md, "Failure modes and degraded
// serving") is that a BLAS call never crashes the process: it serves the
// trained model, or a documented degraded mode, and it tells the caller
// which. That requires failures to be *values* the caller can branch on
// instead of a zoo of bare std::runtime_error strings: artefact loading
// returns Expected<T>, the CLI maps ErrorCode to distinct process exit
// codes, and health checks can distinguish "config missing" (reinstall)
// from "config corrupt" (bad deploy) from "internal bug" (page someone).
//
// Expected<T> is the subset of C++23 std::expected this codebase needs:
// a tagged union of a value and an Error, move-friendly so move-only
// payloads (AdsalaGemm holds a unique_ptr model) work unchanged.
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace adsala {

/// Failure classes, ordered roughly by "how broken is the installation".
/// The CLI maps these 1:1 onto process exit codes (see exit_code_for), so
/// renumbering is an interface break for anything scripting adsala_cli.
enum class ErrorCode {
  kOk = 0,
  kNotFound,            ///< artefact/file missing or unreadable (I/O level)
  kParseError,          ///< file present but not syntactically decodable
  kValidationError,     ///< decodable but semantically unusable (bad schema
                        ///< width, empty thread grid, non-finite weight...)
  kResourceExhausted,   ///< allocation failure (arena growth, buffers)
  kInternal,            ///< invariant violation; a bug, not an input problem
  kUnavailable,         ///< resource temporarily unusable: shm region caught
                        ///< mid-swap, tuning daemon not reachable — retry later
  kProtocolError,       ///< malformed daemon frame: truncated request, wrong
                        ///< protocol version byte, unknown op code
  kPreconditionFailed,  ///< valid inputs, but the operation's precondition
                        ///< does not hold: rollback target not retained,
                        ///< too little telemetry to retrain on
};

/// Stable lower-case name of a code ("not_found", "parse_error", ...);
/// used in CLI stderr lines and test assertions.
inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kValidationError: return "validation_error";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kProtocolError: return "protocol_error";
    case ErrorCode::kPreconditionFailed: return "precondition_failed";
  }
  return "internal";
}

/// Process exit code for a failure class: 0 ok, 1 internal, 2 is reserved
/// for CLI usage errors, then one code per external-failure class so a
/// supervising daemon's health checks can branch without parsing stderr.
inline int exit_code_for(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return 0;
    case ErrorCode::kNotFound: return 3;
    case ErrorCode::kParseError: return 4;
    case ErrorCode::kValidationError: return 5;
    case ErrorCode::kResourceExhausted: return 6;
    case ErrorCode::kInternal: return 1;
    case ErrorCode::kUnavailable: return 7;
    case ErrorCode::kProtocolError: return 8;
    case ErrorCode::kPreconditionFailed: return 9;
  }
  return 1;
}

/// A failure: class + human-readable, path-qualified message. Default
/// state is kOk with an empty message (useful as an out-parameter).
struct Error {
  ErrorCode code = ErrorCode::kOk;
  std::string message;

  bool ok() const { return code == ErrorCode::kOk; }
};

/// Minimal std::expected stand-in: holds a T or an Error. Construct from
/// either; query ok() before touching value()/error(). Accessing the wrong
/// side throws std::bad_variant_access — a programming error, not a
/// serving-path condition.
template <typename T>
class Expected {
 public:
  Expected(T value) : v_(std::in_place_index<0>, std::move(value)) {}
  Expected(Error error) : v_(std::in_place_index<1>, std::move(error)) {}

  bool ok() const { return v_.index() == 0; }
  explicit operator bool() const { return ok(); }

  T& value() & { return std::get<0>(v_); }
  const T& value() const& { return std::get<0>(v_); }
  T&& value() && { return std::get<0>(std::move(v_)); }

  const Error& error() const { return std::get<1>(v_); }

  /// The value, or `fallback` when this holds an error (moves the value
  /// out; convenience for degraded-mode callers).
  T value_or(T fallback) && {
    return ok() ? std::get<0>(std::move(v_)) : std::move(fallback);
  }

 private:
  std::variant<T, Error> v_;
};

}  // namespace adsala
