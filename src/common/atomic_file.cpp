#include "common/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace adsala {

namespace {

Error errno_error(const std::string& what, const std::string& path) {
  return {ErrorCode::kInternal,
          what + " '" + path + "': " + std::strerror(errno)};
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Writes all of `bytes` to `fd`, retrying short writes and EINTR.
bool write_all(int fd, std::string_view bytes) {
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Error atomic_write_file(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return errno_error("atomic_write_file: open", tmp);
  if (!write_all(fd, bytes)) {
    const Error err = errno_error("atomic_write_file: write", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return err;
  }
  if (::fsync(fd) != 0) {
    const Error err = errno_error("atomic_write_file: fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return err;
  }
  if (::close(fd) != 0) {
    const Error err = errno_error("atomic_write_file: close", tmp);
    ::unlink(tmp.c_str());
    return err;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Error err = errno_error("atomic_write_file: rename", path);
    ::unlink(tmp.c_str());
    return err;
  }
  return fsync_dir(parent_dir(path));
}

Error fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return errno_error("fsync_dir: open", dir);
  if (::fsync(fd) != 0) {
    const Error err = errno_error("fsync_dir: fsync", dir);
    ::close(fd);
    return err;
  }
  ::close(fd);
  return {};
}

Error fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return errno_error("fsync_path: open", path);
  if (::fsync(fd) != 0) {
    const Error err = errno_error("fsync_path: fsync", path);
    ::close(fd);
    return err;
  }
  ::close(fd);
  return {};
}

bool is_tmp_debris_name(std::string_view name) {
  const std::size_t tag = name.find(".tmp.");
  if (tag == std::string_view::npos) return false;
  const std::string_view pid = name.substr(tag + 5);
  if (pid.empty()) return false;
  for (char c : pid) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace adsala
