#include "common/pack_arena.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/failpoint.h"

#if defined(ADSALA_HAVE_NUMA)
#include <numa.h>
#endif

namespace adsala {

namespace {

enum class NumaMode { kFirstTouch, kNode, kOff };

struct NumaConfig {
  NumaMode mode = NumaMode::kFirstTouch;
  int node = -1;
};

/// Parses ADSALA_NUMA once per process. Unrecognised values warn once and
/// fall back to the first-touch default — a placement knob must never turn
/// a working BLAS into an aborting one.
NumaConfig parse_numa_config() {
  NumaConfig cfg;
  const char* env = std::getenv("ADSALA_NUMA");
  if (env == nullptr || *env == '\0' ||
      std::strcmp(env, "firsttouch") == 0) {
    return cfg;
  }
  if (std::strcmp(env, "off") == 0) {
    cfg.mode = NumaMode::kOff;
    return cfg;
  }
  if (std::strncmp(env, "node:", 5) == 0) {
    char* end = nullptr;
    const long node = std::strtol(env + 5, &end, 10);
    if (end != env + 5 && *end == '\0' && node >= 0) {
      cfg.mode = NumaMode::kNode;
      cfg.node = static_cast<int>(node);
      return cfg;
    }
  }
  std::fprintf(stderr,
               "adsala: ignoring unrecognised ADSALA_NUMA=\"%s\" "
               "(expected node:<k>, firsttouch, or off); using firsttouch\n",
               env);
  return cfg;
}

const NumaConfig& numa_config() {
  static const NumaConfig cfg = parse_numa_config();
  return cfg;
}

/// True when libnuma was compiled in AND the running kernel exposes NUMA.
bool numa_runtime_available() {
#if defined(ADSALA_HAVE_NUMA)
  static const bool avail = numa_available() >= 0;
  return avail;
#else
  return false;
#endif
}

/// Set once the first slab bind succeeds; surfaced through arena_stats().
std::atomic<bool> g_numa_bound{false};

void warn_node_degraded(const char* why) {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "adsala: ADSALA_NUMA=node:%d unavailable (%s); "
                 "degrading to first-touch placement\n",
                 numa_config().node, why);
  }
}

/// Applies the configured placement to a freshly grown slab. Called by the
/// thread that owns the slab (thread slabs) or the orchestrator (shared
/// slab), so the first-touch fault puts pages on the right node. Binding
/// failures degrade, never throw: placement is an optimisation.
void place_slab(void* data, std::size_t bytes) {
  const NumaConfig& cfg = numa_config();
  if (cfg.mode == NumaMode::kOff || bytes == 0) return;
  if (cfg.mode == NumaMode::kNode) {
#if defined(ADSALA_HAVE_NUMA)
    if (numa_runtime_available()) {
      numa_tonode_memory(data, bytes, cfg.node);
      g_numa_bound.store(true, std::memory_order_relaxed);
      // numa_tonode_memory moves the pages; still touch them below so the
      // allocation is faulted in before the hot path reads it.
    } else {
      warn_node_degraded("numa_available() < 0");
    }
#else
    warn_node_degraded("built without libnuma");
#endif
  }
  // First-touch (and the node path's fault-in): the writing thread places
  // every untouched page on its node.
  std::memset(data, 0, bytes);
}

}  // namespace

PackArena& PackArena::global() {
  static PackArena arena;
  return arena;
}

PackArena::Slab& PackArena::thread_slab_storage() {
  static thread_local Slab slab;
  return slab;
}

void* PackArena::grow(Slab& slab, std::size_t bytes) {
  // Simulated arena exhaustion: throw as if the growth below failed, even
  // when the slab would have fitted — the carve-site fallbacks must work
  // no matter which call trips OOM.
  if (failpoint::triggered("arena-oom")) throw std::bad_alloc();
  if (slab.buf.size() < bytes) {
    // Geometric growth bounds the number of reallocations a ramp of
    // increasing shapes can trigger; the old slab's contents are scratch, so
    // nothing is copied over.
    const std::size_t target = std::max(bytes, slab.buf.size() * 2);
    slab.buf = AlignedBuffer<unsigned char>(target);
    place_slab(slab.buf.data(), target);
    growths_.fetch_add(1, std::memory_order_relaxed);
  }
  return slab.buf.data();
}

std::size_t PackArena::footprint_bytes() const {
  return shared_.buf.size() + thread_slab_storage().buf.size();
}

PackArena::Stats PackArena::arena_stats() const {
  Stats s;
  s.growth_count = growths_.load(std::memory_order_relaxed);
  s.shared_bytes = shared_.buf.size();
  s.thread_bytes = thread_slab_storage().buf.size();
  const NumaConfig& cfg = numa_config();
  switch (cfg.mode) {
    case NumaMode::kFirstTouch: s.numa_mode = "firsttouch"; break;
    case NumaMode::kNode: s.numa_mode = "node"; break;
    case NumaMode::kOff: s.numa_mode = "off"; break;
  }
  s.numa_node = cfg.node;
  s.numa_available = numa_runtime_available();
  s.numa_bound = g_numa_bound.load(std::memory_order_relaxed);
  return s;
}

}  // namespace adsala
