#include "common/pack_arena.h"

#include <algorithm>
#include <new>

#include "common/failpoint.h"

namespace adsala {

PackArena& PackArena::global() {
  static PackArena arena;
  return arena;
}

PackArena::Slab& PackArena::thread_slab_storage() {
  static thread_local Slab slab;
  return slab;
}

void* PackArena::grow(Slab& slab, std::size_t bytes) {
  // Simulated arena exhaustion: throw as if the growth below failed, even
  // when the slab would have fitted — the carve-site fallbacks must work
  // no matter which call trips OOM.
  if (failpoint::triggered("arena-oom")) throw std::bad_alloc();
  if (slab.buf.size() < bytes) {
    // Geometric growth bounds the number of reallocations a ramp of
    // increasing shapes can trigger; the old slab's contents are scratch, so
    // nothing is copied over.
    const std::size_t target = std::max(bytes, slab.buf.size() * 2);
    slab.buf = AlignedBuffer<unsigned char>(target);
    growths_.fetch_add(1, std::memory_order_relaxed);
  }
  return slab.buf.data();
}

std::size_t PackArena::footprint_bytes() const {
  return shared_.buf.size() + thread_slab_storage().buf.size();
}

}  // namespace adsala
