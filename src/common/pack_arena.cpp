#include "common/pack_arena.h"

#include <algorithm>

namespace adsala {

PackArena& PackArena::global() {
  static PackArena arena;
  return arena;
}

PackArena::Slab& PackArena::thread_slab_storage() {
  static thread_local Slab slab;
  return slab;
}

void* PackArena::grow(Slab& slab, std::size_t bytes) {
  if (slab.buf.size() < bytes) {
    // Geometric growth bounds the number of reallocations a ramp of
    // increasing shapes can trigger; the old slab's contents are scratch, so
    // nothing is copied over.
    const std::size_t target = std::max(bytes, slab.buf.size() * 2);
    slab.buf = AlignedBuffer<unsigned char>(target);
    growths_.fetch_add(1, std::memory_order_relaxed);
  }
  return slab.buf.data();
}

std::size_t PackArena::footprint_bytes() const {
  return shared_.buf.size() + thread_slab_storage().buf.size();
}

}  // namespace adsala
