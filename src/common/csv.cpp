#include "common/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace adsala {

std::size_t CsvTable::col_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named '" + name + "'");
}

std::vector<double> CsvTable::column(const std::string& name) const {
  const std::size_t idx = col_index(name);
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(row.at(idx));
  return out;
}

void write_csv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path);
  out.precision(17);
  for (std::size_t i = 0; i < table.header.size(); ++i) {
    if (i) out << ',';
    out << table.header[i];
  }
  out << '\n';
  for (const auto& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  }
}

CsvTable read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path);
  CsvTable table;
  std::string line;
  if (!std::getline(in, line)) return table;
  {
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) table.header.push_back(cell);
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string cell;
    std::vector<double> row;
    while (std::getline(ss, cell, ',')) {
      row.push_back(std::stod(cell));
    }
    if (row.size() != table.header.size()) {
      throw std::runtime_error("read_csv: ragged row in " + path);
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

}  // namespace adsala
