#include "common/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace adsala {

std::size_t CsvTable::col_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named '" + name + "'");
}

std::vector<double> CsvTable::column(const std::string& name) const {
  const std::size_t idx = col_index(name);
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(row.at(idx));
  return out;
}

void write_csv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path);
  out.precision(17);
  for (std::size_t i = 0; i < table.header.size(); ++i) {
    if (i) out << ',';
    out << table.header[i];
  }
  out << '\n';
  for (const auto& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  }
}

namespace {

/// Parses one numeric cell strictly: the whole cell must be consumed (so
/// "1.5x" or an empty cell is an error, unlike a bare std::stod call that
/// stops at the first bad character and silently misparses).
double parse_cell(const std::string& cell, const std::string& path,
                  std::size_t lineno, std::size_t column) {
  const std::string where =
      path + ":" + std::to_string(lineno) + ": column " +
      std::to_string(column + 1);
  if (cell.empty()) {
    throw std::runtime_error(where + ": empty cell");
  }
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(cell, &consumed);
  } catch (const std::exception&) {
    throw std::runtime_error(where + ": malformed number '" + cell + "'");
  }
  if (consumed != cell.size()) {
    throw std::runtime_error(where + ": trailing junk in number '" + cell +
                             "'");
  }
  return value;
}

}  // namespace

CsvTable read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path);
  CsvTable table;
  std::string line;
  std::size_t lineno = 0;
  if (!std::getline(in, line)) return table;
  ++lineno;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  {
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) table.header.push_back(cell);
  }
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string cell;
    std::vector<double> row;
    while (std::getline(ss, cell, ',')) {
      row.push_back(parse_cell(cell, path, lineno, row.size()));
    }
    if (row.size() != table.header.size()) {
      throw std::runtime_error(
          path + ":" + std::to_string(lineno) + ": expected " +
          std::to_string(table.header.size()) + " columns, got " +
          std::to_string(row.size()));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

}  // namespace adsala
