// Sense-reversing spin barrier for short, latency-critical joins inside GEMM
// parallel regions (a std::condition_variable would dominate small-matrix
// runtimes; the paper's Table VII shows thread sync as a first-class cost).
#pragma once

#include <atomic>
#include <cstddef>

namespace adsala {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t participants)
      : participants_(participants) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait() {
    const std::size_t gen = generation_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        participants_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.store(gen + 1, std::memory_order_release);
    } else {
      while (generation_.load(std::memory_order_acquire) == gen) {
        // busy-wait; regions are short enough that yielding costs more
      }
    }
  }

 private:
  const std::size_t participants_;
  std::atomic<std::size_t> arrived_{0};
  std::atomic<std::size_t> generation_{0};
};

}  // namespace adsala
