#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/failpoint.h"

namespace adsala {

const Json& Json::at(const std::string& key) const {
  return as_object().at(key);
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

Json& Json::operator[](const std::string& key) {
  if (!is_object()) value_ = JsonObject{};
  return std::get<JsonObject>(value_)[key];
}

Json Json::from_doubles(const std::vector<double>& xs) {
  JsonArray arr;
  arr.reserve(xs.size());
  for (double x : xs) arr.emplace_back(x);
  return Json(std::move(arr));
}

std::vector<double> Json::to_doubles() const {
  std::vector<double> out;
  out.reserve(as_array().size());
  for (const auto& v : as_array()) out.push_back(v.as_number());
  return out;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
  } else if (std::isfinite(d)) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  } else {
    // JSON has no Inf/NaN; persist as null (readers must tolerate this).
    out += "null";
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t len = 0;
    while (lit[len]) ++len;
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Json(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Json(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Json(nullptr);
    }
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(obj));
      }
      fail("expected ',' or '}'");
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(arr));
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            const unsigned code =
                std::stoul(text_.substr(pos_, 4), nullptr, 16);
            pos_ += 4;
            // BMP-only UTF-8 encoding; surrogate pairs unsupported.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    try {
      return Json(std::stod(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("malformed number");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

void Json::dump_impl(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
                 : "";
  const std::string pad_close =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : "";
  const char* nl = indent > 0 ? "\n" : "";
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    append_number(out, as_number());
  } else if (is_string()) {
    append_escaped(out, as_string());
  } else if (is_array()) {
    const auto& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (std::size_t i = 0; i < arr.size(); ++i) {
      out += pad;
      arr[i].dump_impl(out, indent, depth + 1);
      if (i + 1 < arr.size()) out += ',';
      out += nl;
    }
    out += pad_close;
    out += ']';
  } else {
    const auto& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    std::size_t i = 0;
    for (const auto& [key, value] : obj) {
      out += pad;
      append_escaped(out, key);
      out += indent > 0 ? ": " : ":";
      value.dump_impl(out, indent, depth + 1);
      if (++i < obj.size()) out += ',';
      out += nl;
    }
    out += pad_close;
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

void write_json_file(const std::string& path, const Json& value) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_json_file: cannot open " + path);
  out << value.dump(2) << '\n';
}

Expected<Json> try_read_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Error{ErrorCode::kNotFound,
                 "read_json_file: cannot open " + path};
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  if (failpoint::triggered("json-truncate")) {
    text.resize(text.size() / 2);  // simulated torn write
  }
  try {
    return Json::parse(text);
  } catch (const std::exception& e) {
    // Parse errors carry the byte offset only; a caller juggling several
    // artefact files needs to know *which* file tore.
    return Error{ErrorCode::kParseError, path + ": " + e.what()};
  }
}

Json read_json_file(const std::string& path) {
  auto result = try_read_json_file(path);
  if (!result.ok()) throw std::runtime_error(result.error().message);
  return std::move(result).value();
}

}  // namespace adsala
