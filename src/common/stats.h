// Descriptive statistics helpers shared by benchmarks and the ML library.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace adsala {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  ///< population variance
double stddev(std::span<const double> xs);    ///< population stddev
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0, 100]. Copies and sorts.
double percentile(std::span<const double> xs, double q);

/// Pearson correlation coefficient; returns 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the edge buckets.
std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins);

/// Sample skewness (Fisher-Pearson, biased). 0 for n < 2 or zero variance.
double skewness(std::span<const double> xs);

}  // namespace adsala
