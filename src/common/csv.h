// Minimal CSV reader/writer for dataset persistence.
//
// The installation workflow stores gathered timings as CSV (one row per
// (m, k, n, n_threads) sample); numbers only, no quoting needed.
#pragma once

#include <string>
#include <vector>

namespace adsala {

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;

  std::size_t col_index(const std::string& name) const;  ///< throws if absent
  std::vector<double> column(const std::string& name) const;
};

void write_csv(const std::string& path, const CsvTable& table);

/// Reads a numeric CSV. Malformed input throws std::runtime_error with a
/// "<path>:<line>: ..." message: non-numeric or empty cells, trailing junk
/// after a number, and short/ragged rows are all rejected with the 1-based
/// line number instead of being silently misparsed (a truncated timings.csv
/// must fail loudly, not train a model on garbage). CRLF line endings are
/// tolerated.
CsvTable read_csv(const std::string& path);

}  // namespace adsala
