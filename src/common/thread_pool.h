// Persistent worker pool with OpenMP-like fork/join regions.
//
// Multi-threaded BLAS libraries keep a warm thread pool and activate a subset
// of workers per call; ADSALA's thread-count selection relies on being able
// to run each GEMM on an exact number of threads without re-spawning (the
// paper separates per-thread-count runs to avoid respawn noise, §III-B). This
// pool mirrors that: workers are created once, and parallel_region(p, fn)
// runs fn(tid, p) on p participants (caller = tid 0) with a join barrier.
//
// Fork and join both use a bounded spin before sleeping on a condition
// variable: back-to-back small regions (the repeated-small-GEMM pattern the
// thread-count model is trained on) hand off in the spin window without
// paying a futex wakeup per region, while an idle pool still parks its
// workers instead of burning a core each.
//
// Exception safety: a throw from the region body (any participant, worker
// or caller) never calls std::terminate. Workers run the body under a
// catch-all; the first captured exception is stashed and rethrown on the
// CALLING thread after the join barrier, so every participant has left the
// region and the pool is reusable before the caller's unwind begins. Later
// exceptions from the same region are dropped (first wins) — the serving
// contract needs one representative failure, not all of them.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adsala {

class ThreadPool {
 public:
  /// Creates `workers` background threads (typically hardware_concurrency-1;
  /// the caller participates as thread 0, so max parallelism = workers + 1).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maximum usable parallelism (background workers + the calling thread).
  std::size_t max_threads() const { return threads_.size() + 1; }

  /// Runs fn(tid, nthreads) on `nthreads` participants and joins. nthreads is
  /// clamped to [1, max_threads()]. Not reentrant; one region at a time.
  /// Exception-safe: if any participant throws, the first exception is
  /// rethrown here (on the calling thread) after all participants joined;
  /// workers never terminate the process.
  void parallel_region(std::size_t nthreads,
                       const std::function<void(std::size_t, std::size_t)>& fn);

  /// Statically-chunked parallel loop over [begin, end) on nthreads threads.
  void parallel_for(std::size_t nthreads, std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// True while the calling thread is executing inside a parallel region
  /// (a nested parallel_region request would degrade to serial).
  static bool in_region();

  /// Process-wide pool, lazily constructed. Sized to hardware concurrency
  /// unless `ADSALA_THREADS` overrides it (clamped to [1, 256]; values above
  /// the core count oversubscribe deliberately — concurrency tests on small
  /// hosts need a multi-thread pool more than they need one core per
  /// worker). Read once at first use; later setenv calls have no effect.
  static ThreadPool& global();

 private:
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_threads_ = 0;  // participants in the current region
  /// Region sequence number; workers (a) spin on it briefly, then (b) sleep
  /// on cv_start_. Bumped under mutex_ so the sleeping path cannot miss a
  /// wakeup. The counter is only a wake signal: job_ / job_threads_ are
  /// NEVER read lock-free — a woken worker re-acquires mutex_ to take a
  /// consistent (generation, job) snapshot (see worker_loop).
  std::atomic<std::size_t> generation_{0};
  std::atomic<std::size_t> remaining_{0};  // workers yet to finish the region
  std::atomic<bool> stop_{false};
  /// First exception thrown by any participant of the current region;
  /// guarded by mutex_, cleared at region start, rethrown by the caller
  /// after the join.
  std::exception_ptr region_exception_;
};

}  // namespace adsala
