// Monotonic wall-clock timer used for all native timing measurements.
#pragma once

#include <chrono>

namespace adsala {

/// Steady-clock stopwatch. Construction starts it; seconds()/micros() read
/// elapsed time without stopping.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace adsala
