// Aligned memory buffer and simple dense matrix container.
//
// GEMM kernels require 64-byte alignment for full-width vector loads and to
// avoid cache-line splits (the paper aligns operands with memalign to 64 B,
// §V-B.3). AlignedBuffer is the RAII owner used by all matrix storage here.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <span>
#include <utility>

namespace adsala {

inline constexpr std::size_t kCacheLineBytes = 64;

/// RAII owner of a 64-byte-aligned array of T. Non-copyable, movable.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) : size_(count) {
    if (count == 0) return;
    // aligned_alloc requires the size to be a multiple of the alignment.
    const std::size_t bytes =
        ((count * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes) *
        kCacheLineBytes;
    data_ = static_cast<T*>(std::aligned_alloc(kCacheLineBytes, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { reset(); }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  std::span<T> span() noexcept { return {data_, size_}; }
  std::span<const T> span() const noexcept { return {data_, size_}; }

 private:
  void reset() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Row-major dense matrix backed by an AlignedBuffer.
///
/// The leading dimension equals the column count; BLAS-style sub-matrix views
/// are expressed with raw pointer + ld in the kernel layer instead.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), buf_(rows * cols) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return rows_ * cols_; }

  T* data() noexcept { return buf_.data(); }
  const T* data() const noexcept { return buf_.data(); }

  T& operator()(std::size_t r, std::size_t c) noexcept {
    return buf_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const noexcept {
    return buf_[r * cols_ + c];
  }

  std::span<T> row(std::size_t r) noexcept {
    return {buf_.data() + r * cols_, cols_};
  }
  std::span<const T> row(std::size_t r) const noexcept {
    return {buf_.data() + r * cols_, cols_};
  }

  void fill(T value) {
    for (std::size_t i = 0; i < size(); ++i) buf_[i] = value;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedBuffer<T> buf_;
};

}  // namespace adsala
