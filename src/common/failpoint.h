// Test-only failpoint registry — deterministic fault injection for the
// fail-safe serving tests (tests/test_faults.cpp).
//
// A failpoint is a named site in production code that, when armed, injects
// the failure the surrounding code claims to survive. Arming is either
// programmatic (failpoint::arm / failpoint::Scoped in tests) or via the
// environment: ADSALA_FAILPOINT=name1,name2 arms the listed names at first
// use, so a CI leg can drive a full binary through its failure paths
// without recompiling.
//
// The registry is deliberately tiny: triggered() is one relaxed atomic load
// when nothing is armed (the production fast path costs no lock), and a
// mutex-guarded set lookup otherwise. Sites check by literal name; the
// names in use are documented in docs/OPERATIONS.md:
//
//   json-truncate     read_json_file returns only the first half of the
//                     file's bytes (artefact truncation mid-write)
//   model-nan-weight  AdsalaGemm::try_load sees a NaN smuggled into the
//                     model blob's first numeric array (corrupt weight)
//   arena-oom         PackArena::grow throws std::bad_alloc (slab growth
//                     failure; ops must degrade to per-call buffers)
//   worker-throw      a ThreadPool region worker (tid != 0) throws; the
//                     region must capture and rethrow on the caller
//   telemetry-torn-tail  TelemetryLog::flush persists only a prefix of its
//                     buffer and wedges the handle (crash mid-write); the
//                     next open() must truncate the torn tail away
//   shm-mid-swap      read_shm_region observes an odd (publish-in-progress)
//                     seqlock generation on every retry and reports
//                     kUnavailable after the retry budget
//
// crash_if() sites SIGKILL the *current process* instead of injecting a
// recoverable fault — they model "the machine died here". The harness
// (tools/crash_harness.cpp) forks a child, arms one of these, and asserts
// the survivors' invariants afterwards:
//
//   promote-crash-after-stage    after install() verified the staging pair,
//                                before anything durable happened
//   promote-crash-mid-retain     after the retained tmp dir is written and
//                                fsynced, before its rename into versions/
//   promote-crash-after-retain   versions/<v> complete, current mirror and
//                                VERSION still old
//   promote-crash-mid-promote    current model.json renamed new, config.json
//                                still old (torn mirror)
//   promote-crash-after-promote  mirror complete, VERSION still old
//   promote-crash-after-version  fully promoted (crash after the last fsync)
//   shm-crash-mid-publish        shm generation flipped odd, payload not yet
//                                written
//   shm-crash-before-commit      shm payload + descriptors written, final
//                                even-generation flip missing
#pragma once

#include <string_view>

namespace adsala::failpoint {

/// True when `name` is armed. O(1) relaxed load when nothing is armed.
bool triggered(std::string_view name);

/// SIGKILLs the current process when `name` is armed — the "kill-anywhere"
/// crash-injection primitive. Unlike triggered(), there is no cleanup, no
/// stack unwinding, no atexit: the process dies exactly as if the OOM
/// killer or a power cut hit this instruction. No-op when unarmed.
void crash_if(std::string_view name);

void arm(std::string_view name);
void disarm(std::string_view name);
void disarm_all();

/// Re-reads ADSALA_FAILPOINT and arms every comma-separated name in it
/// (additive; does not disarm anything). Called once automatically at
/// first triggered(); exposed so tests can exercise the env path.
void reload_from_env();

/// RAII arm-for-a-scope.
class Scoped {
 public:
  explicit Scoped(std::string_view name) : name_(name) { arm(name_); }
  ~Scoped() { disarm(name_); }
  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;

 private:
  std::string_view name_;
};

}  // namespace adsala::failpoint
