// CPU node topology and cost-model constants for the machine simulator.
//
// The paper's experiments ran on two supercomputer nodes we do not have:
//   - Setonix: 2x AMD EPYC "Milan" 64-core Zen 3, SMT2, 8 NUMA domains,
//     32 MB L3 per 8-core CCX, 8 DDR4 channels/socket (paper SS V-A.1)
//   - Gadi: 2x Intel Xeon Platinum 8274 24-core Cascade Lake, SMT2,
//     4 NUMA domains, 6 DDR4 channels/socket (paper SS V-A.2)
// CpuTopology captures both the hardware shape and the calibration constants
// of the analytical runtime model in machine_model.h. Constants are chosen so
// the simulated t(m,k,n,p) surface reproduces the qualitative phenomena the
// paper measures (see DESIGN.md substitution table); they are deliberately
// public so ablation benches can perturb them.
#pragma once

#include <string>

namespace adsala::simarch {

struct CpuTopology {
  std::string name;

  // Hardware shape.
  int sockets = 2;
  int cores_per_socket = 24;
  int smt_per_core = 2;
  int numa_per_socket = 2;

  // Compute throughput.
  double freq_ghz = 2.8;             ///< sustained clock under vector load
  double fp32_flops_per_cycle = 32;  ///< per core (FMA width x 2 x issue)
  double peak_frac = 0.85;           ///< fraction of peak a tuned kernel hits
  double smt_marginal = 0.30;        ///< extra throughput of a 2nd HW thread

  // Memory system.
  double socket_bw_gbs = 131.0;     ///< STREAM-like per-socket bandwidth
  double core_bw_gbs = 13.0;        ///< single-core bandwidth ceiling
  double interleave_factor = 0.85;  ///< NUMA-interleave efficiency
  double remote_bw_frac = 0.6;      ///< usable fraction of a remote socket's bw

  // Parallel-runtime overheads (microseconds unless noted).
  double barrier_base_us = 1.2;        ///< per log2(p) barrier step
  double cross_socket_sync_mult = 2.0; ///< barrier penalty across sockets
  double spawn_us_per_thread = 0.35;   ///< waking a pool thread
  double workspace_us_per_thread = 22.0;  ///< per-thread packing workspace touch
  double contend_us = 4.0;  ///< p^2 copy-contention coefficient (small GEMM)
  /// Per-thread FLOP volume (in MFLOP) below which copy contention bites;
  /// the gate falls off cubically above it, so only genuinely small work
  /// slices thrash (the paper's 64x2048x64 pathology).
  double contend_ref_mflops = 1.0;
  /// Rows of C per thread below which the m-partition degenerates and
  /// threads false-share C/packing lines (second contention gate). Shapes
  /// with a large m escape contention entirely: each thread owns whole rows.
  double contend_row_ref = 2.0;
  /// The library's internal dynamic threading heuristic (MKL_DYNAMIC-like):
  /// the effective team size is capped at flops / (this many MFLOP). The cap
  /// is flop-based, so large-k shapes (lots of FLOPs, tiny parallelisable C)
  /// slip through it — the blind spot the paper exploits.
  double dynamic_mflops_per_thread = 0.25;
  double call_overhead_us = 2.5;  ///< fixed dispatch cost per GEMM call

  // Cost-model kernel geometry (the simulated library's internal blocking).
  int model_mr = 8;
  int model_nr = 8;
  int model_kc = 384;
  int model_nc = 4096;
  double kernel_rampup_k = 16.0;  ///< k-loop software-pipelining ramp length

  int total_cores() const { return sockets * cores_per_socket; }
  int max_threads(bool allow_smt = true) const {
    return total_cores() * (allow_smt ? smt_per_core : 1);
  }
};

/// Setonix compute node: 2x EPYC 7763 "Milan" (Zen 3), 128 cores / 256 threads.
CpuTopology setonix_topology();

/// Gadi "Cascade Lake" node: 2x Xeon Platinum 8274, 48 cores / 96 threads.
CpuTopology gadi_topology();

/// A small single-socket machine for fast unit/integration tests.
CpuTopology tiny_topology();

}  // namespace adsala::simarch
