#include "simarch/machine_model.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace adsala::simarch {

namespace {

double ceil_div(double a, double b) { return std::ceil(a / b); }

/// Per-core FLOPs per cycle for an element size (fp64 runs at half the fp32
/// vector rate) — the one place this rule lives.
double fp_per_cycle(const CpuTopology& topo, int elem_bytes) {
  return elem_bytes == 4 ? topo.fp32_flops_per_cycle
                         : topo.fp32_flops_per_cycle / 2.0;
}

/// Stable mix of the model seed with the experiment coordinates so noise is
/// reproducible yet uncorrelated across configurations and iterations.
std::uint64_t mix_seed(std::uint64_t seed, long m, long k, long n, int p,
                       int aff, int smt, int iter) {
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  };
  std::uint64_t h = seed;
  h = mix(h, static_cast<std::uint64_t>(m));
  h = mix(h, static_cast<std::uint64_t>(k));
  h = mix(h, static_cast<std::uint64_t>(n));
  h = mix(h, static_cast<std::uint64_t>(p));
  h = mix(h, static_cast<std::uint64_t>(aff));
  h = mix(h, static_cast<std::uint64_t>(smt));
  h = mix(h, static_cast<std::uint64_t>(iter));
  return h;
}

}  // namespace

MachineModel::MachineModel(CpuTopology topo, std::uint64_t noise_seed,
                           double noise_sigma)
    : topo_(std::move(topo)),
      noise_seed_(noise_seed),
      noise_sigma_(noise_sigma) {}

int MachineModel::resolve_threads(const ExecPolicy& policy) const {
  const int max = topo_.max_threads(policy.allow_smt);
  if (policy.nthreads <= 0) return max;
  return std::clamp(policy.nthreads, 1, max);
}

double MachineModel::effective_bandwidth(int cores_used, int sockets_used,
                                         bool interleave) const {
  const double core_cap = cores_used * topo_.core_bw_gbs;
  double socket_bw;
  if (interleave) {
    // Interleaved pages spread over every NUMA domain: the used sockets pull
    // locally at full rate and remotely through the inter-socket links.
    const double local = sockets_used * topo_.socket_bw_gbs;
    const double remote = (topo_.sockets - sockets_used) *
                          topo_.socket_bw_gbs * topo_.remote_bw_frac;
    socket_bw = (local + remote) * topo_.interleave_factor;
  } else {
    socket_bw = sockets_used * topo_.socket_bw_gbs;
  }
  return std::min(core_cap, socket_bw) * 1e9;  // GB/s -> B/s
}

TimingBreakdown MachineModel::time_gemm(const GemmShape& shape,
                                        const ExecPolicy& policy) const {
  TimingBreakdown out;
  const int p_requested = resolve_threads(policy);
  const double m = static_cast<double>(shape.m);
  const double k = static_cast<double>(shape.k);
  const double n = static_cast<double>(shape.n);
  if (shape.m <= 0 || shape.k <= 0 || shape.n <= 0) return out;

  // Library-internal dynamic threading (MKL_DYNAMIC-like): the effective
  // team is capped when the FLOP volume is small. The heuristic counts
  // FLOPs only, so large-k shapes pass through it with a full — and
  // counterproductive — team: the paper's core observation.
  const int dyn_cap = static_cast<int>(std::max(
      1.0, shape.flops() / (topo_.dynamic_mflops_per_thread * 1e6)));
  const int p = std::min(p_requested, dyn_cap);

  // ---- thread placement -------------------------------------------------
  int cores_used;
  if (policy.affinity == Affinity::kCores) {
    // OMP_PLACES=cores: one thread per physical core first.
    cores_used = std::min(p, topo_.total_cores());
  } else {
    // OMP_PLACES=threads (bind close): SMT siblings fill up first.
    cores_used = std::min(ceil_div(p, topo_.smt_per_core) < 1.0
                              ? 1
                              : static_cast<int>(ceil_div(p, topo_.smt_per_core)),
                          topo_.total_cores());
  }
  const double threads_per_core = static_cast<double>(p) / cores_used;
  const int sockets_used = static_cast<int>(
      std::min<double>(topo_.sockets, ceil_div(cores_used, topo_.cores_per_socket)));

  // ---- kernel: FLOP roofline ---------------------------------------------
  const double flops = shape.flops();
  const double smt_factor =
      1.0 + topo_.smt_marginal * (threads_per_core - 1.0);
  const double rate = cores_used * topo_.freq_ghz * 1e9 *
                      fp_per_cycle(topo_, shape.elem_bytes) * smt_factor *
                      topo_.peak_frac;

  // SIMD-tile utilisation: skinny m/n waste vector lanes, short k pays the
  // pipeline ramp (why the paper's m=64 shapes run far below peak).
  const double u_m = m / (ceil_div(m, topo_.model_mr) * topo_.model_mr);
  const double u_n = n / (ceil_div(n, topo_.model_nr) * topo_.model_nr);
  const double u_k = k / (k + topo_.kernel_rampup_k);
  const double u = u_m * u_n * u_k;

  // Load imbalance: micro-tiles divide unevenly among p threads.
  const double tiles = ceil_div(m, topo_.model_mr) * ceil_div(n, topo_.model_nr);
  const double imbalance = ceil_div(tiles, p) * p / tiles;

  const double t_flop = flops * imbalance / (rate * u);

  // Memory roofline: packed A streamed once per NC slab of B; C touched once
  // per KC slab of k.
  const double k_slabs = ceil_div(k, topo_.model_kc);
  const double n_slabs = ceil_div(n, topo_.model_nc);
  const double dram_bytes =
      shape.elem_bytes * (m * k * n_slabs + k * n + 2.0 * m * n * k_slabs);
  const double bw =
      effective_bandwidth(cores_used, sockets_used, policy.numa_interleave);
  const double t_mem = dram_bytes / bw;

  out.kernel_s = std::max(t_flop, t_mem) + topo_.call_overhead_us * 1e-6;

  if (p == 1) {
    // Single-thread fast path: no packing workspace, no synchronisation
    // (matches Table VII's zero sync/copy at one thread). Requesting extra
    // threads the dynamic heuristic then parks still costs their wake-up.
    out.spawn_s = (p_requested - 1) * topo_.spawn_us_per_thread * 1e-6;
    return out;
  }

  // ---- data copy (packing) -----------------------------------------------
  const double copy_bytes =
      shape.elem_bytes * (m * k * n_slabs + k * n);  // A per slab + B once
  const double t_stream = copy_bytes / bw;
  const double interleave_pen = policy.numa_interleave ? 1.0 : 0.6;
  // Threads with no micro-tile assigned never touch a packing workspace, so
  // degenerate shapes (m = n = 2) do not pay per-thread copy costs.
  const double busy_threads = std::min<double>(p, tiles);
  const double t_workspace =
      busy_threads * topo_.workspace_us_per_thread * 1e-6 * interleave_pen;
  // Contention: threads fighting over tiny packing blocks and false-sharing
  // C lines. Two gates, both cubic so medium problems are unaffected:
  //   - per-thread FLOP slice must be small (threads have almost no work);
  //   - the m-partition must be degenerate (fewer than ~contend_row_ref rows
  //     of C per thread) — a large m gives every thread whole rows and no
  //     shared lines, so tall-skinny shapes escape.
  // The cost repeats once per KC slab of the k loop, which is why the
  // paper's 64x2048x64 case (6 slabs) suffers ~16x more copy time than
  // 64x64x4096 (1 slab) at 96 threads (Table VII).
  const double per_thread_mflops = flops / busy_threads / 1e6;
  const double gate_f =
      topo_.contend_ref_mflops / std::max(per_thread_mflops, 1e-9);
  const double gate_flops = std::min(1.0, gate_f * gate_f * gate_f);
  const double gate_r = topo_.contend_row_ref * busy_threads / m;
  const double gate_rows = std::min(1.0, gate_r * gate_r * gate_r);
  const double t_contend = busy_threads * busy_threads * topo_.contend_us *
                           1e-6 * gate_flops * gate_rows * k_slabs;
  out.copy_s = t_stream + t_workspace + t_contend;

  // ---- synchronisation -----------------------------------------------------
  const double barriers = 2.0 * k_slabs * n_slabs + 1.0;
  const double cross =
      sockets_used > 1 ? topo_.cross_socket_sync_mult : 1.0;
  out.sync_s = barriers * topo_.barrier_base_us * 1e-6 * std::log2(double(p)) *
               cross;
  // Wake-up cost follows the *requested* team size: threads the dynamic
  // heuristic benches still get woken, which is what makes over-requesting
  // threads strictly (if mildly) worse on the capped plateau.
  out.spawn_s = p_requested * topo_.spawn_us_per_thread * 1e-6;

  return out;
}

TimingBreakdown MachineModel::time_op(const GemmShape& shape,
                                      const ExecPolicy& policy,
                                      const OpCostModel& cost) const {
  TimingBreakdown out = time_gemm(shape, policy);
  // Triangle dimension of the family conventions: shape.m equals the
  // triangle/symmetric n under m == k, and equals shape.n under SYRK's
  // m == n, so it serves both.
  const double d = static_cast<double>(shape.m);
  if (cost.triangle_kernel && d > 0.0) {
    // Only the uplo triangle's micro-tiles run: d*(d+1)*r multiply-adds vs
    // the equivalent GEMM's 2*d*d*r. Copy and sync stay at GEMM level — the
    // substrate keeps the same packing and barrier schedule — which is
    // exactly why the triangle-family optima sit at fewer threads: the fixed
    // overheads amortise over roughly half the FLOPs.
    out.kernel_s *= (d + 1.0) / (2.0 * d);
  }
  if (cost.serial_diag_chain && d > 0.0) {
    // The diagonal-block solves (one model_kc-deep triangle per panel of the
    // chain, ~kc*d*r multiply-adds in total) cannot be spread over the team:
    // each block needs every earlier block's solution. Charge their FLOPs at
    // the single-thread rate, minus the share already counted inside the
    // parallel kernel term (the (p-1)/p factor keeps p = 1 exact).
    const double r = static_cast<double>(shape.n);
    const int p = resolve_threads(policy);
    const double serial_rate = topo_.freq_ghz * 1e9 *
                               fp_per_cycle(topo_, shape.elem_bytes) *
                               topo_.peak_frac;
    const double serial_flops =
        std::min(2.0 * topo_.model_kc * d, 2.0 * d * d) * r / 2.0;
    out.kernel_s += serial_flops / serial_rate * (p - 1.0) / p;
  }
  out.copy_s *= cost.copy_mult;
  out.sync_s *= cost.sync_mult;
  return out;
}

TimingBreakdown MachineModel::time_syrk(const GemmShape& shape,
                                        const ExecPolicy& policy) const {
  return time_op(shape, policy, kSyrkCostModel);
}

TimingBreakdown MachineModel::time_trsm(const GemmShape& shape,
                                        const ExecPolicy& policy) const {
  return time_op(shape, policy, kTrsmCostModel);
}

TimingBreakdown MachineModel::time_symm(const GemmShape& shape,
                                        const ExecPolicy& policy) const {
  return time_op(shape, policy, kSymmCostModel);
}

namespace {

/// Mean of `iterations` noisy draws around an analytical base time.
double noisy_mean(const TimingBreakdown& base, std::uint64_t seed,
                  double sigma, const GemmShape& shape,
                  const ExecPolicy& policy, int p, int iterations) {
  double sum = 0.0;
  for (int it = 0; it < iterations; ++it) {
    Rng rng(mix_seed(seed, shape.m, shape.k, shape.n, p,
                     static_cast<int>(policy.affinity),
                     policy.allow_smt ? 1 : 0, it));
    double factor = rng.lognormal_factor(sigma);
    // Rare OS-noise spike, larger with more threads involved.
    if (rng.uniform() < 0.02) {
      factor *= 1.0 + rng.uniform(0.1, 0.6) * std::log2(double(p) + 1.0);
    }
    sum += base.total() * factor;
  }
  return sum / iterations;
}

}  // namespace

double MachineModel::measure_op(const GemmShape& shape,
                                const ExecPolicy& policy,
                                const OpCostModel& cost,
                                int iterations) const {
  return noisy_mean(time_op(shape, policy, cost),
                    noise_seed_ ^ cost.noise_salt, noise_sigma_, shape,
                    policy, resolve_threads(policy), iterations);
}

double MachineModel::measure_gemm(const GemmShape& shape,
                                  const ExecPolicy& policy,
                                  int iterations) const {
  return noisy_mean(time_gemm(shape, policy), noise_seed_, noise_sigma_,
                    shape, policy, resolve_threads(policy), iterations);
}

double MachineModel::measure_syrk(const GemmShape& shape,
                                  const ExecPolicy& policy,
                                  int iterations) const {
  return measure_op(shape, policy, kSyrkCostModel, iterations);
}

double MachineModel::measure_trsm(const GemmShape& shape,
                                  const ExecPolicy& policy,
                                  int iterations) const {
  return measure_op(shape, policy, kTrsmCostModel, iterations);
}

double MachineModel::measure_symm(const GemmShape& shape,
                                  const ExecPolicy& policy,
                                  int iterations) const {
  return measure_op(shape, policy, kSymmCostModel, iterations);
}

int MachineModel::optimal_threads(const GemmShape& shape, ExecPolicy policy,
                                  double* best_time) const {
  const int max = topo_.max_threads(policy.allow_smt);
  int best_p = 1;
  double best = -1.0;
  for (int p = 1; p <= max; ++p) {
    policy.nthreads = p;
    const double t = measure_gemm(shape, policy);
    if (best < 0.0 || t < best) {
      best = t;
      best_p = p;
    }
  }
  if (best_time != nullptr) *best_time = best;
  return best_p;
}

}  // namespace adsala::simarch
