// Analytical GEMM runtime model over a CpuTopology.
//
// Substitutes for running MKL/BLIS on the paper's Setonix and Gadi nodes.
// The model decomposes a multi-threaded GEMM call into the same three
// components the paper's VTune profiling isolates (Table VII) --
// synchronisation, data copy (packing), kernel FLOPs -- plus thread spawn,
// and reproduces the mechanisms that make the optimal thread count vary:
//   - parallel FLOP rate with SMT marginal gain and SIMD-tile efficiency
//     loss on skinny dimensions,
//   - roofline memory bound with socket bandwidth saturation and NUMA
//     interleave efficiency,
//   - ceil-division load imbalance over micro-tiles,
//   - log2(p) barriers per cache-block iteration (worse across sockets),
//   - per-thread workspace setup and a p^2 copy-contention term that bites
//     only on small footprints (the paper's 64x2048x64 pathology),
//   - single-thread fast path with no packing or sync (Table VII, p=1 row).
// measure_gemm applies deterministic log-normal noise seeded from the inputs
// so repeated experiments are reproducible.
#pragma once

#include <cstdint>

#include "simarch/topology.h"

namespace adsala::simarch {

/// GEMM problem shape; elem_bytes = 4 (SGEMM) or 8 (DGEMM).
struct GemmShape {
  long m = 0;
  long k = 0;
  long n = 0;
  int elem_bytes = 4;

  double flops() const { return 2.0 * double(m) * double(k) * double(n); }
  double bytes() const {
    return double(elem_bytes) *
           (double(m) * k + double(k) * n + double(m) * n);
  }
};

/// OpenMP-style placement policy (paper SS V-B.4: OMP_PLACES=cores|threads).
enum class Affinity { kCores, kThreads };

struct ExecPolicy {
  int nthreads = 0;  ///< <=0 means the platform maximum
  Affinity affinity = Affinity::kCores;
  bool allow_smt = true;        ///< hyper-threading enabled (Tables V vs VI)
  bool numa_interleave = true;  ///< paper's benchmark NUMA memory policy
};

/// Per-component wall-time in seconds (Table VII columns).
struct TimingBreakdown {
  double spawn_s = 0.0;
  double sync_s = 0.0;
  double copy_s = 0.0;
  double kernel_s = 0.0;

  double total() const { return spawn_s + sync_s + copy_s + kernel_s; }
};

/// Declarative deviation of one operation's cost from the GEMM model. The
/// op registry (core/op_registry.cpp) carries one per operation, so the
/// analytic measure path of a new op is a literal, not a new method:
///   - triangle_kernel: only the uplo triangle's micro-tiles execute, so the
///     kernel component scales by (d + 1) / (2d) with d the triangle
///     dimension (shape.n under the SYRK m == n convention, shape.m under
///     the triangular m == k one — identical for in-convention shapes);
///   - serial_diag_chain: TRSM's diagonal-block solves run at single-thread
///     rate (an Amdahl term that vanishes at p = 1);
///   - copy_mult / sync_mult: packing surcharges (SYMM's mirrored strided
///     reads, TRMM's B pre-copy) and extra barrier sweeps (TRSM's per-panel
///     re-joins);
///   - noise_salt decorrelates the op's measurement noise stream from the
///     GEMM one, so mixed-op campaigns never share draws.
struct OpCostModel {
  bool triangle_kernel = false;
  bool serial_diag_chain = false;
  double copy_mult = 1.0;
  double sync_mult = 1.0;
  std::uint64_t noise_salt = 0;
};

/// Canonical cost models of the built-in family. The op registry
/// (core/op_registry.cpp) references these same constants, so the
/// time_syrk/trsm/symm convenience methods and the registry path cannot
/// drift; an op added after this header froze keeps its cost model in its
/// registry row alone.
inline constexpr OpCostModel kGemmCostModel{};
inline constexpr OpCostModel kSyrkCostModel{
    .triangle_kernel = true, .noise_salt = 0x53595246ull /* "SYRK" */};
inline constexpr OpCostModel kTrsmCostModel{.triangle_kernel = true,
                                            .serial_diag_chain = true,
                                            .sync_mult = 2.0,
                                            .noise_salt =
                                                0x5452534dull /* "TRSM" */};
/// SYMM: same FLOP volume as the equivalent GEMM; the packing stream is
/// slower because the mirrored half of every packed A block is read
/// transposed (strided) out of the stored triangle.
inline constexpr OpCostModel kSymmCostModel{
    .copy_mult = 1.3, .noise_salt = 0x53594d4dull /* "SYMM" */};

class MachineModel {
 public:
  explicit MachineModel(CpuTopology topo, std::uint64_t noise_seed = 42,
                        double noise_sigma = 0.08);

  const CpuTopology& topology() const { return topo_; }

  /// Threads actually used for a request (clamped to the platform maximum).
  int resolve_threads(const ExecPolicy& policy) const;

  /// Noise-free analytical breakdown of one GEMM call.
  TimingBreakdown time_gemm(const GemmShape& shape,
                            const ExecPolicy& policy) const;

  /// Noise-free breakdown of one call of an operation described by an
  /// OpCostModel, applied on top of the GEMM breakdown of the stored
  /// equivalent-GEMM shape. The identity cost model reproduces time_gemm.
  TimingBreakdown time_op(const GemmShape& shape, const ExecPolicy& policy,
                          const OpCostModel& cost) const;

  /// Mean of `iterations` noisy total-time draws of an OpCostModel-described
  /// operation; the cost model's noise salt keeps the stream decorrelated
  /// from every other op's. Deterministic in (inputs, seed).
  double measure_op(const GemmShape& shape, const ExecPolicy& policy,
                    const OpCostModel& cost, int iterations = 10) const;

  /// Noise-free breakdown of one SYRK call, given as the equivalent-GEMM
  /// shape (m == n; A is n x k). SYRK shares GEMM's packing, barrier, and
  /// spawn structure (our substrate runs it on the same packed-panel
  /// machinery, and A is packed into both panel roles), but only the
  /// triangle's micro-tiles execute: the kernel component scales by
  /// (n + 1) / (2n).
  TimingBreakdown time_syrk(const GemmShape& shape,
                            const ExecPolicy& policy) const;

  /// Mean of `iterations` noisy total-time draws (the paper times 10
  /// iterations per configuration, SS V-B.3). Deterministic in (inputs, seed).
  double measure_gemm(const GemmShape& shape, const ExecPolicy& policy,
                      int iterations = 10) const;

  /// SYRK sibling of measure_gemm; noise stream is decorrelated from the
  /// GEMM stream so mixed-op campaigns do not share draws.
  double measure_syrk(const GemmShape& shape, const ExecPolicy& policy,
                      int iterations = 10) const;

  /// Noise-free breakdown of one left-side TRSM, given as the
  /// equivalent-GEMM shape (m == k == triangle n; shape.n = RHS columns).
  /// The trailing updates are plain GEMMs over the triangle (kernel scales
  /// by (n + 1) / (2n) like SYRK), but the diagonal-block solves form a
  /// sequential dependency chain: their work runs at single-thread rate no
  /// matter the team size, and the chain inserts an extra barrier sweep per
  /// panel (sync doubles). Both push the TRSM optimum below the GEMM one.
  TimingBreakdown time_trsm(const GemmShape& shape,
                            const ExecPolicy& policy) const;

  /// Noise-free breakdown of one left-side SYMM, equivalent-GEMM shape
  /// (m == k == symmetric n; shape.n = B/C columns). Same FLOPs as GEMM;
  /// the packing stream pays for the symmetric expansion (the mirrored half
  /// of every packed A block is a strided transposed read), so the copy
  /// component carries a constant surcharge.
  TimingBreakdown time_symm(const GemmShape& shape,
                            const ExecPolicy& policy) const;

  /// TRSM sibling of measure_gemm (decorrelated noise stream).
  double measure_trsm(const GemmShape& shape, const ExecPolicy& policy,
                      int iterations = 10) const;

  /// SYMM sibling of measure_gemm (decorrelated noise stream).
  double measure_symm(const GemmShape& shape, const ExecPolicy& policy,
                      int iterations = 10) const;

  /// Exhaustive argmin of measure_gemm over 1..max_threads. Returns the
  /// optimal thread count; if best_time is non-null stores its runtime.
  int optimal_threads(const GemmShape& shape, ExecPolicy policy,
                      double* best_time = nullptr) const;

 private:
  double effective_bandwidth(int cores_used, int sockets_used,
                             bool interleave) const;

  CpuTopology topo_;
  std::uint64_t noise_seed_;
  double noise_sigma_;
};

}  // namespace adsala::simarch
