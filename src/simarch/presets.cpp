#include "simarch/topology.h"

namespace adsala::simarch {

CpuTopology setonix_topology() {
  CpuTopology t;
  t.name = "setonix";
  t.sockets = 2;
  t.cores_per_socket = 64;
  t.smt_per_core = 2;
  t.numa_per_socket = 4;
  t.freq_ghz = 2.55;
  t.fp32_flops_per_cycle = 32;  // Zen 3: 2x 256-bit FMA = 16 FP32 FMA/cycle
  t.peak_frac = 0.85;
  t.smt_marginal = 0.28;
  t.socket_bw_gbs = 190.0;  // 8x DDR4-3200 channels
  t.core_bw_gbs = 14.0;
  t.interleave_factor = 0.85;
  t.remote_bw_frac = 0.55;
  t.barrier_base_us = 1.4;  // 128 cores, 8 CCXs: long barrier radix
  t.cross_socket_sync_mult = 2.2;
  t.spawn_us_per_thread = 0.30;
  t.workspace_us_per_thread = 18.0;
  t.contend_us = 2.5;
  t.contend_ref_mflops = 1.0;
  t.call_overhead_us = 2.0;
  return t;
}

CpuTopology gadi_topology() {
  CpuTopology t;
  t.name = "gadi";
  t.sockets = 2;
  t.cores_per_socket = 24;
  t.smt_per_core = 2;
  t.numa_per_socket = 2;
  t.freq_ghz = 2.6;             // AVX-512 sustained clock of the 8274
  t.fp32_flops_per_cycle = 64;  // 2x 512-bit FMA = 32 FP32 FMA/cycle
  t.peak_frac = 0.80;
  t.smt_marginal = 0.25;
  t.socket_bw_gbs = 131.0;  // 6x DDR4-2933 channels
  t.core_bw_gbs = 13.0;
  t.interleave_factor = 0.82;
  t.remote_bw_frac = 0.60;
  t.barrier_base_us = 1.1;
  t.cross_socket_sync_mult = 2.0;
  t.spawn_us_per_thread = 0.35;
  // MKL's per-thread buffer management on interleaved NUMA is what produces
  // the paper's 64x2048x64 copy blow-up (Table VII); Gadi gets the larger
  // contention coefficients.
  t.workspace_us_per_thread = 26.0;
  t.contend_us = 6.5;
  t.contend_ref_mflops = 1.0;
  t.call_overhead_us = 2.5;
  return t;
}

CpuTopology tiny_topology() {
  CpuTopology t;
  t.name = "tiny";
  t.sockets = 1;
  t.cores_per_socket = 8;
  t.smt_per_core = 2;
  t.numa_per_socket = 1;
  t.freq_ghz = 3.0;
  t.fp32_flops_per_cycle = 32;
  t.socket_bw_gbs = 40.0;
  t.core_bw_gbs = 12.0;
  t.cross_socket_sync_mult = 1.0;
  // Deliberately overhead-heavy parallel runtime: with only 16 threads the
  // interior thread-count optimum must be pronounced for the fast unit /
  // integration tests to exercise meaningful selection.
  t.barrier_base_us = 2.5;
  t.spawn_us_per_thread = 2.0;
  t.workspace_us_per_thread = 60.0;
  t.contend_us = 8.0;
  return t;
}

}  // namespace adsala::simarch
