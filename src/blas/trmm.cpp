#include "blas/trmm.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "blas/kernels/dispatch.h"
#include "blas/pack.h"
#include "common/aligned_buffer.h"
#include "common/thread_pool.h"

namespace adsala::blas {

namespace {

/// Blocked product over B rows [row_lo, row_hi): the GEMM macro-loop with A
/// panels packed through the triangular expansion (pack_a_tri) and the
/// pre-copied B packed straight. The caller zeroed the owned B rows, so the
/// micro-kernels accumulate alpha * op(A) * B_copy into them slab by slab.
/// Slabs entirely outside a row block's triangle extent contribute only
/// zeros and are skipped, which is where TRMM's ~half-GEMM FLOP count comes
/// from.
template <typename T>
void trmm_rows_blocked(const kernels::KernelSet<T>& ks, bool trans,
                       bool lower_eff, bool unit, int n, int m, T alpha,
                       const T* a, int lda, const T* b_copy, T* b, int ldb,
                       int row_lo, int row_hi, int mc, int kc, int nc) {
  if (row_lo >= row_hi) return;
  const int mr = ks.mr;
  const int nr = ks.nr;

  AlignedBuffer<T> a_pack(static_cast<std::size_t>((mc + mr - 1) / mr) * mr *
                          kc);
  const int b_panels_max = (std::min(nc, m) + nr - 1) / nr;
  AlignedBuffer<T> b_pack(static_cast<std::size_t>(b_panels_max) * kc * nr);

  for (int jc = 0; jc < m; jc += nc) {
    const int nc_eff = std::min(nc, m - jc);
    const int nc_panels = (nc_eff + nr - 1) / nr;
    for (int pc = 0; pc < n; pc += kc) {
      const int kc_eff = std::min(kc, n - pc);
      // Triangle extent of the owned rows: a lower op(A) only reads columns
      // p <= row_hi - 1, an upper one only columns p >= row_lo.
      if (lower_eff ? pc >= row_hi : pc + kc_eff <= row_lo) continue;

      for (int q = 0; q < nc_panels; ++q) {
        const int j0 = jc + q * nr;
        const int cols = std::min(nr, m - j0);
        detail::pack_b<T>(b_copy + static_cast<long>(pc) * m + j0, m, kc_eff,
                          cols, nr,
                          b_pack.data() + static_cast<long>(q) * kc_eff * nr);
      }

      for (int ic = row_lo; ic < row_hi; ic += mc) {
        const int mc_eff = std::min(mc, row_hi - ic);
        // Per-block triangle skip: this slab intersects rows [ic, ic+mc_eff)
        // of the triangle only if some (i, p) with p in the slab is stored.
        if (lower_eff ? pc >= ic + mc_eff : pc + kc_eff <= ic) continue;
        detail::pack_a_tri<T>(a, lda, trans, lower_eff, unit, ic, pc, mc_eff,
                              kc_eff, mr, a_pack.data());

        for (int jr = 0; jr < nc_eff; jr += nr) {
          const int cols = std::min(nr, nc_eff - jr);
          const T* b_panel =
              b_pack.data() + static_cast<long>(jr / nr) * kc_eff * nr;
          for (int ir = 0; ir < mc_eff; ir += mr) {
            const int rows = std::min(mr, mc_eff - ir);
            const T* a_panel =
                a_pack.data() + static_cast<long>(ir / mr) * kc_eff * mr;
            T* c_tile = b + static_cast<long>(ic + ir) * ldb + jc + jr;
            if (rows == mr && cols == nr) {
              ks.full(kc_eff, alpha, a_panel, b_panel, c_tile, ldb);
            } else {
              ks.edge(kc_eff, alpha, a_panel, b_panel, c_tile, ldb, rows,
                      cols);
            }
          }
        }
      }
    }
  }
}

}  // namespace

template <typename T>
void trmm(Uplo uplo, Trans trans, Diag diag, int n, int m, T alpha,
          const T* a, int lda, T* b, int ldb, int nthreads,
          const GemmTuning& tuning) {
  if (n < 0 || m < 0) throw std::invalid_argument("trmm: negative dimension");
  if (lda < std::max(1, n) || ldb < std::max(1, m)) {
    throw std::invalid_argument("trmm: leading dimension too small");
  }
  if (n == 0 || m == 0) return;

  ThreadPool& pool = ThreadPool::global();
  std::size_t p = nthreads <= 0 ? pool.max_threads()
                                : static_cast<std::size_t>(nthreads);
  p = std::clamp<std::size_t>(p, 1, pool.max_threads());
  p = std::min<std::size_t>(p, static_cast<std::size_t>(n));

  if (alpha == T(0)) {
    pool.parallel_region(p, [&](std::size_t tid, std::size_t nt) {
      const int chunk = static_cast<int>((n + nt - 1) / nt);
      const int lo = static_cast<int>(tid) * chunk;
      const int hi = std::min(n, lo + chunk);
      for (int i = lo; i < hi; ++i) {
        std::fill(b + static_cast<long>(i) * ldb,
                  b + static_cast<long>(i) * ldb + m, T(0));
      }
    });
    return;
  }

  // op(A) is effectively lower triangular when the stored triangle and the
  // transpose flag agree (same rule as TRSM).
  const bool lower_eff = (uplo == Uplo::kLower) == (trans == Trans::kNo);

  const kernels::KernelSet<T>& ks = kernels::kernel_set<T>(tuning.variant);
  const int mc = std::max(ks.mr, tuning.mc - tuning.mc % ks.mr);
  const int kc = std::max(1, tuning.kc);
  const int nc = std::max(ks.nr, tuning.nc - tuning.nc % ks.nr);

  // In-place product: copy B densely (row stride m), then overwrite B with
  // alpha * op(A) * B_copy. Each thread owns a contiguous run of B rows; the
  // copy+zero pass and the accumulation need no cross-thread sync beyond the
  // barrier between the two parallel regions.
  AlignedBuffer<T> b_copy(static_cast<std::size_t>(n) * m);
  pool.parallel_region(p, [&](std::size_t tid, std::size_t nt) {
    const int lo = static_cast<int>(tid * static_cast<std::size_t>(n) / nt);
    const int hi =
        static_cast<int>((tid + 1) * static_cast<std::size_t>(n) / nt);
    for (int i = lo; i < hi; ++i) {
      T* src = b + static_cast<long>(i) * ldb;
      std::copy(src, src + m, b_copy.data() + static_cast<long>(i) * m);
      std::fill(src, src + m, T(0));
    }
  });
  pool.parallel_region(p, [&](std::size_t tid, std::size_t nt) {
    // Area-balanced partition: row i of an effective-lower product touches
    // ~i+1 of the n k-columns, so an even row split would leave the last
    // thread ~2x the mean micro-tile count (same load shape as SYRK's
    // triangle, same fix).
    const int lo = detail::triangle_split(lower_eff, n, tid, nt);
    const int hi = detail::triangle_split(lower_eff, n, tid + 1, nt);
    trmm_rows_blocked(ks, trans == Trans::kYes, lower_eff,
                      diag == Diag::kUnit, n, m, alpha, a, lda, b_copy.data(),
                      b, ldb, lo, hi, mc, kc, nc);
  });
}

void strmm(Uplo uplo, Trans trans, Diag diag, int n, int m, float alpha,
           const float* a, int lda, float* b, int ldb, int nthreads) {
  trmm<float>(uplo, trans, diag, n, m, alpha, a, lda, b, ldb, nthreads);
}

void dtrmm(Uplo uplo, Trans trans, Diag diag, int n, int m, double alpha,
           const double* a, int lda, double* b, int ldb, int nthreads) {
  trmm<double>(uplo, trans, diag, n, m, alpha, a, lda, b, ldb, nthreads);
}

template <typename T>
void reference_trmm(Uplo uplo, Trans trans, Diag diag, int n, int m, T alpha,
                    const T* a, int lda, T* b, int ldb) {
  const bool lower_eff = (uplo == Uplo::kLower) == (trans == Trans::kNo);
  std::vector<T> copy(static_cast<std::size_t>(n) * m);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      copy[static_cast<std::size_t>(i) * m + j] =
          b[static_cast<long>(i) * ldb + j];
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      T acc = T(0);
      for (int p = 0; p < n; ++p) {
        if (lower_eff ? p > i : p < i) continue;
        T aip;
        if (p == i && diag == Diag::kUnit) {
          aip = T(1);
        } else {
          aip = trans == Trans::kYes ? a[static_cast<long>(p) * lda + i]
                                     : a[static_cast<long>(i) * lda + p];
        }
        acc += aip * copy[static_cast<std::size_t>(p) * m + j];
      }
      b[static_cast<long>(i) * ldb + j] = alpha * acc;
    }
  }
}

template void trmm<float>(Uplo, Trans, Diag, int, int, float, const float*,
                          int, float*, int, int, const GemmTuning&);
template void trmm<double>(Uplo, Trans, Diag, int, int, double, const double*,
                           int, double*, int, int, const GemmTuning&);
template void reference_trmm<float>(Uplo, Trans, Diag, int, int, float,
                                    const float*, int, float*, int);
template void reference_trmm<double>(Uplo, Trans, Diag, int, int, double,
                                     const double*, int, double*, int);

}  // namespace adsala::blas
