#include "blas/trmm.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "blas/kernels/dispatch.h"
#include "blas/level3_common.h"
#include "blas/pack.h"
#include "common/aligned_buffer.h"
#include "common/pack_arena.h"
#include "common/thread_pool.h"

namespace adsala::blas {

namespace {

/// Blocked product over B rows [row_lo, row_hi): the GEMM macro-loop with A
/// panels packed through the triangular expansion (pack_a_tri) and the
/// pre-copied B packed straight. The caller zeroed the owned B rows, so the
/// micro-kernels accumulate alpha * op(A) * B_copy into them slab by slab.
/// Slabs entirely outside a row block's triangle extent contribute only
/// zeros and are skipped, which is where TRMM's ~half-GEMM FLOP count comes
/// from.
template <typename T>
void trmm_rows_blocked(const kernels::KernelSet<T>& ks, bool trans,
                       bool lower_eff, bool unit, int n, int m, T alpha,
                       const T* a, int lda, const T* b_copy, T* b, int ldb,
                       int row_lo, int row_hi, int mc, int kc, int nc,
                       T* a_pack, T* b_pack) {
  if (row_lo >= row_hi) return;
  const int mr = ks.mr;
  const int nr = ks.nr;

  for (int jc = 0; jc < m; jc += nc) {
    const int nc_eff = std::min(nc, m - jc);
    const int nc_panels = (nc_eff + nr - 1) / nr;
    for (int pc = 0; pc < n; pc += kc) {
      const int kc_eff = std::min(kc, n - pc);
      // Triangle extent of the owned rows: a lower op(A) only reads columns
      // p <= row_hi - 1, an upper one only columns p >= row_lo.
      if (lower_eff ? pc >= row_hi : pc + kc_eff <= row_lo) continue;

      for (int q = 0; q < nc_panels; ++q) {
        const int j0 = jc + q * nr;
        const int cols = std::min(nr, m - j0);
        detail::pack_b<T>(b_copy + static_cast<long>(pc) * m + j0, m, kc_eff,
                          cols, nr,
                          b_pack + static_cast<long>(q) * kc_eff * nr);
      }

      for (int ic = row_lo; ic < row_hi; ic += mc) {
        const int mc_eff = std::min(mc, row_hi - ic);
        // Per-block triangle skip: this slab intersects rows [ic, ic+mc_eff)
        // of the triangle only if some (i, p) with p in the slab is stored.
        if (lower_eff ? pc >= ic + mc_eff : pc + kc_eff <= ic) continue;
        detail::pack_a_tri<T>(a, lda, trans, lower_eff, unit, ic, pc, mc_eff,
                              kc_eff, mr, a_pack);

        for (int jr = 0; jr < nc_eff; jr += nr) {
          const int cols = std::min(nr, nc_eff - jr);
          const T* b_panel =
              b_pack + static_cast<long>(jr / nr) * kc_eff * nr;
          for (int ir = 0; ir < mc_eff; ir += mr) {
            const int rows = std::min(mr, mc_eff - ir);
            const T* a_panel =
                a_pack + static_cast<long>(ir / mr) * kc_eff * mr;
            T* c_tile = b + static_cast<long>(ic + ir) * ldb + jc + jr;
            if (rows == mr && cols == nr) {
              ks.full(kc_eff, alpha, a_panel, b_panel, c_tile, ldb);
            } else {
              ks.edge(kc_eff, alpha, a_panel, b_panel, c_tile, ldb, rows,
                      cols);
            }
          }
        }
      }
    }
  }
}

}  // namespace

template <typename T>
void trmm(Uplo uplo, Trans trans, Diag diag, int n, int m, T alpha,
          const T* a, int lda, T* b, int ldb, int nthreads,
          const GemmTuning& tuning) {
  if (n < 0 || m < 0) throw std::invalid_argument("trmm: negative dimension");
  if (lda < std::max(1, n) || ldb < std::max(1, m)) {
    throw std::invalid_argument("trmm: leading dimension too small");
  }
  if (n == 0 || m == 0) return;

  ThreadPool& pool = ThreadPool::global();
  const std::size_t p = detail::resolve_threads(nthreads, n);

  if (alpha == T(0)) {
    // Degenerate product: B = 0 (ahead of any tuning resolution, as in
    // every level-3 driver — see level3_common.h).
    detail::scale_rows_pass(p, n, m, T(0), b, static_cast<long>(ldb));
    return;
  }

  // op(A) is effectively lower triangular when the stored triangle and the
  // transpose flag agree (same rule as TRSM).
  const bool lower_eff = (uplo == Uplo::kLower) == (trans == Trans::kNo);

  const kernels::KernelSet<T>& ks = kernels::kernel_set<T>(tuning.variant);
  const auto [mc, kc, nc] = detail::block_geometry(ks, tuning);

  // In-place product: copy B densely (row stride m), then overwrite B with
  // alpha * op(A) * B_copy. Each thread owns a contiguous run of B rows; the
  // copy+zero pass and the accumulation need no cross-thread sync beyond the
  // barrier between the two parallel regions.
  //
  // Arena carve: the dense copy is read by every participant, so it lives in
  // the shared slab; each participant's private A/B panels come out of its
  // thread slab inside the region. The serial case carves all three out of
  // the caller's thread slab in one piece (one thread_slab call per op call
  // — a second call could grow and invalidate the first).
  //
  // Unlike the blocking-bounded pack panels, the dense copy is O(n * m) of
  // the *input*, and the arena is grow-only for the process lifetime — one
  // huge call must not pin that much scratch forever. Above the threshold
  // the copy falls back to a per-call buffer: the allocation then amortises
  // against O(n^2 * m) of compute, which is exactly when it is cheap. The
  // serial path carves from a *per-slot* slab (and every slot a nested
  // caller runs on can grow one), so its budget is 8x tighter than the
  // single shared slab's — still covering the small/medium repeated shapes
  // the arena exists for.
  constexpr std::size_t kMaxSharedCopyBytes = std::size_t{16} << 20;
  constexpr std::size_t kMaxThreadCopyBytes = kMaxSharedCopyBytes / 8;
  const std::size_t copy_elems = static_cast<std::size_t>(n) * m;
  const bool serial = p == 1;  // includes nested-region degradation
  const bool copy_in_arena =
      copy_elems * sizeof(T) <=
      (serial ? kMaxThreadCopyBytes : kMaxSharedCopyBytes);
  AlignedBuffer<T> copy_fallback;
  if (!copy_in_arena) copy_fallback = AlignedBuffer<T>(copy_elems);
  T* b_copy;
  detail::PanelCarve<T> serial_carve;
  std::shared_ptr<AlignedBuffer<T>> shared_oom_fallback;  // arena-OOM degrade
  if (serial) {
    // One carve covers the copy (when it fits the per-thread budget) and
    // both panels; parallel participants carve their panels inside the
    // second region instead.
    serial_carve = detail::carve_private_panels<T>(
        ks, mc, kc, nc, m,
        copy_in_arena ? PackArena::padded_count<T>(copy_elems) : 0);
    b_copy = copy_in_arena ? serial_carve.extra : copy_fallback.data();
  } else {
    b_copy = copy_in_arena ? detail::shared_slab_or_fallback<T>(
                                 copy_elems, shared_oom_fallback)
                           : copy_fallback.data();
  }

  pool.parallel_region(p, [&](std::size_t tid, std::size_t nt) {
    const int lo = static_cast<int>(tid * static_cast<std::size_t>(n) / nt);
    const int hi =
        static_cast<int>((tid + 1) * static_cast<std::size_t>(n) / nt);
    for (int i = lo; i < hi; ++i) {
      T* src = b + static_cast<long>(i) * ldb;
      std::copy(src, src + m, b_copy + static_cast<long>(i) * m);
      std::fill(src, src + m, T(0));
    }
  });
  pool.parallel_region(p, [&](std::size_t tid, std::size_t nt) {
    // Area-balanced partition: row i of an effective-lower product touches
    // ~i+1 of the n k-columns, so an even row split would leave the last
    // thread ~2x the mean micro-tile count (same load shape as SYRK's
    // triangle, same fix).
    const int lo = detail::triangle_split(lower_eff, n, tid, nt);
    const int hi = detail::triangle_split(lower_eff, n, tid + 1, nt);
    const auto carve = serial
                           ? serial_carve
                           : detail::carve_private_panels<T>(ks, mc, kc, nc,
                                                             m);
    trmm_rows_blocked(ks, trans == Trans::kYes, lower_eff,
                      diag == Diag::kUnit, n, m, alpha, a, lda, b_copy, b,
                      ldb, lo, hi, mc, kc, nc, carve.a_pack, carve.b_pack);
  });
}

void strmm(Uplo uplo, Trans trans, Diag diag, int n, int m, float alpha,
           const float* a, int lda, float* b, int ldb, int nthreads) {
  trmm<float>(uplo, trans, diag, n, m, alpha, a, lda, b, ldb, nthreads);
}

void dtrmm(Uplo uplo, Trans trans, Diag diag, int n, int m, double alpha,
           const double* a, int lda, double* b, int ldb, int nthreads) {
  trmm<double>(uplo, trans, diag, n, m, alpha, a, lda, b, ldb, nthreads);
}

template <typename T>
void reference_trmm(Uplo uplo, Trans trans, Diag diag, int n, int m, T alpha,
                    const T* a, int lda, T* b, int ldb) {
  const bool lower_eff = (uplo == Uplo::kLower) == (trans == Trans::kNo);
  std::vector<T> copy(static_cast<std::size_t>(n) * m);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      copy[static_cast<std::size_t>(i) * m + j] =
          b[static_cast<long>(i) * ldb + j];
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      T acc = T(0);
      for (int p = 0; p < n; ++p) {
        if (lower_eff ? p > i : p < i) continue;
        T aip;
        if (p == i && diag == Diag::kUnit) {
          aip = T(1);
        } else {
          aip = trans == Trans::kYes ? a[static_cast<long>(p) * lda + i]
                                     : a[static_cast<long>(i) * lda + p];
        }
        acc += aip * copy[static_cast<std::size_t>(p) * m + j];
      }
      b[static_cast<long>(i) * ldb + j] = alpha * acc;
    }
  }
}

template void trmm<float>(Uplo, Trans, Diag, int, int, float, const float*,
                          int, float*, int, int, const GemmTuning&);
template void trmm<double>(Uplo, Trans, Diag, int, int, double, const double*,
                           int, double*, int, int, const GemmTuning&);
template void reference_trmm<float>(Uplo, Trans, Diag, int, int, float,
                                    const float*, int, float*, int);
template void reference_trmm<double>(Uplo, Trans, Diag, int, int, double,
                                     const double*, int, double*, int);

}  // namespace adsala::blas
