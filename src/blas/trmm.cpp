#include "blas/trmm.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "blas/kernels/dispatch.h"
#include "blas/level3_common.h"
#include "blas/pack.h"
#include "blas/pack_pipeline.h"
#include "common/aligned_buffer.h"
#include "common/pack_arena.h"
#include "common/thread_pool.h"

namespace adsala::blas {

namespace {

/// Blocked product over B rows [row_lo, row_hi): the GEMM macro-loop with A
/// panels packed through the triangular expansion (pack_a_tri) and the
/// pre-copied B packed straight. The caller zeroed the owned B rows, so the
/// micro-kernels accumulate alpha * op(A) * B_copy into them slab by slab.
/// Slabs entirely outside a row block's triangle extent contribute only
/// zeros and are skipped, which is where TRMM's ~half-GEMM FLOP count comes
/// from.
template <typename T>
void trmm_rows_blocked(const kernels::KernelSet<T>& ks, bool trans,
                       bool lower_eff, bool unit, int n, int m, T alpha,
                       const T* a, int lda, const T* b_copy, T* b, int ldb,
                       int row_lo, int row_hi, int mc, int kc, int nc,
                       T* a_pack, T* b_pack) {
  if (row_lo >= row_hi) return;
  const int mr = ks.mr;
  const int nr = ks.nr;

  for (int jc = 0; jc < m; jc += nc) {
    const int nc_eff = std::min(nc, m - jc);
    const int nc_panels = (nc_eff + nr - 1) / nr;
    for (int pc = 0; pc < n; pc += kc) {
      const int kc_eff = std::min(kc, n - pc);
      // Triangle extent of the owned rows: a lower op(A) only reads columns
      // p <= row_hi - 1, an upper one only columns p >= row_lo.
      if (lower_eff ? pc >= row_hi : pc + kc_eff <= row_lo) continue;

      for (int q = 0; q < nc_panels; ++q) {
        const int j0 = jc + q * nr;
        const int cols = std::min(nr, m - j0);
        detail::pack_b<T>(b_copy + static_cast<long>(pc) * m + j0, m, kc_eff,
                          cols, nr,
                          b_pack + static_cast<long>(q) * kc_eff * nr);
      }

      for (int ic = row_lo; ic < row_hi; ic += mc) {
        const int mc_eff = std::min(mc, row_hi - ic);
        // Per-block triangle skip: this slab intersects rows [ic, ic+mc_eff)
        // of the triangle only if some (i, p) with p in the slab is stored.
        if (lower_eff ? pc >= ic + mc_eff : pc + kc_eff <= ic) continue;
        detail::pack_a_tri<T>(a, lda, trans, lower_eff, unit, ic, pc, mc_eff,
                              kc_eff, mr, a_pack);

        for (int jr = 0; jr < nc_eff; jr += nr) {
          const int cols = std::min(nr, nc_eff - jr);
          const T* b_panel =
              b_pack + static_cast<long>(jr / nr) * kc_eff * nr;
          for (int ir = 0; ir < mc_eff; ir += mr) {
            const int rows = std::min(mr, mc_eff - ir);
            const T* a_panel =
                a_pack + static_cast<long>(ir / mr) * kc_eff * mr;
            T* c_tile = b + static_cast<long>(ic + ir) * ldb + jc + jr;
            if (rows == mr && cols == nr) {
              ks.full(kc_eff, alpha, a_panel, b_panel, c_tile, ldb);
            } else {
              ks.edge(kc_eff, alpha, a_panel, b_panel, c_tile, ldb, rows,
                      cols);
            }
          }
        }
      }
    }
  }
}

/// Kernel sweep of one triangular-packed A block against one packed B
/// block, accumulating into B's rows [ic, ic+mc_eff).
template <typename T>
void trmm_macro_kernel(const kernels::KernelSet<T>& ks, int mc_eff,
                       int nc_eff, int kc_eff, T alpha, const T* a_pack,
                       const T* b_pack, T* c_block, int ldb) {
  const int mr = ks.mr;
  const int nr = ks.nr;
  for (int jr = 0; jr < nc_eff; jr += nr) {
    const int cols = std::min(nr, nc_eff - jr);
    const T* b_panel = b_pack + static_cast<long>(jr / nr) * kc_eff * nr;
    for (int ir = 0; ir < mc_eff; ir += mr) {
      const int rows = std::min(mr, mc_eff - ir);
      const T* a_panel = a_pack + static_cast<long>(ir / mr) * kc_eff * mr;
      T* c_tile = c_block + static_cast<long>(ir) * ldb + jr;
      if (rows == mr && cols == nr) {
        ks.full(kc_eff, alpha, a_panel, b_panel, c_tile, ldb);
      } else {
        ks.edge(kc_eff, alpha, a_panel, b_panel, c_tile, ldb, rows, cols);
      }
    }
  }
}

}  // namespace

template <typename T>
void trmm(Uplo uplo, Trans trans, Diag diag, int n, int m, T alpha,
          const T* a, int lda, T* b, int ldb, int nthreads,
          const GemmTuning& tuning) {
  if (n < 0 || m < 0) throw std::invalid_argument("trmm: negative dimension");
  if (lda < std::max(1, n) || ldb < std::max(1, m)) {
    throw std::invalid_argument("trmm: leading dimension too small");
  }
  if (n == 0 || m == 0) return;

  ThreadPool& pool = ThreadPool::global();
  const std::size_t p = detail::resolve_threads(nthreads, n);

  if (alpha == T(0)) {
    // Degenerate product: B = 0 (ahead of any tuning resolution, as in
    // every level-3 driver — see level3_common.h).
    detail::scale_rows_pass(p, n, m, T(0), b, static_cast<long>(ldb));
    return;
  }

  // op(A) is effectively lower triangular when the stored triangle and the
  // transpose flag agree (same rule as TRSM).
  const bool lower_eff = (uplo == Uplo::kLower) == (trans == Trans::kNo);

  const kernels::KernelSet<T>& ks = kernels::kernel_set<T>(tuning.variant);
  const auto [mc, kc, nc] = detail::block_geometry(ks, tuning);

  // In-place product: copy B densely (row stride m), then overwrite B with
  // alpha * op(A) * B_copy. Each thread owns a contiguous run of B rows; the
  // copy+zero pass and the accumulation need no cross-thread sync beyond the
  // barrier between the two parallel regions.
  //
  // Arena carve: the dense copy is read by every participant, so it lives in
  // the shared slab; each participant's private A/B panels come out of its
  // thread slab inside the region. The serial case carves all three out of
  // the caller's thread slab in one piece (one thread_slab call per op call
  // — a second call could grow and invalidate the first).
  //
  // Unlike the blocking-bounded pack panels, the dense copy is O(n * m) of
  // the *input*, and the arena is grow-only for the process lifetime — one
  // huge call must not pin that much scratch forever. Above the threshold
  // the copy falls back to a per-call buffer: the allocation then amortises
  // against O(n^2 * m) of compute, which is exactly when it is cheap. The
  // serial path carves from a *per-slot* slab (and every slot a nested
  // caller runs on can grow one), so its budget is 8x tighter than the
  // single shared slab's — still covering the small/medium repeated shapes
  // the arena exists for.
  constexpr std::size_t kMaxSharedCopyBytes = std::size_t{16} << 20;
  constexpr std::size_t kMaxThreadCopyBytes = kMaxSharedCopyBytes / 8;
  const std::size_t copy_elems = static_cast<std::size_t>(n) * m;
  const bool serial = p == 1;  // includes nested-region degradation
  const bool copy_in_arena =
      copy_elems * sizeof(T) <=
      (serial ? kMaxThreadCopyBytes : kMaxSharedCopyBytes);
  AlignedBuffer<T> copy_fallback;
  if (!copy_in_arena) copy_fallback = AlignedBuffer<T>(copy_elems);
  T* b_copy;
  detail::PanelCarve<T> serial_carve;
  detail::SharedPair<T> pair;                             // parallel only
  std::shared_ptr<AlignedBuffer<T>> shared_oom_fallback;  // arena-OOM degrade
  const std::size_t b_pack_elems = detail::b_panel_elems(ks, nc, m, kc);
  if (serial) {
    // One carve covers the copy (when it fits the per-thread budget) and
    // both panels.
    serial_carve = detail::carve_private_panels<T>(
        ks, mc, kc, nc, m,
        copy_in_arena ? PackArena::padded_count<T>(copy_elems) : 0);
    b_copy = copy_in_arena ? serial_carve.extra : copy_fallback.data();
  } else {
    // ONE shared-slab call covers the dense copy (when it fits the budget)
    // and both ping/pong pack halves: shared_slab always returns the slab
    // base, so a second call would alias the first carve (and could grow
    // the slab out from under it).
    const std::size_t pair_padded = PackArena::padded_count<T>(b_pack_elems);
    const std::size_t copy_padded =
        copy_in_arena ? PackArena::padded_count<T>(copy_elems) : 0;
    T* base = detail::shared_slab_or_fallback<T>(copy_padded + 2 * pair_padded,
                                                 shared_oom_fallback);
    b_copy = copy_in_arena ? base : copy_fallback.data();
    pair.bufs[0] = base + copy_padded;
    pair.bufs[1] = base + copy_padded + pair_padded;
  }

  pool.parallel_region(p, [&](std::size_t tid, std::size_t nt) {
    const int lo = static_cast<int>(tid * static_cast<std::size_t>(n) / nt);
    const int hi =
        static_cast<int>((tid + 1) * static_cast<std::size_t>(n) / nt);
    for (int i = lo; i < hi; ++i) {
      T* src = b + static_cast<long>(i) * ldb;
      std::copy(src, src + m, b_copy + static_cast<long>(i) * m);
      std::fill(src, src + m, T(0));
    }
  });
  if (serial) {
    trmm_rows_blocked(ks, trans == Trans::kYes, lower_eff,
                      diag == Diag::kUnit, n, m, alpha, a, lda, b_copy, b,
                      ldb, 0, n, mc, kc, nc, serial_carve.a_pack,
                      serial_carve.b_pack);
    return;
  }

  // Parallel accumulate pass: the pack pipeline (see blas/pack_pipeline.h).
  // The pre-pipeline schedule gave each thread an area-balanced triangle
  // split and a private full-B pack; the cooperative ping/pong pack copies
  // each kc panel once, and the triangle's load skew — the very thing the
  // old triangle_split existed for — is absorbed by tile stealing instead:
  // a thread whose tiles sit outside the panel's triangle extent finishes
  // its skips instantly and steals real work. Every kc panel intersects at
  // least one row tile's extent, so no panel-level skip is needed; TRMM's
  // ~half-GEMM FLOP count is preserved by the per-tile skip below.
  const bool unit = diag == Diag::kUnit;
  const bool trans_eff = trans == Trans::kYes;
  const detail::BlockGeom g{mc, kc, nc};
  const std::size_t a_pack_elems = detail::a_panel_elems(ks, mc, kc);

  const int row_tiles = (n + mc - 1) / mc;
  detail::PackPipeline pipe(p);
  detail::TileDeck deck(p, row_tiles);

  pool.parallel_region(p, [&](std::size_t tid, std::size_t nt) {
    std::shared_ptr<AlignedBuffer<T>> a_fallback;
    T* a_pack = detail::thread_slab_or_fallback<T>(a_pack_elems, a_fallback);

    detail::pipelined_macro_loop<T>(
        tid, nt, n, m, n, g, ks.nr, pair.bufs, pipe, deck,
        [&](int jc, int pc, int kc_eff, int q, T* dst) {
          const int j0 = jc + q * ks.nr;
          const int cols = std::min(ks.nr, m - j0);
          detail::pack_b<T>(b_copy + static_cast<long>(pc) * m + j0, m,
                            kc_eff, cols, ks.nr, dst);
        },
        [&](int jc, int pc, int nc_eff, int kc_eff, bool /*first_of_jc*/,
            int ic, int mc_eff, const T* b_buf) {
          // Per-tile triangle skip: this slab contributes only zeros to rows
          // [ic, ic+mc_eff) when it lies outside their triangle extent.
          if (lower_eff ? pc >= ic + mc_eff : pc + kc_eff <= ic) return;
          detail::pack_a_tri<T>(a, lda, trans_eff, lower_eff, unit, ic, pc,
                                mc_eff, kc_eff, ks.mr, a_pack);
          trmm_macro_kernel<T>(ks, mc_eff, nc_eff, kc_eff, alpha, a_pack,
                               b_buf, b + static_cast<long>(ic) * ldb + jc,
                               ldb);
        });
  });
}

void strmm(Uplo uplo, Trans trans, Diag diag, int n, int m, float alpha,
           const float* a, int lda, float* b, int ldb, int nthreads) {
  trmm<float>(uplo, trans, diag, n, m, alpha, a, lda, b, ldb, nthreads);
}

void dtrmm(Uplo uplo, Trans trans, Diag diag, int n, int m, double alpha,
           const double* a, int lda, double* b, int ldb, int nthreads) {
  trmm<double>(uplo, trans, diag, n, m, alpha, a, lda, b, ldb, nthreads);
}

template <typename T>
void reference_trmm(Uplo uplo, Trans trans, Diag diag, int n, int m, T alpha,
                    const T* a, int lda, T* b, int ldb) {
  const bool lower_eff = (uplo == Uplo::kLower) == (trans == Trans::kNo);
  std::vector<T> copy(static_cast<std::size_t>(n) * m);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      copy[static_cast<std::size_t>(i) * m + j] =
          b[static_cast<long>(i) * ldb + j];
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      T acc = T(0);
      for (int p = 0; p < n; ++p) {
        if (lower_eff ? p > i : p < i) continue;
        T aip;
        if (p == i && diag == Diag::kUnit) {
          aip = T(1);
        } else {
          aip = trans == Trans::kYes ? a[static_cast<long>(p) * lda + i]
                                     : a[static_cast<long>(i) * lda + p];
        }
        acc += aip * copy[static_cast<std::size_t>(p) * m + j];
      }
      b[static_cast<long>(i) * ldb + j] = alpha * acc;
    }
  }
}

template void trmm<float>(Uplo, Trans, Diag, int, int, float, const float*,
                          int, float*, int, int, const GemmTuning&);
template void trmm<double>(Uplo, Trans, Diag, int, int, double, const double*,
                           int, double*, int, int, const GemmTuning&);
template void reference_trmm<float>(Uplo, Trans, Diag, int, int, float,
                                    const float*, int, float*, int);
template void reference_trmm<double>(Uplo, Trans, Diag, int, int, double,
                                     const double*, int, double*, int);

}  // namespace adsala::blas
