// From-scratch multi-threaded GEMM — the BLAS substrate of ADSALA.
//
// The paper treats vendor BLAS (Intel MKL on Gadi, AMD BLIS on Setonix) as a
// black box whose runtime depends on (m, k, n, n_threads). This module is our
// stand-in: a GotoBLAS/BLIS-style implementation with
//   - three-level cache blocking (NC / KC / MC),
//   - operand packing into contiguous micro-panels,
//   - a register-blocked MR x NR micro-kernel chosen at runtime from the
//     dispatched KernelSet (hand-written AVX2+FMA when the CPU has it,
//     compiler-vectorised generic otherwise; see blas/kernels/dispatch.h),
//   - row-partitioned threading with shared packed-B and spin barriers.
// Its thread-count-dependent performance profile (sync + packing overhead vs
// parallel FLOPs) is the behaviour the ML model learns in native mode.
//
// Convention: matrices are ROW-major; ld* is the row stride. gemm computes
//   C <- alpha * op(A) * op(B) + beta * C          (paper Eq. 1)
// with op(X) = X or X^T per the trans flags, op(A) m-by-k, op(B) k-by-n.
#pragma once

#include <cmath>
#include <cstddef>

#include "blas/kernels/kernel_set.h"

namespace adsala::blas {

namespace detail {

/// Balanced row partition of a triangle: thread t's range starts where
/// ~t/p of the triangle's *area* has been covered, not of the rows (row i
/// of a lower triangle costs i+1 column updates). Shared by the
/// triangle-walking routines (syrk, trmm).
inline int triangle_split(bool lower, int n, std::size_t t, std::size_t p) {
  const double frac = static_cast<double>(t) / static_cast<double>(p);
  if (lower) {
    // rows [0, r) hold fraction (r/n)^2 of the area.
    return static_cast<int>(std::floor(n * std::sqrt(frac)));
  }
  // upper triangle: rows [0, r) hold 1 - ((n-r)/n)^2 of the area.
  return static_cast<int>(std::floor(n * (1.0 - std::sqrt(1.0 - frac))));
}

}  // namespace detail

enum class Trans { kNo, kYes };

/// Which triangle of a symmetric / triangular operand is stored and touched
/// (shared by syrk / trsm / symm).
enum class Uplo { kLower, kUpper };

/// Whether a triangular matrix has an implicit unit diagonal (trsm).
enum class Diag { kNonUnit, kUnit };

/// Cache-blocking parameters. Fields <= 0 (the default) resolve to the
/// dispatched kernel's preferred blocking (KernelSet::mc/kc/nc — a taller
/// micro-tile wants deeper panels, so the right blocking is per-kernel, not
/// global); explicit positive fields win and are rounded to the active
/// kernel's MR/NR geometry at call time. Exposed so tests/benches can
/// exercise fringe paths and A/B kernel variants per call.
struct GemmTuning {
  int mc = 0;  ///< rows of the packed A block (rounded to MR); 0 = kernel's
  int kc = 0;  ///< depth of the packed A/B blocks; 0 = kernel's
  int nc = 0;  ///< columns of the packed B block (rounded to NR); 0 = kernel's
  /// Micro-kernel variant override; kAuto follows ADSALA_KERNEL / CPUID.
  kernels::Variant variant = kernels::Variant::kAuto;
};

/// Multi-threaded blocked GEMM. nthreads <= 0 selects the pool maximum.
/// Throws std::invalid_argument on negative dimensions or bad strides.
template <typename T>
void gemm(Trans trans_a, Trans trans_b, int m, int n, int k, T alpha,
          const T* a, int lda, const T* b, int ldb, T beta, T* c, int ldc,
          int nthreads = 0, const GemmTuning& tuning = {});

/// BLAS-named convenience wrappers (single / double precision).
void sgemm(Trans trans_a, Trans trans_b, int m, int n, int k, float alpha,
           const float* a, int lda, const float* b, int ldb, float beta,
           float* c, int ldc, int nthreads = 0);
void dgemm(Trans trans_a, Trans trans_b, int m, int n, int k, double alpha,
           const double* a, int lda, const double* b, int ldb, double beta,
           double* c, int ldc, int nthreads = 0);

/// Naive triple-loop reference used as the correctness oracle in tests.
template <typename T>
void reference_gemm(Trans trans_a, Trans trans_b, int m, int n, int k, T alpha,
                    const T* a, int lda, const T* b, int ldb, T beta, T* c,
                    int ldc);

/// Aggregate operand memory in bytes: (mk + kn + mn) * sizeof(element).
/// This is the quantity the paper caps at 100 MB / 500 MB.
inline std::size_t gemm_memory_bytes(std::size_t m, std::size_t k,
                                     std::size_t n, std::size_t elem_size) {
  return (m * k + k * n + m * n) * elem_size;
}

/// FLOP count of one GEMM call (2*m*n*k, ignoring the beta*C pass).
inline double gemm_flops(double m, double k, double n) {
  return 2.0 * m * k * n;
}

}  // namespace adsala::blas
