#include "blas/symm.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "blas/kernels/dispatch.h"
#include "blas/level3_common.h"
#include "blas/pack.h"
#include "blas/pack_pipeline.h"
#include "common/pack_arena.h"
#include "common/thread_pool.h"

namespace adsala::blas {

namespace {

/// Inner kernel sweep of one packed-A block against one packed-B block,
/// shared by the serial and pipelined paths.
template <typename T>
void symm_macro_kernel(const kernels::KernelSet<T>& ks, int mc_eff,
                       int nc_eff, int kc_eff, T alpha, const T* a_pack,
                       const T* b_pack, T* c_block, int ldc) {
  const int mr = ks.mr;
  const int nr = ks.nr;
  for (int jr = 0; jr < nc_eff; jr += nr) {
    const int cols = std::min(nr, nc_eff - jr);
    const T* b_panel = b_pack + static_cast<long>(jr / nr) * kc_eff * nr;
    for (int ir = 0; ir < mc_eff; ir += mr) {
      const int rows = std::min(mr, mc_eff - ir);
      const T* a_panel = a_pack + static_cast<long>(ir / mr) * kc_eff * mr;
      T* c_tile = c_block + static_cast<long>(ir) * ldc + jr;
      if (rows == mr && cols == nr) {
        ks.full(kc_eff, alpha, a_panel, b_panel, c_tile, ldc);
      } else {
        ks.edge(kc_eff, alpha, a_panel, b_panel, c_tile, ldc, rows, cols);
      }
    }
  }
}

/// Serial blocked product over all C rows: the GEMM macro-loop with A
/// panels packed through the symmetric expansion (pack_a_sym) and B packed
/// straight, both panels private to the calling thread.
template <typename T>
void symm_serial(const kernels::KernelSet<T>& ks, Uplo uplo, int n, int m,
                 T alpha, const T* a, int lda, const T* b, int ldb, T beta,
                 T* c, int ldc, const detail::BlockGeom& g) {
  const int nr = ks.nr;
  const bool lower = uplo == Uplo::kLower;
  detail::scale_rows_range(c, static_cast<long>(ldc), 0, n, m, beta);

  const auto carve = detail::carve_private_panels<T>(ks, g.mc, g.kc, g.nc, m);
  T* a_pack = carve.a_pack;
  T* b_pack = carve.b_pack;

  for (int jc = 0; jc < m; jc += g.nc) {
    const int nc_eff = std::min(g.nc, m - jc);
    const int nc_panels = (nc_eff + nr - 1) / nr;
    for (int pc = 0; pc < n; pc += g.kc) {
      const int kc_eff = std::min(g.kc, n - pc);

      for (int q = 0; q < nc_panels; ++q) {
        const int j0 = jc + q * nr;
        const int cols = std::min(nr, m - j0);
        detail::pack_b<T>(b + static_cast<long>(pc) * ldb + j0, ldb, kc_eff,
                          cols, nr,
                          b_pack + static_cast<long>(q) * kc_eff * nr);
      }

      for (int ic = 0; ic < n; ic += g.mc) {
        const int mc_eff = std::min(g.mc, n - ic);
        detail::pack_a_sym<T>(a, lda, lower, ic, pc, mc_eff, kc_eff, ks.mr,
                              a_pack);
        symm_macro_kernel<T>(ks, mc_eff, nc_eff, kc_eff, alpha, a_pack,
                             b_pack, c + static_cast<long>(ic) * ldc + jc,
                             ldc);
      }
    }
  }
}

}  // namespace

template <typename T>
void symm(Uplo uplo, int n, int m, T alpha, const T* a, int lda, const T* b,
          int ldb, T beta, T* c, int ldc, int nthreads,
          const GemmTuning& tuning) {
  if (n < 0 || m < 0) throw std::invalid_argument("symm: negative dimension");
  if (lda < std::max(1, n) || ldb < std::max(1, m) || ldc < std::max(1, m)) {
    throw std::invalid_argument("symm: leading dimension too small");
  }
  if (n == 0 || m == 0) return;

  ThreadPool& pool = ThreadPool::global();
  const std::size_t p = detail::resolve_threads(nthreads, n);

  if (alpha == T(0)) {
    // Degenerate product: C *= beta (ahead of any tuning resolution, as in
    // every level-3 driver — see level3_common.h).
    detail::scale_rows_pass(p, n, m, beta, c, static_cast<long>(ldc));
    return;
  }

  const kernels::KernelSet<T>& ks = kernels::kernel_set<T>(tuning.variant);
  const detail::BlockGeom g = detail::block_geometry(ks, tuning);

  if (p == 1) {  // includes nested-region degradation
    symm_serial<T>(ks, uplo, n, m, alpha, a, lda, b, ldb, beta, c, ldc, g);
    return;
  }

  // Parallel path: the same pack pipeline as GEMM (see blas/pack_pipeline.h)
  // — the pre-pipeline schedule had every thread pack its own duplicate of
  // the full B block to stay barrier-free; the cooperative ping/pong pack
  // does the copy once per panel and overlaps it with compute, and the
  // stolen MC-row tiles rebalance the packing skew.
  const bool lower = uplo == Uplo::kLower;
  const std::size_t b_pack_elems = detail::b_panel_elems(ks, g.nc, m, g.kc);
  const std::size_t a_pack_elems = detail::a_panel_elems(ks, g.mc, g.kc);
  detail::SharedPair<T> pair = detail::carve_shared_pair<T>(b_pack_elems);

  const int row_tiles = (n + g.mc - 1) / g.mc;
  detail::PackPipeline pipe(p);
  detail::TileDeck deck(p, row_tiles);

  pool.parallel_region(p, [&](std::size_t tid, std::size_t nt) {
    std::shared_ptr<AlignedBuffer<T>> a_fallback;
    T* a_pack = detail::thread_slab_or_fallback<T>(a_pack_elems, a_fallback);

    detail::pipelined_macro_loop<T>(
        tid, nt, n, m, n, g, ks.nr, pair.bufs, pipe, deck,
        [&](int jc, int pc, int kc_eff, int q, T* dst) {
          const int j0 = jc + q * ks.nr;
          const int cols = std::min(ks.nr, m - j0);
          detail::pack_b<T>(b + static_cast<long>(pc) * ldb + j0, ldb, kc_eff,
                            cols, ks.nr, dst);
        },
        [&](int jc, int pc, int nc_eff, int kc_eff, bool first_of_jc, int ic,
            int mc_eff, const T* b_buf) {
          if (first_of_jc) {
            detail::scale_rows_range(c + jc, static_cast<long>(ldc), ic,
                                     ic + mc_eff, nc_eff, beta);
          }
          detail::pack_a_sym<T>(a, lda, lower, ic, pc, mc_eff, kc_eff, ks.mr,
                                a_pack);
          symm_macro_kernel<T>(ks, mc_eff, nc_eff, kc_eff, alpha, a_pack,
                               b_buf, c + static_cast<long>(ic) * ldc + jc,
                               ldc);
        });
  });
}

void ssymm(Uplo uplo, int n, int m, float alpha, const float* a, int lda,
           const float* b, int ldb, float beta, float* c, int ldc,
           int nthreads) {
  symm<float>(uplo, n, m, alpha, a, lda, b, ldb, beta, c, ldc, nthreads);
}

void dsymm(Uplo uplo, int n, int m, double alpha, const double* a, int lda,
           const double* b, int ldb, double beta, double* c, int ldc,
           int nthreads) {
  symm<double>(uplo, n, m, alpha, a, lda, b, ldb, beta, c, ldc, nthreads);
}

template <typename T>
void reference_symm(Uplo uplo, int n, int m, T alpha, const T* a, int lda,
                    const T* b, int ldb, T beta, T* c, int ldc) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      T acc = T(0);
      for (int p = 0; p < n; ++p) {
        const bool stored = uplo == Uplo::kLower ? p <= i : p >= i;
        const T aip = stored ? a[static_cast<long>(i) * lda + p]
                             : a[static_cast<long>(p) * lda + i];
        acc += aip * b[static_cast<long>(p) * ldb + j];
      }
      T& out = c[static_cast<long>(i) * ldc + j];
      out = alpha * acc + (beta == T(0) ? T(0) : beta * out);
    }
  }
}

template void symm<float>(Uplo, int, int, float, const float*, int,
                          const float*, int, float, float*, int, int,
                          const GemmTuning&);
template void symm<double>(Uplo, int, int, double, const double*, int,
                           const double*, int, double, double*, int, int,
                           const GemmTuning&);
template void reference_symm<float>(Uplo, int, int, float, const float*, int,
                                    const float*, int, float, float*, int);
template void reference_symm<double>(Uplo, int, int, double, const double*,
                                     int, const double*, int, double, double*,
                                     int);

}  // namespace adsala::blas
