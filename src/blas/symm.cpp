#include "blas/symm.h"

#include <algorithm>
#include <stdexcept>

#include "blas/kernels/dispatch.h"
#include "blas/level3_common.h"
#include "blas/pack.h"
#include "common/pack_arena.h"
#include "common/thread_pool.h"

namespace adsala::blas {

namespace {

/// Blocked product over C rows [row_lo, row_hi): the GEMM macro-loop with A
/// panels packed through the symmetric expansion (pack_a_sym) and B packed
/// straight. Each thread packs its own operands; like SYRK, the duplicated
/// B packing buys a barrier-free schedule.
template <typename T>
void symm_rows_blocked(const kernels::KernelSet<T>& ks, Uplo uplo, int n,
                       int m, T alpha, const T* a, int lda, const T* b,
                       int ldb, T* c, int ldc, int row_lo, int row_hi, int mc,
                       int kc, int nc) {
  if (row_lo >= row_hi) return;
  const int mr = ks.mr;
  const int nr = ks.nr;
  const bool lower = uplo == Uplo::kLower;

  // Private packing scratch (barrier-free schedule: each thread owns both
  // panels), carved from the thread's arena slab in one piece.
  const auto carve = detail::carve_private_panels<T>(ks, mc, kc, nc, m);
  T* a_pack = carve.a_pack;
  T* b_pack = carve.b_pack;

  for (int jc = 0; jc < m; jc += nc) {
    const int nc_eff = std::min(nc, m - jc);
    const int nc_panels = (nc_eff + nr - 1) / nr;
    for (int pc = 0; pc < n; pc += kc) {
      const int kc_eff = std::min(kc, n - pc);

      for (int q = 0; q < nc_panels; ++q) {
        const int j0 = jc + q * nr;
        const int cols = std::min(nr, m - j0);
        detail::pack_b<T>(b + static_cast<long>(pc) * ldb + j0, ldb, kc_eff,
                          cols, nr,
                          b_pack + static_cast<long>(q) * kc_eff * nr);
      }

      for (int ic = row_lo; ic < row_hi; ic += mc) {
        const int mc_eff = std::min(mc, row_hi - ic);
        detail::pack_a_sym<T>(a, lda, lower, ic, pc, mc_eff, kc_eff, mr,
                              a_pack);

        for (int jr = 0; jr < nc_eff; jr += nr) {
          const int cols = std::min(nr, nc_eff - jr);
          const T* b_panel =
              b_pack + static_cast<long>(jr / nr) * kc_eff * nr;
          for (int ir = 0; ir < mc_eff; ir += mr) {
            const int rows = std::min(mr, mc_eff - ir);
            const T* a_panel =
                a_pack + static_cast<long>(ir / mr) * kc_eff * mr;
            T* c_tile = c + static_cast<long>(ic + ir) * ldc + jc + jr;
            if (rows == mr && cols == nr) {
              ks.full(kc_eff, alpha, a_panel, b_panel, c_tile, ldc);
            } else {
              ks.edge(kc_eff, alpha, a_panel, b_panel, c_tile, ldc, rows,
                      cols);
            }
          }
        }
      }
    }
  }
}

}  // namespace

template <typename T>
void symm(Uplo uplo, int n, int m, T alpha, const T* a, int lda, const T* b,
          int ldb, T beta, T* c, int ldc, int nthreads,
          const GemmTuning& tuning) {
  if (n < 0 || m < 0) throw std::invalid_argument("symm: negative dimension");
  if (lda < std::max(1, n) || ldb < std::max(1, m) || ldc < std::max(1, m)) {
    throw std::invalid_argument("symm: leading dimension too small");
  }
  if (n == 0 || m == 0) return;

  ThreadPool& pool = ThreadPool::global();
  const std::size_t p = detail::resolve_threads(nthreads, n);

  if (alpha == T(0)) {
    // Degenerate product: C *= beta (ahead of any tuning resolution, as in
    // every level-3 driver — see level3_common.h).
    detail::scale_rows_pass(p, n, m, beta, c, static_cast<long>(ldc));
    return;
  }

  const kernels::KernelSet<T>& ks = kernels::kernel_set<T>(tuning.variant);
  const auto [mc, kc, nc] = detail::block_geometry(ks, tuning);

  // Each thread owns a contiguous run of C rows; the beta pass and the
  // accumulation need no cross-thread synchronisation.
  pool.parallel_region(p, [&](std::size_t tid, std::size_t nt) {
    const int lo = static_cast<int>(tid * static_cast<std::size_t>(n) / nt);
    const int hi =
        static_cast<int>((tid + 1) * static_cast<std::size_t>(n) / nt);
    detail::scale_rows_range(c, static_cast<long>(ldc), lo, hi, m, beta);
    symm_rows_blocked(ks, uplo, n, m, alpha, a, lda, b, ldb, c, ldc, lo, hi,
                      mc, kc, nc);
  });
}

void ssymm(Uplo uplo, int n, int m, float alpha, const float* a, int lda,
           const float* b, int ldb, float beta, float* c, int ldc,
           int nthreads) {
  symm<float>(uplo, n, m, alpha, a, lda, b, ldb, beta, c, ldc, nthreads);
}

void dsymm(Uplo uplo, int n, int m, double alpha, const double* a, int lda,
           const double* b, int ldb, double beta, double* c, int ldc,
           int nthreads) {
  symm<double>(uplo, n, m, alpha, a, lda, b, ldb, beta, c, ldc, nthreads);
}

template <typename T>
void reference_symm(Uplo uplo, int n, int m, T alpha, const T* a, int lda,
                    const T* b, int ldb, T beta, T* c, int ldc) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      T acc = T(0);
      for (int p = 0; p < n; ++p) {
        const bool stored = uplo == Uplo::kLower ? p <= i : p >= i;
        const T aip = stored ? a[static_cast<long>(i) * lda + p]
                             : a[static_cast<long>(p) * lda + i];
        acc += aip * b[static_cast<long>(p) * ldb + j];
      }
      T& out = c[static_cast<long>(i) * ldc + j];
      out = alpha * acc + (beta == T(0) ? T(0) : beta * out);
    }
  }
}

template void symm<float>(Uplo, int, int, float, const float*, int,
                          const float*, int, float, float*, int, int,
                          const GemmTuning&);
template void symm<double>(Uplo, int, int, double, const double*, int,
                           const double*, int, double, double*, int, int,
                           const GemmTuning&);
template void reference_symm<float>(Uplo, int, int, float, const float*, int,
                                    const float*, int, float, float*, int);
template void reference_symm<double>(Uplo, int, int, double, const double*,
                                     int, const double*, int, double, double*,
                                     int);

}  // namespace adsala::blas
