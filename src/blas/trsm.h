// Triangular solve with multiple right-hand sides — third member of the
// served level-3 family (paper future work: "extend ... to other BLAS
// operations").
//
//   op(A) * X = alpha * B,   X overwrites B          (left-side solve)
//
// with op(A) = A or A^T per `trans`, A an n x n triangular matrix (`uplo`
// names the stored triangle, `diag` an implicit unit diagonal), and B an
// n x m right-hand-side block. Row-major; ld* is the row stride.
//
// The implementation is a blocked substitution: small nb x nb diagonal
// triangles are solved in place, and the trailing right-hand-side rows are
// updated with a rank-nb GEMM on the packed micro-kernel path — so the bulk
// of the FLOPs run through the same runtime-dispatched KernelSet as GEMM,
// and the thread-count knob shapes the same packing/sync trade-offs the ML
// model learns. The diagonal solves themselves are inherently sequential
// (each block depends on every block before it), which is exactly why the
// TRSM optimum sits at fewer threads than the equivalent GEMM.
#pragma once

#include "blas/gemm.h"

namespace adsala::blas {

/// Multi-threaded blocked left-side triangular solve, in place over B.
/// nthreads <= 0 selects the pool maximum (threading lives in the GEMM
/// updates). A singular (zero) diagonal produces inf/nan like standard BLAS;
/// no singularity check is performed.
template <typename T>
void trsm(Uplo uplo, Trans trans, Diag diag, int n, int m, T alpha,
          const T* a, int lda, T* b, int ldb, int nthreads = 0,
          const GemmTuning& tuning = {});

void strsm(Uplo uplo, Trans trans, Diag diag, int n, int m, float alpha,
           const float* a, int lda, float* b, int ldb, int nthreads = 0);
void dtrsm(Uplo uplo, Trans trans, Diag diag, int n, int m, double alpha,
           const double* a, int lda, double* b, int ldb, int nthreads = 0);

/// Naive per-column substitution used as the correctness oracle in tests.
template <typename T>
void reference_trsm(Uplo uplo, Trans trans, Diag diag, int n, int m, T alpha,
                    const T* a, int lda, T* b, int ldb);

/// FLOP count: n*n*m multiply-adds over the triangle (half the equivalent
/// (n, n, m) GEMM's 2*n*n*m).
inline double trsm_flops(double n, double m) { return n * n * m; }

}  // namespace adsala::blas
