// Level-3 BLAS operation kinds served by the tuning stack.
//
// The installation pipeline (gather -> train -> select) and the runtime tag
// every timing sample and every prediction query with the operation that
// produced it, so one model can serve the whole operation family instead of
// proxying everything through GEMM (paper future work: "extend ... to other
// BLAS operations"). Stored in datasets / CSV as the integer code below.
#pragma once

#include <optional>
#include <string_view>

namespace adsala::blas {

/// Which level-3 operation a timing sample or selection query refers to.
enum class OpKind {
  kGemm = 0,  ///< C <- alpha*op(A)*op(B) + beta*C, shape (m, k, n)
  kSyrk = 1,  ///< C <- alpha*A*A^T + beta*C, shape family (n, k) with m == n
};

constexpr const char* op_name(OpKind op) {
  return op == OpKind::kSyrk ? "syrk" : "gemm";
}

/// Stable integer code used in CSV persistence.
constexpr int op_code(OpKind op) { return static_cast<int>(op); }

constexpr std::optional<OpKind> op_from_code(int code) {
  if (code == 0) return OpKind::kGemm;
  if (code == 1) return OpKind::kSyrk;
  return std::nullopt;
}

inline std::optional<OpKind> parse_op(std::string_view name) {
  if (name == "gemm") return OpKind::kGemm;
  if (name == "syrk") return OpKind::kSyrk;
  return std::nullopt;
}

}  // namespace adsala::blas
