// Level-3 BLAS operation kinds served by the tuning stack.
//
// The installation pipeline (gather -> train -> select) and the runtime tag
// every timing sample and every prediction query with the operation that
// produced it, so one model can serve the whole operation family instead of
// proxying everything through GEMM (paper future work: "extend ... to other
// BLAS operations"). Stored in datasets / CSV as the integer code below.
//
// Adding an operation is ONE row in detail::kOpTable plus ONE OpTraits row
// in the registry (core/op_registry.cpp) and its substrate kernel file —
// see docs/OPERATIONS.md. Name, code, CSV persistence, one-hot feature
// column, and CLI parsing all derive from the table; sampler, measure paths,
// shape canonicalisation, and bench coverage derive from the traits row.
// Codes must stay contiguous from 0 in table order — the op-aware feature
// schema indexes its one-hot columns by code.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string_view>

namespace adsala::blas {

/// Which level-3 operation a timing sample or selection query refers to.
enum class OpKind {
  kGemm = 0,  ///< C <- alpha*op(A)*op(B) + beta*C, shape (m, k, n)
  kSyrk = 1,  ///< C <- alpha*A*A^T + beta*C, shape family (n, k) with m == n
  kTrsm = 2,  ///< B <- alpha*inv(op(A))*B, shape family (n, m) with m == k
  kSymm = 3,  ///< C <- alpha*A*B + beta*C, A symmetric, family (n, m), m == k
  kTrmm = 4,  ///< B <- alpha*op(A)*B, A triangular, family (n, m), m == k
};

namespace detail {

struct OpInfo {
  OpKind op;
  int code;  ///< stable CSV / one-hot code; contiguous from 0 in table order
  const char* name;
};

inline constexpr OpInfo kOpTable[] = {
    {OpKind::kGemm, 0, "gemm"},
    {OpKind::kSyrk, 1, "syrk"},
    {OpKind::kTrsm, 2, "trsm"},
    {OpKind::kSymm, 3, "symm"},
    {OpKind::kTrmm, 4, "trmm"},
};

}  // namespace detail

/// Number of registered operations (== number of op one-hot columns in the
/// op-aware feature schema, see preprocess/features.h).
inline constexpr std::size_t kNumOps = std::size(detail::kOpTable);

/// Every registered operation, in table (== code) order.
constexpr std::array<OpKind, kNumOps> all_ops() {
  std::array<OpKind, kNumOps> out{};
  for (std::size_t i = 0; i < kNumOps; ++i) out[i] = detail::kOpTable[i].op;
  return out;
}

constexpr const char* op_name(OpKind op) {
  for (const auto& row : detail::kOpTable) {
    if (row.op == op) return row.name;
  }
  return "unknown";
}

/// Stable integer code used in CSV persistence and one-hot column order.
constexpr int op_code(OpKind op) {
  for (const auto& row : detail::kOpTable) {
    if (row.op == op) return row.code;
  }
  return -1;
}

constexpr std::optional<OpKind> op_from_code(int code) {
  for (const auto& row : detail::kOpTable) {
    if (row.code == code) return row.op;
  }
  return std::nullopt;
}

constexpr std::optional<OpKind> parse_op(std::string_view name) {
  for (const auto& row : detail::kOpTable) {
    if (name == row.name) return row.op;
  }
  return std::nullopt;
}

}  // namespace adsala::blas
