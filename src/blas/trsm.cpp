#include "blas/trsm.h"

#include <algorithm>
#include <stdexcept>

#include "blas/kernels/dispatch.h"
#include "blas/level3_common.h"
#include "common/thread_pool.h"

namespace adsala::blas {

namespace {

/// Logical element of op(A): row i, column p.
template <typename T>
inline T op_a(const T* a, long lda, Trans trans, int i, int p) {
  return trans == Trans::kNo ? a[i * lda + p] : a[p * lda + i];
}

/// In-place substitution over the diagonal block rows [j0, j1) of B, forward
/// (effective-lower op(A)) or backward (effective-upper). Sequential by
/// nature: row i depends on every previously solved row of the block.
template <typename T>
void solve_diag_block(Trans trans, Diag diag, int j0, int j1, int m,
                      const T* a, long lda, T* b, long ldb, bool forward) {
  if (forward) {
    for (int i = j0; i < j1; ++i) {
      T* row_i = b + i * ldb;
      for (int p = j0; p < i; ++p) {
        const T f = op_a(a, lda, trans, i, p);
        const T* row_p = b + p * ldb;
        for (int c = 0; c < m; ++c) row_i[c] -= f * row_p[c];
      }
      if (diag == Diag::kNonUnit) {
        const T d = op_a(a, lda, trans, i, i);
        for (int c = 0; c < m; ++c) row_i[c] /= d;
      }
    }
  } else {
    for (int i = j1 - 1; i >= j0; --i) {
      T* row_i = b + i * ldb;
      for (int p = i + 1; p < j1; ++p) {
        const T f = op_a(a, lda, trans, i, p);
        const T* row_p = b + p * ldb;
        for (int c = 0; c < m; ++c) row_i[c] -= f * row_p[c];
      }
      if (diag == Diag::kNonUnit) {
        const T d = op_a(a, lda, trans, i, i);
        for (int c = 0; c < m; ++c) row_i[c] /= d;
      }
    }
  }
}

}  // namespace

template <typename T>
void trsm(Uplo uplo, Trans trans, Diag diag, int n, int m, T alpha,
          const T* a, int lda, T* b, int ldb, int nthreads,
          const GemmTuning& tuning) {
  if (n < 0 || m < 0) throw std::invalid_argument("trsm: negative dimension");
  if (lda < std::max(1, n) || ldb < std::max(1, m)) {
    throw std::invalid_argument("trsm: leading dimension too small");
  }
  if (n == 0 || m == 0) return;

  // alpha scales the right-hand side exactly once, up front (alpha == 0
  // degenerates to B = 0: inv(A) * 0 needs no solve). As in every level-3
  // driver, this degenerate path stays ahead of any tuning resolution.
  if (alpha != T(1)) {
    detail::scale_rows_pass(detail::resolve_threads(nthreads), n, m, alpha, b,
                            static_cast<long>(ldb));
  }
  if (alpha == T(0)) return;

  // op(A) is effectively lower triangular (forward substitution) when the
  // stored triangle and the transpose flag agree.
  const bool forward = (uplo == Uplo::kLower) == (trans == Trans::kNo);

  // Diagonal-block size: small enough that the sequential in-block solves
  // stay a sliver of the total work, large enough that the trailing GEMM
  // updates run at the panel depth the dispatched micro-kernel's blocking
  // resolves to (tuning.kc may be 0 = kernel-preferred, so resolve first).
  const auto geom =
      detail::block_geometry(kernels::kernel_set<T>(tuning.variant), tuning);
  const int nb = std::clamp(geom.kc / 4, 16, 256);

  // Blocked substitution: solve one diagonal block sequentially, then fold
  // its solution into every remaining row with one multi-threaded GEMM
  // (eager trailing update). trsm itself never opens a parallel region, so
  // the non-reentrant pool is only entered through gemm / scale_b.
  if (forward) {
    for (int j0 = 0; j0 < n; j0 += nb) {
      const int j1 = std::min(j0 + nb, n);
      solve_diag_block(trans, diag, j0, j1, m, a, static_cast<long>(lda), b,
                       static_cast<long>(ldb), /*forward=*/true);
      if (j1 < n) {
        // B[j1:n) -= op(A)[j1:n, j0:j1) * B[j0:j1).
        const T* a_sub = trans == Trans::kNo
                             ? a + static_cast<long>(j1) * lda + j0
                             : a + static_cast<long>(j0) * lda + j1;
        gemm<T>(trans, Trans::kNo, n - j1, m, j1 - j0, T(-1), a_sub, lda,
                b + static_cast<long>(j0) * ldb, ldb, T(1),
                b + static_cast<long>(j1) * ldb, ldb, nthreads, tuning);
      }
    }
  } else {
    for (int j1 = n; j1 > 0; j1 -= nb) {
      const int j0 = std::max(0, j1 - nb);
      solve_diag_block(trans, diag, j0, j1, m, a, static_cast<long>(lda), b,
                       static_cast<long>(ldb), /*forward=*/false);
      if (j0 > 0) {
        // B[0:j0) -= op(A)[0:j0, j0:j1) * B[j0:j1).
        const T* a_sub = trans == Trans::kNo
                             ? a + j0
                             : a + static_cast<long>(j0) * lda;
        gemm<T>(trans, Trans::kNo, j0, m, j1 - j0, T(-1), a_sub, lda,
                b + static_cast<long>(j0) * ldb, ldb, T(1), b, ldb, nthreads,
                tuning);
      }
    }
  }
}

void strsm(Uplo uplo, Trans trans, Diag diag, int n, int m, float alpha,
           const float* a, int lda, float* b, int ldb, int nthreads) {
  trsm<float>(uplo, trans, diag, n, m, alpha, a, lda, b, ldb, nthreads);
}

void dtrsm(Uplo uplo, Trans trans, Diag diag, int n, int m, double alpha,
           const double* a, int lda, double* b, int ldb, int nthreads) {
  trsm<double>(uplo, trans, diag, n, m, alpha, a, lda, b, ldb, nthreads);
}

template <typename T>
void reference_trsm(Uplo uplo, Trans trans, Diag diag, int n, int m, T alpha,
                    const T* a, int lda, T* b, int ldb) {
  const bool forward = (uplo == Uplo::kLower) == (trans == Trans::kNo);
  for (int c = 0; c < m; ++c) {
    for (int step = 0; step < n; ++step) {
      const int i = forward ? step : n - 1 - step;
      T s = alpha * b[static_cast<long>(i) * ldb + c];
      const int p_lo = forward ? 0 : i + 1;
      const int p_hi = forward ? i : n;
      for (int p = p_lo; p < p_hi; ++p) {
        s -= op_a(a, lda, trans, i, p) * b[static_cast<long>(p) * ldb + c];
      }
      if (diag == Diag::kNonUnit) s /= op_a(a, lda, trans, i, i);
      b[static_cast<long>(i) * ldb + c] = s;
    }
  }
}

template void trsm<float>(Uplo, Trans, Diag, int, int, float, const float*,
                          int, float*, int, int, const GemmTuning&);
template void trsm<double>(Uplo, Trans, Diag, int, int, double, const double*,
                           int, double*, int, int, const GemmTuning&);
template void reference_trsm<float>(Uplo, Trans, Diag, int, int, float,
                                    const float*, int, float*, int);
template void reference_trsm<double>(Uplo, Trans, Diag, int, int, double,
                                     const double*, int, double*, int);

}  // namespace adsala::blas
