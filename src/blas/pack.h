// Operand packing for the blocked GEMM/SYRK.
//
// Packing copies a cache-block of A (mc x kc) or B (kc x nc) into contiguous
// micro-panels so the micro-kernel streams with unit stride. Short panels are
// zero-padded to the full MR/NR width, which lets the micro-kernel stay
// branch-free; the write-back path masks the padding out. The transpose
// variants fold op(A)/op(B) into the copy so the kernel never sees a stride.
//
// MR/NR are runtime parameters: they come from the dispatched KernelSet, not
// from compile-time constants, so one packing routine serves every kernel
// variant. The copy loops issue software prefetches one cache line ahead of
// the read stream (packing is bandwidth-bound; the prefetch hides the source
// matrix's strided access behind the sequential panel writes).
#pragma once

#include <algorithm>

namespace adsala::blas::detail {

/// Elements of T per 64-byte cache line; the prefetch lookahead unit.
template <typename T>
inline constexpr int kLineElems = static_cast<int>(64 / sizeof(T));

/// Packs rows [0,mc) x cols [0,kc) of `a` (row stride lda) into mr-row
/// micro-panels: panel p holds rows [p*mr, p*mr+mr), stored column-by-column
/// (kc columns of mr contiguous elements). Rows beyond mc are zero-padded.
template <typename T>
void pack_a(const T* a, int lda, int mc, int kc, int mr, T* dst) {
  constexpr int kPf = kLineElems<T>;
  for (int i0 = 0; i0 < mc; i0 += mr) {
    const int rows = std::min(mr, mc - i0);
    for (int p = 0; p < kc; ++p) {
      const bool lead = (p & (kPf - 1)) == 0;
      int i = 0;
      for (; i < rows; ++i) {
        const T* src = a + (i0 + i) * static_cast<long>(lda);
        if (lead) __builtin_prefetch(src + p + kPf);
        dst[i] = src[p];
      }
      for (; i < mr; ++i) dst[i] = T(0);
      dst += mr;
    }
  }
}

/// Same as pack_a but reading A transposed: logical element (i, p) comes
/// from a[p * lda + i].
template <typename T>
void pack_a_trans(const T* a, int lda, int mc, int kc, int mr, T* dst) {
  for (int i0 = 0; i0 < mc; i0 += mr) {
    const int rows = std::min(mr, mc - i0);
    for (int p = 0; p < kc; ++p) {
      const T* src = a + p * static_cast<long>(lda) + i0;
      __builtin_prefetch(src + lda);  // next source row (p+1)
      int i = 0;
      for (; i < rows; ++i) dst[i] = src[i];
      for (; i < mr; ++i) dst[i] = T(0);
      dst += mr;
    }
  }
}

/// Packs the mc x kc block of a *symmetric* matrix whose top-left logical
/// element is (row0, col0), reading every element from the stored triangle:
/// logical A(i, p) comes from a[i*lda + p] when (i, p) lies in the stored
/// triangle and from the mirrored a[p*lda + i] otherwise. Same micro-panel
/// layout as pack_a. This is the "symmetric-packed A reuse" of SYMM: the
/// kernel streams a dense panel while only the triangle lives in memory.
template <typename T>
void pack_a_sym(const T* a, int lda, bool lower_stored, int row0, int col0,
                int mc, int kc, int mr, T* dst) {
  for (int i0 = 0; i0 < mc; i0 += mr) {
    const int rows = std::min(mr, mc - i0);
    for (int p = 0; p < kc; ++p) {
      const int gp = col0 + p;
      int i = 0;
      for (; i < rows; ++i) {
        const int gi = row0 + i0 + i;
        const bool stored = lower_stored ? gp <= gi : gp >= gi;
        dst[i] = stored ? a[static_cast<long>(gi) * lda + gp]
                        : a[static_cast<long>(gp) * lda + gi];
      }
      for (; i < mr; ++i) dst[i] = T(0);
      dst += mr;
    }
  }
}

/// Packs the mc x kc block of op(A) for a *triangular* A whose top-left
/// logical element is (row0, col0): logical op(A)(i, p) is read from the
/// stored triangle when (i, p) lies inside the effective triangle of op(A)
/// (`lower_eff`; for op(A) = A^T pass trans = true and the *effective*
/// orientation, i.e. the stored triangle flipped), 1 on the diagonal when
/// `unit`, and 0 outside. Same micro-panel layout as pack_a. This is the
/// triangular-expansion reuse of TRMM: the kernel streams a dense panel with
/// the zero half materialised only inside the packed block, never in memory.
template <typename T>
void pack_a_tri(const T* a, int lda, bool trans, bool lower_eff, bool unit,
                int row0, int col0, int mc, int kc, int mr, T* dst) {
  for (int i0 = 0; i0 < mc; i0 += mr) {
    const int rows = std::min(mr, mc - i0);
    for (int p = 0; p < kc; ++p) {
      const int gp = col0 + p;
      int i = 0;
      for (; i < rows; ++i) {
        const int gi = row0 + i0 + i;
        if (gi == gp && unit) {
          dst[i] = T(1);
        } else if (lower_eff ? gp <= gi : gp >= gi) {
          dst[i] = trans ? a[static_cast<long>(gp) * lda + gi]
                         : a[static_cast<long>(gi) * lda + gp];
        } else {
          dst[i] = T(0);
        }
      }
      for (; i < mr; ++i) dst[i] = T(0);
      dst += mr;
    }
  }
}

/// Packs rows [0,kc) x cols [0,nc) of `b` (row stride ldb) into nr-column
/// micro-panels: panel q holds columns [q*nr, q*nr+nr), stored row-by-row
/// (kc rows of nr contiguous elements). Columns beyond nc are zero-padded.
template <typename T>
void pack_b(const T* b, int ldb, int kc, int nc, int nr, T* dst) {
  for (int j0 = 0; j0 < nc; j0 += nr) {
    const int cols = std::min(nr, nc - j0);
    for (int p = 0; p < kc; ++p) {
      const T* src = b + p * static_cast<long>(ldb) + j0;
      __builtin_prefetch(src + ldb);  // next source row (p+1)
      int j = 0;
      for (; j < cols; ++j) dst[j] = src[j];
      for (; j < nr; ++j) dst[j] = T(0);
      dst += nr;
    }
  }
}

/// Same as pack_b but reading B transposed: logical element (p, j) comes
/// from b[j * ldb + p].
template <typename T>
void pack_b_trans(const T* b, int ldb, int kc, int nc, int nr, T* dst) {
  constexpr int kPf = kLineElems<T>;
  for (int j0 = 0; j0 < nc; j0 += nr) {
    const int cols = std::min(nr, nc - j0);
    for (int p = 0; p < kc; ++p) {
      const bool lead = (p & (kPf - 1)) == 0;
      int j = 0;
      for (; j < cols; ++j) {
        const T* src = b + (j0 + j) * static_cast<long>(ldb);
        if (lead) __builtin_prefetch(src + p + kPf);
        dst[j] = src[p];
      }
      for (; j < nr; ++j) dst[j] = T(0);
      dst += nr;
    }
  }
}

/// One NR-column chunk of a kc-deep B block, dispatching on the transpose:
/// packs logical rows [pc, pc+kc) x columns [j0, j0+nc) of op(B). This is
/// the unit of the cooperative pack in the pipelined macro-loop
/// (blas/pack_pipeline.h) — each participant packs its share of a panel's
/// chunks independently, so the chunk form owns the origin arithmetic that
/// differs between op(B) = B and op(B) = B^T.
template <typename T>
void pack_b_chunk(bool trans, const T* b, int ldb, int pc, int j0, int kc,
                  int nc, int nr, T* dst) {
  if (!trans) {
    pack_b(b + static_cast<long>(pc) * ldb + j0, ldb, kc, nc, nr, dst);
  } else {
    pack_b_trans(b + static_cast<long>(j0) * ldb + pc, ldb, kc, nc, nr, dst);
  }
}

}  // namespace adsala::blas::detail
