// Operand packing for the blocked GEMM.
//
// Packing copies a cache-block of A (mc x kc) or B (kc x nc) into contiguous
// micro-panels so the micro-kernel streams with unit stride. Short panels are
// zero-padded to the full MR/NR width, which lets the micro-kernel stay
// branch-free; the write-back path masks the padding out. The transpose
// variants fold op(A)/op(B) into the copy so the kernel never sees a stride.
#pragma once

namespace adsala::blas::detail {

/// Packs rows [0,mc) x cols [0,kc) of `a` (row stride lda) into MR-row
/// micro-panels: panel p holds rows [p*MR, p*MR+MR), stored column-by-column
/// (kc columns of MR contiguous elements). Rows beyond mc are zero-padded.
template <typename T, int MR>
void pack_a(const T* a, int lda, int mc, int kc, T* dst) {
  for (int i0 = 0; i0 < mc; i0 += MR) {
    const int rows = (mc - i0) < MR ? (mc - i0) : MR;
    for (int p = 0; p < kc; ++p) {
      int i = 0;
      for (; i < rows; ++i) dst[i] = a[(i0 + i) * static_cast<long>(lda) + p];
      for (; i < MR; ++i) dst[i] = T(0);
      dst += MR;
    }
  }
}

/// Same as pack_a but reading A transposed: logical element (i, p) comes
/// from a[p * lda + i].
template <typename T, int MR>
void pack_a_trans(const T* a, int lda, int mc, int kc, T* dst) {
  for (int i0 = 0; i0 < mc; i0 += MR) {
    const int rows = (mc - i0) < MR ? (mc - i0) : MR;
    for (int p = 0; p < kc; ++p) {
      int i = 0;
      for (; i < rows; ++i) dst[i] = a[p * static_cast<long>(lda) + (i0 + i)];
      for (; i < MR; ++i) dst[i] = T(0);
      dst += MR;
    }
  }
}

/// Packs rows [0,kc) x cols [0,nc) of `b` (row stride ldb) into NR-column
/// micro-panels: panel q holds columns [q*NR, q*NR+NR), stored row-by-row
/// (kc rows of NR contiguous elements). Columns beyond nc are zero-padded.
template <typename T, int NR>
void pack_b(const T* b, int ldb, int kc, int nc, T* dst) {
  for (int j0 = 0; j0 < nc; j0 += NR) {
    const int cols = (nc - j0) < NR ? (nc - j0) : NR;
    for (int p = 0; p < kc; ++p) {
      const T* src = b + p * static_cast<long>(ldb) + j0;
      int j = 0;
      for (; j < cols; ++j) dst[j] = src[j];
      for (; j < NR; ++j) dst[j] = T(0);
      dst += NR;
    }
  }
}

/// Same as pack_b but reading B transposed: logical element (p, j) comes
/// from b[j * ldb + p].
template <typename T, int NR>
void pack_b_trans(const T* b, int ldb, int kc, int nc, T* dst) {
  for (int j0 = 0; j0 < nc; j0 += NR) {
    const int cols = (nc - j0) < NR ? (nc - j0) : NR;
    for (int p = 0; p < kc; ++p) {
      int j = 0;
      for (; j < cols; ++j) dst[j] = b[(j0 + j) * static_cast<long>(ldb) + p];
      for (; j < NR; ++j) dst[j] = T(0);
      dst += NR;
    }
  }
}

}  // namespace adsala::blas::detail
