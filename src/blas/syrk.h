// Symmetric rank-k update — the paper's "extend to other BLAS operations"
// future work, implemented as a second level-3 routine behind the same
// thread-count selection machinery.
//
//   C <- alpha * A * A^T + beta * C        (trans == kNo,  A is n x k)
//   C <- alpha * A^T * A + beta * C        (trans == kYes, A is k x n)
//
// Row-major; only the `uplo` triangle of C (including the diagonal) is
// referenced and updated. Threading partitions the row blocks of the
// triangle with a balanced assignment (lower rows carry more work).
//
// The update runs on the same packed-panel machinery as GEMM: operands are
// packed into micro-panels and multiplied by the runtime-dispatched
// KernelSet; tiles crossing the diagonal are computed into a scratch tile
// and written back through a triangle mask.
#pragma once

#include "blas/gemm.h"

namespace adsala::blas {

template <typename T>
void syrk(Uplo uplo, Trans trans, int n, int k, T alpha, const T* a, int lda,
          T beta, T* c, int ldc, int nthreads = 0,
          const GemmTuning& tuning = {});

void ssyrk(Uplo uplo, Trans trans, int n, int k, float alpha, const float* a,
           int lda, float beta, float* c, int ldc, int nthreads = 0);
void dsyrk(Uplo uplo, Trans trans, int n, int k, double alpha,
           const double* a, int lda, double beta, double* c, int ldc,
           int nthreads = 0);

/// Naive reference used as the correctness oracle in tests.
template <typename T>
void reference_syrk(Uplo uplo, Trans trans, int n, int k, T alpha, const T* a,
                    int lda, T beta, T* c, int ldc);

/// FLOP count: n*(n+1)*k multiply-adds over the triangle.
inline double syrk_flops(double n, double k) { return n * (n + 1.0) * k; }

}  // namespace adsala::blas
