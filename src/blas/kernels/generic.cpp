// Portable fallback KernelSet: the compiler-vectorised template micro-kernel
// at the historical 6x8 geometry. Always available; the dispatcher uses it
// whenever no ISA-specific set applies (or ADSALA_KERNEL=generic forces it).
#include "blas/kernels/kernel_set.h"
#include "blas/microkernel.h"

namespace adsala::blas::kernels::detail {

namespace {

inline constexpr int kGenericMr = 6;
inline constexpr int kGenericNr = 8;

template <typename T>
void generic_full(int kc, T alpha, const T* a, const T* b, T* c, int ldc) {
  blas::detail::microkernel_full<T, kGenericMr, kGenericNr>(kc, alpha, a, b, c,
                                                            ldc);
}

template <typename T>
void generic_edge(int kc, T alpha, const T* a, const T* b, T* c, int ldc,
                  int rows, int cols) {
  blas::detail::microkernel_edge<T, kGenericMr, kGenericNr>(kc, alpha, a, b, c,
                                                            ldc, rows, cols);
}

}  // namespace

template <typename T>
KernelSet<T> generic_kernel_set() {
  KernelSet<T> set;
  set.mr = kGenericMr;
  set.nr = kGenericNr;
  // The historical project-wide defaults (~32 KB L1 / ~512 KB L2 targets).
  set.mc = 120;
  set.kc = 256;
  set.nc = 2048;
  set.name = "generic";
  set.full = &generic_full<T>;
  set.edge = &generic_edge<T>;
  return set;
}

template KernelSet<float> generic_kernel_set<float>();
template KernelSet<double> generic_kernel_set<double>();

}  // namespace adsala::blas::kernels::detail
