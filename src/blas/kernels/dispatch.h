// Runtime kernel dispatch: one CPUID probe at first use selects the best
// micro-kernel variant the host supports; callers fetch the per-dtype
// KernelSet through kernel_set<T>().
//
// Selection order (first match wins):
//   1. set_variant() process-wide API override,
//   2. ADSALA_KERNEL environment variable
//      ("generic" | "avx2" | "avx512" | "auto"),
//   3. CPUID: AVX-512F present -> avx512, else AVX2+FMA -> avx2, else
//      generic.
// An env/API request for an unsupported ISA falls back down that ladder (the
// env path warns once on stderr; the API throws so tests can assert on it).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "blas/kernels/kernel_set.h"

namespace adsala::blas::kernels {

/// True when the host CPU (and OS) support AVX2 and FMA. Cached after the
/// first probe; always false off x86.
bool cpu_supports_avx2();

/// True when the host CPU (and OS) support AVX-512F (which subsumes the FMA
/// forms the kernels use). Cached after the first probe; always false off
/// x86.
bool cpu_supports_avx512();

/// Variants usable on this host, generic first, widest ISA last.
std::vector<Variant> supported_variants();

const char* variant_name(Variant v);

/// Parses "auto" / "generic" / "avx2" / "avx512" (the ADSALA_KERNEL
/// vocabulary).
std::optional<Variant> parse_variant(std::string_view name);

/// Process-wide override. kAuto restores env/CPUID selection. Throws
/// std::runtime_error if the requested ISA is not supported on this host.
void set_variant(Variant v);

/// The variant a kAuto request resolves to right now.
Variant active_variant();

/// The KernelSet for scalar type T (float or double). kAuto resolves through
/// active_variant(); a concrete unsupported variant falls back to generic.
template <typename T>
const KernelSet<T>& kernel_set(Variant v = Variant::kAuto);

}  // namespace adsala::blas::kernels
