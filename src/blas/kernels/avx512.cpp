// Hand-vectorised AVX-512F micro-kernels.
//
//   fp32: 14x32 — per row two 16-lane accumulators, 28 zmm accumulators
//   fp64: 14x16 — per row two  8-lane accumulators, 28 zmm accumulators
//
// AVX-512 doubles the architectural register file to 32 zmm, so the tile
// grows from AVX2's 6 rows to 14: 28 accumulators + 2 B loads + 1 A
// broadcast = 31 live registers, leaving one spare. The taller tile raises
// the FLOP : B-load ratio from 6 to 14 FMAs per B element, which is what
// pushes the kernel past the bandwidth ceiling the 6-row AVX2 shape sits
// under. The kc loop is unrolled x4 with a software prefetch into the packed
// A panel each unrolled block, mirroring the AVX2 tier. The kernels are
// compiled with per-function target attributes rather than per-file
// -mavx512f so this TU still builds (and the rest of the library stays
// portable) under the default x86-64 baseline; the dispatcher only hands
// these pointers out after a CPUID probe confirms AVX-512F.
#include "blas/kernels/kernel_set.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace adsala::blas::kernels::detail {

namespace {

inline constexpr int kMrF32 = 14;
inline constexpr int kNrF32 = 32;
inline constexpr int kMrF64 = 14;
inline constexpr int kNrF64 = 16;

/// Software-prefetch lookahead into the packed A panel, in k iterations.
/// The panel is read strictly sequentially (MR elements per iteration); a
/// fixed distance of ~8 iterations (448 B fp32 / 896 B fp64 ahead) keeps the
/// loads inside the L1 stream. Shorter than the AVX2 tier's 16 because the
/// 14-row panel advances 2.3x as many bytes per iteration.
inline constexpr int kAPrefetchIters = 8;

__attribute__((target("avx512f"), always_inline)) inline void f32_step(
    const float* a, const float* b, __m512 acc[kMrF32][2]) {
  const __m512 b0 = _mm512_loadu_ps(b);
  const __m512 b1 = _mm512_loadu_ps(b + 16);
  for (int i = 0; i < kMrF32; ++i) {
    const __m512 ai = _mm512_set1_ps(a[i]);
    acc[i][0] = _mm512_fmadd_ps(ai, b0, acc[i][0]);
    acc[i][1] = _mm512_fmadd_ps(ai, b1, acc[i][1]);
  }
}

__attribute__((target("avx512f"))) void sgemm_14x32_accumulate(
    int kc, const float* a, const float* b, __m512 acc[kMrF32][2]) {
  for (int i = 0; i < kMrF32; ++i) {
    acc[i][0] = _mm512_setzero_ps();
    acc[i][1] = _mm512_setzero_ps();
  }
  // x4 unrolled main loop: the four independent FMA groups per row give the
  // scheduler room to hide the 4-cycle FMA latency across 28 live
  // accumulators.
  int p = 0;
  for (; p + 4 <= kc; p += 4) {
    // The A pointer advances 4 * MR floats (224 B) per block: four 64-byte
    // prefetches per block cover every panel line ahead. B advances 4 * NR
    // floats (512 B = 8 lines) per block; unlike the 6-row AVX2 tile, the
    // 14-row tile leaves load-port slack (16 load uops vs 28 FMAs per step),
    // so prefetching the B stream too is free and hides the L2 latency of a
    // 32 KB B panel's first pass.
    const char* a_ahead =
        reinterpret_cast<const char*>(a + kAPrefetchIters * kMrF32);
    _mm_prefetch(a_ahead, _MM_HINT_T0);
    _mm_prefetch(a_ahead + 64, _MM_HINT_T0);
    _mm_prefetch(a_ahead + 128, _MM_HINT_T0);
    _mm_prefetch(a_ahead + 192, _MM_HINT_T0);
    const char* b_ahead =
        reinterpret_cast<const char*>(b + kAPrefetchIters * kNrF32);
    _mm_prefetch(b_ahead, _MM_HINT_T0);
    _mm_prefetch(b_ahead + 64, _MM_HINT_T0);
    _mm_prefetch(b_ahead + 128, _MM_HINT_T0);
    _mm_prefetch(b_ahead + 192, _MM_HINT_T0);
    _mm_prefetch(b_ahead + 256, _MM_HINT_T0);
    _mm_prefetch(b_ahead + 320, _MM_HINT_T0);
    _mm_prefetch(b_ahead + 384, _MM_HINT_T0);
    _mm_prefetch(b_ahead + 448, _MM_HINT_T0);
    f32_step(a, b, acc);
    f32_step(a + kMrF32, b + kNrF32, acc);
    f32_step(a + 2 * kMrF32, b + 2 * kNrF32, acc);
    f32_step(a + 3 * kMrF32, b + 3 * kNrF32, acc);
    a += 4 * kMrF32;
    b += 4 * kNrF32;
  }
  for (; p < kc; ++p) {
    f32_step(a, b, acc);
    a += kMrF32;
    b += kNrF32;
  }
}

__attribute__((target("avx512f"))) void sgemm_14x32_full(int kc, float alpha,
                                                         const float* a,
                                                         const float* b,
                                                         float* c, int ldc) {
  __m512 acc[kMrF32][2];
  sgemm_14x32_accumulate(kc, a, b, acc);
  const __m512 va = _mm512_set1_ps(alpha);
  for (int i = 0; i < kMrF32; ++i) {
    float* crow = c + i * static_cast<long>(ldc);
    _mm512_storeu_ps(crow,
                     _mm512_fmadd_ps(va, acc[i][0], _mm512_loadu_ps(crow)));
    _mm512_storeu_ps(
        crow + 16, _mm512_fmadd_ps(va, acc[i][1], _mm512_loadu_ps(crow + 16)));
  }
}

__attribute__((target("avx512f"))) void sgemm_14x32_edge(int kc, float alpha,
                                                         const float* a,
                                                         const float* b,
                                                         float* c, int ldc,
                                                         int rows, int cols) {
  __m512 acc[kMrF32][2];
  sgemm_14x32_accumulate(kc, a, b, acc);
  alignas(64) float tile[kMrF32][kNrF32];
  for (int i = 0; i < kMrF32; ++i) {
    _mm512_store_ps(tile[i], acc[i][0]);
    _mm512_store_ps(tile[i] + 16, acc[i][1]);
  }
  for (int i = 0; i < rows; ++i) {
    float* crow = c + i * static_cast<long>(ldc);
    for (int j = 0; j < cols; ++j) crow[j] += alpha * tile[i][j];
  }
}

__attribute__((target("avx512f"), always_inline)) inline void f64_step(
    const double* a, const double* b, __m512d acc[kMrF64][2]) {
  const __m512d b0 = _mm512_loadu_pd(b);
  const __m512d b1 = _mm512_loadu_pd(b + 8);
  for (int i = 0; i < kMrF64; ++i) {
    const __m512d ai = _mm512_set1_pd(a[i]);
    acc[i][0] = _mm512_fmadd_pd(ai, b0, acc[i][0]);
    acc[i][1] = _mm512_fmadd_pd(ai, b1, acc[i][1]);
  }
}

__attribute__((target("avx512f"))) void dgemm_14x16_accumulate(
    int kc, const double* a, const double* b, __m512d acc[kMrF64][2]) {
  for (int i = 0; i < kMrF64; ++i) {
    acc[i][0] = _mm512_setzero_pd();
    acc[i][1] = _mm512_setzero_pd();
  }
  // x4 unrolled main loop with A- and B-stream prefetch, mirroring the fp32
  // kernel: the load-port slack argument is identical (16 load uops vs 28
  // FMAs per step) and the fp64 B panel is twice the bytes.
  int p = 0;
  for (; p + 4 <= kc; p += 4) {
    // The A pointer advances 4 * MR doubles (448 B) per block: seven 64-byte
    // prefetches per block cover every panel line ahead. B advances 4 * NR
    // doubles (512 B = 8 lines) per block.
    const char* a_ahead =
        reinterpret_cast<const char*>(a + kAPrefetchIters * kMrF64);
    _mm_prefetch(a_ahead, _MM_HINT_T0);
    _mm_prefetch(a_ahead + 64, _MM_HINT_T0);
    _mm_prefetch(a_ahead + 128, _MM_HINT_T0);
    _mm_prefetch(a_ahead + 192, _MM_HINT_T0);
    _mm_prefetch(a_ahead + 256, _MM_HINT_T0);
    _mm_prefetch(a_ahead + 320, _MM_HINT_T0);
    _mm_prefetch(a_ahead + 384, _MM_HINT_T0);
    const char* b_ahead =
        reinterpret_cast<const char*>(b + kAPrefetchIters * kNrF64);
    _mm_prefetch(b_ahead, _MM_HINT_T0);
    _mm_prefetch(b_ahead + 64, _MM_HINT_T0);
    _mm_prefetch(b_ahead + 128, _MM_HINT_T0);
    _mm_prefetch(b_ahead + 192, _MM_HINT_T0);
    _mm_prefetch(b_ahead + 256, _MM_HINT_T0);
    _mm_prefetch(b_ahead + 320, _MM_HINT_T0);
    _mm_prefetch(b_ahead + 384, _MM_HINT_T0);
    _mm_prefetch(b_ahead + 448, _MM_HINT_T0);
    f64_step(a, b, acc);
    f64_step(a + kMrF64, b + kNrF64, acc);
    f64_step(a + 2 * kMrF64, b + 2 * kNrF64, acc);
    f64_step(a + 3 * kMrF64, b + 3 * kNrF64, acc);
    a += 4 * kMrF64;
    b += 4 * kNrF64;
  }
  for (; p < kc; ++p) {
    f64_step(a, b, acc);
    a += kMrF64;
    b += kNrF64;
  }
}

__attribute__((target("avx512f"))) void dgemm_14x16_full(int kc, double alpha,
                                                         const double* a,
                                                         const double* b,
                                                         double* c, int ldc) {
  __m512d acc[kMrF64][2];
  dgemm_14x16_accumulate(kc, a, b, acc);
  const __m512d va = _mm512_set1_pd(alpha);
  for (int i = 0; i < kMrF64; ++i) {
    double* crow = c + i * static_cast<long>(ldc);
    _mm512_storeu_pd(crow,
                     _mm512_fmadd_pd(va, acc[i][0], _mm512_loadu_pd(crow)));
    _mm512_storeu_pd(
        crow + 8, _mm512_fmadd_pd(va, acc[i][1], _mm512_loadu_pd(crow + 8)));
  }
}

__attribute__((target("avx512f"))) void dgemm_14x16_edge(int kc, double alpha,
                                                         const double* a,
                                                         const double* b,
                                                         double* c, int ldc,
                                                         int rows, int cols) {
  __m512d acc[kMrF64][2];
  dgemm_14x16_accumulate(kc, a, b, acc);
  alignas(64) double tile[kMrF64][kNrF64];
  for (int i = 0; i < kMrF64; ++i) {
    _mm512_store_pd(tile[i], acc[i][0]);
    _mm512_store_pd(tile[i] + 8, acc[i][1]);
  }
  for (int i = 0; i < rows; ++i) {
    double* crow = c + i * static_cast<long>(ldc);
    for (int j = 0; j < cols; ++j) crow[j] += alpha * tile[i][j];
  }
}

}  // namespace

KernelSet<float> avx512_kernel_set_f32() {
  KernelSet<float> set;
  set.mr = kMrF32;
  set.nr = kNrF32;
  // The 14-row tile wants taller MC (16 micro-panels) and a deeper KC than
  // the 6-row tiers: its per-C-tile write-back is 3.5 KB, so a kc=512 panel
  // halves the write-back rate for the same packed traffic (measured best
  // in the dev-host blocking sweep at 1024^3, fp32 and fp64 alike).
  set.mc = 224;
  set.kc = 512;
  set.nc = 2048;
  set.name = "avx512";
  set.full = &sgemm_14x32_full;
  set.edge = &sgemm_14x32_edge;
  return set;
}

KernelSet<double> avx512_kernel_set_f64() {
  KernelSet<double> set;
  set.mr = kMrF64;
  set.nr = kNrF64;
  set.mc = 224;
  set.kc = 512;
  set.nc = 2048;
  set.name = "avx512";
  set.full = &dgemm_14x16_full;
  set.edge = &dgemm_14x16_edge;
  return set;
}

}  // namespace adsala::blas::kernels::detail

#else  // non-x86: the dispatcher never selects kAvx512, but the symbols must
       // exist. Return empty sets; dispatch.cpp treats them as unavailable.

namespace adsala::blas::kernels::detail {
KernelSet<float> avx512_kernel_set_f32() { return {}; }
KernelSet<double> avx512_kernel_set_f64() { return {}; }
}  // namespace adsala::blas::kernels::detail

#endif
