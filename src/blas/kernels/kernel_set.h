// Runtime-dispatched micro-kernel descriptor.
//
// A KernelSet bundles the register-blocked inner kernels for one scalar type
// together with their MR x NR geometry. The blocked GEMM/SYRK drivers consume
// whatever geometry the set advertises instead of compile-time constants, so
// swapping an AVX-512 14x32 kernel for the portable 6x8 one is purely a
// runtime decision (CPUID probe, ADSALA_KERNEL env, or the set_variant() API
// — see dispatch.h).
#pragma once

namespace adsala::blas::kernels {

/// Which micro-kernel implementation backs a BLAS call.
enum class Variant {
  kAuto,     ///< resolve via ADSALA_KERNEL env, else best the CPU supports
  kGeneric,  ///< portable compiler-vectorised template kernel
  kAvx2,     ///< hand-written AVX2+FMA intrinsics (x86-64 only)
  kAvx512,   ///< hand-written AVX-512F intrinsics (x86-64 only)
};

/// Upper bounds on micro-tile geometry across all variants; edge paths use
/// them to size stack scratch tiles.
inline constexpr int kMaxMr = 14;
inline constexpr int kMaxNr = 32;

template <typename T>
struct KernelSet {
  /// C[0..mr) x [0..nr) += alpha * (packed MR-wide A panel) * (packed
  /// NR-wide B panel); kc is the panel depth, ldc the row stride of C.
  using FullFn = void (*)(int kc, T alpha, const T* a, const T* b, T* c,
                          int ldc);
  /// Fringe variant: same contract but writes back only rows x cols.
  using EdgeFn = void (*)(int kc, T alpha, const T* a, const T* b, T* c,
                          int ldc, int rows, int cols);

  int mr = 0;
  int nr = 0;
  /// Preferred cache blocking (BLIS-style per-kernel blocksizes): the MC /
  /// KC / NC a default-constructed GemmTuning resolves to for this set. A
  /// taller or wider micro-tile amortises its C write-back over deeper
  /// panels, so the best blocking is a property of the kernel, not of the
  /// driver.
  int mc = 0;
  int kc = 0;
  int nc = 0;
  const char* name = "";
  FullFn full = nullptr;
  EdgeFn edge = nullptr;
};

namespace detail {
/// Variant factories, defined in generic.cpp / avx2.cpp / avx512.cpp.
template <typename T>
KernelSet<T> generic_kernel_set();
KernelSet<float> avx2_kernel_set_f32();
KernelSet<double> avx2_kernel_set_f64();
KernelSet<float> avx512_kernel_set_f32();
KernelSet<double> avx512_kernel_set_f64();
}  // namespace detail

}  // namespace adsala::blas::kernels
