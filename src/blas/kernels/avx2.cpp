// Hand-vectorised AVX2+FMA micro-kernels.
//
//   fp32: 6x16 — per row two 8-lane accumulators, 12 ymm accumulators total
//   fp64: 6x8  — per row two 4-lane accumulators, 12 ymm accumulators total
//
// Both shapes leave ymm registers free for the two B loads and the broadcast
// of A, so with the fixed trip counts below GCC keeps every accumulator
// resident in registers for the whole kc loop. The kc loop is unrolled x4
// with a software prefetch into the packed A panel each unrolled block
// (ROADMAP item: k-loop unrolling + A-panel prefetch inside the AVX2
// kernels). The kernels are compiled with
// per-function target attributes rather than per-file -mavx2 so this TU still
// builds (and the rest of the library stays portable) under the default
// x86-64 baseline; the dispatcher only hands these pointers out after a
// CPUID probe confirms AVX2+FMA.
#include "blas/kernels/kernel_set.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace adsala::blas::kernels::detail {

namespace {

inline constexpr int kMrF32 = 6;
inline constexpr int kNrF32 = 16;
inline constexpr int kMrF64 = 6;
inline constexpr int kNrF64 = 8;

/// Software-prefetch lookahead into the packed A panel, in k iterations.
/// The panel is read strictly sequentially (MR elements per iteration), so a
/// fixed distance of ~16 iterations (384 B fp32 / 768 B fp64 ahead) keeps the
/// loads inside the L1 stream without competing with the B loads for fill
/// buffers.
inline constexpr int kAPrefetchIters = 16;

__attribute__((target("avx2,fma"), always_inline)) inline void f32_step(
    const float* a, const float* b, __m256 acc[kMrF32][2]) {
  const __m256 b0 = _mm256_loadu_ps(b);
  const __m256 b1 = _mm256_loadu_ps(b + 8);
  for (int i = 0; i < kMrF32; ++i) {
    const __m256 ai = _mm256_broadcast_ss(a + i);
    acc[i][0] = _mm256_fmadd_ps(ai, b0, acc[i][0]);
    acc[i][1] = _mm256_fmadd_ps(ai, b1, acc[i][1]);
  }
}

__attribute__((target("avx2,fma"))) void sgemm_6x16_accumulate(
    int kc, const float* a, const float* b, __m256 acc[kMrF32][2]) {
  for (int i = 0; i < kMrF32; ++i) {
    acc[i][0] = _mm256_setzero_ps();
    acc[i][1] = _mm256_setzero_ps();
  }
  // x4 unrolled main loop: fewer loop-carried branches, and the four
  // independent FMA groups per row give the scheduler room to hide the
  // 4-5 cycle FMA latency across 12 live accumulators.
  int p = 0;
  for (; p + 4 <= kc; p += 4) {
    // The pointer advances 4 * MR floats (96 B) per block: two 64-byte
    // prefetches per block cover every panel line ahead.
    const char* ahead =
        reinterpret_cast<const char*>(a + kAPrefetchIters * kMrF32);
    _mm_prefetch(ahead, _MM_HINT_T0);
    _mm_prefetch(ahead + 64, _MM_HINT_T0);
    f32_step(a, b, acc);
    f32_step(a + kMrF32, b + kNrF32, acc);
    f32_step(a + 2 * kMrF32, b + 2 * kNrF32, acc);
    f32_step(a + 3 * kMrF32, b + 3 * kNrF32, acc);
    a += 4 * kMrF32;
    b += 4 * kNrF32;
  }
  for (; p < kc; ++p) {
    f32_step(a, b, acc);
    a += kMrF32;
    b += kNrF32;
  }
}

__attribute__((target("avx2,fma"))) void sgemm_6x16_full(int kc, float alpha,
                                                         const float* a,
                                                         const float* b,
                                                         float* c, int ldc) {
  __m256 acc[kMrF32][2];
  sgemm_6x16_accumulate(kc, a, b, acc);
  const __m256 va = _mm256_set1_ps(alpha);
  for (int i = 0; i < kMrF32; ++i) {
    float* crow = c + i * static_cast<long>(ldc);
    _mm256_storeu_ps(crow,
                     _mm256_fmadd_ps(va, acc[i][0], _mm256_loadu_ps(crow)));
    _mm256_storeu_ps(
        crow + 8, _mm256_fmadd_ps(va, acc[i][1], _mm256_loadu_ps(crow + 8)));
  }
}

__attribute__((target("avx2,fma"))) void sgemm_6x16_edge(int kc, float alpha,
                                                         const float* a,
                                                         const float* b,
                                                         float* c, int ldc,
                                                         int rows, int cols) {
  __m256 acc[kMrF32][2];
  sgemm_6x16_accumulate(kc, a, b, acc);
  alignas(32) float tile[kMrF32][kNrF32];
  for (int i = 0; i < kMrF32; ++i) {
    _mm256_store_ps(tile[i], acc[i][0]);
    _mm256_store_ps(tile[i] + 8, acc[i][1]);
  }
  for (int i = 0; i < rows; ++i) {
    float* crow = c + i * static_cast<long>(ldc);
    for (int j = 0; j < cols; ++j) crow[j] += alpha * tile[i][j];
  }
}

__attribute__((target("avx2,fma"), always_inline)) inline void f64_step(
    const double* a, const double* b, __m256d acc[kMrF64][2]) {
  const __m256d b0 = _mm256_loadu_pd(b);
  const __m256d b1 = _mm256_loadu_pd(b + 4);
  for (int i = 0; i < kMrF64; ++i) {
    const __m256d ai = _mm256_broadcast_sd(a + i);
    acc[i][0] = _mm256_fmadd_pd(ai, b0, acc[i][0]);
    acc[i][1] = _mm256_fmadd_pd(ai, b1, acc[i][1]);
  }
}

__attribute__((target("avx2,fma"))) void dgemm_6x8_accumulate(
    int kc, const double* a, const double* b, __m256d acc[kMrF64][2]) {
  for (int i = 0; i < kMrF64; ++i) {
    acc[i][0] = _mm256_setzero_pd();
    acc[i][1] = _mm256_setzero_pd();
  }
  // x4 unrolled main loop with A-panel prefetch (see kAPrefetchIters).
  int p = 0;
  for (; p + 4 <= kc; p += 4) {
    // The pointer advances 4 * MR doubles (192 B) per block: three 64-byte
    // prefetches per block cover every panel line ahead.
    const char* ahead =
        reinterpret_cast<const char*>(a + kAPrefetchIters * kMrF64);
    _mm_prefetch(ahead, _MM_HINT_T0);
    _mm_prefetch(ahead + 64, _MM_HINT_T0);
    _mm_prefetch(ahead + 128, _MM_HINT_T0);
    f64_step(a, b, acc);
    f64_step(a + kMrF64, b + kNrF64, acc);
    f64_step(a + 2 * kMrF64, b + 2 * kNrF64, acc);
    f64_step(a + 3 * kMrF64, b + 3 * kNrF64, acc);
    a += 4 * kMrF64;
    b += 4 * kNrF64;
  }
  for (; p < kc; ++p) {
    f64_step(a, b, acc);
    a += kMrF64;
    b += kNrF64;
  }
}

__attribute__((target("avx2,fma"))) void dgemm_6x8_full(int kc, double alpha,
                                                        const double* a,
                                                        const double* b,
                                                        double* c, int ldc) {
  __m256d acc[kMrF64][2];
  dgemm_6x8_accumulate(kc, a, b, acc);
  const __m256d va = _mm256_set1_pd(alpha);
  for (int i = 0; i < kMrF64; ++i) {
    double* crow = c + i * static_cast<long>(ldc);
    _mm256_storeu_pd(crow,
                     _mm256_fmadd_pd(va, acc[i][0], _mm256_loadu_pd(crow)));
    _mm256_storeu_pd(
        crow + 4, _mm256_fmadd_pd(va, acc[i][1], _mm256_loadu_pd(crow + 4)));
  }
}

__attribute__((target("avx2,fma"))) void dgemm_6x8_edge(int kc, double alpha,
                                                        const double* a,
                                                        const double* b,
                                                        double* c, int ldc,
                                                        int rows, int cols) {
  __m256d acc[kMrF64][2];
  dgemm_6x8_accumulate(kc, a, b, acc);
  alignas(32) double tile[kMrF64][kNrF64];
  for (int i = 0; i < kMrF64; ++i) {
    _mm256_store_pd(tile[i], acc[i][0]);
    _mm256_store_pd(tile[i] + 4, acc[i][1]);
  }
  for (int i = 0; i < rows; ++i) {
    double* crow = c + i * static_cast<long>(ldc);
    for (int j = 0; j < cols; ++j) crow[j] += alpha * tile[i][j];
  }
}

}  // namespace

KernelSet<float> avx2_kernel_set_f32() {
  KernelSet<float> set;
  set.mr = kMrF32;
  set.nr = kNrF32;
  // Measured best on the dev host's blocking sweep (1024^3): a deeper KC
  // than the historical 256 amortises the 6x16 tile's write-back further.
  set.mc = 180;
  set.kc = 384;
  set.nc = 2048;
  set.name = "avx2";
  set.full = &sgemm_6x16_full;
  set.edge = &sgemm_6x16_edge;
  return set;
}

KernelSet<double> avx2_kernel_set_f64() {
  KernelSet<double> set;
  set.mr = kMrF64;
  set.nr = kNrF64;
  set.mc = 120;
  set.kc = 256;
  set.nc = 2048;
  set.name = "avx2";
  set.full = &dgemm_6x8_full;
  set.edge = &dgemm_6x8_edge;
  return set;
}

}  // namespace adsala::blas::kernels::detail

#else  // non-x86: the dispatcher never selects kAvx2, but the symbols must
       // exist. Return empty sets; dispatch.cpp treats them as unavailable.

namespace adsala::blas::kernels::detail {
KernelSet<float> avx2_kernel_set_f32() { return {}; }
KernelSet<double> avx2_kernel_set_f64() { return {}; }
}  // namespace adsala::blas::kernels::detail

#endif
