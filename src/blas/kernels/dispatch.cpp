#include "blas/kernels/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <type_traits>

namespace adsala::blas::kernels {

namespace {

/// Resolved once from ADSALA_KERNEL + CPUID; never kAuto.
Variant env_default() {
  if (const char* env = std::getenv("ADSALA_KERNEL")) {
    const auto parsed = parse_variant(env);
    if (!parsed.has_value()) {
      std::fprintf(stderr,
                   "[adsala] ADSALA_KERNEL=%s not recognised "
                   "(auto|generic|avx2|avx512); using auto\n",
                   env);
    } else if (*parsed == Variant::kAvx512 && !cpu_supports_avx512()) {
      std::fprintf(stderr,
                   "[adsala] ADSALA_KERNEL=avx512 but the CPU lacks AVX-512F; "
                   "using %s\n",
                   cpu_supports_avx2() ? "avx2" : "generic");
      return cpu_supports_avx2() ? Variant::kAvx2 : Variant::kGeneric;
    } else if (*parsed == Variant::kAvx2 && !cpu_supports_avx2()) {
      std::fprintf(stderr,
                   "[adsala] ADSALA_KERNEL=avx2 but the CPU lacks AVX2/FMA; "
                   "using generic\n");
      return Variant::kGeneric;
    } else if (*parsed != Variant::kAuto) {
      return *parsed;
    }
  }
  if (cpu_supports_avx512()) return Variant::kAvx512;
  return cpu_supports_avx2() ? Variant::kAvx2 : Variant::kGeneric;
}

std::atomic<Variant> g_override{Variant::kAuto};

}  // namespace

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return false;
#endif
}

bool cpu_supports_avx512() {
#if defined(__x86_64__) || defined(__i386__)
  // AVX-512F is the only subset the kernels use; FMA is part of F. AVX2+FMA
  // is checked too so the fallback ladder (avx512 -> avx2 -> generic) never
  // inverts on an exotic topology.
  static const bool ok =
      __builtin_cpu_supports("avx512f") && cpu_supports_avx2();
  return ok;
#else
  return false;
#endif
}

std::vector<Variant> supported_variants() {
  std::vector<Variant> out{Variant::kGeneric};
  if (cpu_supports_avx2()) out.push_back(Variant::kAvx2);
  if (cpu_supports_avx512()) out.push_back(Variant::kAvx512);
  return out;
}

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kAuto:
      return "auto";
    case Variant::kGeneric:
      return "generic";
    case Variant::kAvx2:
      return "avx2";
    case Variant::kAvx512:
      return "avx512";
  }
  return "?";
}

std::optional<Variant> parse_variant(std::string_view name) {
  if (name == "auto") return Variant::kAuto;
  if (name == "generic") return Variant::kGeneric;
  if (name == "avx2") return Variant::kAvx2;
  if (name == "avx512") return Variant::kAvx512;
  return std::nullopt;
}

void set_variant(Variant v) {
  if (v == Variant::kAvx2 && !cpu_supports_avx2()) {
    throw std::runtime_error("set_variant: avx2 kernels unsupported on host");
  }
  if (v == Variant::kAvx512 && !cpu_supports_avx512()) {
    throw std::runtime_error(
        "set_variant: avx512 kernels unsupported on host");
  }
  g_override.store(v, std::memory_order_relaxed);
}

Variant active_variant() {
  const Variant forced = g_override.load(std::memory_order_relaxed);
  if (forced != Variant::kAuto) return forced;
  static const Variant resolved = env_default();
  return resolved;
}

template <typename T>
const KernelSet<T>& kernel_set(Variant v) {
  static const KernelSet<T> generic = detail::generic_kernel_set<T>();
  static const KernelSet<T> avx2 = [] {
    if constexpr (std::is_same_v<T, float>) {
      return detail::avx2_kernel_set_f32();
    } else {
      return detail::avx2_kernel_set_f64();
    }
  }();
  static const KernelSet<T> avx512 = [] {
    if constexpr (std::is_same_v<T, float>) {
      return detail::avx512_kernel_set_f32();
    } else {
      return detail::avx512_kernel_set_f64();
    }
  }();
  if (v == Variant::kAuto) v = active_variant();
  if (v == Variant::kAvx512 && cpu_supports_avx512()) return avx512;
  // Unsupported requests degrade down the same ladder the env path uses:
  // an avx512 tuning replayed on an AVX2-only host runs the avx2 tier, not
  // the several-fold-slower generic one.
  if ((v == Variant::kAvx2 || v == Variant::kAvx512) && cpu_supports_avx2()) {
    return avx2;
  }
  return generic;
}

template const KernelSet<float>& kernel_set<float>(Variant);
template const KernelSet<double>& kernel_set<double>(Variant);

}  // namespace adsala::blas::kernels
