// Shared driver plumbing for the five level-3 ops.
//
// Every blocked driver runs the same prologue: validate, resolve the thread
// count against the pool, serve degenerate calls with a parallel scale pass,
// resolve the cache blocking against the dispatched kernel's geometry, and
// carve packing scratch out of the PackArena. Before this header each op
// restated that sequence, and the restatements had begun to drift — GEMM's
// degenerate beta pass ran before its tuning sanitisation while SYRK's ran
// before the kernel-geometry guard, so an ordering bug fixed in one op could
// silently survive in another. The helpers pin one order for all five:
//
//   validate -> empty-output return -> resolve_threads -> degenerate scale
//   pass (k == 0 / alpha == 0) -> block_geometry -> arena carve -> macro loop
//
// The degenerate pass deliberately stays *ahead* of block_geometry: it must
// not depend on tuning fields (a beta-only call with a nonsense tuning.kc is
// still a valid BLAS call), and hoisting it here makes that invariant
// structural instead of per-file.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <new>

#include "blas/gemm.h"
#include "blas/kernels/kernel_set.h"
#include "blas/pack_pipeline.h"
#include "common/aligned_buffer.h"
#include "common/pack_arena.h"
#include "common/thread_pool.h"

namespace adsala::blas::detail {

/// Resolves a user thread-count request: <= 0 means the pool maximum, and
/// the result is clamped to [1, max_threads()] and (when row_cap >= 0) to
/// the number of partitionable rows. A call arriving from inside a parallel
/// region resolves to 1 outright — the pool would degrade the region to
/// serial anyway, and the partition / barrier / scratch sizing must all see
/// that as ONE thread (sizing them for p while fn(0, 1) runs would leave
/// p-1 row chunks untouched).
inline std::size_t resolve_threads(int nthreads, long row_cap = -1) {
  if (ThreadPool::in_region()) return 1;
  ThreadPool& pool = ThreadPool::global();
  std::size_t p = nthreads <= 0 ? pool.max_threads()
                                : static_cast<std::size_t>(nthreads);
  p = std::clamp<std::size_t>(p, 1, pool.max_threads());
  if (row_cap >= 0) {
    p = std::min<std::size_t>(
        p, static_cast<std::size_t>(std::max<long>(1, row_cap)));
  }
  return p;
}

/// Cache blocking resolved against the dispatched kernel: explicit positive
/// tuning fields win, zero / negative fields fall back to the kernel's
/// preferred blocking, and the result is rounded to the MR/NR geometry.
struct BlockGeom {
  int mc = 0;
  int kc = 0;
  int nc = 0;
};

template <typename T>
BlockGeom block_geometry(const kernels::KernelSet<T>& ks,
                         const GemmTuning& tuning) {
  const int mc_req = tuning.mc > 0 ? tuning.mc : ks.mc;
  const int kc_req = tuning.kc > 0 ? tuning.kc : ks.kc;
  const int nc_req = tuning.nc > 0 ? tuning.nc : ks.nc;
  BlockGeom g;
  g.mc = std::max(ks.mr, mc_req - mc_req % ks.mr);
  g.kc = std::max(1, kc_req);
  g.nc = std::max(ks.nr, nc_req - nc_req % ks.nr);
  return g;
}

/// One participant's private packed-panel scratch, carved from the calling
/// thread's arena slab in a single call (the one-carve-per-op contract:
/// a second thread_slab call could grow the slab and invalidate the first
/// pointer). `col_span` is the widest column range this participant's B
/// panels can cover (n for GEMM/SYMM-style macro-loops, the triangle's
/// column extent for SYRK). `extra_padded` prepends that many already-
/// padded elements for op-specific scratch (TRMM's dense copy); the A
/// panels start right after it.
template <typename T>
struct PanelCarve {
  T* extra = nullptr;
  T* a_pack = nullptr;
  T* b_pack = nullptr;
  /// Non-null only on the degraded path: arena growth threw bad_alloc and
  /// the carve fell back to a per-call buffer (the PR-5 huge-TRMM fallback
  /// generalised to every op). shared_ptr keeps the struct copyable — the
  /// drivers pass carves by value into their macro loops.
  std::shared_ptr<AlignedBuffer<T>> fallback;
};

/// Elements of one participant's packed-A block: full MR-row micro-panels
/// covering mc rows at depth kc.
template <typename T>
std::size_t a_panel_elems(const kernels::KernelSet<T>& ks, int mc, int kc) {
  return static_cast<std::size_t>((mc + ks.mr - 1) / ks.mr) * ks.mr * kc;
}

/// Elements of a packed-B block spanning min(nc, col_span) columns at depth
/// kc: full NR-column micro-panels. The single source of the sizing for
/// both the private carve below and GEMM's orchestrator-sized shared slab.
template <typename T>
std::size_t b_panel_elems(const kernels::KernelSet<T>& ks, int nc,
                          int col_span, int kc) {
  const int b_panels = (std::min(nc, col_span) + ks.nr - 1) / ks.nr;
  return static_cast<std::size_t>(b_panels) * kc * ks.nr;
}

template <typename T>
PanelCarve<T> carve_private_panels(const kernels::KernelSet<T>& ks, int mc,
                                   int kc, int nc, int col_span,
                                   std::size_t extra_padded = 0) {
  const std::size_t a_padded =
      PackArena::padded_count<T>(a_panel_elems(ks, mc, kc));
  const std::size_t total =
      extra_padded + a_padded + b_panel_elems(ks, nc, col_span, kc);
  PanelCarve<T> carve;
  T* slab = nullptr;
  try {
    slab = PackArena::global().thread_slab<T>(total);
  } catch (const std::bad_alloc&) {
    // Arena growth failed (genuine exhaustion or the `arena-oom`
    // failpoint): serve this call from a per-call buffer instead of
    // failing it. If even that throws, the exception-safe ThreadPool
    // rethrows on the calling thread — never std::terminate.
    carve.fallback = std::make_shared<AlignedBuffer<T>>(total);
    slab = carve.fallback->data();
  }
  carve.extra = slab;
  carve.a_pack = slab + extra_padded;
  carve.b_pack = carve.a_pack + a_padded;
  return carve;
}

/// Shared-slab sibling of the carve fallback: returns the arena's shared
/// slab, degrading to a per-call buffer (kept alive through `fallback`)
/// when growth throws. Call from the orchestrating thread before the
/// region opens, exactly like PackArena::shared_slab itself.
template <typename T>
T* shared_slab_or_fallback(std::size_t count,
                           std::shared_ptr<AlignedBuffer<T>>& fallback) {
  try {
    return PackArena::global().shared_slab<T>(count);
  } catch (const std::bad_alloc&) {
    fallback = std::make_shared<AlignedBuffer<T>>(count);
    return fallback->data();
  }
}

/// Thread-slab sibling, for participants that carve a bare A block instead
/// of going through carve_private_panels (GEMM's cooperative-B layout).
template <typename T>
T* thread_slab_or_fallback(std::size_t count,
                           std::shared_ptr<AlignedBuffer<T>>& fallback) {
  try {
    return PackArena::global().thread_slab<T>(count);
  } catch (const std::bad_alloc&) {
    fallback = std::make_shared<AlignedBuffer<T>>(count);
    return fallback->data();
  }
}

/// Ping/pong pair of equally-sized shared-slab carves: the double-buffered
/// B panels of the pack pipeline. One shared_slab call covers both halves
/// (a second call could grow the slab and invalidate the first pointer);
/// padded_count keeps the pong half 64-byte aligned. Degrades to one
/// per-call buffer (kept alive through `fallback`) when arena growth
/// throws, exactly like shared_slab_or_fallback. Call from the
/// orchestrating thread before the region opens.
template <typename T>
struct SharedPair {
  T* bufs[2] = {nullptr, nullptr};
  std::shared_ptr<AlignedBuffer<T>> fallback;
};

template <typename T>
SharedPair<T> carve_shared_pair(std::size_t count) {
  const std::size_t padded = PackArena::padded_count<T>(count);
  SharedPair<T> pair;
  T* base = shared_slab_or_fallback<T>(2 * padded, pair.fallback);
  pair.bufs[0] = base;
  pair.bufs[1] = base + padded;
  return pair;
}

/// The pipelined level-3 macro-loop, run by EVERY participant of a parallel
/// region (GEMM first, and the SYMM/TRMM loops that share its structure).
/// Enumerates the (jc, pc) panel grid in order; for each panel the
/// cooperative pack of the NEXT panel proceeds into the other half of the
/// ping/pong pair while this panel is computed, and MC-row tiles are
/// claimed through the stealable deck instead of a static row split.
///
///   pack_chunk(jc, pc, kc_eff, q, dst)
///     packs NR-column micro-panel q (columns [jc + q*nr, ...)) of the
///     kc_eff-deep B block into dst (contiguous kc_eff * nr elements).
///   tile_op(jc, pc, nc_eff, kc_eff, first_panel_of_jc, ic, mc_eff, b_buf)
///     computes C rows [ic, ic+mc_eff) x columns [jc, jc+nc_eff) against
///     the packed B block at b_buf. `first_panel_of_jc` is true on the
///     jc-block's first pc iteration — where a driver folds its beta scale
///     into the tile, first-touch style, so no separate pre-scale barrier
///     orders against the stolen tiles.
///
/// The caller sizes each half of `b_bufs` for the widest panel
/// (b_panel_elems at the resolved kc/nc); within a panel the packed layout
/// is q * kc_eff * nr, matching the pre-pipeline cooperative pack.
template <typename T, typename PackChunkFn, typename TileOpFn>
void pipelined_macro_loop(std::size_t tid, std::size_t nt, int rows, int cols,
                          int kdim, const BlockGeom& g, int nr,
                          T* const (&b_bufs)[2], PackPipeline& pipe,
                          TileDeck& deck, PackChunkFn&& pack_chunk,
                          TileOpFn&& tile_op) {
  const int t = static_cast<int>(tid);
  const long pc_steps = (kdim + g.kc - 1) / g.kc;
  const long jc_steps = (cols + g.nc - 1) / g.nc;
  const long total_panels = jc_steps * pc_steps;

  PipelineStats& stats = pipeline_stats();
  const bool timed = stats.timing_enabled.load(std::memory_order_relaxed);
  std::uint64_t pack_ns = 0, compute_ns = 0, tiles_done = 0;

  // This thread's static share of one panel's cooperative pack: NR-panel
  // chunks [share_lo(q_panels), share_hi(q_panels)).
  const auto pack_share = [&](long panel) {
    const int jc = static_cast<int>(panel / pc_steps) * g.nc;
    const int pc = static_cast<int>(panel % pc_steps) * g.kc;
    const int nc_eff = std::min(g.nc, cols - jc);
    const int kc_eff = std::min(g.kc, kdim - pc);
    const int q_panels = (nc_eff + nr - 1) / nr;
    const int q_lo = static_cast<int>(static_cast<long>(t) * q_panels /
                                      static_cast<long>(nt));
    const int q_hi = static_cast<int>(static_cast<long>(t + 1) * q_panels /
                                      static_cast<long>(nt));
    pipe.wait_buffer_free(panel);
    const std::uint64_t t0 = timed ? stats_now_ns() : 0;
    T* buf = b_bufs[panel & 1];
    for (int q = q_lo; q < q_hi; ++q) {
      pack_chunk(jc, pc, kc_eff, q, buf + static_cast<long>(q) * kc_eff * nr);
    }
    if (timed) pack_ns += stats_now_ns() - t0;
    pipe.pack_contribution_done(panel);
  };

  // Pipeline prologue: panel 0 is packed cooperatively before any compute.
  pack_share(0);

  for (long panel = 0; panel < total_panels; ++panel) {
    // Pack-ahead: panel+1 goes into the other buffer while panel computes.
    // The only steady-state wait inside pack_share is the previous panel
    // draining — one synchronisation point per panel, not two barriers.
    if (panel + 1 < total_panels) pack_share(panel + 1);

    pipe.wait_computable(panel);
    const int jc = static_cast<int>(panel / pc_steps) * g.nc;
    const int pc = static_cast<int>(panel % pc_steps) * g.kc;
    const int nc_eff = std::min(g.nc, cols - jc);
    const int kc_eff = std::min(g.kc, kdim - pc);
    const bool first_of_jc = pc == 0;
    const T* b_buf = b_bufs[panel & 1];
    const std::uint64_t t0 = timed ? stats_now_ns() : 0;
    for (int tile = deck.claim(t, panel); tile >= 0;
         tile = deck.claim(t, panel)) {
      const int ic = tile * g.mc;
      const int mc_eff = std::min(g.mc, rows - ic);
      tile_op(jc, pc, nc_eff, kc_eff, first_of_jc, ic, mc_eff, b_buf);
      ++tiles_done;
    }
    if (timed) compute_ns += stats_now_ns() - t0;
    pipe.compute_contribution_done(panel);
  }

  stats.tiles.fetch_add(tiles_done, std::memory_order_relaxed);
  if (timed) {
    stats.pack_ns.fetch_add(pack_ns, std::memory_order_relaxed);
    stats.compute_ns.fetch_add(compute_ns, std::memory_order_relaxed);
  }
}

/// Serial `row *= factor` over rows [row_lo, row_hi) of an ncols-wide
/// row-major block: factor == 1 is a no-op, factor == 0 stores zeros
/// outright so NaNs are flushed. THE row-scaling core — the ops' in-region
/// beta passes and the parallel degenerate pass below both delegate here,
/// so the flush/no-op semantics cannot drift between the macro loop and the
/// degenerate path of the same op.
template <typename T>
void scale_rows_range(T* c, long ldc, int row_lo, int row_hi, int ncols,
                      T factor) {
  if (factor == T(1)) return;
  for (int i = row_lo; i < row_hi; ++i) {
    T* row = c + i * ldc;
    if (factor == T(0)) {
      std::fill(row, row + ncols, T(0));
    } else {
      for (int j = 0; j < ncols; ++j) row[j] *= factor;
    }
  }
}

/// Parallel `row *= factor` pass over an nrows x ncols row-major block.
/// This is the whole of a degenerate level-3 call: GEMM/SYMM with k == 0 or
/// alpha == 0 reduce to C *= beta, TRMM with alpha == 0 to B = 0, and
/// TRSM's up-front right-hand-side scaling to B *= alpha.
template <typename T>
void scale_rows_pass(std::size_t p, int nrows, int ncols, T factor, T* c,
                     long ldc) {
  if (nrows <= 0 || ncols <= 0 || factor == T(1)) return;
  ThreadPool::global().parallel_region(
      p, [&](std::size_t tid, std::size_t nt) {
        const int chunk = static_cast<int>(
            (static_cast<std::size_t>(nrows) + nt - 1) / nt);
        const int lo = static_cast<int>(tid) * chunk;
        const int hi = std::min(nrows, lo + chunk);
        scale_rows_range(c, ldc, lo, hi, ncols, factor);
      });
}

}  // namespace adsala::blas::detail
