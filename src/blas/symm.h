// Symmetric matrix-matrix multiply — fourth member of the served level-3
// family (paper future work: "extend ... to other BLAS operations").
//
//   C <- alpha * A * B + beta * C        (left-side product)
//
// with A a symmetric n x n matrix of which only the `uplo` triangle
// (including the diagonal) is stored and referenced, and B / C n x m
// blocks. Row-major; ld* is the row stride.
//
// SYMM does the same 2*n*n*m FLOPs as the equivalent (n, n, m) GEMM but
// streams only half of A from memory: packing expands the stored triangle
// into dense micro-panels on the fly (pack_a_sym), so the runtime-dispatched
// micro-kernel runs the identical inner loop as GEMM. The mirrored half of
// every packed block is read with a strided (transposed) access pattern,
// which is the extra packing cost the machine model charges SYMM for.
#pragma once

#include "blas/gemm.h"

namespace adsala::blas {

/// Multi-threaded blocked SYMM. nthreads <= 0 selects the pool maximum.
/// Throws std::invalid_argument on negative dimensions or bad strides.
template <typename T>
void symm(Uplo uplo, int n, int m, T alpha, const T* a, int lda, const T* b,
          int ldb, T beta, T* c, int ldc, int nthreads = 0,
          const GemmTuning& tuning = {});

void ssymm(Uplo uplo, int n, int m, float alpha, const float* a, int lda,
           const float* b, int ldb, float beta, float* c, int ldc,
           int nthreads = 0);
void dsymm(Uplo uplo, int n, int m, double alpha, const double* a, int lda,
           const double* b, int ldb, double beta, double* c, int ldc,
           int nthreads = 0);

/// Naive triple loop reading A through the stored triangle; the correctness
/// oracle in tests.
template <typename T>
void reference_symm(Uplo uplo, int n, int m, T alpha, const T* a, int lda,
                    const T* b, int ldb, T beta, T* c, int ldc);

/// FLOP count: identical to the equivalent (n, n, m) GEMM.
inline double symm_flops(double n, double m) { return 2.0 * n * n * m; }

}  // namespace adsala::blas
