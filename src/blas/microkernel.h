// Register-blocked MR x NR micro-kernel.
//
// The accumulator tile lives in a fixed-size local array; with -O3 and fixed
// trip counts GCC keeps it in vector registers and vectorises the NR loop
// (8 floats = one AVX2 register, 8 doubles = two). This is the portable
// expression of the hand-written assembly kernels inside MKL/BLIS.
#pragma once

namespace adsala::blas::detail {

/// C[0..MR) x [0..NR) += alpha * (packed A panel) * (packed B panel).
/// `a` is an MR-wide packed panel (kc steps of MR), `b` an NR-wide packed
/// panel (kc steps of NR). Writes the full tile; caller guarantees bounds.
template <typename T, int MR, int NR>
void microkernel_full(int kc, T alpha, const T* a, const T* b, T* c,
                      int ldc) {
  T acc[MR][NR] = {};
  for (int p = 0; p < kc; ++p) {
    for (int i = 0; i < MR; ++i) {
      const T ai = a[i];
      for (int j = 0; j < NR; ++j) acc[i][j] += ai * b[j];
    }
    a += MR;
    b += NR;
  }
  for (int i = 0; i < MR; ++i) {
    T* crow = c + i * static_cast<long>(ldc);
    for (int j = 0; j < NR; ++j) crow[j] += alpha * acc[i][j];
  }
}

/// Fringe variant: computes the full tile in registers but writes back only
/// the valid rows x cols sub-rectangle (packing zero-pads the operands, so
/// the extra accumulator lanes hold zeros-by-construction).
template <typename T, int MR, int NR>
void microkernel_edge(int kc, T alpha, const T* a, const T* b, T* c, int ldc,
                      int rows, int cols) {
  T acc[MR][NR] = {};
  for (int p = 0; p < kc; ++p) {
    for (int i = 0; i < MR; ++i) {
      const T ai = a[i];
      for (int j = 0; j < NR; ++j) acc[i][j] += ai * b[j];
    }
    a += MR;
    b += NR;
  }
  for (int i = 0; i < rows; ++i) {
    T* crow = c + i * static_cast<long>(ldc);
    for (int j = 0; j < cols; ++j) crow[j] += alpha * acc[i][j];
  }
}

}  // namespace adsala::blas::detail
