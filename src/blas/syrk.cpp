#include "blas/syrk.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "blas/kernels/dispatch.h"
#include "blas/level3_common.h"
#include "blas/pack.h"
#include "common/pack_arena.h"
#include "common/thread_pool.h"

namespace adsala::blas {

namespace {

/// Logical element of op(A): row i, depth p.
template <typename T>
inline T op_a(const T* a, long lda, Trans trans, int i, int p) {
  return trans == Trans::kNo ? a[i * lda + p] : a[p * lda + i];
}

/// beta pass over the requested triangle rows [row_lo, row_hi).
template <typename T>
void scale_triangle_rows(Uplo uplo, int n, T beta, T* c, int ldc, int row_lo,
                         int row_hi) {
  for (int i = row_lo; i < row_hi; ++i) {
    const int j_lo = uplo == Uplo::kLower ? 0 : i;
    const int j_hi = uplo == Uplo::kLower ? i + 1 : n;
    T* crow = c + static_cast<long>(i) * ldc;
    if (beta == T(1)) continue;
    for (int j = j_lo; j < j_hi; ++j) {
      crow[j] = beta == T(0) ? T(0) : beta * crow[j];
    }
  }
}

/// Area-balanced triangle row partition (shared helper in gemm.h).
int triangle_split(Uplo uplo, int n, std::size_t t, std::size_t p) {
  return detail::triangle_split(uplo == Uplo::kLower, n, t, p);
}

/// Blocked rank-k update of rows [row_lo, row_hi) of the triangle, using the
/// dispatched micro-kernel over packed panels of A (as both operands: the
/// "B" matrix of the product is op(A) transposed). Tiles entirely inside the
/// triangle go through the kernel directly; tiles crossing the diagonal are
/// accumulated into a zeroed scratch tile and masked into C.
///
/// Each thread packs its own op(A)^T panels even though the column ranges of
/// neighbouring threads overlap; the duplicated packing traffic buys a
/// barrier-free schedule (threads never wait on each other). GEMM makes the
/// opposite call with its cooperatively packed shared B — if skinny-n SYRK
/// shapes ever dominate, that is the scheme to port over.
template <typename T>
void syrk_rows_blocked(const kernels::KernelSet<T>& ks, Uplo uplo, Trans trans,
                       int n, int k, T alpha, const T* a, int lda, T* c,
                       int ldc, int row_lo, int row_hi, int mc, int kc,
                       int nc) {
  if (row_lo >= row_hi) return;
  const int mr = ks.mr;
  const int nr = ks.nr;

  // Columns this row range can touch in its triangle.
  const int col_lo = uplo == Uplo::kLower ? 0 : row_lo;
  const int col_hi = uplo == Uplo::kLower ? row_hi : n;

  // Private packing scratch (this schedule is barrier-free, so each thread
  // owns both panels), carved from the thread's arena slab in one piece.
  const auto carve =
      detail::carve_private_panels<T>(ks, mc, kc, nc, col_hi - col_lo);
  T* a_pack = carve.a_pack;
  T* b_pack = carve.b_pack;
  T tile[kernels::kMaxMr * kernels::kMaxNr];

  for (int jc = col_lo; jc < col_hi; jc += nc) {
    const int nc_eff = std::min(nc, col_hi - jc);
    const int nc_panels = (nc_eff + nr - 1) / nr;
    for (int pc = 0; pc < k; pc += kc) {
      const int kc_eff = std::min(kc, k - pc);

      // Pack the second operand: logical B(p, j) = op(A)(j, p).
      for (int q = 0; q < nc_panels; ++q) {
        const int j0 = jc + q * nr;
        const int cols = std::min(nr, col_hi - j0);
        T* dst = b_pack + static_cast<long>(q) * kc_eff * nr;
        if (trans == Trans::kNo) {
          // op(A)(j, p) = a[j*lda + p]: transposed read of A.
          detail::pack_b_trans<T>(a + static_cast<long>(j0) * lda + pc, lda,
                                  kc_eff, cols, nr, dst);
        } else {
          // op(A)(j, p) = a[p*lda + j]: straight read of A.
          detail::pack_b<T>(a + static_cast<long>(pc) * lda + j0, lda, kc_eff,
                            cols, nr, dst);
        }
      }

      for (int ic = row_lo; ic < row_hi; ic += mc) {
        const int mc_eff = std::min(mc, row_hi - ic);
        // Skip A blocks whose entire row range lies outside the triangle
        // relative to this column block.
        if (uplo == Uplo::kLower && jc > ic + mc_eff - 1) continue;
        if (uplo == Uplo::kUpper && jc + nc_eff - 1 < ic) continue;

        if (trans == Trans::kNo) {
          detail::pack_a<T>(a + static_cast<long>(ic) * lda + pc, lda, mc_eff,
                            kc_eff, mr, a_pack);
        } else {
          detail::pack_a_trans<T>(a + static_cast<long>(pc) * lda + ic, lda,
                                  mc_eff, kc_eff, mr, a_pack);
        }

        for (int jr = 0; jr < nc_eff; jr += nr) {
          const int gj = jc + jr;
          const int cols = std::min(nr, nc_eff - jr);
          const T* b_panel =
              b_pack + static_cast<long>(jr / nr) * kc_eff * nr;
          for (int ir = 0; ir < mc_eff; ir += mr) {
            const int gi = ic + ir;
            const int rows = std::min(mr, mc_eff - ir);

            bool outside, inside;
            if (uplo == Uplo::kLower) {
              outside = gj > gi + rows - 1;     // min col beyond max row
              inside = gj + cols - 1 <= gi;     // max col within min row
            } else {
              outside = gj + cols - 1 < gi;     // max col before min row
              inside = gj >= gi + rows - 1;     // min col at/after max row
            }
            if (outside) continue;

            const T* a_panel =
                a_pack + static_cast<long>(ir / mr) * kc_eff * mr;
            T* c_tile = c + static_cast<long>(gi) * ldc + gj;
            if (inside) {
              if (rows == mr && cols == nr) {
                ks.full(kc_eff, alpha, a_panel, b_panel, c_tile, ldc);
              } else {
                ks.edge(kc_eff, alpha, a_panel, b_panel, c_tile, ldc, rows,
                        cols);
              }
            } else {
              // Diagonal-crossing tile: compute the full rectangle into a
              // zeroed scratch tile, then add back only the triangle part.
              std::fill_n(tile, static_cast<std::size_t>(rows) * nr, T(0));
              ks.edge(kc_eff, alpha, a_panel, b_panel, tile, nr, rows, cols);
              for (int i = 0; i < rows; ++i) {
                const int ci = gi + i;
                T* crow = c + static_cast<long>(ci) * ldc;
                for (int j = 0; j < cols; ++j) {
                  const int cj = gj + j;
                  const bool in_triangle =
                      uplo == Uplo::kLower ? cj <= ci : cj >= ci;
                  if (in_triangle) crow[cj] += tile[i * nr + j];
                }
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

template <typename T>
void syrk(Uplo uplo, Trans trans, int n, int k, T alpha, const T* a, int lda,
          T beta, T* c, int ldc, int nthreads, const GemmTuning& tuning) {
  if (n < 0 || k < 0) throw std::invalid_argument("syrk: negative dimension");
  const int a_cols = trans == Trans::kNo ? k : n;
  if (lda < std::max(1, a_cols) || ldc < std::max(1, n)) {
    throw std::invalid_argument("syrk: leading dimension too small");
  }
  if (n == 0) return;

  ThreadPool& pool = ThreadPool::global();
  const std::size_t p = detail::resolve_threads(nthreads, n);

  if (k == 0 || alpha == T(0)) {
    // Pure beta pass over the triangle (ahead of any tuning resolution, as
    // in every level-3 driver — see level3_common.h).
    pool.parallel_region(p, [&](std::size_t tid, std::size_t nt) {
      const int lo = triangle_split(uplo, n, tid, nt);
      const int hi = triangle_split(uplo, n, tid + 1, nt);
      scale_triangle_rows(uplo, n, beta, c, ldc, lo, hi);
    });
    return;
  }

  const kernels::KernelSet<T>& ks = kernels::kernel_set<T>(tuning.variant);
  // The diagonal-tile scratch below is sized kMaxMr x kMaxNr on the stack; a
  // future kernel outgrowing those bounds must fail loudly, not overflow.
  if (ks.mr > kernels::kMaxMr || ks.nr > kernels::kMaxNr) {
    throw std::logic_error("syrk: kernel geometry exceeds kMaxMr/kMaxNr");
  }
  const auto [mc, kc, nc] = detail::block_geometry(ks, tuning);

  // Each thread owns disjoint triangle rows, so the beta pass and the update
  // need no cross-thread synchronisation.
  pool.parallel_region(p, [&](std::size_t tid, std::size_t nt) {
    const int lo = triangle_split(uplo, n, tid, nt);
    const int hi = triangle_split(uplo, n, tid + 1, nt);
    scale_triangle_rows(uplo, n, beta, c, ldc, lo, hi);
    syrk_rows_blocked(ks, uplo, trans, n, k, alpha, a, lda, c, ldc, lo, hi,
                      mc, kc, nc);
  });
}

void ssyrk(Uplo uplo, Trans trans, int n, int k, float alpha, const float* a,
           int lda, float beta, float* c, int ldc, int nthreads) {
  syrk<float>(uplo, trans, n, k, alpha, a, lda, beta, c, ldc, nthreads);
}

void dsyrk(Uplo uplo, Trans trans, int n, int k, double alpha,
           const double* a, int lda, double beta, double* c, int ldc,
           int nthreads) {
  syrk<double>(uplo, trans, n, k, alpha, a, lda, beta, c, ldc, nthreads);
}

template <typename T>
void reference_syrk(Uplo uplo, Trans trans, int n, int k, T alpha, const T* a,
                    int lda, T beta, T* c, int ldc) {
  for (int i = 0; i < n; ++i) {
    const int j_lo = uplo == Uplo::kLower ? 0 : i;
    const int j_hi = uplo == Uplo::kLower ? i + 1 : n;
    for (int j = j_lo; j < j_hi; ++j) {
      T acc = T(0);
      for (int p = 0; p < k; ++p) {
        acc += op_a(a, lda, trans, i, p) * op_a(a, lda, trans, j, p);
      }
      T& out = c[static_cast<long>(i) * ldc + j];
      out = alpha * acc + (beta == T(0) ? T(0) : beta * out);
    }
  }
}

template void syrk<float>(Uplo, Trans, int, int, float, const float*, int,
                          float, float*, int, int, const GemmTuning&);
template void syrk<double>(Uplo, Trans, int, int, double, const double*, int,
                           double, double*, int, int, const GemmTuning&);
template void reference_syrk<float>(Uplo, Trans, int, int, float,
                                    const float*, int, float, float*, int);
template void reference_syrk<double>(Uplo, Trans, int, int, double,
                                     const double*, int, double, double*,
                                     int);

}  // namespace adsala::blas
