#include "blas/syrk.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/thread_pool.h"

namespace adsala::blas {

namespace {

/// Logical element of op(A): row i, depth p.
template <typename T>
inline T op_a(const T* a, long lda, Trans trans, int i, int p) {
  return trans == Trans::kNo ? a[i * lda + p] : a[p * lda + i];
}

/// Computes rows [row_lo, row_hi) of the requested triangle of C.
/// The inner j loop runs over the triangle columns for that row; the k loop
/// is blocked for locality and vectorises.
template <typename T>
void syrk_rows(Uplo uplo, Trans trans, int n, int k, T alpha, const T* a,
               int lda, T beta, T* c, int ldc, int row_lo, int row_hi) {
  constexpr int kBlock = 256;
  for (int i = row_lo; i < row_hi; ++i) {
    const int j_lo = uplo == Uplo::kLower ? 0 : i;
    const int j_hi = uplo == Uplo::kLower ? i + 1 : n;
    T* crow = c + static_cast<long>(i) * ldc;
    for (int j = j_lo; j < j_hi; ++j) {
      crow[j] = beta == T(0) ? T(0) : beta * crow[j];
    }
    for (int p0 = 0; p0 < k; p0 += kBlock) {
      const int p1 = std::min(k, p0 + kBlock);
      for (int j = j_lo; j < j_hi; ++j) {
        T acc = T(0);
        if (trans == Trans::kNo) {
          const T* ai = a + static_cast<long>(i) * lda;
          const T* aj = a + static_cast<long>(j) * lda;
          for (int p = p0; p < p1; ++p) acc += ai[p] * aj[p];
        } else {
          for (int p = p0; p < p1; ++p) {
            acc += op_a(a, lda, trans, i, p) * op_a(a, lda, trans, j, p);
          }
        }
        crow[j] += alpha * acc;
      }
    }
  }
}

/// Balanced row partition of a triangle: thread t's range carries ~1/p of
/// the triangle's area, not of the rows (row i of a lower triangle costs
/// i+1 column updates).
int triangle_split(Uplo uplo, int n, std::size_t t, std::size_t p) {
  const double frac = static_cast<double>(t) / static_cast<double>(p);
  if (uplo == Uplo::kLower) {
    // rows [0, r) hold fraction (r/n)^2 of the area.
    return static_cast<int>(std::floor(n * std::sqrt(frac)));
  }
  // upper triangle: rows [0, r) hold 1 - ((n-r)/n)^2 of the area.
  return static_cast<int>(std::floor(n * (1.0 - std::sqrt(1.0 - frac))));
}

}  // namespace

template <typename T>
void syrk(Uplo uplo, Trans trans, int n, int k, T alpha, const T* a, int lda,
          T beta, T* c, int ldc, int nthreads) {
  if (n < 0 || k < 0) throw std::invalid_argument("syrk: negative dimension");
  const int a_cols = trans == Trans::kNo ? k : n;
  if (lda < std::max(1, a_cols) || ldc < std::max(1, n)) {
    throw std::invalid_argument("syrk: leading dimension too small");
  }
  if (n == 0) return;

  ThreadPool& pool = ThreadPool::global();
  std::size_t p = nthreads <= 0 ? pool.max_threads()
                                : static_cast<std::size_t>(nthreads);
  p = std::clamp<std::size_t>(p, 1, pool.max_threads());
  p = std::min<std::size_t>(p, static_cast<std::size_t>(n));

  if (k == 0 || alpha == T(0)) {
    // Pure beta pass over the triangle.
    pool.parallel_region(p, [&](std::size_t tid, std::size_t nt) {
      const int lo = triangle_split(uplo, n, tid, nt);
      const int hi = triangle_split(uplo, n, tid + 1, nt);
      for (int i = lo; i < hi; ++i) {
        const int j_lo = uplo == Uplo::kLower ? 0 : i;
        const int j_hi = uplo == Uplo::kLower ? i + 1 : n;
        T* crow = c + static_cast<long>(i) * ldc;
        for (int j = j_lo; j < j_hi; ++j) {
          crow[j] = beta == T(0) ? T(0) : beta * crow[j];
        }
      }
    });
    return;
  }

  pool.parallel_region(p, [&](std::size_t tid, std::size_t nt) {
    const int lo = triangle_split(uplo, n, tid, nt);
    const int hi = triangle_split(uplo, n, tid + 1, nt);
    syrk_rows(uplo, trans, n, k, alpha, a, lda, beta, c, ldc, lo, hi);
  });
}

void ssyrk(Uplo uplo, Trans trans, int n, int k, float alpha, const float* a,
           int lda, float beta, float* c, int ldc, int nthreads) {
  syrk<float>(uplo, trans, n, k, alpha, a, lda, beta, c, ldc, nthreads);
}

void dsyrk(Uplo uplo, Trans trans, int n, int k, double alpha,
           const double* a, int lda, double beta, double* c, int ldc,
           int nthreads) {
  syrk<double>(uplo, trans, n, k, alpha, a, lda, beta, c, ldc, nthreads);
}

template <typename T>
void reference_syrk(Uplo uplo, Trans trans, int n, int k, T alpha, const T* a,
                    int lda, T beta, T* c, int ldc) {
  for (int i = 0; i < n; ++i) {
    const int j_lo = uplo == Uplo::kLower ? 0 : i;
    const int j_hi = uplo == Uplo::kLower ? i + 1 : n;
    for (int j = j_lo; j < j_hi; ++j) {
      T acc = T(0);
      for (int p = 0; p < k; ++p) {
        acc += op_a(a, lda, trans, i, p) * op_a(a, lda, trans, j, p);
      }
      T& out = c[static_cast<long>(i) * ldc + j];
      out = alpha * acc + (beta == T(0) ? T(0) : beta * out);
    }
  }
}

template void syrk<float>(Uplo, Trans, int, int, float, const float*, int,
                          float, float*, int, int);
template void syrk<double>(Uplo, Trans, int, int, double, const double*, int,
                           double, double*, int, int);
template void reference_syrk<float>(Uplo, Trans, int, int, float,
                                    const float*, int, float, float*, int);
template void reference_syrk<double>(Uplo, Trans, int, int, double,
                                     const double*, int, double, double*,
                                     int);

}  // namespace adsala::blas
