// Triangular matrix-matrix multiply — fifth member of the served level-3
// family, and the registry's proof-of-architecture op: landing it touched
// only this kernel file, one blas/op.h table row, and one OpTraits row in
// core/op_registry.cpp.
//
//   B <- alpha * op(A) * B        (left-side product, in place)
//
// with op(A) = A or A^T per `trans`, A an n x n triangular matrix (`uplo`
// names the stored triangle, `diag` an implicit unit diagonal), and B an
// n x m block updated in place. Row-major; ld* is the row stride.
//
// The implementation is the SYMM macro-loop over a *triangular-expansion*
// packing (pack_a_tri in blas/pack.h): every packed A panel reads the stored
// triangle and materialises the zero half only inside the micro-panels, so
// the runtime-dispatched micro-kernel runs the identical inner loop as GEMM.
// Because the product is in place, B is copied to a workspace first and the
// macro-loop reads the copy; slabs that lie entirely outside a row block's
// triangle extent are skipped, so only ~half the equivalent GEMM's
// micro-tiles execute.
#pragma once

#include "blas/gemm.h"

namespace adsala::blas {

/// Multi-threaded blocked left-side TRMM, in place over B. nthreads <= 0
/// selects the pool maximum. Throws std::invalid_argument on negative
/// dimensions or bad strides.
template <typename T>
void trmm(Uplo uplo, Trans trans, Diag diag, int n, int m, T alpha,
          const T* a, int lda, T* b, int ldb, int nthreads = 0,
          const GemmTuning& tuning = {});

void strmm(Uplo uplo, Trans trans, Diag diag, int n, int m, float alpha,
           const float* a, int lda, float* b, int ldb, int nthreads = 0);
void dtrmm(Uplo uplo, Trans trans, Diag diag, int n, int m, double alpha,
           const double* a, int lda, double* b, int ldb, int nthreads = 0);

/// Naive triple loop reading A through the stored triangle; the correctness
/// oracle in tests.
template <typename T>
void reference_trmm(Uplo uplo, Trans trans, Diag diag, int n, int m, T alpha,
                    const T* a, int lda, T* b, int ldb);

/// FLOP count: n*n*m multiply-adds over the triangle (half the equivalent
/// (n, n, m) GEMM's 2*n*n*m).
inline double trmm_flops(double n, double m) { return n * n * m; }

}  // namespace adsala::blas
