#include "blas/gemm.h"

#include <algorithm>
#include <stdexcept>

#include "blas/kernels/dispatch.h"
#include "blas/level3_common.h"
#include "blas/pack.h"
#include "common/barrier.h"
#include "common/pack_arena.h"
#include "common/thread_pool.h"

namespace adsala::blas {

namespace {

void validate(Trans trans_a, Trans trans_b, int m, int n, int k, int lda,
              int ldb, int ldc) {
  if (m < 0 || n < 0 || k < 0) {
    throw std::invalid_argument("gemm: negative dimension");
  }
  const int a_cols = trans_a == Trans::kNo ? k : m;
  const int b_cols = trans_b == Trans::kNo ? n : k;
  if (lda < std::max(1, a_cols) || ldb < std::max(1, b_cols) ||
      ldc < std::max(1, n)) {
    throw std::invalid_argument("gemm: leading dimension too small");
  }
}

/// Inner macro-kernel: multiplies one packed A block (mc x kc) by the packed
/// B block (kc x nc_eff) into C, tiling with the dispatched kernel geometry.
template <typename T>
void macro_kernel(const kernels::KernelSet<T>& ks, int mc, int nc_eff, int kc,
                  T alpha, const T* a_pack, const T* b_pack, T* c, int ldc) {
  const int mr = ks.mr;
  const int nr = ks.nr;
  for (int jr = 0; jr < nc_eff; jr += nr) {
    const int cols = std::min(nr, nc_eff - jr);
    const T* b_panel = b_pack + static_cast<long>(jr / nr) * kc * nr;
    for (int ir = 0; ir < mc; ir += mr) {
      const int rows = std::min(mr, mc - ir);
      const T* a_panel = a_pack + static_cast<long>(ir / mr) * kc * mr;
      T* c_tile = c + static_cast<long>(ir) * ldc + jr;
      if (rows == mr && cols == nr) {
        ks.full(kc, alpha, a_panel, b_panel, c_tile, ldc);
      } else {
        ks.edge(kc, alpha, a_panel, b_panel, c_tile, ldc, rows, cols);
      }
    }
  }
}

}  // namespace

template <typename T>
void gemm(Trans trans_a, Trans trans_b, int m, int n, int k, T alpha,
          const T* a, int lda, const T* b, int ldb, T beta, T* c, int ldc,
          int nthreads, const GemmTuning& tuning) {
  validate(trans_a, trans_b, m, n, k, lda, ldb, ldc);
  if (m == 0 || n == 0) return;

  ThreadPool& pool = ThreadPool::global();
  const std::size_t p = detail::resolve_threads(nthreads);

  // Degenerate products reduce to the beta pass (deliberately ahead of any
  // tuning resolution: a beta-only call must not depend on blocking fields).
  if (k == 0 || alpha == T(0)) {
    detail::scale_rows_pass(p, m, n, beta, c, static_cast<long>(ldc));
    return;
  }

  // Micro-kernel geometry is a runtime property of the dispatched set.
  const kernels::KernelSet<T>& ks = kernels::kernel_set<T>(tuning.variant);
  const int mr = ks.mr;
  const int nr = ks.nr;
  const auto [mc, kc, nc] = detail::block_geometry(ks, tuning);

  // Static row partition: contiguous runs of MR-row micro-panels per thread.
  const int row_panels = (m + mr - 1) / mr;
  const int panels_per_thread =
      (row_panels + static_cast<int>(p) - 1) / static_cast<int>(p);

  // Packing scratch comes from the process-wide arena: the shared packed-B
  // block (every thread reads it, so it is packed cooperatively and guarded
  // by barriers — this shared copy + barrier is the data-copy / sync cost
  // the paper's Table VII profiles) is carved here by the orchestrating
  // thread, each participant's A slab inside the region. A serial call that
  // is already inside someone else's region keeps B in its own thread slab
  // instead, so two degraded-serial calls can never alias the shared slab.
  const std::size_t b_pack_elems = detail::b_panel_elems(ks, nc, n, kc);
  const std::size_t a_pack_elems = detail::a_panel_elems(ks, mc, kc);
  const bool serial = p == 1;  // includes nested-region degradation
  T* b_pack_ptr = nullptr;
  std::shared_ptr<AlignedBuffer<T>> b_shared_fallback;  // arena-OOM degrade
  if (!serial) {
    b_pack_ptr =
        detail::shared_slab_or_fallback<T>(b_pack_elems, b_shared_fallback);
  }

  SpinBarrier barrier(p);

  pool.parallel_region(p, [&](std::size_t tid, std::size_t nt) {
    const int t = static_cast<int>(tid);
    const int row_lo = std::min(m, t * panels_per_thread * mr);
    const int row_hi = std::min(m, (t + 1) * panels_per_thread * mr);

    detail::scale_rows_range(c, static_cast<long>(ldc), row_lo, row_hi, n,
                             beta);
    if (nt > 1) barrier.arrive_and_wait();

    // One carve per participant: the A panels, plus (serial case) B behind
    // them in the same thread slab. Both paths degrade to a per-call buffer
    // when arena growth throws (the carve's fallback member keeps it alive).
    detail::PanelCarve<T> carve;
    if (serial) {
      carve = detail::carve_private_panels<T>(ks, mc, kc, nc, n);
    } else {
      carve.a_pack =
          detail::thread_slab_or_fallback<T>(a_pack_elems, carve.fallback);
      carve.b_pack = b_pack_ptr;
    }
    T* a_pack = carve.a_pack;
    T* b_pack = carve.b_pack;

    for (int jc = 0; jc < n; jc += nc) {
      const int nc_eff = std::min(nc, n - jc);
      const int nc_panels = (nc_eff + nr - 1) / nr;
      for (int pc = 0; pc < k; pc += kc) {
        const int kc_eff = std::min(kc, k - pc);

        // Cooperative B packing: NR-column panels split across threads.
        const int panels_chunk =
            (nc_panels + static_cast<int>(nt) - 1) / static_cast<int>(nt);
        const int bp_lo = std::min(nc_panels, t * panels_chunk);
        const int bp_hi = std::min(nc_panels, bp_lo + panels_chunk);
        for (int q = bp_lo; q < bp_hi; ++q) {
          const int j0 = jc + q * nr;
          const int cols = std::min(nr, n - j0);
          T* dst = b_pack + static_cast<long>(q) * kc_eff * nr;
          if (trans_b == Trans::kNo) {
            detail::pack_b<T>(b + static_cast<long>(pc) * ldb + j0, ldb,
                              kc_eff, cols, nr, dst);
          } else {
            detail::pack_b_trans<T>(b + static_cast<long>(j0) * ldb + pc, ldb,
                                    kc_eff, cols, nr, dst);
          }
        }
        if (nt > 1) barrier.arrive_and_wait();

        for (int ic = row_lo; ic < row_hi; ic += mc) {
          const int mc_eff = std::min(mc, row_hi - ic);
          if (trans_a == Trans::kNo) {
            detail::pack_a<T>(a + static_cast<long>(ic) * lda + pc, lda,
                              mc_eff, kc_eff, mr, a_pack);
          } else {
            detail::pack_a_trans<T>(a + static_cast<long>(pc) * lda + ic, lda,
                                    mc_eff, kc_eff, mr, a_pack);
          }
          macro_kernel<T>(ks, mc_eff, nc_eff, kc_eff, alpha, a_pack, b_pack,
                          c + static_cast<long>(ic) * ldc + jc, ldc);
        }
        // B block is re-packed next iteration; writers must not race readers.
        if (nt > 1) barrier.arrive_and_wait();
      }
    }
  });
}

void sgemm(Trans trans_a, Trans trans_b, int m, int n, int k, float alpha,
           const float* a, int lda, const float* b, int ldb, float beta,
           float* c, int ldc, int nthreads) {
  gemm<float>(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
              nthreads);
}

void dgemm(Trans trans_a, Trans trans_b, int m, int n, int k, double alpha,
           const double* a, int lda, const double* b, int ldb, double beta,
           double* c, int ldc, int nthreads) {
  gemm<double>(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
               nthreads);
}

template <typename T>
void reference_gemm(Trans trans_a, Trans trans_b, int m, int n, int k, T alpha,
                    const T* a, int lda, const T* b, int ldb, T beta, T* c,
                    int ldc) {
  validate(trans_a, trans_b, m, n, k, lda, ldb, ldc);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      T acc = T(0);
      for (int p = 0; p < k; ++p) {
        const T av = trans_a == Trans::kNo ? a[i * static_cast<long>(lda) + p]
                                           : a[p * static_cast<long>(lda) + i];
        const T bv = trans_b == Trans::kNo ? b[p * static_cast<long>(ldb) + j]
                                           : b[j * static_cast<long>(ldb) + p];
        acc += av * bv;
      }
      T& out = c[i * static_cast<long>(ldc) + j];
      out = alpha * acc + (beta == T(0) ? T(0) : beta * out);
    }
  }
}

template void gemm<float>(Trans, Trans, int, int, int, float, const float*,
                          int, const float*, int, float, float*, int, int,
                          const GemmTuning&);
template void gemm<double>(Trans, Trans, int, int, int, double, const double*,
                           int, const double*, int, double, double*, int, int,
                           const GemmTuning&);
template void reference_gemm<float>(Trans, Trans, int, int, int, float,
                                    const float*, int, const float*, int,
                                    float, float*, int);
template void reference_gemm<double>(Trans, Trans, int, int, int, double,
                                     const double*, int, const double*, int,
                                     double, double*, int);

}  // namespace adsala::blas
