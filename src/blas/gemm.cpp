#include "blas/gemm.h"

#include <algorithm>
#include <stdexcept>

#include "blas/kernels/dispatch.h"
#include "blas/level3_common.h"
#include "blas/pack.h"
#include "blas/pack_pipeline.h"
#include "common/pack_arena.h"
#include "common/thread_pool.h"

namespace adsala::blas {

namespace {

void validate(Trans trans_a, Trans trans_b, int m, int n, int k, int lda,
              int ldb, int ldc) {
  if (m < 0 || n < 0 || k < 0) {
    throw std::invalid_argument("gemm: negative dimension");
  }
  const int a_cols = trans_a == Trans::kNo ? k : m;
  const int b_cols = trans_b == Trans::kNo ? n : k;
  if (lda < std::max(1, a_cols) || ldb < std::max(1, b_cols) ||
      ldc < std::max(1, n)) {
    throw std::invalid_argument("gemm: leading dimension too small");
  }
}

/// Inner macro-kernel: multiplies one packed A block (mc x kc) by the packed
/// B block (kc x nc_eff) into C, tiling with the dispatched kernel geometry.
template <typename T>
void macro_kernel(const kernels::KernelSet<T>& ks, int mc, int nc_eff, int kc,
                  T alpha, const T* a_pack, const T* b_pack, T* c, int ldc) {
  const int mr = ks.mr;
  const int nr = ks.nr;
  for (int jr = 0; jr < nc_eff; jr += nr) {
    const int cols = std::min(nr, nc_eff - jr);
    const T* b_panel = b_pack + static_cast<long>(jr / nr) * kc * nr;
    for (int ir = 0; ir < mc; ir += mr) {
      const int rows = std::min(mr, mc - ir);
      const T* a_panel = a_pack + static_cast<long>(ir / mr) * kc * mr;
      T* c_tile = c + static_cast<long>(ir) * ldc + jr;
      if (rows == mr && cols == nr) {
        ks.full(kc, alpha, a_panel, b_panel, c_tile, ldc);
      } else {
        ks.edge(kc, alpha, a_panel, b_panel, c_tile, ldc, rows, cols);
      }
    }
  }
}

/// The serial macro-loop (p == 1, including nested-region degradation):
/// the classic single-buffer schedule with both panels carved from the
/// caller's thread slab. Kept alongside the pipelined parallel path so a
/// degraded call never touches the shared slab (two degraded-serial calls
/// could otherwise alias it). Pack/compute time still feeds the pipeline
/// stats when timing is enabled, so BM_PackComputeOverlap's pack-fraction
/// counter is meaningful at every thread count.
template <typename T>
void gemm_serial(const kernels::KernelSet<T>& ks, Trans trans_a,
                 Trans trans_b, int m, int n, int k, T alpha, const T* a,
                 int lda, const T* b, int ldb, T beta, T* c, int ldc,
                 const detail::BlockGeom& g) {
  const int mr = ks.mr;
  const int nr = ks.nr;
  detail::scale_rows_range(c, static_cast<long>(ldc), 0, m, n, beta);

  const auto carve = detail::carve_private_panels<T>(ks, g.mc, g.kc, g.nc, n);
  T* a_pack = carve.a_pack;
  T* b_pack = carve.b_pack;

  detail::PipelineStats& stats = detail::pipeline_stats();
  const bool timed = stats.timing_enabled.load(std::memory_order_relaxed);
  std::uint64_t pack_ns = 0, compute_ns = 0;

  for (int jc = 0; jc < n; jc += g.nc) {
    const int nc_eff = std::min(g.nc, n - jc);
    const int nc_panels = (nc_eff + nr - 1) / nr;
    for (int pc = 0; pc < k; pc += g.kc) {
      const int kc_eff = std::min(g.kc, k - pc);

      std::uint64_t t0 = timed ? detail::stats_now_ns() : 0;
      for (int q = 0; q < nc_panels; ++q) {
        const int j0 = jc + q * nr;
        const int cols = std::min(nr, n - j0);
        detail::pack_b_chunk<T>(trans_b == Trans::kYes, b, ldb, pc, j0,
                                kc_eff, cols, nr,
                                b_pack + static_cast<long>(q) * kc_eff * nr);
      }
      if (timed) {
        const std::uint64_t t1 = detail::stats_now_ns();
        pack_ns += t1 - t0;
        t0 = t1;
      }

      for (int ic = 0; ic < m; ic += g.mc) {
        const int mc_eff = std::min(g.mc, m - ic);
        if (trans_a == Trans::kNo) {
          detail::pack_a<T>(a + static_cast<long>(ic) * lda + pc, lda, mc_eff,
                            kc_eff, mr, a_pack);
        } else {
          detail::pack_a_trans<T>(a + static_cast<long>(pc) * lda + ic, lda,
                                  mc_eff, kc_eff, mr, a_pack);
        }
        macro_kernel<T>(ks, mc_eff, nc_eff, kc_eff, alpha, a_pack, b_pack,
                        c + static_cast<long>(ic) * ldc + jc, ldc);
      }
      if (timed) compute_ns += detail::stats_now_ns() - t0;
    }
  }
  if (timed) {
    stats.pack_ns.fetch_add(pack_ns, std::memory_order_relaxed);
    stats.compute_ns.fetch_add(compute_ns, std::memory_order_relaxed);
  }
}

}  // namespace

template <typename T>
void gemm(Trans trans_a, Trans trans_b, int m, int n, int k, T alpha,
          const T* a, int lda, const T* b, int ldb, T beta, T* c, int ldc,
          int nthreads, const GemmTuning& tuning) {
  validate(trans_a, trans_b, m, n, k, lda, ldb, ldc);
  if (m == 0 || n == 0) return;

  ThreadPool& pool = ThreadPool::global();
  const std::size_t p = detail::resolve_threads(nthreads);

  // Degenerate products reduce to the beta pass (deliberately ahead of any
  // tuning resolution: a beta-only call must not depend on blocking fields).
  if (k == 0 || alpha == T(0)) {
    detail::scale_rows_pass(p, m, n, beta, c, static_cast<long>(ldc));
    return;
  }

  // Micro-kernel geometry is a runtime property of the dispatched set.
  const kernels::KernelSet<T>& ks = kernels::kernel_set<T>(tuning.variant);
  const detail::BlockGeom g = detail::block_geometry(ks, tuning);

  if (p == 1) {  // includes nested-region degradation
    gemm_serial<T>(ks, trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta,
                   c, ldc, g);
    return;
  }

  // Parallel path: the pack pipeline. The shared packed-B block becomes a
  // ping/pong pair carved from the arena's shared slab by the orchestrating
  // thread; while the threads compute kc-panel i out of one half, the
  // cooperative pack of panel i+1 proceeds into the other. MC-row tiles are
  // claimed through a stealable deck instead of a static row split, so
  // ragged shapes and packing skew no longer leave threads idle — the two
  // SpinBarrier round-trips per panel of the old schedule collapse into the
  // pipeline's single drain point (see blas/pack_pipeline.h).
  const std::size_t b_pack_elems = detail::b_panel_elems(ks, g.nc, n, g.kc);
  const std::size_t a_pack_elems = detail::a_panel_elems(ks, g.mc, g.kc);
  detail::SharedPair<T> pair = detail::carve_shared_pair<T>(b_pack_elems);

  const int row_tiles = (m + g.mc - 1) / g.mc;
  detail::PackPipeline pipe(p);
  detail::TileDeck deck(p, row_tiles);

  pool.parallel_region(p, [&](std::size_t tid, std::size_t nt) {
    // One bare-A carve per participant; degrades to a per-call buffer when
    // arena growth throws (the fallback member keeps it alive).
    std::shared_ptr<AlignedBuffer<T>> a_fallback;
    T* a_pack = detail::thread_slab_or_fallback<T>(a_pack_elems, a_fallback);

    detail::pipelined_macro_loop<T>(
        tid, nt, m, n, k, g, ks.nr, pair.bufs, pipe, deck,
        // Cooperative B pack: one NR-column micro-panel of the kc block.
        [&](int jc, int pc, int kc_eff, int q, T* dst) {
          const int j0 = jc + q * ks.nr;
          const int cols = std::min(ks.nr, n - j0);
          detail::pack_b_chunk<T>(trans_b == Trans::kYes, b, ldb, pc, j0,
                                  kc_eff, cols, ks.nr, dst);
        },
        // One MC-row tile: fold the beta scale into the jc-block's first
        // panel (first-touch, so no pre-scale barrier orders against
        // stolen tiles), pack this tile's A block, run the macro-kernel.
        [&](int jc, int pc, int nc_eff, int kc_eff, bool first_of_jc, int ic,
            int mc_eff, const T* b_buf) {
          if (first_of_jc) {
            detail::scale_rows_range(c + jc, static_cast<long>(ldc), ic,
                                     ic + mc_eff, nc_eff, beta);
          }
          if (trans_a == Trans::kNo) {
            detail::pack_a<T>(a + static_cast<long>(ic) * lda + pc, lda,
                              mc_eff, kc_eff, ks.mr, a_pack);
          } else {
            detail::pack_a_trans<T>(a + static_cast<long>(pc) * lda + ic, lda,
                                    mc_eff, kc_eff, ks.mr, a_pack);
          }
          macro_kernel<T>(ks, mc_eff, nc_eff, kc_eff, alpha, a_pack, b_buf,
                          c + static_cast<long>(ic) * ldc + jc, ldc);
        });
  });
}

void sgemm(Trans trans_a, Trans trans_b, int m, int n, int k, float alpha,
           const float* a, int lda, const float* b, int ldb, float beta,
           float* c, int ldc, int nthreads) {
  gemm<float>(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
              nthreads);
}

void dgemm(Trans trans_a, Trans trans_b, int m, int n, int k, double alpha,
           const double* a, int lda, const double* b, int ldb, double beta,
           double* c, int ldc, int nthreads) {
  gemm<double>(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
               nthreads);
}

template <typename T>
void reference_gemm(Trans trans_a, Trans trans_b, int m, int n, int k, T alpha,
                    const T* a, int lda, const T* b, int ldb, T beta, T* c,
                    int ldc) {
  validate(trans_a, trans_b, m, n, k, lda, ldb, ldc);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      T acc = T(0);
      for (int p = 0; p < k; ++p) {
        const T av = trans_a == Trans::kNo ? a[i * static_cast<long>(lda) + p]
                                           : a[p * static_cast<long>(lda) + i];
        const T bv = trans_b == Trans::kNo ? b[p * static_cast<long>(ldb) + j]
                                           : b[j * static_cast<long>(ldb) + p];
        acc += av * bv;
      }
      T& out = c[i * static_cast<long>(ldc) + j];
      out = alpha * acc + (beta == T(0) ? T(0) : beta * out);
    }
  }
}

template void gemm<float>(Trans, Trans, int, int, int, float, const float*,
                          int, const float*, int, float, float*, int, int,
                          const GemmTuning&);
template void gemm<double>(Trans, Trans, int, int, int, double, const double*,
                           int, const double*, int, double, double*, int, int,
                           const GemmTuning&);
template void reference_gemm<float>(Trans, Trans, int, int, int, float,
                                    const float*, int, const float*, int,
                                    float, float*, int);
template void reference_gemm<double>(Trans, Trans, int, int, int, double,
                                     const double*, int, const double*, int,
                                     double, double*, int);

}  // namespace adsala::blas
