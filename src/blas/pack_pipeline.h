// Compute/pack overlap primitives for the level-3 macro-loops.
//
// The pre-pipeline GEMM driver packed each KC x NC B panel behind a full
// SpinBarrier, computed, then barriered again before re-packing — two full
// round-trips per kc iteration, with pack time serialised against compute.
// These primitives replace that schedule with a depth-2 (ping/pong) pack
// pipeline plus a stealable row-tile partition:
//
//   PackPipeline — per-buffer generation ("epoch") counters over a paired
//     B slab. While the threads compute kc-panel i out of buffer i%2, the
//     cooperative pack of panel i+1 proceeds into buffer (i+1)%2; the
//     steady-state loop has ONE synchronisation point per panel (the
//     previous panel draining) instead of two barriers. Waits are
//     spin-then-park, consistent with the ThreadPool's fork/join.
//
//   TileDeck — per-thread deques of MC-row tiles with an atomic cursor
//     each; a thread that drains its own deque steals from the next
//     victim's. Ragged shapes (m not a multiple of nt*mr) and the skew a
//     thread picks up from packing duty no longer leave threads idle at a
//     barrier: the tail tiles migrate to whoever is free.
//
// Epoch discipline (the part TSan gates in tests/test_pack_overlap.cpp):
// panels complete strictly in order, so one monotonic `panels_done` counter
// both gates packing (panel j may be packed once panel j-2 — the previous
// occupant of its buffer — is fully consumed: panels_done >= j-1) and
// gates compute (panel i may be computed once panel i-1 is fully consumed:
// panels_done >= i, because two in-flight panels would accumulate into the
// same C tiles concurrently). Per-buffer `ready` epochs count completed
// cooperative packs; the per-occupancy contribution counters are reset by
// their last incrementer strictly before the release bump the next users
// acquire, so reuse across occupancies is ordered, never racy.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace adsala::blas::detail {

/// Process-wide counters for the pipelined macro-loops, surfaced as bench
/// counters (BM_PackComputeOverlap) and test probes. Steal/tile/panel
/// counts are always maintained (one relaxed add per event, off the inner
/// loops); the pack/compute nanosecond split is only accumulated while
/// `timing_enabled` is set, so serving calls never pay two clock reads per
/// tile.
struct PipelineStats {
  std::atomic<std::uint64_t> panels{0};     ///< kc-panels fully packed
  std::atomic<std::uint64_t> tiles{0};      ///< MC-row tiles computed
  std::atomic<std::uint64_t> steals{0};     ///< tiles claimed from a victim
  std::atomic<std::uint64_t> pack_ns{0};    ///< time packing (timing only)
  std::atomic<std::uint64_t> compute_ns{0}; ///< time computing (timing only)
  std::atomic<bool> timing_enabled{false};

  void reset() {
    panels.store(0, std::memory_order_relaxed);
    tiles.store(0, std::memory_order_relaxed);
    steals.store(0, std::memory_order_relaxed);
    pack_ns.store(0, std::memory_order_relaxed);
    compute_ns.store(0, std::memory_order_relaxed);
  }
};

inline PipelineStats& pipeline_stats() {
  static PipelineStats stats;
  return stats;
}

/// Monotonic clock read for the stats' pack/compute split.
inline std::uint64_t stats_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Ping/pong pack-pipeline state for ONE op call, shared by every
/// participant of its parallel region (stack-allocated by the orchestrator;
/// the region's join fences its destruction).
class PackPipeline {
 public:
  explicit PackPipeline(std::size_t participants)
      : nt_(static_cast<int>(participants)) {}

  PackPipeline(const PackPipeline&) = delete;
  PackPipeline& operator=(const PackPipeline&) = delete;

  /// Blocks until packing panel `panel` may begin: its buffer's previous
  /// occupant (panel - 2) has been fully consumed. Panels 0 and 1 start
  /// immediately.
  void wait_buffer_free(long panel) {
    if (panel < 2) return;
    wait_panels_done(panel - 1);
  }

  /// Records one thread's pack contribution to `panel`; the last
  /// contributor publishes the buffer's new ready epoch. Contribution
  /// counters are reset by the last incrementer *before* the release bump,
  /// so the next occupancy's fetch_adds are ordered after the reset.
  void pack_contribution_done(long panel) {
    Buf& b = bufs_[panel & 1];
    if (b.pack_parts.fetch_add(1, std::memory_order_acq_rel) + 1 == nt_) {
      b.pack_parts.store(0, std::memory_order_relaxed);
      pipeline_stats().panels.fetch_add(1, std::memory_order_relaxed);
      bump(b.ready);
    }
  }

  /// Blocks until panel `panel` is computable: its buffer is fully packed
  /// for this occupancy AND the previous panel has drained (two panels in
  /// flight would accumulate into the same C tiles).
  void wait_computable(long panel) {
    const long epoch = panel / 2 + 1;
    Buf& b = bufs_[panel & 1];
    spin_then_park([&] {
      return b.ready.load(std::memory_order_acquire) >= epoch;
    });
    if (panel > 0) wait_panels_done(panel);
  }

  /// Records one thread's compute contribution to `panel`; the last
  /// contributor publishes the panel as drained (panels_done = panel + 1).
  void compute_contribution_done(long panel) {
    Buf& b = bufs_[panel & 1];
    if (b.consumed.fetch_add(1, std::memory_order_acq_rel) + 1 == nt_) {
      b.consumed.store(0, std::memory_order_relaxed);
      bump(panels_done_);
    }
  }

 private:
  struct alignas(64) Buf {
    std::atomic<long> ready{0};      ///< completed cooperative packs (epoch)
    std::atomic<int> pack_parts{0};  ///< pack contributions, current occupant
    std::atomic<int> consumed{0};    ///< compute contributions, current occupant
  };

  /// Waits until `count` panels have fully drained (panels_done >= count).
  void wait_panels_done(long count) {
    spin_then_park([&] {
      return panels_done_.load(std::memory_order_acquire) >= count;
    });
  }

  void bump(std::atomic<long>& epoch) {
    epoch.fetch_add(1, std::memory_order_release);
    // Waiters past their spin budget are parked on cv_; the lock orders
    // this notify after their predicate re-check, mirroring the pool.
    std::lock_guard lock(mutex_);
    cv_.notify_all();
  }

  /// Bounded spin (the panel cadence is short at the mid sizes this
  /// pipeline targets), then park on the shared condition variable. Same
  /// budget rationale as ThreadPool::parallel_region's join.
  template <typename Pred>
  void spin_then_park(Pred&& ready) {
    constexpr int kSpinIters = 1 << 12;
    for (int i = 0; i < kSpinIters; ++i) {
      if (ready()) return;
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return ready(); });
  }

  const int nt_;
  Buf bufs_[2];
  /// Panels fully consumed by every participant; monotonic because panels
  /// complete strictly in order.
  std::atomic<long> panels_done_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// Stealable partition of the macro-loop's MC-row tiles for ONE op call.
/// Tile r covers rows [r*mc, min(rows, (r+1)*mc)); each thread owns the
/// contiguous deque [t*tiles/nt, (t+1)*tiles/nt) and claims from its front
/// through an epoch-tagged atomic cursor. A thread that drains its own
/// deque scans the victims after it (the classic steal index) and claims
/// from theirs; a successful foreign claim counts as one steal. Cursors are
/// tagged with the panel index, so re-arming the deck for the next panel is
/// lock-free: a claim for panel i against a cursor still tagged i-1 simply
/// starts that deque over — no reset step can race a late thief, because
/// compute phases are ordered (PackPipeline::wait_computable) and claims
/// only ever target the globally current panel.
class TileDeck {
 public:
  TileDeck(std::size_t participants, int tiles)
      : nt_(static_cast<int>(participants)),
        tiles_(tiles),
        stride_(static_cast<long>(tiles) + 1),
        cursors_(participants) {
    // Tag every cursor with panel -1 (exactly -stride_, so the truncating
    // division below still recovers the tag): a panel-0 claim must start at
    // the deque's own lo, not at the zero-initialised cursor's "next 0".
    for (auto& c : cursors_) c.value.store(-stride_, std::memory_order_relaxed);
  }

  TileDeck(const TileDeck&) = delete;
  TileDeck& operator=(const TileDeck&) = delete;

  int owned_lo(int t) const {
    return static_cast<int>(static_cast<long>(t) * tiles_ / nt_);
  }
  int owned_hi(int t) const {
    return static_cast<int>(static_cast<long>(t + 1) * tiles_ / nt_);
  }

  /// Claims the next tile of `panel` for thread `t`: own deque first, then
  /// each victim's in steal order. Returns -1 when the panel's tiles are
  /// exhausted.
  int claim(int t, long panel) {
    const int own = claim_from(t, panel);
    if (own >= 0) return own;
    for (int d = 1; d < nt_; ++d) {
      const int victim = (t + d) % nt_;
      const int stolen = claim_from(victim, panel);
      if (stolen >= 0) {
        pipeline_stats().steals.fetch_add(1, std::memory_order_relaxed);
        return stolen;
      }
    }
    return -1;
  }

 private:
  /// One epoch-tagged claim attempt against thread `v`'s deque. The cursor
  /// encodes (panel, next) as panel * stride_ + next; a cursor from an
  /// earlier panel means v's deque is untouched this panel.
  int claim_from(int v, long panel) {
    const int lo = owned_lo(v);
    const int hi = owned_hi(v);
    if (lo >= hi) return -1;
    std::atomic<long>& cur = cursors_[v].value;
    long seen = cur.load(std::memory_order_relaxed);
    while (true) {
      const long tag = seen / stride_;
      const int next = tag == panel ? static_cast<int>(seen % stride_) : lo;
      if (next >= hi) return -1;
      if (cur.compare_exchange_weak(seen, panel * stride_ + next + 1,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
        return next;
      }
    }
  }

  struct alignas(64) Cursor {
    std::atomic<long> value{0};
  };

  const int nt_;
  const int tiles_;
  const long stride_;
  std::vector<Cursor> cursors_;
};

}  // namespace adsala::blas::detail
