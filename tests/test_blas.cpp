// Correctness tests for the from-scratch blocked multi-threaded GEMM,
// verified element-wise against the naive reference implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "blas/gemm.h"
#include "blas/kernels/dispatch.h"
#include "blas/op.h"
#include "blas/symm.h"
#include "blas/syrk.h"
#include "blas/trmm.h"
#include "blas/trsm.h"
#include "common/pack_arena.h"
#include "common/rng.h"

namespace adsala::blas {
namespace {

template <typename T>
std::vector<T> random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> out(rows * cols);
  for (auto& v : out) v = static_cast<T>(rng.uniform(-2.0, 2.0));
  return out;
}

template <typename T>
void expect_gemm_matches_reference(Trans ta, Trans tb, int m, int n, int k,
                                   T alpha, T beta, int nthreads,
                                   const GemmTuning& tuning = {}) {
  const int a_rows = ta == Trans::kNo ? m : k;
  const int a_cols = ta == Trans::kNo ? k : m;
  const int b_rows = tb == Trans::kNo ? k : n;
  const int b_cols = tb == Trans::kNo ? n : k;
  const int lda = std::max(1, a_cols);  // k = 0 still needs a valid stride
  const int ldb = std::max(1, b_cols);
  const auto a = random_matrix<T>(std::max(1, a_rows), lda, 1);
  const auto b = random_matrix<T>(std::max(1, b_rows), ldb, 2);
  auto c = random_matrix<T>(m, n, 3);
  auto c_ref = c;

  gemm<T>(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
          c.data(), n, nthreads, tuning);
  reference_gemm<T>(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb,
                    beta, c_ref.data(), n);

  // Tolerance scales with the k-dimension reduction length.
  const double tol =
      (std::is_same_v<T, float> ? 1e-4 : 1e-11) * std::max(1, k);
  for (int i = 0; i < m * n; ++i) {
    ASSERT_NEAR(static_cast<double>(c[i]), static_cast<double>(c_ref[i]), tol)
        << "mismatch at linear index " << i << " (m=" << m << " n=" << n
        << " k=" << k << ")";
  }
}

TEST(Gemm, TinyExactValues) {
  // 2x2 hand-checked product.
  const float a[] = {1, 2, 3, 4};
  const float b[] = {5, 6, 7, 8};
  float c[] = {0, 0, 0, 0};
  sgemm(Trans::kNo, Trans::kNo, 2, 2, 2, 1.0f, a, 2, b, 2, 0.0f, c, 2, 1);
  EXPECT_FLOAT_EQ(c[0], 19.0f);
  EXPECT_FLOAT_EQ(c[1], 22.0f);
  EXPECT_FLOAT_EQ(c[2], 43.0f);
  EXPECT_FLOAT_EQ(c[3], 50.0f);
}

TEST(Gemm, BetaScalesExistingC) {
  const float a[] = {1};
  const float b[] = {1};
  float c[] = {10};
  sgemm(Trans::kNo, Trans::kNo, 1, 1, 1, 2.0f, a, 1, b, 1, 0.5f, c, 1, 1);
  EXPECT_FLOAT_EQ(c[0], 7.0f);  // 2*1*1 + 0.5*10
}

TEST(Gemm, BetaZeroOverwritesNaN) {
  const float a[] = {1};
  const float b[] = {1};
  float c[] = {std::nanf("")};
  sgemm(Trans::kNo, Trans::kNo, 1, 1, 1, 1.0f, a, 1, b, 1, 0.0f, c, 1, 1);
  EXPECT_FLOAT_EQ(c[0], 1.0f);
}

TEST(Gemm, AlphaZeroSkipsProduct) {
  const float a[] = {1, 2};  // would read garbage dims if not skipped
  const float b[] = {3, 4};
  float c[] = {5};
  sgemm(Trans::kNo, Trans::kNo, 1, 1, 2, 0.0f, a, 2, b, 1, 2.0f, c, 1, 4);
  EXPECT_FLOAT_EQ(c[0], 10.0f);
}

TEST(Gemm, KZeroIsBetaPass) {
  float c[] = {3, 4};
  sgemm(Trans::kNo, Trans::kNo, 1, 2, 0, 1.0f, nullptr, 1, nullptr, 2, 2.0f,
        c, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 6.0f);
  EXPECT_FLOAT_EQ(c[1], 8.0f);
}

TEST(Gemm, EmptyOutputReturns) {
  EXPECT_NO_THROW(sgemm(Trans::kNo, Trans::kNo, 0, 0, 5, 1.0f, nullptr, 5,
                        nullptr, 1, 0.0f, nullptr, 1, 2));
}

TEST(Gemm, NegativeDimensionThrows) {
  EXPECT_THROW(sgemm(Trans::kNo, Trans::kNo, -1, 1, 1, 1.0f, nullptr, 1,
                     nullptr, 1, 0.0f, nullptr, 1, 1),
               std::invalid_argument);
}

TEST(Gemm, BadLeadingDimensionThrows) {
  float x[4] = {};
  EXPECT_THROW(sgemm(Trans::kNo, Trans::kNo, 2, 2, 2, 1.0f, x, 1, x, 2, 0.0f,
                     x, 2, 1),
               std::invalid_argument);
}

TEST(Gemm, TransposeAFloat) {
  expect_gemm_matches_reference<float>(Trans::kYes, Trans::kNo, 17, 23, 9,
                                       1.0f, 0.0f, 2);
}

TEST(Gemm, TransposeBFloat) {
  expect_gemm_matches_reference<float>(Trans::kNo, Trans::kYes, 17, 23, 9,
                                       1.5f, 0.5f, 2);
}

TEST(Gemm, TransposeBothDouble) {
  expect_gemm_matches_reference<double>(Trans::kYes, Trans::kYes, 31, 13, 27,
                                        -0.5, 2.0, 3);
}

TEST(Gemm, StridedOutput) {
  // ldc > n: C is a sub-block of a wider array; padding must be untouched.
  const int m = 5, n = 4, k = 3, ldc = 7;
  const auto a = random_matrix<float>(m, k, 10);
  const auto b = random_matrix<float>(k, n, 11);
  std::vector<float> c(m * ldc, -99.0f);
  auto c_ref = c;
  gemm<float>(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a.data(), k, b.data(), n,
              0.0f, c.data(), ldc, 2);
  reference_gemm<float>(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a.data(), k,
                        b.data(), n, 0.0f, c_ref.data(), ldc);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < ldc; ++j) {
      if (j >= n) {
        EXPECT_FLOAT_EQ(c[i * ldc + j], -99.0f) << "padding overwritten";
      } else {
        EXPECT_NEAR(c[i * ldc + j], c_ref[i * ldc + j], 1e-4);
      }
    }
  }
}

TEST(Gemm, SmallBlockingParametersExerciseAllFringes) {
  GemmTuning tuning;
  tuning.mc = 12;   // two MR panels
  tuning.kc = 5;
  tuning.nc = 16;   // two NR panels
  expect_gemm_matches_reference<float>(Trans::kNo, Trans::kNo, 37, 29, 23,
                                       1.0f, 1.0f, 3, tuning);
  expect_gemm_matches_reference<double>(Trans::kNo, Trans::kNo, 37, 29, 23,
                                        1.0, -1.0, 3, tuning);
}

// Property suite: correctness over a shape grid x thread counts.
using ShapeParam = std::tuple<int, int, int, int>;  // m, n, k, threads

class GemmShapeTest : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(GemmShapeTest, FloatMatchesReference) {
  const auto [m, n, k, threads] = GetParam();
  expect_gemm_matches_reference<float>(Trans::kNo, Trans::kNo, m, n, k, 1.0f,
                                       0.0f, threads);
}

TEST_P(GemmShapeTest, DoubleMatchesReferenceWithBeta) {
  const auto [m, n, k, threads] = GetParam();
  expect_gemm_matches_reference<double>(Trans::kNo, Trans::kNo, m, n, k, 1.25,
                                        0.75, threads);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, GemmShapeTest,
    ::testing::Values(
        ShapeParam{1, 1, 1, 1}, ShapeParam{1, 64, 64, 2},
        ShapeParam{64, 1, 64, 2}, ShapeParam{64, 64, 1, 2},
        ShapeParam{5, 7, 11, 1}, ShapeParam{6, 8, 16, 2},   // exact tiles
        ShapeParam{7, 9, 17, 2},                            // fringe tiles
        ShapeParam{48, 48, 48, 4}, ShapeParam{129, 65, 33, 4},
        ShapeParam{200, 100, 300, 8}, ShapeParam{64, 2048, 64, 4},
        ShapeParam{256, 256, 256, 8}, ShapeParam{250, 130, 260, 16},
        ShapeParam{33, 257, 129, 24}));

// Thread-count invariance: the result must not depend on parallelism.
class GemmThreadInvariance : public ::testing::TestWithParam<int> {};

TEST_P(GemmThreadInvariance, SameResultAsSingleThread) {
  const int threads = GetParam();
  const int m = 93, n = 71, k = 55;
  const auto a = random_matrix<float>(m, k, 5);
  const auto b = random_matrix<float>(k, n, 6);
  std::vector<float> c1(m * n, 0.0f), cp(m * n, 0.0f);
  gemm<float>(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a.data(), k, b.data(), n,
              0.0f, c1.data(), n, 1);
  gemm<float>(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a.data(), k, b.data(), n,
              0.0f, cp.data(), n, threads);
  for (int i = 0; i < m * n; ++i) {
    // Identical split of the k loop => bitwise equal accumulation per block;
    // but packing order differs across threads only in m/n, not k, so the
    // float sums are in the same order. Allow tiny tolerance regardless.
    ASSERT_NEAR(c1[i], cp[i], 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, GemmThreadInvariance,
                         ::testing::Values(2, 3, 4, 7, 8, 16, 23));

// ------------------------------------------------------- kernel variants --
// Every dispatched kernel variant must agree with the naive reference on
// fringe shapes (dimensions not multiples of MR/NR), degenerate products
// (k=0, alpha=0), and the beta in {0, 1, 2} write-back modes — for GEMM and
// SYRK alike. On non-AVX2 hosts the sweep degrades to generic only.

class KernelVariantTest
    : public ::testing::TestWithParam<kernels::Variant> {};

TEST_P(KernelVariantTest, GeometryIsConsistent) {
  const auto v = GetParam();
  const auto& f32 = kernels::kernel_set<float>(v);
  const auto& f64 = kernels::kernel_set<double>(v);
  EXPECT_GT(f32.mr, 0);
  EXPECT_GT(f32.nr, 0);
  EXPECT_LE(f32.mr, kernels::kMaxMr);
  EXPECT_LE(f32.nr, kernels::kMaxNr);
  EXPECT_LE(f64.mr, kernels::kMaxMr);
  EXPECT_LE(f64.nr, kernels::kMaxNr);
  EXPECT_STREQ(f32.name, kernels::variant_name(v));
  EXPECT_STREQ(f64.name, kernels::variant_name(v));
}

TEST_P(KernelVariantTest, GemmFringeShapesFloat) {
  GemmTuning tuning;
  tuning.variant = GetParam();
  for (const auto [m, n, k] : {std::tuple{1, 1, 3}, std::tuple{7, 9, 17},
                               std::tuple{13, 31, 5}, std::tuple{29, 47, 23},
                               std::tuple{65, 19, 37}}) {
    for (const float beta : {0.0f, 1.0f, 2.0f}) {
      expect_gemm_matches_reference<float>(Trans::kNo, Trans::kNo, m, n, k,
                                           1.25f, beta, 3, tuning);
    }
  }
}

TEST_P(KernelVariantTest, GemmFringeShapesDouble) {
  GemmTuning tuning;
  tuning.variant = GetParam();
  for (const auto [m, n, k] : {std::tuple{1, 1, 3}, std::tuple{7, 9, 17},
                               std::tuple{13, 31, 5}, std::tuple{29, 47, 23},
                               std::tuple{65, 19, 37}}) {
    for (const double beta : {0.0, 1.0, 2.0}) {
      expect_gemm_matches_reference<double>(Trans::kNo, Trans::kNo, m, n, k,
                                            -0.75, beta, 3, tuning);
    }
  }
}

TEST_P(KernelVariantTest, GemmTransposedFringe) {
  GemmTuning tuning;
  tuning.variant = GetParam();
  expect_gemm_matches_reference<float>(Trans::kYes, Trans::kNo, 19, 21, 11,
                                       1.0f, 1.0f, 2, tuning);
  expect_gemm_matches_reference<float>(Trans::kNo, Trans::kYes, 19, 21, 11,
                                       1.0f, 2.0f, 2, tuning);
  expect_gemm_matches_reference<double>(Trans::kYes, Trans::kYes, 19, 21, 11,
                                        0.5, 1.0, 2, tuning);
}

TEST_P(KernelVariantTest, GemmDegenerateProducts) {
  GemmTuning tuning;
  tuning.variant = GetParam();
  // k = 0 and alpha = 0 reduce to the beta pass.
  expect_gemm_matches_reference<float>(Trans::kNo, Trans::kNo, 9, 13, 0, 1.0f,
                                       2.0f, 2, tuning);
  expect_gemm_matches_reference<float>(Trans::kNo, Trans::kNo, 9, 13, 7, 0.0f,
                                       0.5f, 2, tuning);
  expect_gemm_matches_reference<double>(Trans::kNo, Trans::kNo, 9, 13, 0, 1.0,
                                        0.0, 2, tuning);
  expect_gemm_matches_reference<double>(Trans::kNo, Trans::kNo, 9, 13, 7, 0.0,
                                        1.0, 2, tuning);
}

template <typename T>
void expect_syrk_matches_reference(Uplo uplo, Trans trans, int n, int k,
                                   T alpha, T beta, int nthreads,
                                   const GemmTuning& tuning) {
  const int a_rows = trans == Trans::kNo ? n : k;
  const int a_cols = trans == Trans::kNo ? k : n;
  const int lda = std::max(1, a_cols);  // k = 0 still needs a valid stride
  const auto a = random_matrix<T>(std::max(1, a_rows), lda, 7);
  auto c = random_matrix<T>(n, n, 8);
  auto c_ref = c;

  syrk<T>(uplo, trans, n, k, alpha, a.data(), lda, beta, c.data(), n,
          nthreads, tuning);
  reference_syrk<T>(uplo, trans, n, k, alpha, a.data(), lda, beta,
                    c_ref.data(), n);

  const double tol =
      (std::is_same_v<T, float> ? 1e-4 : 1e-11) * std::max(1, k);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const bool in_triangle = uplo == Uplo::kLower ? j <= i : j >= i;
      if (in_triangle) {
        ASSERT_NEAR(static_cast<double>(c[i * n + j]),
                    static_cast<double>(c_ref[i * n + j]), tol)
            << "triangle mismatch at (" << i << ", " << j << ") n=" << n
            << " k=" << k;
      } else {
        ASSERT_EQ(c[i * n + j], c_ref[i * n + j])
            << "opposite triangle touched at (" << i << ", " << j << ")";
      }
    }
  }
}

TEST_P(KernelVariantTest, SyrkFringeSweepFloat) {
  GemmTuning tuning;
  tuning.variant = GetParam();
  for (const Uplo uplo : {Uplo::kLower, Uplo::kUpper}) {
    for (const Trans trans : {Trans::kNo, Trans::kYes}) {
      for (const auto [n, k] : {std::tuple{1, 1}, std::tuple{17, 23},
                                std::tuple{31, 7}, std::tuple{53, 29}}) {
        for (const float beta : {0.0f, 1.0f, 2.0f}) {
          expect_syrk_matches_reference<float>(uplo, trans, n, k, 1.5f, beta,
                                               3, tuning);
        }
      }
    }
  }
}

TEST_P(KernelVariantTest, SyrkFringeSweepDouble) {
  GemmTuning tuning;
  tuning.variant = GetParam();
  for (const Uplo uplo : {Uplo::kLower, Uplo::kUpper}) {
    for (const Trans trans : {Trans::kNo, Trans::kYes}) {
      for (const auto [n, k] : {std::tuple{17, 23}, std::tuple{53, 29}}) {
        for (const double beta : {0.0, 1.0, 2.0}) {
          expect_syrk_matches_reference<double>(uplo, trans, n, k, -0.5, beta,
                                                3, tuning);
        }
      }
    }
  }
}

TEST_P(KernelVariantTest, SyrkDegenerateProducts) {
  GemmTuning tuning;
  tuning.variant = GetParam();
  expect_syrk_matches_reference<float>(Uplo::kLower, Trans::kNo, 11, 0, 1.0f,
                                       2.0f, 2, tuning);
  expect_syrk_matches_reference<float>(Uplo::kUpper, Trans::kNo, 11, 9, 0.0f,
                                       0.5f, 2, tuning);
  expect_syrk_matches_reference<double>(Uplo::kLower, Trans::kYes, 11, 0, 1.0,
                                        0.0, 2, tuning);
}

TEST_P(KernelVariantTest, SyrkSpansMultipleCacheBlocks) {
  GemmTuning tuning;
  tuning.variant = GetParam();
  tuning.mc = 12;
  tuning.kc = 7;
  tuning.nc = 16;
  expect_syrk_matches_reference<float>(Uplo::kLower, Trans::kNo, 61, 43, 1.0f,
                                       1.0f, 4, tuning);
  expect_syrk_matches_reference<double>(Uplo::kUpper, Trans::kYes, 61, 43,
                                        1.0, 1.0, 4, tuning);
}

template <typename T>
void expect_trsm_matches_reference(Uplo uplo, Trans trans, Diag diag, int n,
                                   int m, T alpha, int nthreads,
                                   const GemmTuning& tuning) {
  // Diagonally dominant triangle keeps the solve well-conditioned, so the
  // forward/backward error stays near the reference's.
  auto a = random_matrix<T>(std::max(1, n), std::max(1, n), 11);
  for (int i = 0; i < n; ++i) a[i * n + i] = T(n + 2);
  auto b = random_matrix<T>(std::max(1, n), std::max(1, m), 12);
  auto b_ref = b;

  trsm<T>(uplo, trans, diag, n, m, alpha, a.data(), n, b.data(), m, nthreads,
          tuning);
  reference_trsm<T>(uplo, trans, diag, n, m, alpha, a.data(), n, b_ref.data(),
                    m);

  // Unit-diagonal solves of random triangles are ill-conditioned (solution
  // magnitude grows with n), so the tolerance scales with the result.
  double magnitude = 1.0;
  for (int i = 0; i < n * m; ++i) {
    magnitude = std::max(magnitude, std::abs(static_cast<double>(b_ref[i])));
  }
  const double tol =
      (std::is_same_v<T, float> ? 1e-4 : 1e-11) * std::max(1, n) * magnitude;
  for (int i = 0; i < n * m; ++i) {
    ASSERT_NEAR(static_cast<double>(b[i]), static_cast<double>(b_ref[i]), tol)
        << "mismatch at linear index " << i << " (n=" << n << " m=" << m
        << ")";
  }
}

TEST_P(KernelVariantTest, TrsmFringeSweepFloat) {
  GemmTuning tuning;
  tuning.variant = GetParam();
  for (const Uplo uplo : {Uplo::kLower, Uplo::kUpper}) {
    for (const Trans trans : {Trans::kNo, Trans::kYes}) {
      for (const auto [n, m] : {std::tuple{1, 1}, std::tuple{17, 23},
                                std::tuple{31, 7}, std::tuple{53, 29}}) {
        expect_trsm_matches_reference<float>(uplo, trans, Diag::kNonUnit, n,
                                             m, 1.5f, 3, tuning);
      }
    }
  }
}

TEST_P(KernelVariantTest, TrsmFringeSweepDouble) {
  GemmTuning tuning;
  tuning.variant = GetParam();
  for (const Uplo uplo : {Uplo::kLower, Uplo::kUpper}) {
    for (const Trans trans : {Trans::kNo, Trans::kYes}) {
      for (const Diag diag : {Diag::kNonUnit, Diag::kUnit}) {
        expect_trsm_matches_reference<double>(uplo, trans, diag, 37, 19, -0.5,
                                              3, tuning);
      }
    }
  }
}

TEST_P(KernelVariantTest, TrsmCrossesBlockBoundaries) {
  // kc/4 = 16-row diagonal blocks: 61 rows span four blocks with a fringe.
  GemmTuning tuning;
  tuning.variant = GetParam();
  tuning.kc = 64;
  expect_trsm_matches_reference<float>(Uplo::kLower, Trans::kNo,
                                       Diag::kNonUnit, 61, 43, 1.0f, 4,
                                       tuning);
  expect_trsm_matches_reference<double>(Uplo::kUpper, Trans::kYes,
                                        Diag::kUnit, 61, 43, 1.0, 4, tuning);
}

template <typename T>
void expect_symm_matches_reference(Uplo uplo, int n, int m, T alpha, T beta,
                                   int nthreads, const GemmTuning& tuning) {
  const auto a = random_matrix<T>(std::max(1, n), std::max(1, n), 13);
  const auto b = random_matrix<T>(std::max(1, n), std::max(1, m), 14);
  auto c = random_matrix<T>(std::max(1, n), std::max(1, m), 15);
  auto c_ref = c;

  symm<T>(uplo, n, m, alpha, a.data(), n, b.data(), m, beta, c.data(), m,
          nthreads, tuning);
  reference_symm<T>(uplo, n, m, alpha, a.data(), n, b.data(), m, beta,
                    c_ref.data(), m);

  const double tol =
      (std::is_same_v<T, float> ? 1e-4 : 1e-11) * std::max(1, n);
  for (int i = 0; i < n * m; ++i) {
    ASSERT_NEAR(static_cast<double>(c[i]), static_cast<double>(c_ref[i]), tol)
        << "mismatch at linear index " << i << " (n=" << n << " m=" << m
        << ")";
  }
}

TEST_P(KernelVariantTest, SymmFringeSweepFloat) {
  GemmTuning tuning;
  tuning.variant = GetParam();
  for (const Uplo uplo : {Uplo::kLower, Uplo::kUpper}) {
    for (const auto [n, m] : {std::tuple{1, 1}, std::tuple{17, 23},
                              std::tuple{31, 7}, std::tuple{53, 29}}) {
      for (const float beta : {0.0f, 1.0f, 2.0f}) {
        expect_symm_matches_reference<float>(uplo, n, m, 1.25f, beta, 3,
                                             tuning);
      }
    }
  }
}

TEST_P(KernelVariantTest, SymmFringeSweepDouble) {
  GemmTuning tuning;
  tuning.variant = GetParam();
  for (const Uplo uplo : {Uplo::kLower, Uplo::kUpper}) {
    for (const auto [n, m] : {std::tuple{17, 23}, std::tuple{53, 29}}) {
      for (const double beta : {0.0, 1.0, 2.0}) {
        expect_symm_matches_reference<double>(uplo, n, m, -0.5, beta, 3,
                                              tuning);
      }
    }
  }
}

TEST_P(KernelVariantTest, SymmSpansMultipleCacheBlocks) {
  GemmTuning tuning;
  tuning.variant = GetParam();
  tuning.mc = 12;
  tuning.kc = 7;
  tuning.nc = 16;
  expect_symm_matches_reference<float>(Uplo::kLower, 61, 43, 1.0f, 1.0f, 4,
                                       tuning);
  expect_symm_matches_reference<double>(Uplo::kUpper, 61, 43, 1.0, 1.0, 4,
                                        tuning);
}

TEST_P(KernelVariantTest, SymmAlphaZeroIsBetaPass) {
  GemmTuning tuning;
  tuning.variant = GetParam();
  expect_symm_matches_reference<float>(Uplo::kLower, 9, 13, 0.0f, 0.5f, 2,
                                       tuning);
  expect_symm_matches_reference<double>(Uplo::kUpper, 9, 13, 0.0, 0.0, 2,
                                        tuning);
}

template <typename T>
void expect_trmm_matches_reference(Uplo uplo, Trans trans, Diag diag, int n,
                                   int m, T alpha, int nthreads,
                                   const GemmTuning& tuning) {
  const auto a = random_matrix<T>(std::max(1, n), std::max(1, n), 17);
  auto b = random_matrix<T>(std::max(1, n), std::max(1, m), 18);
  auto b_ref = b;

  trmm<T>(uplo, trans, diag, n, m, alpha, a.data(), n, b.data(), m, nthreads,
          tuning);
  reference_trmm<T>(uplo, trans, diag, n, m, alpha, a.data(), n, b_ref.data(),
                    m);

  const double tol =
      (std::is_same_v<T, float> ? 1e-4 : 1e-11) * std::max(1, n);
  for (int i = 0; i < n * m; ++i) {
    ASSERT_NEAR(static_cast<double>(b[i]), static_cast<double>(b_ref[i]), tol)
        << "mismatch at linear index " << i << " (n=" << n << " m=" << m
        << ")";
  }
}

TEST_P(KernelVariantTest, TrmmFringeSweepFloat) {
  GemmTuning tuning;
  tuning.variant = GetParam();
  for (const Uplo uplo : {Uplo::kLower, Uplo::kUpper}) {
    for (const Trans trans : {Trans::kNo, Trans::kYes}) {
      for (const auto [n, m] : {std::tuple{1, 1}, std::tuple{17, 23},
                                std::tuple{31, 7}, std::tuple{53, 29}}) {
        expect_trmm_matches_reference<float>(uplo, trans, Diag::kNonUnit, n,
                                             m, 1.5f, 3, tuning);
      }
    }
  }
}

TEST_P(KernelVariantTest, TrmmFringeSweepDouble) {
  GemmTuning tuning;
  tuning.variant = GetParam();
  for (const Uplo uplo : {Uplo::kLower, Uplo::kUpper}) {
    for (const Trans trans : {Trans::kNo, Trans::kYes}) {
      for (const Diag diag : {Diag::kNonUnit, Diag::kUnit}) {
        expect_trmm_matches_reference<double>(uplo, trans, diag, 37, 19, -0.5,
                                              3, tuning);
      }
    }
  }
}

TEST_P(KernelVariantTest, TrmmSpansMultipleCacheBlocks) {
  // Small blocking forces the triangle-slab skip logic across many (ic, pc)
  // combinations, including partially-intersecting diagonal blocks.
  GemmTuning tuning;
  tuning.variant = GetParam();
  tuning.mc = 12;
  tuning.kc = 7;
  tuning.nc = 16;
  expect_trmm_matches_reference<float>(Uplo::kLower, Trans::kNo,
                                       Diag::kNonUnit, 61, 43, 1.0f, 4,
                                       tuning);
  expect_trmm_matches_reference<double>(Uplo::kUpper, Trans::kYes,
                                        Diag::kUnit, 61, 43, 1.0, 4, tuning);
}

TEST_P(KernelVariantTest, TrmmAlphaZeroZeroesB) {
  GemmTuning tuning;
  tuning.variant = GetParam();
  expect_trmm_matches_reference<float>(Uplo::kLower, Trans::kNo,
                                       Diag::kNonUnit, 9, 13, 0.0f, 2,
                                       tuning);
  expect_trmm_matches_reference<double>(Uplo::kUpper, Trans::kNo,
                                        Diag::kUnit, 9, 13, 0.0, 2, tuning);
}

INSTANTIATE_TEST_SUITE_P(
    Dispatched, KernelVariantTest,
    ::testing::ValuesIn(kernels::supported_variants()),
    [](const ::testing::TestParamInfo<kernels::Variant>& info) {
      return std::string(kernels::variant_name(info.param));
    });

// ------------------------------------------------------ zero-alloc hot path
// After a first call of a given shape has grown the PackArena slabs, a
// repeat of that shape (and anything smaller) must perform zero heap
// allocations across every op's macro-loop — the per-call AlignedBuffer
// cost the arena was introduced to eliminate.

TEST(PackArenaHotPath, RepeatedCallsOfOneShapeAllocateNothing) {
  const int n = 64, m = 96, k = 48;  // ldc = m >= n so one C serves all ops
  const auto a = random_matrix<float>(n, n, 21);
  const auto b0 = random_matrix<float>(n, m, 22);
  auto c = random_matrix<float>(n, m, 23);
  auto b_io = b0;

  auto run_all = [&] {
    gemm<float>(Trans::kNo, Trans::kNo, n, m, k, 1.5f, a.data(), n, b0.data(),
                m, 0.5f, c.data(), m, 2);
    syrk<float>(Uplo::kLower, Trans::kNo, n, k, 1.0f, a.data(), n, 0.5f,
                c.data(), m, 2);
    symm<float>(Uplo::kUpper, n, m, 1.0f, a.data(), n, b0.data(), m, 0.0f,
                c.data(), m, 2);
    b_io = b0;
    trmm<float>(Uplo::kLower, Trans::kNo, Diag::kNonUnit, n, m, 2.0f,
                a.data(), n, b_io.data(), m, 2);
    b_io = b0;
    trsm<float>(Uplo::kLower, Trans::kNo, Diag::kNonUnit, n, m, 1.0f,
                a.data(), n, b_io.data(), m, 2);
  };

  run_all();  // grows the slabs to this shape's high-water mark
  const std::size_t growths = PackArena::global().growth_count();
  run_all();
  run_all();
  EXPECT_EQ(PackArena::global().growth_count(), growths)
      << "a repeated shape must be served entirely from the arena";
}

TEST(PackArenaHotPath, HugeTrmmCopyDoesNotPinArenaMemory) {
  // TRMM's dense B copy is O(n * m) of the input; above the arena threshold
  // it must come from a per-call buffer so one big call doesn't pin that
  // much grow-only scratch for the process lifetime. 1500 x 1500 fp64 is an
  // 18 MB copy, past the 16 MB cap.
  const int n = 1500, m = 1500;
  std::vector<double> a(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) a[static_cast<std::size_t>(i) * n + i] = 1.0;
  auto b = random_matrix<double>(n, m, 31);
  const auto b0 = b;

  const std::size_t before = PackArena::global().footprint_bytes();
  trmm<double>(Uplo::kLower, Trans::kNo, Diag::kNonUnit, n, m, 2.0, a.data(),
               n, b.data(), m, 2);
  const std::size_t grown = PackArena::global().footprint_bytes() - before;
  EXPECT_LT(grown, static_cast<std::size_t>(n) * m * sizeof(double))
      << "the dense copy must not land in the grow-only arena";

  // A == I, so the product is exactly alpha * B — cheap full verification.
  for (std::size_t i = 0; i < b.size(); i += 997) {
    ASSERT_DOUBLE_EQ(b[i], 2.0 * b0[i]) << "index " << i;
  }
}

TEST(KernelDispatch, ParseVariantVocabulary) {
  EXPECT_EQ(kernels::parse_variant("auto"), kernels::Variant::kAuto);
  EXPECT_EQ(kernels::parse_variant("generic"), kernels::Variant::kGeneric);
  EXPECT_EQ(kernels::parse_variant("avx2"), kernels::Variant::kAvx2);
  EXPECT_EQ(kernels::parse_variant("avx512"), kernels::Variant::kAvx512);
  EXPECT_FALSE(kernels::parse_variant("sse9").has_value());
  EXPECT_FALSE(kernels::parse_variant("").has_value());
}

TEST(KernelDispatch, GenericAlwaysSupported) {
  const auto variants = kernels::supported_variants();
  ASSERT_FALSE(variants.empty());
  EXPECT_EQ(variants.front(), kernels::Variant::kGeneric);
}

TEST(KernelDispatch, SetVariantOverridesActive) {
  kernels::set_variant(kernels::Variant::kGeneric);
  EXPECT_EQ(kernels::active_variant(), kernels::Variant::kGeneric);
  kernels::set_variant(kernels::Variant::kAuto);  // restore default selection
  EXPECT_NE(kernels::active_variant(), kernels::Variant::kAuto);
}

TEST(KernelDispatch, Avx2GeometryWhenSupported) {
  if (!kernels::cpu_supports_avx2()) {
    GTEST_SKIP() << "host lacks AVX2";
  }
  const auto& f32 = kernels::kernel_set<float>(kernels::Variant::kAvx2);
  const auto& f64 = kernels::kernel_set<double>(kernels::Variant::kAvx2);
  EXPECT_EQ(f32.mr, 6);
  EXPECT_EQ(f32.nr, 16);
  EXPECT_EQ(f64.mr, 6);
  EXPECT_EQ(f64.nr, 8);
}

// The parameterised KernelVariantTest sweep above already exercises the
// avx512 kernels through all five ops whenever CPUID reports AVX-512 (they
// simply drop out of supported_variants() otherwise); this pins the
// register-budgeted geometry and the graceful-degradation contract on hosts
// without the ISA.
TEST(KernelDispatch, Avx512GeometryOrGracefulSkip) {
  if (!kernels::cpu_supports_avx512()) {
    // supported_variants() must not advertise it, set_variant must refuse
    // it, and a concrete kernel_set request must degrade down the ladder:
    // avx2 when the host has that tier, generic otherwise.
    const auto variants = kernels::supported_variants();
    EXPECT_EQ(std::count(variants.begin(), variants.end(),
                         kernels::Variant::kAvx512),
              0);
    EXPECT_THROW(kernels::set_variant(kernels::Variant::kAvx512),
                 std::runtime_error);
    EXPECT_STREQ(kernels::kernel_set<float>(kernels::Variant::kAvx512).name,
                 kernels::cpu_supports_avx2() ? "avx2" : "generic");
    GTEST_SKIP() << "host lacks AVX-512F";
  }
  const auto& f32 = kernels::kernel_set<float>(kernels::Variant::kAvx512);
  const auto& f64 = kernels::kernel_set<double>(kernels::Variant::kAvx512);
  EXPECT_EQ(f32.mr, 14);
  EXPECT_EQ(f32.nr, 32);
  EXPECT_EQ(f64.mr, 14);
  EXPECT_EQ(f64.nr, 16);
  // The SYRK diagonal-tile scratch is stack-sized from these bounds.
  EXPECT_LE(f32.mr, kernels::kMaxMr);
  EXPECT_LE(f32.nr, kernels::kMaxNr);
  // AVX-512 implies AVX2: the fallback ladder must keep both tiers.
  EXPECT_TRUE(kernels::cpu_supports_avx2());
}

// ------------------------------------------------------- operation table --
// op.h is table-driven: name, code, and parsing all derive from one row per
// operation. The round-trip must hold for every registered op so that a new
// table row automatically gets CSV persistence and CLI parsing right.

TEST(OpKind, TableRoundTripsEveryRegisteredOp) {
  static_assert(all_ops().size() == kNumOps);
  for (const OpKind op : all_ops()) {
    const auto from_name = parse_op(op_name(op));
    ASSERT_TRUE(from_name.has_value()) << op_name(op);
    EXPECT_EQ(*from_name, op);
    const auto from_code = op_from_code(op_code(op));
    ASSERT_TRUE(from_code.has_value()) << op_name(op);
    EXPECT_EQ(*from_code, op);
  }
}

TEST(OpKind, NamesAndCodesAreDistinct) {
  const auto ops = all_ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      EXPECT_STRNE(op_name(ops[i]), op_name(ops[j]));
      EXPECT_NE(op_code(ops[i]), op_code(ops[j]));
    }
  }
  // Codes are contiguous from 0 in table order — the op-aware feature
  // schema indexes one-hot columns by code.
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(op_code(ops[i]), static_cast<int>(i));
  }
}

TEST(OpKind, UnknownInputsAreRejected) {
  EXPECT_FALSE(op_from_code(-1).has_value());
  EXPECT_FALSE(op_from_code(static_cast<int>(kNumOps)).has_value());
  EXPECT_FALSE(parse_op("").has_value());
  EXPECT_FALSE(parse_op("gemv").has_value());
  EXPECT_FALSE(parse_op("GEMM").has_value()) << "names are case-sensitive";
}

TEST(OpKind, KnownSpellings) {
  // The CSV codes are a persistence format: spell them out so a table edit
  // that silently renumbers existing ops fails here.
  EXPECT_EQ(op_code(OpKind::kGemm), 0);
  EXPECT_EQ(op_code(OpKind::kSyrk), 1);
  EXPECT_EQ(op_code(OpKind::kTrsm), 2);
  EXPECT_EQ(op_code(OpKind::kSymm), 3);
  EXPECT_EQ(op_code(OpKind::kTrmm), 4);
  EXPECT_STREQ(op_name(OpKind::kTrsm), "trsm");
  EXPECT_STREQ(op_name(OpKind::kSymm), "symm");
  EXPECT_STREQ(op_name(OpKind::kTrmm), "trmm");
}

TEST(GemmHelpers, MemoryBytes) {
  // 4 * (mk + kn + mn), single precision.
  EXPECT_EQ(gemm_memory_bytes(10, 20, 30, 4),
            4u * (10 * 20 + 20 * 30 + 10 * 30));
}

TEST(GemmHelpers, FlopCount) {
  EXPECT_DOUBLE_EQ(gemm_flops(10, 20, 30), 2.0 * 10 * 20 * 30);
}

}  // namespace
}  // namespace adsala::blas
