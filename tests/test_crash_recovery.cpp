// Crash-recovery battery (ISSUE 10): proves the store and the shm region
// come back from every torn state the crash-safe publication protocol can
// leave behind.
//
// Three layers:
//   1. recover_store() over hand-crafted debris — tmp files, incomplete
//      retained versions, a mirror lagging the retained history — each a
//      state some SIGKILL window produces, built directly so the assertions
//      are exact.
//   2. Fork-based real crashes: a child arms a promote-crash-* /
//      shm-crash-* failpoint, runs the real promote/publish, and dies by
//      SIGKILL at the armed boundary; the parent then recovers and checks
//      the landed version (the same protocol tools/crash_harness.cpp loops
//      under concurrency — here each window gets its own assertion).
//   3. Writer-liveness plumbing: process_start_nonce / writer_alive against
//      this process, a reaped child, and a deliberately wrong nonce.
//
// The corpus is one frozen good install (the test_faults.cpp pattern): real
// artefacts, so try_load exercises the full validation ladder.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/atomic_file.h"
#include "common/failpoint.h"
#include "common/status.h"
#include "core/adsala.h"
#include "core/executor.h"
#include "core/gather.h"
#include "core/retune.h"
#include "core/shm_store.h"
#include "core/trainer.h"

namespace adsala::core {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// One frozen good install shared by the suite; each test copies it into a
/// scratch store and tears that copy up.
class CrashRecovery : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    root_ = new std::string("/tmp/adsala_test_crash_recovery");
    fs::remove_all(*root_);
    fs::create_directories(*root_);
    SimulatedExecutor ex(simarch::MachineModel(simarch::tiny_topology(), 42));
    GatherConfig cfg;
    cfg.n_samples = 40;
    cfg.iterations = 3;
    cfg.domain.memory_cap_bytes = 64ull * 1024 * 1024;
    cfg.domain.dim_max = 8000;
    cfg.domain.seed = 7;
    TrainOptions opts;
    opts.candidates = {"decision_tree"};
    opts.tune = false;
    AdsalaGemm runtime(train_and_select(gather_timings(ex, cfg), opts));
    runtime.save(*root_ + "/model.json", *root_ + "/config.json");
    model_ = new std::string(slurp(*root_ + "/model.json"));
    config_ = new std::string(slurp(*root_ + "/config.json"));
  }
  static void TearDownTestSuite() {
    fs::remove_all(*root_);
    delete root_;
    delete model_;
    delete config_;
    root_ = nullptr;
    model_ = nullptr;
    config_ = nullptr;
  }

  /// A fresh store directory seeded with the good mirror (unversioned).
  static std::string fresh_store(const std::string& tag) {
    const std::string dir = *root_ + "/" + tag;
    fs::remove_all(dir);
    fs::create_directories(dir);
    spit(dir + "/model.json", *model_);
    spit(dir + "/config.json", *config_);
    return dir;
  }

  /// Same, but promoted to version 1 through the real protocol.
  static std::string versioned_store(const std::string& tag) {
    const std::string dir = fresh_store(tag);
    EXPECT_TRUE(promote_artefacts(dir, *model_, *config_, 1).ok());
    return dir;
  }

  /// Forks a child that arms `fp` and runs `work`; asserts it died by
  /// SIGKILL (i.e. the armed crash_if fired, not a clean return).
  template <typename Fn>
  static void crash_child(const char* fp, Fn work) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      failpoint::arm(fp);
      work();
      ::_exit(86);  // survived: the failpoint never fired
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << fp << ": child status " << status;
  }

  static std::string* root_;
  static std::string* model_;
  static std::string* config_;
};

std::string* CrashRecovery::root_ = nullptr;
std::string* CrashRecovery::model_ = nullptr;
std::string* CrashRecovery::config_ = nullptr;

// ------------------------------------------------------ recover_store units

TEST_F(CrashRecovery, UnversionedStoreIsANoOp) {
  const std::string dir = fresh_store("noop");
  auto rec = recover_store(dir);
  ASSERT_TRUE(rec.ok()) << rec.error().message;
  EXPECT_EQ(rec.value().version, 0u);
  EXPECT_FALSE(rec.value().repaired);
  EXPECT_EQ(rec.value().debris_removed, 0u);
}

TEST_F(CrashRecovery, MissingDirectoryIsNotFound) {
  auto rec = recover_store(*root_ + "/no_such_store");
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.error().code, ErrorCode::kNotFound);
}

TEST_F(CrashRecovery, TmpDebrisAndStagingAreCollected) {
  const std::string dir = versioned_store("debris");
  spit(dir + "/model.json.tmp.12345", "half a write");
  spit(dir + "/VERSION.tmp.999", "2");
  fs::create_directories(dir + "/staging");
  spit(dir + "/staging/model.json", "orphaned");
  fs::create_directories(dir + "/versions/2.tmp.777");
  spit(dir + "/versions/2.tmp.777/model.json", "unrenamed retained copy");

  auto rec = recover_store(dir);
  ASSERT_TRUE(rec.ok()) << rec.error().message;
  EXPECT_EQ(rec.value().version, 1u);
  EXPECT_GE(rec.value().debris_removed, 4u);
  EXPECT_FALSE(fs::exists(dir + "/model.json.tmp.12345"));
  EXPECT_FALSE(fs::exists(dir + "/VERSION.tmp.999"));
  EXPECT_FALSE(fs::exists(dir + "/staging"));
  EXPECT_FALSE(fs::exists(dir + "/versions/2.tmp.777"));
  EXPECT_TRUE(fs::exists(dir + "/versions/1/model.json"));
}

TEST_F(CrashRecovery, IncompleteRetainedVersionIsDropped) {
  const std::string dir = versioned_store("incomplete");
  // versions/2 exists but lost its config.json — a state only a torn rename
  // sequence could leave; it must not be adopted as "highest".
  fs::create_directories(dir + "/versions/2");
  spit(dir + "/versions/2/model.json", *model_);

  auto rec = recover_store(dir);
  ASSERT_TRUE(rec.ok()) << rec.error().message;
  EXPECT_EQ(rec.value().version, 1u);
  EXPECT_FALSE(fs::exists(dir + "/versions/2"));
  EXPECT_EQ(slurp(dir + "/VERSION"), "1\n");
}

TEST_F(CrashRecovery, MirrorRollsForwardToHighestRetained) {
  const std::string dir = versioned_store("forward");
  // Version 2 fully retained, but the crash hit before the mirror and
  // VERSION moved: recovery must finish the promote, never rewind it.
  const std::string v2_model = *model_ + "\n";
  const std::string v2_config = *config_ + "\n";
  fs::create_directories(dir + "/versions/2");
  spit(dir + "/versions/2/model.json", v2_model);
  spit(dir + "/versions/2/config.json", v2_config);

  auto rec = recover_store(dir);
  ASSERT_TRUE(rec.ok()) << rec.error().message;
  EXPECT_EQ(rec.value().version, 2u);
  EXPECT_TRUE(rec.value().repaired);
  EXPECT_EQ(slurp(dir + "/model.json"), v2_model);
  EXPECT_EQ(slurp(dir + "/config.json"), v2_config);
  EXPECT_EQ(artefact_version(dir), 2u);
}

TEST_F(CrashRecovery, TornMirrorIsRepairedFromRetainedCopy) {
  const std::string dir = versioned_store("torn_mirror");
  // VERSION and retention agree on 1, but the mirror's bytes drifted (the
  // mid-promote window: one mirror file replaced, the other not).
  spit(dir + "/model.json", *model_ + "\n\n\n");

  auto rec = recover_store(dir);
  ASSERT_TRUE(rec.ok()) << rec.error().message;
  EXPECT_EQ(rec.value().version, 1u);
  EXPECT_TRUE(rec.value().repaired);
  EXPECT_EQ(slurp(dir + "/model.json"), *model_);
  auto loaded = AdsalaGemm::try_load(dir + "/model.json", dir + "/config.json");
  EXPECT_TRUE(loaded.ok()) << loaded.error().message;
}

TEST_F(CrashRecovery, VersionAheadOfRetentionIsReRetainedFromMirror) {
  const std::string dir = versioned_store("ahead");
  // VERSION says 3 but only version 1 is retained and the mirror is intact:
  // the mirror is adopted as version 3's content (VERSION never rewinds).
  spit(dir + "/VERSION", "3\n");

  auto rec = recover_store(dir);
  ASSERT_TRUE(rec.ok()) << rec.error().message;
  EXPECT_EQ(rec.value().version, 3u);
  EXPECT_TRUE(fs::exists(dir + "/versions/3/model.json"));
  EXPECT_TRUE(fs::exists(dir + "/versions/3/config.json"));
  EXPECT_EQ(artefact_version(dir), 3u);
}

TEST_F(CrashRecovery, AtomicWriteLeavesNoTornFile) {
  const std::string dir = fresh_store("atomic");
  const std::string path = dir + "/blob";
  ASSERT_TRUE(atomic_write_file(path, "first").ok());
  ASSERT_TRUE(atomic_write_file(path, "second").ok());
  EXPECT_EQ(slurp(path), "second");
  EXPECT_TRUE(is_tmp_debris_name("model.json.tmp.4242"));
  EXPECT_FALSE(is_tmp_debris_name("model.json"));
  EXPECT_FALSE(is_tmp_debris_name("model.json.tmp.abc"));
}

// ------------------------------------------------- fork-based real crashes

TEST_F(CrashRecovery, CrashBeforeRetainRecoversOldVersion) {
  for (const char* fp :
       {"promote-crash-after-stage", "promote-crash-mid-retain"}) {
    const std::string dir = versioned_store(std::string("pre_") + fp);
    crash_child(fp, [&] {
      (void)promote_artefacts(dir, *model_ + "\n", *config_ + "\n", 2);
    });
    auto rec = recover_store(dir);
    ASSERT_TRUE(rec.ok()) << fp << ": " << rec.error().message;
    EXPECT_EQ(rec.value().version, 1u) << fp;
    EXPECT_EQ(slurp(dir + "/model.json"), *model_) << fp;
    auto loaded =
        AdsalaGemm::try_load(dir + "/model.json", dir + "/config.json");
    EXPECT_TRUE(loaded.ok()) << fp << ": " << loaded.error().message;
  }
}

TEST_F(CrashRecovery, CrashAfterRetainRollsForwardToNewVersion) {
  for (const char* fp :
       {"promote-crash-after-retain", "promote-crash-mid-promote",
        "promote-crash-after-promote", "promote-crash-after-version"}) {
    const std::string dir = versioned_store(std::string("post_") + fp);
    const std::string new_model = *model_ + "\n";
    const std::string new_config = *config_ + "\n";
    crash_child(fp, [&] {
      (void)promote_artefacts(dir, new_model, new_config, 2);
    });
    auto rec = recover_store(dir);
    ASSERT_TRUE(rec.ok()) << fp << ": " << rec.error().message;
    EXPECT_EQ(rec.value().version, 2u) << fp;
    EXPECT_EQ(slurp(dir + "/model.json"), new_model) << fp;
    EXPECT_EQ(slurp(dir + "/config.json"), new_config) << fp;
    auto loaded =
        AdsalaGemm::try_load(dir + "/model.json", dir + "/config.json");
    EXPECT_TRUE(loaded.ok()) << fp << ": " << loaded.error().message;
  }
}

TEST_F(CrashRecovery, RecoveryIsIdempotent) {
  const std::string dir = versioned_store("idempotent");
  crash_child("promote-crash-mid-promote", [&] {
    (void)promote_artefacts(dir, *model_ + "\n", *config_ + "\n", 2);
  });
  auto first = recover_store(dir);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().version, 2u);
  auto second = recover_store(dir);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().version, 2u);
  EXPECT_FALSE(second.value().repaired) << "second pass must find no work";
}

// --------------------------------------------------- shm crash + self-heal

TEST_F(CrashRecovery, RegionHealsToPreviousPayloadAfterWriterDeath) {
  for (const char* fp : {"shm-crash-mid-publish", "shm-crash-before-commit"}) {
    const std::string region = *root_ + std::string("/region_") + fp;
    ASSERT_TRUE(publish_shm_region(region, *model_, *config_).ok());

    crash_child(fp, [&] {
      (void)publish_shm_region(region, *model_ + "\n", *config_ + "\n");
    });

    // The dead writer left the generation odd; one read detects the corpse,
    // heals, and serves the previous complete payload.
    auto healed = read_shm_region(region);
    ASSERT_TRUE(healed.ok()) << fp << ": " << healed.error().message;
    EXPECT_EQ(healed.value().model_json, *model_) << fp;
    EXPECT_EQ(healed.value().config_json, *config_) << fp;
    EXPECT_EQ(healed.value().generation % 2, 0u) << fp;

    // And the healed region is fully writable again.
    ASSERT_TRUE(
        publish_shm_region(region, *model_ + "\n", *config_ + "\n").ok())
        << fp;
    auto fresh = read_shm_region(region);
    ASSERT_TRUE(fresh.ok()) << fp;
    EXPECT_EQ(fresh.value().model_json, *model_ + "\n") << fp;
  }
}

TEST_F(CrashRecovery, FirstPublishCrashIsUnhealable) {
  // A writer that died during the very first publish left no previous
  // payload: the honest answer is kUnavailable, not an invented artefact.
  const std::string region = *root_ + "/region_first_crash";
  crash_child("shm-crash-mid-publish",
              [&] { (void)publish_shm_region(region, *model_, *config_); });
  auto result = read_shm_region(region);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kUnavailable);
  // A healthy publisher repairs it by simply publishing (the flock is free;
  // the dead writer's odd generation is overwritten by the new protocol).
  ASSERT_TRUE(publish_shm_region(region, *model_, *config_).ok());
  auto fresh = read_shm_region(region);
  ASSERT_TRUE(fresh.ok()) << fresh.error().message;
  EXPECT_EQ(fresh.value().model_json, *model_);
}

TEST_F(CrashRecovery, AttachHealsTransparently) {
  // The serving entry point (try_attach) rides the same heal path: after a
  // writer death mid-publish, attach answers from the previous payload.
  const std::string region = *root_ + "/region_attach_heal";
  ASSERT_TRUE(publish_shm_region(region, *model_, *config_).ok());
  crash_child("shm-crash-before-commit", [&] {
    (void)publish_shm_region(region, *model_ + "\n", *config_ + "\n");
  });
  auto attached = AdsalaGemm::try_attach(region);
  ASSERT_TRUE(attached.ok()) << attached.error().message;
  EXPECT_EQ(attached.value().serving_mode(), ServingMode::kModelServed);
}

// ------------------------------------------------- writer-liveness plumbing

TEST_F(CrashRecovery, StartNonceIdentifiesThisProcess) {
  const std::uint64_t nonce = process_start_nonce(::getpid());
  EXPECT_NE(nonce, 0u) << "/proc/self/stat should be readable";
  EXPECT_TRUE(writer_alive(::getpid(), nonce));
  EXPECT_EQ(process_start_nonce(::getpid()), nonce) << "nonce is stable";
}

TEST_F(CrashRecovery, WrongNonceMeansRecycledPid) {
  const std::uint64_t nonce = process_start_nonce(::getpid());
  ASSERT_NE(nonce, 0u);
  EXPECT_FALSE(writer_alive(::getpid(), nonce + 1))
      << "a mismatched start nonce is a different process incarnation";
}

TEST_F(CrashRecovery, ReapedChildIsDead) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) ::_exit(0);
  const std::uint64_t nonce = process_start_nonce(pid);  // may be 0 if raced
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  // After the reap the pid is gone (nothing else in this test forks, so it
  // cannot have been recycled yet).
  EXPECT_FALSE(writer_alive(pid, nonce));
}

TEST_F(CrashRecovery, LivenessGuardsAgainstHealingALiveWriter) {
  // An odd generation stamped by a LIVE process must stay kUnavailable —
  // healing under a live writer would fork the region's history.
  const std::string region = *root_ + "/region_live_writer";
  ASSERT_TRUE(publish_shm_region(region, *model_, *config_).ok());
  ASSERT_TRUE(publish_shm_region(region, *model_, *config_).ok());
  // Poke the generation odd by hand; writer_pid still names this (live)
  // process from the last publish.
  std::uint64_t gen = 0;
  {
    std::ifstream in(region, std::ios::binary);
    in.seekg(8);
    in.read(reinterpret_cast<char*>(&gen), sizeof(gen));
  }
  gen |= 1;
  {
    std::fstream f(region, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    f.write(reinterpret_cast<const char*>(&gen), sizeof(gen));
  }
  auto result = read_shm_region(region);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kUnavailable);
  EXPECT_NE(result.error().message.find("mid-publish"), std::string::npos)
      << result.error().message;
}

}  // namespace
}  // namespace adsala::core
