// Tests for the ensemble models: random forest, AdaBoost.R2, XGBoost-style
// GBT, LightGBM-style histogram GBT.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/adaboost.h"
#include "ml/forest.h"
#include "ml/gbt.h"
#include "ml/hist_gbt.h"
#include "ml/metrics.h"
#include "ml/registry.h"
#include "ml/tree.h"

namespace adsala::ml {
namespace {

/// Non-linear target with interactions, similar in spirit to a runtime
/// surface: y = x0*x1 + step(x2) + noise.
Dataset make_surface(std::size_t n, std::uint64_t seed, double noise = 0.1) {
  Dataset data({"x0", "x1", "x2"});
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-2.0, 2.0);
    const double x1 = rng.uniform(-2.0, 2.0);
    const double x2 = rng.uniform(-2.0, 2.0);
    const double y =
        x0 * x1 + (x2 > 0.5 ? 4.0 : 0.0) + rng.normal(0.0, noise);
    data.add_row(std::vector<double>{x0, x1, x2}, y);
  }
  return data;
}

template <typename Model>
double test_nrmse(Model& model, std::uint64_t train_seed = 1,
                  std::uint64_t test_seed = 2) {
  const Dataset train = make_surface(600, train_seed);
  const Dataset test = make_surface(300, test_seed);
  model.fit(train);
  return normalized_rmse(test.labels(), model.predict(test));
}

// ------------------------------------------------------------ RandomForest

TEST(RandomForest, LearnsNonLinearSurface) {
  RandomForest model({{"n_estimators", 60}});
  EXPECT_LT(test_nrmse(model), 0.35);
}

TEST(RandomForest, BeatsSingleTreeOnNoisyData) {
  const Dataset train = make_surface(400, 3, 1.0);
  const Dataset test = make_surface(200, 4, 0.0);
  DecisionTree tree({{"max_depth", 16}});
  RandomForest forest({{"n_estimators", 80}, {"max_depth", 16}});
  tree.fit(train);
  forest.fit(train);
  const double tree_err = rmse(test.labels(), tree.predict(test));
  const double forest_err = rmse(test.labels(), forest.predict(test));
  EXPECT_LT(forest_err, tree_err) << "variance reduction failed";
}

TEST(RandomForest, BuildsRequestedTreeCount) {
  RandomForest model({{"n_estimators", 13}});
  model.fit(make_surface(100, 5));
  EXPECT_EQ(model.n_trees(), 13u);
}

TEST(RandomForest, DeterministicForSeed) {
  RandomForest a({{"n_estimators", 20}, {"seed", 7}});
  RandomForest b({{"n_estimators", 20}, {"seed", 7}});
  const Dataset data = make_surface(300, 6);
  a.fit(data);
  b.fit(data);
  const std::vector<double> x = {0.5, -0.5, 1.0};
  EXPECT_DOUBLE_EQ(a.predict_one(x), b.predict_one(x));
}

TEST(RandomForest, SaveLoadRoundTrip) {
  RandomForest model({{"n_estimators", 10}});
  model.fit(make_surface(150, 8));
  RandomForest restored;
  restored.load(model.save());
  const std::vector<double> x = {1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(restored.predict_one(x), model.predict_one(x));
}

// --------------------------------------------------------------- AdaBoost

TEST(AdaBoost, LearnsNonLinearSurface) {
  AdaBoostR2 model({{"n_estimators", 40}, {"max_depth", 5}});
  EXPECT_LT(test_nrmse(model), 0.4);
}

TEST(AdaBoost, ImprovesOverItsWeakLearner) {
  const Dataset train = make_surface(500, 9);
  const Dataset test = make_surface(250, 10);
  DecisionTree weak({{"max_depth", 5}});
  AdaBoostR2 boosted({{"n_estimators", 60}, {"max_depth", 5}});
  weak.fit(train);
  boosted.fit(train);
  EXPECT_LT(rmse(test.labels(), boosted.predict(test)),
            rmse(test.labels(), weak.predict(test)));
}

TEST(AdaBoost, StopsEarlyOnPerfectFit) {
  Dataset data({"x"});
  for (int i = 0; i < 50; ++i) {
    data.add_row(std::vector<double>{static_cast<double>(i)},
                 i < 25 ? 1.0 : 2.0);
  }
  AdaBoostR2 model({{"n_estimators", 100}, {"max_depth", 3}});
  model.fit(data);
  EXPECT_LT(model.n_trees(), 100u) << "perfect member should stop boosting";
}

TEST(AdaBoost, SaveLoadRoundTrip) {
  AdaBoostR2 model({{"n_estimators", 15}});
  model.fit(make_surface(150, 11));
  AdaBoostR2 restored;
  restored.load(model.save());
  const std::vector<double> x = {-1.0, 0.5, 0.7};
  EXPECT_DOUBLE_EQ(restored.predict_one(x), model.predict_one(x));
}

// ---------------------------------------------------------------- XGBoost

TEST(Xgboost, LearnsNonLinearSurface) {
  XgbRegressor model({{"n_estimators", 100}, {"max_depth", 4}});
  EXPECT_LT(test_nrmse(model), 0.25);
}

TEST(Xgboost, MoreRoundsReduceTrainError) {
  const Dataset train = make_surface(400, 12);
  XgbRegressor few({{"n_estimators", 5}});
  XgbRegressor many({{"n_estimators", 100}});
  few.fit(train);
  many.fit(train);
  EXPECT_LT(rmse(train.labels(), many.predict(train)),
            rmse(train.labels(), few.predict(train)));
}

TEST(Xgboost, BaseScoreIsLabelMean) {
  Dataset data({"x"});
  data.add_row(std::vector<double>{1.0}, 2.0);
  data.add_row(std::vector<double>{2.0}, 4.0);
  XgbRegressor model({{"n_estimators", 1}});
  model.fit(data);
  EXPECT_DOUBLE_EQ(model.base_score(), 3.0);
}

TEST(Xgboost, GammaPrunesSplits) {
  const Dataset train = make_surface(300, 13, 0.5);
  XgbRegressor loose({{"n_estimators", 20}, {"gamma", 0.0}});
  XgbRegressor strict({{"n_estimators", 20}, {"gamma", 1e9}});
  loose.fit(train);
  strict.fit(train);
  // Infinite gamma forbids every split: prediction collapses to base score.
  const std::vector<double> x = {1.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(strict.predict_one(x), strict.base_score());
  EXPECT_NE(loose.predict_one(x), loose.base_score());
}

TEST(Xgboost, SubsamplingIsDeterministicPerSeed) {
  const Dataset data = make_surface(300, 14);
  XgbRegressor a({{"n_estimators", 30}, {"subsample", 0.7},
                  {"colsample", 0.7}, {"seed", 3}});
  XgbRegressor b = a;
  a.fit(data);
  b.fit(data);
  const std::vector<double> x = {0.1, 0.2, 0.3};
  EXPECT_DOUBLE_EQ(a.predict_one(x), b.predict_one(x));
}

TEST(Xgboost, SaveLoadRoundTrip) {
  XgbRegressor model({{"n_estimators", 25}});
  model.fit(make_surface(200, 15));
  XgbRegressor restored;
  restored.load(model.save());
  Rng rng(16);
  for (int i = 0; i < 30; ++i) {
    const std::vector<double> x = {rng.uniform(-2, 2), rng.uniform(-2, 2),
                                   rng.uniform(-2, 2)};
    EXPECT_DOUBLE_EQ(restored.predict_one(x), model.predict_one(x));
  }
}

// --------------------------------------------------------------- LightGBM

TEST(LightGbm, LearnsNonLinearSurface) {
  LightGbmRegressor model({{"n_estimators", 100}});
  EXPECT_LT(test_nrmse(model), 0.25);
}

TEST(LightGbm, RespectsNumLeaves) {
  const Dataset train = make_surface(500, 17);
  LightGbmRegressor stump({{"n_estimators", 5}, {"num_leaves", 2}});
  stump.fit(train);
  // num_leaves=2 means each tree is a single split: 3 nodes.
  EXPECT_EQ(stump.n_trees(), 5u);
}

TEST(LightGbm, MoreLeavesFitTrainBetter) {
  const Dataset train = make_surface(500, 18);
  LightGbmRegressor small({{"n_estimators", 30}, {"num_leaves", 3}});
  LightGbmRegressor big({{"n_estimators", 30}, {"num_leaves", 63}});
  small.fit(train);
  big.fit(train);
  EXPECT_LT(rmse(train.labels(), big.predict(train)),
            rmse(train.labels(), small.predict(train)));
}

TEST(LightGbm, HandlesConstantFeature) {
  Dataset data({"const", "x"});
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(-1, 1);
    data.add_row(std::vector<double>{5.0, x}, x > 0 ? 1.0 : -1.0);
  }
  LightGbmRegressor model({{"n_estimators", 10}});
  EXPECT_NO_THROW(model.fit(data));
  EXPECT_GT(model.predict_one(std::vector<double>{5.0, 0.9}), 0.0);
}

TEST(LightGbm, SaveLoadRoundTrip) {
  LightGbmRegressor model({{"n_estimators", 20}});
  model.fit(make_surface(200, 20));
  LightGbmRegressor restored;
  restored.load(model.save());
  Rng rng(21);
  for (int i = 0; i < 30; ++i) {
    const std::vector<double> x = {rng.uniform(-2, 2), rng.uniform(-2, 2),
                                   rng.uniform(-2, 2)};
    EXPECT_DOUBLE_EQ(restored.predict_one(x), model.predict_one(x));
  }
}

// Property: every ensemble handles single-feature, few-row datasets.
class EnsembleEdgeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EnsembleEdgeTest, TinyDatasetDoesNotCrash) {
  Dataset data({"x"});
  data.add_row(std::vector<double>{1.0}, 1.0);
  data.add_row(std::vector<double>{2.0}, 2.0);
  data.add_row(std::vector<double>{3.0}, 3.0);
  auto model = make_model(GetParam(), {{"n_estimators", 5}});
  EXPECT_NO_THROW(model->fit(data));
  const double p = model->predict_one(std::vector<double>{2.0});
  EXPECT_GE(p, 0.5);
  EXPECT_LE(p, 3.5);
}

TEST_P(EnsembleEdgeTest, RegistryRoundTrip) {
  auto model = make_model(GetParam(), {{"n_estimators", 8}});
  model->fit(make_surface(120, 22));
  auto restored = load_model(model->save());
  EXPECT_EQ(restored->name(), model->name());
  const std::vector<double> x = {0.4, 0.6, -0.3};
  EXPECT_DOUBLE_EQ(restored->predict_one(x), model->predict_one(x));
}

INSTANTIATE_TEST_SUITE_P(Models, EnsembleEdgeTest,
                         ::testing::Values("random_forest", "adaboost",
                                           "xgboost", "lightgbm"));

}  // namespace
}  // namespace adsala::ml
